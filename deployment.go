package impir

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/impir/impir/internal/batchcode"
	"github.com/impir/impir/internal/cluster"
)

// The unified deployment manifest: one JSON document (deployment.json)
// describing everything impir.Open needs to drive a whole IM-PIR
// deployment as a single logical Store — flat server pairs, sharded
// topologies, replica sets per party, and keyword tables atop either.
//
// The composition model:
//
//	Deployment
//	└── Shards: contiguous row ranges tiling the record space
//	    └── Parties: ≥ 2 mutually NON-COLLUDING query recipients;
//	        each party receives exactly one share of every query
//	        └── Replicas: ≥ 1 interchangeable servers run by that
//	            SAME party, holding byte-identical data — hedging
//	            and failover targets, not a privacy boundary
//	└── Keyword: optional cuckoo-table manifest layered on the records
//
// Privacy note on replicas: all replicas of one party belong to one
// trust domain. A query's share for that party may be sent to any or
// all of them — they could share it among themselves anyway — so hedged
// fan-out across a party's replicas leaks nothing beyond what sending
// to one replica already does. Replicas must never be listed under a
// party they do not trust: that would hand two shares to one colluding
// operator.

// Deployment size caps, enforced by Validate so an adversarial manifest
// cannot make a client allocate or dial without bound.
const (
	maxDeploymentShards = 4096
	maxPartiesPerShard  = 64
	maxReplicasPerParty = 16
	maxReplicaAddrLen   = 256
)

// Party is one non-colluding member of a shard cohort: a single trust
// domain running one or more interchangeable replicas of the shard.
type Party struct {
	// Replicas are the party's server addresses (≥ 1). All hold
	// byte-identical data; the client sends the party's share to the
	// fastest-first of them, hedging across the rest.
	Replicas []string `json:"replicas"`
}

// DeploymentShard is one contiguous row range of a deployment, served
// by a cohort of ≥ 2 non-colluding parties.
type DeploymentShard struct {
	// FirstRecord is the global index of the shard's first record.
	FirstRecord uint64 `json:"first_record"`
	// NumRecords is the number of records the shard holds. In a
	// single-shard deployment it may be 0: the geometry is then learned
	// from the server handshake, exactly as with a direct Dial.
	NumRecords uint64 `json:"num_records"`
	// Parties are the shard's non-colluding cohort members.
	Parties []Party `json:"parties"`
}

// End returns the exclusive global upper bound of the shard's range.
func (s DeploymentShard) End() uint64 { return s.FirstRecord + s.NumRecords }

// UnmarshalJSON accepts both the native form ("parties": [{"replicas":
// [...]}, ...]) and the older cluster-manifest shorthand ("replicas":
// ["a", "b"]), which reads as one single-replica party per address — so
// every existing cluster.json is a valid deployment.json.
func (s *DeploymentShard) UnmarshalJSON(data []byte) error {
	var raw struct {
		FirstRecord uint64   `json:"first_record"`
		NumRecords  uint64   `json:"num_records"`
		Parties     []Party  `json:"parties"`
		Replicas    []string `json:"replicas"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Parties) > 0 && len(raw.Replicas) > 0 {
		return fmt.Errorf("impir: shard lists both \"parties\" and the legacy \"replicas\" shorthand; use one")
	}
	s.FirstRecord = raw.FirstRecord
	s.NumRecords = raw.NumRecords
	s.Parties = raw.Parties
	for _, addr := range raw.Replicas {
		s.Parties = append(s.Parties, Party{Replicas: []string{addr}})
	}
	return nil
}

// Deployment is the unified manifest impir.Open drives: the topology of
// a whole PIR deployment as one logical store. It round-trips through
// JSON (ParseDeployment / LoadDeployment / Deployment.JSON) for the
// -deployment command-line flag and config files.
type Deployment struct {
	// RecordSize is the record size in bytes, identical across shards.
	// Required for multi-shard deployments; a single-shard deployment
	// may leave it 0 and learn the geometry from the server handshake.
	RecordSize int `json:"record_size,omitempty"`
	// Shards lists the row-range shards in ascending global order; with
	// more than one, they must tile [0, NumRecords()) exactly.
	Shards []DeploymentShard `json:"shards"`
	// Keyword optionally layers a cuckoo key→value table over the
	// records (one bucket per record, built with BuildKVDB). The
	// manifest is public data: it reveals bucket geometry and hash
	// seeds, never the stored keys.
	Keyword *KVManifest `json:"keyword,omitempty"`
	// BatchCode optionally declares that the served rows are a
	// probabilistic batch-code encoding of a smaller logical database:
	// the shards hold CodeManifest.TotalRows() coded rows while the
	// application addresses CodeManifest.NumRecords logical records.
	// Open then routes RetrieveBatch through the batch planner — one
	// sub-query per bucket instead of one full scan per record. Like
	// Keyword, the manifest is public data: geometry and hash seeds
	// only.
	BatchCode *CodeManifest `json:"batch_code,omitempty"`
}

// CodeManifest describes a probabilistic batch-code layout
// (internal/batchcode): how a logical database is replicated into
// bucketised subdatabases so multi-record batches cost one sub-query
// per bucket.
type CodeManifest = batchcode.Manifest

// ParseCodeManifest parses a batch-code manifest from JSON and
// validates it.
func ParseCodeManifest(data []byte) (CodeManifest, error) { return batchcode.Parse(data) }

// LoadCodeManifest reads and validates a batch-code manifest file.
func LoadCodeManifest(path string) (CodeManifest, error) { return batchcode.Load(path) }

// DeriveBatchCode derives a batch-code manifest for a logical database
// of numRecords records: bucket capacities are sized for the requested
// bucket count, replication factor (choices) and overflow slots, and
// the per-choice hash seeds are drawn deterministically from seed, so
// every holder of the same parameters derives the same layout.
func DeriveBatchCode(numRecords uint64, recordSize, buckets, choices, overflowSlots, maxBatch int, seed uint64) (CodeManifest, error) {
	return batchcode.Derive(numRecords, recordSize, buckets, choices, overflowSlots, maxBatch, seed)
}

// EncodeBatchCode replicates the logical database into the manifest's
// bucket layout — the m.TotalRows()-row database coded servers load.
// Encoding is deterministic: independently started replicas that
// encode the same logical database stay byte-identical.
func EncodeBatchCode(db *DB, m CodeManifest) (*DB, error) { return batchcode.Encode(db, m) }

// FlatDeployment describes the simplest topology: one shard served by
// len(addrs) single-replica parties — the classic "dial these ≥ 2
// non-colluding servers" deployment, with geometry learned from the
// handshake.
func FlatDeployment(addrs ...string) Deployment {
	parties := make([]Party, len(addrs))
	for i, a := range addrs {
		parties[i] = Party{Replicas: []string{a}}
	}
	return Deployment{Shards: []DeploymentShard{{Parties: parties}}}
}

// ReplicatedDeployment describes one shard served by len(parties)
// non-colluding parties, each running its own replica set. Replicas
// within one inner slice belong to ONE trust domain — hedging targets,
// not a privacy boundary.
func ReplicatedDeployment(parties ...[]string) Deployment {
	ps := make([]Party, len(parties))
	for i, replicas := range parties {
		ps[i] = Party{Replicas: append([]string(nil), replicas...)}
	}
	return Deployment{Shards: []DeploymentShard{{Parties: ps}}}
}

// DeploymentFromManifest lifts a cluster shard manifest into the
// unified form: each cohort address becomes a single-replica party.
func DeploymentFromManifest(m ShardManifest) Deployment {
	d := Deployment{RecordSize: m.RecordSize, Shards: make([]DeploymentShard, len(m.Shards))}
	for i, s := range m.Shards {
		parties := make([]Party, len(s.Replicas))
		for p, addr := range s.Replicas {
			parties[p] = Party{Replicas: []string{addr}}
		}
		d.Shards[i] = DeploymentShard{FirstRecord: s.FirstRecord, NumRecords: s.NumRecords, Parties: parties}
	}
	return d
}

// WithKeyword returns a copy of the deployment carrying the keyword
// table manifest, so kv topologies compose as data: FlatDeployment(
// addrs...).WithKeyword(m) is a keyword store over a server pair.
func (d Deployment) WithKeyword(m KVManifest) Deployment {
	d.Keyword = &m
	return d
}

// WithBatchCode returns a copy of the deployment carrying the batch
// code manifest, so coded topologies compose as data like WithKeyword.
func (d Deployment) WithBatchCode(m CodeManifest) Deployment {
	d.BatchCode = &m
	return d
}

// NumShards returns the shard count.
func (d Deployment) NumShards() int { return len(d.Shards) }

// NumRecords returns the total record count across shards — 0 when a
// single-shard deployment leaves the geometry to the handshake.
func (d Deployment) NumRecords() uint64 {
	if len(d.Shards) == 0 {
		return 0
	}
	return d.Shards[len(d.Shards)-1].End()
}

// Validate checks the topology: shards tiling the record space, ≥ 2
// non-colluding parties per shard, ≥ 1 replica per party, non-empty
// addresses, the size caps, and — when present — the keyword manifest.
func (d Deployment) Validate() error {
	if len(d.Shards) == 0 {
		return fmt.Errorf("impir: deployment has no shards")
	}
	if len(d.Shards) > maxDeploymentShards {
		return fmt.Errorf("impir: deployment has %d shards, the cap is %d", len(d.Shards), maxDeploymentShards)
	}
	if d.RecordSize < 0 {
		return fmt.Errorf("impir: negative record size %d", d.RecordSize)
	}
	multi := len(d.Shards) > 1
	if multi && d.RecordSize == 0 {
		return fmt.Errorf("impir: a multi-shard deployment must declare record_size")
	}
	var next uint64
	for i, s := range d.Shards {
		if multi && s.NumRecords < 1 {
			return fmt.Errorf("impir: shard %d holds no records", i)
		}
		if s.FirstRecord != next {
			return fmt.Errorf("impir: shard %d starts at record %d, want %d (shards must tile the record space contiguously)",
				i, s.FirstRecord, next)
		}
		if s.NumRecords > 0 && d.RecordSize == 0 {
			return fmt.Errorf("impir: shard %d declares num_records without a deployment record_size", i)
		}
		if len(s.Parties) < 2 {
			return fmt.Errorf("impir: shard %d has %d part(y/ies); a PIR cohort needs ≥ 2 non-colluding parties",
				i, len(s.Parties))
		}
		if len(s.Parties) > maxPartiesPerShard {
			return fmt.Errorf("impir: shard %d has %d parties, the cap is %d", i, len(s.Parties), maxPartiesPerShard)
		}
		for p, party := range s.Parties {
			if len(party.Replicas) < 1 {
				return fmt.Errorf("impir: shard %d party %d has no replicas", i, p)
			}
			if len(party.Replicas) > maxReplicasPerParty {
				return fmt.Errorf("impir: shard %d party %d has %d replicas, the cap is %d",
					i, p, len(party.Replicas), maxReplicasPerParty)
			}
			for r, addr := range party.Replicas {
				if addr == "" {
					return fmt.Errorf("impir: shard %d party %d replica %d has an empty address", i, p, r)
				}
				if len(addr) > maxReplicaAddrLen {
					return fmt.Errorf("impir: shard %d party %d replica %d address exceeds %d bytes",
						i, p, r, maxReplicaAddrLen)
				}
			}
		}
		next = s.End()
	}
	if d.Keyword != nil {
		if err := d.Keyword.Validate(); err != nil {
			return err
		}
	}
	if d.BatchCode != nil {
		if err := d.validateBatchCode(); err != nil {
			return err
		}
	}
	return nil
}

// validateBatchCode checks the coded layer's fit: the served rows must
// be exactly the code's physical grid, record sizes must agree across
// every declared layer, and in a sharded deployment the shard cuts must
// fall on bucket boundaries with the same bucket count per shard — that
// alignment is what lets the coded batch send each shard a constant
// C/S(+overflow) sub-queries instead of fanning the whole batch
// everywhere, which is where the per-server win comes from.
func (d Deployment) validateBatchCode() error {
	code := d.BatchCode
	if err := code.Validate(); err != nil {
		return err
	}
	if d.RecordSize > 0 && d.RecordSize != code.RecordSize {
		return fmt.Errorf("impir: deployment record size %d does not match the batch code's %d",
			d.RecordSize, code.RecordSize)
	}
	if n := d.NumRecords(); n > 0 && n != code.TotalRows() {
		return fmt.Errorf("impir: deployment serves %d rows but the batch code lays out %d (buckets × bucket_rows)",
			n, code.TotalRows())
	}
	if s := len(d.Shards); s > 1 {
		if code.Buckets%s != 0 {
			return fmt.Errorf("impir: %d buckets do not divide evenly over %d shards; a coded sharded deployment needs buckets %% shards == 0",
				code.Buckets, s)
		}
		perShard := uint64(code.Buckets/s) * code.BucketRows
		for i, shard := range d.Shards {
			if shard.NumRecords != perShard {
				return fmt.Errorf("impir: shard %d holds %d rows, want %d (%d buckets × %d rows; shard cuts must fall on bucket boundaries)",
					i, shard.NumRecords, perShard, code.Buckets/s, code.BucketRows)
			}
		}
	}
	if d.Keyword != nil {
		if d.Keyword.TotalBuckets() != code.NumRecords {
			return fmt.Errorf("impir: keyword table has %d buckets but the batch code encodes %d logical records; the code must cover exactly the keyword table",
				d.Keyword.TotalBuckets(), code.NumRecords)
		}
		if d.Keyword.RecordSize() != code.RecordSize {
			return fmt.Errorf("impir: keyword record size %d does not match the batch code's %d",
				d.Keyword.RecordSize(), code.RecordSize)
		}
	}
	return nil
}

// ParseDeployment decodes and validates a JSON deployment manifest. It
// also accepts any valid cluster shard manifest (the per-shard
// "replicas" shorthand), so existing cluster.json files keep working.
func ParseDeployment(data []byte) (Deployment, error) {
	var d Deployment
	if err := json.Unmarshal(data, &d); err != nil {
		return Deployment{}, fmt.Errorf("impir: parse deployment: %w", err)
	}
	return d, d.Validate()
}

// LoadDeployment reads and validates a JSON deployment manifest file
// (the -deployment flag).
func LoadDeployment(path string) (Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Deployment{}, fmt.Errorf("impir: load deployment: %w", err)
	}
	return ParseDeployment(data)
}

// JSON encodes the deployment for config files; ParseDeployment
// round-trips it.
func (d Deployment) JSON() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(d, "", "  ")
}

// ShardManifest derives the shard-manifest view the query planner (and
// the server-side shard carving) works over: the shard ranges plus one
// representative address per party. Replica sets are deliberately
// dropped — routing is by row range, and replica choice happens in the
// fan-out layer. Only meaningful for deployments with explicit
// geometry (every multi-shard deployment; a single-shard deployment
// that declared record_size and num_records).
func (d Deployment) ShardManifest() (ShardManifest, error) {
	m := cluster.Manifest{RecordSize: d.RecordSize, Shards: make([]cluster.Shard, len(d.Shards))}
	for i, s := range d.Shards {
		reps := make([]string, len(s.Parties))
		for p, party := range s.Parties {
			reps[p] = party.Replicas[0]
		}
		m.Shards[i] = cluster.Shard{FirstRecord: s.FirstRecord, NumRecords: s.NumRecords, Replicas: reps}
	}
	return m, m.Validate()
}

// cohorts returns the shard's party → replica-address lists.
func (s DeploymentShard) cohorts() [][]string {
	out := make([][]string, len(s.Parties))
	for p, party := range s.Parties {
		out[p] = party.Replicas
	}
	return out
}
