package impir

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
)

// Store is the unified client surface of an IM-PIR deployment: one
// policy-bearing handle over whatever topology the deployment manifest
// describes — a flat server pair, a sharded cluster, replica sets per
// party, or any combination. Open returns a Store; the concrete type is
// *Client for single-shard deployments and *ClusterClient for sharded
// ones, so topology-specific accessors remain reachable by assertion
// while ordinary code stays topology-blind.
//
// Every call accepts per-call options overriding the Open-level
// defaults: timeouts, hedging, and retry budgets resolve per operation,
// not per connection.
type Store interface {
	// Retrieve privately fetches one record by (global) index.
	Retrieve(ctx context.Context, index uint64, opts ...CallOption) ([]byte, error)
	// RetrieveBatch privately fetches several records in one round trip
	// per server.
	RetrieveBatch(ctx context.Context, indices []uint64, opts ...CallOption) ([][]byte, error)
	// Update pushes a bulk record update — a public operator action — to
	// every replica that holds an affected record.
	Update(ctx context.Context, updates map[uint64][]byte, opts ...CallOption) error
	// NumRecords returns the record count the store serves (padded for
	// flat deployments, exact for sharded ones).
	NumRecords() uint64
	// RecordSize returns the record size in bytes.
	RecordSize() int
	// Stats snapshots the client-side counters.
	Stats() StoreStats
	// Close releases every server connection.
	Close() error
}

// StoreStats is a snapshot of a Store's client-side counters.
type StoreStats = metrics.StoreStats

// Statically bind both topology clients to the Store surface.
var (
	_ Store = (*Client)(nil)
	_ Store = (*ClusterClient)(nil)
)

// Open connects to a whole deployment described by a unified manifest
// and returns it as one logical Store. It is the single entry point for
// every topology:
//
//	d, _ := impir.LoadDeployment("deployment.json")
//	store, _ := impir.Open(ctx, d)
//	defer store.Close()
//	record, _ := store.Retrieve(ctx, 42)
//
// A single-shard deployment opens as a *Client (geometry learned from —
// and, when the manifest declares it, validated against — the server
// handshake); a multi-shard deployment opens as a *ClusterClient; a
// deployment declaring a batch_code section opens as a *CodedStore
// wrapping either, routing RetrieveBatch through the multi-message
// batch planner (and honouring WithSideInfoCache). Options configure
// the encoding, TLS, the interceptor chain, and the default per-call
// policy; per-call options on each operation override those defaults.
// Deployments whose manifest carries a keyword table still open as an
// index store here — use OpenKV for the key→value view.
func Open(ctx context.Context, d Deployment, opts ...ClientOption) (Store, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg := resolveClientConfig(opts)
	if cfg.encoding == nil {
		return nil, errors.New("impir: nil encoding")
	}
	var (
		inner Store
		err   error
	)
	if d.NumShards() == 1 {
		inner, err = openFlat(ctx, d.Shards[0], d.RecordSize, cfg)
	} else {
		inner, err = openCluster(ctx, d, cfg)
	}
	if err != nil {
		return nil, err
	}
	if d.BatchCode == nil {
		return inner, nil
	}
	coded, err := newCodedStore(inner, *d.BatchCode, cfg.sideInfo)
	if err != nil {
		inner.Close()
		return nil, err
	}
	return coded, nil
}

// OpenKV opens a deployment whose manifest carries a keyword table and
// returns the key→value view: a KVClient probing the underlying index
// Store with the constant-shape cuckoo batches. The deployment may be
// flat or sharded; the keyword layer composes with either.
func OpenKV(ctx context.Context, d Deployment, opts ...ClientOption) (*KVClient, error) {
	if d.Keyword == nil {
		return nil, errors.New("impir: deployment manifest carries no keyword table (set Deployment.Keyword or use WithKeyword)")
	}
	store, err := Open(ctx, d, opts...)
	if err != nil {
		return nil, err
	}
	kv, err := newKVClient(store, *d.Keyword)
	if err != nil {
		store.Close()
		return nil, err
	}
	return kv, nil
}

// defaultHedgeDelay is the floor before a party's share is hedged to
// its next-fastest replica when no per-call delay is set. The effective
// delay adapts upward to twice the primary's observed latency, so
// hedges fire on tail stalls, not on ordinary slowness.
const defaultHedgeDelay = 10 * time.Millisecond

// callOptions is the resolved per-call policy: Open-level defaults
// overridden by the CallOptions of one operation.
type callOptions struct {
	timeout    time.Duration // whole-operation deadline; 0 = none
	hedge      bool          // hedge across a party's replica set
	hedgeDelay time.Duration // floor before the first hedge; 0 = defaultHedgeDelay
	retries    int           // extra whole-operation attempts on transient failure
}

func defaultCallOptions() callOptions {
	return callOptions{hedge: true}
}

// CallOption adjusts the policy of a single Store operation, overriding
// the Open-level defaults installed with WithDefaultCallOptions.
type CallOption func(*callOptions)

// WithCallTimeout bounds the whole operation — every fan-out, hedge and
// retry included — by d. Zero removes an Open-level default timeout.
func WithCallTimeout(d time.Duration) CallOption {
	return func(co *callOptions) { co.timeout = d }
}

// WithHedging enables or disables hedged replica fan-out for the call.
// Hedging is on by default; it is a no-op for single-replica parties.
// Hedged replicas of the same party receive the same share that party
// would have received anyway — hedging trades a little duplicate work
// for tail latency, never privacy.
func WithHedging(on bool) CallOption {
	return func(co *callOptions) { co.hedge = on }
}

// WithHedgeDelay sets the floor before a lagging primary replica's
// share is hedged to the party's next-fastest replica. The effective
// delay is max(d, 2× the primary's observed latency), so a well-tuned
// floor approximates the deployment's p50.
func WithHedgeDelay(d time.Duration) CallOption {
	return func(co *callOptions) { co.hedgeDelay = d }
}

// WithRetries grants the call a budget of n extra whole-operation
// attempts after transient failures (server busy, broken or poisoned
// connections — which are transparently redialed before the next
// attempt, unifying the redial path with the retry path). Context
// cancellation and deadline expiry are never retried.
func WithRetries(n int) CallOption {
	return func(co *callOptions) {
		if n >= 0 {
			co.retries = n
		}
	}
}

// UnaryInvoker advances a Retrieve call to the next interceptor, or to
// the transport when invoked by the last one.
type UnaryInvoker func(ctx context.Context, index uint64) ([]byte, error)

// UnaryInterceptor intercepts Retrieve calls: it may inspect the
// context and index, short-circuit by returning without invoking, or
// wrap the invocation with logging, metrics, tracing, deadlines…
// Interceptors run in registration order, first outermost. The index an
// interceptor sees never leaves the client: everything below the
// interceptor chain is the PIR encoding, so observability code here
// sees what the servers cannot.
type UnaryInterceptor func(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error)

// BatchInvoker advances a RetrieveBatch call to the next interceptor,
// or to the transport when invoked by the last one.
type BatchInvoker func(ctx context.Context, indices []uint64) ([][]byte, error)

// BatchInterceptor intercepts RetrieveBatch calls; see UnaryInterceptor.
type BatchInterceptor func(ctx context.Context, indices []uint64, invoke BatchInvoker) ([][]byte, error)

// policy is the per-store call engine every topology client shares: the
// interceptor chain, the default call options, and the retry loop. The
// topology clients are thin views over it — a flat Client resolves a
// call and hands the core operation here, a ClusterClient does the same
// and fans the core out to its per-shard clients with the already
// resolved options (so interceptors and retries run exactly once per
// logical operation, never once per shard).
type policy struct {
	unary    []UnaryInterceptor
	batch    []BatchInterceptor
	defaults callOptions
	onRetry  func() // stats hook; called once per extra attempt
}

// resolve merges per-call options over the store defaults.
func (p *policy) resolve(opts []CallOption) callOptions {
	co := p.defaults
	for _, o := range opts {
		o(&co)
	}
	return co
}

// retryable reports whether a failed attempt may be re-tried: the
// caller aborting (cancellation, deadline) is final; everything else —
// busy servers, dropped or poisoned connections, replica failures — may
// succeed on a fresh attempt over redialed connections.
func retryable(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// withBudget runs core under the call's timeout and retry budget.
func (p *policy) withBudget(ctx context.Context, co callOptions, core func(ctx context.Context) error) error {
	if co.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.timeout)
		defer cancel()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := core(ctx)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= co.retries || !retryable(err) {
			return lastErr
		}
		if p.onRetry != nil {
			p.onRetry()
		}
		// attempt+1 extra attempts spent so far; the root span (installed
		// above this loop by the tracing interceptor) keeps the final tally.
		obs.SpanFromContext(ctx).SetAttrInt("retries", int64(attempt+1))
	}
}

// doUnary runs one Retrieve through the interceptor chain, the timeout,
// and the retry budget, in that nesting order: interceptors see one
// logical operation however many attempts it takes.
func (p *policy) doUnary(ctx context.Context, co callOptions, index uint64, core func(ctx context.Context, index uint64) ([]byte, error)) ([]byte, error) {
	inv := UnaryInvoker(func(ctx context.Context, index uint64) ([]byte, error) {
		var rec []byte
		err := p.withBudget(ctx, co, func(ctx context.Context) error {
			var cerr error
			rec, cerr = core(ctx, index)
			return cerr
		})
		if err != nil {
			return nil, err
		}
		return rec, nil
	})
	for i := len(p.unary) - 1; i >= 0; i-- {
		ic, next := p.unary[i], inv
		inv = func(ctx context.Context, index uint64) ([]byte, error) {
			return ic(ctx, index, next)
		}
	}
	return inv(ctx, index)
}

// doBatch is doUnary for RetrieveBatch.
func (p *policy) doBatch(ctx context.Context, co callOptions, indices []uint64, core func(ctx context.Context, indices []uint64) ([][]byte, error)) ([][]byte, error) {
	inv := BatchInvoker(func(ctx context.Context, indices []uint64) ([][]byte, error) {
		var recs [][]byte
		err := p.withBudget(ctx, co, func(ctx context.Context) error {
			var cerr error
			recs, cerr = core(ctx, indices)
			return cerr
		})
		if err != nil {
			return nil, err
		}
		return recs, nil
	})
	for i := len(p.batch) - 1; i >= 0; i-- {
		ic, next := p.batch[i], inv
		inv = func(ctx context.Context, indices []uint64) ([][]byte, error) {
			return ic(ctx, indices, next)
		}
	}
	return inv(ctx, indices)
}

// doUpdate runs an Update under the timeout and retry budget. Updates
// carry no interceptor chain: they are operator actions, not queries.
func (p *policy) doUpdate(ctx context.Context, co callOptions, core func(ctx context.Context) error) error {
	return p.withBudget(ctx, co, core)
}

// countFailure classifies a failed logical operation into a store's
// error counters: every failure is an Error; one caused by server-side
// backpressure (a MsgBusy admission reject) is also a Busy, so load
// generators and operators can tell overload apart from breakage.
func countFailure(st *metrics.StoreStats, err error) {
	st.Errors++
	if errors.Is(err, ErrServerBusy) {
		st.Busy++
	}
}

// fmtParty names a party for error messages, with its replica count
// when hedging makes "which replica" ambiguous.
func fmtParty(p, replicas int) string {
	if replicas > 1 {
		return fmt.Sprintf("party %d (%d replicas)", p, replicas)
	}
	return fmt.Sprintf("party %d", p)
}
