#!/usr/bin/env bash
# metrics-lint.sh -- Prometheus text exposition (version 0.0.4) linter.
#
# Validates a /metrics scrape from a file argument or stdin against the
# invariants a scrape consumer relies on:
#
#   * every sample belongs to a family announced by "# TYPE", and every
#     TYPE'd family carries a "# HELP" line
#   * TYPE is one of counter, gauge, histogram, summary, untyped
#   * sample values parse as numbers; no duplicate series
#   * histogram families: le buckets are sorted ascending and their
#     values non-decreasing (cumulative), the +Inf bucket exists and
#     equals the series' _count, and _sum/_count are present
#
# Timestamped samples are rejected: impir's exporter never emits them,
# so one showing up means the exposition didn't come from impir.
#
# Usage:
#   curl -fsS localhost:9090/metrics | ./scripts/metrics-lint.sh
#   ./scripts/metrics-lint.sh scrape.txt

set -euo pipefail

awk '
function fail(msg) {
    printf "metrics-lint: line %d: %s\n", NR, msg > "/dev/stderr"
    bad = 1
}
# famOf strips histogram sample suffixes down to the declared family.
function famOf(name,   b) {
    if (name in type) return name
    b = name
    if (sub(/_bucket$/, "", b) && (b in type)) return b
    b = name
    if (sub(/_sum$/, "", b) && (b in type)) return b
    b = name
    if (sub(/_count$/, "", b) && (b in type)) return b
    return name
}
/^# HELP / { help[$3] = 1; next }
/^# TYPE / {
    if ($4 !~ /^(counter|gauge|histogram|summary|untyped)$/)
        fail("family " $3 ": unknown TYPE \"" $4 "\"")
    if ($3 in type)
        fail("family " $3 ": duplicate TYPE line")
    type[$3] = $4
    families++
    next
}
/^#/ { next }
/^[ \t]*$/ { next }
{
    # A sample line: name[{labels}] value. The value is the last
    # whitespace-separated token (label VALUES may contain spaces; le
    # and friends never do).
    if (match($0, /[^ \t]+$/) == 0) { fail("unparseable line"); next }
    value = substr($0, RSTART, RLENGTH)
    id = substr($0, 1, RSTART - 1)
    sub(/[ \t]+$/, "", id)
    if (id == "") { fail("sample with no name"); next }
    if (value !~ /^[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|NaN|Inf|-Inf|\+Inf)$/) {
        fail("sample " id ": bad value \"" value "\" (timestamps are rejected)")
        next
    }
    if (id in seen) fail("duplicate series " id)
    seen[id] = 1
    samples++

    # Split the series id into metric name and label block.
    if (match(id, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) { fail("bad metric name in " id); next }
    name = substr(id, RSTART, RLENGTH)
    labels = substr(id, RLENGTH + 1)
    if (labels != "" && labels !~ /^\{.*\}$/) { fail("malformed label block in " id); next }

    fam = famOf(name)
    if (!(fam in type)) { fail("sample " id ": no # TYPE for family"); next }
    if (!(fam in help)) { fail("sample " id ": family " fam " has no # HELP"); next }

    if (type[fam] != "histogram") next

    # Histogram bookkeeping, grouped by the series labels minus le.
    if (name == fam "_bucket") {
        if (match(labels, /le="[^"]*"/) == 0) { fail("bucket " id " has no le label"); next }
        le = substr(labels, RSTART + 4, RLENGTH - 5)
        rest = substr(labels, 1, RSTART - 1) substr(labels, RSTART + RLENGTH)
        gsub(/,\}$/, "}", rest); gsub(/\{,/, "{", rest); gsub(/,,/, ",", rest)
        key = fam SUBSEP rest
        if (key in lastLe) {
            if (lastLe[key] == "+Inf")
                fail("bucket " id ": bucket after le=\"+Inf\"")
            else if (le != "+Inf" && (le + 0) <= (lastLe[key] + 0))
                fail("bucket " id ": le not ascending (" lastLe[key] " then " le ")")
            if ((value + 0) < (lastVal[key] + 0))
                fail("bucket " id ": cumulative count decreased (" lastVal[key] " then " value ")")
        }
        lastLe[key] = le; lastVal[key] = value
        if (le == "+Inf") inf[key] = value
        hkeys[key] = fam
    } else if (name == fam "_count") {
        cnt[fam SUBSEP labels] = value
    } else if (name == fam "_sum") {
        sum[fam SUBSEP labels] = 1
    } else {
        fail("sample " id ": histogram family with non-histogram sample")
    }
}
END {
    for (key in hkeys) {
        split(key, p, SUBSEP)
        where = p[1] p[2]
        if (!(key in inf)) { fail("histogram " where ": missing +Inf bucket"); continue }
        if (!(key in cnt)) { fail("histogram " where ": missing _count"); continue }
        if (!(key in sum)) fail("histogram " where ": missing _sum")
        if ((inf[key] + 0) != (cnt[key] + 0))
            fail("histogram " where ": +Inf bucket " inf[key] " != _count " cnt[key])
    }
    if (bad) exit 1
    printf "metrics-lint: ok — %d families, %d samples\n", families, samples
}
' "${1:-/dev/stdin}"
