#!/usr/bin/env bash
# perf-gate.sh -- CI performance regression gate.
#
# Runs the canonical short load profile against an in-process selfserve
# deployment (2 shards, replicated party, real loopback TCP) and
# compares the result against the committed baseline BENCH_loadgen.json.
# A gated metric regressing past the threshold fails the build.
#
# Usage:
#   ./scripts/perf-gate.sh            # gate: compare against baseline
#   ./scripts/perf-gate.sh refresh    # refresh: rewrite the baseline
#
# Environment:
#   BASELINE    Baseline path        (default: BENCH_loadgen.json)
#   THRESHOLD   Allowed regression % (default: 25)
#   ARTIFACT    Where to write the run's JSON artifact
#               (default: loadgen-run.json, git-ignored)
#
# The profile below IS the baseline's fingerprint: every flag that
# shapes the load is pinned (including -workers, whose default would
# otherwise follow the machine's core count). Change a flag here and the
# gate will refuse to compare until the baseline is refreshed — that is
# the fingerprint doing its job.
#
# Refresh the baseline deliberately, on a quiet machine of the hardware
# class CI uses, after a change that legitimately moves the numbers:
#   ./scripts/perf-gate.sh refresh && git add BENCH_loadgen.json

set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="${BASELINE:-BENCH_loadgen.json}"
THRESHOLD="${THRESHOLD:-25}"
ARTIFACT="${ARTIFACT:-loadgen-run.json}"
MODE="${1:-gate}"

# The canonical gate profile: ~12s of load, well under the CI budget,
# long enough (2000 measured ops) for stable p50/p99.
PROFILE=(
    -selfserve
    -engine cpu
    -records 4096
    -workload index
    -qps 200
    -duration 10s
    -warmup 2s
    -clients 32
    -workers 32
    -conns 8
    -batch 1
    -timeout 5s
    -seed 1
    -interval 5s
    -json
)

case "$MODE" in
    gate)
        echo "perf-gate: running the canonical profile against $BASELINE (threshold ${THRESHOLD}%)"
        # One retry on failure: a shared runner's scheduling hiccup can
        # push a tail metric past the threshold on a healthy build. A
        # real regression fails both runs; a flake failing twice in a
        # row is quadratically unlikely.
        if go run ./cmd/impir-loadgen "${PROFILE[@]}" \
            -baseline "$BASELINE" -threshold "$THRESHOLD" > "$ARTIFACT"; then
            echo "perf-gate: ok (artifact: $ARTIFACT)"
        else
            echo "perf-gate: first run regressed; retrying once to rule out a noisy-neighbour flake"
            go run ./cmd/impir-loadgen "${PROFILE[@]}" \
                -baseline "$BASELINE" -threshold "$THRESHOLD" > "$ARTIFACT"
            echo "perf-gate: ok on retry (artifact: $ARTIFACT)"
        fi
        ;;
    refresh)
        NOTE="refreshed $(date -u '+%Y-%m-%dT%H:%M:%SZ') at $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
        echo "perf-gate: refreshing $BASELINE"
        go run ./cmd/impir-loadgen "${PROFILE[@]}" \
            -save "$BASELINE" -note "$NOTE" > "$ARTIFACT"
        echo "perf-gate: baseline rewritten; review and commit $BASELINE"
        ;;
    *)
        echo "perf-gate: unknown mode '$MODE' (want 'gate' or 'refresh')" >&2
        exit 2
        ;;
esac
