#!/usr/bin/env bash
# bench-report.sh -- Run the IM-PIR benchmarks and format the results,
# so successive PRs can track the performance trajectory.
#
# Usage:
#   ./scripts/bench-report.sh [options]
#
# Options:
#   -t BENCHTIME   Per-benchmark run time or iteration count (default: 1s)
#   -c COUNT       Number of runs per benchmark (default: 1)
#   -p PACKAGE     Restrict to a specific package path (default: ./...)
#   -r REGEXP      Benchmark filter regexp (default: .)
#   -o OUTPUT      Write raw output to this file (default: stdout only)
#   -j JSONFILE    Also write the impir-bench experiment reports as a
#                  machine-readable JSON array (impir-bench -json) to
#                  this file, for downstream tooling and CI artifacts
#   -h             Show this help message

set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
PACKAGE="${PACKAGE:-./...}"
REGEXP="${REGEXP:-.}"
OUTPUT=""
JSONFILE=""

usage() {
    grep '^#' "$0" | sed 's/^# \?//'
    exit 0
}

while getopts "t:c:p:r:o:j:h" opt; do
    case "$opt" in
        t) BENCHTIME="$OPTARG" ;;
        c) COUNT="$OPTARG"     ;;
        p) PACKAGE="$OPTARG"   ;;
        r) REGEXP="$OPTARG"    ;;
        o) OUTPUT="$OPTARG"    ;;
        j) JSONFILE="$OPTARG"  ;;
        h) usage               ;;
        *) usage               ;;
    esac
done

TIMESTAMP="$(date -u '+%Y-%m-%dT%H:%M:%SZ')"
GIT_REF="$(git describe --tags --always --dirty 2>/dev/null || echo "unknown")"
GO_VERSION="$(go version)"

header() {
    echo "=========================================="
    echo "  IM-PIR Performance Benchmark Report"
    echo "=========================================="
    echo "  Timestamp : ${TIMESTAMP}"
    echo "  Git ref   : ${GIT_REF}"
    echo "  Go        : ${GO_VERSION}"
    echo "  Package   : ${PACKAGE}"
    echo "  Run time  : -benchtime=${BENCHTIME}"
    echo "  Count     : -count=${COUNT}"
    echo "  Filter    : -bench=${REGEXP}"
    echo "=========================================="
    echo ""
}

run_benchmarks() {
    local args=(
        -bench="${REGEXP}"
        -benchmem
        -benchtime="${BENCHTIME}"
        -count="${COUNT}"
        -run='^$'   # skip unit tests
    )

    echo "Running: go test ${PACKAGE} ${args[*]}"
    echo ""

    go test "${PACKAGE}" "${args[@]}"

    # Request-scheduler queue metrics (admission depth, queue wait,
    # coalesced pass size, busy rejections) — reported as custom benchmark
    # metrics so the serial-vs-coalesced trajectory is tracked per PR.
    # Skipped when the caller already targeted the scheduler package.
    if [[ "${PACKAGE}" != *internal/scheduler* ]]; then
        echo ""
        echo "--- Scheduler queue metrics (serial vs coalesced) ---"
        go test ./internal/scheduler -run='^$' -bench='BenchmarkScheduler' \
            -benchtime="${BENCHTIME}" -count="${COUNT}"
    fi

    # Shard scaling (internal/cluster): the same total database carved
    # into 1/2/4/8 row-range shards — per-shard scan time must fall with
    # the shard count, the cluster layer's whole point. Model layer only
    # (-verify-records 0). Runs only for whole-repo or root-package
    # reports; package-scoped runs stay scoped.
    if [[ "${PACKAGE}" == "./..." || "${PACKAGE}" == "." ]]; then
        echo ""
        echo "--- Shard scaling (1 vs 2 vs 4 vs 8 shards, same total DB) ---"
        go run ./cmd/impir-bench -experiment shards -verify-records 0
    fi

    # Hedged replica fan-out: tail-latency model (p50/p99 vs stall
    # probability, 2 replicas per party) plus a functional race through
    # fanout.Hedge — the unified Store API's availability layer. The
    # hedged p99 must collapse the stall tail toward p50.
    if [[ "${PACKAGE}" == "./..." || "${PACKAGE}" == "." ]]; then
        echo ""
        echo "--- Hedging tail latency (unhedged vs hedged p99) ---"
        go run ./cmd/impir-bench -experiment hedging -verify-records 2048
    fi

    # Keyword retrieval (internal/keyword): real cuckoo tables at
    # growing pair counts — the effective load factor must hold its
    # 0.85 target, the stash must stay negligible and constant, and the
    # modeled k-probe lookup cost is tracked against plain index-PIR so
    # keyword overhead is visible per PR. Includes a small functional
    # hit/miss verification through a real engine pair.
    if [[ "${PACKAGE}" == "./..." || "${PACKAGE}" == "." ]]; then
        echo ""
        echo "--- Keyword retrieval (load factor + k-probe lookup cost) ---"
        go run ./cmd/impir-bench -experiment keyword -verify-records 2048
    fi

    # Fused one-pass batch dpXOR: a memory-bound measured comparison of
    # one fused B-selector scan vs B independent scans (per-query time
    # must fall, effective scan bandwidth must rise with B), plus modeled
    # engine cross-checks and a fused-vs-per-query bit-exactness
    # verification on the CPU, GPU and PIM engines.
    if [[ "${PACKAGE}" == "./..." || "${PACKAGE}" == "." ]]; then
        echo ""
        echo "--- Batch fusion (fused one-pass dpXOR vs per-query scans) ---"
        go run ./cmd/impir-bench -experiment batchfuse -verify-records 2048
    fi

    # Multi-message batch code: measured per-server cost of a B-record
    # RetrieveBatch on a coded deployment (constant buckets/shards +
    # overflow sub-queries) vs the uncoded fan-out (B sub-queries per
    # server), at equal per-server storage, plus the keyword Get
    # before/after and a Derive→Encode→PlanBatch decode verification.
    # The B=8 row must show the ≥2× per-server win.
    if [[ "${PACKAGE}" == "./..." || "${PACKAGE}" == "." ]]; then
        echo ""
        echo "--- Batch code (coded vs uncoded multi-message batches) ---"
        go run ./cmd/impir-bench -experiment batchcode -verify-records 2048
    fi
}

# Machine-readable experiment reports: the model-layer experiments as
# one JSON array (schema impir-bench/1), alongside the human report.
write_json_reports() {
    if [[ -n "$JSONFILE" ]]; then
        echo ""
        echo "Writing machine-readable experiment reports to: ${JSONFILE}"
        go run ./cmd/impir-bench -verify-records 0 -json > "$JSONFILE"
    fi
}

if [[ -n "$OUTPUT" ]]; then
    {
        header
        run_benchmarks
    } | tee "$OUTPUT"
    echo ""
    echo "Raw results written to: ${OUTPUT}"
else
    header
    run_benchmarks
fi
write_json_reports
