package impir

import (
	"context"
)

// Session is a client connection to a two-server PIR deployment.
//
// Deprecated: Session is a thin wrapper over Client, retained for one
// release so existing callers migrate incrementally. Use Dial with two
// addresses instead — it performs the same replica validation, adds
// context support, and queries both servers concurrently instead of
// sequentially.
//
// One behavioural difference carries over from Client: a failed
// retrieval cancels the concurrent fan-out, which can abandon the other
// server's exchange mid-flight and poison its connection. After any
// Retrieve/RetrieveBatch error, discard the Session and reconnect (the
// old sequential Session could keep going after a per-server error).
type Session struct {
	c *Client
}

// Connect dials both PIR servers and cross-checks their replicas.
//
// Deprecated: use Dial, which takes a context and generalises to n
// servers.
func Connect(addr0, addr1 string) (*Session, error) {
	c, err := Dial(context.Background(), []string{addr0, addr1}, WithEncoding(EncodingDPF))
	if err != nil {
		return nil, err
	}
	return &Session{c: c}, nil
}

// Client returns the underlying Client, easing migration off the
// deprecated wrapper.
func (s *Session) Client() *Client { return s.c }

// NumRecords returns the (padded) record count of the deployment.
func (s *Session) NumRecords() uint64 { return s.c.NumRecords() }

// RecordSize returns the record size in bytes.
func (s *Session) RecordSize() int { return s.c.RecordSize() }

// Retrieve privately fetches record `index`. Neither server learns the
// index; each sees only its pseudorandom DPF key.
//
// Deprecated: use Client.Retrieve, which takes a context.
func (s *Session) Retrieve(index uint64) ([]byte, error) {
	return s.c.Retrieve(context.Background(), index)
}

// RetrieveBatch privately fetches several records in one round trip per
// server using the servers' batch pipeline.
//
// Deprecated: use Client.RetrieveBatch, which takes a context.
func (s *Session) RetrieveBatch(indices []uint64) ([][]byte, error) {
	return s.c.RetrieveBatch(context.Background(), indices)
}

// Close closes both server connections.
func (s *Session) Close() error { return s.c.Close() }
