package impir

import (
	"errors"
	"fmt"

	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/transport"
)

// Session is a client connection to a two-server PIR deployment. It
// validates on connect that both servers present byte-identical database
// replicas (a replica mismatch silently breaks reconstruction), then
// privately retrieves records by index.
type Session struct {
	conns      [2]*transport.Conn
	numRecords uint64
	recordSize int
	domain     int
}

// Connect dials both PIR servers and cross-checks their replicas.
func Connect(addr0, addr1 string) (*Session, error) {
	c0, err := transport.Dial(addr0)
	if err != nil {
		return nil, fmt.Errorf("impir: server 0: %w", err)
	}
	c1, err := transport.Dial(addr1)
	if err != nil {
		c0.Close()
		return nil, fmt.Errorf("impir: server 1: %w", err)
	}
	s := &Session{conns: [2]*transport.Conn{c0, c1}}
	if err := s.validate(); err != nil {
		s.Close()
		return nil, err
	}
	i := c0.Info()
	s.numRecords = i.NumRecords
	s.recordSize = int(i.RecordSize)
	s.domain = int(i.Domain)
	return s, nil
}

func (s *Session) validate() error {
	i0, i1 := s.conns[0].Info(), s.conns[1].Info()
	if i0.Digest != i1.Digest {
		return errors.New("impir: servers hold different database replicas (digest mismatch)")
	}
	if i0.NumRecords != i1.NumRecords || i0.RecordSize != i1.RecordSize || i0.Domain != i1.Domain {
		return errors.New("impir: servers disagree on database geometry")
	}
	if i0.NumRecords == 0 {
		return errors.New("impir: servers report an empty database")
	}
	return nil
}

// NumRecords returns the (padded) record count of the deployment.
func (s *Session) NumRecords() uint64 { return s.numRecords }

// RecordSize returns the record size in bytes.
func (s *Session) RecordSize() int { return s.recordSize }

// Retrieve privately fetches record `index`. Neither server learns the
// index; each sees only its pseudorandom DPF key.
func (s *Session) Retrieve(index uint64) ([]byte, error) {
	if index >= s.numRecords {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, s.numRecords)
	}
	k0, k1, err := dpf.Gen(dpf.Params{Domain: s.domain}, index, nil)
	if err != nil {
		return nil, err
	}
	// Query both servers; any network or server error aborts the
	// retrieval (a single subresult is useless — and must never be
	// mistaken for the record).
	r0, err := s.conns[0].Query(k0)
	if err != nil {
		return nil, fmt.Errorf("impir: server 0: %w", err)
	}
	r1, err := s.conns[1].Query(k1)
	if err != nil {
		return nil, fmt.Errorf("impir: server 1: %w", err)
	}
	return Reconstruct(r0, r1)
}

// RetrieveBatch privately fetches several records in one round trip per
// server using the servers' batch pipeline.
func (s *Session) RetrieveBatch(indices []uint64) ([][]byte, error) {
	if len(indices) == 0 {
		return nil, errors.New("impir: empty batch")
	}
	keys0 := make([]*dpf.Key, len(indices))
	keys1 := make([]*dpf.Key, len(indices))
	for i, idx := range indices {
		if idx >= s.numRecords {
			return nil, fmt.Errorf("impir: index %d outside database of %d records", idx, s.numRecords)
		}
		k0, k1, err := dpf.Gen(dpf.Params{Domain: s.domain}, idx, nil)
		if err != nil {
			return nil, err
		}
		keys0[i], keys1[i] = k0, k1
	}
	r0, err := s.conns[0].QueryBatch(keys0)
	if err != nil {
		return nil, fmt.Errorf("impir: server 0: %w", err)
	}
	r1, err := s.conns[1].QueryBatch(keys1)
	if err != nil {
		return nil, fmt.Errorf("impir: server 1: %w", err)
	}
	out := make([][]byte, len(indices))
	for i := range indices {
		rec, err := Reconstruct(r0[i], r1[i])
		if err != nil {
			return nil, fmt.Errorf("impir: batch item %d: %w", i, err)
		}
		out[i] = rec
	}
	return out, nil
}

// Close closes both server connections.
func (s *Session) Close() error {
	var err error
	for _, c := range s.conns {
		if c != nil {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
