module github.com/impir/impir

go 1.22
