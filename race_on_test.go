//go:build race

package impir

// raceEnabledImpir lets allocation-count assertions skip themselves
// under the race detector, whose instrumentation perturbs them.
const raceEnabledImpir = true
