package impir_test

import (
	"bytes"
	"fmt"

	"github.com/impir/impir"
)

// The complete two-server protocol in one process: generate a key pair,
// answer on both replicas, reconstruct.
func Example() {
	db, _ := impir.GenerateHashDB(1024, 7)
	s0, _ := impir.NewServer(impir.ServerConfig{DPUs: 16, Tasklets: 8})
	s1, _ := impir.NewServer(impir.ServerConfig{DPUs: 16, Tasklets: 8})
	_ = s0.Load(db)
	_ = s1.Load(db)
	defer s0.Close()
	defer s1.Close()

	k0, k1, _ := impir.GenerateKeys(db.NumRecords(), 42)
	r0, _, _ := s0.Answer(k0)
	r1, _, _ := s1.Answer(k1)
	record, _ := impir.Reconstruct(r0, r1)

	fmt.Println(bytes.Equal(record, db.Record(42)))
	// Output: true
}

// Reconstruct XORs any number of subresults — here a three-server
// deployment using the naive share encoding.
func ExampleReconstruct() {
	db, _ := impir.GenerateHashDB(256, 3)
	shares, _ := impir.GenerateShares(db.NumRecords(), 99, 3)

	subresults := make([][]byte, 3)
	for i := range subresults {
		s, _ := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
		defer s.Close()
		_ = s.Load(db)
		subresults[i], _, _ = s.AnswerShare(shares[i])
	}

	record, _ := impir.Reconstruct(subresults...)
	fmt.Println(bytes.Equal(record, db.Record(99)))
	// Output: true
}

// DomainFor reports the DPF tree depth for a database size.
func ExampleDomainFor() {
	d, _ := impir.DomainFor(1_000_000)
	fmt.Println(d)
	// Output: 20
}
