package impir_test

import (
	"bytes"
	"context"
	"fmt"
	"net"

	"github.com/impir/impir"
)

// The complete two-server protocol in one process: generate a key pair,
// answer on both replicas, reconstruct.
func Example() {
	ctx := context.Background()
	db, _ := impir.GenerateHashDB(1024, 7)
	s0, _ := impir.NewServer(impir.ServerConfig{DPUs: 16, Tasklets: 8})
	s1, _ := impir.NewServer(impir.ServerConfig{DPUs: 16, Tasklets: 8})
	_ = s0.Load(db)
	_ = s1.Load(db)
	defer s0.Close()
	defer s1.Close()

	k0, k1, _ := impir.GenerateKeys(db.NumRecords(), 42)
	r0, _, _ := s0.Answer(ctx, k0)
	r1, _, _ := s1.Answer(ctx, k1)
	record, _ := impir.Reconstruct(r0, r1)

	fmt.Println(bytes.Equal(record, db.Record(42)))
	// Output: true
}

// A network deployment through the unified Store API: serve two
// replicas over TCP, Open the deployment, retrieve privately. Open
// validates the replicas and picks the DPF encoding from the party
// count; Retrieve queries both parties concurrently.
func ExampleOpen() {
	ctx := context.Background()
	db, _ := impir.GenerateHashDB(1024, 7)
	addrs := make([]string, 2)
	for i := range addrs {
		srv, _ := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
		_ = srv.Load(db)
		defer srv.Close()
		lis, _ := net.Listen("tcp", "127.0.0.1:0")
		_ = srv.Serve(lis, uint8(i))
		addrs[i] = srv.Addr().String()
	}

	store, err := impir.Open(ctx, impir.FlatDeployment(addrs...))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer store.Close()

	record, _ := store.Retrieve(ctx, 42)
	fmt.Println(store.(*impir.Client).Encoding(), bytes.Equal(record, db.Record(42)))
	// Output: dpf true
}

// Deployments with more than two servers use the naive share encoding —
// EncodingAuto selects it from the server count, and RetrieveBatch
// fetches several records in one round trip per server.
func ExampleOpen_threeServers() {
	ctx := context.Background()
	db, _ := impir.GenerateHashDB(512, 3)
	addrs := make([]string, 3)
	for i := range addrs {
		srv, _ := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
		_ = srv.Load(db)
		defer srv.Close()
		lis, _ := net.Listen("tcp", "127.0.0.1:0")
		_ = srv.Serve(lis, uint8(i))
		addrs[i] = srv.Addr().String()
	}

	store, err := impir.Open(ctx, impir.FlatDeployment(addrs...))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer store.Close()

	records, _ := store.RetrieveBatch(ctx, []uint64{99, 300})
	fmt.Println(store.(*impir.Client).Encoding(),
		bytes.Equal(records[0], db.Record(99)),
		bytes.Equal(records[1], db.Record(300)))
	// Output: shares true true
}

// Reconstruct XORs any number of subresults — here a three-server
// deployment using the naive share encoding, in process.
func ExampleReconstruct() {
	ctx := context.Background()
	db, _ := impir.GenerateHashDB(256, 3)
	shares, _ := impir.GenerateShares(db.NumRecords(), 99, 3)

	subresults := make([][]byte, 3)
	for i := range subresults {
		s, _ := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
		defer s.Close()
		_ = s.Load(db)
		subresults[i], _, _ = s.AnswerShare(ctx, shares[i])
	}

	record, _ := impir.Reconstruct(subresults...)
	fmt.Println(bytes.Equal(record, db.Record(99)))
	// Output: true
}

// DomainFor reports the DPF tree depth for a database size.
func ExampleDomainFor() {
	d, _ := impir.DomainFor(1_000_000)
	fmt.Println(d)
	// Output: 20
}
