package impir

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTracerSampleAllCollectsTree(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	invoked := 0
	rec, err := tr.interceptUnary(context.Background(), 5,
		func(ctx context.Context, index uint64) ([]byte, error) {
			invoked++
			return []byte{1}, nil
		})
	if err != nil || len(rec) != 1 || invoked != 1 {
		t.Fatalf("interceptor mangled the call: rec=%v err=%v invoked=%d", rec, err, invoked)
	}
	got := tr.RecentTraces(0)
	if len(got) != 1 || got[0].Name != opRetrieve {
		t.Fatalf("ring = %+v, want one retrieve trace", got)
	}
	if v, _ := got[0].Attr("sampled"); v != "true" {
		t.Fatalf("sampled attr = %q", v)
	}
	if got[0].TraceID == "" || got[0].SpanID == "" {
		t.Fatal("trace missing identity")
	}
}

func TestTracerBatchAndErrorAttrs(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	boom := errors.New("replica down")
	_, err := tr.interceptBatch(context.Background(), []uint64{1, 2, 3},
		func(ctx context.Context, indices []uint64) ([][]byte, error) {
			return nil, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("interceptor swallowed the error: %v", err)
	}
	got := tr.RecentTraces(0)
	if len(got) != 1 || got[0].Name != opRetrieveBatch {
		t.Fatalf("ring = %+v", got)
	}
	if v, _ := got[0].Attr("batch_size"); v != "3" {
		t.Fatalf("batch_size = %q", v)
	}
	if v, _ := got[0].Attr("error"); v != "replica down" {
		t.Fatalf("error attr = %q", v)
	}
}

func TestTracerSlowThresholdRingsOnlySlowOps(t *testing.T) {
	tr := NewTracer(TracerConfig{SlowThreshold: 20 * time.Millisecond})
	call := func(d time.Duration) {
		tr.interceptUnary(context.Background(), 0,
			func(ctx context.Context, index uint64) ([]byte, error) {
				time.Sleep(d)
				return nil, nil
			})
	}
	call(0)
	if got := tr.RecentTraces(0); len(got) != 0 {
		t.Fatalf("fast unsampled op was ringed: %+v", got)
	}
	call(30 * time.Millisecond)
	got := tr.RecentTraces(0)
	if len(got) != 1 {
		t.Fatalf("slow op not ringed: %+v", got)
	}
	if v, _ := got[0].Attr("sampled"); v != "false" {
		t.Fatalf("slow-only trace claims sampled=%q", v)
	}
}

func TestTracerDisabledZeroAllocation(t *testing.T) {
	if raceEnabledImpir {
		t.Skip("allocation counts are unreliable under -race")
	}
	tr := NewTracer(TracerConfig{}) // rate 0, no slow threshold
	ctx := context.Background()
	invoke := func(ctx context.Context, index uint64) ([]byte, error) { return nil, nil }
	allocs := testing.AllocsPerRun(1000, func() {
		tr.interceptUnary(ctx, 1, invoke)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f/op on the unary path, want 0", allocs)
	}
	binvoke := func(ctx context.Context, indices []uint64) ([][]byte, error) { return nil, nil }
	indices := []uint64{1, 2}
	allocs = testing.AllocsPerRun(1000, func() {
		tr.interceptBatch(ctx, indices, binvoke)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f/op on the batch path, want 0", allocs)
	}
}

// BenchmarkTracerDisabledUnary is the perf guard's evidence: the
// interceptor with sampling off must report 0 B/op, 0 allocs/op.
func BenchmarkTracerDisabledUnary(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	ctx := context.Background()
	invoke := func(ctx context.Context, index uint64) ([]byte, error) { return nil, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.interceptUnary(ctx, uint64(i), invoke)
	}
}

func BenchmarkTracerSampledUnary(b *testing.B) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	ctx := context.Background()
	invoke := func(ctx context.Context, index uint64) ([]byte, error) { return nil, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.interceptUnary(ctx, uint64(i), invoke)
	}
}
