//go:build !race

package impir

const raceEnabledImpir = false
