package impir

import (
	"context"
	"fmt"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/naivepir"
)

// Share is one server's selector share under the naive n-server encoding
// of §2.3 / Figure 2 of the paper: an explicit N-bit vector, one bit per
// database record. The XOR of a query's shares is the one-hot indicator
// of the queried index; any proper subset is uniformly random.
//
// Compared with DPF keys (O(λ·log N) bytes), shares cost O(N) bits per
// server — but they work with any number of servers ≥ 2, whereas the DPF
// encoding in this module is two-party. Use GenerateShares + AnswerShare
// (or a Client with EncodingShares over the network) for deployments
// with more than two servers; use GenerateKeys for the
// bandwidth-efficient two-server path.
type Share = bitvec.Vector

// GenerateShares encodes a query for `servers` non-colluding servers
// using the naive §2.3 scheme. Send shares[s] to server s.
func GenerateShares(numRecords int, index uint64, servers int) ([]*Share, error) {
	// The engines pad databases to powers of two, so shares must cover
	// the padded index space to match the server-side record count.
	domain, err := DomainFor(numRecords)
	if err != nil {
		return nil, err
	}
	if index >= uint64(numRecords) {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, numRecords)
	}
	q, err := naivepir.Gen(nil, 1<<uint(domain), index, servers)
	if err != nil {
		return nil, err
	}
	return q.Shares, nil
}

// AnswerShare processes a raw selector-share query on this server — the
// n-server generalisation. The share must cover the server's padded
// record count (as produced by GenerateShares). Like Answer, the request
// goes through the scheduler: it is admission-controlled, and a context
// cancelled while queued dequeues it without an engine pass.
func (s *Server) AnswerShare(ctx context.Context, share *Share) ([]byte, Breakdown, error) {
	return s.sched.QueryShare(ctx, share)
}
