package impir

import (
	"reflect"
	"strings"
	"testing"
)

func TestFlatDeployment(t *testing.T) {
	d := FlatDeployment("a:1", "b:1")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != 1 || len(d.Shards[0].Parties) != 2 {
		t.Fatalf("unexpected shape: %+v", d)
	}
	if d.NumRecords() != 0 {
		t.Fatalf("flat deployment has handshake geometry, got %d records", d.NumRecords())
	}
	if err := FlatDeployment("a:1").Validate(); err == nil {
		t.Fatal("single-party deployment validated")
	}
}

func TestReplicatedDeployment(t *testing.T) {
	d := ReplicatedDeployment([]string{"a:1", "a:2"}, []string{"b:1"})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Shards[0].cohorts(); len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("cohorts = %v", got)
	}
}

func TestDeploymentJSONRoundTrip(t *testing.T) {
	d := Deployment{
		RecordSize: 32,
		Shards: []DeploymentShard{
			{FirstRecord: 0, NumRecords: 100, Parties: []Party{
				{Replicas: []string{"a:1", "a:2"}}, {Replicas: []string{"b:1"}},
			}},
			{FirstRecord: 100, NumRecords: 28, Parties: []Party{
				{Replicas: []string{"c:1"}}, {Replicas: []string{"d:1"}}, {Replicas: []string{"e:1"}},
			}},
		},
	}
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeployment(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", d, back)
	}
}

func TestDeploymentAcceptsClusterManifestJSON(t *testing.T) {
	// An existing cluster.json (per-shard "replicas" shorthand) must
	// parse as single-replica parties.
	m := ShardManifest{RecordSize: 32, Shards: []ClusterShard{
		{FirstRecord: 0, NumRecords: 64, Replicas: []string{"a:1", "b:1"}},
		{FirstRecord: 64, NumRecords: 64, Replicas: []string{"c:1", "d:1"}},
	}}
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDeployment(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, DeploymentFromManifest(m)) {
		t.Fatalf("legacy manifest parsed as %+v", d)
	}
	if len(d.Shards[0].Parties) != 2 || d.Shards[0].Parties[0].Replicas[0] != "a:1" {
		t.Fatalf("shorthand not normalised: %+v", d.Shards[0])
	}
}

func TestDeploymentRejectsMixedShorthand(t *testing.T) {
	_, err := ParseDeployment([]byte(`{"record_size":32,"shards":[
		{"first_record":0,"num_records":4,
		 "parties":[{"replicas":["a:1"]},{"replicas":["b:1"]}],
		 "replicas":["c:1"]}]}`))
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("mixed parties+replicas accepted: %v", err)
	}
}

func TestDeploymentValidation(t *testing.T) {
	base := func() Deployment {
		return Deployment{RecordSize: 32, Shards: []DeploymentShard{
			{FirstRecord: 0, NumRecords: 10, Parties: []Party{
				{Replicas: []string{"a:1"}}, {Replicas: []string{"b:1"}},
			}},
			{FirstRecord: 10, NumRecords: 10, Parties: []Party{
				{Replicas: []string{"c:1"}}, {Replicas: []string{"d:1"}},
			}},
		}}
	}
	cases := map[string]func(*Deployment){
		"no shards":             func(d *Deployment) { d.Shards = nil },
		"gap":                   func(d *Deployment) { d.Shards[1].FirstRecord = 11 },
		"overlap":               func(d *Deployment) { d.Shards[1].FirstRecord = 9 },
		"empty shard":           func(d *Deployment) { d.Shards[1].NumRecords = 0 },
		"one party":             func(d *Deployment) { d.Shards[0].Parties = d.Shards[0].Parties[:1] },
		"party with no replica": func(d *Deployment) { d.Shards[0].Parties[0].Replicas = nil },
		"empty address":         func(d *Deployment) { d.Shards[0].Parties[0].Replicas = []string{""} },
		"no record size":        func(d *Deployment) { d.RecordSize = 0 },
		"negative record size":  func(d *Deployment) { d.RecordSize = -1 },
		"long address": func(d *Deployment) {
			d.Shards[0].Parties[0].Replicas = []string{strings.Repeat("x", 300)}
		},
		"too many replicas": func(d *Deployment) {
			reps := make([]string, maxReplicasPerParty+1)
			for i := range reps {
				reps[i] = "r:1"
			}
			d.Shards[0].Parties[0].Replicas = reps
		},
	}
	for name, mutate := range cases {
		d := base()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base deployment invalid: %v", err)
	}
}

func TestDeploymentSingleShardGeometryOptional(t *testing.T) {
	// Flat deployments may omit geometry entirely…
	if err := FlatDeployment("a:1", "b:1").Validate(); err != nil {
		t.Fatal(err)
	}
	// …or declare it in full…
	d := FlatDeployment("a:1", "b:1")
	d.RecordSize = 32
	d.Shards[0].NumRecords = 64
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// …but a record count without a record size is half a geometry.
	d.RecordSize = 0
	if err := d.Validate(); err == nil {
		t.Fatal("num_records without record_size validated")
	}
}

func TestDeploymentWithKeyword(t *testing.T) {
	pairs := []KVPair{{Key: []byte("k1"), Value: []byte("v1")}, {Key: []byte("k2"), Value: []byte("v2")}}
	_, m, err := BuildKVDB(pairs, KVTableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := FlatDeployment("a:1", "b:1").WithKeyword(m)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeployment(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Keyword == nil || !reflect.DeepEqual(*back.Keyword, m) {
		t.Fatalf("keyword manifest did not round-trip: %+v", back.Keyword)
	}
	bad := d
	kw := *bad.Keyword
	kw.NumBuckets = 0
	bad.Keyword = &kw
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid keyword manifest validated")
	}
}

// FuzzParseDeployment asserts the manifest codec's fixed-point
// property: any accepted input re-encodes to a canonical form that
// parses back to the same deployment, and validation caps hold.
func FuzzParseDeployment(f *testing.F) {
	flat := FlatDeployment("a:1", "b:1")
	flatJSON, _ := flat.JSON()
	f.Add(flatJSON)
	repl, _ := ReplicatedDeployment([]string{"a:1", "a:2"}, []string{"b:1"}).JSON()
	f.Add(repl)
	sharded, _ := Deployment{RecordSize: 32, Shards: []DeploymentShard{
		{FirstRecord: 0, NumRecords: 4, Parties: []Party{{Replicas: []string{"a:1"}}, {Replicas: []string{"b:1"}}}},
		{FirstRecord: 4, NumRecords: 4, Parties: []Party{{Replicas: []string{"c:1"}}, {Replicas: []string{"d:1"}}}},
	}}.JSON()
	f.Add(sharded)
	f.Add([]byte(`{"record_size":32,"shards":[{"first_record":0,"num_records":4,"replicas":["a:1","b:1"]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDeployment(data)
		if err != nil {
			return
		}
		if len(d.Shards) > maxDeploymentShards {
			t.Fatalf("shard cap not enforced: %d", len(d.Shards))
		}
		for _, s := range d.Shards {
			if len(s.Parties) < 2 || len(s.Parties) > maxPartiesPerShard {
				t.Fatalf("party bounds not enforced: %d", len(s.Parties))
			}
			for _, p := range s.Parties {
				if len(p.Replicas) < 1 || len(p.Replicas) > maxReplicasPerParty {
					t.Fatalf("replica bounds not enforced: %d", len(p.Replicas))
				}
			}
		}
		out, err := d.JSON()
		if err != nil {
			t.Fatalf("accepted deployment does not re-encode: %v", err)
		}
		back, err := ParseDeployment(out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(d, back) {
			t.Fatalf("not a fixed point:\n%+v\n%+v", d, back)
		}
	})
}
