package impir

import (
	"bytes"
	"context"
	"net"
	"testing"
)

// TestShareQueriesAcrossEngines: every engine must answer the naive
// share encoding identically to the DPF encoding.
func TestShareQueriesAcrossEngines(t *testing.T) {
	db, err := GenerateHashDB(512, 21)
	if err != nil {
		t.Fatal(err)
	}
	const index = 300
	for _, kind := range []EngineKind{EnginePIM, EngineCPU, EngineGPU} {
		t.Run(kind.String(), func(t *testing.T) {
			shares, err := GenerateShares(db.NumRecords(), index, 3)
			if err != nil {
				t.Fatal(err)
			}
			servers := make([]*Server, 3)
			subresults := make([][]byte, 3)
			for i := range servers {
				servers[i], err = NewServer(testServerConfig(kind))
				if err != nil {
					t.Fatal(err)
				}
				defer servers[i].Close()
				if err := servers[i].Load(db); err != nil {
					t.Fatal(err)
				}
				subresults[i], _, err = servers[i].AnswerShare(context.Background(), shares[i])
				if err != nil {
					t.Fatalf("AnswerShare server %d: %v", i, err)
				}
			}
			rec, err := Reconstruct(subresults...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, db.Record(index)) {
				t.Fatalf("engine %v: 3-server share retrieval wrong", kind)
			}
		})
	}
}

func TestThreeServerDeploymentOverTCP(t *testing.T) {
	db, err := GenerateHashDB(700, 33) // non-power-of-two: shares cover padding
	if err != nil {
		t.Fatal(err)
	}

	addrs := make([]string, 3)
	for i := range addrs {
		srv, err := NewServer(testServerConfig(EngineCPU))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(db); err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr().String()
	}

	ctx := context.Background()
	cli, err := Dial(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Servers() != 3 {
		t.Fatalf("Servers() = %d", cli.Servers())
	}

	for _, idx := range []uint64{0, 350, 699} {
		rec, err := cli.Retrieve(ctx, idx)
		if err != nil {
			t.Fatalf("Retrieve(%d): %v", idx, err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("index %d: wrong record via 3-server client", idx)
		}
	}
	if _, err := cli.Retrieve(ctx, 1<<30); err == nil {
		t.Error("out-of-range retrieve accepted")
	}
}

func TestDialMultiServerValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Error("single server accepted")
	}
	// Mismatched replicas across three servers must be rejected.
	dbA, _ := GenerateHashDB(128, 1)
	dbB, _ := GenerateHashDB(128, 2)
	dbs := []*DB{dbA, dbA, dbB}
	addrs := make([]string, 3)
	for i := range addrs {
		srv, err := NewServer(testServerConfig(EngineCPU))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(dbs[i]); err != nil {
			t.Fatal(err)
		}
		lis, _ := net.Listen("tcp", "127.0.0.1:0")
		if err := srv.Serve(lis, uint8(i)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr().String()
	}
	if _, err := Dial(ctx, addrs); err == nil {
		t.Fatal("mismatched 3-server replicas accepted")
	}
}

func TestGenerateSharesValidation(t *testing.T) {
	if _, err := GenerateShares(0, 0, 2); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := GenerateShares(100, 100, 2); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := GenerateShares(100, 0, 1); err == nil {
		t.Error("single server accepted")
	}
	shares, err := GenerateShares(100, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shares cover the padded index space (128 for 100 records).
	if shares[0].Len() != 128 {
		t.Fatalf("share length %d, want 128 (padded)", shares[0].Len())
	}
}

func TestAnswerShareValidation(t *testing.T) {
	db, _ := GenerateHashDB(128, 1)
	s0, _ := newPair(t, EnginePIM, db)
	short := new(Share) // zero-length share
	if _, _, err := s0.AnswerShare(context.Background(), short); err == nil {
		t.Error("mis-sized share accepted")
	}
}
