package impir

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
)

// batchedConfig builds an engine whose MRAM cannot hold its database
// share, forcing the §3.3 streaming fallback.
func batchedConfig() Config {
	cfg := testConfig(1)
	cfg.PIM.MRAMPerDPU = 1 << 13 // 8 KB per DPU: 8 DPUs hold 64 KB total
	return cfg
}

func TestBatchedModeEndToEnd(t *testing.T) {
	// 4096 records × 32 B = 128 KB > the 64 KB the 8 DPUs can hold at
	// once → 512 records/DPU in ≥ 3 passes of ≤ 192 records.
	const numRecords = 4096
	e0, db := newLoadedEngine(t, batchedConfig(), numRecords)
	e1, _ := newLoadedEngine(t, batchedConfig(), numRecords)

	if e0.clusters[0].resident {
		t.Fatal("engine did not enter batched mode")
	}
	if e0.clusters[0].passes < 2 {
		t.Fatalf("passes = %d, want ≥ 2", e0.clusters[0].passes)
	}

	for _, idx := range []uint64{0, 63, 64, 2047, numRecords - 1} {
		got := queryBothServers(t, e0, e1, db.Domain(), idx)
		if !bytes.Equal(got, db.Record(int(idx))) {
			t.Fatalf("batched mode: index %d wrong", idx)
		}
	}
}

func TestBatchedModeMatchesResident(t *testing.T) {
	// The same database answered by a resident and a batched engine must
	// produce identical subresults for the same key.
	const numRecords = 2048
	resident, db := newLoadedEngine(t, testConfig(1), numRecords)
	batched, _ := newLoadedEngine(t, batchedConfig(), numRecords)

	k0, _ := genKeys(t, db.Domain(), 777)
	r1, bd1, err := resident.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	r2, bd2, err := batched.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("batched and resident engines disagree")
	}
	// Batched mode must pay for staging the database per query.
	if bd2.Modeled[metrics.PhaseCopyToPIM] <= bd1.Modeled[metrics.PhaseCopyToPIM] {
		t.Fatalf("batched copy cost %v not above resident %v — DB staging unaccounted",
			bd2.Modeled[metrics.PhaseCopyToPIM], bd1.Modeled[metrics.PhaseCopyToPIM])
	}
}

func TestBatchedModeBatchQueries(t *testing.T) {
	e0, db := newLoadedEngine(t, batchedConfig(), 2048)
	e1, _ := newLoadedEngine(t, batchedConfig(), 2048)
	keys0 := make([]*dpf.Key, 4)
	keys1 := make([]*dpf.Key, 4)
	idx := []uint64{1, 500, 1500, 2047}
	for i := range keys0 {
		keys0[i], keys1[i] = genKeys(t, db.Domain(), idx[i])
	}
	r0, _, err := e0.QueryBatch(keys0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := e1.QueryBatch(keys1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		rec := make([]byte, 32)
		copy(rec, r0[i])
		for j := range rec {
			rec[j] ^= r1[i][j]
		}
		if !bytes.Equal(rec, db.Record(int(idx[i]))) {
			t.Fatalf("batched batch query %d wrong", i)
		}
	}
}

func TestBatchedModeUpdates(t *testing.T) {
	e0, db := newLoadedEngine(t, batchedConfig(), 2048)
	e1, _ := newLoadedEngine(t, batchedConfig(), 2048)
	newRec := bytes.Repeat([]byte{0xEE}, 32)
	for _, e := range []*Engine{e0, e1} {
		if _, err := e.UpdateRecords(map[uint64][]byte{321: newRec}); err != nil {
			t.Fatal(err)
		}
	}
	got := queryBothServers(t, e0, e1, db.Domain(), 321)
	if !bytes.Equal(got, newRec) {
		t.Fatal("update not visible in batched mode")
	}
}

func TestMRAMTooSmallEvenForOneBatch(t *testing.T) {
	cfg := testConfig(1)
	cfg.PIM.MRAMPerDPU = 256 // cannot hold 64 records of 32 B
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := database.GenerateHashDB(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err == nil {
		t.Fatal("hopelessly small MRAM accepted")
	}
}

func TestMaxRecordsFitting(t *testing.T) {
	tests := []struct {
		mram, recordSize int
	}{
		{1 << 13, 32}, {1 << 20, 32}, {1 << 16, 8}, {4096, 2048},
	}
	for _, tt := range tests {
		for _, batch := range []int{1, 4, 16} {
			got := maxRecordsFitting(tt.mram, tt.recordSize, batch)
			if got%64 != 0 {
				t.Errorf("maxRecordsFitting(%d,%d,%d) = %d, not a 64-multiple", tt.mram, tt.recordSize, batch, got)
			}
			if got > 0 && mramFootprint(got, tt.recordSize, batch) > tt.mram {
				t.Errorf("maxRecordsFitting(%d,%d,%d) = %d overflows MRAM", tt.mram, tt.recordSize, batch, got)
			}
			if mramFootprint(got+64, tt.recordSize, batch) <= tt.mram {
				t.Errorf("maxRecordsFitting(%d,%d,%d) = %d not maximal", tt.mram, tt.recordSize, batch, got)
			}
		}
	}
}
