package impir

import (
	"bytes"
	"testing"
)

func TestUpdateRecordsVisibleToQueries(t *testing.T) {
	for _, clusters := range []int{1, 2} {
		e0, db := newLoadedEngine(t, testConfig(clusters), 512)
		e1, _ := newLoadedEngine(t, testConfig(clusters), 512)

		newRec := bytes.Repeat([]byte{0xAB}, 32)
		updates := map[uint64][]byte{137: newRec}
		cost0, err := e0.UpdateRecords(updates)
		if err != nil {
			t.Fatalf("UpdateRecords: %v", err)
		}
		if _, err := e1.UpdateRecords(updates); err != nil {
			t.Fatalf("UpdateRecords replica: %v", err)
		}
		if cost0.Modeled <= 0 || cost0.Bytes <= 0 {
			t.Errorf("update cost not accounted: %+v", cost0)
		}

		got := queryBothServers(t, e0, e1, db.Domain(), 137)
		if !bytes.Equal(got, newRec) {
			t.Fatalf("clusters=%d: query after update returned stale record %x", clusters, got[:4])
		}
		// Neighbouring records must be untouched.
		got = queryBothServers(t, e0, e1, db.Domain(), 136)
		if !bytes.Equal(got, db.Record(136)) {
			t.Fatalf("clusters=%d: update corrupted neighbouring record", clusters)
		}
	}
}

func TestUpdateRecordsBulk(t *testing.T) {
	e0, db := newLoadedEngine(t, testConfig(2), 512)
	e1, _ := newLoadedEngine(t, testConfig(2), 512)
	updates := make(map[uint64][]byte)
	for i := 0; i < 50; i++ {
		rec := bytes.Repeat([]byte{byte(i + 1)}, 32)
		updates[uint64(i*10)] = rec
	}
	if _, err := e0.UpdateRecords(updates); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.UpdateRecords(updates); err != nil {
		t.Fatal(err)
	}
	for idx, want := range updates {
		got := queryBothServers(t, e0, e1, db.Domain(), uint64(idx))
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d not updated", idx)
		}
	}
}

func TestUpdateRecordsValidation(t *testing.T) {
	e0, _ := newLoadedEngine(t, testConfig(1), 512)

	if _, err := e0.UpdateRecords(nil); err == nil {
		t.Error("empty update set accepted")
	}
	if _, err := e0.UpdateRecords(map[uint64][]byte{^uint64(0): make([]byte, 32)}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := e0.UpdateRecords(map[uint64][]byte{1 << 20: make([]byte, 32)}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := e0.UpdateRecords(map[uint64][]byte{0: make([]byte, 16)}); err == nil {
		t.Error("short record accepted")
	}

	// A bad entry in a batch must not partially apply.
	orig := append([]byte(nil), e0.Database().Record(5)...)
	bad := map[uint64][]byte{
		5:       bytes.Repeat([]byte{0xFF}, 32),
		1 << 20: make([]byte, 32),
	}
	if _, err := e0.UpdateRecords(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if !bytes.Equal(e0.Database().Record(5), orig) {
		t.Fatal("failed batch partially applied")
	}

	unloaded, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unloaded.UpdateRecords(map[uint64][]byte{0: make([]byte, 32)}); err == nil {
		t.Error("update before load accepted")
	}
}
