package impir

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/dpf"
)

// TestQueryBatchFusedMatchesUnfused: the fused multi-stream dpXOR path
// must be bit-exact with per-query launches, in resident mode and in the
// streaming (beyond-MRAM) regime.
func TestQueryBatchFusedMatchesUnfused(t *testing.T) {
	cases := []struct {
		name string
		tune func(*Config)
	}{
		{"resident", func(*Config) {}},
		{"resident 2 clusters", func(c *Config) { c.Clusters = 2 }},
		{"streaming", func(c *Config) { c.PIM.MRAMPerDPU = 16 << 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfgFused := testConfig(1)
			tc.tune(&cfgFused)
			cfgSolo := cfgFused
			cfgSolo.DisableBatchFusion = true

			const numRecords = 2048
			ef, db := newLoadedEngine(t, cfgFused, numRecords)
			es, _ := newLoadedEngine(t, cfgSolo, numRecords)

			const batch = 12
			keys := make([]*dpf.Key, batch)
			for i := range keys {
				k0, _ := genKeys(t, db.Domain(), uint64(i*151)%numRecords)
				keys[i] = k0
			}
			rf, statsF, err := ef.QueryBatch(keys)
			if err != nil {
				t.Fatalf("fused QueryBatch: %v", err)
			}
			rs, statsS, err := es.QueryBatch(keys)
			if err != nil {
				t.Fatalf("unfused QueryBatch: %v", err)
			}
			for i := range keys {
				if !bytes.Equal(rf[i], rs[i]) {
					t.Fatalf("query %d: fused %x != unfused %x", i, rf[i][:8], rs[i][:8])
				}
			}
			if !statsF.Fused {
				t.Error("fused batch stats not marked Fused")
			}
			if statsS.Fused {
				t.Error("fusion-disabled batch stats marked Fused")
			}
		})
	}
}

// TestQueryShareBatch: the share-batch path must agree with per-share
// QueryShare calls and reject malformed inputs.
func TestQueryShareBatch(t *testing.T) {
	const numRecords = 1024
	eng, _ := newLoadedEngine(t, testConfig(2), numRecords)

	rng := rand.New(rand.NewSource(99))
	const batch = 9
	shares := make([]*bitvec.Vector, batch)
	for q := range shares {
		v := bitvec.New(numRecords)
		for i := 0; i < numRecords; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		shares[q] = v
	}

	got, stats, err := eng.QueryShareBatch(shares)
	if err != nil {
		t.Fatalf("QueryShareBatch: %v", err)
	}
	if stats.Queries != batch || !stats.Fused {
		t.Errorf("stats = %+v, want %d fused queries", stats, batch)
	}
	for q, share := range shares {
		want, _, err := eng.QueryShare(share)
		if err != nil {
			t.Fatalf("QueryShare %d: %v", q, err)
		}
		if !bytes.Equal(got[q], want) {
			t.Fatalf("share %d: batch %x != solo %x", q, got[q][:8], want[:8])
		}
	}

	if _, _, err := eng.QueryShareBatch(nil); err == nil {
		t.Error("empty share batch accepted")
	}
	if _, _, err := eng.QueryShareBatch([]*bitvec.Vector{nil}); err == nil {
		t.Error("nil share accepted")
	}
	if _, _, err := eng.QueryShareBatch([]*bitvec.Vector{bitvec.New(64)}); err == nil {
		t.Error("wrong-length share accepted")
	}
}
