package impir

import (
	"errors"
	"fmt"
	"slices"

	"github.com/impir/impir/internal/pim"
)

// UpdateRecords applies a bulk database update during an idle window, as
// §3.3 describes for frequently updated databases: the host rewrites the
// affected records in every cluster's MRAM replica (and in the engine's
// host-side copy) between query batches. The returned cost models the
// CPU→DPU transfer of the dirty records; amortised over the window it
// does not sit on any query's critical path.
//
// UpdateRecords must not run concurrently with Query/QueryBatch — the
// DPUs process queries against a stable database version, exactly the
// discipline the paper prescribes. Callers above the engine get this
// for free: the request scheduler (internal/scheduler) quiesces
// in-flight query passes around every update.
func (e *Engine) UpdateRecords(updates map[uint64][]byte) (pim.Cost, error) {
	if e.db == nil {
		return pim.Cost{}, errors.New("impir: no database loaded")
	}
	if len(updates) == 0 {
		return pim.Cost{}, errors.New("impir: empty update set")
	}
	recordSize := e.db.RecordSize()

	// Validate everything before mutating anything, so a bad entry can
	// not leave replicas diverged.
	indices := make([]uint64, 0, len(updates))
	for idx, rec := range updates {
		if idx >= uint64(e.db.NumRecords()) {
			return pim.Cost{}, fmt.Errorf("impir: update index %d outside [0,%d)", idx, e.db.NumRecords())
		}
		if len(rec) != recordSize {
			return pim.Cost{}, fmt.Errorf("impir: update for record %d has %d bytes, want %d",
				idx, len(rec), recordSize)
		}
		indices = append(indices, idx)
	}
	slices.Sort(indices)

	ranksTouched := make(map[int]struct{})
	var totalBytes int64
	for _, uidx := range indices {
		rec := updates[uidx]
		// Safe narrowing: validated above against the int record count.
		idx := int(uidx)
		if err := e.db.SetRecord(idx, rec); err != nil {
			return pim.Cost{}, err
		}
		for _, c := range e.clusters {
			if !c.resident {
				// Batched clusters restage the database from the host
				// copy on every query; only that copy needs the update.
				continue
			}
			dpuSlot := idx / c.recordsPerDPU
			if dpuSlot >= len(c.dpuIDs) {
				// Beyond the replica's populated chunks (zero padding).
				continue
			}
			dpuID := c.dpuIDs[dpuSlot]
			offset := (idx % c.recordsPerDPU) * recordSize
			if err := e.sys.Preload(dpuID, offset, rec); err != nil {
				return pim.Cost{}, fmt.Errorf("impir: update record %d on DPU %d: %w", idx, dpuID, err)
			}
			ranksTouched[dpuID/e.cfg.PIM.DPUsPerRank] = struct{}{}
			totalBytes += int64(recordSize)
		}
	}

	cost := pim.Cost{
		Modeled: e.cfg.PIM.HostToDPUDuration(totalBytes, len(ranksTouched)),
		Bytes:   totalBytes,
	}
	return cost, nil
}

// ApplyUpdates is UpdateRecords without the cost report — the uniform
// update entry point shared by every engine. The same concurrency
// discipline applies.
func (e *Engine) ApplyUpdates(updates map[uint64][]byte) error {
	_, err := e.UpdateRecords(updates)
	return err
}
