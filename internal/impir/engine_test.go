package impir

import (
	"bytes"
	"testing"
	"time"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/hostmodel"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/pim"
)

// testConfig returns a small engine configuration: 8 DPUs in 2 ranks.
func testConfig(clusters int) Config {
	p := pim.DefaultConfig()
	p.Ranks = 2
	p.DPUsPerRank = 4
	p.MRAMPerDPU = 4 << 20
	p.TaskletsPerDPU = 4
	return Config{
		PIM:         p,
		DPUs:        8,
		Clusters:    clusters,
		EvalWorkers: 2,
		Host:        hostmodel.PIMHost(),
	}
}

func newLoadedEngine(t *testing.T, cfg Config, numRecords int) (*Engine, *database.DB) {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db, err := database.GenerateHashDB(numRecords, 42)
	if err != nil {
		t.Fatalf("GenerateHashDB: %v", err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	return eng, db
}

func genKeys(t *testing.T, domain int, index uint64) (*dpf.Key, *dpf.Key) {
	t.Helper()
	k0, k1, err := dpf.Gen(dpf.Params{Domain: domain}, index, nil)
	if err != nil {
		t.Fatalf("dpf.Gen: %v", err)
	}
	return k0, k1
}

// queryBothServers runs the same query on two replica engines and
// reconstructs the record, the full two-server protocol.
func queryBothServers(t *testing.T, e0, e1 *Engine, domain int, index uint64) []byte {
	t.Helper()
	k0, k1 := genKeys(t, domain, index)
	r0, _, err := e0.Query(k0)
	if err != nil {
		t.Fatalf("server 0 query: %v", err)
	}
	r1, _, err := e1.Query(k1)
	if err != nil {
		t.Fatalf("server 1 query: %v", err)
	}
	out := make([]byte, len(r0))
	for i := range out {
		out[i] = r0[i] ^ r1[i]
	}
	return out
}

func TestEndToEndReconstruction(t *testing.T) {
	const numRecords = 1 << 10
	e0, db := newLoadedEngine(t, testConfig(1), numRecords)
	e1, _ := newLoadedEngine(t, testConfig(1), numRecords)
	domain := db.Domain()

	for _, idx := range []uint64{0, 1, 63, 64, 511, numRecords - 1} {
		got := queryBothServers(t, e0, e1, domain, idx)
		want := db.Record(int(idx))
		if !bytes.Equal(got, want) {
			t.Fatalf("index %d: reconstructed %x, want %x", idx, got[:8], want[:8])
		}
	}
}

func TestEndToEndNonPowerOfTwoDB(t *testing.T) {
	// 700 records → padded to 1024; queries beyond 699 target padding.
	const numRecords = 700
	e0, db := newLoadedEngine(t, testConfig(1), numRecords)
	e1, _ := newLoadedEngine(t, testConfig(1), numRecords)
	domain := e0.Database().Domain()

	got := queryBothServers(t, e0, e1, domain, 699)
	if !bytes.Equal(got, db.Record(699)) {
		t.Fatal("reconstruction failed on non-power-of-two database")
	}
	// A padding index must reconstruct to zeros.
	got = queryBothServers(t, e0, e1, domain, 1000)
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("padding record is not zero")
	}
}

func TestClusteredReconstruction(t *testing.T) {
	for _, clusters := range []int{1, 2, 4} {
		cfg := testConfig(clusters)
		e0, db := newLoadedEngine(t, cfg, 512)
		e1, _ := newLoadedEngine(t, cfg, 512)
		got := queryBothServers(t, e0, e1, db.Domain(), 137)
		if !bytes.Equal(got, db.Record(137)) {
			t.Fatalf("clusters=%d: reconstruction failed", clusters)
		}
	}
}

func TestSingleServerShareIsNotTheRecord(t *testing.T) {
	// One server's subresult alone must not equal the queried record
	// (with overwhelming probability) — sanity check on privacy.
	e0, db := newLoadedEngine(t, testConfig(1), 256)
	k0, _ := genKeys(t, db.Domain(), 42)
	r0, _, err := e0.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(r0, db.Record(42)) {
		t.Fatal("single server share equals the record — query leaked")
	}
}

func TestBreakdownPhases(t *testing.T) {
	e0, db := newLoadedEngine(t, testConfig(1), 1024)
	k0, _ := genKeys(t, db.Domain(), 7)
	_, bd, err := e0.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []metrics.Phase{
		metrics.PhaseEval, metrics.PhaseCopyToPIM, metrics.PhaseDpXOR,
		metrics.PhaseCopyToHost, metrics.PhaseAggregate,
	} {
		if bd.Modeled[p] <= 0 {
			t.Errorf("phase %v has no modeled time", p)
		}
	}
	if bd.Modeled[metrics.PhaseGen] != 0 {
		t.Error("server breakdown contains client Gen time")
	}
	if bd.TotalWall() <= 0 {
		t.Error("no wall time recorded")
	}
}

func TestQueryBatch(t *testing.T) {
	for _, mode := range []EvalMode{EvalPerKeyWorkers, EvalPerQueryParallel} {
		for _, clusters := range []int{1, 2} {
			cfg := testConfig(clusters)
			cfg.EvalMode = mode
			e0, db := newLoadedEngine(t, cfg, 512)
			e1, _ := newLoadedEngine(t, cfg, 512)

			const batch = 9
			indices := make([]uint64, batch)
			keys0 := make([]*dpf.Key, batch)
			keys1 := make([]*dpf.Key, batch)
			for i := range indices {
				indices[i] = uint64((i * 57) % 512)
				keys0[i], keys1[i] = genKeys(t, db.Domain(), indices[i])
			}

			r0, stats0, err := e0.QueryBatch(keys0)
			if err != nil {
				t.Fatalf("mode=%v clusters=%d: batch server 0: %v", mode, clusters, err)
			}
			r1, _, err := e1.QueryBatch(keys1)
			if err != nil {
				t.Fatalf("batch server 1: %v", err)
			}
			for i := range indices {
				rec := make([]byte, 32)
				copy(rec, r0[i])
				for j := range rec {
					rec[j] ^= r1[i][j]
				}
				if !bytes.Equal(rec, db.Record(int(indices[i]))) {
					t.Fatalf("mode=%v clusters=%d: batch query %d wrong", mode, clusters, i)
				}
			}
			if stats0.Queries != batch {
				t.Errorf("stats.Queries = %d, want %d", stats0.Queries, batch)
			}
			if stats0.ModeledLatency <= 0 || stats0.WallLatency <= 0 {
				t.Error("batch latencies not positive")
			}
			if stats0.ModeledQPS() <= 0 {
				t.Error("modeled QPS not positive")
			}
		}
	}
}

func TestValidation(t *testing.T) {
	t.Run("bad config", func(t *testing.T) {
		cfg := testConfig(1)
		cfg.DPUs = 1000 // more than the 8 available
		if _, err := New(cfg); err == nil {
			t.Error("New accepted DPUs > system size")
		}
		cfg = testConfig(3) // 8 % 3 != 0
		if _, err := New(cfg); err == nil {
			t.Error("New accepted non-divisible cluster count")
		}
		cfg = testConfig(1)
		cfg.EvalWorkers = -1
		if _, err := New(cfg); err == nil {
			t.Error("New accepted negative EvalWorkers")
		}
	})

	t.Run("query before load", func(t *testing.T) {
		eng, err := New(testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		k0, _ := genKeys(t, 9, 0)
		if _, _, err := eng.Query(k0); err == nil {
			t.Error("Query before LoadDatabase succeeded")
		}
	})

	t.Run("key domain mismatch", func(t *testing.T) {
		eng, _ := newLoadedEngine(t, testConfig(1), 512) // domain 9
		k0, _ := genKeys(t, 10, 0)
		if _, _, err := eng.Query(k0); err == nil {
			t.Error("Query accepted mismatched key domain")
		}
	})

	t.Run("payload key rejected", func(t *testing.T) {
		eng, _ := newLoadedEngine(t, testConfig(1), 512)
		k0, _, err := dpf.Gen(dpf.Params{Domain: 9, BetaLen: 4}, 0, []byte{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.Query(k0); err == nil {
			t.Error("Query accepted payload-carrying key")
		}
	})

	t.Run("nil inputs", func(t *testing.T) {
		eng, _ := newLoadedEngine(t, testConfig(1), 512)
		if _, _, err := eng.Query(nil); err == nil {
			t.Error("Query(nil) succeeded")
		}
		if err := eng.LoadDatabase(nil); err == nil {
			t.Error("LoadDatabase(nil) succeeded")
		}
		if _, _, err := eng.QueryBatch(nil); err == nil {
			t.Error("QueryBatch(nil) succeeded")
		}
	})

	t.Run("odd record size rejected", func(t *testing.T) {
		eng, err := New(testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		db, err := database.New(64, 12) // not a multiple of 8
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadDatabase(db); err == nil {
			t.Error("LoadDatabase accepted 12-byte records")
		}
	})

	t.Run("database beyond MRAM falls back to batched mode", func(t *testing.T) {
		cfg := testConfig(1)
		cfg.PIM.MRAMPerDPU = 1 << 12 // 4 KB per DPU
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db, err := database.GenerateHashDB(1<<12, 1) // needs 16 KB per DPU
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadDatabase(db); err != nil {
			t.Fatalf("LoadDatabase should stream oversized DBs (§3.3): %v", err)
		}
		if eng.clusters[0].resident {
			t.Fatal("oversized DB loaded as resident")
		}
		if eng.clusters[0].passes < 2 {
			t.Fatalf("passes = %d, want ≥ 2", eng.clusters[0].passes)
		}
	})
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DPUs != 2048 || cfg.Clusters != 1 {
		t.Errorf("DefaultConfig = %d DPUs / %d clusters, want 2048/1", cfg.DPUs, cfg.Clusters)
	}
	if err := cfg.withDefaults().validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestEvalModeString(t *testing.T) {
	if EvalPerKeyWorkers.String() == "" || EvalPerQueryParallel.String() == "" || EvalMode(9).String() == "" {
		t.Error("EvalMode.String returned empty")
	}
}

// TestClusterThroughputImproves: with fixed per-query PIM work and
// fusion disabled, more clusters must not reduce modeled batch
// throughput (Take-away 5 — replica parallelism). With fusion on, the
// trade-off inverts: one wide cluster fuses the whole batch into a
// single database pass, while splitting into replicas multiplies the
// scan traffic — so a single fused cluster must beat its unfused self.
func TestClusterThroughputImproves(t *testing.T) {
	qpsFor := func(clusters int, disableFusion bool) float64 {
		cfg := testConfig(clusters)
		cfg.EvalWorkers = 8
		cfg.DisableBatchFusion = disableFusion
		eng, db := newLoadedEngine(t, cfg, 2048)
		const batch = 16
		keys := make([]*dpf.Key, batch)
		for i := range keys {
			k0, _ := genKeys(t, db.Domain(), uint64(i*100)%2048)
			keys[i] = k0
		}
		_, stats, err := eng.QueryBatch(keys)
		if err != nil {
			t.Fatal(err)
		}
		return stats.ModeledQPS()
	}
	oneUnfused := qpsFor(1, true)
	fourUnfused := qpsFor(4, true)
	if fourUnfused < oneUnfused*0.95 {
		t.Fatalf("unfused: 4 clusters modeled QPS %.1f < 1 cluster %.1f", fourUnfused, oneUnfused)
	}
	oneFused := qpsFor(1, false)
	if oneFused <= oneUnfused {
		t.Fatalf("fused single cluster QPS %.1f not above unfused %.1f", oneFused, oneUnfused)
	}
}

// TestModeledMakespanSchedule checks the pipeline model directly.
func TestModeledMakespanSchedule(t *testing.T) {
	ms := func(xs ...int) []time.Duration {
		out := make([]time.Duration, len(xs))
		for i, x := range xs {
			out[i] = time.Duration(x) * time.Millisecond
		}
		return out
	}

	t.Run("single worker single cluster is serial", func(t *testing.T) {
		got := ModeledMakespan(EvalPerKeyWorkers, 1, 1, ms(10, 10), ms(5, 5))
		// eval q0 at 10, pim done 15; eval q1 at 20, pim 25.
		if got != 25*time.Millisecond {
			t.Fatalf("makespan = %v, want 25ms", got)
		}
	})

	t.Run("pipeline overlaps eval and pim", func(t *testing.T) {
		got := ModeledMakespan(EvalPerQueryParallel, 4, 1, ms(10, 10, 10), ms(10, 10, 10))
		// evals finish 10,20,30; pim runs 10-20, 20-30, 30-40.
		if got != 40*time.Millisecond {
			t.Fatalf("makespan = %v, want 40ms", got)
		}
	})

	t.Run("clusters drain queue in parallel", func(t *testing.T) {
		serial := ModeledMakespan(EvalPerKeyWorkers, 4, 1, ms(1, 1, 1, 1), ms(10, 10, 10, 10))
		parallel := ModeledMakespan(EvalPerKeyWorkers, 4, 4, ms(1, 1, 1, 1), ms(10, 10, 10, 10))
		if serial <= parallel {
			t.Fatalf("serial %v should exceed parallel %v", serial, parallel)
		}
		if parallel != 11*time.Millisecond {
			t.Fatalf("parallel makespan = %v, want 11ms", parallel)
		}
	})
}

func TestEngineName(t *testing.T) {
	eng, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "IM-PIR" {
		t.Errorf("Name() = %q", eng.Name())
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
