// Package impir implements the paper's contribution: the IM-PIR server
// engine, which partitions multi-server PIR query processing between the
// host CPU (DPF key evaluation, AES-NI accelerated) and PIM DPUs (the
// memory-bound dpXOR scan), per §3 and Algorithm 1 of the paper.
//
// One Engine is one PIR server's compute plane. A two-server deployment
// runs two engines on replicas of the same database; the client XORs
// their subresults to reconstruct the record (package impir at the module
// root wires this together).
//
// The engine supports the paper's two batch execution modes (§3.4,
// Fig. 8): a single DPU cluster holding the database sharded across all
// DPUs (queries serialise on the cluster but each uses maximal
// parallelism), or C clusters each holding a full database replica
// (queries fan out across clusters).
package impir

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/hostmodel"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/pimkernel"
	"github.com/impir/impir/internal/xorop"
)

// EvalMode selects how a batch's DPF evaluations are parallelised on the
// host CPU (§3.4).
type EvalMode int

const (
	// EvalPerKeyWorkers is the paper's Fig. 8 workflow: W worker threads
	// each evaluate a different key concurrently (one thread per key)
	// and feed the shared task queue. Default for batches.
	EvalPerKeyWorkers EvalMode = iota + 1
	// EvalPerQueryParallel evaluates one key at a time with all workers
	// cooperating on its subtree partition (§3.2). Single queries always
	// use this mode.
	EvalPerQueryParallel
)

func (m EvalMode) String() string {
	switch m {
	case EvalPerKeyWorkers:
		return "per-key-workers"
	case EvalPerQueryParallel:
		return "per-query-parallel"
	default:
		return fmt.Sprintf("EvalMode(%d)", int(m))
	}
}

// Config configures an IM-PIR engine.
type Config struct {
	// PIM is the simulated PIM machine. Zero value means pim.DefaultConfig.
	PIM pim.Config
	// DPUs is how many DPUs the engine uses (0 = all). The paper uses
	// 2048 of the machine's 2560.
	DPUs int
	// Clusters divides the DPUs into equal clusters, each holding a full
	// database replica (§5.4). 0 or 1 means a single cluster sharding
	// the DB across all DPUs.
	Clusters int
	// EvalWorkers is the host thread count for DPF evaluation. 0 means 8.
	EvalWorkers int
	// EvalStrategy is the full-domain evaluation traversal; zero value
	// means dpf.StrategySubtree (the paper's choice).
	EvalStrategy dpf.Strategy
	// EvalMode selects batch evaluation scheduling; zero value means
	// EvalPerKeyWorkers.
	EvalMode EvalMode
	// Host models the PIM server's host CPU for modeled durations. Zero
	// value means hostmodel.PIMHost.
	Host hostmodel.Model
	// DisableBatchFusion forces one dpXOR launch per query even when a
	// cluster could fuse several selector streams into one database pass.
	// Exists for A/B benchmarking; production keeps fusion on.
	DisableBatchFusion bool
}

// DefaultConfig returns the paper's evaluation configuration: 2048 DPUs,
// one cluster, 16-tasklet DPUs, subtree-parallel host evaluation.
func DefaultConfig() Config {
	return Config{
		PIM:         pim.DefaultConfig(),
		DPUs:        2048,
		Clusters:    1,
		EvalWorkers: 8,
		Host:        hostmodel.PIMHost(),
	}
}

func (c Config) withDefaults() Config {
	if c.PIM.Ranks == 0 && c.PIM.DPUsPerRank == 0 {
		c.PIM = pim.DefaultConfig()
	}
	if c.DPUs == 0 {
		c.DPUs = c.PIM.NumDPUs()
	}
	if c.Clusters == 0 {
		c.Clusters = 1
	}
	if c.EvalWorkers == 0 {
		c.EvalWorkers = 8
	}
	if c.EvalStrategy == 0 {
		c.EvalStrategy = dpf.StrategySubtree
	}
	if c.EvalMode == 0 {
		c.EvalMode = EvalPerKeyWorkers
	}
	if c.Host.Threads == 0 {
		c.Host = hostmodel.PIMHost()
	}
	return c
}

func (c Config) validate() error {
	var errs []error
	if err := c.PIM.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.DPUs < 1 || c.DPUs > c.PIM.NumDPUs() {
		errs = append(errs, fmt.Errorf("impir: DPUs %d outside [1,%d]", c.DPUs, c.PIM.NumDPUs()))
	}
	if c.Clusters < 1 {
		errs = append(errs, fmt.Errorf("impir: Clusters %d must be ≥ 1", c.Clusters))
	}
	if c.Clusters >= 1 && c.DPUs >= 1 && c.DPUs%c.Clusters != 0 {
		errs = append(errs, fmt.Errorf("impir: DPUs %d not divisible by Clusters %d", c.DPUs, c.Clusters))
	}
	if c.EvalWorkers < 1 {
		errs = append(errs, fmt.Errorf("impir: EvalWorkers %d must be ≥ 1", c.EvalWorkers))
	}
	if err := c.Host.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// cluster is one group of DPUs holding a complete database replica (or,
// in batched mode, streaming through it pass by pass).
type cluster struct {
	id     int
	dpuIDs []int
	// recordsPerDPU is B_d: each DPU's share of the database in records,
	// a multiple of 64 so selector words never straddle DPUs.
	recordsPerDPU int
	// layout offsets (identical on every DPU of the cluster).
	selOffset int
	outOffset int
	// maxBatch is the widest fused batch one DPXOR launch on this cluster
	// carries (bounded by per-DPU WRAM and the MRAM selector/output
	// regions sized at load time). 1 means fusion is unavailable.
	maxBatch int
	// resident is true when the whole chunk fits in MRAM and was
	// preloaded (the paper's default "one-shot" mode, §3.3). When false,
	// queries stream the database through MRAM in `passes` batches of
	// perPassRecords records per DPU — the §3.3 adaptation for databases
	// beyond the machine's PIM capacity.
	resident       bool
	passes         int
	perPassRecords int
	// mu serialises use of the cluster's DPUs: hardware executes one
	// kernel per DPU at a time, so concurrent queries (e.g. from
	// concurrent transport connections) queue here rather than
	// double-booking a launch.
	mu sync.Mutex
}

// Engine is an IM-PIR server engine. Query, QueryBatch and the cluster
// scheduler may be called concurrently; cluster access is serialised
// internally the way real hardware serialises kernel launches.
type Engine struct {
	cfg      Config
	sys      *pim.System
	db       *database.DB // padded to a power of two
	domain   int
	clusters []*cluster
	rr       atomic.Uint64 // round-robin cluster pick for single queries
}

// New builds an engine and its simulated PIM system.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sys, err := pim.NewSystem(cfg.PIM)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, sys: sys}, nil
}

// Name identifies the engine in benchmark reports.
func (e *Engine) Name() string { return "IM-PIR" }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// System exposes the underlying PIM system (tests and the roofline
// instrumentation use it).
func (e *Engine) System() *pim.System { return e.sys }

// Database returns the loaded (padded) database, or nil.
func (e *Engine) Database() *database.DB { return e.db }

// LoadDatabase shards the database across every cluster's DPUs and
// preloads the chunks into MRAM (§3.3 "Database preloading"). Preloading
// is a one-time cost excluded from query latency, as in the paper (§5.1).
func (e *Engine) LoadDatabase(db *database.DB) error {
	if db == nil {
		return errors.New("impir: nil database")
	}
	if db.RecordSize()%8 != 0 || db.RecordSize() > pim.DMAMaxTransfer {
		return fmt.Errorf("impir: record size %d must be a positive multiple of 8 bytes ≤ %d",
			db.RecordSize(), pim.DMAMaxTransfer)
	}
	padded := db.PadToPowerOfTwo()
	if padded == db {
		// PadToPowerOfTwo returned the caller's storage; clone so this
		// replica is independent of the caller's and of other engines
		// loaded from the same DB (true replica semantics for §3.3
		// updates).
		padded = db.Clone()
	}
	n := padded.NumRecords()
	recordSize := padded.RecordSize()

	dpusPerCluster := e.cfg.DPUs / e.cfg.Clusters
	recordsPerDPU := (n + dpusPerCluster - 1) / dpusPerCluster
	recordsPerDPU = (recordsPerDPU + 63) / 64 * 64

	// The fused batch width is bounded first by per-DPU WRAM (the kernel
	// keeps one partial per tasklet per stream on chip), then by the MRAM
	// room left for B selector streams and B subresults.
	wramBatch := pimkernel.MaxFusedSelectors(e.cfg.PIM, recordSize)

	// Resident ("one-shot", §3.3) when the whole chunk plus selectors fit
	// in MRAM; otherwise fall back to streaming the database through MRAM
	// in batches per query. In both regimes, pick the widest fused batch
	// that still fits — fusion amortises the dominant per-pass costs (the
	// chunk DMA and, in streaming mode, restaging the database), so width
	// beats per-pass capacity.
	maxBatch := 1
	resident := false
	perPass := recordsPerDPU
	for b := wramBatch; b >= 1; b-- {
		if mramFootprint(recordsPerDPU, recordSize, b) <= e.cfg.PIM.MRAMPerDPU {
			maxBatch = b
			resident = true
			break
		}
	}
	passes := 1
	if !resident {
		for b := wramBatch; b >= 1; b-- {
			if fit := maxRecordsFitting(e.cfg.PIM.MRAMPerDPU, recordSize, b); fit >= 64 {
				maxBatch = b
				perPass = fit
				break
			}
		}
		if perPass == recordsPerDPU || perPass < 64 {
			return fmt.Errorf("impir: MRAM of %d bytes cannot hold even one 64-record batch of %d-byte records",
				e.cfg.PIM.MRAMPerDPU, recordSize)
		}
		passes = (recordsPerDPU + perPass - 1) / perPass
	}

	// MRAM layout: [db chunk | maxBatch selector streams | maxBatch
	// subresults], 8-aligned.
	selOffset := align8(perPass * recordSize)
	outOffset := align8(selOffset + maxBatch*perPass/8)

	clusters := make([]*cluster, e.cfg.Clusters)
	for ci := range clusters {
		c := &cluster{
			id:             ci,
			dpuIDs:         make([]int, dpusPerCluster),
			recordsPerDPU:  recordsPerDPU,
			selOffset:      selOffset,
			outOffset:      outOffset,
			maxBatch:       maxBatch,
			resident:       resident,
			passes:         passes,
			perPassRecords: perPass,
		}
		for i := 0; i < dpusPerCluster; i++ {
			dpuID := ci*dpusPerCluster + i
			c.dpuIDs[i] = dpuID
			if resident {
				if err := e.sys.Preload(dpuID, 0, dbSlice(padded, i*recordsPerDPU, recordsPerDPU)); err != nil {
					return fmt.Errorf("impir: preload cluster %d dpu %d: %w", ci, i, err)
				}
			}
		}
		clusters[ci] = c
	}

	e.db = padded
	e.domain = padded.Domain()
	e.clusters = clusters
	return nil
}

// mramFootprint is the per-DPU MRAM demand of a chunk of the given size
// carrying `batch` fused selector streams and subresults.
func mramFootprint(records, recordSize, batch int) int {
	return align8(align8(records*recordSize)+batch*(records/8)) + batch*recordSize
}

// maxRecordsFitting returns the largest 64-multiple record count whose
// footprint (at the given fused batch width) fits the MRAM budget.
func maxRecordsFitting(mram, recordSize, batch int) int {
	lo, hi := 0, mram/recordSize/64+1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mramFootprint(mid*64, recordSize, batch) <= mram {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo * 64
}

// dbSlice returns the flat bytes for `count` records starting at the
// given global record index, zero-padded past the end of the database.
func dbSlice(db *database.DB, startRecord, count int) []byte {
	recordSize := db.RecordSize()
	data := db.Data()
	start := startRecord * recordSize
	want := count * recordSize
	if start >= len(data) {
		return make([]byte, want)
	}
	if start+want <= len(data) {
		return data[start : start+want]
	}
	out := make([]byte, want)
	copy(out, data[start:])
	return out
}

func align8(n int) int { return (n + 7) &^ 7 }

// validateKey checks a query key against the loaded database.
func (e *Engine) validateKey(key *dpf.Key) error {
	if e.db == nil {
		return errors.New("impir: no database loaded")
	}
	if key == nil {
		return errors.New("impir: nil key")
	}
	if int(key.Domain) != e.domain {
		return fmt.Errorf("impir: key domain %d does not match database domain %d", key.Domain, e.domain)
	}
	if key.BetaLen() != 0 {
		return fmt.Errorf("impir: PIR keys must be single-bit DPFs, got %d-byte payload", key.BetaLen())
	}
	return nil
}

// evalFull runs the host-side DPF evaluation phase (Alg. 1 ➋),
// returning the share vector plus wall and modeled durations.
func (e *Engine) evalFull(key *dpf.Key, threads int) (*bitvec.Vector, time.Duration, time.Duration, error) {
	start := time.Now()
	vec, err := key.EvalFull(dpf.FullEvalOptions{
		Strategy: e.cfg.EvalStrategy,
		Workers:  threads,
	})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("impir: DPF evaluation: %w", err)
	}
	wall := time.Since(start)
	modeled := e.cfg.Host.EvalDuration(uint64(e.db.NumRecords()), threads)
	return vec, wall, modeled, nil
}

// selectorFlat packs the share vector into flat little-endian selector
// bytes padded to the cluster's full capacity (|DPUs|·B_d bits), so both
// resident chunks and batched pass-slices are simple sub-slices.
func (c *cluster) selectorFlat(vec *bitvec.Vector) []byte {
	words := vec.Words()
	flat := make([]byte, len(c.dpuIDs)*c.recordsPerDPU/8)
	for i, w := range words {
		off := i * 8
		flat[off] = byte(w)
		flat[off+1] = byte(w >> 8)
		flat[off+2] = byte(w >> 16)
		flat[off+3] = byte(w >> 24)
		flat[off+4] = byte(w >> 32)
		flat[off+5] = byte(w >> 40)
		flat[off+6] = byte(w >> 48)
		flat[off+7] = byte(w >> 56)
	}
	return flat
}

// runCluster executes the PIM phases of one query on one cluster — a
// width-1 fused pass.
func (e *Engine) runCluster(c *cluster, vec *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	results, bd, err := e.runClusterBatch(c, []*bitvec.Vector{vec})
	if err != nil {
		return nil, bd, err
	}
	return results[0], bd, nil
}

// runClusterBatch executes the PIM phases of a FUSED group of up to
// c.maxBatch queries on one cluster: scatter every share vector (➌),
// launch ONE dpXOR kernel carrying all B selector streams (➍), gather
// the per-stream subresults (➎), and XOR-fold them on the host (➏). In
// batched mode (database beyond MRAM capacity) the database itself is
// also streamed through MRAM — once per pass for the whole group, which
// is the fusion's biggest win: B queries share each chunk's DMA instead
// of restaging it B times. Returns one subresult per share and the
// group's combined per-phase breakdown.
func (e *Engine) runClusterBatch(c *cluster, vecs []*bitvec.Vector) ([][]byte, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	nq := len(vecs)
	if nq == 0 {
		return nil, bd, errors.New("impir: empty cluster group")
	}
	if nq > c.maxBatch {
		return nil, bd, fmt.Errorf("impir: fused group of %d exceeds cluster batch capacity %d", nq, c.maxBatch)
	}

	c.mu.Lock()
	defer c.mu.Unlock()

	recordSize := e.db.RecordSize()
	flatSels := make([][]byte, nq)
	for q, vec := range vecs {
		flatSels[q] = c.selectorFlat(vec)
	}
	results := make([][]byte, nq)
	for q := range results {
		results[q] = make([]byte, recordSize)
	}

	selChunks := make([][]byte, len(c.dpuIDs))
	var dbChunks [][]byte
	if !c.resident {
		dbChunks = make([][]byte, len(c.dpuIDs))
	}

	for pass := 0; pass < c.passes; pass++ {
		passBase := pass * c.perPassRecords
		passRecords := c.perPassRecords
		if passBase+passRecords > c.recordsPerDPU {
			// Final pass covers the tail of each DPU's share (both are
			// 64-multiples, so the clamp stays kernel-aligned).
			passRecords = c.recordsPerDPU - passBase
		}
		argBlock := pimkernel.DPXORArgs{
			DBOffset:     0,
			NumRecords:   uint64(passRecords),
			RecordSize:   uint64(recordSize),
			SelOffset:    uint64(c.selOffset),
			OutOffset:    uint64(c.outOffset),
			NumSelectors: uint64(nq),
		}.Marshal()
		args := make([][]byte, len(c.dpuIDs))
		selStride := passRecords / 8
		for i := range c.dpuIDs {
			recStart := i*c.recordsPerDPU + passBase
			selStart := recStart / 8
			args[i] = argBlock
			// The kernel reads stream q at SelOffset + q×(passRecords/8);
			// pack each DPU's B per-pass selector slices back to back so
			// one scatter stages the whole group.
			combined := make([]byte, nq*selStride)
			for q := range flatSels {
				copy(combined[q*selStride:], flatSels[q][selStart:selStart+selStride])
			}
			selChunks[i] = combined
			if !c.resident {
				dbChunks[i] = dbSlice(e.db, recStart, passRecords)
			}
		}

		// Batched mode only: stage this pass's database chunks ONCE for
		// the whole fused group (§3.3's adaptation; in resident mode the
		// DB was preloaded for free).
		if !c.resident {
			start := time.Now()
			cost, err := e.sys.Scatter(c.dpuIDs, 0, dbChunks)
			if err != nil {
				return nil, bd, fmt.Errorf("impir: stage DB pass %d: %w", pass, err)
			}
			bd.AddPhase(metrics.PhaseCopyToPIM, time.Since(start), cost.Modeled)
		}

		// ➌ scatter the group's share-vector chunks.
		start := time.Now()
		scatterCost, err := e.sys.Scatter(c.dpuIDs, c.selOffset, selChunks)
		if err != nil {
			return nil, bd, fmt.Errorf("impir: scatter: %w", err)
		}
		bd.AddPhase(metrics.PhaseCopyToPIM, time.Since(start), scatterCost.Modeled)

		// ➍ one dpXOR kernel launch carrying all B selector streams.
		start = time.Now()
		launchCost, err := e.sys.Launch(c.dpuIDs, pimkernel.DPXOR{}, args)
		if err != nil {
			return nil, bd, fmt.Errorf("impir: dpXOR launch: %w", err)
		}
		bd.AddPhase(metrics.PhaseDpXOR, time.Since(start), launchCost.Modeled)

		// ➎ gather the per-DPU, per-stream subresults in one transfer.
		start = time.Now()
		subresults, gatherCost, err := e.sys.Gather(c.dpuIDs, c.outOffset, nq*recordSize)
		if err != nil {
			return nil, bd, fmt.Errorf("impir: gather: %w", err)
		}
		bd.AddPhase(metrics.PhaseCopyToHost, time.Since(start), gatherCost.Modeled)

		// ➏ aggregate on the host, per stream.
		start = time.Now()
		for _, sub := range subresults {
			for q := range results {
				if err := xorop.XORBytes(results[q], sub[q*recordSize:(q+1)*recordSize]); err != nil {
					return nil, bd, fmt.Errorf("impir: aggregate: %w", err)
				}
			}
		}
		bd.AddPhase(metrics.PhaseAggregate, time.Since(start),
			e.cfg.Host.XORFoldDuration(nq*len(subresults), recordSize))
	}

	return results, bd, nil
}

// Query processes a single PIR query end-to-end: per-query-parallel
// evaluation, then the PIM phases on one cluster (round-robin when the
// engine is configured with several, so concurrent callers spread out).
func (e *Engine) Query(key *dpf.Key) ([]byte, metrics.Breakdown, error) {
	if err := e.validateKey(key); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	vec, wall, modeled, err := e.evalFull(key, e.cfg.EvalWorkers)
	if err != nil {
		return nil, metrics.Breakdown{}, err
	}
	var bd metrics.Breakdown
	bd.AddPhase(metrics.PhaseEval, wall, modeled)

	c := e.clusters[e.rr.Add(1)%uint64(len(e.clusters))]
	result, pimBD, err := e.runCluster(c, vec)
	if err != nil {
		return nil, bd, err
	}
	bd.Add(pimBD)
	return result, bd, nil
}

// QueryShare processes a raw selector-share query: the n-server
// generalisation of §2.3, where the client ships each server an explicit
// N-bit share instead of a DPF key (O(N) communication, any number of
// servers ≥ 2). Only the PIM phases run — there is no key to evaluate.
func (e *Engine) QueryShare(share *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	if e.db == nil {
		return nil, metrics.Breakdown{}, errors.New("impir: no database loaded")
	}
	if share == nil {
		return nil, metrics.Breakdown{}, errors.New("impir: nil share")
	}
	if share.Len() != e.db.NumRecords() {
		return nil, metrics.Breakdown{}, fmt.Errorf("impir: share covers %d records, database has %d",
			share.Len(), e.db.NumRecords())
	}
	c := e.clusters[e.rr.Add(1)%uint64(len(e.clusters))]
	return e.runCluster(c, share)
}

// Close releases the engine. (The simulator has no external resources;
// Close exists for API symmetry with real deployments.)
func (e *Engine) Close() error { return nil }
