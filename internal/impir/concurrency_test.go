package impir

import (
	"bytes"
	"sync"
	"testing"

	"github.com/impir/impir/internal/dpf"
)

// TestConcurrentSingleQueries hits one engine with parallel Query calls,
// as concurrent transport connections do. Cluster serialisation must make
// this safe and correct.
func TestConcurrentSingleQueries(t *testing.T) {
	for _, clusters := range []int{1, 2} {
		eng, db := newLoadedEngine(t, testConfig(clusters), 512)

		const goroutines = 8
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		results := make([][]byte, goroutines)
		keys := make([]*dpf.Key, goroutines)
		for i := range keys {
			keys[i], _ = genKeys(t, db.Domain(), uint64(i*61%512))
		}

		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], _, errs[i] = eng.Query(keys[i])
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("clusters=%d goroutine %d: %v", clusters, i, err)
			}
		}

		// Verify each against a reference query on a replica engine.
		ref, _ := newLoadedEngine(t, testConfig(clusters), 512)
		for i := range keys {
			want, _, err := ref.Query(keys[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(results[i], want) {
				t.Fatalf("clusters=%d: concurrent query %d produced wrong subresult", clusters, i)
			}
		}
	}
}

// TestConcurrentBatches: two concurrent batches on the same engine must
// both succeed — clusters serialise rather than double-book launches.
func TestConcurrentBatches(t *testing.T) {
	eng, db := newLoadedEngine(t, testConfig(2), 512)
	mkKeys := func(off int) []*dpf.Key {
		keys := make([]*dpf.Key, 6)
		for i := range keys {
			keys[i], _ = genKeys(t, db.Domain(), uint64((off+i*37)%512))
		}
		return keys
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = eng.QueryBatch(mkKeys(i * 100))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}
