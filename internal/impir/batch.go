package impir

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
)

// QueryBatch processes a batch of queries through the §3.4 pipeline:
// host-side eval workers feed a task queue, and one goroutine per DPU
// cluster drains it (Fig. 8). The returned stats carry both the measured
// wall-clock makespan and the modeled makespan on the paper's hardware,
// computed by replaying the per-query phase costs through a deterministic
// pipeline schedule.
func (e *Engine) QueryBatch(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	if len(keys) == 0 {
		return nil, metrics.BatchStats{}, fmt.Errorf("impir: empty batch")
	}
	for i, k := range keys {
		if err := e.validateKey(k); err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: batch key %d: %w", i, err)
		}
	}

	type evalTask struct {
		idx int
		vec *bitvec.Vector
	}
	type queryOutcome struct {
		result      []byte
		bd          metrics.Breakdown
		evalModeled time.Duration
		pimModeled  time.Duration
		err         error
	}

	outcomes := make([]queryOutcome, len(keys))
	taskQueue := make(chan evalTask, len(keys))
	batchStart := time.Now()

	// ---- Eval stage (Alg. 1 ➋, Fig. 8 ➊-➋) ----
	var evalWG sync.WaitGroup
	switch e.cfg.EvalMode {
	case EvalPerQueryParallel:
		// One key at a time, all workers cooperating on its subtrees.
		evalWG.Add(1)
		go func() {
			defer evalWG.Done()
			defer close(taskQueue)
			for i, key := range keys {
				vec, wall, modeled, err := e.evalFull(key, e.cfg.EvalWorkers)
				outcomes[i].bd.AddPhase(metrics.PhaseEval, wall, modeled)
				outcomes[i].evalModeled = modeled
				if err != nil {
					outcomes[i].err = err
					continue
				}
				taskQueue <- evalTask{idx: i, vec: vec}
			}
		}()
	default: // EvalPerKeyWorkers
		workers := e.cfg.EvalWorkers
		if workers > len(keys) {
			workers = len(keys)
		}
		keyCh := make(chan int, len(keys))
		for i := range keys {
			keyCh <- i
		}
		close(keyCh)
		for w := 0; w < workers; w++ {
			evalWG.Add(1)
			go func() {
				defer evalWG.Done()
				for i := range keyCh {
					vec, wall, modeled, err := e.evalFull(keys[i], 1)
					outcomes[i].bd.AddPhase(metrics.PhaseEval, wall, modeled)
					outcomes[i].evalModeled = modeled
					if err != nil {
						outcomes[i].err = err
						continue
					}
					taskQueue <- evalTask{idx: i, vec: vec}
				}
			}()
		}
		go func() {
			evalWG.Wait()
			close(taskQueue)
		}()
	}

	// ---- Cluster stage (Fig. 8 ➌, Alg. 1 ➍-➏) ----
	// Each cluster goroutine greedily drains the queue into FUSED groups
	// of up to cluster.maxBatch share vectors and runs them as one dpXOR
	// launch sequence: the database chunk streams through each DPU once
	// per pass for the whole group instead of once per query.
	type fusedGroup struct {
		cluster int
		members []int
		modeled time.Duration
	}
	var groupMu sync.Mutex
	var groups []fusedGroup

	var clusterWG sync.WaitGroup
	for ci, c := range e.clusters {
		clusterWG.Add(1)
		go func(ci int, c *cluster) {
			defer clusterWG.Done()
			width := c.maxBatch
			if e.cfg.DisableBatchFusion {
				width = 1
			}
			for task := range taskQueue {
				group := []evalTask{task}
			drain:
				for len(group) < width {
					select {
					case next, ok := <-taskQueue:
						if !ok {
							break drain
						}
						group = append(group, next)
					default:
						break drain
					}
				}
				vecs := make([]*bitvec.Vector, len(group))
				members := make([]int, len(group))
				for j, g := range group {
					vecs[j] = g.vec
					members[j] = g.idx
				}
				results, bd, err := e.runClusterBatch(c, vecs)
				perBD := bd.Scale(len(group))
				groupModeled := bd.TotalModeled()
				for j, g := range group {
					out := &outcomes[g.idx]
					out.bd.Add(perBD)
					out.pimModeled = groupModeled / time.Duration(len(group))
					if err != nil {
						out.err = err
						continue
					}
					out.result = results[j]
				}
				groupMu.Lock()
				groups = append(groups, fusedGroup{cluster: ci, members: members, modeled: groupModeled})
				groupMu.Unlock()
			}
		}(ci, c)
	}

	evalWG.Wait()
	clusterWG.Wait()
	wallLatency := time.Since(batchStart)

	results := make([][]byte, len(keys))
	var total metrics.Breakdown
	evalDurations := make([]time.Duration, len(keys))
	fused := false
	for i := range outcomes {
		if outcomes[i].err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: query %d: %w", i, outcomes[i].err)
		}
		results[i] = outcomes[i].result
		total.Add(outcomes[i].bd)
		evalDurations[i] = outcomes[i].evalModeled
	}

	// Modeled makespan: replay stage-1 readiness through the recorded
	// fused-group schedule. Groups appended by one cluster keep their
	// execution order; clusters run independently.
	ready := evalReadyTimes(e.cfg.EvalMode, e.cfg.EvalWorkers, evalDurations)
	clusterFree := make([]time.Duration, len(e.clusters))
	var makespan time.Duration
	for _, g := range groups {
		if len(g.members) > 1 {
			fused = true
		}
		start := clusterFree[g.cluster]
		for _, m := range g.members {
			if ready[m] > start {
				start = ready[m]
			}
		}
		finish := start + g.modeled
		clusterFree[g.cluster] = finish
		if finish > makespan {
			makespan = finish
		}
	}

	stats := metrics.BatchStats{
		Queries:        len(keys),
		PerQuery:       total.Scale(len(keys)),
		WallLatency:    wallLatency,
		ModeledLatency: makespan,
		Fused:          fused,
	}
	return results, stats, nil
}

// QueryShareBatch processes a batch of raw selector-share queries (the
// explicit-share protocol of QueryShare). Shares are chunked into fused
// groups of up to each cluster's batch capacity, distributed round-robin
// across clusters, and each group runs as one dpXOR launch sequence —
// one database pass for the whole group.
func (e *Engine) QueryShareBatch(shares []*bitvec.Vector) ([][]byte, metrics.BatchStats, error) {
	if e.db == nil {
		return nil, metrics.BatchStats{}, fmt.Errorf("impir: no database loaded")
	}
	if len(shares) == 0 {
		return nil, metrics.BatchStats{}, fmt.Errorf("impir: empty share batch")
	}
	for i, share := range shares {
		if share == nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: batch share %d is nil", i)
		}
		if share.Len() != e.db.NumRecords() {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: batch share %d covers %d records, database has %d",
				i, share.Len(), e.db.NumRecords())
		}
	}

	batchStart := time.Now()
	type shareChunk struct {
		cluster int
		lo, hi  int
	}
	var chunks []shareChunk
	for lo, ci := 0, 0; lo < len(shares); ci++ {
		c := e.clusters[ci%len(e.clusters)]
		width := c.maxBatch
		if e.cfg.DisableBatchFusion {
			width = 1
		}
		hi := lo + width
		if hi > len(shares) {
			hi = len(shares)
		}
		chunks = append(chunks, shareChunk{cluster: ci % len(e.clusters), lo: lo, hi: hi})
		lo = hi
	}

	results := make([][]byte, len(shares))
	chunkBDs := make([]metrics.Breakdown, len(chunks))
	chunkErrs := make([]error, len(chunks))
	fused := false
	var wg sync.WaitGroup
	for k, ch := range chunks {
		if ch.hi-ch.lo > 1 {
			fused = true
		}
		wg.Add(1)
		go func(k int, ch shareChunk) {
			defer wg.Done()
			group, bd, err := e.runClusterBatch(e.clusters[ch.cluster], shares[ch.lo:ch.hi])
			chunkBDs[k] = bd
			if err != nil {
				chunkErrs[k] = err
				return
			}
			copy(results[ch.lo:], group)
		}(k, ch)
	}
	wg.Wait()
	wallLatency := time.Since(batchStart)

	var total metrics.Breakdown
	clusterBusy := make([]time.Duration, len(e.clusters))
	var makespan time.Duration
	for k, ch := range chunks {
		if chunkErrs[k] != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: share group %d: %w", k, chunkErrs[k])
		}
		total.Add(chunkBDs[k])
		clusterBusy[ch.cluster] += chunkBDs[k].TotalModeled()
		if clusterBusy[ch.cluster] > makespan {
			makespan = clusterBusy[ch.cluster]
		}
	}

	return results, metrics.BatchStats{
		Queries:        len(shares),
		PerQuery:       total.Scale(len(shares)),
		WallLatency:    wallLatency,
		ModeledLatency: makespan,
		Fused:          fused,
	}, nil
}

// ModeledMakespan replays the batch through a deterministic two-stage
// pipeline schedule on the paper's hardware: stage 1 is the eval workers
// (W parallel single-thread servers, or one W-thread server in
// per-query-parallel mode), stage 2 is the C DPU clusters. Each query
// enters stage 2 when its eval finishes and a cluster is free.
func ModeledMakespan(mode EvalMode, workers, clusters int, evalDur, pimDur []time.Duration) time.Duration {
	n := len(evalDur)
	ready := evalReadyTimes(mode, workers, evalDur)

	// Queries reach the task queue in eval-completion order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ready[order[a]] < ready[order[b]] })

	clusterFree := make([]time.Duration, clusters)
	var makespan time.Duration
	for _, i := range order {
		c := argminDur(clusterFree)
		start := ready[i]
		if clusterFree[c] > start {
			start = clusterFree[c]
		}
		finish := start + pimDur[i]
		clusterFree[c] = finish
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}

// evalReadyTimes models stage 1 of the pipeline: when each query's
// selector share becomes available to the cluster stage, given the eval
// scheduling mode (see ModeledMakespan).
func evalReadyTimes(mode EvalMode, workers int, evalDur []time.Duration) []time.Duration {
	n := len(evalDur)
	ready := make([]time.Duration, n)
	switch mode {
	case EvalPerQueryParallel:
		// Sequential evals, each using every worker.
		var t time.Duration
		for i := 0; i < n; i++ {
			t += evalDur[i]
			ready[i] = t
		}
	default:
		// W parallel eval servers, greedy assignment in key order.
		if workers > n {
			workers = n
		}
		free := make([]time.Duration, workers)
		for i := 0; i < n; i++ {
			w := argminDur(free)
			free[w] += evalDur[i]
			ready[i] = free[w]
		}
	}
	return ready
}

func argminDur(xs []time.Duration) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}
