package impir

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
)

// QueryBatch processes a batch of queries through the §3.4 pipeline:
// host-side eval workers feed a task queue, and one goroutine per DPU
// cluster drains it (Fig. 8). The returned stats carry both the measured
// wall-clock makespan and the modeled makespan on the paper's hardware,
// computed by replaying the per-query phase costs through a deterministic
// pipeline schedule.
func (e *Engine) QueryBatch(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	if len(keys) == 0 {
		return nil, metrics.BatchStats{}, fmt.Errorf("impir: empty batch")
	}
	for i, k := range keys {
		if err := e.validateKey(k); err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: batch key %d: %w", i, err)
		}
	}

	type evalTask struct {
		idx int
		vec *bitvec.Vector
	}
	type queryOutcome struct {
		result      []byte
		bd          metrics.Breakdown
		evalModeled time.Duration
		pimModeled  time.Duration
		err         error
	}

	outcomes := make([]queryOutcome, len(keys))
	taskQueue := make(chan evalTask, len(keys))
	batchStart := time.Now()

	// ---- Eval stage (Alg. 1 ➋, Fig. 8 ➊-➋) ----
	var evalWG sync.WaitGroup
	switch e.cfg.EvalMode {
	case EvalPerQueryParallel:
		// One key at a time, all workers cooperating on its subtrees.
		evalWG.Add(1)
		go func() {
			defer evalWG.Done()
			defer close(taskQueue)
			for i, key := range keys {
				vec, wall, modeled, err := e.evalFull(key, e.cfg.EvalWorkers)
				outcomes[i].bd.AddPhase(metrics.PhaseEval, wall, modeled)
				outcomes[i].evalModeled = modeled
				if err != nil {
					outcomes[i].err = err
					continue
				}
				taskQueue <- evalTask{idx: i, vec: vec}
			}
		}()
	default: // EvalPerKeyWorkers
		workers := e.cfg.EvalWorkers
		if workers > len(keys) {
			workers = len(keys)
		}
		keyCh := make(chan int, len(keys))
		for i := range keys {
			keyCh <- i
		}
		close(keyCh)
		for w := 0; w < workers; w++ {
			evalWG.Add(1)
			go func() {
				defer evalWG.Done()
				for i := range keyCh {
					vec, wall, modeled, err := e.evalFull(keys[i], 1)
					outcomes[i].bd.AddPhase(metrics.PhaseEval, wall, modeled)
					outcomes[i].evalModeled = modeled
					if err != nil {
						outcomes[i].err = err
						continue
					}
					taskQueue <- evalTask{idx: i, vec: vec}
				}
			}()
		}
		go func() {
			evalWG.Wait()
			close(taskQueue)
		}()
	}

	// ---- Cluster stage (Fig. 8 ➌, Alg. 1 ➍-➏) ----
	var clusterWG sync.WaitGroup
	for _, c := range e.clusters {
		clusterWG.Add(1)
		go func(c *cluster) {
			defer clusterWG.Done()
			for task := range taskQueue {
				result, bd, err := e.runCluster(c, task.vec)
				out := &outcomes[task.idx]
				out.bd.Add(bd)
				out.pimModeled = bd.TotalModeled() // cluster phases only; eval is tracked separately
				if err != nil {
					out.err = err
					continue
				}
				out.result = result
			}
		}(c)
	}

	evalWG.Wait()
	clusterWG.Wait()
	wallLatency := time.Since(batchStart)

	results := make([][]byte, len(keys))
	var total metrics.Breakdown
	evalDurations := make([]time.Duration, len(keys))
	pimDurations := make([]time.Duration, len(keys))
	for i := range outcomes {
		if outcomes[i].err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("impir: query %d: %w", i, outcomes[i].err)
		}
		results[i] = outcomes[i].result
		total.Add(outcomes[i].bd)
		evalDurations[i] = outcomes[i].evalModeled
		pimDurations[i] = outcomes[i].pimModeled
	}

	stats := metrics.BatchStats{
		Queries:     len(keys),
		PerQuery:    total.Scale(len(keys)),
		WallLatency: wallLatency,
		ModeledLatency: ModeledMakespan(
			e.cfg.EvalMode, e.cfg.EvalWorkers, len(e.clusters),
			evalDurations, pimDurations),
	}
	return results, stats, nil
}

// ModeledMakespan replays the batch through a deterministic two-stage
// pipeline schedule on the paper's hardware: stage 1 is the eval workers
// (W parallel single-thread servers, or one W-thread server in
// per-query-parallel mode), stage 2 is the C DPU clusters. Each query
// enters stage 2 when its eval finishes and a cluster is free.
func ModeledMakespan(mode EvalMode, workers, clusters int, evalDur, pimDur []time.Duration) time.Duration {
	n := len(evalDur)
	ready := make([]time.Duration, n)

	switch mode {
	case EvalPerQueryParallel:
		// Sequential evals, each using every worker.
		var t time.Duration
		for i := 0; i < n; i++ {
			t += evalDur[i]
			ready[i] = t
		}
	default:
		// W parallel eval servers, greedy assignment in key order.
		if workers > n {
			workers = n
		}
		free := make([]time.Duration, workers)
		for i := 0; i < n; i++ {
			w := argminDur(free)
			free[w] += evalDur[i]
			ready[i] = free[w]
		}
	}

	// Queries reach the task queue in eval-completion order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ready[order[a]] < ready[order[b]] })

	clusterFree := make([]time.Duration, clusters)
	var makespan time.Duration
	for _, i := range order {
		c := argminDur(clusterFree)
		start := ready[i]
		if clusterFree[c] > start {
			start = clusterFree[c]
		}
		finish := start + pimDur[i]
		clusterFree[c] = finish
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}

func argminDur(xs []time.Duration) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}
