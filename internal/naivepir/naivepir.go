// Package naivepir implements the "simple (naive)" multi-server PIR of
// §2.3 / Figure 2 of the paper: the client secret-shares its one-hot
// query vector as n random bit vectors that XOR to the indicator of the
// queried index, sending one full-length vector to each of n ≥ 2
// non-colluding servers.
//
// Compared with the DPF encoding (package dpf), queries cost O(N) bits
// per server instead of O(λ log N) — the communication blow-up that
// motivated distributed point functions — but the server-side work is an
// identical dpXOR scan, and the construction generalises trivially to any
// number of servers. IM-PIR's benchmarks use this package for the
// communication ablation, and it doubles as an independent oracle for the
// DPF path: both must select exactly the same records.
package naivepir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/xorop"
)

// MinServers is the smallest deployment size; privacy requires at least
// two non-colluding servers.
const MinServers = 2

// Query is the client's encoding of one retrieval: Shares[s] goes to
// server s. The XOR of all shares is the one-hot indicator of the queried
// index; any proper subset is uniformly random.
type Query struct {
	Shares []*bitvec.Vector
}

// Gen secret-shares the one-hot indicator of index over numRecords
// positions into n shares. randSource nil means crypto/rand.
func Gen(randSource io.Reader, numRecords int, index uint64, n int) (*Query, error) {
	if n < MinServers {
		return nil, fmt.Errorf("naivepir: %d servers below minimum %d", n, MinServers)
	}
	if numRecords < 1 {
		return nil, fmt.Errorf("naivepir: numRecords %d must be ≥ 1", numRecords)
	}
	if index >= uint64(numRecords) {
		return nil, fmt.Errorf("naivepir: index %d outside [0,%d)", index, numRecords)
	}
	if randSource == nil {
		randSource = rand.Reader
	}

	shares := make([]*bitvec.Vector, n)
	words := (numRecords + 63) / 64
	buf := make([]byte, 8*words)
	// Shares 0..n-2 are uniformly random; the last is the XOR of the
	// others corrected by the one-hot target, so the total telescopes.
	last := bitvec.New(numRecords)
	for s := 0; s < n-1; s++ {
		if _, err := io.ReadFull(randSource, buf); err != nil {
			return nil, fmt.Errorf("naivepir: sample share: %w", err)
		}
		v := bitvec.New(numRecords)
		w := v.Words()
		for i := range w {
			w[i] = le64(buf[8*i:])
		}
		v.TrailingWordMask()
		shares[s] = v
		last.Xor(v)
	}
	last.SetTo(int(index), !last.Bit(int(index)))
	shares[n-1] = last
	return &Query{Shares: shares}, nil
}

// WireBits returns the query size in bits per server — the O(N)
// communication cost Figure 2's scheme pays.
func (q *Query) WireBits() int {
	if len(q.Shares) == 0 {
		return 0
	}
	return q.Shares[0].Len()
}

// Answer computes one server's subresult: the XOR of the database records
// selected by its share (the same dpXOR scan every engine in this module
// implements).
func Answer(db *database.DB, share *bitvec.Vector) ([]byte, error) {
	if db == nil {
		return nil, errors.New("naivepir: nil database")
	}
	if share == nil {
		return nil, errors.New("naivepir: nil share")
	}
	if share.Len() != db.NumRecords() {
		return nil, fmt.Errorf("naivepir: share covers %d records, database has %d",
			share.Len(), db.NumRecords())
	}
	out := make([]byte, db.RecordSize())
	if err := xorop.Accumulate(out, db.Data(), db.RecordSize(), share.Words()); err != nil {
		return nil, err
	}
	return out, nil
}

// Reconstruct XORs the n subresults into the queried record.
func Reconstruct(subresults [][]byte) ([]byte, error) {
	if len(subresults) < MinServers {
		return nil, fmt.Errorf("naivepir: need ≥ %d subresults, have %d", MinServers, len(subresults))
	}
	out := make([]byte, len(subresults[0]))
	copy(out, subresults[0])
	for i, sub := range subresults[1:] {
		if err := xorop.XORBytes(out, sub); err != nil {
			return nil, fmt.Errorf("naivepir: subresult %d: %w", i+1, err)
		}
	}
	return out, nil
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
