package naivepir

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
)

func retrieve(t *testing.T, db *database.DB, index uint64, servers int) []byte {
	t.Helper()
	q, err := Gen(nil, db.NumRecords(), index, servers)
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}
	subs := make([][]byte, servers)
	for s := 0; s < servers; s++ {
		subs[s], err = Answer(db, q.Shares[s])
		if err != nil {
			t.Fatalf("Answer(server %d): %v", s, err)
		}
	}
	rec, err := Reconstruct(subs)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	return rec
}

func TestFigure2WorkedExample(t *testing.T) {
	// The paper's running example: D = [00, 10, 01, 11] (2-bit records),
	// retrieving D[1] = 10 with two servers.
	db, err := database.FromRecords([][]byte{{0b00}, {0b10}, {0b01}, {0b11}})
	if err != nil {
		t.Fatal(err)
	}
	got := retrieve(t, db, 1, 2)
	if got[0] != 0b10 {
		t.Fatalf("D[1] = %02b, want 10", got[0])
	}
}

func TestEndToEndAcrossServerCounts(t *testing.T) {
	db, err := database.GenerateHashDB(300, 6) // deliberately not a power of two
	if err != nil {
		t.Fatal(err)
	}
	for _, servers := range []int{2, 3, 5} {
		for _, idx := range []uint64{0, 137, 299} {
			got := retrieve(t, db, idx, servers)
			if !bytes.Equal(got, db.Record(int(idx))) {
				t.Fatalf("servers=%d index=%d: wrong record", servers, idx)
			}
		}
	}
}

func TestSharesXorToOneHot(t *testing.T) {
	const n = 500
	q, err := Gen(nil, n, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	combined := bitvec.New(n)
	for _, s := range q.Shares {
		combined.Xor(s)
	}
	if combined.OnesCount() != 1 || !combined.Bit(42) {
		t.Fatalf("shares XOR to weight %d, want one-hot at 42", combined.OnesCount())
	}
}

func TestIndividualShareLooksRandom(t *testing.T) {
	const n = 4096
	q, err := Gen(nil, n, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s, share := range q.Shares {
		ones := share.OnesCount()
		if ones < n/4 || ones > 3*n/4 {
			t.Fatalf("share %d weight %d/%d — not pseudorandom", s, ones, n)
		}
	}
}

func TestWireBits(t *testing.T) {
	q, err := Gen(nil, 1000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.WireBits() != 1000 {
		t.Fatalf("WireBits = %d, want 1000 (O(N) communication)", q.WireBits())
	}
	if (&Query{}).WireBits() != 0 {
		t.Fatal("empty query has nonzero wire size")
	}
}

// TestAgreesWithDPF: the naive scheme and the DPF scheme must retrieve
// identical records — each serves as the other's oracle.
func TestAgreesWithDPF(t *testing.T) {
	db, err := database.GenerateHashDB(512, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []uint64{3, 256, 511} {
		naive := retrieve(t, db, idx, 2)

		k0, k1, err := dpf.Gen(dpf.Params{Domain: db.Domain()}, idx, nil)
		if err != nil {
			t.Fatal(err)
		}
		v0, err := k0.EvalFull(dpf.FullEvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := k1.EvalFull(dpf.FullEvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r0, err := Answer(db, v0)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Answer(db, v1)
		if err != nil {
			t.Fatal(err)
		}
		viaDPF, err := Reconstruct([][]byte{r0, r1})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(naive, viaDPF) {
			t.Fatalf("index %d: naive and DPF retrievals differ", idx)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Gen(nil, 100, 0, 1); err == nil {
		t.Error("Gen accepted single server")
	}
	if _, err := Gen(nil, 0, 0, 2); err == nil {
		t.Error("Gen accepted empty database")
	}
	if _, err := Gen(nil, 100, 100, 2); err == nil {
		t.Error("Gen accepted out-of-range index")
	}
	db, _ := database.GenerateHashDB(64, 1)
	if _, err := Answer(nil, bitvec.New(64)); err == nil {
		t.Error("Answer accepted nil database")
	}
	if _, err := Answer(db, nil); err == nil {
		t.Error("Answer accepted nil share")
	}
	if _, err := Answer(db, bitvec.New(32)); err == nil {
		t.Error("Answer accepted mis-sized share")
	}
	if _, err := Reconstruct([][]byte{{1}}); err == nil {
		t.Error("Reconstruct accepted one subresult")
	}
	if _, err := Reconstruct([][]byte{{1}, {1, 2}}); err == nil {
		t.Error("Reconstruct accepted ragged subresults")
	}
}

// Property: retrieval is correct for random index and server count.
func TestQuickRetrieval(t *testing.T) {
	db, err := database.GenerateHashDB(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idxRaw uint16, nRaw uint8) bool {
		idx := uint64(idxRaw) % 256
		servers := int(nRaw)%3 + 2
		q, err := Gen(nil, 256, idx, servers)
		if err != nil {
			return false
		}
		subs := make([][]byte, servers)
		for s := range subs {
			subs[s], err = Answer(db, q.Shares[s])
			if err != nil {
				return false
			}
		}
		rec, err := Reconstruct(subs)
		if err != nil {
			return false
		}
		return bytes.Equal(rec, db.Record(int(idx)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
