package pim

import (
	"fmt"
	"sync"
)

// dpu is one simulated DRAM Processing Unit. MRAM is grown lazily up to
// the configured capacity so that simulating thousands of DPUs only costs
// memory proportional to the data actually resident.
type dpu struct {
	id   int
	cfg  *Config
	mu   sync.Mutex // guards mram growth and busy flag
	mram []byte
	busy bool
}

func (d *dpu) rank() int { return d.id / d.cfg.DPUsPerRank }

// ensure grows the MRAM backing store to cover [0, end).
func (d *dpu) ensure(end int) error {
	if end > d.cfg.MRAMPerDPU {
		return fmt.Errorf("pim: dpu %d: MRAM access at %d exceeds capacity %d", d.id, end, d.cfg.MRAMPerDPU)
	}
	if end > len(d.mram) {
		grown := make([]byte, end)
		copy(grown, d.mram)
		d.mram = grown
	}
	return nil
}

func (d *dpu) writeMRAM(offset int, data []byte) error {
	if offset < 0 {
		return fmt.Errorf("pim: dpu %d: negative MRAM offset %d", d.id, offset)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensure(offset + len(data)); err != nil {
		return err
	}
	copy(d.mram[offset:], data)
	return nil
}

func (d *dpu) readMRAM(offset int, dst []byte) error {
	if offset < 0 {
		return fmt.Errorf("pim: dpu %d: negative MRAM offset %d", d.id, offset)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensure(offset + len(dst)); err != nil {
		return err
	}
	copy(dst, d.mram[offset:])
	return nil
}

// barrier is a reusable synchronisation barrier for the tasklets of one
// DPU, mirroring the UPMEM SDK's barrier_wait.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
	broken  bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties arrive. If the barrier has been broken
// (a tasklet failed), await returns false immediately.
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return false
	}
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	phase := b.phase
	for phase == b.phase && !b.broken {
		b.cond.Wait()
	}
	return !b.broken
}

// breakBarrier releases all waiters with failure; used when a tasklet
// returns an error so siblings blocked on the barrier do not deadlock.
func (b *barrier) breakBarrier() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.broken = true
	b.cond.Broadcast()
}

// wram is the per-launch scratchpad allocator shared by a DPU's tasklets.
// It is a bump allocator: UPMEM kernels statically partition WRAM between
// tasklet stacks and buffers, which a bump allocator models faithfully
// enough while still catching capacity overruns.
type wram struct {
	mu       sync.Mutex
	capacity int
	used     int
}

func (w *wram) alloc(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pim: WRAM allocation size %d must be positive", n)
	}
	aligned := (n + DMAAlign - 1) &^ (DMAAlign - 1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.used+aligned > w.capacity {
		return nil, fmt.Errorf("pim: WRAM exhausted: %d requested, %d free of %d",
			aligned, w.capacity-w.used, w.capacity)
	}
	w.used += aligned
	return make([]byte, n), nil
}

// launchState is the shared execution state of one kernel launch on one DPU.
type launchState struct {
	dpu     *dpu
	args    []byte
	wram    *wram
	barrier *barrier
	mu      sync.Mutex // DPU-local mutex exposed to tasklets

	sharedMu sync.Mutex
	shared   map[string][]byte

	statsMu     sync.Mutex
	instrCycles int64
	dmaBytes    int64
}

// TaskletCtx is the execution context handed to each tasklet of a kernel
// launch. It is the only interface kernels have to the machine: MRAM via
// explicit DMA, WRAM via the allocator, synchronisation via the DPU-local
// barrier and mutex. This mirrors what a UPMEM C kernel can do — in
// particular there is no access to other DPUs' memory.
type TaskletCtx struct {
	state *launchState
	id    int
}

// TaskletID returns this tasklet's index in [0, NumTasklets).
func (c *TaskletCtx) TaskletID() int { return c.id }

// NumTasklets returns the number of tasklets running the kernel.
func (c *TaskletCtx) NumTasklets() int { return c.state.dpu.cfg.TaskletsPerDPU }

// DPUID returns the global ID of the DPU executing this tasklet.
func (c *TaskletCtx) DPUID() int { return c.state.dpu.id }

// Args returns the per-DPU argument block supplied by the host at launch.
// Kernels must treat it as read-only.
func (c *TaskletCtx) Args() []byte { return c.state.args }

// MRAMCapacity returns the DPU's MRAM size in bytes.
func (c *TaskletCtx) MRAMCapacity() int { return c.state.dpu.cfg.MRAMPerDPU }

// AllocWRAM reserves n bytes of the DPU's shared WRAM scratchpad for the
// remainder of the launch. Returns an error when the scratchpad is
// exhausted — the same constraint that rules out branch-parallel DPF
// evaluation on real DPUs (§3.2).
func (c *TaskletCtx) AllocWRAM(n int) ([]byte, error) {
	return c.state.wram.alloc(n)
}

// SharedWRAM returns a WRAM buffer shared by every tasklet of this DPU's
// launch, allocating it on first use. This models UPMEM kernels' global
// WRAM variables, which all tasklets of a DPU can read and write — the
// mechanism the dpXOR kernel uses to exchange per-tasklet partial results
// before the master tasklet's reduction. Callers must synchronise access
// themselves (Barrier or Lock), exactly as on real hardware.
func (c *TaskletCtx) SharedWRAM(name string, size int) ([]byte, error) {
	st := c.state
	st.sharedMu.Lock()
	defer st.sharedMu.Unlock()
	if buf, ok := st.shared[name]; ok {
		if len(buf) != size {
			return nil, fmt.Errorf("pim: shared WRAM %q exists with size %d, requested %d", name, len(buf), size)
		}
		return buf, nil
	}
	buf, err := st.wram.alloc(size)
	if err != nil {
		return nil, err
	}
	if st.shared == nil {
		st.shared = make(map[string][]byte)
	}
	st.shared[name] = buf
	return buf, nil
}

// ReadMRAM DMA-transfers MRAM[offset : offset+len(dst)] into the WRAM
// buffer dst, enforcing UPMEM's DMA rules: 8-byte aligned offset and
// length, at most DMAMaxTransfer bytes per call. The transfer is charged
// to the DPU's DMA budget for timing.
func (c *TaskletCtx) ReadMRAM(offset int, dst []byte) error {
	if err := c.checkDMA(offset, len(dst)); err != nil {
		return err
	}
	if err := c.state.dpu.readMRAM(offset, dst); err != nil {
		return err
	}
	c.chargeDMA(len(dst))
	return nil
}

// WriteMRAM DMA-transfers the WRAM buffer src to MRAM[offset:], with the
// same constraints as ReadMRAM.
func (c *TaskletCtx) WriteMRAM(offset int, src []byte) error {
	if err := c.checkDMA(offset, len(src)); err != nil {
		return err
	}
	if err := c.state.dpu.writeMRAM(offset, src); err != nil {
		return err
	}
	c.chargeDMA(len(src))
	return nil
}

func (c *TaskletCtx) checkDMA(offset, size int) error {
	switch {
	case offset%DMAAlign != 0:
		return fmt.Errorf("pim: DMA offset %d not %d-byte aligned", offset, DMAAlign)
	case size%DMAAlign != 0:
		return fmt.Errorf("pim: DMA size %d not %d-byte aligned", size, DMAAlign)
	case size <= 0:
		return fmt.Errorf("pim: DMA size %d must be positive", size)
	case size > DMAMaxTransfer:
		return fmt.Errorf("pim: DMA size %d exceeds max transfer %d", size, DMAMaxTransfer)
	}
	return nil
}

// Barrier synchronises all tasklets of the DPU. Returns false if the
// launch is failing (another tasklet returned an error), in which case
// the kernel should return promptly.
func (c *TaskletCtx) Barrier() bool {
	return c.state.barrier.await()
}

// Lock acquires the DPU-local mutex (UPMEM's mutex_lock equivalent).
func (c *TaskletCtx) Lock() { c.state.mu.Lock() }

// Unlock releases the DPU-local mutex.
func (c *TaskletCtx) Unlock() { c.state.mu.Unlock() }

// ChargeCycles accounts n executed instructions to the timing model.
// Kernels call this with their per-item instruction estimates; the launch
// duration divides the total by the pipeline's effective IPC.
func (c *TaskletCtx) ChargeCycles(n int64) {
	if n <= 0 {
		return
	}
	c.state.statsMu.Lock()
	c.state.instrCycles += n
	c.state.statsMu.Unlock()
}

func (c *TaskletCtx) chargeDMA(bytes int) {
	c.state.statsMu.Lock()
	c.state.dmaBytes += int64(bytes)
	c.state.statsMu.Unlock()
}

// Kernel is a DPU program: Run is invoked once per tasklet, concurrently,
// exactly like an UPMEM kernel's main() running on every tasklet.
type Kernel interface {
	// Name identifies the kernel in errors and traces.
	Name() string
	// Run executes the kernel body on one tasklet.
	Run(ctx *TaskletCtx) error
}
