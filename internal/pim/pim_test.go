package pim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig returns a small machine suitable for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Ranks = 2
	cfg.DPUsPerRank = 4
	cfg.MRAMPerDPU = 1 << 20
	cfg.WRAMPerDPU = 64 << 10
	cfg.TaskletsPerDPU = 4
	return cfg
}

func newTestSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.DPUsPerRank = 0 },
		func(c *Config) { c.MRAMPerDPU = 0 },
		func(c *Config) { c.WRAMPerDPU = 0 },
		func(c *Config) { c.TaskletsPerDPU = 0 },
		func(c *Config) { c.TaskletsPerDPU = MaxTasklets + 1 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MRAMBandwidth = -1 },
		func(c *Config) { c.HostToDPUBandwidthPerRank = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("NewSystem accepted mutation %d", i)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumDPUs() != 2048 {
		t.Errorf("NumDPUs = %d, want 2048", cfg.NumDPUs())
	}
	if cfg.TotalMRAM() != int64(2048)*64<<20 {
		t.Errorf("TotalMRAM = %d", cfg.TotalMRAM())
	}
	if got := cfg.effectiveIPC(16); got != 1 {
		t.Errorf("effectiveIPC(16) = %v, want 1", got)
	}
	if got := cfg.effectiveIPC(1); got >= 0.5 {
		t.Errorf("effectiveIPC(1) = %v, want well below saturation", got)
	}
}

func TestPreloadAndInspect(t *testing.T) {
	s := newTestSystem(t, testConfig())
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.Preload(3, 16, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.InspectMRAM(3, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("InspectMRAM = %v, want %v", got, data)
	}
	// Reads of never-written MRAM return zeros.
	zeros, err := s.InspectMRAM(3, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zeros, make([]byte, 4)) {
		t.Fatal("uninitialised MRAM is not zero")
	}
}

func TestPreloadBounds(t *testing.T) {
	s := newTestSystem(t, testConfig())
	if err := s.Preload(99, 0, []byte{1}); err == nil {
		t.Error("Preload accepted bad DPU id")
	}
	if err := s.Preload(-1, 0, []byte{1}); err == nil {
		t.Error("Preload accepted negative DPU id")
	}
	if err := s.Preload(0, -4, []byte{1}); err == nil {
		t.Error("Preload accepted negative offset")
	}
	// Exceeding MRAM capacity must fail.
	big := make([]byte, testConfig().MRAMPerDPU+1)
	if err := s.Preload(0, 0, big); err == nil {
		t.Error("Preload accepted oversized write")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	s := newTestSystem(t, testConfig())
	ids := []int{0, 2, 5, 7}
	chunks := make([][]byte, len(ids))
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
	}
	cost, err := s.Scatter(ids, 128, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bytes != 4*64 {
		t.Errorf("scatter bytes = %d, want 256", cost.Bytes)
	}
	if cost.Modeled <= 0 {
		t.Error("scatter modeled time not positive")
	}
	out, gcost, err := s.Gather(ids, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !bytes.Equal(out[i], chunks[i]) {
			t.Fatalf("gather chunk %d mismatch", i)
		}
	}
	if gcost.Bytes != 256 {
		t.Errorf("gather bytes = %d, want 256", gcost.Bytes)
	}
}

func TestBroadcast(t *testing.T) {
	s := newTestSystem(t, testConfig())
	ids := []int{1, 3, 6}
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if _, err := s.Broadcast(ids, 0, data); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, err := s.InspectMRAM(id, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("DPU %d missing broadcast data", id)
		}
	}
}

func TestScatterValidation(t *testing.T) {
	s := newTestSystem(t, testConfig())
	if _, err := s.Scatter([]int{0, 1}, 0, [][]byte{{1}}); err == nil {
		t.Error("Scatter accepted mismatched chunk count")
	}
	if _, err := s.Scatter([]int{100}, 0, [][]byte{{1}}); err == nil {
		t.Error("Scatter accepted invalid DPU id")
	}
}

// TestRankParallelTransferTiming: scattering B bytes to DPUs in the same
// rank must take roughly twice as long as B/2 bytes each to two ranks.
func TestRankParallelTransferTiming(t *testing.T) {
	cfg := testConfig()
	cfg.TransferLatency = 0
	s := newTestSystem(t, cfg)

	buf := make([]byte, 1<<16)
	// Same rank: DPUs 0 and 1 (rank 0).
	sameRank, err := s.Scatter([]int{0, 1}, 0, [][]byte{buf, buf})
	if err != nil {
		t.Fatal(err)
	}
	// Different ranks: DPUs 0 (rank 0) and 4 (rank 1).
	crossRank, err := s.Scatter([]int{0, 4}, 0, [][]byte{buf, buf})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sameRank.Modeled) / float64(crossRank.Modeled)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("same-rank/cross-rank time ratio = %.2f, want ≈ 2", ratio)
	}
}

// fillKernel writes a per-tasklet pattern into MRAM, checking the SPMD
// execution model: every tasklet of every DPU must run exactly once.
type fillKernel struct{}

func (fillKernel) Name() string { return "fill" }

func (fillKernel) Run(ctx *TaskletCtx) error {
	buf, err := ctx.AllocWRAM(8)
	if err != nil {
		return err
	}
	dpuBase := uint64(ctx.DPUID()) << 32
	binary.LittleEndian.PutUint64(buf, dpuBase|uint64(ctx.TaskletID()+1))
	ctx.ChargeCycles(10)
	return ctx.WriteMRAM(ctx.TaskletID()*8, buf)
}

func TestLaunchRunsEveryTasklet(t *testing.T) {
	cfg := testConfig()
	s := newTestSystem(t, cfg)
	ids := []int{0, 3, 7}
	cost, err := s.Launch(ids, fillKernel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Modeled <= cfg.LaunchOverhead {
		t.Error("launch cost does not exceed fixed overhead")
	}
	for _, id := range ids {
		got, err := s.InspectMRAM(id, 0, cfg.TaskletsPerDPU*8)
		if err != nil {
			t.Fatal(err)
		}
		for tid := 0; tid < cfg.TaskletsPerDPU; tid++ {
			v := binary.LittleEndian.Uint64(got[tid*8:])
			want := uint64(id)<<32 | uint64(tid+1)
			if v != want {
				t.Fatalf("DPU %d tasklet %d wrote %#x, want %#x", id, tid, v, want)
			}
		}
	}
}

// barrierKernel checks barrier semantics: stage 1 writes per-tasklet
// values to shared WRAM; after the barrier, tasklet 0 sums them.
type barrierKernel struct{}

func (barrierKernel) Name() string { return "barrier" }

func (barrierKernel) Run(ctx *TaskletCtx) error {
	shared, err := ctx.SharedWRAM("partials", ctx.NumTasklets()*8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(shared[ctx.TaskletID()*8:], uint64(ctx.TaskletID()+1))
	if !ctx.Barrier() {
		return errors.New("barrier broken")
	}
	if ctx.TaskletID() != 0 {
		return nil
	}
	var sum uint64
	for i := 0; i < ctx.NumTasklets(); i++ {
		sum += binary.LittleEndian.Uint64(shared[i*8:])
	}
	out, err := ctx.AllocWRAM(8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(out, sum)
	return ctx.WriteMRAM(0, out)
}

func TestBarrierAndSharedWRAM(t *testing.T) {
	cfg := testConfig()
	s := newTestSystem(t, cfg)
	if _, err := s.Launch([]int{2}, barrierKernel{}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.InspectMRAM(2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(cfg.TaskletsPerDPU)
	want := n * (n + 1) / 2
	if v := binary.LittleEndian.Uint64(got); v != want {
		t.Fatalf("barrier reduction = %d, want %d", v, want)
	}
}

// argsKernel echoes its argument block into MRAM.
type argsKernel struct{}

func (argsKernel) Name() string { return "args" }

func (argsKernel) Run(ctx *TaskletCtx) error {
	if ctx.TaskletID() != 0 {
		return nil
	}
	buf, err := ctx.AllocWRAM(len(ctx.Args()))
	if err != nil {
		return err
	}
	copy(buf, ctx.Args())
	return ctx.WriteMRAM(0, buf)
}

func TestLaunchPerDPUArgs(t *testing.T) {
	s := newTestSystem(t, testConfig())
	ids := []int{1, 5}
	args := [][]byte{
		bytes.Repeat([]byte{0xA1}, 16),
		bytes.Repeat([]byte{0xB2}, 16),
	}
	if _, err := s.Launch(ids, argsKernel{}, args); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, err := s.InspectMRAM(id, 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, args[i]) {
			t.Fatalf("DPU %d saw wrong args", id)
		}
	}
}

// failKernel fails on one tasklet; the others wait on a barrier. The
// launch must report the error and must not deadlock.
type failKernel struct{}

func (failKernel) Name() string { return "fail" }

func (failKernel) Run(ctx *TaskletCtx) error {
	if ctx.TaskletID() == 1 {
		return errors.New("injected tasklet failure")
	}
	if !ctx.Barrier() {
		return nil // barrier broken by the failing tasklet, exit cleanly
	}
	return nil
}

func TestLaunchTaskletFailureDoesNotDeadlock(t *testing.T) {
	s := newTestSystem(t, testConfig())
	done := make(chan error, 1)
	go func() {
		_, err := s.Launch([]int{0}, failKernel{}, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("launch with failing tasklet reported success")
		}
		if !strings.Contains(err.Error(), "injected tasklet failure") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("launch deadlocked on tasklet failure")
	}
	// The DPU must be reusable afterwards.
	if _, err := s.Launch([]int{0}, fillKernel{}, nil); err != nil {
		t.Fatalf("DPU not reusable after failed launch: %v", err)
	}
}

// wramHogKernel exhausts WRAM.
type wramHogKernel struct{}

func (wramHogKernel) Name() string { return "wramhog" }

func (wramHogKernel) Run(ctx *TaskletCtx) error {
	_, err := ctx.AllocWRAM(1 << 20) // 1 MB ≫ 64 KB WRAM
	if err == nil {
		return errors.New("oversized WRAM allocation succeeded")
	}
	return nil // the allocation failing IS the success condition
}

func TestWRAMExhaustion(t *testing.T) {
	s := newTestSystem(t, testConfig())
	if _, err := s.Launch([]int{0}, wramHogKernel{}, nil); err != nil {
		t.Fatalf("WRAM exhaustion not reported as allocator error: %v", err)
	}
}

// dmaRulesKernel checks that the DMA constraints are enforced.
type dmaRulesKernel struct{}

func (dmaRulesKernel) Name() string { return "dmarules" }

func (dmaRulesKernel) Run(ctx *TaskletCtx) error {
	if ctx.TaskletID() != 0 {
		return nil
	}
	buf, err := ctx.AllocWRAM(DMAMaxTransfer + 8)
	if err != nil {
		return err
	}
	checks := []struct {
		name string
		call func() error
	}{
		{"misaligned offset", func() error { return ctx.ReadMRAM(4, buf[:8]) }},
		{"misaligned size", func() error { return ctx.ReadMRAM(0, buf[:12]) }},
		{"oversized transfer", func() error { return ctx.ReadMRAM(0, buf[:DMAMaxTransfer+8]) }},
		{"misaligned write", func() error { return ctx.WriteMRAM(3, buf[:8]) }},
		{"beyond MRAM", func() error { return ctx.ReadMRAM(ctx.MRAMCapacity(), buf[:8]) }},
	}
	for _, c := range checks {
		if err := c.call(); err == nil {
			return fmt.Errorf("DMA rule not enforced: %s", c.name)
		}
	}
	// A legal transfer must pass.
	return ctx.ReadMRAM(0, buf[:DMAMaxTransfer])
}

func TestDMARulesEnforced(t *testing.T) {
	s := newTestSystem(t, testConfig())
	if _, err := s.Launch([]int{0}, dmaRulesKernel{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchValidation(t *testing.T) {
	s := newTestSystem(t, testConfig())
	if _, err := s.Launch(nil, fillKernel{}, nil); err == nil {
		t.Error("Launch accepted empty DPU set")
	}
	if _, err := s.Launch([]int{0}, fillKernel{}, make([][]byte, 2)); err == nil {
		t.Error("Launch accepted mismatched args")
	}
	if _, err := s.Launch([]int{1000}, fillKernel{}, nil); err == nil {
		t.Error("Launch accepted bad DPU id")
	}
}

// blockingKernel lets the test hold a DPU busy.
type blockingKernel struct {
	release chan struct{}
	started chan struct{}
	once    sync.Once
}

func (k *blockingKernel) Name() string { return "blocking" }

func (k *blockingKernel) Run(ctx *TaskletCtx) error {
	if ctx.TaskletID() == 0 {
		k.once.Do(func() { close(k.started) })
		<-k.release
	}
	return nil
}

func TestOverlappingLaunchRejected(t *testing.T) {
	s := newTestSystem(t, testConfig())
	k := &blockingKernel{release: make(chan struct{}), started: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		_, err := s.Launch([]int{0, 1}, k, nil)
		done <- err
	}()
	<-k.started
	// Overlap on DPU 1 must be rejected; disjoint launch must work.
	if _, err := s.Launch([]int{1, 2}, fillKernel{}, nil); err == nil {
		t.Error("overlapping launch on busy DPU accepted")
	}
	if _, err := s.Launch([]int{2, 3}, fillKernel{}, nil); err != nil {
		t.Errorf("disjoint launch rejected: %v", err)
	}
	close(k.release)
	if err := <-done; err != nil {
		t.Fatalf("blocked launch failed: %v", err)
	}
}

// timingKernel charges a known cycle count.
type timingKernel struct{ cycles int64 }

func (k timingKernel) Name() string { return "timing" }

func (k timingKernel) Run(ctx *TaskletCtx) error {
	ctx.ChargeCycles(k.cycles)
	return nil
}

func TestLaunchTimingModel(t *testing.T) {
	cfg := testConfig()
	cfg.TaskletsPerDPU = 16 // saturated pipeline: IPC = 1
	cfg.LaunchOverhead = 0
	s := newTestSystem(t, cfg)

	const perTasklet = 350_000 // ×16 tasklets = 5.6M cycles at 350 MHz = 16 ms
	cost, err := s.Launch([]int{0}, timingKernel{cycles: perTasklet}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(perTasklet*16) / cfg.ClockHz * float64(time.Second))
	ratio := float64(cost.Modeled) / float64(want)
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("modeled %v, want %v", cost.Modeled, want)
	}
}

// TestPipelineOccupancyModel: the same total work with 1 tasklet must be
// modeled slower than with a saturated pipeline.
func TestPipelineOccupancyModel(t *testing.T) {
	run := func(tasklets int, perTasklet int64) time.Duration {
		cfg := testConfig()
		cfg.TaskletsPerDPU = tasklets
		cfg.LaunchOverhead = 0
		s := newTestSystem(t, cfg)
		cost, err := s.Launch([]int{0}, timingKernel{cycles: perTasklet}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cost.Modeled
	}
	// 1 tasklet × 16M cycles vs 16 tasklets × 1M cycles: same total work.
	single := run(1, 16_000_000)
	saturated := run(16, 1_000_000)
	// A lone tasklet issues once per pipelineDepth cycles → ~11× slower.
	ratio := float64(single) / float64(saturated)
	if ratio < 10 || ratio > 12 {
		t.Fatalf("single/saturated = %.1f, want ≈ 11", ratio)
	}
}

func TestCostCombinators(t *testing.T) {
	a := Cost{Modeled: 2 * time.Millisecond, Bytes: 100}
	b := Cost{Modeled: 3 * time.Millisecond, Bytes: 50}
	sum := a.Add(b)
	if sum.Modeled != 5*time.Millisecond || sum.Bytes != 150 {
		t.Errorf("Add = %+v", sum)
	}
	mx := a.Max(b)
	if mx.Modeled != 3*time.Millisecond || mx.Bytes != 150 {
		t.Errorf("Max = %+v", mx)
	}
}

// TestConcurrentDisjointLaunches runs many launches on disjoint DPU sets
// in parallel, as the engine's cluster scheduler does.
func TestConcurrentDisjointLaunches(t *testing.T) {
	s := newTestSystem(t, testConfig())
	var wg sync.WaitGroup
	errs := make([]error, s.NumDPUs())
	for i := 0; i < s.NumDPUs(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Launch([]int{i}, fillKernel{}, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
	}
}
