package pim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// System is a simulated PIM machine: a set of DPUs reachable from the
// host through explicit, rank-parallel memory transfers and SPMD kernel
// launches. All methods are safe for concurrent use; concurrent launches
// and transfers are allowed on disjoint DPU sets (this is how the engine
// runs DPU clusters in parallel), and overlapping launches on the same
// DPU are reported as errors.
type System struct {
	cfg  Config
	dpus []*dpu

	// launchSlots bounds how many DPUs execute functionally at once so a
	// 2048-DPU launch does not spawn 32k goroutines.
	launchSlots chan struct{}
}

// NewSystem allocates a simulated machine.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:         cfg,
		dpus:        make([]*dpu, cfg.NumDPUs()),
		launchSlots: make(chan struct{}, maxParallelDPUs()),
	}
	for i := range s.dpus {
		s.dpus[i] = &dpu{id: i, cfg: &s.cfg}
	}
	return s, nil
}

func maxParallelDPUs() int {
	n := runtime.GOMAXPROCS(0) * 2
	// Keep headroom beyond the core count: a kernel may block in DPU
	// code (e.g. on host-mediated I/O) while another launch waits for
	// slots, and on a 1-CPU machine a 2-slot semaphore would let two
	// blocked DPUs starve every later launch.
	if n < 8 {
		n = 8
	}
	return n
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// NumDPUs returns the number of DPUs in the system.
func (s *System) NumDPUs() int { return len(s.dpus) }

func (s *System) dpuByID(id int) (*dpu, error) {
	if id < 0 || id >= len(s.dpus) {
		return nil, fmt.Errorf("pim: DPU id %d out of range [0,%d)", id, len(s.dpus))
	}
	return s.dpus[id], nil
}

// Preload copies data into a DPU's MRAM without charging transfer time.
// This models the paper's one-time database preloading (§3.3), which is
// explicitly excluded from query-latency measurements (§5.1).
func (s *System) Preload(dpuID, offset int, data []byte) error {
	d, err := s.dpuByID(dpuID)
	if err != nil {
		return err
	}
	return d.writeMRAM(offset, data)
}

// InspectMRAM reads a DPU's MRAM without charging transfer time; intended
// for tests and debugging, not for the query path.
func (s *System) InspectMRAM(dpuID, offset, size int) ([]byte, error) {
	d, err := s.dpuByID(dpuID)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	if err := d.readMRAM(offset, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Scatter copies chunks[i] into MRAM[offset:] of dpuIDs[i]. Transfers to
// distinct ranks proceed in parallel; the modeled duration is the slowest
// rank's serialised volume plus the fixed transfer latency.
func (s *System) Scatter(dpuIDs []int, offset int, chunks [][]byte) (Cost, error) {
	if len(dpuIDs) != len(chunks) {
		return Cost{}, fmt.Errorf("pim: scatter: %d DPUs but %d chunks", len(dpuIDs), len(chunks))
	}
	rankBytes := make(map[int]int64)
	var total int64
	for i, id := range dpuIDs {
		d, err := s.dpuByID(id)
		if err != nil {
			return Cost{}, err
		}
		if err := d.writeMRAM(offset, chunks[i]); err != nil {
			return Cost{}, fmt.Errorf("pim: scatter to DPU %d: %w", id, err)
		}
		rankBytes[d.rank()] += int64(len(chunks[i]))
		total += int64(len(chunks[i]))
	}
	return s.transferCost(rankBytes, total, s.cfg.HostToDPUBandwidthPerRank), nil
}

// Broadcast copies the same buffer into every listed DPU's MRAM.
func (s *System) Broadcast(dpuIDs []int, offset int, data []byte) (Cost, error) {
	chunks := make([][]byte, len(dpuIDs))
	for i := range chunks {
		chunks[i] = data
	}
	return s.Scatter(dpuIDs, offset, chunks)
}

// Gather reads size bytes from MRAM[offset:] of every listed DPU,
// returning one buffer per DPU, with rank-parallel timing like Scatter.
func (s *System) Gather(dpuIDs []int, offset, size int) ([][]byte, Cost, error) {
	out := make([][]byte, len(dpuIDs))
	rankBytes := make(map[int]int64)
	var total int64
	for i, id := range dpuIDs {
		d, err := s.dpuByID(id)
		if err != nil {
			return nil, Cost{}, err
		}
		buf := make([]byte, size)
		if err := d.readMRAM(offset, buf); err != nil {
			return nil, Cost{}, fmt.Errorf("pim: gather from DPU %d: %w", id, err)
		}
		out[i] = buf
		rankBytes[d.rank()] += int64(size)
		total += int64(size)
	}
	return out, s.transferCost(rankBytes, total, s.cfg.DPUToHostBandwidthPerRank), nil
}

func (s *System) transferCost(rankBytes map[int]int64, total int64, perRankBW float64) Cost {
	var worst float64
	for _, b := range rankBytes {
		if t := float64(b) / perRankBW; t > worst {
			worst = t
		}
	}
	return Cost{
		Modeled: time.Duration(worst*float64(time.Second)) + s.cfg.TransferLatency,
		Bytes:   total,
	}
}

// Launch runs the kernel on every listed DPU with TaskletsPerDPU tasklets
// each. args[i] is DPU i's argument block (args may be nil for no
// arguments). The call blocks until all DPUs finish — matching UPMEM's
// synchronous dpu_launch — and returns the modeled duration: the slowest
// DPU's compute+DMA time plus the fixed launch overhead.
//
// Launching a DPU that is already executing is an error: real hardware
// serialises launches per DPU, and an overlap here means the caller's
// scheduler double-booked a cluster.
func (s *System) Launch(dpuIDs []int, kern Kernel, args [][]byte) (Cost, error) {
	if len(dpuIDs) == 0 {
		return Cost{}, errors.New("pim: launch with no DPUs")
	}
	if args != nil && len(args) != len(dpuIDs) {
		return Cost{}, fmt.Errorf("pim: launch: %d DPUs but %d arg blocks", len(dpuIDs), len(args))
	}

	// Mark all DPUs busy up front so overlapping launches fail loudly.
	acquired := make([]*dpu, 0, len(dpuIDs))
	for _, id := range dpuIDs {
		d, err := s.dpuByID(id)
		if err != nil {
			s.releaseAll(acquired)
			return Cost{}, err
		}
		d.mu.Lock()
		if d.busy {
			d.mu.Unlock()
			s.releaseAll(acquired)
			return Cost{}, fmt.Errorf("pim: DPU %d is already executing a kernel", id)
		}
		d.busy = true
		d.mu.Unlock()
		acquired = append(acquired, d)
	}
	defer s.releaseAll(acquired)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		worst    time.Duration
		dmaTotal int64
	)
	for i, d := range acquired {
		var arg []byte
		if args != nil {
			arg = args[i]
		}
		wg.Add(1)
		s.launchSlots <- struct{}{}
		go func(d *dpu, arg []byte) {
			defer wg.Done()
			defer func() { <-s.launchSlots }()
			dur, dmaBytes, err := s.runDPU(d, kern, arg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("pim: kernel %q on DPU %d: %w", kern.Name(), d.id, err)
			}
			if dur > worst {
				worst = dur
			}
			dmaTotal += dmaBytes
		}(d, arg)
	}
	wg.Wait()
	if firstErr != nil {
		return Cost{}, firstErr
	}
	return Cost{Modeled: worst + s.cfg.LaunchOverhead, Bytes: dmaTotal}, nil
}

func (s *System) releaseAll(dpus []*dpu) {
	for _, d := range dpus {
		d.mu.Lock()
		d.busy = false
		d.mu.Unlock()
	}
}

// runDPU executes one DPU's tasklets and returns the modeled duration of
// this DPU's part of the launch.
func (s *System) runDPU(d *dpu, kern Kernel, arg []byte) (time.Duration, int64, error) {
	t := s.cfg.TaskletsPerDPU
	state := &launchState{
		dpu:     d,
		args:    arg,
		wram:    &wram{capacity: s.cfg.WRAMPerDPU},
		barrier: newBarrier(t),
	}

	var wg sync.WaitGroup
	errs := make([]error, t)
	for id := 0; id < t; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := &TaskletCtx{state: state, id: id}
			if err := kern.Run(ctx); err != nil {
				errs[id] = err
				state.barrier.breakBarrier()
			}
		}(id)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}

	return s.cfg.dpuDuration(state.instrCycles, state.dmaBytes), state.dmaBytes, nil
}
