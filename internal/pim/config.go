// Package pim simulates an UPMEM-style processing-in-memory system: a host
// CPU attached to PIM-enabled memory ranks, each rank holding DPUs (DRAM
// Processing Units) with private MRAM, a small WRAM scratchpad, and up to
// 24 hardware tasklets (§2.4 of the paper).
//
// The simulator is functional and timed:
//
//   - Functional: kernels are real Go code executed once per tasklet, and
//     every byte they read or write flows through MRAM/WRAM buffers with
//     UPMEM's constraints enforced (WRAM capacity, DMA alignment and
//     maximum transfer size, no DPU↔DPU communication).
//   - Timed: every host transfer and kernel launch returns a Cost holding
//     the modeled duration derived from the configured hardware constants
//     (DPU clock, pipeline occupancy, MRAM DMA bandwidth, rank-parallel
//     host link bandwidth). Benchmarks report these modeled times next to
//     local wall-clock, since the point of the paper is how the algorithm
//     behaves on PIM hardware constants, not on the simulating host.
//
// The paper's machine — 20 modules / 2560 DPUs at 350 MHz, of which 2048
// are used — is DefaultConfig. Tests use small topologies.
package pim

import (
	"errors"
	"fmt"
	"time"
)

// Architectural constants of the UPMEM DPU (cf. §2.4 and the UPMEM SDK).
const (
	// MaxTasklets is the number of hardware threads per DPU.
	MaxTasklets = 24
	// DMAAlign is the required alignment of MRAM↔WRAM DMA transfers.
	DMAAlign = 8
	// DMAMaxTransfer is the largest single MRAM↔WRAM DMA transfer.
	DMAMaxTransfer = 2048
	// pipelineDepth: a single tasklet can issue one instruction every
	// pipelineDepth cycles; ≥ pipelineDepth tasklets saturate the
	// pipeline at one instruction per cycle (hence the paper running 16
	// tasklets, "above 11 is recommended").
	pipelineDepth = 11
)

// Config describes the simulated PIM system topology and hardware
// constants. The zero value is not valid; start from DefaultConfig.
type Config struct {
	// Ranks is the number of PIM-enabled memory ranks.
	Ranks int
	// DPUsPerRank is the number of DPUs per rank (64 on UPMEM: 8 chips
	// of 8 DPUs).
	DPUsPerRank int
	// MRAMPerDPU is each DPU's private main memory in bytes (64 MB).
	MRAMPerDPU int
	// WRAMPerDPU is each DPU's scratchpad in bytes (64 KB), shared by
	// all tasklets.
	WRAMPerDPU int
	// TaskletsPerDPU is the number of software threads launched per DPU
	// (1..MaxTasklets). The paper uses 16.
	TaskletsPerDPU int
	// ClockHz is the DPU clock (350 MHz or 400 MHz).
	ClockHz float64
	// MRAMBandwidth is the per-DPU MRAM↔WRAM DMA bandwidth in bytes/s
	// (700 MB/s at 350 MHz, 800 MB/s at 400 MHz).
	MRAMBandwidth float64
	// HostToDPUBandwidthPerRank is the effective CPU→MRAM copy bandwidth
	// per rank in bytes/s; transfers to distinct ranks proceed in
	// parallel. Full-system aggregates of ~6.7 GB/s over 40 ranks have
	// been measured on real hardware.
	HostToDPUBandwidthPerRank float64
	// DPUToHostBandwidthPerRank is the effective MRAM→CPU copy bandwidth
	// per rank in bytes/s (real systems are asymmetric: ~4.7 GB/s
	// aggregate).
	DPUToHostBandwidthPerRank float64
	// TransferLatency is the fixed software/driver overhead per host
	// transfer operation.
	TransferLatency time.Duration
	// LaunchOverhead is the fixed cost of a kernel launch (binary is
	// assumed preloaded; this covers boot/fault-check rounds).
	LaunchOverhead time.Duration
}

// DefaultConfig returns the paper's evaluation platform (§5.2): 2048 DPUs
// in 32 ranks at 350 MHz with 64 MB MRAM and 16 tasklets each.
func DefaultConfig() Config {
	return Config{
		Ranks:                     32,
		DPUsPerRank:               64,
		MRAMPerDPU:                64 << 20,
		WRAMPerDPU:                64 << 10,
		TaskletsPerDPU:            16,
		ClockHz:                   350e6,
		MRAMBandwidth:             700e6,
		HostToDPUBandwidthPerRank: 85e6,
		DPUToHostBandwidthPerRank: 120e6,
		TransferLatency:           400 * time.Microsecond,
		LaunchOverhead:            1200 * time.Microsecond,
	}
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	var errs []error
	if c.Ranks < 1 {
		errs = append(errs, fmt.Errorf("pim: Ranks %d must be ≥ 1", c.Ranks))
	}
	if c.DPUsPerRank < 1 {
		errs = append(errs, fmt.Errorf("pim: DPUsPerRank %d must be ≥ 1", c.DPUsPerRank))
	}
	if c.MRAMPerDPU < DMAAlign {
		errs = append(errs, fmt.Errorf("pim: MRAMPerDPU %d too small", c.MRAMPerDPU))
	}
	if c.WRAMPerDPU < DMAAlign {
		errs = append(errs, fmt.Errorf("pim: WRAMPerDPU %d too small", c.WRAMPerDPU))
	}
	if c.TaskletsPerDPU < 1 || c.TaskletsPerDPU > MaxTasklets {
		errs = append(errs, fmt.Errorf("pim: TaskletsPerDPU %d outside [1,%d]", c.TaskletsPerDPU, MaxTasklets))
	}
	if c.ClockHz <= 0 {
		errs = append(errs, errors.New("pim: ClockHz must be positive"))
	}
	if c.MRAMBandwidth <= 0 {
		errs = append(errs, errors.New("pim: MRAMBandwidth must be positive"))
	}
	if c.HostToDPUBandwidthPerRank <= 0 || c.DPUToHostBandwidthPerRank <= 0 {
		errs = append(errs, errors.New("pim: host link bandwidths must be positive"))
	}
	return errors.Join(errs...)
}

// NumDPUs returns the total DPU count.
func (c Config) NumDPUs() int { return c.Ranks * c.DPUsPerRank }

// TotalMRAM returns the aggregate MRAM capacity in bytes.
func (c Config) TotalMRAM() int64 { return int64(c.NumDPUs()) * int64(c.MRAMPerDPU) }

// effectiveIPC returns instructions per cycle for t resident tasklets:
// the in-order pipeline issues one instruction per tasklet every
// pipelineDepth cycles, so throughput scales linearly up to saturation.
func (c Config) effectiveIPC(t int) float64 {
	if t >= pipelineDepth {
		return 1
	}
	return float64(t) / float64(pipelineDepth)
}

// HostToDPUDuration models scattering totalBytes evenly across ranksUsed
// ranks (rank transfers are parallel). This is the same formula the
// functional simulator charges for Scatter; exposing it lets the
// benchmark harness evaluate paper-scale configurations analytically.
func (c Config) HostToDPUDuration(totalBytes int64, ranksUsed int) time.Duration {
	return c.linkDuration(totalBytes, ranksUsed, c.HostToDPUBandwidthPerRank)
}

// DPUToHostDuration models gathering totalBytes evenly across ranksUsed
// ranks.
func (c Config) DPUToHostDuration(totalBytes int64, ranksUsed int) time.Duration {
	return c.linkDuration(totalBytes, ranksUsed, c.DPUToHostBandwidthPerRank)
}

func (c Config) linkDuration(totalBytes int64, ranksUsed int, perRankBW float64) time.Duration {
	if ranksUsed < 1 {
		ranksUsed = 1
	}
	if ranksUsed > c.Ranks {
		ranksUsed = c.Ranks
	}
	perRank := float64(totalBytes) / float64(ranksUsed)
	return time.Duration(perRank/perRankBW*float64(time.Second)) + c.TransferLatency
}

// KernelDuration models a kernel launch where every DPU executes
// instrCycles instructions and moves dmaBytes over its MRAM↔WRAM DMA —
// the same formula the functional simulator derives from its counters.
func (c Config) KernelDuration(instrCycles, dmaBytes int64) time.Duration {
	return c.dpuDuration(instrCycles, dmaBytes) + c.LaunchOverhead
}

// dpuDuration converts one DPU's charged instruction and DMA counters
// into time under the pipeline-occupancy model.
func (c Config) dpuDuration(instrCycles, dmaBytes int64) time.Duration {
	computeSec := float64(instrCycles) / (c.ClockHz * c.effectiveIPC(c.TaskletsPerDPU))
	dmaSec := float64(dmaBytes) / c.MRAMBandwidth
	return time.Duration((computeSec + dmaSec) * float64(time.Second))
}

// Cost is the modeled expense of one host-visible PIM operation.
type Cost struct {
	// Modeled is the duration the operation would take on the configured
	// hardware.
	Modeled time.Duration
	// Bytes is the payload volume moved (transfers) or scanned (launch
	// DMA traffic), for bandwidth accounting.
	Bytes int64
}

// Add combines two costs sequentially.
func (c Cost) Add(o Cost) Cost {
	return Cost{Modeled: c.Modeled + o.Modeled, Bytes: c.Bytes + o.Bytes}
}

// Max combines two costs that overlap perfectly in time (parallel
// branches): the duration is the maximum, bytes still accumulate.
func (c Cost) Max(o Cost) Cost {
	d := c.Modeled
	if o.Modeled > d {
		d = o.Modeled
	}
	return Cost{Modeled: d, Bytes: c.Bytes + o.Bytes}
}
