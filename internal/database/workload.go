package database

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// The generators below synthesise the evaluation workloads of §5.2: PIR
// databases whose records are 32-byte SHA-256 digests, as used by
// Certificate Transparency auditing and breached-credential lookup
// services. All generators are deterministic in (seed, count) so that the
// two PIR servers of a test deployment can independently materialise
// byte-identical replicas.

// GenerateHashDB fills a database with pseudorandom 32-byte hash records
// derived from the seed. This mirrors the paper's synthetic database of
// random 32-byte hashes.
func GenerateHashDB(numRecords int, seed int64) (*DB, error) {
	db, err := New(numRecords, RecordSizeHash)
	if err != nil {
		return nil, err
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	for i := 0; i < numRecords; i++ {
		binary.LittleEndian.PutUint64(buf[8:], uint64(i))
		sum := sha256.Sum256(buf[:])
		copy(db.data[i*RecordSizeHash:], sum[:])
	}
	return db, nil
}

// CTEntry is a synthetic Certificate Transparency log entry.
type CTEntry struct {
	SerialNumber uint64
	Domain       string
	Issuer       string
}

// LeafHash returns the 32-byte log leaf hash for the entry — the value a
// CT auditor privately retrieves (cf. §5.2 and [51, 58]).
func (e CTEntry) LeafHash() [32]byte {
	h := sha256.New()
	var serial [8]byte
	binary.BigEndian.PutUint64(serial[:], e.SerialNumber)
	h.Write(serial[:])
	h.Write([]byte(e.Domain))
	h.Write([]byte{0})
	h.Write([]byte(e.Issuer))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

var ctIssuers = []string{
	"C=US, O=Let's Encrypt, CN=R11",
	"C=US, O=DigiCert Inc, CN=DigiCert TLS RSA SHA256 2020 CA1",
	"C=US, O=Google Trust Services, CN=WR2",
	"C=AT, O=ZeroSSL, CN=ZeroSSL RSA Domain Secure Site CA",
}

// GenerateCTLog synthesises a CT log of numCerts entries and returns both
// the PIR database of leaf hashes and the entries themselves (so example
// clients can compute the index and expected hash of a certificate they
// want to audit).
func GenerateCTLog(numCerts int, seed int64) (*DB, []CTEntry, error) {
	db, err := New(numCerts, RecordSizeHash)
	if err != nil {
		return nil, nil, err
	}
	entries := make([]CTEntry, numCerts)
	for i := range entries {
		entries[i] = CTEntry{
			SerialNumber: uint64(seed)<<20 + uint64(i),
			Domain:       fmt.Sprintf("host-%06d.example.org", i),
			Issuer:       ctIssuers[i%len(ctIssuers)],
		}
		hash := entries[i].LeafHash()
		copy(db.data[i*RecordSizeHash:], hash[:])
	}
	return db, entries, nil
}

// CredentialHash returns the digest stored for a breached credential, as
// in Have-I-Been-Pwned-style compromised-credential services.
func CredentialHash(password string) [32]byte {
	return sha256.Sum256([]byte(password))
}

// GenerateCredentialDB synthesises a breached-password database and
// returns the PIR database of SHA-256 digests plus the plaintext corpus
// (for examples/tests that need to know which passwords are "breached").
func GenerateCredentialDB(numCreds int, seed int64) (*DB, []string, error) {
	db, err := New(numCreds, RecordSizeHash)
	if err != nil {
		return nil, nil, err
	}
	creds := make([]string, numCreds)
	for i := range creds {
		creds[i] = fmt.Sprintf("hunter%d-%x", i, uint64(seed)+uint64(i)*2654435761)
		sum := CredentialHash(creds[i])
		copy(db.data[i*RecordSizeHash:], sum[:])
	}
	return db, creds, nil
}

// GenerateBlocklist synthesises a private-blocklist database (cf. Kogan &
// Corrigan-Gibbs's Checklist [60]): hashed URLs of malicious sites.
func GenerateBlocklist(numURLs int, seed int64) (*DB, []string, error) {
	db, err := New(numURLs, RecordSizeHash)
	if err != nil {
		return nil, nil, err
	}
	urls := make([]string, numURLs)
	for i := range urls {
		urls[i] = fmt.Sprintf("https://malware-%08x.bad.example/%d", uint64(seed)*31+uint64(i), i)
		sum := sha256.Sum256([]byte(urls[i]))
		copy(db.data[i*RecordSizeHash:], sum[:])
	}
	return db, urls, nil
}
