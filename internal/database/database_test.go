package database

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 32); err == nil {
		t.Error("New accepted zero records")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("New accepted zero record size")
	}
	if _, err := New(-1, 32); err == nil {
		t.Error("New accepted negative records")
	}
}

func TestRecordAccess(t *testing.T) {
	db, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := db.SetRecord(2, rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(db.Record(2), rec) {
		t.Fatal("Record(2) does not round-trip SetRecord")
	}
	if !bytes.Equal(db.Record(0), make([]byte, 8)) {
		t.Fatal("untouched record is not zero")
	}
	if err := db.SetRecord(4, rec); err == nil {
		t.Error("SetRecord accepted out-of-range index")
	}
	if err := db.SetRecord(0, rec[:3]); err == nil {
		t.Error("SetRecord accepted short record")
	}
}

func TestRecordPanicsOutOfRange(t *testing.T) {
	db, _ := New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Record(-1) did not panic")
		}
	}()
	db.Record(-1)
}

func TestFromRecords(t *testing.T) {
	records := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	db, err := FromRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 3 || db.RecordSize() != 2 {
		t.Fatalf("geometry = (%d,%d), want (3,2)", db.NumRecords(), db.RecordSize())
	}
	for i, rec := range records {
		if !bytes.Equal(db.Record(i), rec) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := FromRecords(nil); err == nil {
		t.Error("FromRecords accepted empty input")
	}
	if _, err := FromRecords([][]byte{{1}, {2, 3}}); err == nil {
		t.Error("FromRecords accepted ragged records")
	}
}

func TestFromFlat(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6}
	db, err := FromFlat(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d, want 2", db.NumRecords())
	}
	if _, err := FromFlat(data, 4); err == nil {
		t.Error("FromFlat accepted non-multiple length")
	}
	if _, err := FromFlat(nil, 4); err == nil {
		t.Error("FromFlat accepted empty data")
	}
}

func TestDomain(t *testing.T) {
	tests := []struct {
		records int
		want    int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		db, err := New(tt.records, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := db.Domain(); got != tt.want {
			t.Errorf("Domain(%d records) = %d, want %d", tt.records, got, tt.want)
		}
	}
}

func TestPadToPowerOfTwo(t *testing.T) {
	db, _ := New(5, 4)
	for i := 0; i < 5; i++ {
		db.SetRecord(i, []byte{byte(i), 1, 2, 3})
	}
	padded := db.PadToPowerOfTwo()
	if padded.NumRecords() != 8 {
		t.Fatalf("padded NumRecords = %d, want 8", padded.NumRecords())
	}
	for i := 0; i < 5; i++ {
		if !bytes.Equal(padded.Record(i), db.Record(i)) {
			t.Fatalf("padding corrupted record %d", i)
		}
	}
	for i := 5; i < 8; i++ {
		if !bytes.Equal(padded.Record(i), make([]byte, 4)) {
			t.Fatalf("pad record %d is not zero", i)
		}
	}
	// Already power-of-two: must return the same object, not a copy.
	db2, _ := New(8, 4)
	if db2.PadToPowerOfTwo() != db2 {
		t.Error("PadToPowerOfTwo copied an already-padded DB")
	}
}

func TestCloneIndependence(t *testing.T) {
	db, _ := GenerateHashDB(16, 1)
	clone := db.Clone()
	if !bytes.Equal(db.Data(), clone.Data()) {
		t.Fatal("clone differs from original")
	}
	clone.SetRecord(0, make([]byte, 32))
	if bytes.Equal(db.Record(0), clone.Record(0)) {
		t.Fatal("mutating clone changed original")
	}
}

func TestDigest(t *testing.T) {
	a, _ := GenerateHashDB(32, 7)
	b, _ := GenerateHashDB(32, 7)
	if a.Digest() != b.Digest() {
		t.Fatal("identical databases produced different digests")
	}
	c, _ := GenerateHashDB(32, 8)
	if a.Digest() == c.Digest() {
		t.Fatal("different databases produced the same digest")
	}
	// Geometry must be part of the digest: same bytes, different shape.
	flat := make([]byte, 64)
	d1, _ := FromFlat(flat, 32)
	d2, _ := FromFlat(flat, 16)
	if d1.Digest() == d2.Digest() {
		t.Fatal("digest ignores record geometry")
	}
}

func TestGenerateHashDBDeterministic(t *testing.T) {
	a, err := GenerateHashDB(64, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateHashDB(64, 42)
	if !bytes.Equal(a.Data(), b.Data()) {
		t.Fatal("generator is not deterministic")
	}
	c, _ := GenerateHashDB(64, 43)
	if bytes.Equal(a.Data(), c.Data()) {
		t.Fatal("different seeds produced identical databases")
	}
	// Records must be distinct (hash collisions would indicate a bug).
	seen := make(map[string]bool)
	for i := 0; i < a.NumRecords(); i++ {
		k := string(a.Record(i))
		if seen[k] {
			t.Fatalf("duplicate record at %d", i)
		}
		seen[k] = true
	}
}

func TestGenerateCTLog(t *testing.T) {
	db, entries, err := GenerateCTLog(100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 100 || len(entries) != 100 {
		t.Fatalf("got %d records / %d entries, want 100/100", db.NumRecords(), len(entries))
	}
	// The stored record must equal the entry's leaf hash.
	for _, i := range []int{0, 50, 99} {
		want := entries[i].LeafHash()
		if !bytes.Equal(db.Record(i), want[:]) {
			t.Fatalf("record %d does not match entry leaf hash", i)
		}
	}
}

func TestGenerateCredentialDB(t *testing.T) {
	db, creds, err := GenerateCredentialDB(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 25, 49} {
		want := CredentialHash(creds[i])
		if !bytes.Equal(db.Record(i), want[:]) {
			t.Fatalf("record %d does not match credential hash", i)
		}
	}
}

func TestGenerateBlocklist(t *testing.T) {
	db, urls, err := GenerateBlocklist(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 20 || len(urls) != 20 {
		t.Fatal("blocklist geometry mismatch")
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := GenerateHashDB(0, 1); err == nil {
		t.Error("GenerateHashDB accepted zero records")
	}
	if _, _, err := GenerateCTLog(0, 1); err == nil {
		t.Error("GenerateCTLog accepted zero records")
	}
	if _, _, err := GenerateCredentialDB(-1, 1); err == nil {
		t.Error("GenerateCredentialDB accepted negative records")
	}
	if _, _, err := GenerateBlocklist(0, 1); err == nil {
		t.Error("GenerateBlocklist accepted zero records")
	}
}

// Property: Domain always covers the record count.
func TestQuickDomainCovers(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		db, err := New(n, 1)
		if err != nil {
			return false
		}
		return 1<<uint(db.Domain()) >= n && (db.Domain() == 0 || 1<<uint(db.Domain()-1) < n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: padding preserves prefix content and digest of original range.
func TestQuickPadPreservesContent(t *testing.T) {
	f := func(nRaw uint16, seed int64) bool {
		n := int(nRaw)%200 + 1
		db, err := GenerateHashDB(n, seed)
		if err != nil {
			return false
		}
		padded := db.PadToPowerOfTwo()
		if padded.NumRecords() < n || !padded.IsPowerOfTwo() {
			return false
		}
		return bytes.Equal(padded.Data()[:n*32], db.Data())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
