// Package database defines the PIR database representation shared by all
// server engines, plus deterministic workload generators modelled on the
// paper's evaluation databases (§5.2): fixed-size 32-byte records holding
// SHA-256 digests, as used by Certificate Transparency auditing and
// compromised-credential checking services.
package database

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/bits"
)

// RecordSizeHash is the record size used throughout the paper's
// evaluation: one SHA-256 digest per record.
const RecordSizeHash = 32

// DB is an immutable-by-convention PIR database: numRecords records of
// recordSize bytes each, stored contiguously. In multi-server PIR the
// same DB is replicated byte-for-byte on every server; Digest lets
// deployments verify replicas match.
type DB struct {
	recordSize int
	numRecords int
	data       []byte
}

// New returns a zero-filled database.
func New(numRecords, recordSize int) (*DB, error) {
	if numRecords < 1 {
		return nil, fmt.Errorf("database: numRecords %d must be ≥ 1", numRecords)
	}
	if recordSize < 1 {
		return nil, fmt.Errorf("database: recordSize %d must be ≥ 1", recordSize)
	}
	return &DB{
		recordSize: recordSize,
		numRecords: numRecords,
		data:       make([]byte, numRecords*recordSize),
	}, nil
}

// FromRecords builds a database from equally sized records.
func FromRecords(records [][]byte) (*DB, error) {
	if len(records) == 0 {
		return nil, errors.New("database: no records")
	}
	size := len(records[0])
	db, err := New(len(records), size)
	if err != nil {
		return nil, err
	}
	for i, rec := range records {
		if len(rec) != size {
			return nil, fmt.Errorf("database: record %d has %d bytes, want %d", i, len(rec), size)
		}
		copy(db.data[i*size:], rec)
	}
	return db, nil
}

// FromFlat wraps an existing flat buffer as a database without copying.
// The caller must not mutate data afterwards.
func FromFlat(data []byte, recordSize int) (*DB, error) {
	if recordSize < 1 {
		return nil, fmt.Errorf("database: recordSize %d must be ≥ 1", recordSize)
	}
	if len(data) == 0 || len(data)%recordSize != 0 {
		return nil, fmt.Errorf("database: %d bytes is not a positive multiple of record size %d",
			len(data), recordSize)
	}
	return &DB{
		recordSize: recordSize,
		numRecords: len(data) / recordSize,
		data:       data,
	}, nil
}

// NumRecords returns the number of records (N in the paper's notation).
func (d *DB) NumRecords() int { return d.numRecords }

// RecordSize returns the record size in bytes (the paper's L, in bytes).
func (d *DB) RecordSize() int { return d.recordSize }

// SizeBytes returns the total database size.
func (d *DB) SizeBytes() int64 { return int64(d.numRecords) * int64(d.recordSize) }

// Record returns a read-only view of record i. The returned slice aliases
// the database storage.
func (d *DB) Record(i int) []byte {
	if i < 0 || i >= d.numRecords {
		panic(fmt.Sprintf("database: record %d out of range [0,%d)", i, d.numRecords))
	}
	return d.data[i*d.recordSize : (i+1)*d.recordSize : (i+1)*d.recordSize]
}

// SetRecord overwrites record i. Intended for construction and for the
// bulk-update windows described in §3.3.
func (d *DB) SetRecord(i int, rec []byte) error {
	if i < 0 || i >= d.numRecords {
		return fmt.Errorf("database: record %d out of range [0,%d)", i, d.numRecords)
	}
	if len(rec) != d.recordSize {
		return fmt.Errorf("database: record has %d bytes, want %d", len(rec), d.recordSize)
	}
	copy(d.data[i*d.recordSize:], rec)
	return nil
}

// Data returns the flat backing buffer (records concatenated in order).
// Engines use this to shard the DB across DPUs; callers must treat it as
// read-only.
func (d *DB) Data() []byte { return d.data }

// Domain returns the smallest tree depth whose index space covers every
// record: ⌈log₂(numRecords)⌉.
func (d *DB) Domain() int {
	return bits.Len(uint(d.numRecords - 1))
}

// IsPowerOfTwo reports whether the record count is a power of two, the
// layout the engines operate on directly.
func (d *DB) IsPowerOfTwo() bool {
	return d.numRecords&(d.numRecords-1) == 0
}

// PadToPowerOfTwo returns d itself when the record count is already a
// power of two, or a copy extended with zero records up to the next power
// of two. DPF share vectors are pseudorandom beyond the true record
// count, so engines must only ever scan zero-padded storage.
func (d *DB) PadToPowerOfTwo() *DB {
	if d.IsPowerOfTwo() {
		return d
	}
	padded := 1 << uint(d.Domain())
	data := make([]byte, padded*d.recordSize)
	copy(data, d.data)
	return &DB{recordSize: d.recordSize, numRecords: padded, data: data}
}

// Clone returns a deep copy.
func (d *DB) Clone() *DB {
	data := make([]byte, len(d.data))
	copy(data, d.data)
	return &DB{recordSize: d.recordSize, numRecords: d.numRecords, data: data}
}

// Digest returns the SHA-256 of the database contents and geometry.
// Replicated servers compare digests before serving: a silent replica
// mismatch would break reconstruction correctness (not privacy).
func (d *DB) Digest() [32]byte {
	h := sha256.New()
	var hdr [16]byte
	putUint64(hdr[:8], uint64(d.numRecords))
	putUint64(hdr[8:], uint64(d.recordSize))
	h.Write(hdr[:])
	h.Write(d.data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
