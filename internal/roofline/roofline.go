// Package roofline implements the roofline performance model used in
// Figure 3(b) of the paper to show that multi-server PIR's server-side
// operations are memory-bound: their operational intensity (useful
// operations per byte moved) falls left of the machine's ridge point, so
// attainable performance is capped by memory bandwidth rather than
// compute throughput — the observation that motivates moving dpXOR into
// memory.
package roofline

import (
	"fmt"
	"time"
)

// Machine is the roofline envelope: a flat compute roof and a bandwidth
// diagonal.
type Machine struct {
	// Name identifies the machine in reports.
	Name string
	// PeakOpsPerSec is the compute roof (64-bit-word operations/s across
	// all cores).
	PeakOpsPerSec float64
	// BytesPerSec is the DRAM bandwidth diagonal.
	BytesPerSec float64
}

// CPUBaselineMachine is the roofline envelope of the paper's baseline
// server: 32 hardware threads at 2.1 GHz (≈ one useful 64-bit op per
// cycle each) against ~60 GB/s of realised DRAM bandwidth.
func CPUBaselineMachine() Machine {
	return Machine{
		Name:          "cpu-pir-baseline",
		PeakOpsPerSec: 33.6e9,
		BytesPerSec:   60e9,
	}
}

// RidgeIntensity is the operational intensity (op/B) where the bandwidth
// diagonal meets the compute roof; kernels left of it are memory-bound.
func (m Machine) RidgeIntensity() float64 {
	return m.PeakOpsPerSec / m.BytesPerSec
}

// AttainableOpsPerSec evaluates the roofline at a given operational
// intensity: min(peak, intensity × bandwidth).
func (m Machine) AttainableOpsPerSec(intensity float64) float64 {
	bw := intensity * m.BytesPerSec
	if bw < m.PeakOpsPerSec {
		return bw
	}
	return m.PeakOpsPerSec
}

// MemoryBound reports whether a kernel of the given intensity sits in the
// memory-bound region.
func (m Machine) MemoryBound(intensity float64) bool {
	return intensity < m.RidgeIntensity()
}

// Kernel is one measured (or modeled) kernel placed on the roofline.
type Kernel struct {
	// Name identifies the kernel ("dpXOR", "Eval", …).
	Name string
	// Ops is the useful-operation count of one execution.
	Ops float64
	// Bytes is the data volume moved to/from memory by one execution.
	Bytes float64
	// Duration is the execution time (modeled on the paper's hardware).
	Duration time.Duration
}

// Intensity returns operations per byte.
func (k Kernel) Intensity() float64 {
	if k.Bytes == 0 {
		return 0
	}
	return k.Ops / k.Bytes
}

// AchievedOpsPerSec returns the kernel's realised performance.
func (k Kernel) AchievedOpsPerSec() float64 {
	s := k.Duration.Seconds()
	if s <= 0 {
		return 0
	}
	return k.Ops / s
}

// String renders the kernel's roofline coordinates.
func (k Kernel) String() string {
	return fmt.Sprintf("%s: OI=%.4f op/B, achieved=%.2f Gop/s", k.Name, k.Intensity(), k.AchievedOpsPerSec()/1e9)
}

// DpXORKernel builds the roofline point for the selective-XOR scan: one
// 64-bit XOR per selected 8-byte word, against streaming the database
// once plus the selector bits. With DPF shares, selectivity is ≈ 0.5.
func DpXORKernel(dbBytes int64, selectivity float64, d time.Duration) Kernel {
	words := float64(dbBytes) / 8
	return Kernel{
		Name:     "dpXOR",
		Ops:      words * selectivity,
		Bytes:    float64(dbBytes) + float64(dbBytes)/64/8, // records + 1 selector bit per record byte/recordSize… conservatively: selector stream
		Duration: d,
	}
}

// EvalKernel builds the roofline point for GGM full-domain evaluation:
// every internal node costs two AES-128 blocks (≈ 12 instructions each
// with AES-NI) and moves its 16-byte seed in and two 16-byte children
// out.
func EvalKernel(leaves uint64, d time.Duration) Kernel {
	nodes := float64(leaves) // ≈ N internal nodes
	return Kernel{
		Name:     "Eval",
		Ops:      nodes * 2 * 12,
		Bytes:    nodes * 48,
		Duration: d,
	}
}

// GenKernel builds the roofline point for client key generation: O(log N)
// PRG expansions on cache-resident data.
func GenKernel(domain int, d time.Duration) Kernel {
	levels := float64(domain)
	return Kernel{
		Name:     "Gen",
		Ops:      levels * 2 * 12,
		Bytes:    levels * 48,
		Duration: d,
	}
}
