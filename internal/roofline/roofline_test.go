package roofline

import (
	"strings"
	"testing"
	"time"
)

func TestRidgeAndAttainable(t *testing.T) {
	m := Machine{PeakOpsPerSec: 10e9, BytesPerSec: 20e9}
	if got := m.RidgeIntensity(); got != 0.5 {
		t.Fatalf("RidgeIntensity = %v, want 0.5", got)
	}
	// Below the ridge: bandwidth-limited.
	if got := m.AttainableOpsPerSec(0.1); got != 2e9 {
		t.Fatalf("Attainable(0.1) = %v, want 2e9", got)
	}
	// Above the ridge: compute roof.
	if got := m.AttainableOpsPerSec(10); got != 10e9 {
		t.Fatalf("Attainable(10) = %v, want peak", got)
	}
	if !m.MemoryBound(0.1) || m.MemoryBound(1.0) {
		t.Fatal("MemoryBound misclassifies intensities")
	}
}

// TestFigure3bShape checks the figure's qualitative claims on the
// baseline machine: dpXOR and Eval are memory-bound and dpXOR has the
// lower operational intensity.
func TestFigure3bShape(t *testing.T) {
	m := CPUBaselineMachine()
	dpxor := DpXORKernel(1<<30, 0.5, 500*time.Millisecond)
	eval := EvalKernel(1<<25, 150*time.Millisecond)

	if !m.MemoryBound(dpxor.Intensity()) {
		t.Errorf("dpXOR OI %.3f not memory-bound (ridge %.3f)", dpxor.Intensity(), m.RidgeIntensity())
	}
	if !m.MemoryBound(eval.Intensity()) {
		t.Errorf("Eval OI %.3f not memory-bound (ridge %.3f)", eval.Intensity(), m.RidgeIntensity())
	}
	if dpxor.Intensity() >= eval.Intensity() {
		t.Errorf("dpXOR OI %.3f should be below Eval OI %.3f", dpxor.Intensity(), eval.Intensity())
	}
}

func TestAchievedBelowRoofline(t *testing.T) {
	// Achieved performance from the calibrated durations must not exceed
	// the roofline bound at the kernel's intensity.
	m := CPUBaselineMachine()
	dpxor := DpXORKernel(4<<30, 0.5, 1650*time.Millisecond)
	if achieved := dpxor.AchievedOpsPerSec(); achieved > m.AttainableOpsPerSec(dpxor.Intensity()) {
		t.Errorf("dpXOR achieved %.2e exceeds roofline bound %.2e",
			achieved, m.AttainableOpsPerSec(dpxor.Intensity()))
	}
}

func TestKernelEdgeCases(t *testing.T) {
	k := Kernel{Name: "x", Ops: 100}
	if k.Intensity() != 0 {
		t.Error("zero-byte kernel has nonzero intensity")
	}
	if k.AchievedOpsPerSec() != 0 {
		t.Error("zero-duration kernel has nonzero achieved rate")
	}
	if !strings.Contains(k.String(), "x:") {
		t.Errorf("String() = %q", k.String())
	}
}

func TestGenKernelTiny(t *testing.T) {
	g := GenKernel(30, 3*time.Microsecond)
	e := EvalKernel(1<<30, time.Second)
	if g.Ops >= e.Ops/1e6 {
		t.Error("Gen ops should be negligible next to Eval")
	}
}
