package pirproto

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello pir")
	if err := WriteFrame(&buf, MsgQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgQuery || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type=%v payload=%q", typ, got)
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgHello || len(got) != 0 {
		t.Fatalf("empty frame: type=%v len=%d", typ, len(got))
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, MsgQuery, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		_, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if payload[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
}

func TestReadFrameRejectsBadMagic(t *testing.T) {
	data := []byte{'X', 'Y', 1, 0, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	data := []byte{'I', 'P', 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(data)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 8, len(data) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	huge := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(io.Discard, MsgQuery, huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestServerInfoRoundTrip(t *testing.T) {
	si := ServerInfo{
		Party:      1,
		Domain:     20,
		RecordSize: 32,
		NumRecords: 1 << 20,
	}
	for i := range si.Digest {
		si.Digest[i] = byte(i)
	}
	got, err := ParseServerInfo(si.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != si {
		t.Fatalf("round trip: %+v != %+v", got, si)
	}
	if _, err := ParseServerInfo([]byte{1, 2, 3}); err == nil {
		t.Error("ParseServerInfo accepted short payload")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	items := [][]byte{[]byte("a"), {}, []byte("longer item"), {0, 1, 2}}
	payload, err := MarshalBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i], items[i]) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	payload, err := MarshalBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch decoded to %d items", len(got))
	}
}

func TestParseBatchRejectsCorruption(t *testing.T) {
	good, err := MarshalBatch([][]byte{[]byte("abc"), []byte("def")})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"short":          good[:2],
		"truncated item": good[:len(good)-2],
		"trailing":       append(append([]byte{}, good...), 0xFF),
		"huge count":     {0xFF, 0xFF, 0xFF, 0xFF},
		"length overrun": {1, 0, 0, 0, 0xFF, 0, 0, 0},
		"missing length": {2, 0, 0, 0, 1, 0, 0, 0, 'x'},
	}
	for name, data := range cases {
		if _, err := ParseBatch(data); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, typ := range []MsgType{MsgHello, MsgServerInfo, MsgQuery, MsgQueryResp, MsgBatchQuery, MsgBatchResp, MsgError, MsgShareQuery, MsgShareBatchQuery, MsgBusy} {
		if typ.String() == "" {
			t.Errorf("MsgType %d has empty name", typ)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type has empty name")
	}
}

// Property: batch marshalling round-trips arbitrary byte strings.
func TestQuickBatchRoundTrip(t *testing.T) {
	f := func(items [][]byte) bool {
		payload, err := MarshalBatch(items)
		if err != nil {
			return len(items) > 0 // only oversize should fail
		}
		got, err := ParseBatch(payload)
		if err != nil || len(got) != len(items) {
			return false
		}
		for i := range items {
			if !bytes.Equal(got[i], items[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := map[uint64][]byte{
		0:    []byte("record zero bytes here 32 long!!"),
		7:    bytes.Repeat([]byte{0xAB}, 32),
		1000: bytes.Repeat([]byte{0x01}, 32),
	}
	payload, err := MarshalUpdate(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseUpdate(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d entries, want %d", len(out), len(in))
	}
	for idx, rec := range in {
		if !bytes.Equal(out[idx], rec) {
			t.Errorf("record %d changed in round trip", idx)
		}
	}

	// Identical sets must marshal identically (ascending index order), so
	// every replica of a cohort receives byte-identical update frames.
	again, err := MarshalUpdate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, again) {
		t.Error("MarshalUpdate is not deterministic")
	}

	if _, err := MarshalUpdate(nil); err == nil {
		t.Error("empty update marshalled")
	}
	if _, err := MarshalUpdate(map[uint64][]byte{1 << 63: {1}}); err == nil {
		t.Error("implausible index marshalled")
	}
	if _, err := ParseUpdate([]byte{1}); err == nil {
		t.Error("truncated update parsed")
	}
	if _, err := ParseUpdate(append(payload, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
