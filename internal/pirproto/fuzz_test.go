package pirproto

import (
	"bytes"
	"testing"
)

// FuzzParseBatch hardens the batch decoder against adversarial payloads.
func FuzzParseBatch(f *testing.F) {
	good, err := MarshalBatch([][]byte{[]byte("abc"), {}, []byte("z")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := ParseBatch(data)
		if err != nil {
			return
		}
		// Accepted payloads must round-trip exactly.
		back, err := MarshalBatch(items)
		if err != nil {
			t.Fatalf("accepted batch fails re-marshal: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("accepted batch is not a fixed point of the codec")
		}
	})
}

// FuzzReadFrame hardens the frame reader: arbitrary streams must never
// panic or over-allocate.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{'I', 'P'})
	f.Add([]byte("GET / HTTP/1.1\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed frame must re-encode to a prefix of the
		// input.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("accepted frame fails re-encode: %v", err)
		}
		if !bytes.HasPrefix(data, out.Bytes()) {
			t.Fatal("accepted frame is not a prefix fixed point")
		}
	})
}

// FuzzParseUpdate hardens the update decoder against adversarial
// payloads: never panic, never over-allocate, and accepted payloads
// must round-trip semantically (MarshalUpdate canonicalises entry order
// to ascending index, so byte equality only holds after one
// re-marshal).
func FuzzParseUpdate(f *testing.F) {
	good, err := MarshalUpdate(map[uint64][]byte{3: []byte("abc"), 9: {}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		updates, err := ParseUpdate(data)
		if err != nil {
			return
		}
		back, err := MarshalUpdate(updates)
		if err != nil {
			t.Fatalf("accepted update fails re-marshal: %v", err)
		}
		again, err := ParseUpdate(back)
		if err != nil {
			t.Fatalf("canonical re-marshal fails to parse: %v", err)
		}
		if len(again) != len(updates) {
			t.Fatalf("round trip changed entry count: %d != %d", len(again), len(updates))
		}
		for idx, rec := range updates {
			if !bytes.Equal(again[idx], rec) {
				t.Fatalf("round trip changed record %d", idx)
			}
		}
		canonical, err := MarshalUpdate(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canonical, back) {
			t.Fatal("canonical form is not a fixed point of the codec")
		}
	})
}
