package pirproto

import (
	"bytes"
	"testing"
)

// FuzzParseBatch hardens the batch decoder against adversarial payloads.
func FuzzParseBatch(f *testing.F) {
	good, err := MarshalBatch([][]byte{[]byte("abc"), {}, []byte("z")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := ParseBatch(data)
		if err != nil {
			return
		}
		// Accepted payloads must round-trip exactly.
		back, err := MarshalBatch(items)
		if err != nil {
			t.Fatalf("accepted batch fails re-marshal: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("accepted batch is not a fixed point of the codec")
		}
	})
}

// FuzzReadFrame hardens the frame reader: arbitrary streams must never
// panic or over-allocate.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{'I', 'P'})
	f.Add([]byte("GET / HTTP/1.1\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed frame must re-encode to a prefix of the
		// input.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("accepted frame fails re-encode: %v", err)
		}
		if !bytes.HasPrefix(data, out.Bytes()) {
			t.Fatal("accepted frame is not a prefix fixed point")
		}
	})
}
