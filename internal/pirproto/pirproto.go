// Package pirproto defines the binary wire protocol between PIR clients
// and servers: length-prefixed frames carrying DPF keys, subresults, and
// server metadata. The protocol is deliberately minimal — one
// request/response in flight per connection — because PIR payloads are
// tiny (keys are O(λ log N), responses are one record) and all the cost
// is server-side compute.
package pirproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
)

// MsgType identifies a frame's payload.
type MsgType uint8

const (
	// MsgHello is the client's opening frame: [version u8].
	MsgHello MsgType = iota + 1
	// MsgServerInfo is the server's reply to Hello:
	// [party u8][domain u8][recordSize u32][numRecords u64][digest 32B].
	MsgServerInfo
	// MsgQuery carries one marshalled DPF key.
	MsgQuery
	// MsgQueryResp carries one subresult (recordSize bytes).
	MsgQueryResp
	// MsgBatchQuery carries [count u32] then count length-prefixed keys.
	MsgBatchQuery
	// MsgBatchResp carries [count u32] then count length-prefixed
	// subresults.
	MsgBatchResp
	// MsgError carries a UTF-8 error message.
	MsgError
	// MsgShareQuery carries one marshalled selector-share bit vector —
	// the naive n-server encoding of §2.3 (O(N) bits).
	MsgShareQuery
	// MsgShareBatchQuery carries [count u32] then count length-prefixed
	// marshalled selector shares; the server answers with MsgBatchResp.
	MsgShareBatchQuery
	// MsgBusy is the server's backpressure reply: its admission queue is
	// full and the request was rejected without an engine pass. The
	// payload is empty; the connection remains usable — clients may retry
	// after a backoff.
	MsgBusy
	// MsgUpdate carries a §3.3 bulk record update:
	// [count u32] then count entries of [index u64][len u32][record].
	// Updates are an operator/owner action, not a private query — the
	// server learns which records changed, by design. The server applies
	// the update atomically under its scheduler's quiescing and replies
	// MsgUpdateOK (or MsgError).
	MsgUpdate
	// MsgUpdateOK acknowledges an applied MsgUpdate. Empty payload.
	MsgUpdateOK
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgServerInfo:
		return "server-info"
	case MsgQuery:
		return "query"
	case MsgQueryResp:
		return "query-resp"
	case MsgBatchQuery:
		return "batch-query"
	case MsgBatchResp:
		return "batch-resp"
	case MsgError:
		return "error"
	case MsgShareQuery:
		return "share-query"
	case MsgShareBatchQuery:
		return "share-batch-query"
	case MsgBusy:
		return "busy"
	case MsgUpdate:
		return "update"
	case MsgUpdateOK:
		return "update-ok"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Protocol versions carried in Hello frames. Version 2 is identical to
// version 1 on every frame except that it permits the optional
// trace-context extension (FlagTraceContext) on query/batch frames. A
// server that accepts version 2 must also accept version 1; a client
// whose version-2 hello is rejected downgrades to version 1 and simply
// never attaches the extension.
const (
	// VersionLegacy is the pre-tracing protocol: no header flags, no
	// frame extensions.
	VersionLegacy = 1
	// Version is the current protocol version.
	Version = 2
)

// MaxFrameSize bounds a frame's payload; larger frames are rejected
// before allocation. Batch frames of thousands of keys stay well below
// this.
const MaxFrameSize = 64 << 20

var (
	magic = [2]byte{'I', 'P'}

	// ErrFrameTooLarge indicates a frame above MaxFrameSize.
	ErrFrameTooLarge = errors.New("pirproto: frame exceeds size limit")
	// ErrBadMagic indicates a stream that is not speaking this protocol.
	ErrBadMagic = errors.New("pirproto: bad frame magic")
)

// Frame header: magic(2) type(1) flags(1) length(4, LE). The flags
// byte was reserved (always zero) through protocol version 1; version 2
// uses it to mark optional extensions. Version-1 peers wrote it as zero
// and ignored it on read, which is exactly what makes the extension
// negotiable: a flagged frame is only ever sent to a peer that said
// hello with version 2.
const headerSize = 8

// FlagTraceContext marks a query/batch frame whose payload is prefixed
// with a TraceContext (traceContextSize bytes). Only valid on
// connections that negotiated protocol version ≥ 2.
const FlagTraceContext byte = 0x01

// maxUpdateEntries bounds a MsgUpdate frame's entry count, enforced
// symmetrically by MarshalUpdate and ParseUpdate.
const maxUpdateEntries = 1 << 20

// WriteFrame writes one frame with no flags — the version-1 wire image.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	return WriteFrameFlags(w, t, 0, payload)
}

// WriteFrameFlags writes one frame with the given header flags.
func WriteFrameFlags(w io.Writer, t MsgType, flags byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	hdr[0], hdr[1] = magic[0], magic[1]
	hdr[2] = byte(t)
	hdr[3] = flags
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pirproto: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("pirproto: write payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame, validating magic and size, discarding the
// header flags — the version-1 read path.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	t, _, payload, err := ReadFrameFlags(r)
	return t, payload, err
}

// ReadFrameFlags reads one frame, returning its header flags.
func ReadFrameFlags(r io.Reader) (MsgType, byte, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] {
		return 0, 0, nil, ErrBadMagic
	}
	size := binary.LittleEndian.Uint32(hdr[4:])
	if size > MaxFrameSize {
		return 0, 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("pirproto: read payload: %w", err)
	}
	return MsgType(hdr[2]), hdr[3], payload, nil
}

// TraceContext is the optional per-frame tracing extension: the span ID
// the client minted for this one server's view of one attempt. Each
// party receives an independently random ID — the context deliberately
// carries no shared trace ID, so two colluding servers cannot link
// their halves of one client operation through it.
type TraceContext struct {
	// SpanID is the party-local span ID (little-endian on the wire).
	SpanID uint64
	// Sampled asks the server to record the trace in its ring buffer
	// even below its own sampling rate.
	Sampled bool
}

// traceContextSize is the extension prefix length: span ID (8, LE) +
// sampled flag (1).
const traceContextSize = 9

// PrependTraceContext returns payload prefixed with the encoded trace
// context, for a frame written with FlagTraceContext.
func PrependTraceContext(tc TraceContext, payload []byte) []byte {
	out := make([]byte, traceContextSize+len(payload))
	binary.LittleEndian.PutUint64(out, tc.SpanID)
	if tc.Sampled {
		out[8] = 1
	}
	copy(out[traceContextSize:], payload)
	return out
}

// SplitTraceContext strips the trace-context prefix from a frame
// payload carrying FlagTraceContext, returning the context and the
// inner payload.
func SplitTraceContext(b []byte) (TraceContext, []byte, error) {
	if len(b) < traceContextSize {
		return TraceContext{}, nil, errors.New("pirproto: frame too short for trace context")
	}
	tc := TraceContext{
		SpanID:  binary.LittleEndian.Uint64(b),
		Sampled: b[8] != 0,
	}
	return tc, b[traceContextSize:], nil
}

// ServerInfo describes a PIR server's database to clients.
type ServerInfo struct {
	Party      uint8
	Domain     uint8
	RecordSize uint32
	NumRecords uint64
	Digest     [32]byte
}

const serverInfoSize = 1 + 1 + 4 + 8 + 32

// Marshal encodes the info payload.
func (si ServerInfo) Marshal() []byte {
	out := make([]byte, serverInfoSize)
	out[0] = si.Party
	out[1] = si.Domain
	binary.LittleEndian.PutUint32(out[2:], si.RecordSize)
	binary.LittleEndian.PutUint64(out[6:], si.NumRecords)
	copy(out[14:], si.Digest[:])
	return out
}

// ParseServerInfo decodes the info payload.
func ParseServerInfo(b []byte) (ServerInfo, error) {
	if len(b) != serverInfoSize {
		return ServerInfo{}, fmt.Errorf("pirproto: server info is %d bytes, want %d", len(b), serverInfoSize)
	}
	var si ServerInfo
	si.Party = b[0]
	si.Domain = b[1]
	si.RecordSize = binary.LittleEndian.Uint32(b[2:])
	si.NumRecords = binary.LittleEndian.Uint64(b[6:])
	copy(si.Digest[:], b[14:])
	return si, nil
}

// MarshalBatch encodes count length-prefixed byte strings.
func MarshalBatch(items [][]byte) ([]byte, error) {
	total := 4
	for _, it := range items {
		total += 4 + len(it)
	}
	if total > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	out := make([]byte, 0, total)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(items)))
	out = append(out, tmp[:]...)
	for _, it := range items {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(it)))
		out = append(out, tmp[:]...)
		out = append(out, it...)
	}
	return out, nil
}

// ParseBatch decodes a MarshalBatch payload.
func ParseBatch(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, errors.New("pirproto: batch payload too short")
	}
	count := binary.LittleEndian.Uint32(b)
	if count > 1<<20 {
		return nil, fmt.Errorf("pirproto: implausible batch count %d", count)
	}
	b = b[4:]
	items := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("pirproto: batch item %d: missing length", i)
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("pirproto: batch item %d: truncated (%d of %d bytes)", i, len(b), n)
		}
		items = append(items, b[:n:n])
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("pirproto: %d trailing bytes after batch", len(b))
	}
	return items, nil
}

// MarshalUpdate encodes a bulk record update for a MsgUpdate frame.
// Entries are emitted in ascending index order so identical update sets
// marshal identically on every replica.
func MarshalUpdate(updates map[uint64][]byte) ([]byte, error) {
	if len(updates) == 0 {
		return nil, errors.New("pirproto: empty update set")
	}
	if len(updates) > maxUpdateEntries {
		// Mirror ParseUpdate's cap so an oversized update fails here,
		// before any bytes ship, instead of server-side after upload.
		return nil, fmt.Errorf("pirproto: update set of %d entries exceeds the %d-entry limit",
			len(updates), maxUpdateEntries)
	}
	total := 4
	indices := make([]uint64, 0, len(updates))
	for idx, rec := range updates {
		if idx > 1<<62 {
			// Mirror ParseUpdate's plausibility bound for the same reason.
			return nil, fmt.Errorf("pirproto: implausible update index %d", idx)
		}
		indices = append(indices, idx)
		total += 12 + len(rec)
	}
	if total > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	slices.Sort(indices)
	out := make([]byte, 0, total)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(updates)))
	out = append(out, tmp[:4]...)
	for _, idx := range indices {
		rec := updates[idx]
		binary.LittleEndian.PutUint64(tmp[:], idx)
		out = append(out, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec)))
		out = append(out, tmp[:4]...)
		out = append(out, rec...)
	}
	return out, nil
}

// ParseUpdate decodes a MarshalUpdate payload.
func ParseUpdate(b []byte) (map[uint64][]byte, error) {
	if len(b) < 4 {
		return nil, errors.New("pirproto: update payload too short")
	}
	count := binary.LittleEndian.Uint32(b)
	if count == 0 {
		return nil, errors.New("pirproto: empty update set")
	}
	if count > maxUpdateEntries {
		return nil, fmt.Errorf("pirproto: implausible update count %d", count)
	}
	b = b[4:]
	// Size the map from the bytes actually present, not the declared
	// count — a tiny frame claiming 2^20 entries must not allocate for
	// them before the per-entry checks reject it.
	hint := count
	if max := uint32(len(b) / 12); hint > max {
		hint = max
	}
	updates := make(map[uint64][]byte, hint)
	for i := uint32(0); i < count; i++ {
		if len(b) < 12 {
			return nil, fmt.Errorf("pirproto: update entry %d: missing header", i)
		}
		idx := binary.LittleEndian.Uint64(b)
		if idx > 1<<62 {
			return nil, fmt.Errorf("pirproto: update entry %d: implausible index %d", i, idx)
		}
		n := binary.LittleEndian.Uint32(b[8:])
		b = b[12:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("pirproto: update entry %d: truncated (%d of %d bytes)", i, len(b), n)
		}
		if _, dup := updates[idx]; dup {
			return nil, fmt.Errorf("pirproto: duplicate update index %d", idx)
		}
		updates[idx] = b[:n:n]
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("pirproto: %d trailing bytes after update", len(b))
	}
	return updates, nil
}
