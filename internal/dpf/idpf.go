package dpf

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/impir/impir/internal/aesprf"
)

// Incremental DPFs (IDPFs) extend the point-function sharing to every
// level of the evaluation tree: the client fixes a target point α and a
// per-level value β_ℓ, and the two keys secret-share the function that
// maps each ℓ-bit prefix p to β_ℓ when p is a prefix of α and to zero
// otherwise. This is the construction implemented by Google's
// distributed_point_functions library — the code base the paper uses as
// its CPU baseline — and the primitive behind heavy-hitter aggregation
// and hierarchical/range PIR.
//
// The tree mechanics are identical to the plain DPF (same correction
// words, same PRG); the increment is one output correction word per
// level, derived from the on-path seeds at that level.

// IncrementalKey is one party's IDPF key.
type IncrementalKey struct {
	Party    uint8
	Domain   uint8
	PRG      PRGKind
	RootSeed aesprf.Block
	RootT    bool
	CW       []CorrectionWord
	// LevelOCW[ℓ-1] is the output correction word of level ℓ; its length
	// is that level's value size.
	LevelOCW [][]byte
}

// NumLevels returns the number of evaluable levels (= Domain).
func (k *IncrementalKey) NumLevels() int { return int(k.Domain) }

// GenIncremental produces an IDPF key pair for target α with per-level
// values levelBetas[ℓ-1] (one per level, each non-empty; lengths may
// differ between levels). The domain is len(levelBetas).
func GenIncremental(p Params, alpha uint64, levelBetas [][]byte) (k0, k1 *IncrementalKey, err error) {
	domain := len(levelBetas)
	if domain < 1 || domain > MaxDomain {
		return nil, nil, fmt.Errorf("%w: %d levels", ErrDomainRange, domain)
	}
	if p.Domain != 0 && p.Domain != domain {
		return nil, nil, fmt.Errorf("dpf: Params.Domain %d conflicts with %d levels", p.Domain, domain)
	}
	if alpha >= 1<<uint(domain) {
		return nil, nil, fmt.Errorf("%w: alpha=%d domain=%d", ErrAlphaRange, alpha, domain)
	}
	for ell, beta := range levelBetas {
		if len(beta) == 0 {
			return nil, nil, fmt.Errorf("%w: level %d value is empty", ErrBetaLen, ell+1)
		}
	}
	prgKind := p.PRG
	if prgKind == 0 {
		prgKind = PRGFixedKey
	}
	prg, err := prgKind.expander()
	if err != nil {
		return nil, nil, err
	}
	rng := p.Rand
	if rng == nil {
		rng = rand.Reader
	}

	var s0, s1 aesprf.Block
	if _, err := io.ReadFull(rng, s0[:]); err != nil {
		return nil, nil, fmt.Errorf("dpf: read root seed: %w", err)
	}
	if _, err := io.ReadFull(rng, s1[:]); err != nil {
		return nil, nil, fmt.Errorf("dpf: read root seed: %w", err)
	}

	k0 = &IncrementalKey{Party: 0, Domain: uint8(domain), PRG: prgKind, RootSeed: s0, RootT: false}
	k1 = &IncrementalKey{Party: 1, Domain: uint8(domain), PRG: prgKind, RootSeed: s1, RootT: true}
	k0.CW = make([]CorrectionWord, domain)
	k1.CW = make([]CorrectionWord, domain)
	k0.LevelOCW = make([][]byte, domain)
	k1.LevelOCW = make([][]byte, domain)

	t0, t1 := false, true
	for level := 0; level < domain; level++ {
		s0L, t0L, s0R, t0R := expandNode(prg, s0)
		s1L, t1L, s1R, t1R := expandNode(prg, s1)

		aBit := alpha>>(uint(domain)-1-uint(level))&1 == 1

		var sKeep0, sKeep1, sLose0, sLose1 aesprf.Block
		var tKeep0, tKeep1 bool
		if aBit {
			sKeep0, tKeep0, sLose0 = s0R, t0R, s0L
			sKeep1, tKeep1, sLose1 = s1R, t1R, s1L
		} else {
			sKeep0, tKeep0, sLose0 = s0L, t0L, s0R
			sKeep1, tKeep1, sLose1 = s1L, t1L, s1R
		}

		cw := CorrectionWord{
			Seed:   xorBlocks(sLose0, sLose1),
			TLeft:  t0L != t1L != !aBit,
			TRight: t0R != t1R != aBit,
		}
		k0.CW[level] = cw
		k1.CW[level] = cw

		tKeepCW := cw.TRight
		if !aBit {
			tKeepCW = cw.TLeft
		}
		s0, t0 = applyCorrection(sKeep0, tKeep0, t0, cw.Seed, tKeepCW)
		s1, t1 = applyCorrection(sKeep1, tKeep1, t1, cw.Seed, tKeepCW)

		// Per-level output correction from the on-path seeds.
		beta := levelBetas[level]
		ocw := make([]byte, len(beta))
		c0 := convertSeed(s0, len(beta))
		c1 := convertSeed(s1, len(beta))
		for i := range ocw {
			ocw[i] = beta[i] ^ c0[i] ^ c1[i]
		}
		k0.LevelOCW[level] = ocw
		k1.LevelOCW[level] = append([]byte(nil), ocw...)
	}
	return k0, k1, nil
}

// EvalPrefix returns this party's value share for the ℓ-bit prefix
// (level ∈ [1, Domain], prefix < 2^level). The XOR of the two parties'
// shares is levelBetas[level-1] when prefix is a prefix of α, zero
// otherwise.
func (k *IncrementalKey) EvalPrefix(prefix uint64, level int) ([]byte, error) {
	if level < 1 || level > int(k.Domain) {
		return nil, fmt.Errorf("dpf: level %d outside [1,%d]", level, k.Domain)
	}
	if prefix >= 1<<uint(level) {
		return nil, fmt.Errorf("%w: prefix=%d level=%d", ErrAlphaRange, prefix, level)
	}
	if len(k.CW) != int(k.Domain) || len(k.LevelOCW) != int(k.Domain) {
		return nil, fmt.Errorf("dpf: malformed incremental key")
	}
	prg, err := k.PRG.expander()
	if err != nil {
		return nil, err
	}

	s, t := k.RootSeed, k.RootT
	for d := 0; d < level; d++ {
		sL, tL, sR, tR := expandNode(prg, s)
		if t {
			cw := &k.CW[d]
			sL = xorBlocks(sL, cw.Seed)
			sR = xorBlocks(sR, cw.Seed)
			tL = tL != cw.TLeft
			tR = tR != cw.TRight
		}
		if prefix>>(uint(level)-1-uint(d))&1 == 1 {
			s, t = sR, tR
		} else {
			s, t = sL, tL
		}
	}
	ocw := k.LevelOCW[level-1]
	out := convertSeed(s, len(ocw))
	if t {
		for i := range out {
			out[i] ^= ocw[i]
		}
	}
	return out, nil
}

// Incremental key wire format: the plain-key header and correction words
// followed by one length-prefixed OCW per level.
const idpfVersion = 2

// MarshalBinary encodes the incremental key.
func (k *IncrementalKey) MarshalBinary() ([]byte, error) {
	if len(k.CW) != int(k.Domain) || len(k.LevelOCW) != int(k.Domain) {
		return nil, fmt.Errorf("dpf: marshal: malformed incremental key")
	}
	size := keyHeaderSize + cwWireSize*len(k.CW)
	for _, ocw := range k.LevelOCW {
		size += 4 + len(ocw)
	}
	out := make([]byte, size)
	out[0] = idpfVersion
	out[1] = k.Party
	out[2] = k.Domain
	out[3] = uint8(k.PRG)
	// Bytes 4..8 (betaLen in the plain format) stay zero.
	copy(out[8:], k.RootSeed[:])
	if k.RootT {
		out[24] = 1
	}
	off := keyHeaderSize
	for _, cw := range k.CW {
		copy(out[off:], cw.Seed[:])
		var bits byte
		if cw.TLeft {
			bits |= 1
		}
		if cw.TRight {
			bits |= 2
		}
		out[off+aesprf.BlockSize] = bits
		off += cwWireSize
	}
	for _, ocw := range k.LevelOCW {
		binary.LittleEndian.PutUint32(out[off:], uint32(len(ocw)))
		off += 4
		copy(out[off:], ocw)
		off += len(ocw)
	}
	return out, nil
}

// UnmarshalBinary decodes an incremental key.
func (k *IncrementalKey) UnmarshalBinary(data []byte) error {
	if len(data) < keyHeaderSize {
		return fmt.Errorf("dpf: unmarshal: short buffer (%d bytes)", len(data))
	}
	if data[0] != idpfVersion {
		return fmt.Errorf("dpf: unmarshal: unsupported incremental version %d", data[0])
	}
	if data[1] > 1 {
		return fmt.Errorf("dpf: unmarshal: invalid party %d", data[1])
	}
	domain := int(data[2])
	if domain < 1 || domain > MaxDomain {
		return fmt.Errorf("%w: %d", ErrDomainRange, domain)
	}
	prg := PRGKind(data[3])
	if _, err := prg.expander(); err != nil {
		return err
	}
	if data[24] > 1 {
		return fmt.Errorf("dpf: unmarshal: invalid control bit %d", data[24])
	}
	if len(data) < keyHeaderSize+cwWireSize*domain {
		return fmt.Errorf("dpf: unmarshal: truncated correction words")
	}

	k.Party = data[1]
	k.Domain = uint8(domain)
	k.PRG = prg
	copy(k.RootSeed[:], data[8:24])
	k.RootT = data[24] == 1
	k.CW = make([]CorrectionWord, domain)
	off := keyHeaderSize
	for i := range k.CW {
		copy(k.CW[i].Seed[:], data[off:off+aesprf.BlockSize])
		bits := data[off+aesprf.BlockSize]
		if bits > 3 {
			return fmt.Errorf("dpf: unmarshal: invalid correction bits %#x at level %d", bits, i)
		}
		k.CW[i].TLeft = bits&1 == 1
		k.CW[i].TRight = bits&2 == 2
		off += cwWireSize
	}
	k.LevelOCW = make([][]byte, domain)
	for i := range k.LevelOCW {
		if len(data)-off < 4 {
			return fmt.Errorf("dpf: unmarshal: missing OCW length at level %d", i+1)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n == 0 || n > 1<<20 {
			return fmt.Errorf("dpf: unmarshal: implausible OCW length %d at level %d", n, i+1)
		}
		if len(data)-off < n {
			return fmt.Errorf("dpf: unmarshal: truncated OCW at level %d", i+1)
		}
		k.LevelOCW[i] = append([]byte(nil), data[off:off+n]...)
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("dpf: unmarshal: %d trailing bytes", len(data)-off)
	}
	return nil
}
