package dpf

import (
	"bytes"
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func mustGen(t *testing.T, p Params, alpha uint64, beta []byte) (*Key, *Key) {
	t.Helper()
	k0, k1, err := Gen(p, alpha, beta)
	if err != nil {
		t.Fatalf("Gen(domain=%d, alpha=%d): %v", p.Domain, alpha, err)
	}
	return k0, k1
}

func randomIndex(t *testing.T, domain int) uint64 {
	t.Helper()
	if domain == 0 {
		return 0
	}
	n, err := rand.Int(rand.Reader, big.NewInt(1<<uint(domain)))
	if err != nil {
		t.Fatalf("rand.Int: %v", err)
	}
	return n.Uint64()
}

// TestPointFunctionExhaustive checks the defining DPF property for every
// index of small domains: Eval(k0,x) ⊕ Eval(k1,x) = 1 iff x = α.
func TestPointFunctionExhaustive(t *testing.T) {
	for _, prg := range []PRGKind{PRGFixedKey, PRGKeyed} {
		for domain := 0; domain <= 8; domain++ {
			n := uint64(1) << uint(domain)
			for alpha := uint64(0); alpha < n; alpha++ {
				k0, k1 := mustGen(t, Params{Domain: domain, PRG: prg}, alpha, nil)
				for x := uint64(0); x < n; x++ {
					b0, _, err := k0.Eval(x)
					if err != nil {
						t.Fatalf("Eval: %v", err)
					}
					b1, _, err := k1.Eval(x)
					if err != nil {
						t.Fatalf("Eval: %v", err)
					}
					got := b0 != b1
					want := x == alpha
					if got != want {
						t.Fatalf("prg=%v domain=%d alpha=%d x=%d: share XOR = %v, want %v",
							prg, domain, alpha, x, got, want)
					}
				}
			}
		}
	}
}

// TestPointFunctionLargeDomain samples random indices on larger domains.
func TestPointFunctionLargeDomain(t *testing.T) {
	for _, domain := range []int{16, 20, 32, 47, MaxDomain} {
		alpha := randomIndex(t, domain)
		k0, k1 := mustGen(t, Params{Domain: domain}, alpha, nil)

		check := func(x uint64, want bool) {
			b0, _, err := k0.Eval(x)
			if err != nil {
				t.Fatalf("Eval(%d): %v", x, err)
			}
			b1, _, err := k1.Eval(x)
			if err != nil {
				t.Fatalf("Eval(%d): %v", x, err)
			}
			if (b0 != b1) != want {
				t.Fatalf("domain=%d alpha=%d x=%d: share XOR = %v, want %v",
					domain, alpha, x, b0 != b1, want)
			}
		}

		check(alpha, true)
		// Nearby and random off-path indices must evaluate to zero.
		n := uint64(1) << uint(domain)
		for _, x := range []uint64{0, n - 1, alpha ^ 1, (alpha + 1) % n} {
			if x != alpha {
				check(x, false)
			}
		}
		for i := 0; i < 32; i++ {
			if x := randomIndex(t, domain); x != alpha {
				check(x, false)
			}
		}
	}
}

// TestPayloadBeta checks multi-byte payload reconstruction: the XOR of the
// value shares is β at α and zero elsewhere.
func TestPayloadBeta(t *testing.T) {
	for _, betaLen := range []int{1, 4, 16, 17, 32, 100} {
		beta := make([]byte, betaLen)
		if _, err := rand.Read(beta); err != nil {
			t.Fatalf("rand.Read: %v", err)
		}
		const domain = 10
		alpha := randomIndex(t, domain)
		k0, k1 := mustGen(t, Params{Domain: domain, BetaLen: betaLen}, alpha, beta)

		for _, x := range []uint64{alpha, 0, 1023, alpha ^ 1} {
			_, v0, err := k0.Eval(x)
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			_, v1, err := k1.Eval(x)
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			combined := make([]byte, betaLen)
			for i := range combined {
				combined[i] = v0[i] ^ v1[i]
			}
			if x == alpha {
				if !bytes.Equal(combined, beta) {
					t.Fatalf("betaLen=%d: reconstruction at alpha = %x, want %x", betaLen, combined, beta)
				}
			} else if !bytes.Equal(combined, make([]byte, betaLen)) {
				t.Fatalf("betaLen=%d x=%d: nonzero payload off-path: %x", betaLen, x, combined)
			}
		}
	}
}

// TestKeyShareLooksRandom: a single key's full evaluation must not be the
// one-hot vector itself (that would leak α trivially). With overwhelming
// probability roughly half the bits are set.
func TestKeyShareLooksRandom(t *testing.T) {
	const domain = 12
	n := 1 << domain
	k0, _ := mustGen(t, Params{Domain: domain}, 42, nil)
	v, err := k0.EvalFull(FullEvalOptions{})
	if err != nil {
		t.Fatalf("EvalFull: %v", err)
	}
	ones := v.OnesCount()
	if ones < n/4 || ones > 3*n/4 {
		t.Fatalf("share vector weight %d/%d outside [1/4, 3/4] — share is not pseudorandom", ones, n)
	}
}

func TestGenValidation(t *testing.T) {
	if _, _, err := Gen(Params{Domain: -1}, 0, nil); err == nil {
		t.Error("Gen accepted negative domain")
	}
	if _, _, err := Gen(Params{Domain: MaxDomain + 1}, 0, nil); err == nil {
		t.Error("Gen accepted oversized domain")
	}
	if _, _, err := Gen(Params{Domain: 4}, 16, nil); err == nil {
		t.Error("Gen accepted alpha outside index space")
	}
	if _, _, err := Gen(Params{Domain: 4, BetaLen: 2}, 0, []byte{1}); err == nil {
		t.Error("Gen accepted beta shorter than BetaLen")
	}
	if _, _, err := Gen(Params{Domain: 4}, 0, []byte{1}); err == nil {
		t.Error("Gen accepted beta with BetaLen=0")
	}
}

func TestEvalValidation(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 4}, 3, nil)
	if _, _, err := k0.Eval(16); err == nil {
		t.Error("Eval accepted out-of-domain index")
	}
	bad := *k0
	bad.CW = bad.CW[:2]
	if _, _, err := bad.Eval(0); err == nil {
		t.Error("Eval accepted malformed key (truncated CW)")
	}
}

func TestKeysDiffer(t *testing.T) {
	k0, k1 := mustGen(t, Params{Domain: 8}, 5, nil)
	if k0.RootSeed == k1.RootSeed {
		t.Error("both parties share a root seed")
	}
	if k0.Party == k1.Party {
		t.Error("both keys claim the same party")
	}
	// Regenerating for the same alpha must give fresh keys.
	k0b, _ := mustGen(t, Params{Domain: 8}, 5, nil)
	if k0.RootSeed == k0b.RootSeed {
		t.Error("two Gen calls produced identical root seeds")
	}
}

func TestDeterministicWithFixedRand(t *testing.T) {
	src := func() *mrand.Rand { return mrand.New(mrand.NewSource(7)) }
	p := Params{Domain: 10}
	p.Rand = src()
	a0, a1, err := Gen(p, 123, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Rand = src()
	b0, b1, err := Gen(p, 123, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a0.RootSeed != b0.RootSeed || a1.RootSeed != b1.RootSeed {
		t.Error("Gen with identical randomness produced different keys")
	}
}

func TestWireSizeLogarithmic(t *testing.T) {
	k8, _ := mustGen(t, Params{Domain: 8}, 0, nil)
	k16, _ := mustGen(t, Params{Domain: 16}, 0, nil)
	d8, d16 := k8.WireSize(), k16.WireSize()
	if d16-d8 != 8*cwWireSize {
		t.Fatalf("wire growth %d bytes for 8 extra levels, want %d", d16-d8, 8*cwWireSize)
	}
	data, err := k16.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != k16.WireSize() {
		t.Fatalf("WireSize() = %d but MarshalBinary produced %d bytes", k16.WireSize(), len(data))
	}
}

func TestNumIndices(t *testing.T) {
	k, _ := mustGen(t, Params{Domain: 10}, 0, nil)
	if k.NumIndices() != 1024 {
		t.Fatalf("NumIndices() = %d, want 1024", k.NumIndices())
	}
}

// Property test: for random (domain, alpha, x), the XOR of shares equals
// the point function.
func TestQuickPointFunction(t *testing.T) {
	f := func(domainRaw uint8, alphaRaw, xRaw uint64) bool {
		domain := int(domainRaw)%20 + 1
		n := uint64(1) << uint(domain)
		alpha, x := alphaRaw%n, xRaw%n
		k0, k1, err := Gen(Params{Domain: domain}, alpha, nil)
		if err != nil {
			return false
		}
		b0, _, err := k0.Eval(x)
		if err != nil {
			return false
		}
		b1, _, err := k1.Eval(x)
		if err != nil {
			return false
		}
		return (b0 != b1) == (x == alpha)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property test: marshalling round-trips and the unmarshalled key
// evaluates identically.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(domainRaw uint8, alphaRaw uint64, withBeta bool) bool {
		domain := int(domainRaw)%14 + 1
		n := uint64(1) << uint(domain)
		alpha := alphaRaw % n
		p := Params{Domain: domain}
		var beta []byte
		if withBeta {
			p.BetaLen = 8
			beta = []byte{1, 2, 3, 4, 5, 6, 7, 8}
		}
		k0, _, err := Gen(p, alpha, beta)
		if err != nil {
			return false
		}
		data, err := k0.MarshalBinary()
		if err != nil {
			return false
		}
		var back Key
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		for x := uint64(0); x < n; x += 1 + n/16 {
			wb, wv, err := k0.Eval(x)
			if err != nil {
				return false
			}
			gb, gv, err := back.Eval(x)
			if err != nil {
				return false
			}
			if wb != gb || !bytes.Equal(wv, gv) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruptKeys(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 6}, 3, nil)
	good, err := k0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			data := mutate(append([]byte(nil), good...))
			var k Key
			if err := k.UnmarshalBinary(data); err == nil {
				t.Errorf("UnmarshalBinary accepted corrupted key (%s)", name)
			}
		})
	}

	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("short", func(b []byte) []byte { return b[:10] })
	corrupt("bad version", func(b []byte) []byte { b[0] = 99; return b })
	corrupt("bad party", func(b []byte) []byte { b[1] = 2; return b })
	corrupt("bad domain", func(b []byte) []byte { b[2] = 200; return b })
	corrupt("bad prg", func(b []byte) []byte { b[3] = 9; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("extended", func(b []byte) []byte { return append(b, 0) })
	corrupt("bad root bit", func(b []byte) []byte { b[24] = 7; return b })
	corrupt("bad cw bits", func(b []byte) []byte { b[keyHeaderSize+16] = 0xF; return b })
}

func TestPRGKindString(t *testing.T) {
	if PRGFixedKey.String() != "fixedkey" || PRGKeyed.String() != "keyed" {
		t.Error("unexpected PRGKind strings")
	}
	if PRGKind(9).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func BenchmarkGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Gen(Params{Domain: 30}, 12345, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalSingle(b *testing.B) {
	k0, _, err := Gen(Params{Domain: 30}, 12345, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := k0.Eval(uint64(i) & (1<<30 - 1)); err != nil {
			b.Fatal(err)
		}
	}
}
