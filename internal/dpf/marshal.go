package dpf

import (
	"encoding/binary"
	"fmt"

	"github.com/impir/impir/internal/aesprf"
)

// Wire format (all integers little-endian):
//
//	offset size  field
//	0      1     version (currently 1)
//	1      1     party
//	2      1     domain
//	3      1     PRG kind
//	4      4     betaLen (uint32)
//	8      16    root seed
//	24     1     root control bit
//	25     17·d  correction words: 16-byte seed + 1 packed-bit byte
//	...    β     output correction word
const (
	keyVersion    = 1
	keyHeaderSize = 25
	cwWireSize    = aesprf.BlockSize + 1
)

// MarshalBinary encodes the key. The encoding is deterministic and
// versioned; it is the format sent to PIR servers over the wire.
func (k *Key) MarshalBinary() ([]byte, error) {
	if len(k.CW) != int(k.Domain) {
		return nil, fmt.Errorf("dpf: marshal: %d correction words for domain %d", len(k.CW), k.Domain)
	}
	out := make([]byte, keyHeaderSize+cwWireSize*len(k.CW)+len(k.OutputCW))
	out[0] = keyVersion
	out[1] = k.Party
	out[2] = k.Domain
	out[3] = uint8(k.PRG)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(k.OutputCW)))
	copy(out[8:], k.RootSeed[:])
	if k.RootT {
		out[24] = 1
	}
	off := keyHeaderSize
	for _, cw := range k.CW {
		copy(out[off:], cw.Seed[:])
		var bits byte
		if cw.TLeft {
			bits |= 1
		}
		if cw.TRight {
			bits |= 2
		}
		out[off+aesprf.BlockSize] = bits
		off += cwWireSize
	}
	copy(out[off:], k.OutputCW)
	return out, nil
}

// UnmarshalBinary decodes a key produced by MarshalBinary, validating all
// structural invariants (lengths, version, party, PRG kind).
func (k *Key) UnmarshalBinary(data []byte) error {
	if len(data) < keyHeaderSize {
		return fmt.Errorf("dpf: unmarshal: short buffer (%d bytes)", len(data))
	}
	if data[0] != keyVersion {
		return fmt.Errorf("dpf: unmarshal: unsupported version %d", data[0])
	}
	party := data[1]
	if party > 1 {
		return fmt.Errorf("dpf: unmarshal: invalid party %d", party)
	}
	domain := int(data[2])
	if domain > MaxDomain {
		return fmt.Errorf("%w: %d", ErrDomainRange, domain)
	}
	prg := PRGKind(data[3])
	if _, err := prg.expander(); err != nil {
		return err
	}
	betaLen := int(binary.LittleEndian.Uint32(data[4:]))
	want := keyHeaderSize + cwWireSize*domain + betaLen
	if len(data) != want {
		return fmt.Errorf("dpf: unmarshal: have %d bytes, want %d (domain=%d betaLen=%d)",
			len(data), want, domain, betaLen)
	}
	if data[24] > 1 {
		return fmt.Errorf("dpf: unmarshal: invalid control bit %d", data[24])
	}

	k.Party = party
	k.Domain = uint8(domain)
	k.PRG = prg
	copy(k.RootSeed[:], data[8:24])
	k.RootT = data[24] == 1
	k.CW = make([]CorrectionWord, domain)
	off := keyHeaderSize
	for i := range k.CW {
		copy(k.CW[i].Seed[:], data[off:off+aesprf.BlockSize])
		bits := data[off+aesprf.BlockSize]
		if bits > 3 {
			return fmt.Errorf("dpf: unmarshal: invalid correction bits %#x at level %d", bits, i)
		}
		k.CW[i].TLeft = bits&1 == 1
		k.CW[i].TRight = bits&2 == 2
		off += cwWireSize
	}
	if betaLen > 0 {
		k.OutputCW = append([]byte(nil), data[off:off+betaLen]...)
	} else {
		k.OutputCW = nil
	}
	return nil
}

// WireSize returns the marshalled size of the key in bytes without
// allocating: O(λ·log N), the communication cost per server of one query.
func (k *Key) WireSize() int {
	return keyHeaderSize + cwWireSize*len(k.CW) + len(k.OutputCW)
}
