package dpf

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/impir/impir/internal/aesprf"
	"github.com/impir/impir/internal/bitvec"
)

// Strategy selects how the full-domain evaluation tree is traversed and
// parallelised. The trade-offs are discussed in §3.2 of the paper (and at
// length by Lam et al. for GPUs): branch-parallel recomputes shared path
// prefixes; level-by-level holds entire tree levels in memory; the
// memory-bounded and subtree approaches bound working-set size.
type Strategy int

const (
	// StrategySubtree is IM-PIR's host-side approach: a master pass
	// expands the tree breadth-first to level L = log₂(workers), then
	// each worker expands its perfect subtree independently. Default.
	StrategySubtree Strategy = iota + 1
	// StrategyBranchParallel assigns leaf ranges to workers which each
	// recompute the full root-to-leaf path per leaf — simple but
	// redundant (O(N·log N) PRG calls). Included for the ablation.
	StrategyBranchParallel
	// StrategyLevelByLevel expands entire tree levels breadth-first,
	// holding a full level of seeds in memory (O(N·λ) bytes).
	StrategyLevelByLevel
	// StrategyMemoryBounded is Lam et al.'s chunked traversal: depth-
	// first over fixed-size chunks, each expanded breadth-first, keeping
	// the working set at O(chunk) regardless of N.
	StrategyMemoryBounded
)

func (s Strategy) String() string {
	switch s {
	case StrategySubtree:
		return "subtree"
	case StrategyBranchParallel:
		return "branch-parallel"
	case StrategyLevelByLevel:
		return "level-by-level"
	case StrategyMemoryBounded:
		return "memory-bounded"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// FullEvalOptions configures EvalFull.
type FullEvalOptions struct {
	// Strategy selects the traversal; zero value means StrategySubtree.
	Strategy Strategy
	// Workers is the parallelism degree. Zero means GOMAXPROCS. The
	// effective worker count is rounded down to a power of two and
	// capped so every worker owns at least one chunk.
	Workers int
	// ChunkLeaves bounds the per-worker breadth-first working set for
	// the subtree and memory-bounded strategies (number of leaves per
	// chunk). Zero means 1<<14 for subtree, 1<<10 for memory-bounded.
	ChunkLeaves int
}

const (
	defaultSubtreeChunk = 1 << 14
	defaultBoundedChunk = 1 << 10
)

// EvalFull evaluates the key on every index of its domain, returning the
// packed N-bit share vector v with v[x] = Eval(k, x). This is the
// server-side "key evaluation" phase of Algorithm 1 (line 13–18).
func (k *Key) EvalFull(opts FullEvalOptions) (*bitvec.Vector, error) {
	if len(k.CW) != int(k.Domain) {
		return nil, fmt.Errorf("dpf: malformed key: %d correction words for domain %d", len(k.CW), k.Domain)
	}
	prg, err := k.PRG.expander()
	if err != nil {
		return nil, err
	}
	n := 1 << uint(k.Domain)
	out := bitvec.New(n)

	if k.Domain == 0 {
		out.SetTo(0, k.RootT)
		return out, nil
	}

	strategy := opts.Strategy
	if strategy == 0 {
		strategy = StrategySubtree
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	switch strategy {
	case StrategySubtree:
		chunk := opts.ChunkLeaves
		if chunk <= 0 {
			chunk = defaultSubtreeChunk
		}
		k.evalSubtreeParallel(prg, out, workers, chunk)
	case StrategyBranchParallel:
		k.evalBranchParallel(prg, out, workers)
	case StrategyLevelByLevel:
		k.evalLevelByLevel(prg, out)
	case StrategyMemoryBounded:
		chunk := opts.ChunkLeaves
		if chunk <= 0 {
			chunk = defaultBoundedChunk
		}
		k.evalSubtreeParallel(prg, out, workers, chunk)
	default:
		return nil, fmt.Errorf("dpf: unknown strategy %d", strategy)
	}
	out.TrailingWordMask()
	return out, nil
}

// node is a (seed, control-bit) pair at some tree depth.
type node struct {
	seed aesprf.Block
	t    bool
}

// descend computes the node at the given depth on the path to leaf base
// (interpreting only the top `depth` bits of base). Used to seed worker
// subtrees.
func (k *Key) descend(prg aesprf.Expander, depth int, leaf uint64) node {
	s, t := k.RootSeed, k.RootT
	for level := 0; level < depth; level++ {
		sL, tL, sR, tR := expandNode(prg, s)
		if t {
			cw := &k.CW[level]
			sL = xorBlocks(sL, cw.Seed)
			sR = xorBlocks(sR, cw.Seed)
			tL = tL != cw.TLeft
			tR = tR != cw.TRight
		}
		if leaf>>(uint(k.Domain)-1-uint(level))&1 == 1 {
			s, t = sR, tR
		} else {
			s, t = sL, tL
		}
	}
	return node{seed: s, t: t}
}

// evalSubtreeParallel implements both StrategySubtree and
// StrategyMemoryBounded: the only difference between them is chunk size.
// The master thread expands breadth-first down to the worker level; each
// worker then walks its perfect subtree depth-first over chunks, expanding
// each chunk breadth-first with the batched PRG.
func (k *Key) evalSubtreeParallel(prg aesprf.Expander, out *bitvec.Vector, workers, chunkLeaves int) {
	domain := int(k.Domain)
	n := 1 << uint(domain)

	// Round workers down to a power of two no larger than the domain
	// permits; every worker must own ≥ 64 leaves so its output range is
	// word-aligned in the bit vector.
	wBits := 0
	for (1<<(wBits+1)) <= workers && wBits+1 <= domain && n>>(wBits+1) >= 64 {
		wBits++
	}
	if n < 128 {
		wBits = 0
	}
	numWorkers := 1 << uint(wBits)

	if chunkLeaves > n/numWorkers {
		chunkLeaves = n / numWorkers
	}
	if chunkLeaves < 64 {
		chunkLeaves = min(64, n/numWorkers)
	}

	// Master pass: expand to the worker level.
	frontier := k.expandToLevel(prg, wBits)

	leavesPerWorker := uint64(n / numWorkers)
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * leavesPerWorker
			k.evalRange(prg, frontier[w], wBits, base, leavesPerWorker, chunkLeaves, out)
		}(w)
	}
	wg.Wait()
}

// expandToLevel runs breadth-first expansion from the root down to the
// given level, returning the 2^level frontier nodes in index order.
func (k *Key) expandToLevel(prg aesprf.Expander, level int) []node {
	cur := []node{{seed: k.RootSeed, t: k.RootT}}
	for d := 0; d < level; d++ {
		next := make([]node, 0, 2*len(cur))
		cw := &k.CW[d]
		for _, nd := range cur {
			sL, tL, sR, tR := expandNode(prg, nd.seed)
			if nd.t {
				sL = xorBlocks(sL, cw.Seed)
				sR = xorBlocks(sR, cw.Seed)
				tL = tL != cw.TLeft
				tR = tR != cw.TRight
			}
			next = append(next, node{sL, tL}, node{sR, tR})
		}
		cur = next
	}
	return cur
}

// evalRange evaluates the subtree rooted at root (which sits at the given
// depth and covers `count` leaves starting at leafBase), writing leaf
// control bits into out. Working-set memory is bounded by chunkLeaves.
func (k *Key) evalRange(prg aesprf.Expander, root node, depth int, leafBase, count uint64, chunkLeaves int, out *bitvec.Vector) {
	if count <= uint64(chunkLeaves) {
		k.evalChunkBFS(prg, root, depth, leafBase, count, out)
		return
	}
	// Depth-first split: recurse into the two half-subtrees. Recursion
	// depth is at most Domain ≤ 62.
	sL, tL, sR, tR := expandNode(prg, root.seed)
	if root.t {
		cw := &k.CW[depth]
		sL = xorBlocks(sL, cw.Seed)
		sR = xorBlocks(sR, cw.Seed)
		tL = tL != cw.TLeft
		tR = tR != cw.TRight
	}
	half := count / 2
	k.evalRange(prg, node{sL, tL}, depth+1, leafBase, half, chunkLeaves, out)
	k.evalRange(prg, node{sR, tR}, depth+1, leafBase+half, half, chunkLeaves, out)
}

// evalChunkBFS expands one chunk breadth-first from a single node down to
// the leaves, packing the leaf control bits into out. Uses the batched
// PRG API so AES blocks pipeline, and double-buffers seed storage so each
// level reuses the previous level's allocations.
func (k *Key) evalChunkBFS(prg aesprf.Expander, root node, depth int, leafBase, count uint64, out *bitvec.Vector) {
	domain := int(k.Domain)
	cnt := int(count)

	cur := make([]aesprf.Block, 1, cnt)
	next := make([]aesprf.Block, 0, cnt)
	tsCur := make([]bool, 1, cnt)
	tsNext := make([]bool, 0, cnt)
	left := make([]aesprf.Block, 0, (cnt+1)/2)
	right := make([]aesprf.Block, 0, (cnt+1)/2)
	cur[0], tsCur[0] = root.seed, root.t

	for d := depth; d < domain; d++ {
		width := len(cur)
		left = left[:width]
		right = right[:width]
		prg.ExpandBatch(cur, left, right)

		cw := &k.CW[d]
		next = next[:2*width]
		tsNext = tsNext[:2*width]
		for i := 0; i < width; i++ {
			sL, sR := left[i], right[i]
			tL := sL[0]&1 == 1
			tR := sR[0]&1 == 1
			sL[0] &^= 1
			sR[0] &^= 1
			if tsCur[i] {
				sL = xorBlocks(sL, cw.Seed)
				sR = xorBlocks(sR, cw.Seed)
				tL = tL != cw.TLeft
				tR = tR != cw.TRight
			}
			next[2*i], tsNext[2*i] = sL, tL
			next[2*i+1], tsNext[2*i+1] = sR, tR
		}
		cur, next = next, cur
		tsCur, tsNext = tsNext, tsCur
	}

	packLeafBits(tsCur, leafBase, out)
}

// packLeafBits writes consecutive leaf control bits starting at leafBase
// into the output vector. When the base is word-aligned and the count is a
// multiple of 64 the bits are packed a word at a time.
func packLeafBits(ts []bool, leafBase uint64, out *bitvec.Vector) {
	if leafBase%64 == 0 && len(ts)%64 == 0 {
		words := out.Words()
		wordBase := int(leafBase / 64)
		for w := 0; w < len(ts)/64; w++ {
			var word uint64
			for b := 0; b < 64; b++ {
				if ts[w*64+b] {
					word |= 1 << uint(b)
				}
			}
			words[wordBase+w] = word
		}
		return
	}
	for i, t := range ts {
		out.SetTo(int(leafBase)+i, t)
	}
}

// evalBranchParallel computes each leaf independently root-to-leaf.
func (k *Key) evalBranchParallel(prg aesprf.Expander, out *bitvec.Vector, workers int) {
	n := uint64(1) << uint(k.Domain)
	if workers < 1 {
		workers = 1
	}
	if uint64(workers) > n/64 {
		workers = int(max64(1, n/64))
	}
	per := (n + uint64(workers) - 1) / uint64(workers)
	per = (per + 63) / 64 * 64 // word-align worker ranges

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := uint64(w) * per
		if lo >= n {
			break
		}
		hi := min64(lo+per, n)
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			words := out.Words()
			for x := lo; x < hi; x++ {
				nd := k.descend(prg, int(k.Domain), x)
				if nd.t {
					words[x/64] |= 1 << uint(x%64)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// evalLevelByLevel holds each full tree level in memory.
func (k *Key) evalLevelByLevel(prg aesprf.Expander, out *bitvec.Vector) {
	root := node{seed: k.RootSeed, t: k.RootT}
	k.evalChunkBFS(prg, root, 0, 0, uint64(1)<<uint(k.Domain), out)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
