package dpf

import (
	"testing"
)

// FuzzUnmarshalKey hardens the wire decoder: arbitrary bytes must either
// be rejected or produce a key that round-trips and evaluates without
// panicking — servers feed attacker-controlled bytes into this path.
func FuzzUnmarshalKey(f *testing.F) {
	k0, _, err := Gen(Params{Domain: 6}, 13, nil)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := k0.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 6, 1})
	mutated := append([]byte(nil), seed...)
	mutated[2] = 60 // larger domain than the payload supports
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		var k Key
		if err := k.UnmarshalBinary(data); err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted keys must be internally consistent…
		if len(k.CW) != int(k.Domain) {
			t.Fatalf("accepted key with %d CWs for domain %d", len(k.CW), k.Domain)
		}
		// …evaluable…
		if _, _, err := k.Eval(0); err != nil {
			t.Fatalf("accepted key fails Eval: %v", err)
		}
		// …and re-encodable to the identical bytes.
		back, err := k.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted key fails re-marshal: %v", err)
		}
		if string(back) != string(data) {
			t.Fatal("accepted key is not a fixed point of the codec")
		}
	})
}
