package dpf

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/impir/impir/internal/aesprf"
)

// EvalFullValues evaluates a payload-carrying key on every index of its
// domain, returning the flat value-share array: bytes
// [x·BetaLen : (x+1)·BetaLen] are this party's share of P_{α,β}(x). The
// XOR of both parties' arrays is β at α and zero elsewhere.
//
// This is the workhorse of DPF applications beyond bit-selector PIR:
// PIR-with-payload (β = the record), distributed point updates
// (PIR-write), and keyword-PIR stacks all expand the value shares over
// the full domain. The traversal is the subtree partition of §3.2 with
// bounded per-worker memory.
func (k *Key) EvalFullValues(opts FullEvalOptions) ([]byte, error) {
	betaLen := len(k.OutputCW)
	if betaLen == 0 {
		return nil, errors.New("dpf: EvalFullValues requires a payload-carrying key (BetaLen > 0)")
	}
	if len(k.CW) != int(k.Domain) {
		return nil, fmt.Errorf("dpf: malformed key: %d correction words for domain %d", len(k.CW), k.Domain)
	}
	prg, err := k.PRG.expander()
	if err != nil {
		return nil, err
	}
	n := 1 << uint(k.Domain)
	out := make([]byte, n*betaLen)

	if k.Domain == 0 {
		k.emitValue(out, 0, node{seed: k.RootSeed, t: k.RootT})
		return out, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := opts.ChunkLeaves
	if chunk <= 0 {
		chunk = defaultSubtreeChunk
	}

	domain := int(k.Domain)
	wBits := 0
	for (1<<(wBits+1)) <= workers && wBits+1 <= domain {
		wBits++
	}
	numWorkers := 1 << uint(wBits)
	if chunk > n/numWorkers {
		chunk = n / numWorkers
	}
	if chunk < 1 {
		chunk = 1
	}

	frontier := k.expandToLevel(prg, wBits)
	leavesPerWorker := uint64(n / numWorkers)
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * leavesPerWorker
			k.evalValueRange(prg, frontier[w], wBits, base, leavesPerWorker, chunk, out)
		}(w)
	}
	wg.Wait()
	return out, nil
}

// evalValueRange mirrors evalRange but emits payload shares per leaf.
func (k *Key) evalValueRange(prg aesprf.Expander, root node, depth int, leafBase, count uint64, chunkLeaves int, out []byte) {
	if count <= uint64(chunkLeaves) {
		k.evalValueChunkBFS(prg, root, depth, leafBase, count, out)
		return
	}
	sL, tL, sR, tR := expandNode(prg, root.seed)
	if root.t {
		cw := &k.CW[depth]
		sL = xorBlocks(sL, cw.Seed)
		sR = xorBlocks(sR, cw.Seed)
		tL = tL != cw.TLeft
		tR = tR != cw.TRight
	}
	half := count / 2
	k.evalValueRange(prg, node{sL, tL}, depth+1, leafBase, half, chunkLeaves, out)
	k.evalValueRange(prg, node{sR, tR}, depth+1, leafBase+half, half, chunkLeaves, out)
}

// evalValueChunkBFS expands one chunk breadth-first, converting each leaf
// seed into payload bytes.
func (k *Key) evalValueChunkBFS(prg aesprf.Expander, root node, depth int, leafBase, count uint64, out []byte) {
	domain := int(k.Domain)
	cnt := int(count)

	cur := make([]aesprf.Block, 1, cnt)
	next := make([]aesprf.Block, 0, cnt)
	tsCur := make([]bool, 1, cnt)
	tsNext := make([]bool, 0, cnt)
	left := make([]aesprf.Block, 0, (cnt+1)/2)
	right := make([]aesprf.Block, 0, (cnt+1)/2)
	cur[0], tsCur[0] = root.seed, root.t

	for d := depth; d < domain; d++ {
		width := len(cur)
		left = left[:width]
		right = right[:width]
		prg.ExpandBatch(cur, left, right)

		cw := &k.CW[d]
		next = next[:2*width]
		tsNext = tsNext[:2*width]
		for i := 0; i < width; i++ {
			sL, sR := left[i], right[i]
			tL := sL[0]&1 == 1
			tR := sR[0]&1 == 1
			sL[0] &^= 1
			sR[0] &^= 1
			if tsCur[i] {
				sL = xorBlocks(sL, cw.Seed)
				sR = xorBlocks(sR, cw.Seed)
				tL = tL != cw.TLeft
				tR = tR != cw.TRight
			}
			next[2*i], tsNext[2*i] = sL, tL
			next[2*i+1], tsNext[2*i+1] = sR, tR
		}
		cur, next = next, cur
		tsCur, tsNext = tsNext, tsCur
	}

	for i := 0; i < cnt; i++ {
		k.emitValue(out, int(leafBase)+i, node{seed: cur[i], t: tsCur[i]})
	}
}

func (k *Key) emitValue(out []byte, leaf int, nd node) {
	betaLen := len(k.OutputCW)
	v := convertSeed(nd.seed, betaLen)
	if nd.t {
		for j := range v {
			v[j] ^= k.OutputCW[j]
		}
	}
	copy(out[leaf*betaLen:], v)
}
