// Package dpf implements distributed point functions (DPFs) for two-party
// multi-server PIR, following the tree-based construction of Gilboa–Ishai
// (EUROCRYPT'14) with the correction-word optimisation of Boyle–Gilboa–Ishai
// as used by IM-PIR (§3.1–3.2 of the paper).
//
// A DPF secret-shares a point function P_{α,β} — the function that is β at
// index α and zero elsewhere — into two keys k₀ and k₁ such that neither
// key alone reveals α or β, yet for every x:
//
//	Eval(k₀, x) ⊕ Eval(k₁, x) = P_{α,β}(x)
//
// For PIR the client generates keys for P_{α,1}, sends one to each server,
// and each server's full-domain evaluation yields an N-bit share vector
// whose XOR is the one-hot query vector. Each key consists of a root seed
// plus log₂(N)+1 correction words — the "two 2-dimensional codewords" of
// the paper's §3.1 — so keys are O(λ·log N) bits rather than O(N).
//
// Evaluation expands a GGM tree: every node holds a 128-bit seed and a
// control bit, and children are derived with an AES-based length-doubling
// PRG (see package aesprf). The control bits of the two parties differ
// exactly on the root-to-α path, so the leaf control bit is the share of
// P_{α,1}(x). An output correction word extends this to multi-byte β.
package dpf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/impir/impir/internal/aesprf"
)

// MaxDomain is the largest supported tree depth (log₂ of the index space).
const MaxDomain = 62

// PRGKind selects the length-doubling PRG construction used by a key pair.
type PRGKind uint8

const (
	// PRGFixedKey is the fixed-key Matyas–Meyer–Oseas construction
	// (fast; no per-node AES key schedule). The default.
	PRGFixedKey PRGKind = iota + 1
	// PRGKeyed re-keys AES with each node seed, matching the paper's
	// PRF_s(x) notation literally.
	PRGKeyed
)

func (k PRGKind) String() string {
	switch k {
	case PRGFixedKey:
		return "fixedkey"
	case PRGKeyed:
		return "keyed"
	default:
		return fmt.Sprintf("PRGKind(%d)", uint8(k))
	}
}

func (k PRGKind) expander() (aesprf.Expander, error) {
	switch k {
	case PRGFixedKey:
		return aesprf.NewFixedKey(), nil
	case PRGKeyed:
		return aesprf.NewKeyed(), nil
	default:
		return nil, fmt.Errorf("dpf: unknown PRG kind %d", uint8(k))
	}
}

// Params configures key generation.
type Params struct {
	// Domain is log₂ of the index space: keys address indices in
	// [0, 1<<Domain). Must be in [0, MaxDomain].
	Domain int
	// BetaLen is the payload length in bytes. Zero means a pure
	// single-bit DPF (the PIR case: β = 1).
	BetaLen int
	// PRG selects the node-expansion construction. Zero value means
	// PRGFixedKey.
	PRG PRGKind
	// Rand is the randomness source for seeds. Nil means crypto/rand.
	Rand io.Reader
}

// CorrectionWord is the per-level public correction applied by the party
// whose control bit is set.
type CorrectionWord struct {
	Seed   aesprf.Block
	TLeft  bool
	TRight bool
}

// Key is one party's DPF key. Keys are secret: revealing both keys of a
// pair reveals α. A key is evaluated with the PRG construction recorded in
// PRG; evaluating with a different construction yields garbage.
type Key struct {
	Party    uint8 // 0 or 1
	Domain   uint8 // log₂ of the index space
	PRG      PRGKind
	RootSeed aesprf.Block
	RootT    bool
	CW       []CorrectionWord // one per tree level
	OutputCW []byte           // length BetaLen; nil for single-bit DPFs
}

// BetaLen returns the payload length in bytes (0 for single-bit keys).
func (k *Key) BetaLen() int { return len(k.OutputCW) }

// NumIndices returns the size of the key's index space, 1<<Domain.
func (k *Key) NumIndices() uint64 { return 1 << k.Domain }

var (
	// ErrDomainRange indicates a Domain outside [0, MaxDomain].
	ErrDomainRange = errors.New("dpf: domain out of range")
	// ErrAlphaRange indicates α ≥ 2^Domain.
	ErrAlphaRange = errors.New("dpf: alpha outside index space")
	// ErrBetaLen indicates β does not match Params.BetaLen.
	ErrBetaLen = errors.New("dpf: beta length mismatch")
)

// Gen produces a key pair for the point function P_{α,β}.
//
// With BetaLen == 0, beta must be nil and the generated keys share the
// single-bit indicator function: the XOR of the two parties' evaluation
// bits is 1 exactly at α.
func Gen(p Params, alpha uint64, beta []byte) (k0, k1 *Key, err error) {
	if p.Domain < 0 || p.Domain > MaxDomain {
		return nil, nil, fmt.Errorf("%w: %d", ErrDomainRange, p.Domain)
	}
	if p.Domain < 64 && alpha >= 1<<uint(p.Domain) {
		return nil, nil, fmt.Errorf("%w: alpha=%d domain=%d", ErrAlphaRange, alpha, p.Domain)
	}
	if len(beta) != p.BetaLen {
		return nil, nil, fmt.Errorf("%w: have %d, want %d", ErrBetaLen, len(beta), p.BetaLen)
	}
	prgKind := p.PRG
	if prgKind == 0 {
		prgKind = PRGFixedKey
	}
	prg, err := prgKind.expander()
	if err != nil {
		return nil, nil, err
	}
	rng := p.Rand
	if rng == nil {
		rng = rand.Reader
	}

	var s0, s1 aesprf.Block
	if _, err := io.ReadFull(rng, s0[:]); err != nil {
		return nil, nil, fmt.Errorf("dpf: read root seed: %w", err)
	}
	if _, err := io.ReadFull(rng, s1[:]); err != nil {
		return nil, nil, fmt.Errorf("dpf: read root seed: %w", err)
	}

	k0 = &Key{Party: 0, Domain: uint8(p.Domain), PRG: prgKind, RootSeed: s0, RootT: false}
	k1 = &Key{Party: 1, Domain: uint8(p.Domain), PRG: prgKind, RootSeed: s1, RootT: true}
	k0.CW = make([]CorrectionWord, p.Domain)
	k1.CW = make([]CorrectionWord, p.Domain)

	t0, t1 := false, true
	for level := 0; level < p.Domain; level++ {
		s0L, t0L, s0R, t0R := expandNode(prg, s0)
		s1L, t1L, s1R, t1R := expandNode(prg, s1)

		// α's bit at this level, MSB first.
		aBit := alpha>>(uint(p.Domain)-1-uint(level))&1 == 1

		var sKeep0, sKeep1, sLose0, sLose1 aesprf.Block
		var tKeep0, tKeep1 bool
		if aBit {
			sKeep0, tKeep0, sLose0 = s0R, t0R, s0L
			sKeep1, tKeep1, sLose1 = s1R, t1R, s1L
		} else {
			sKeep0, tKeep0, sLose0 = s0L, t0L, s0R
			sKeep1, tKeep1, sLose1 = s1L, t1L, s1R
		}

		cw := CorrectionWord{
			Seed:   xorBlocks(sLose0, sLose1),
			TLeft:  t0L != t1L != !aBit, // t0L ⊕ t1L ⊕ ¬aBit … see note below
			TRight: t0R != t1R != aBit,
		}
		// Note: x != y on bools is XOR; the chained form above associates
		// left-to-right, computing (t0L ⊕ t1L) ⊕ (aBit ⊕ 1) for TLeft and
		// (t0R ⊕ t1R) ⊕ aBit for TRight, per the BGI correction rule.
		k0.CW[level] = cw
		k1.CW[level] = cw

		tKeepCW := cw.TRight
		if !aBit {
			tKeepCW = cw.TLeft
		}

		s0, t0 = applyCorrection(sKeep0, tKeep0, t0, cw.Seed, tKeepCW)
		s1, t1 = applyCorrection(sKeep1, tKeep1, t1, cw.Seed, tKeepCW)
	}

	if p.BetaLen > 0 {
		ocw := make([]byte, p.BetaLen)
		c0 := convertSeed(s0, p.BetaLen)
		c1 := convertSeed(s1, p.BetaLen)
		for i := range ocw {
			ocw[i] = beta[i] ^ c0[i] ^ c1[i]
		}
		k0.OutputCW = ocw
		k1.OutputCW = append([]byte(nil), ocw...)
	}
	return k0, k1, nil
}

// Eval returns this party's bit share of P_{α,1}(x) and, for keys carrying
// a payload, the byte share of β. The XOR of the two parties' bit shares
// is 1 exactly at x == α; the XOR of the byte shares is β at α and zero
// elsewhere.
func (k *Key) Eval(x uint64) (bit bool, value []byte, err error) {
	if k.Domain < 64 && x >= 1<<uint(k.Domain) {
		return false, nil, fmt.Errorf("%w: x=%d domain=%d", ErrAlphaRange, x, k.Domain)
	}
	if len(k.CW) != int(k.Domain) {
		return false, nil, fmt.Errorf("dpf: malformed key: %d correction words for domain %d", len(k.CW), k.Domain)
	}
	prg, err := k.PRG.expander()
	if err != nil {
		return false, nil, err
	}
	s, t := k.RootSeed, k.RootT
	for level := 0; level < int(k.Domain); level++ {
		sL, tL, sR, tR := expandNode(prg, s)
		if t {
			cw := &k.CW[level]
			sL = xorBlocks(sL, cw.Seed)
			sR = xorBlocks(sR, cw.Seed)
			tL = tL != cw.TLeft
			tR = tR != cw.TRight
		}
		if x>>(uint(k.Domain)-1-uint(level))&1 == 1 {
			s, t = sR, tR
		} else {
			s, t = sL, tL
		}
	}
	if len(k.OutputCW) == 0 {
		return t, nil, nil
	}
	value = convertSeed(s, len(k.OutputCW))
	if t {
		for i := range value {
			value[i] ^= k.OutputCW[i]
		}
	}
	return t, value, nil
}

// expandNode derives the two children of a node, extracting and clearing
// the control bit from the low bit of each child seed.
func expandNode(prg aesprf.Expander, s aesprf.Block) (sL aesprf.Block, tL bool, sR aesprf.Block, tR bool) {
	sL, sR = prg.Expand(s)
	tL = sL[0]&1 == 1
	tR = sR[0]&1 == 1
	sL[0] &^= 1
	sR[0] &^= 1
	return sL, tL, sR, tR
}

func applyCorrection(sKeep aesprf.Block, tKeep, tPrev bool, cwSeed aesprf.Block, cwT bool) (aesprf.Block, bool) {
	if tPrev {
		return xorBlocks(sKeep, cwSeed), tKeep != cwT
	}
	return sKeep, tKeep
}

func xorBlocks(a, b aesprf.Block) aesprf.Block {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}

// convertCipher is a third fixed-key AES permutation used to map leaf
// seeds to payload bytes, so payload bytes never expose raw tree seeds.
var convertCipher = newConvertCipher()

func newConvertCipher() cipher.Block {
	key := [16]byte{
		0x16, 0x18, 0x03, 0x39, 0x88, 0x74, 0x98, 0x94,
		0x84, 0x82, 0x04, 0x58, 0x68, 0x34, 0x36, 0x56,
	}
	c, err := aes.NewCipher(key[:])
	if err != nil {
		// Unreachable: a 16-byte key is always valid.
		panic(fmt.Sprintf("dpf: convert cipher: %v", err))
	}
	return c
}

// convertSeed maps a leaf seed to n pseudorandom payload bytes using the
// convert cipher in a counter-like mode.
func convertSeed(s aesprf.Block, n int) []byte {
	out := make([]byte, 0, (n+15)/16*16)
	var block [16]byte
	for ctr := uint64(0); len(out) < n; ctr++ {
		in := s
		// Fold the counter into the high bytes so consecutive blocks of a
		// long payload decorrelate.
		binary.LittleEndian.PutUint64(in[8:], binary.LittleEndian.Uint64(in[8:])^ctr)
		convertCipher.Encrypt(block[:], in[:])
		for i := range block {
			block[i] ^= in[i]
		}
		out = append(out, block[:]...)
	}
	return out[:n]
}
