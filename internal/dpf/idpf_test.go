package dpf

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func mustGenIncremental(t *testing.T, alpha uint64, betas [][]byte) (*IncrementalKey, *IncrementalKey) {
	t.Helper()
	k0, k1, err := GenIncremental(Params{}, alpha, betas)
	if err != nil {
		t.Fatalf("GenIncremental: %v", err)
	}
	return k0, k1
}

func levelBetas(t *testing.T, domain int, size int) [][]byte {
	t.Helper()
	betas := make([][]byte, domain)
	for i := range betas {
		betas[i] = make([]byte, size)
		if _, err := rand.Read(betas[i]); err != nil {
			t.Fatal(err)
		}
	}
	return betas
}

// combine XORs the two parties' prefix shares.
func combine(t *testing.T, k0, k1 *IncrementalKey, prefix uint64, level int) []byte {
	t.Helper()
	v0, err := k0.EvalPrefix(prefix, level)
	if err != nil {
		t.Fatalf("EvalPrefix(party 0, %d, %d): %v", prefix, level, err)
	}
	v1, err := k1.EvalPrefix(prefix, level)
	if err != nil {
		t.Fatalf("EvalPrefix(party 1, %d, %d): %v", prefix, level, err)
	}
	out := make([]byte, len(v0))
	for i := range out {
		out[i] = v0[i] ^ v1[i]
	}
	return out
}

// TestIncrementalExhaustive checks the defining IDPF property on every
// prefix of every level for small domains: the combined share is β_ℓ on
// the path to α and zero off it.
func TestIncrementalExhaustive(t *testing.T) {
	for domain := 1; domain <= 6; domain++ {
		betas := levelBetas(t, domain, 8)
		for alpha := uint64(0); alpha < 1<<uint(domain); alpha++ {
			k0, k1 := mustGenIncremental(t, alpha, betas)
			for level := 1; level <= domain; level++ {
				alphaPrefix := alpha >> uint(domain-level)
				for prefix := uint64(0); prefix < 1<<uint(level); prefix++ {
					got := combine(t, k0, k1, prefix, level)
					if prefix == alphaPrefix {
						if !bytes.Equal(got, betas[level-1]) {
							t.Fatalf("domain=%d alpha=%d level=%d prefix=%d: on-path value wrong",
								domain, alpha, level, prefix)
						}
					} else if !bytes.Equal(got, make([]byte, 8)) {
						t.Fatalf("domain=%d alpha=%d level=%d prefix=%d: off-path value nonzero",
							domain, alpha, level, prefix)
					}
				}
			}
		}
	}
}

func TestIncrementalMixedValueSizes(t *testing.T) {
	// Per-level value sizes may differ (Google's IDPF allows per-level
	// value types).
	betas := [][]byte{
		{0xAA},
		bytes.Repeat([]byte{0xBB}, 16),
		bytes.Repeat([]byte{0xCC}, 3),
	}
	const alpha = 0b101
	k0, k1 := mustGenIncremental(t, alpha, betas)
	for level := 1; level <= 3; level++ {
		got := combine(t, k0, k1, alpha>>uint(3-level), level)
		if !bytes.Equal(got, betas[level-1]) {
			t.Fatalf("level %d: got %x, want %x", level, got, betas[level-1])
		}
		if len(got) != len(betas[level-1]) {
			t.Fatalf("level %d: value size %d, want %d", level, len(got), len(betas[level-1]))
		}
	}
}

func TestIncrementalLargeDomainSpotChecks(t *testing.T) {
	const domain = 32
	betas := levelBetas(t, domain, 4)
	alpha := randomIndex(t, domain)
	k0, k1 := mustGenIncremental(t, alpha, betas)
	for _, level := range []int{1, 7, 16, 32} {
		alphaPrefix := alpha >> uint(domain-level)
		if got := combine(t, k0, k1, alphaPrefix, level); !bytes.Equal(got, betas[level-1]) {
			t.Fatalf("level %d on-path wrong", level)
		}
		off := alphaPrefix ^ 1
		if got := combine(t, k0, k1, off, level); !bytes.Equal(got, make([]byte, 4)) {
			t.Fatalf("level %d off-path nonzero", level)
		}
	}
}

// TestIncrementalConsistentWithPlainDPF: at the leaf level with a
// constant value size, the IDPF behaves like a plain payload DPF.
func TestIncrementalConsistentWithPlainDPF(t *testing.T) {
	const domain = 8
	beta := []byte{1, 2, 3, 4}
	betas := make([][]byte, domain)
	for i := range betas {
		betas[i] = beta
	}
	const alpha = 99
	ik0, ik1 := mustGenIncremental(t, alpha, betas)
	pk0, pk1, err := Gen(Params{Domain: domain, BetaLen: 4}, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 1<<domain; x += 17 {
		iGot := combine(t, ik0, ik1, x, domain)
		_, v0, err := pk0.Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		_, v1, err := pk1.Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		pGot := make([]byte, 4)
		for i := range pGot {
			pGot[i] = v0[i] ^ v1[i]
		}
		if !bytes.Equal(iGot, pGot) {
			t.Fatalf("x=%d: incremental %x != plain %x", x, iGot, pGot)
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, _, err := GenIncremental(Params{}, 0, nil); err == nil {
		t.Error("empty level list accepted")
	}
	if _, _, err := GenIncremental(Params{}, 4, [][]byte{{1}, {2}}); err == nil {
		t.Error("alpha beyond domain accepted")
	}
	if _, _, err := GenIncremental(Params{}, 0, [][]byte{{1}, nil}); err == nil {
		t.Error("empty level value accepted")
	}
	if _, _, err := GenIncremental(Params{Domain: 5}, 0, [][]byte{{1}}); err == nil {
		t.Error("conflicting Params.Domain accepted")
	}

	k0, _ := mustGenIncremental(t, 2, [][]byte{{1}, {2}})
	if _, err := k0.EvalPrefix(0, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := k0.EvalPrefix(0, 3); err == nil {
		t.Error("level beyond domain accepted")
	}
	if _, err := k0.EvalPrefix(4, 2); err == nil {
		t.Error("prefix beyond level accepted")
	}
	if k0.NumLevels() != 2 {
		t.Errorf("NumLevels = %d", k0.NumLevels())
	}
}

func TestIncrementalMarshalRoundTrip(t *testing.T) {
	betas := [][]byte{{9}, bytes.Repeat([]byte{7}, 12), {1, 2}}
	k0, _ := mustGenIncremental(t, 5, betas)
	data, err := k0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back IncrementalKey
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for level := 1; level <= 3; level++ {
		for prefix := uint64(0); prefix < 1<<uint(level); prefix++ {
			want, err := k0.EvalPrefix(prefix, level)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.EvalPrefix(prefix, level)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round-tripped key differs at level %d prefix %d", level, prefix)
			}
		}
	}
}

func TestIncrementalUnmarshalRejectsCorruption(t *testing.T) {
	k0, _ := mustGenIncremental(t, 3, [][]byte{{1}, {2}, {3}})
	good, err := k0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":         func(b []byte) []byte { return nil },
		"plain version": func(b []byte) []byte { b[0] = keyVersion; return b },
		"bad party":     func(b []byte) []byte { b[1] = 7; return b },
		"zero domain":   func(b []byte) []byte { b[2] = 0; return b },
		"truncated cw":  func(b []byte) []byte { return b[:keyHeaderSize+5] },
		"truncated ocw": func(b []byte) []byte { return b[:len(b)-1] },
		"trailing":      func(b []byte) []byte { return append(b, 0) },
	}
	for name, mutate := range cases {
		data := mutate(append([]byte(nil), good...))
		var k IncrementalKey
		if err := k.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

// Property: random (domain, alpha, level, prefix) satisfies the IDPF
// prefix property.
func TestQuickIncremental(t *testing.T) {
	f := func(domainRaw, levelRaw uint8, alphaRaw, prefixRaw uint64) bool {
		domain := int(domainRaw)%10 + 1
		level := int(levelRaw)%domain + 1
		alpha := alphaRaw % (1 << uint(domain))
		prefix := prefixRaw % (1 << uint(level))
		betas := make([][]byte, domain)
		for i := range betas {
			betas[i] = []byte{byte(i + 1), byte(i * 3)}
		}
		k0, k1, err := GenIncremental(Params{}, alpha, betas)
		if err != nil {
			return false
		}
		v0, err := k0.EvalPrefix(prefix, level)
		if err != nil {
			return false
		}
		v1, err := k1.EvalPrefix(prefix, level)
		if err != nil {
			return false
		}
		onPath := prefix == alpha>>uint(domain-level)
		for i := range v0 {
			want := byte(0)
			if onPath {
				want = betas[level-1][i]
			}
			if v0[i]^v1[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenIncremental(b *testing.B) {
	betas := make([][]byte, 30)
	for i := range betas {
		betas[i] = make([]byte, 8)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := GenIncremental(Params{}, 12345, betas); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalPrefix(b *testing.B) {
	betas := make([][]byte, 30)
	for i := range betas {
		betas[i] = make([]byte, 8)
	}
	k0, _, err := GenIncremental(Params{}, 12345, betas)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k0.EvalPrefix(uint64(i)&(1<<20-1), 20); err != nil {
			b.Fatal(err)
		}
	}
}
