package dpf

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestEvalFullValuesMatchesPointEval(t *testing.T) {
	for _, domain := range []int{0, 1, 3, 6, 10} {
		for _, betaLen := range []int{1, 8, 32} {
			beta := make([]byte, betaLen)
			if _, err := rand.Read(beta); err != nil {
				t.Fatal(err)
			}
			alpha := randomIndex(t, domain)
			k0, _ := mustGen(t, Params{Domain: domain, BetaLen: betaLen}, alpha, beta)

			full, err := k0.EvalFullValues(FullEvalOptions{Workers: 3})
			if err != nil {
				t.Fatalf("EvalFullValues(domain=%d, betaLen=%d): %v", domain, betaLen, err)
			}
			n := 1 << uint(domain)
			if len(full) != n*betaLen {
				t.Fatalf("output length %d, want %d", len(full), n*betaLen)
			}
			for x := 0; x < n; x++ {
				_, want, err := k0.Eval(uint64(x))
				if err != nil {
					t.Fatal(err)
				}
				got := full[x*betaLen : (x+1)*betaLen]
				if !bytes.Equal(got, want) {
					t.Fatalf("domain=%d betaLen=%d x=%d: full-domain value differs from point eval",
						domain, betaLen, x)
				}
			}
		}
	}
}

func TestEvalFullValuesReconstruction(t *testing.T) {
	const domain, betaLen = 9, 16
	beta := bytes.Repeat([]byte{0xAB}, betaLen)
	alpha := randomIndex(t, domain)
	k0, k1 := mustGen(t, Params{Domain: domain, BetaLen: betaLen}, alpha, beta)

	v0, err := k0.EvalFullValues(FullEvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := k1.EvalFullValues(FullEvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << domain
	zero := make([]byte, betaLen)
	for x := 0; x < n; x++ {
		combined := make([]byte, betaLen)
		for j := range combined {
			combined[j] = v0[x*betaLen+j] ^ v1[x*betaLen+j]
		}
		if uint64(x) == alpha {
			if !bytes.Equal(combined, beta) {
				t.Fatalf("value at alpha = %x, want %x", combined, beta)
			}
		} else if !bytes.Equal(combined, zero) {
			t.Fatalf("nonzero value share at x=%d", x)
		}
	}
}

func TestEvalFullValuesRequiresPayload(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 4}, 0, nil)
	if _, err := k0.EvalFullValues(FullEvalOptions{}); err == nil {
		t.Fatal("EvalFullValues accepted a bit-only key")
	}
}

func TestEvalFullValuesMalformedKey(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 5, BetaLen: 4}, 0, []byte{1, 2, 3, 4})
	bad := *k0
	bad.CW = bad.CW[:2]
	if _, err := bad.EvalFullValues(FullEvalOptions{}); err == nil {
		t.Fatal("EvalFullValues accepted malformed key")
	}
}

// Property: chunk size and worker count never change the output.
func TestQuickEvalFullValuesInvariance(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 8, BetaLen: 8}, 77, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	want, err := k0.EvalFullValues(FullEvalOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(workersRaw, chunkRaw uint8) bool {
		got, err := k0.EvalFullValues(FullEvalOptions{
			Workers:     int(workersRaw)%8 + 1,
			ChunkLeaves: int(chunkRaw)%300 + 1,
		})
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalFullValues(b *testing.B) {
	k0, _, err := Gen(Params{Domain: 14, BetaLen: 32}, 999, make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(32 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k0.EvalFullValues(FullEvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
