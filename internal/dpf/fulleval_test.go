package dpf

import (
	"testing"
	"testing/quick"

	"github.com/impir/impir/internal/bitvec"
)

func allStrategies() []Strategy {
	return []Strategy{
		StrategySubtree,
		StrategyBranchParallel,
		StrategyLevelByLevel,
		StrategyMemoryBounded,
	}
}

// referenceFull computes the full-domain evaluation one index at a time
// through the single-point Eval path.
func referenceFull(t *testing.T, k *Key) *bitvec.Vector {
	t.Helper()
	n := int(k.NumIndices())
	out := bitvec.New(n)
	for x := 0; x < n; x++ {
		bit, _, err := k.Eval(uint64(x))
		if err != nil {
			t.Fatalf("Eval(%d): %v", x, err)
		}
		out.SetTo(x, bit)
	}
	return out
}

// TestEvalFullMatchesPointEval cross-checks every strategy against the
// single-point evaluator on a spread of domains, including domains smaller
// than a machine word and non-trivial worker counts.
func TestEvalFullMatchesPointEval(t *testing.T) {
	domains := []int{0, 1, 2, 5, 6, 7, 10, 13}
	for _, domain := range domains {
		alpha := randomIndex(t, domain)
		k0, k1 := mustGen(t, Params{Domain: domain}, alpha, nil)
		want0 := referenceFull(t, k0)
		want1 := referenceFull(t, k1)
		for _, s := range allStrategies() {
			for _, workers := range []int{1, 2, 4, 7} {
				opts := FullEvalOptions{Strategy: s, Workers: workers}
				got0, err := k0.EvalFull(opts)
				if err != nil {
					t.Fatalf("EvalFull(%v, w=%d): %v", s, workers, err)
				}
				if !got0.Equal(want0) {
					t.Fatalf("domain=%d strategy=%v workers=%d: party-0 share mismatch", domain, s, workers)
				}
				got1, err := k1.EvalFull(opts)
				if err != nil {
					t.Fatalf("EvalFull(%v, w=%d): %v", s, workers, err)
				}
				if !got1.Equal(want1) {
					t.Fatalf("domain=%d strategy=%v workers=%d: party-1 share mismatch", domain, s, workers)
				}
			}
		}
	}
}

// TestEvalFullSharesXorToOneHot checks the end-to-end PIR property on the
// full domain: the XOR of both parties' share vectors is the indicator of α.
func TestEvalFullSharesXorToOneHot(t *testing.T) {
	for _, domain := range []int{4, 9, 12, 15} {
		alpha := randomIndex(t, domain)
		k0, k1 := mustGen(t, Params{Domain: domain}, alpha, nil)
		v0, err := k0.EvalFull(FullEvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := k1.EvalFull(FullEvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v0.Xor(v1)
		if v0.OnesCount() != 1 {
			t.Fatalf("domain=%d: combined vector weight = %d, want 1", domain, v0.OnesCount())
		}
		if !v0.Bit(int(alpha)) {
			t.Fatalf("domain=%d: combined vector not set at alpha=%d", domain, alpha)
		}
	}
}

// TestEvalFullChunkSizes exercises chunking edge cases: chunk larger than
// the domain, tiny chunks, non-power-of-two chunks.
func TestEvalFullChunkSizes(t *testing.T) {
	const domain = 12
	alpha := randomIndex(t, domain)
	k0, _ := mustGen(t, Params{Domain: domain}, alpha, nil)
	want := referenceFull(t, k0)
	for _, chunk := range []int{1, 63, 64, 100, 1 << 10, 1 << 20} {
		for _, s := range []Strategy{StrategySubtree, StrategyMemoryBounded} {
			got, err := k0.EvalFull(FullEvalOptions{Strategy: s, Workers: 4, ChunkLeaves: chunk})
			if err != nil {
				t.Fatalf("EvalFull(chunk=%d): %v", chunk, err)
			}
			if !got.Equal(want) {
				t.Fatalf("strategy=%v chunk=%d: share mismatch", s, chunk)
			}
		}
	}
}

func TestEvalFullWorkerExcess(t *testing.T) {
	// More workers than leaves must still work.
	k0, _ := mustGen(t, Params{Domain: 3}, 5, nil)
	want := referenceFull(t, k0)
	got, err := k0.EvalFull(FullEvalOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("share mismatch with excess workers")
	}
}

func TestEvalFullUnknownStrategy(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 3}, 0, nil)
	if _, err := k0.EvalFull(FullEvalOptions{Strategy: Strategy(42)}); err == nil {
		t.Fatal("EvalFull accepted unknown strategy")
	}
}

func TestEvalFullMalformedKey(t *testing.T) {
	k0, _ := mustGen(t, Params{Domain: 5}, 0, nil)
	bad := *k0
	bad.CW = bad.CW[:1]
	if _, err := bad.EvalFull(FullEvalOptions{}); err == nil {
		t.Fatal("EvalFull accepted malformed key")
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range allStrategies() {
		if s.String() == "" {
			t.Errorf("Strategy(%d) has empty String()", s)
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy produced empty string")
	}
}

// TestEvalFullKeyedPRG: full-domain evaluation must honour the key's PRG
// construction — keys built with the re-keying PRG evaluate consistently
// across strategies and XOR to the one-hot vector.
func TestEvalFullKeyedPRG(t *testing.T) {
	const domain = 9
	alpha := randomIndex(t, domain)
	k0, k1 := mustGen(t, Params{Domain: domain, PRG: PRGKeyed}, alpha, nil)

	want0 := referenceFull(t, k0)
	for _, s := range allStrategies() {
		got, err := k0.EvalFull(FullEvalOptions{Strategy: s, Workers: 2})
		if err != nil {
			t.Fatalf("EvalFull(%v): %v", s, err)
		}
		if !got.Equal(want0) {
			t.Fatalf("keyed PRG: strategy %v mismatch", s)
		}
	}
	v0, err := k0.EvalFull(FullEvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := k1.EvalFull(FullEvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v0.Xor(v1)
	if v0.OnesCount() != 1 || !v0.Bit(int(alpha)) {
		t.Fatal("keyed PRG keys do not share the one-hot vector")
	}
}

// Property: for random domains/alphas, subtree and level-by-level agree.
func TestQuickStrategiesAgree(t *testing.T) {
	f := func(domainRaw uint8, alphaRaw uint64, workersRaw uint8) bool {
		domain := int(domainRaw)%12 + 1
		alpha := alphaRaw % (1 << uint(domain))
		workers := int(workersRaw)%8 + 1
		k0, _, err := Gen(Params{Domain: domain}, alpha, nil)
		if err != nil {
			return false
		}
		a, err := k0.EvalFull(FullEvalOptions{Strategy: StrategySubtree, Workers: workers})
		if err != nil {
			return false
		}
		b, err := k0.EvalFull(FullEvalOptions{Strategy: StrategyLevelByLevel})
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func benchmarkEvalFull(b *testing.B, s Strategy, domain, workers int) {
	k0, _, err := Gen(Params{Domain: domain}, 12345%(1<<uint(domain)), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(1) << uint(domain-3)) // output bits → bytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k0.EvalFull(FullEvalOptions{Strategy: s, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalFullSubtree(b *testing.B)       { benchmarkEvalFull(b, StrategySubtree, 18, 4) }
func BenchmarkEvalFullLevelByLevel(b *testing.B)  { benchmarkEvalFull(b, StrategyLevelByLevel, 18, 1) }
func BenchmarkEvalFullMemoryBounded(b *testing.B) { benchmarkEvalFull(b, StrategyMemoryBounded, 18, 4) }
func BenchmarkEvalFullBranchParallel(b *testing.B) {
	benchmarkEvalFull(b, StrategyBranchParallel, 14, 4)
}
