package batchcode

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"github.com/impir/impir/internal/database"
)

func testManifest(t *testing.T, numRecords uint64, buckets int) Manifest {
	t.Helper()
	m, err := Derive(numRecords, 16, buckets, 2, 1, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testDB(t *testing.T, n uint64, recordSize int) *database.DB {
	t.Helper()
	db, err := database.New(int(n), recordSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		rec := make([]byte, recordSize)
		binary.LittleEndian.PutUint64(rec, uint64(i)^0xdeadbeef)
		if err := db.SetRecord(i, rec); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest(t, 1024, 8)
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, back)
	}
}

func TestManifestValidateRejects(t *testing.T) {
	base := testManifest(t, 1024, 8)
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"zero records", func(m *Manifest) { m.NumRecords = 0 }},
		{"records over cap", func(m *Manifest) { m.NumRecords = MaxRecords + 1 }},
		{"zero record size", func(m *Manifest) { m.RecordSize = 0 }},
		{"record size over cap", func(m *Manifest) { m.RecordSize = MaxRecordSize + 1 }},
		{"one choice", func(m *Manifest) { m.Choices = 1; m.Seeds = m.Seeds[:1] }},
		{"too many choices", func(m *Manifest) { m.Choices = MaxChoices + 1 }},
		{"buckets under choices", func(m *Manifest) { m.Buckets = 1 }},
		{"buckets over cap", func(m *Manifest) { m.Buckets = MaxBuckets + 1 }},
		{"zero bucket rows", func(m *Manifest) { m.BucketRows = 0 }},
		{"negative overflow", func(m *Manifest) { m.OverflowSlots = -1 }},
		{"overflow over cap", func(m *Manifest) { m.OverflowSlots = MaxOverflowSlots + 1 }},
		{"zero batch cap", func(m *Manifest) { m.MaxBatch = 0 }},
		{"batch cap over cap", func(m *Manifest) { m.MaxBatch = MaxDeclaredBatch + 1 }},
		{"seed count mismatch", func(m *Manifest) { m.Seeds = m.Seeds[:1] }},
		{"duplicate seeds", func(m *Manifest) { m.Seeds = []uint64{3, 3} }},
	}
	for _, tc := range cases {
		m := base
		m.Seeds = append([]uint64(nil), base.Seeds...)
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

func TestCandidatesDistinctAndDeterministic(t *testing.T) {
	m := testManifest(t, 4096, 8)
	m.Choices = 4
	m.Seeds = []uint64{1, 2, 3, 4}
	for i := uint64(0); i < 4096; i++ {
		c := m.Candidates(i)
		if len(c) != m.Choices {
			t.Fatalf("record %d: %d candidates", i, len(c))
		}
		seen := map[int]bool{}
		for _, b := range c {
			if b < 0 || b >= m.Buckets {
				t.Fatalf("record %d: candidate %d out of range", i, b)
			}
			if seen[b] {
				t.Fatalf("record %d: duplicate candidate %d in %v", i, b, c)
			}
			seen[b] = true
		}
		if !reflect.DeepEqual(c, m.Candidates(i)) {
			t.Fatalf("record %d: candidates not deterministic", i)
		}
	}
}

func TestLayoutEncodeDecode(t *testing.T) {
	m := testManifest(t, 1000, 8)
	l, err := NewLayout(m)
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, m.NumRecords, m.RecordSize)
	coded, err := Encode(db, m)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(coded.NumRecords()) != m.TotalRows() {
		t.Fatalf("coded database has %d rows, want %d", coded.NumRecords(), m.TotalRows())
	}
	// Every copy of every record decodes byte-identically, and the
	// copies live in the candidate buckets.
	for i := uint64(0); i < m.NumRecords; i++ {
		want := db.Record(int(i))
		cand := m.Candidates(i)
		for j := 0; j < m.Choices; j++ {
			row := l.Row(i, j)
			if got := coded.Record(int(row)); !bytes.Equal(got, want) {
				t.Fatalf("record %d copy %d at row %d decodes wrong", i, j, row)
			}
			if b := l.Bucket(i, j); b != cand[j] {
				t.Fatalf("record %d copy %d in bucket %d, want %d", i, j, b, cand[j])
			}
		}
	}
}

func TestDeriveSizesTightly(t *testing.T) {
	m := testManifest(t, 2048, 8)
	if _, err := NewLayout(m); err != nil {
		t.Fatalf("derived manifest fails layout: %v", err)
	}
	// One row fewer must overflow — BucketRows is the exact max load.
	m.BucketRows--
	if m.BucketRows > 0 {
		if _, err := NewLayout(m); err == nil {
			t.Fatal("undersized bucket rows accepted")
		}
	}
}

func TestPlanBatchShapeAndCoverage(t *testing.T) {
	m := testManifest(t, 4096, 16)
	l, err := NewLayout(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(99)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 11) % n
	}
	for trial := 0; trial < 200; trial++ {
		b := 1 + int(next(uint64(m.MaxBatch)))
		indices := make([]uint64, b)
		for i := range indices {
			indices[i] = next(m.NumRecords)
		}
		plan, ok, err := l.PlanBatch(indices, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			// Rare (overflow tail exhausted); the fallback contract.
			continue
		}
		// Shape: always QueriesPerBatch slots, bucket slots inside
		// their bucket, overflow slots inside the coded database.
		if len(plan.Indices) != m.QueriesPerBatch() {
			t.Fatalf("plan has %d slots, want %d", len(plan.Indices), m.QueriesPerBatch())
		}
		for s, row := range plan.Indices {
			if s < m.Buckets {
				if row/m.BucketRows != uint64(s) {
					t.Fatalf("slot %d row %d outside bucket %d", s, row, s)
				}
			} else if row >= m.TotalRows() {
				t.Fatalf("overflow slot %d row %d outside coded database", s, row)
			}
		}
		// Coverage: every batch position decodes to its record via its
		// source.
		for i, idx := range indices {
			src := plan.Sources[i]
			switch src.Kind {
			case FromSlot:
				row := plan.Indices[src.Slot]
				found := false
				for j := 0; j < m.Choices; j++ {
					if l.Row(idx, j) == row {
						found = true
					}
				}
				if !found {
					t.Fatalf("position %d (record %d) routed to slot %d row %d, not a copy", i, idx, src.Slot, row)
				}
			case FromDup:
				if src.Dup >= i || indices[src.Dup] != idx {
					t.Fatalf("position %d bad dup %d", i, src.Dup)
				}
			default:
				t.Fatalf("position %d unexpected source %v with nil cache", i, src.Kind)
			}
		}
	}
}

func TestPlanBatchSpendsSideInformation(t *testing.T) {
	m := testManifest(t, 4096, 16)
	l, err := NewLayout(m)
	if err != nil {
		t.Fatal(err)
	}
	indices := []uint64{10, 20, 30, 40, 20}
	cachedSet := map[uint64]bool{20: true, 40: true}
	plan, ok, err := l.PlanBatch(indices, func(i uint64) bool { return cachedSet[i] })
	if err != nil || !ok {
		t.Fatalf("plan failed: ok=%v err=%v", ok, err)
	}
	if plan.CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2", plan.CacheHits)
	}
	if plan.Sources[1].Kind != FromCache || plan.Sources[3].Kind != FromCache {
		t.Fatalf("cached positions not FromCache: %+v", plan.Sources)
	}
	if plan.Sources[4].Kind != FromDup || plan.Sources[4].Dup != 1 {
		t.Fatalf("duplicate of cached record not FromDup: %+v", plan.Sources[4])
	}
	if plan.Real != 2 {
		t.Fatalf("Real = %d, want 2 (records 10 and 30)", plan.Real)
	}
	if len(plan.Indices) != m.QueriesPerBatch() {
		t.Fatalf("cache hits changed the plan shape: %d slots", len(plan.Indices))
	}
}

func TestPlanBatchOverCapFallsBack(t *testing.T) {
	m := testManifest(t, 4096, 16)
	l, err := NewLayout(m)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]uint64, m.MaxBatch+1)
	for i := range big {
		big[i] = uint64(i)
	}
	if _, ok, err := l.PlanBatch(big, nil); err != nil || ok {
		t.Fatalf("over-cap batch: ok=%v err=%v, want not-codeable", ok, err)
	}
}

func TestPlanBatchMatchingUsesAugmentingPaths(t *testing.T) {
	// Find three records sharing one contested bucket arrangement where
	// greedy-only assignment could fail but augmenting paths succeed:
	// with r=2 and C buckets, any 2 records whose candidate sets
	// overlap in one bucket must still both place.
	m := testManifest(t, 4096, 8)
	l, err := NewLayout(m)
	if err != nil {
		t.Fatal(err)
	}
	byPair := map[[2]int][]uint64{}
	for i := uint64(0); i < m.NumRecords; i++ {
		c := m.Candidates(i)
		key := [2]int{c[0], c[1]}
		if len(byPair[key]) < 2 {
			byPair[key] = append(byPair[key], i)
		}
	}
	for pair, recs := range byPair {
		if len(recs) < 2 {
			continue
		}
		// Two records on the same bucket pair saturate it exactly; both
		// must be placed with zero overflow.
		plan, ok, err := l.PlanBatch(recs[:2], nil)
		if err != nil || !ok {
			t.Fatalf("pair %v: ok=%v err=%v", pair, ok, err)
		}
		if plan.Real != 2 {
			t.Fatalf("pair %v: placed %d of 2", pair, plan.Real)
		}
		for _, src := range plan.Sources {
			if src.Slot >= m.Buckets {
				t.Fatalf("pair %v: spilled to overflow despite free alternate copies", pair)
			}
		}
		break
	}
}

func TestSideInfoCacheLRU(t *testing.T) {
	c := NewSideInfoCache(2)
	c.Put(1, []byte("a"))
	c.Put(2, []byte("b"))
	if _, ok := c.Get(1); !ok {
		t.Fatal("record 1 missing")
	}
	c.Put(3, []byte("c")) // evicts 2 (1 was refreshed)
	if _, ok := c.Get(2); ok {
		t.Fatal("record 2 should be evicted")
	}
	if rec, ok := c.Get(1); !ok || string(rec) != "a" {
		t.Fatalf("record 1 = %q %v", rec, ok)
	}
	// Returned record is a copy: mutating it must not poison the cache.
	rec, _ := c.Get(3)
	rec[0] = 'X'
	if again, _ := c.Get(3); string(again) != "c" {
		t.Fatalf("cache poisoned: %q", again)
	}
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Fatal("record 1 should be invalidated")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Nil cache is inert.
	var nilCache *SideInfoCache
	nilCache.Put(9, []byte("x"))
	if _, ok := nilCache.Get(9); ok {
		t.Fatal("nil cache returned a record")
	}
	if NewSideInfoCache(0) != nil {
		t.Fatal("zero-capacity cache should be nil")
	}
}
