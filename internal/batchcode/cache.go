package batchcode

import (
	"container/list"
	"sync"
)

// SideInfoCache is an LRU over decoded records, keyed by logical index.
// Hits are "side information" in the IPIR-SI sense: a record the client
// already holds need not be fetched, so the planner drops it from the
// real assignment and issues a dummy bucket query in its place — the
// traffic shape is byte-identical with or without the hit, which is
// what lets the cache exist without weakening privacy.
type SideInfoCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[uint64]*list.Element
}

type cacheEntry struct {
	index uint64
	rec   []byte
}

// NewSideInfoCache builds a cache holding up to capacity records;
// capacity < 1 returns nil (no cache).
func NewSideInfoCache(capacity int) *SideInfoCache {
	if capacity < 1 {
		return nil
	}
	return &SideInfoCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[uint64]*list.Element, capacity),
	}
}

// Get returns a copy of the cached record and refreshes its recency.
func (c *SideInfoCache) Get(index uint64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[index]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	rec := el.Value.(*cacheEntry).rec
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, true
}

// Put stores a copy of the record, evicting the least recently used
// entry when full.
func (c *SideInfoCache) Put(index uint64, rec []byte) {
	if c == nil {
		return
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[index]; ok {
		el.Value.(*cacheEntry).rec = cp
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).index)
	}
	c.entries[index] = c.order.PushFront(&cacheEntry{index: index, rec: cp})
}

// Invalidate drops an entry (the record was updated; stale side
// information would decode wrong answers).
func (c *SideInfoCache) Invalidate(index uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[index]; ok {
		c.order.Remove(el)
		delete(c.entries, index)
	}
}

// Len returns the live entry count.
func (c *SideInfoCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
