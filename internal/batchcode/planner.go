package batchcode

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// SourceKind says where a batch position's record comes from when a
// plan's answers are demultiplexed.
type SourceKind int

const (
	// FromSlot: the record is the answer of plan slot Slot.
	FromSlot SourceKind = iota
	// FromCache: the record was a side-information cache hit; no slot
	// carries it (a dummy query was issued in its place).
	FromCache
	// FromDup: the record duplicates an earlier batch position Dup.
	FromDup
)

// Source routes one batch position to its record.
type Source struct {
	Kind SourceKind
	// Slot is the plan slot index for FromSlot.
	Slot int
	// Dup is the earlier batch position for FromDup.
	Dup int
}

// Plan is the constant-shape coded query vector for one batch:
// exactly QueriesPerBatch() coded row indices — slot b < Buckets
// queries inside bucket b, the tail slots range over the whole coded
// database — in fixed order. Which slots are real and which are dummy
// is known only to the client.
type Plan struct {
	// Indices are the coded rows to retrieve, one per slot.
	Indices []uint64
	// Sources maps each batch position to its record's origin.
	Sources []Source
	// Real counts slots carrying real queries; the remaining
	// len(Indices)-Real slots are uniform dummies.
	Real int
	// CacheHits counts batch positions served from side information.
	CacheHits int
}

// PlanBatch matches a batch of logical indices onto the bucket grid:
// each distinct uncached record is assigned to one bucket holding a
// copy (greedy with augmenting-path repair — the classic bipartite
// matching, so a record displaced from a contested bucket can push an
// earlier assignment to its alternate copy), duplicates collapse onto
// one query, and records the cached predicate claims are spent as side
// information (dropped from the matching, their slots left dummy).
// Records the matching cannot place go to the overflow tail.
//
// The returned ok is false when more records overflow than the
// manifest's constant tail absorbs — the batch is not codeable and the
// caller falls back to the uncoded path (a probabilistic-batch-code
// failure; Derive-sized codes make it vanishingly rare for batches
// within MaxBatch).
func (l *Layout) PlanBatch(indices []uint64, cached func(uint64) bool) (*Plan, bool, error) {
	m := l.m
	if len(indices) == 0 {
		return nil, false, fmt.Errorf("batchcode: empty batch")
	}
	if len(indices) > m.MaxBatch {
		return nil, false, nil
	}
	p := &Plan{
		Indices: make([]uint64, m.QueriesPerBatch()),
		Sources: make([]Source, len(indices)),
	}

	// Dedup and split cached from matchable.
	firstPos := make(map[uint64]int, len(indices))
	type want struct {
		index uint64
		pos   int // first batch position asking for it
	}
	var real []want
	for i, idx := range indices {
		if idx >= m.NumRecords {
			return nil, false, fmt.Errorf("batchcode: index %d outside logical database of %d records", idx, m.NumRecords)
		}
		if first, seen := firstPos[idx]; seen {
			p.Sources[i] = Source{Kind: FromDup, Dup: first}
			continue
		}
		firstPos[idx] = i
		if cached != nil && cached(idx) {
			p.Sources[i] = Source{Kind: FromCache}
			p.CacheHits++
			continue
		}
		real = append(real, want{index: idx, pos: i})
	}

	// Bipartite matching of records onto buckets (Kuhn's algorithm):
	// greedy first, then augmenting paths over the r candidate edges.
	owner := make([]int, m.Buckets) // bucket -> index into real, or -1
	choice := make([]int, len(real))
	for b := range owner {
		owner[b] = -1
	}
	visited := make([]bool, m.Buckets)
	var assign func(u int) bool
	assign = func(u int) bool {
		for j, b := range m.Candidates(real[u].index) {
			if visited[b] {
				continue
			}
			visited[b] = true
			if owner[b] == -1 || assign(owner[b]) {
				owner[b] = u
				choice[u] = j
				return true
			}
		}
		return false
	}
	var overflow []int
	for u := range real {
		for b := range visited {
			visited[b] = false
		}
		if !assign(u) {
			overflow = append(overflow, u)
		}
	}
	if len(overflow) > m.OverflowSlots {
		return nil, false, nil
	}

	// Bucket slots: the assigned copy's row, or a uniform dummy row
	// inside the bucket.
	for b := 0; b < m.Buckets; b++ {
		if u := owner[b]; u != -1 {
			w := real[u]
			p.Indices[b] = l.Row(w.index, choice[u])
			p.Sources[w.pos] = Source{Kind: FromSlot, Slot: b}
			p.Real++
			continue
		}
		dummy, err := randIndex(m.BucketRows)
		if err != nil {
			return nil, false, err
		}
		p.Indices[b] = uint64(b)*m.BucketRows + dummy
	}
	// Overflow tail: the residue's first-copy rows, then full-range
	// dummies — always OverflowSlots entries.
	for t := 0; t < m.OverflowSlots; t++ {
		slot := m.Buckets + t
		if t < len(overflow) {
			w := real[overflow[t]]
			p.Indices[slot] = l.Row(w.index, 0)
			p.Sources[w.pos] = Source{Kind: FromSlot, Slot: slot}
			p.Real++
			continue
		}
		dummy, err := randIndex(m.TotalRows())
		if err != nil {
			return nil, false, err
		}
		p.Indices[slot] = dummy
	}
	return p, true, nil
}

// RandRow draws a uniform row in [0, n) from crypto/rand — the dummy
// generator shared with the root package's coded store (single-record
// cache hits and per-shard overflow dummies draw from it too).
func RandRow(n uint64) (uint64, error) { return randIndex(n) }

// randIndex draws a uniform index in [0, n) from crypto/rand. Dummy
// indices do not strictly need to be unpredictable — a PIR sub-query
// hides its index whatever it is — but uniform randomness costs nothing
// and removes any temptation to reason about dummy placement (the same
// stance as internal/cluster's dummy locals).
func randIndex(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("batchcode: empty range")
	}
	// Rejection-sample to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("batchcode: rand: %w", err)
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v < max {
			return v % n, nil
		}
	}
}
