package batchcode

import (
	"reflect"
	"testing"
)

// FuzzParseCodeManifest is the fixed-point fuzz of the code manifest
// codec (the pirproto pattern): any accepted input must sit inside
// every allocation cap — a client sizes its placement table and every
// batch's query vector straight from these fields — and must survive a
// JSON re-encode/re-parse round trip unchanged.
func FuzzParseCodeManifest(f *testing.F) {
	good, err := Manifest{
		NumRecords: 1024, RecordSize: 32, Buckets: 8, Choices: 2,
		BucketRows: 512, OverflowSlots: 1, MaxBatch: 32, Seeds: []uint64{1, 2},
	}.JSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"num_records":-1}`))
	f.Add([]byte(`{"num_records":67108865,"record_size":1,"buckets":2,"choices":2,"bucket_rows":1,"max_batch":1,"seeds":[1,2]}`))
	f.Add([]byte(`{"num_records":1,"record_size":1,"buckets":4096,"choices":2,"bucket_rows":4294967296,"max_batch":1,"seeds":[1,2]}`))
	f.Add([]byte(`{"num_records":8,"record_size":8,"buckets":4,"choices":2,"bucket_rows":8,"overflow_slots":9,"max_batch":8,"seeds":[1,2]}`))
	f.Add([]byte(`{"num_records":8,"record_size":8,"buckets":4,"choices":2,"bucket_rows":8,"max_batch":8,"seeds":[7,7]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted manifests sit inside every allocation cap.
		if m.NumRecords < 1 || m.NumRecords > MaxRecords {
			t.Fatalf("accepted manifest has %d records", m.NumRecords)
		}
		if m.RecordSize < 1 || m.RecordSize > MaxRecordSize {
			t.Fatalf("accepted manifest has record size %d", m.RecordSize)
		}
		if m.Buckets < m.Choices || m.Buckets > MaxBuckets {
			t.Fatalf("accepted manifest has %d buckets for %d choices", m.Buckets, m.Choices)
		}
		if m.Choices < MinChoices || m.Choices > MaxChoices || len(m.Seeds) != m.Choices {
			t.Fatalf("accepted manifest has %d choices, %d seeds", m.Choices, len(m.Seeds))
		}
		if m.QueriesPerBatch() > MaxBuckets+MaxOverflowSlots || m.QueriesPerBatch() < m.Buckets {
			t.Fatalf("accepted manifest issues %d queries per batch", m.QueriesPerBatch())
		}
		if m.TotalRows() < m.BucketRows || m.TotalRows() > uint64(MaxBuckets)*MaxBucketRows {
			t.Fatalf("accepted manifest has %d coded rows", m.TotalRows())
		}
		// Candidates stay in range and distinct for a few indices.
		for i := uint64(0); i < 4; i++ {
			c := m.Candidates(i % m.NumRecords)
			seen := map[int]bool{}
			for _, b := range c {
				if b < 0 || b >= m.Buckets || seen[b] {
					t.Fatalf("candidates %v out of range or duplicated", c)
				}
				seen[b] = true
			}
		}
		// And round-trip: JSON() must re-validate and Parse back equal.
		out, err := m.JSON()
		if err != nil {
			t.Fatalf("accepted manifest fails re-encode: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("re-encoded manifest fails to parse: %v", err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("round trip drift:\n%+v\n%+v", m, back)
		}
	})
}
