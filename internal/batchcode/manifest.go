// Package batchcode lays a database out as a probabilistic batch code
// so one multi-record batch costs one sub-query per bucket instead of
// one full scan per record.
//
// IM-PIR's per-query cost is a linear scan of the whole (shard)
// database, so a B-record RetrieveBatch costs B scans — keyword PIR's
// constant 7-probe lookups pay ~7× the single-record price. A
// probabilistic batch code (Angel et al.'s PBC construction, as used by
// the low-complexity multi-message PIR scheme this repo reproduces)
// replicates every record into r of C bucketised subdatabases chosen by
// seeded hashing. A B-record batch is then served by matching each
// requested record to ONE bucket holding a copy (a bipartite matching
// that succeeds with overwhelming probability for B ≤ MaxBatch) and
// issuing exactly one sub-query per bucket: real where a record was
// assigned, a well-formed dummy everywhere else, plus a constant tail
// of overflow slots absorbing the rare matching residue. The query
// vector's shape — C+overflow sub-queries, fixed sizes, fixed order —
// is public and independent of the batch content and size, so the
// servers learn nothing beyond "a batch happened", exactly as with
// today's uncoded batches.
//
// The package comprises the code Manifest (geometry + seeds with JSON
// round-trip for deployment files, mirroring internal/cluster and
// internal/keyword), the deterministic Layout (bucket placement table +
// database encoder), the per-batch Planner (greedy matching with
// augmenting-path repair and constant-shape overflow fallback), and an
// LRU side-information cache whose hits are spent by swapping a real
// bucket query for a dummy — the wire shape is identical with or
// without cache hits. The network store driving coded batches —
// impir.CodedStore — lives in the root package on top of impir.Client
// and impir.ClusterClient; this package deliberately stays below it in
// the dependency order so planners and benchmarks can reason about
// codes without a network stack.
package batchcode

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
)

// Hard caps keeping adversarial manifests from demanding absurd
// allocations: a client builds its placement table (NumRecords × Choices
// entries) straight from these fields, like the keyword and cluster
// manifest caps.
const (
	// MaxRecords bounds the logical record count (the placement table
	// costs 8 bytes per record-choice pair).
	MaxRecords = 1 << 26
	// MaxBuckets bounds the bucket count C; every batch issues one
	// sub-query per bucket, so C prices the constant batch shape.
	MaxBuckets = 4096
	// MinChoices / MaxChoices bound the replication factor r. One
	// choice has no matching freedom and collapses to plain sharding.
	MinChoices = 2
	MaxChoices = 4
	// MaxOverflowSlots bounds the constant overflow tail.
	MaxOverflowSlots = 8
	// MaxDeclaredBatch bounds the declared batch cap.
	MaxDeclaredBatch = 4096
	// MaxRecordSize bounds one record (mirrors keyword.MaxRecordSize).
	MaxRecordSize = 1 << 20
	// MaxBucketRows bounds a bucket's padded row count.
	MaxBucketRows = 1 << 32
)

// Manifest describes a batch code's geometry and hashing so a client
// can replay the layout without the database: the logical record space,
// the bucket grid, the replication choices, and the hash seeds.
// Manifests round-trip through JSON (Parse / Load / Manifest.JSON) for
// deployment files, like cluster.Manifest and keyword.Manifest.
type Manifest struct {
	// NumRecords is the LOGICAL record count N — the index space the
	// application sees. The coded database is larger: TotalRows() rows.
	NumRecords uint64 `json:"num_records"`
	// RecordSize is the record size in bytes (unchanged by coding).
	RecordSize int `json:"record_size"`
	// Buckets is the subdatabase count C. Bucket b occupies coded rows
	// [b·BucketRows, (b+1)·BucketRows).
	Buckets int `json:"buckets"`
	// Choices is the replication factor r: every record is stored in r
	// distinct buckets chosen by seeded hashing.
	Choices int `json:"choices"`
	// BucketRows is the uniform padded row count per bucket. It must be
	// at least the heaviest bucket's load; NewLayout verifies this by
	// replaying the hashing.
	BucketRows uint64 `json:"bucket_rows"`
	// OverflowSlots is the constant number of extra full-range
	// sub-queries appended to every coded batch. Real when the matching
	// could not place a record in its buckets, dummy otherwise — always
	// present, so shape does not depend on matching luck.
	OverflowSlots int `json:"overflow_slots"`
	// MaxBatch is the declared batch-size cap the constant shape covers.
	// Larger batches fall back to the uncoded path (a public event:
	// the cap itself is public).
	MaxBatch int `json:"max_batch"`
	// Seeds are the r candidate-hash seeds, in choice order, distinct.
	Seeds []uint64 `json:"seeds"`
}

// Validate checks the geometry against the allocation caps: positive
// logical record count, record size, bucket grid, 2..4 distinct seeds
// matching Choices, and a bucket count large enough to offer Choices
// distinct candidates.
func (m Manifest) Validate() error {
	if m.NumRecords < 1 {
		return fmt.Errorf("batchcode: record count %d must be ≥ 1", m.NumRecords)
	}
	if m.NumRecords > MaxRecords {
		return fmt.Errorf("batchcode: %d records exceeds the cap of %d", m.NumRecords, MaxRecords)
	}
	if m.RecordSize < 1 || m.RecordSize > MaxRecordSize {
		return fmt.Errorf("batchcode: record size %d outside [1, %d]", m.RecordSize, MaxRecordSize)
	}
	if m.Choices < MinChoices || m.Choices > MaxChoices {
		return fmt.Errorf("batchcode: %d choices outside [%d, %d]", m.Choices, MinChoices, MaxChoices)
	}
	if m.Buckets < m.Choices || m.Buckets > MaxBuckets {
		return fmt.Errorf("batchcode: %d buckets outside [%d, %d]", m.Buckets, m.Choices, MaxBuckets)
	}
	if m.BucketRows < 1 || m.BucketRows > MaxBucketRows {
		return fmt.Errorf("batchcode: bucket rows %d outside [1, %d]", m.BucketRows, MaxBucketRows)
	}
	if m.OverflowSlots < 0 || m.OverflowSlots > MaxOverflowSlots {
		return fmt.Errorf("batchcode: %d overflow slots outside [0, %d]", m.OverflowSlots, MaxOverflowSlots)
	}
	if m.MaxBatch < 1 || m.MaxBatch > MaxDeclaredBatch {
		return fmt.Errorf("batchcode: batch cap %d outside [1, %d]", m.MaxBatch, MaxDeclaredBatch)
	}
	if len(m.Seeds) != m.Choices {
		return fmt.Errorf("batchcode: %d seeds for %d choices", len(m.Seeds), m.Choices)
	}
	for i, s := range m.Seeds {
		for j := 0; j < i; j++ {
			if m.Seeds[j] == s {
				return fmt.Errorf("batchcode: seeds %d and %d are both %d; seeds must be distinct", j, i, s)
			}
		}
	}
	return nil
}

// TotalRows returns the coded database's physical row count:
// Buckets × BucketRows. Servers store and scan coded rows; only the
// client maps logical indices onto them.
func (m Manifest) TotalRows() uint64 { return uint64(m.Buckets) * m.BucketRows }

// QueriesPerBatch returns the constant sub-query count of every coded
// batch: one per bucket plus the overflow tail. This count depends only
// on the manifest — never on the batch's size or content — which is the
// coded layer's privacy argument.
func (m Manifest) QueriesPerBatch() int { return m.Buckets + m.OverflowSlots }

// Candidates returns record i's r candidate buckets in choice order.
// Unlike keyword hashing, candidates are forced DISTINCT (a counter is
// folded into the hash until the collision clears) so each record
// really has r independent placements for the matcher to use.
func (m Manifest) Candidates(i uint64) []int {
	out := make([]int, m.Choices)
	for j, seed := range m.Seeds {
		ctr := uint64(0)
	probe:
		for {
			b := int(bucketHash(seed, i, ctr) % uint64(m.Buckets))
			for _, prev := range out[:j] {
				if prev == b {
					ctr++
					continue probe
				}
			}
			out[j] = b
			break
		}
	}
	return out
}

// bucketHash maps (seed, index, counter) to a uniform 64-bit value: the
// first 8 bytes of SHA-256(le64(seed) ‖ le64(index) ‖ le64(counter)).
// Deterministic across builds and platforms, and keyed only by public
// manifest data — the same idiom as keyword.Manifest's bucket hash.
func bucketHash(seed, index, ctr uint64) uint64 {
	h := sha256.New()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:8], seed)
	binary.LittleEndian.PutUint64(buf[8:16], index)
	binary.LittleEndian.PutUint64(buf[16:24], ctr)
	h.Write(buf[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.LittleEndian.Uint64(sum[:8])
}

// Parse decodes and validates a JSON code manifest.
func Parse(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("batchcode: parse manifest: %w", err)
	}
	return m, m.Validate()
}

// Load reads and validates a JSON code manifest file.
func Load(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("batchcode: load manifest: %w", err)
	}
	return Parse(data)
}

// JSON encodes the manifest for config files; Parse round-trips it.
func (m Manifest) JSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// Derive sizes a code for a database: it replays the hashing for the
// given grid, measures the heaviest bucket, and returns a manifest with
// BucketRows set to that load (the tightest uniform padding that fits).
// Seeds are derived deterministically from seed.
func Derive(numRecords uint64, recordSize, buckets, choices, overflowSlots, maxBatch int, seed uint64) (Manifest, error) {
	m := Manifest{
		NumRecords:    numRecords,
		RecordSize:    recordSize,
		Buckets:       buckets,
		Choices:       choices,
		BucketRows:    1, // placeholder; sized below
		OverflowSlots: overflowSlots,
		MaxBatch:      maxBatch,
		Seeds:         make([]uint64, choices),
	}
	for j := range m.Seeds {
		// splitmix64-style derivation keeps the seeds distinct for any
		// starting seed.
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		m.Seeds[j] = z ^ (z >> 31)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	load := make([]uint64, buckets)
	var heaviest uint64
	for i := uint64(0); i < numRecords; i++ {
		for _, b := range m.Candidates(i) {
			load[b]++
			if load[b] > heaviest {
				heaviest = load[b]
			}
		}
	}
	m.BucketRows = heaviest
	return m, m.Validate()
}
