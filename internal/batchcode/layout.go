package batchcode

import (
	"fmt"

	"github.com/impir/impir/internal/database"
)

// Layout is a manifest's concrete bucket placement: for every logical
// record and every choice, the coded row holding that copy. Both the
// client (to plan queries) and the encoder (to build the coded
// database) replay the same deterministic construction, so they agree
// without communicating: records are visited in index order and each
// copy takes the next free row of its candidate bucket.
type Layout struct {
	m Manifest
	// rows[i*Choices+j] is the coded row of record i's j-th copy.
	rows []uint64
	// load[b] is bucket b's real (unpadded) row count.
	load []uint64
}

// NewLayout replays the manifest's hashing into a placement table. It
// fails if any bucket's load exceeds BucketRows — a manifest that was
// not sized for its record count (Derive sizes it tightly).
func NewLayout(m Manifest) (*Layout, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	l := &Layout{
		m:    m,
		rows: make([]uint64, m.NumRecords*uint64(m.Choices)),
		load: make([]uint64, m.Buckets),
	}
	for i := uint64(0); i < m.NumRecords; i++ {
		for j, b := range m.Candidates(i) {
			if l.load[b] >= m.BucketRows {
				return nil, fmt.Errorf("batchcode: bucket %d overflows its %d rows at record %d; the manifest's bucket_rows is too small for its record count",
					b, m.BucketRows, i)
			}
			l.rows[i*uint64(m.Choices)+uint64(j)] = uint64(b)*m.BucketRows + l.load[b]
			l.load[b]++
		}
	}
	return l, nil
}

// Manifest returns the layout's code manifest.
func (l *Layout) Manifest() Manifest { return l.m }

// Row returns the coded row index of record i's copy for choice j.
func (l *Layout) Row(i uint64, j int) uint64 {
	return l.rows[i*uint64(l.m.Choices)+uint64(j)]
}

// Bucket returns the bucket holding record i's copy for choice j.
func (l *Layout) Bucket(i uint64, j int) int {
	return int(l.Row(i, j) / l.m.BucketRows)
}

// Encode builds the coded database: TotalRows physical rows with record
// i copied into its r placement rows and padding rows zeroed. Servers
// serve the coded database like any other — each bucket is an ordinary
// contiguous row range, so no protocol or engine change is needed.
func Encode(db *database.DB, m Manifest) (*database.DB, error) {
	if uint64(db.NumRecords()) != m.NumRecords {
		return nil, fmt.Errorf("batchcode: database has %d records, manifest declares %d", db.NumRecords(), m.NumRecords)
	}
	if db.RecordSize() != m.RecordSize {
		return nil, fmt.Errorf("batchcode: database records are %d bytes, manifest declares %d", db.RecordSize(), m.RecordSize)
	}
	l, err := NewLayout(m)
	if err != nil {
		return nil, err
	}
	out, err := database.New(int(m.TotalRows()), m.RecordSize)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < m.NumRecords; i++ {
		rec := db.Record(int(i))
		for j := 0; j < m.Choices; j++ {
			if err := out.SetRecord(int(l.Row(i, j)), rec); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
