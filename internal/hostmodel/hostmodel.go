// Package hostmodel provides analytic performance models of the paper's
// two host machines (§5.2), used to convert operation counts measured by
// the functional simulation into the latencies those operations would
// exhibit on the evaluation hardware.
//
// Rationale: the local machine running this reproduction is neither the
// paper's 32-thread dual-Xeon baseline server nor the PIM server's host,
// so raw wall-clock cannot reproduce the paper's absolute numbers or even
// its ratios. Instead, every engine executes the real algorithm (bit-exact
// results, verified by tests) and reports both wall-clock and a modeled
// latency computed from these machine constants. The constants are
// first-order calibrations from the paper's own measurements (Fig. 3,
// Fig. 10, Table 1): pipelined AES-NI throughput per thread and
// memory-bandwidth-limited database scan throughput.
package hostmodel

import (
	"fmt"
	"time"
)

// Model describes a host CPU for the purposes of the two operations that
// dominate multi-server PIR: GGM tree expansion (AES-bound) and the
// selective-XOR database scan (memory-bandwidth-bound).
type Model struct {
	// Name identifies the machine in reports.
	Name string
	// Threads is the number of hardware threads the PIR server uses.
	Threads int
	// AESBlocksPerSecPerThread is the sustained AES-128 block throughput
	// of one thread using pipelined AES-NI (batched independent blocks).
	AESBlocksPerSecPerThread float64
	// ScanBytesPerSecPerThread is one thread's sustained rate XOR-scanning
	// a streaming database working set (DRAM-bandwidth limited).
	ScanBytesPerSecPerThread float64
	// AggregateScanBytesPerSec caps the total scan bandwidth when many
	// threads stream concurrently (the memory wall of §2.1).
	AggregateScanBytesPerSec float64
}

// CPUPIRBaseline models the paper's baseline server: 2× 16-core Xeon
// E5-2683 v4 @ 2.10 GHz with hyper-threading (32 threads used), 40 MB LLC
// per socket, 128 GB DDR4. Calibrated against Fig. 3(a) (a single-query
// dpXOR over 4 GB takes ≈ 2–3 s on one thread) and Table 1 (dpXOR ≈ 83%
// of query time under batch load).
func CPUPIRBaseline() Model {
	return Model{
		Name:                     "cpu-pir-baseline (2x E5-2683v4, AVX2+AES-NI)",
		Threads:                  32,
		AESBlocksPerSecPerThread: 4.5e8,
		ScanBytesPerSecPerThread: 2.6e9,
		AggregateScanBytesPerSec: 61e9,
	}
}

// PIMHost models the UPMEM server's host CPU: 2× 8-core Xeon Silver 4110
// @ 2.10 GHz with hyper-threading. Only its AES throughput matters — the
// scan runs on the DPUs.
func PIMHost() Model {
	return Model{
		Name:                     "pim-host (2x Xeon Silver 4110, AES-NI)",
		Threads:                  32,
		AESBlocksPerSecPerThread: 4.5e8,
		ScanBytesPerSecPerThread: 1.6e9,
		AggregateScanBytesPerSec: 40e9,
	}
}

// Validate checks the model's constants.
func (m Model) Validate() error {
	if m.Threads < 1 {
		return fmt.Errorf("hostmodel: Threads %d must be ≥ 1", m.Threads)
	}
	if m.AESBlocksPerSecPerThread <= 0 || m.ScanBytesPerSecPerThread <= 0 || m.AggregateScanBytesPerSec <= 0 {
		return fmt.Errorf("hostmodel: throughput constants must be positive")
	}
	return nil
}

// EvalDuration models a full-domain DPF evaluation over 2^domain leaves
// using the given number of threads on this machine. A GGM full-domain
// evaluation expands every internal node (≈ N of them for N leaves) with
// two AES blocks, so ≈ 2N blocks total.
func (m Model) EvalDuration(leaves uint64, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	if threads > m.Threads {
		threads = m.Threads
	}
	blocks := 2 * float64(leaves)
	sec := blocks / (m.AESBlocksPerSecPerThread * float64(threads))
	return time.Duration(sec * float64(time.Second))
}

// ScanDuration models one thread's selective-XOR scan over dbBytes while
// `concurrent` scans are in flight machine-wide (batch processing): each
// thread gets the per-thread rate until the aggregate memory bandwidth
// saturates.
func (m Model) ScanDuration(dbBytes int64, concurrent int) time.Duration {
	if concurrent < 1 {
		concurrent = 1
	}
	perThread := m.ScanBytesPerSecPerThread
	if cap := m.AggregateScanBytesPerSec / float64(concurrent); cap < perThread {
		perThread = cap
	}
	sec := float64(dbBytes) / perThread
	return time.Duration(sec * float64(time.Second))
}

// FusedScanDuration models a fused multi-selector scan: one streaming
// pass over dbBytes that accumulates `batch` results along the way.
// The contention story changes from ScanDuration's: memory traffic is
// paid ONCE (the whole machine cooperates on one stream, so the rate is
// min(threads × per-thread, aggregate)), while XOR ALU work scales with
// the batch. Each selector share sets ~half the bits, so the fused pass
// XORs batch × dbBytes/2; cache-resident XOR on streamed lines runs at
// ~4× the DRAM-bound scan rate per thread. The pass is whichever side of
// the roofline binds: max(memory-stream time, XOR time). At small B the
// memory term dominates and per-query cost falls ~1/B; once B× XOR work
// exceeds the stream time the pass turns ALU-bound and flattens.
func (m Model) FusedScanDuration(dbBytes int64, batch, threads int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	if threads < 1 {
		threads = 1
	}
	if threads > m.Threads {
		threads = m.Threads
	}
	streamRate := m.ScanBytesPerSecPerThread * float64(threads)
	if streamRate > m.AggregateScanBytesPerSec {
		streamRate = m.AggregateScanBytesPerSec
	}
	memSec := float64(dbBytes) / streamRate
	xorBytes := float64(batch) * float64(dbBytes) / 2
	xorRate := 4 * m.ScanBytesPerSecPerThread * float64(threads)
	xorSec := xorBytes / xorRate
	sec := memSec
	if xorSec > sec {
		sec = xorSec
	}
	return time.Duration(sec * float64(time.Second))
}

// XORFoldDuration models XOR-folding n buffers of size bytes each on the
// host (subresult aggregation) — a trivially bandwidth-bound operation.
func (m Model) XORFoldDuration(n int, size int) time.Duration {
	sec := float64(n) * float64(size) / m.ScanBytesPerSecPerThread
	return time.Duration(sec * float64(time.Second))
}

// KeyGenDuration models client-side DPF key generation: O(log N) PRG
// expansions — microseconds, included for Fig. 3(a)'s Gen bars.
func (m Model) KeyGenDuration(domain int) time.Duration {
	blocks := float64(2 * (domain + 1))
	sec := blocks / m.AESBlocksPerSecPerThread
	// Key generation also samples randomness and allocates; a fixed
	// overhead keeps the modeled value in the microsecond range the
	// paper reports (Gen ≈ 1000× cheaper than Eval).
	return time.Duration(sec*float64(time.Second)) + 2*time.Microsecond
}
