package hostmodel

import (
	"testing"
	"time"
)

func TestPresetsValid(t *testing.T) {
	for _, m := range []Model{CPUPIRBaseline(), PIMHost()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{Threads: 0, AESBlocksPerSecPerThread: 1, ScanBytesPerSecPerThread: 1, AggregateScanBytesPerSec: 1},
		{Threads: 1, AESBlocksPerSecPerThread: 0, ScanBytesPerSecPerThread: 1, AggregateScanBytesPerSec: 1},
		{Threads: 1, AESBlocksPerSecPerThread: 1, ScanBytesPerSecPerThread: -1, AggregateScanBytesPerSec: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestEvalDurationScaling(t *testing.T) {
	m := CPUPIRBaseline()
	one := m.EvalDuration(1<<20, 1)
	double := m.EvalDuration(1<<21, 1)
	if double < one*19/10 || double > one*21/10 {
		t.Errorf("doubling leaves: %v -> %v, want ≈ 2x", one, double)
	}
	fourThreads := m.EvalDuration(1<<20, 4)
	ratio := float64(one) / float64(fourThreads)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4 threads speedup = %.2f, want ≈ 4", ratio)
	}
	// Thread count is clamped to the machine size.
	clamped := m.EvalDuration(1<<20, 10_000)
	atMax := m.EvalDuration(1<<20, m.Threads)
	if clamped != atMax {
		t.Error("thread count not clamped to machine size")
	}
	if m.EvalDuration(1<<20, 0) != one {
		t.Error("zero threads not treated as one")
	}
}

func TestScanDurationContention(t *testing.T) {
	m := CPUPIRBaseline()
	solo := m.ScanDuration(1<<30, 1)
	contended := m.ScanDuration(1<<30, m.Threads)
	if contended <= solo {
		t.Errorf("contended scan %v not slower than solo %v", contended, solo)
	}
	// Below the saturation point concurrency must not slow a thread down.
	two := m.ScanDuration(1<<30, 2)
	if two != solo {
		t.Errorf("2-way scan %v != solo %v below saturation", two, solo)
	}
}

func TestScanDurationCalibration(t *testing.T) {
	// Fig. 3(a): a single-threaded dpXOR over 4 GB lands in seconds.
	m := CPUPIRBaseline()
	got := m.ScanDuration(4<<30, 1)
	if got < time.Second || got > 5*time.Second {
		t.Errorf("4 GB single-thread scan = %v, want 1–5 s (paper ≈ 2–3 s)", got)
	}
	// And dpXOR must dominate Eval by roughly the paper's 5–10x under
	// batch load (Table 1: 83% vs 17%).
	eval := m.EvalDuration(4<<30/32, 1)
	scan := m.ScanDuration(4<<30, m.Threads)
	ratio := scan.Seconds() / eval.Seconds()
	if ratio < 3 || ratio > 12 {
		t.Errorf("dpXOR/Eval ratio = %.1f, want 3–12", ratio)
	}
}

func TestXORFoldDuration(t *testing.T) {
	m := PIMHost()
	d := m.XORFoldDuration(2048, 32)
	if d <= 0 || d > time.Millisecond {
		t.Errorf("folding 2048 subresults = %v, want (0, 1ms]", d)
	}
}

func TestKeyGenDuration(t *testing.T) {
	m := PIMHost()
	gen := m.KeyGenDuration(30)
	if gen <= 0 || gen > 50*time.Microsecond {
		t.Errorf("KeyGen = %v, want microseconds", gen)
	}
	// Gen must be orders of magnitude below Eval (Fig. 3a).
	eval := m.EvalDuration(1<<30, 1)
	if float64(eval)/float64(gen) < 1000 {
		t.Errorf("Eval/Gen = %.0f, want ≥ 1000x", float64(eval)/float64(gen))
	}
}
