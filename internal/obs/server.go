package obs

import (
	"time"

	"github.com/impir/impir/internal/metrics"
)

// Readiness condition names used across the server stack. The admin
// /readyz endpoint reports the failing names, so they are part of the
// operator-facing surface.
const (
	// CondDBLoaded holds once a database is loaded into the engine.
	CondDBLoaded = "db-loaded"
	// CondServing holds while the query listener accepts and the server
	// is not draining.
	CondServing = "serving"
	// CondUpdateQuiesce fails only while an update holds the scheduler's
	// quiesce gate exclusively (in-flight passes drained, queries briefly
	// held).
	CondUpdateQuiesce = "update-quiesce"
)

// Request stages the per-frame latency histogram splits on.
const (
	// StageQueue is admission-queue wait before an engine pass.
	StageQueue = "queue"
	// StageEngine is the engine pass duration.
	StageEngine = "engine"
	// StageTotal is end-to-end dispatch as the transport sees it.
	StageTotal = "total"
)

// ServerMetrics is the server-side metric bundle: every family one
// impir server exports, created against one Registry. The transport and
// scheduler hold a *ServerMetrics and record into it; nil receivers are
// no-ops so un-instrumented servers (tests, benches) pay nothing.
//
// Two classes of family coexist deliberately:
//
//   - Event-sourced: requests, busy rejects, failures, lost arrivals and
//     the stage latency histograms are incremented at the moment the
//     event happens.
//   - Mirrored: the impir_scheduler_* counters' source of truth is the
//     scheduler's own atomics; MirrorScheduler copies a Stats snapshot
//     into them at scrape time (via Registry.OnScrape), so a scrape and
//     a QueueStats() call can never disagree about those counters.
type ServerMetrics struct {
	Registry *Registry

	requests *CounterVec // frame
	busy     *CounterVec // frame
	failures *CounterVec // frame
	lost     *CounterVec // (none)
	latency  *HistogramVec
	phases   *HistogramVec // phase
	ready    *GaugeVec

	schedCounters map[string]*Counter // keyed by short name
	passWidth     *CounterVec         // width
	depth         *GaugeVec
	maxDepth      *GaugeVec
	dbEpoch       *GaugeVec
	dbRecords     *GaugeVec
	dbRecordBytes *GaugeVec
}

// schedMirrorNames maps the impir_scheduler_*_total suffixes to the
// SchedulerStats fields they mirror; the order fixes exposition order.
var schedMirrorNames = []struct{ name, help string }{
	{"submitted", "Requests admitted to the scheduler queue."},
	{"rejected", "Requests refused with busy because the admission queue was full."},
	{"cancelled", "Requests dequeued without an engine pass because their context died."},
	{"dispatched", "Requests that reached an engine pass."},
	{"passes", "Engine passes executed."},
	{"coalesced_passes", "Passes that merged 2+ single queries from different connections."},
	{"coalesced_queries", "Single queries served through a coalesced pass."},
	{"fused_passes", "Passes executed as fused one-pass database scans."},
	{"updates", "Database bulk updates applied."},
}

// NewServerMetrics registers the full server family set on reg.
func NewServerMetrics(reg *Registry) *ServerMetrics {
	m := &ServerMetrics{Registry: reg, schedCounters: make(map[string]*Counter)}

	m.requests = reg.NewCounter("impir_requests_total",
		"Wire frames dispatched, by frame type.", "frame")
	m.busy = reg.NewCounter("impir_busy_rejects_total",
		"Requests rejected with a busy frame (admission queue full), by frame type.", "frame")
	m.failures = reg.NewCounter("impir_request_failures_total",
		"Requests that failed for reasons other than busy, by frame type.", "frame")
	m.lost = reg.NewCounter("impir_lost_arrivals_total",
		"Frames that arrived after drain began and were never dispatched.")
	m.latency = reg.NewHistogram("impir_request_latency_seconds",
		"Request latency by frame type and stage (queue wait, engine pass, total).",
		nil, "frame", "stage")
	m.phases = reg.NewHistogram("impir_engine_phase_seconds",
		"Engine pass wall time attributed to each processing phase.", nil, "phase")

	for _, n := range schedMirrorNames {
		v := reg.NewCounter("impir_scheduler_"+n.name+"_total", n.help+" (mirrored from the scheduler at scrape time.)")
		m.schedCounters[n.name] = v.With()
	}
	m.passWidth = reg.NewCounter("impir_scheduler_pass_width_total",
		"Single-query engine passes by coalesce width bucket (mirrored at scrape time).", "width")
	m.depth = reg.NewGauge("impir_scheduler_queue_depth",
		"Admission queue depth at scrape time.")
	m.maxDepth = reg.NewGauge("impir_scheduler_queue_depth_max",
		"Deepest the admission queue has been.")
	m.dbEpoch = reg.NewGauge("impir_db_epoch",
		"Database version the scheduler is serving (bumped once per applied update).")
	m.dbRecords = reg.NewGauge("impir_db_records",
		"Records in the loaded database.")
	m.dbRecordBytes = reg.NewGauge("impir_db_record_bytes",
		"Record size of the loaded database in bytes.")
	m.ready = reg.NewGauge("impir_ready",
		"1 while every readiness condition holds, else 0.")
	return m
}

// IncRequest counts one dispatched frame.
func (m *ServerMetrics) IncRequest(frame string) {
	if m == nil {
		return
	}
	m.requests.With(frame).Inc()
}

// IncBusy counts one busy rejection.
func (m *ServerMetrics) IncBusy(frame string) {
	if m == nil {
		return
	}
	m.busy.With(frame).Inc()
}

// IncFailure counts one non-busy failure.
func (m *ServerMetrics) IncFailure(frame string) {
	if m == nil {
		return
	}
	m.failures.With(frame).Inc()
}

// IncLostArrival counts one frame that arrived after drain began.
func (m *ServerMetrics) IncLostArrival() {
	if m == nil {
		return
	}
	m.lost.With().Inc()
}

// ObserveStage records one stage latency for a frame type.
func (m *ServerMetrics) ObserveStage(frame, stage string, d time.Duration) {
	if m == nil {
		return
	}
	m.latency.With(frame, stage).Observe(d)
}

// ObserveBreakdown attributes an engine pass's wall time to phases.
func (m *ServerMetrics) ObserveBreakdown(bd metrics.Breakdown) {
	if m == nil {
		return
	}
	for i := 0; i < metrics.NumPhases; i++ {
		if d := bd.Wall[i]; d > 0 {
			m.phases.With(metrics.Phase(i).String()).Observe(d)
		}
	}
}

// MirrorScheduler copies a scheduler snapshot into the mirror families.
// Call from a Registry.OnScrape hook with a fresh Stats() snapshot.
func (m *ServerMetrics) MirrorScheduler(st metrics.SchedulerStats) {
	if m == nil {
		return
	}
	m.schedCounters["submitted"].Set(st.Submitted)
	m.schedCounters["rejected"].Set(st.Rejected)
	m.schedCounters["cancelled"].Set(st.Cancelled)
	m.schedCounters["dispatched"].Set(st.Dispatched)
	m.schedCounters["passes"].Set(st.Passes)
	m.schedCounters["coalesced_passes"].Set(st.CoalescedPasses)
	m.schedCounters["coalesced_queries"].Set(st.CoalescedQueries)
	m.schedCounters["fused_passes"].Set(st.FusedPasses)
	m.schedCounters["updates"].Set(st.Updates)
	for i, w := range st.PassWidths {
		m.passWidth.With(metrics.WidthBucketLabel(i)).Set(w)
	}
	m.depth.With().Set(int64(st.Depth))
	m.maxDepth.With().Set(int64(st.MaxDepth))
	m.dbEpoch.With().Set(int64(st.Epoch))
}

// SetDB publishes the loaded database's shape.
func (m *ServerMetrics) SetDB(records int, recordBytes int) {
	if m == nil {
		return
	}
	m.dbRecords.With().Set(int64(records))
	m.dbRecordBytes.With().Set(int64(recordBytes))
}

// MirrorReadiness publishes the readiness tracker as the impir_ready
// gauge. Call from an OnScrape hook.
func (m *ServerMetrics) MirrorReadiness(r *Readiness) {
	if m == nil {
		return
	}
	ok, _ := r.Ready()
	var v int64
	if ok {
		v = 1
	}
	m.ready.With().Set(v)
}

// SchedulerMirrorSample names the scraped sample that mirrors a
// SchedulerStats counter — the loadgen cross-check and tests use it to
// compare scrape values against QueueStats() truth without hand-writing
// exposition strings.
func SchedulerMirrorSample(short string) string {
	return "impir_scheduler_" + short + "_total"
}

// PassWidthSample names the scraped pass-width sample for bucket i.
func PassWidthSample(i int) string {
	return `impir_scheduler_pass_width_total{width="` + metrics.WidthBucketLabel(i) + `"}`
}

// RequestSample names the scraped per-frame request counter sample.
func RequestSample(frame string) string {
	return `impir_requests_total{frame="` + frame + `"}`
}

// StageCountSample names the _count sample of the per-frame, per-stage
// latency histogram.
func StageCountSample(frame, stage string) string {
	return `impir_request_latency_seconds_count{frame="` + frame + `",stage="` + stage + `"}`
}
