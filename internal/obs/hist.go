// Package obs is the operability layer: a zero-dependency (stdlib-only)
// Prometheus text-exposition metrics registry, the admin HTTP endpoint
// serving /metrics, /healthz and /readyz, the shared HDR-style latency
// histogram (one implementation behind both the load generator's
// quantiles and the server's exported latency histograms), and the
// per-query trace context the slow-query log is assembled from.
//
// Everything here observes the PIR machinery from the outside: nothing
// in this package sees a query index, a key, or a selector share — only
// durations, counts and frame types, all of which the wire already
// reveals to the server by construction.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HDR-style latency histogram: log2 major buckets, each split into
// linear sub-buckets, covering 1µs up to ~67s with bounded relative
// error (≤ 1/histSubBuckets per recorded value). Recording is an atomic
// add on one bucket — safe for every worker of the pool concurrently,
// no lock on the hot path — and Snapshot copies the counts out for
// quantile math and interval deltas.
const (
	// histUnit is the recording resolution; everything below records as
	// one unit.
	histUnit = time.Microsecond
	// histSubBuckets is the linear resolution within one power of two.
	histSubBuckets = 32
	// histMaxOctave bounds the dynamic range: 2^26 µs ≈ 67 s. Larger
	// values clamp into the top bucket.
	histMaxOctave = 26
	// histLen: values < 2*histSubBuckets index directly; above that each
	// octave contributes histSubBuckets buckets.
	histLen = 2*histSubBuckets + (histMaxOctave-subBucketBits)*histSubBuckets
	// subBucketBits is log2(histSubBuckets).
	subBucketBits = 5
)

// histIndex maps a value in histUnits to its bucket.
func histIndex(u int64) int {
	if u < 2*histSubBuckets {
		return int(u)
	}
	m := bits.Len64(uint64(u)) // 2^(m-1) <= u < 2^m, m >= 7
	if m > histMaxOctave {
		return histLen - 1
	}
	// Shift the value down so histSubBuckets..2*histSubBuckets-1 linear
	// positions remain within the octave.
	sub := u >> (m - subBucketBits - 1) // in [histSubBuckets, 2*histSubBuckets)
	idx := 2*histSubBuckets + (m-subBucketBits-2)*histSubBuckets + int(sub) - histSubBuckets
	if idx >= histLen {
		return histLen - 1
	}
	return idx
}

// histValue returns a representative value (in histUnits) for a bucket:
// the upper edge, so quantiles never under-report.
func histValue(idx int) int64 {
	if idx < 2*histSubBuckets {
		return int64(idx)
	}
	rel := idx - 2*histSubBuckets
	octave := rel / histSubBuckets // 0-based above the linear range
	sub := rel % histSubBuckets
	base := int64(histSubBuckets+sub) << (octave + 1)
	return base + (int64(1)<<(octave+1) - 1)
}

// Hist records latencies concurrently and lock-free.
type Hist struct {
	counts [histLen]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // histUnits
	max    atomic.Int64 // histUnits
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	u := int64(d / histUnit)
	if u < 0 {
		u = 0
	}
	h.counts[histIndex(u)].Add(1)
	h.total.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			break
		}
	}
}

// Snapshot copies the histogram state for quantile math. Concurrent
// recording keeps going; the snapshot is internally consistent enough
// for reporting (counts may trail total by in-flight adds).
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Max = time.Duration(h.max.Load()) * histUnit
	s.Sum = time.Duration(h.sum.Load()) * histUnit
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is an immutable copy of a Hist.
type HistSnapshot struct {
	counts [histLen]uint64
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// Sub returns the observations recorded between prev and s (both
// snapshots of the same Hist, prev earlier). Max cannot be subtracted;
// the interval Max is approximated by the highest non-empty bucket.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	d.Sum = s.Sum - prev.Sum
	for i := range s.counts {
		c := s.counts[i] - prev.counts[i]
		d.counts[i] = c
		d.Count += c
		if c > 0 {
			d.Max = time.Duration(histValue(i)) * histUnit
		}
	}
	return d
}

// Quantile returns the latency at quantile q in [0,1]. Zero when empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.counts {
		seen += c
		if seen > rank {
			return time.Duration(histValue(i)) * histUnit
		}
	}
	return s.Max
}

// Mean returns the average recorded latency. Zero when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// cumulative walks the snapshot's buckets in order, calling fn with
// each non-empty bucket's upper-edge representative (histUnits) and its
// count. The Prometheus exposition derives its cumulative le buckets
// from this walk, so the exported histogram and the quantile math agree
// on every bucket boundary.
func (s HistSnapshot) cumulative(fn func(upperEdge int64, count uint64)) {
	for i, c := range s.counts {
		if c > 0 {
			fn(histValue(i), c)
		}
	}
}
