package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounter("impir_requests_total", "Requests by frame.", "frame")
	depth := r.NewGauge("impir_queue_depth", "Current queue depth.")
	lat := r.NewHistogram("impir_latency_seconds", "Latency.", nil, "frame")

	reqs.With("query").Add(3)
	reqs.With("batch").Inc()
	depth.With().Set(7)
	lat.With("query").Observe(5 * time.Microsecond)
	lat.With("query").Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# HELP impir_requests_total Requests by frame.",
		"# TYPE impir_requests_total counter",
		`impir_requests_total{frame="query"} 3`,
		`impir_requests_total{frame="batch"} 1`,
		"# TYPE impir_queue_depth gauge",
		"impir_queue_depth 7",
		"# TYPE impir_latency_seconds histogram",
		`impir_latency_seconds_bucket{frame="query",le="+Inf"} 2`,
		`impir_latency_seconds_count{frame="query"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Series order is creation order: query registered before batch.
	if strings.Index(text, `frame="query"} 3`) > strings.Index(text, `frame="batch"} 1`) {
		t.Error("series not in creation order")
	}

	// The exposition round-trips through ParseText.
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if samples[`impir_requests_total{frame="query"}`] != 3 {
		t.Errorf("parsed query counter = %v", samples[`impir_requests_total{frame="query"}`])
	}
	if samples["impir_queue_depth"] != 7 {
		t.Errorf("parsed gauge = %v", samples["impir_queue_depth"])
	}
	if samples[`impir_latency_seconds_count{frame="query"}`] != 2 {
		t.Errorf("parsed histogram count = %v", samples[`impir_latency_seconds_count{frame="query"}`])
	}
}

// TestHistogramBucketsCumulative: le buckets must be non-decreasing,
// every observation below an edge counted by it, and +Inf equal to the
// total count — the invariants a Prometheus scraper assumes.
func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	lat := r.NewHistogram("h_seconds", "h", nil)
	obs := []time.Duration{
		500 * time.Nanosecond, // records as ~1µs
		1 * time.Microsecond,
		100 * time.Microsecond,
		3 * time.Millisecond,
		900 * time.Millisecond,
		80 * time.Second, // clamps into the top bucket
	}
	for _, d := range obs {
		lat.With().Observe(d)
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	edges := LatencyEdges()
	prev := -1.0
	for _, e := range edges {
		le := formatLe(e)
		v, ok := samples[`h_seconds_bucket{le="`+le+`"}`]
		if !ok {
			t.Fatalf("missing bucket le=%s in:\n%s", le, sb.String())
		}
		if v < prev {
			t.Errorf("bucket le=%s count %v < previous %v (not cumulative)", le, v, prev)
		}
		prev = v
		// Independent check: count observations with recorded value ≤ edge.
		var manual float64
		for _, d := range obs {
			u := int64(d / histUnit)
			rep := time.Duration(histValue(histIndex(u))) * histUnit
			if rep <= e {
				manual++
			}
		}
		if v != manual {
			t.Errorf("bucket le=%s = %v, manual recount %v", le, v, manual)
		}
	}
	if inf := samples[`h_seconds_bucket{le="+Inf"}`]; inf != float64(len(obs)) {
		t.Errorf("+Inf bucket = %v, want %d", inf, len(obs))
	}
	if c := samples["h_seconds_count"]; c != float64(len(obs)) {
		t.Errorf("count = %v, want %d", c, len(obs))
	}
	if s := samples["h_seconds_sum"]; s <= 0 {
		t.Errorf("sum = %v, want > 0", s)
	}
}

func formatLe(d time.Duration) string {
	var sb strings.Builder
	r := NewRegistry()
	h := r.NewHistogram("x_seconds", "x", []time.Duration{d})
	h.With().Observe(0)
	if err := r.WriteText(&sb); err != nil {
		panic(err)
	}
	// Extract the le value from the single bucket line.
	text := sb.String()
	i := strings.Index(text, `le="`)
	j := strings.Index(text[i+4:], `"`)
	return text[i+4 : i+4+j]
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c", "path")
	c.With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `c_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing; got:\n%s", sb.String())
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "d")
	for name, fn := range map[string]func(){
		"duplicate name":    func() { r.NewCounter("dup_total", "d") },
		"bad metric name":   func() { r.NewCounter("bad-name", "d") },
		"bad label name":    func() { r.NewCounter("ok_total", "d", "le-gal") },
		"wrong label arity": func() { r.NewCounter("arity_total", "d", "a").With("x", "y") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOnScrapeMirrors(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("m_total", "mirrored")
	var source uint64 = 41
	r.OnScrape(func() { c.With().Set(source) })
	source = 42
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "m_total 42") {
		t.Errorf("scrape hook did not run before render:\n%s", sb.String())
	}
}
