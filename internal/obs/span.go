package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Distributed tracing, client and server halves.
//
// A client operation (Retrieve, RetrieveBatch, Get) opens a root Span
// and hangs child spans off it as the call fans out: one per shard
// sub-query, one per party, one per replica attempt. Each replica
// attempt's span ID doubles as the wire trace context sent to that one
// server — and ONLY that server: no shared trace ID ever crosses a
// party boundary, so colluding servers gain zero linkability beyond
// the timing they already observe. The server joins the propagated
// span ID onto its existing Trace and records the finished trace into
// a TraceRing served as JSON from the admin endpoint; the client keeps
// its own ring of whole span trees. Linking a client attempt span to
// the server-side trace it caused is done by the party-local span ID.

// TraceID identifies one logical client operation. It never leaves the
// client process — only per-party span IDs go on the wire.
type TraceID [16]byte

// SpanID identifies one span. The zero SpanID means "none".
type SpanID [8]byte

// NewTraceID draws a random trace ID.
func NewTraceID() TraceID {
	var id TraceID
	fillRand(id[:])
	return id
}

// NewSpanID draws a random, non-zero span ID. IDs are drawn
// independently from the process CSPRNG: two IDs reveal nothing about
// each other, which is what lets one client operation hand every party
// a fresh ID without creating cross-party linkability.
func NewSpanID() SpanID {
	var id SpanID
	fillRand(id[:])
	if id == (SpanID{}) {
		id[7] = 1
	}
	return id
}

// fillRand fills b from crypto/rand, falling back to a time-derived
// pattern if the system randomness source is unreadable (IDs must be
// unpredictable for privacy, but a broken entropy source should degrade
// tracing, not crash the query path).
func fillRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		now := uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(now >> (8 * (i % 8)))
		}
	}
}

// String renders the ID as lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports the "none" span ID.
func (id SpanID) IsZero() bool { return id == (SpanID{}) }

// Uint64 returns the ID's little-endian integer value — the form that
// travels in the wire trace context.
func (id SpanID) Uint64() uint64 { return binary.LittleEndian.Uint64(id[:]) }

// SpanIDFromUint64 is Uint64's inverse.
func SpanIDFromUint64(v uint64) SpanID {
	var id SpanID
	binary.LittleEndian.PutUint64(id[:], v)
	return id
}

// Sampler is a deterministic head sampler: whether an ID is sampled is
// a pure function of the ID, so the decision is reproducible and
// uniformly distributed because IDs are. The zero Sampler samples
// nothing.
type Sampler struct {
	all       bool
	threshold uint64 // sample when the ID's integer value < threshold
}

// NewSampler builds a sampler keeping the given fraction of IDs:
// rate ≤ 0 samples nothing, rate ≥ 1 samples everything.
func NewSampler(rate float64) Sampler {
	if rate >= 1 {
		return Sampler{all: true}
	}
	if rate <= 0 || math.IsNaN(rate) {
		return Sampler{}
	}
	t := math.Ldexp(rate, 64) // rate × 2^64
	if t >= math.Ldexp(1, 64) {
		return Sampler{all: true}
	}
	return Sampler{threshold: uint64(t)}
}

// Enabled reports whether the sampler can ever sample.
func (s Sampler) Enabled() bool { return s.all || s.threshold > 0 }

func (s Sampler) sample(x uint64) bool {
	if s.all {
		return true
	}
	return x < s.threshold
}

// SampleTrace decides the head-sampling of a client operation.
func (s Sampler) SampleTrace(id TraceID) bool {
	return s.sample(binary.LittleEndian.Uint64(id[8:]))
}

// SampleSpan decides the head-sampling of a server-local span.
func (s Sampler) SampleSpan(id SpanID) bool { return s.sample(id.Uint64()) }

// Attr is one span attribute.
type Attr struct{ Key, Value string }

// Span is one timed node of a trace tree. All methods are safe on a
// nil receiver and do nothing — an unsampled operation carries a nil
// span through the whole call path at zero allocation — and safe for
// concurrent use: fan-out goroutines attach children and attributes to
// a shared parent, and a hedge loser may still be ending its span
// while the finished tree is being serialised from the ring.
type Span struct {
	mu       sync.Mutex
	traceID  TraceID // zero for server-side (party-local) spans
	id       SpanID
	name     string
	start    time.Time
	duration time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// NewRootSpan opens the root span of a client operation, started now.
func NewRootSpan(traceID TraceID, name string) *Span {
	return &Span{traceID: traceID, id: NewSpanID(), name: name, start: time.Now()}
}

// StartChild opens a child span with a fresh random ID, started now.
// On a nil receiver it returns nil, so an unsampled path needs no
// checks anywhere below the root.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{traceID: s.traceID, id: NewSpanID(), name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration. Ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.duration = time.Since(s.start)
	}
	s.mu.Unlock()
}

// endAt closes a reconstructed span with an explicit duration.
func (s *Span) endAt(d time.Duration) {
	s.mu.Lock()
	s.ended = true
	s.duration = d
	s.mu.Unlock()
}

// SetAttr sets (or overwrites) one attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetAttrInt sets an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetAttrBool sets a boolean attribute.
func (s *Span) SetAttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}

// ID returns the span's ID (zero on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Duration returns the stamped duration (0 while the span is open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duration
}

// SpanSnapshot is an immutable, stdlib-typed copy of a span tree, for
// in-process consumers (tests, the load generator's artifact).
type SpanSnapshot struct {
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	DurUS    int64             `json:"dur_us"`
	Open     bool              `json:"open,omitempty"` // still running when snapshotted
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanSnapshot    `json:"children,omitempty"`
}

// Attr returns one attribute's value.
func (sn SpanSnapshot) Attr(key string) (string, bool) {
	v, ok := sn.Attrs[key]
	return v, ok
}

// Snapshot copies the span tree. Safe while descendants are still
// running (they snapshot as Open).
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	sn := SpanSnapshot{
		SpanID: s.id.String(),
		Name:   s.name,
		Start:  s.start,
		DurUS:  s.duration.Microseconds(),
		Open:   !s.ended,
	}
	if s.traceID != (TraceID{}) {
		sn.TraceID = s.traceID.String()
	}
	if len(s.attrs) > 0 {
		sn.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			sn.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		sn.Children = append(sn.Children, c.Snapshot())
	}
	return sn
}

// MarshalJSON serialises the span tree, locking each node as it copies
// it — the ring may serve a tree whose hedge-loser leaves are still
// being ended.
func (s *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}

// DefaultTraceRingSize is the ring capacity when none is configured.
const DefaultTraceRingSize = 256

// TraceRing is a lock-protected ring buffer of recently finished trace
// roots, newest evicting oldest. It is an http.Handler serving the ring
// as a JSON array (newest first); the query parameter min_ms filters to
// traces at least that many milliseconds long.
type TraceRing struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	total uint64
}

// NewTraceRing builds a ring holding up to capacity traces
// (0 or negative means DefaultTraceRingSize).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRingSize
	}
	return &TraceRing{buf: make([]*Span, capacity)}
}

// Add records one finished trace, evicting the oldest when full.
// Nil rings and nil spans are no-ops.
func (r *TraceRing) Add(s *Span) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Len reports how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.total)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	return n
}

// Snapshot returns the held traces newest-first, keeping only those
// with a stamped duration of at least min.
func (r *TraceRing) Snapshot(min time.Duration) []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := int(r.total)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]*Span, 0, n)
	for i := 0; i < n; i++ {
		s := r.buf[((r.next-1-i)%len(r.buf)+len(r.buf))%len(r.buf)]
		out = append(out, s)
	}
	r.mu.Unlock()
	if min > 0 {
		kept := out[:0]
		for _, s := range out {
			if s.Duration() >= min {
				kept = append(kept, s)
			}
		}
		out = kept
	}
	return out
}

// ServeHTTP serves the ring as JSON: GET /debug/traces?min_ms=N.
func (r *TraceRing) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var min time.Duration
	if v := req.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 || math.IsNaN(ms) {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		min = time.Duration(ms * float64(time.Millisecond))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	spans := r.Snapshot(min)
	if spans == nil {
		spans = []*Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spans)
}

type spanKey struct{}

// ContextWithSpan returns ctx carrying s for layers below to attach
// children to. A nil span returns ctx unchanged (no allocation).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

type opAttrsKey struct{}

// ContextWithOpAttrs returns ctx carrying attributes for the NEXT root
// span opened below — the seam that lets a layer sitting above the
// store (the keyword client annotating its probe counts) label an
// operation whose root span is only opened inside the store's
// interceptor chain.
func ContextWithOpAttrs(ctx context.Context, attrs ...Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	if prev := OpAttrsFromContext(ctx); len(prev) > 0 {
		attrs = append(append([]Attr(nil), prev...), attrs...)
	}
	return context.WithValue(ctx, opAttrsKey{}, attrs)
}

// OpAttrsFromContext returns the pending root-span attributes, or nil.
func OpAttrsFromContext(ctx context.Context) []Attr {
	a, _ := ctx.Value(opAttrsKey{}).([]Attr)
	return a
}
