package obs

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/impir/impir/internal/metrics"
)

// Trace accumulates per-query stage timings as one request moves
// transport→scheduler→engine. The transport allocates it, the scheduler
// fills the dispatch-side fields, and the transport renders it as a
// structured one-line log when the total crosses the slow-query
// threshold.
//
// Publication discipline: the scheduler writes these fields before
// completing the request, and the transport reads them only after a
// successful wait (the done-channel close orders the accesses). A
// request that errored or was abandoned mid-pass must not have its
// trace read — the fields may still be in flight.
type Trace struct {
	// Frame is the wire frame type ("query", "batch", ...).
	Frame string
	// Shard labels the serving shard ("" when unsharded).
	Shard string
	// Start is when the transport began dispatching the frame.
	Start time.Time
	// Total is end-to-end dispatch time, set by the transport.
	Total time.Duration
	// QueueWait is time spent in the admission queue before a pass.
	QueueWait time.Duration
	// Engine is the engine pass duration (shared by every request the
	// pass served).
	Engine time.Duration
	// PassWidth is how many requests the serving engine pass carried.
	PassWidth int
	// Fused reports the pass ran as a fused one-pass scan.
	Fused bool
	// Breakdown is the engine's per-phase accounting for this request.
	Breakdown metrics.Breakdown
}

// String renders the trace as one structured log line (logfmt-style
// key=value pairs), e.g.:
//
//	frame=query shard=0 total=1.2ms queue=300µs engine=850µs width=4 fused=true phases[Eval=400µs dpXOR=380µs]
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "frame=%s", t.Frame)
	if t.Shard != "" {
		fmt.Fprintf(&sb, " shard=%s", t.Shard)
	}
	fmt.Fprintf(&sb, " total=%v queue=%v engine=%v width=%d fused=%t",
		metrics.RoundDuration(t.Total), metrics.RoundDuration(t.QueueWait),
		metrics.RoundDuration(t.Engine), t.PassWidth, t.Fused)
	if bd := t.Breakdown.String(); bd != "" {
		fmt.Fprintf(&sb, " phases[%s]", bd)
	}
	return sb.String()
}

type traceKey struct{}

// NewContext returns ctx carrying t for the scheduler to fill.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
