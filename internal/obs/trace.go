package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/impir/impir/internal/metrics"
)

// Trace accumulates per-query stage timings as one request moves
// transport→scheduler→engine. The transport allocates it, the scheduler
// fills the dispatch-side fields, and the transport renders it as a
// structured one-line log when the total crosses the slow-query
// threshold.
//
// Publication discipline: the scheduler writes these fields before
// completing the request, and the transport reads them only after a
// successful wait (the done-channel close orders the accesses). A
// request that errored or was abandoned mid-pass must not have its
// trace read — the fields may still be in flight.
type Trace struct {
	// Frame is the wire frame type ("query", "batch", ...).
	Frame string
	// Shard labels the serving shard ("" when unsharded).
	Shard string
	// Start is when the transport began dispatching the frame.
	Start time.Time
	// Total is end-to-end dispatch time, set by the transport.
	Total time.Duration
	// QueueWait is time spent in the admission queue before a pass.
	QueueWait time.Duration
	// Engine is the engine pass duration (shared by every request the
	// pass served).
	Engine time.Duration
	// PassWidth is how many requests the serving engine pass carried.
	PassWidth int
	// Fused reports the pass ran as a fused one-pass scan.
	Fused bool
	// Breakdown is the engine's per-phase accounting for this request.
	Breakdown metrics.Breakdown
	// SpanID is the party-local trace identifier: joined from the
	// client's wire trace context when the query carried one, freshly
	// generated otherwise. It is stamped into the slow-query log line
	// and identifies this trace in the server's ring buffer — the link a
	// client span tree uses to find the server-side half of an attempt.
	SpanID SpanID
	// Sampled marks the trace for the server's ring buffer regardless
	// of the slow-query threshold (head-sampled by the client or by the
	// server's own sampler).
	Sampled bool
}

// String renders the trace as one structured log line (logfmt-style
// key=value pairs), e.g.:
//
//	frame=query shard=0 total=1.2ms queue=300µs engine=850µs width=4 fused=true phases[Eval=400µs dpXOR=380µs]
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "frame=%s", t.Frame)
	if t.Shard != "" {
		fmt.Fprintf(&sb, " shard=%s", t.Shard)
	}
	if !t.SpanID.IsZero() {
		fmt.Fprintf(&sb, " trace_id=%s", t.SpanID)
	}
	fmt.Fprintf(&sb, " total=%v queue=%v engine=%v width=%d fused=%t",
		metrics.RoundDuration(t.Total), metrics.RoundDuration(t.QueueWait),
		metrics.RoundDuration(t.Engine), t.PassWidth, t.Fused)
	if bd := t.Breakdown.String(); bd != "" {
		fmt.Fprintf(&sb, " phases[%s]", bd)
	}
	return sb.String()
}

// traceJSON is the structured rendering of one slow-query/trace line.
type traceJSON struct {
	Msg      string             `json:"msg"`
	TS       string             `json:"ts"`
	Frame    string             `json:"frame"`
	Shard    string             `json:"shard,omitempty"`
	TraceID  string             `json:"trace_id,omitempty"`
	TotalUS  int64              `json:"total_us"`
	QueueUS  int64              `json:"queue_us"`
	EngineUS int64              `json:"engine_us"`
	Width    int                `json:"width"`
	Fused    bool               `json:"fused"`
	Phases   map[string]float64 `json:"phases_us,omitempty"`
}

// JSON renders the trace as one single-line JSON object carrying the
// same fields as String, for log pipelines that ingest structured
// lines without regex. The timestamp is the dispatch start.
func (t *Trace) JSON() []byte {
	v := traceJSON{
		Msg:      "slow_query",
		TS:       t.Start.Format(time.RFC3339Nano),
		Frame:    t.Frame,
		Shard:    t.Shard,
		TotalUS:  t.Total.Microseconds(),
		QueueUS:  t.QueueWait.Microseconds(),
		EngineUS: t.Engine.Microseconds(),
		Width:    t.PassWidth,
		Fused:    t.Fused,
	}
	if !t.SpanID.IsZero() {
		v.TraceID = t.SpanID.String()
	}
	for i := 0; i < metrics.NumPhases; i++ {
		if w := t.Breakdown.Wall[i]; w > 0 {
			if v.Phases == nil {
				v.Phases = make(map[string]float64)
			}
			v.Phases[metrics.Phase(i).String()] = float64(w) / float64(time.Microsecond)
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"msg":"slow_query"}`)
	}
	return b
}

// Span converts a completed trace into a span tree for the server's
// ring buffer: a root span under the party-local ID with queue and
// engine stage children (the engine child carries the per-phase wall
// times as attributes). Call only after the request completed
// successfully — the same publication discipline as reading any other
// Trace field.
func (t *Trace) Span() *Span {
	id := t.SpanID
	if id.IsZero() {
		id = NewSpanID()
	}
	root := &Span{id: id, name: "server." + t.Frame, start: t.Start}
	if t.Shard != "" {
		root.SetAttr("shard", t.Shard)
	}
	root.SetAttrInt("width", int64(t.PassWidth))
	root.SetAttrBool("fused", t.Fused)
	queue := &Span{id: NewSpanID(), name: "queue", start: t.Start}
	queue.endAt(t.QueueWait)
	// The engine pass starts when the queue wait ends — exact for solo
	// passes, within the coalescing window for fused ones.
	eng := &Span{id: NewSpanID(), name: "engine", start: t.Start.Add(t.QueueWait)}
	for i := 0; i < metrics.NumPhases; i++ {
		if w := t.Breakdown.Wall[i]; w > 0 {
			eng.SetAttr(metrics.Phase(i).String(), w.String())
		}
	}
	eng.endAt(t.Engine)
	root.children = []*Span{queue, eng}
	root.endAt(t.Total)
	return root
}

type traceKey struct{}

// NewContext returns ctx carrying t for the scheduler to fill.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
