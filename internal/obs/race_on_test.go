//go:build race

package obs

// raceEnabled lets allocation-count assertions skip themselves under
// the race detector, whose instrumentation perturbs them.
const raceEnabled = true
