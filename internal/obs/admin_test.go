package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestReadinessConditions(t *testing.T) {
	r := NewReadiness()
	if ok, failing := r.Ready(); !ok || failing != nil {
		t.Fatalf("empty tracker: ready=%v failing=%v, want vacuously ready", ok, failing)
	}

	r.Register("db-loaded")
	r.Register("serving")
	ok, failing := r.Ready()
	if ok {
		t.Fatal("registered conditions must default to not ready")
	}
	if want := []string{"db-loaded", "serving"}; len(failing) != 2 || failing[0] != want[0] || failing[1] != want[1] {
		t.Fatalf("failing = %v, want %v (sorted)", failing, want)
	}

	r.Set("db-loaded", true)
	r.Set("serving", true)
	if ok, _ := r.Ready(); !ok {
		t.Fatal("all conditions set, still not ready")
	}

	// Setting an unregistered name registers it.
	r.Set("update-quiesce", false)
	if ok, failing := r.Ready(); ok || failing[0] != "update-quiesce" {
		t.Fatalf("ready=%v failing=%v after Set of new condition", ok, failing)
	}

	// A nil tracker is always ready and Set is a no-op.
	var nilR *Readiness
	nilR.Set("x", false)
	if ok, _ := nilR.Ready(); !ok {
		t.Fatal("nil tracker must be ready")
	}
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("test_requests_total", "Test counter.").With().Add(3)
	ready := NewReadiness()
	ready.Register("db-loaded")

	a := NewAdmin(reg, ready)
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, _ := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before conditions hold = %d, want 503", code)
	}
	if !strings.Contains(body, "not ready: db-loaded") {
		t.Errorf("/readyz body %q must name the failing condition", body)
	}

	ready.Set("db-loaded", true)
	if code, body, _ := get("/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/readyz after conditions hold = %d %q", code, body)
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	if !strings.Contains(body, "test_requests_total 3") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}
}

func TestAdminTraceAndPprofEndpoints(t *testing.T) {
	ring := NewTraceRing(4)
	s := NewRootSpan(NewTraceID(), "server.query")
	s.endAt(7 * time.Millisecond)
	ring.Add(s)

	// Default admin: no ring mounted, pprof off.
	bare := httptest.NewServer(NewAdmin(NewRegistry(), nil).Handler())
	defer bare.Close()
	for _, path := range []string{"/debug/traces", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("bare admin %s = %d, want 404", path, resp.StatusCode)
		}
	}

	full := httptest.NewServer(NewAdmin(NewRegistry(), nil, WithTraceRing(ring), WithPprof()).Handler())
	defer full.Close()

	resp, err := http.Get(full.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces = %d", resp.StatusCode)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal(body, &spans); err != nil {
		t.Fatalf("/debug/traces body not JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Name != "server.query" {
		t.Fatalf("/debug/traces served %+v, want the ringed trace", spans)
	}

	// min_ms filters through the mounted handler too.
	resp, err = http.Get(full.URL + "/debug/traces?min_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &spans); err != nil || len(spans) != 0 {
		t.Fatalf("min_ms=100 served %s (err %v), want []", body, err)
	}

	resp, err = http.Get(full.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline with WithPprof = %d, want 200", resp.StatusCode)
	}
}

func TestAdminServeAndShutdown(t *testing.T) {
	a := NewAdmin(NewRegistry(), nil)
	if got := a.Addr(); got != "" {
		t.Fatalf("Addr before Serve = %q, want empty", got)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Serve(lis) }()

	// Nil readiness: always ready.
	url := "http://" + lis.Addr().String() + "/readyz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/readyz = %d with nil readiness", resp.StatusCode)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admin endpoint never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if a.Addr() == "" {
		t.Error("Addr empty while serving")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}
