package obs

import (
	"testing"
	"time"
)

// TestHistIndexMonotone: the bucket index must be monotone in the value
// and every bucket's representative must bound the values mapped to it
// from above (quantiles never under-report).
func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for u := int64(0); u < 1<<20; u = u*5/4 + 1 {
		idx := histIndex(u)
		if idx < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d", u, idx, prev)
		}
		if idx >= histLen {
			t.Fatalf("histIndex(%d) = %d out of range", u, idx)
		}
		if rep := histValue(idx); rep < u {
			t.Fatalf("histValue(%d) = %d under-reports value %d", idx, rep, u)
		}
		prev = idx
	}
	// The relative error of the representative stays bounded by the
	// sub-bucket resolution.
	for _, u := range []int64{100, 1000, 10_000, 100_000, 1_000_000} {
		rep := histValue(histIndex(u))
		if float64(rep-u) > float64(u)/(histSubBuckets/2) {
			t.Errorf("value %d maps to representative %d: relative error too big", u, rep)
		}
	}
	// Values past the top octave clamp instead of overflowing.
	if idx := histIndex(1 << 40); idx != histLen-1 {
		t.Errorf("huge value mapped to %d, want top bucket %d", idx, histLen-1)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1000 observations: 1ms, 2ms, ..., 1000ms.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := s.Quantile(q)
		// Histogram resolution: within one sub-bucket of the true value.
		if got < want || float64(got-want) > float64(want)/(histSubBuckets/2)+float64(histUnit) {
			t.Errorf("Quantile(%v) = %v, want ≈%v (never below)", q, got, want)
		}
	}
	check(0.50, 500*time.Millisecond)
	check(0.90, 900*time.Millisecond)
	check(0.99, 990*time.Millisecond)
	if s.Max != 1000*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	mean := s.Mean()
	if mean < 495*time.Millisecond || mean > 506*time.Millisecond {
		t.Errorf("Mean = %v, want ≈500ms", mean)
	}

	// An interval delta holds exactly the observations between snapshots.
	for i := 0; i < 100; i++ {
		h.Record(5 * time.Second)
	}
	d := h.Snapshot().Sub(s)
	if d.Count != 100 {
		t.Errorf("delta count = %d, want 100", d.Count)
	}
	if q := d.Quantile(0.5); q < 5*time.Second {
		t.Errorf("delta median %v under-reports the 5s burst", q)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Errorf("empty histogram not zero: %+v", s)
	}
}

// TestHistCumulative: the cumulative walk visits every non-empty bucket
// in ascending representative order and its counts sum to Count — the
// invariant the Prometheus exposition's le buckets are built on.
func TestHistCumulative(t *testing.T) {
	var h Hist
	for _, d := range []time.Duration{
		3 * time.Microsecond, 3 * time.Microsecond, 900 * time.Microsecond,
		12 * time.Millisecond, 7 * time.Second,
	} {
		h.Record(d)
	}
	s := h.Snapshot()
	var (
		total    uint64
		prevEdge = int64(-1)
	)
	s.cumulative(func(edge int64, count uint64) {
		if edge <= prevEdge {
			t.Fatalf("cumulative edge %d not increasing past %d", edge, prevEdge)
		}
		prevEdge = edge
		total += count
	})
	if total != s.Count {
		t.Fatalf("cumulative total %d != count %d", total, s.Count)
	}
}
