package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/impir/impir/internal/metrics"
)

func TestTraceString(t *testing.T) {
	tr := &Trace{
		Frame:     "query",
		Shard:     "0",
		Total:     1200 * time.Microsecond,
		QueueWait: 300 * time.Microsecond,
		Engine:    850 * time.Microsecond,
		PassWidth: 4,
		Fused:     true,
	}
	got := tr.String()
	for _, want := range []string{
		"frame=query", "shard=0", "total=1.2ms", "queue=300µs",
		"engine=850µs", "width=4", "fused=true",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace %q missing %q", got, want)
		}
	}
	if strings.Contains(got, "phases[") {
		t.Errorf("trace %q renders an empty phase breakdown", got)
	}

	// Unsharded traces omit the shard key entirely; a populated
	// breakdown shows up as phases[...].
	tr2 := &Trace{Frame: "batch", Total: time.Millisecond}
	tr2.Breakdown.AddPhase(metrics.PhaseEval, 400*time.Microsecond, 400*time.Microsecond)
	got2 := tr2.String()
	if strings.Contains(got2, "shard=") {
		t.Errorf("unsharded trace %q must not carry a shard key", got2)
	}
	if !strings.Contains(got2, "phases[Eval=400µs]") {
		t.Errorf("trace %q missing phase breakdown", got2)
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
	tr := &Trace{Frame: "query"}
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}
