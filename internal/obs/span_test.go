package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeSnapshot(t *testing.T) {
	root := NewRootSpan(NewTraceID(), "client.retrieve")
	root.SetAttr("op", "retrieve")
	root.SetAttrInt("batch_size", 4)
	root.SetAttrBool("sampled", true)

	party := root.StartChild("party")
	att := party.StartChild("attempt")
	att.End()
	party.End()
	root.End()

	sn := root.Snapshot()
	if sn.Name != "client.retrieve" || sn.TraceID == "" || sn.SpanID == "" {
		t.Fatalf("root snapshot missing identity: %+v", sn)
	}
	if sn.Open {
		t.Fatalf("ended root snapshots as open")
	}
	if v, _ := sn.Attr("batch_size"); v != "4" {
		t.Fatalf("batch_size attr = %q, want 4", v)
	}
	if len(sn.Children) != 1 || len(sn.Children[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", sn)
	}
	child := sn.Children[0]
	if child.TraceID != sn.TraceID {
		t.Fatalf("child trace ID %q != root %q", child.TraceID, sn.TraceID)
	}
	if child.SpanID == sn.SpanID {
		t.Fatalf("child reused root span ID %q", child.SpanID)
	}
	if _, err := json.Marshal(root); err != nil {
		t.Fatalf("marshal span tree: %v", err)
	}
}

func TestSpanEndKeepsFirstStamp(t *testing.T) {
	s := NewRootSpan(NewTraceID(), "op")
	s.endAt(5 * time.Millisecond)
	s.End() // second end must not re-stamp
	if d := s.Duration(); d != 5*time.Millisecond {
		t.Fatalf("duration after double end = %v, want 5ms", d)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	if c := s.StartChild("child"); c != nil {
		t.Fatalf("nil.StartChild returned %v, want nil", c)
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.SetAttrBool("b", true)
	s.End()
	if !s.ID().IsZero() || s.Duration() != 0 {
		t.Fatalf("nil span leaked identity or duration")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if ctx != context.Background() {
		t.Fatalf("ContextWithSpan(nil) allocated a new context")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("SpanFromContext on empty ctx = %v, want nil", got)
	}
}

func TestNilPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		var s *Span
		c := s.StartChild("child")
		c.SetAttr("k", "v")
		c.End()
		_ = ContextWithSpan(ctx, nil)
		_ = SpanFromContext(ctx)
	})
	if allocs != 0 {
		t.Fatalf("nil-span path allocates %.1f/op, want 0", allocs)
	}
}

func TestSamplerRateZeroAndOne(t *testing.T) {
	var never Sampler // zero value
	always := NewSampler(1)
	if never.Enabled() || NewSampler(0).Enabled() || NewSampler(-1).Enabled() {
		t.Fatalf("rate ≤ 0 sampler reports Enabled")
	}
	if !always.Enabled() || !NewSampler(2).Enabled() {
		t.Fatalf("rate ≥ 1 sampler reports disabled")
	}
	for i := 0; i < 256; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if never.SampleTrace(tid) || never.SampleSpan(sid) {
			t.Fatalf("rate-0 sampler sampled an ID")
		}
		if !always.SampleTrace(tid) || !always.SampleSpan(sid) {
			t.Fatalf("rate-1 sampler dropped an ID")
		}
	}
}

func TestSamplerFractionalDeterministic(t *testing.T) {
	s := NewSampler(0.25)
	// Deterministic: the decision is a pure function of the ID.
	for i := 0; i < 64; i++ {
		id := NewSpanID()
		first := s.SampleSpan(id)
		for rep := 0; rep < 4; rep++ {
			if s.SampleSpan(id) != first {
				t.Fatalf("sampling decision for %s flapped", id)
			}
		}
	}
	// Uniform over evenly spaced IDs: exactly the low quarter of the
	// uint64 space is under the threshold.
	const n = 1 << 12
	sampled := 0
	for i := uint64(0); i < n; i++ {
		if s.SampleSpan(SpanIDFromUint64(i << 52)) { // spread across the space
			sampled++
		}
	}
	if got, want := sampled, n/4; got != want {
		t.Fatalf("rate 0.25 sampled %d of %d evenly spaced IDs, want %d", got, n, want)
	}
}

func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		s := NewRootSpan(NewTraceID(), "op"+strconv.Itoa(i))
		s.End()
		r.Add(s)
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", r.Len())
	}
	got := r.Snapshot(0)
	want := []string{"op5", "op4", "op3", "op2"} // newest first, oldest evicted
	if len(got) != len(want) {
		t.Fatalf("snapshot holds %d spans, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Snapshot().Name != want[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, s.Snapshot().Name, want[i])
		}
	}
}

func TestTraceRingMinFilter(t *testing.T) {
	r := NewTraceRing(8)
	for i, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		s := NewRootSpan(NewTraceID(), "op"+strconv.Itoa(i))
		s.endAt(d)
		r.Add(s)
	}
	got := r.Snapshot(3 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("min filter kept %d spans, want 2", len(got))
	}
	if got[0].Snapshot().Name != "op2" || got[1].Snapshot().Name != "op1" {
		t.Fatalf("min filter kept wrong spans: %s, %s", got[0].Snapshot().Name, got[1].Snapshot().Name)
	}
}

func TestTraceRingServeHTTP(t *testing.T) {
	r := NewTraceRing(8)

	// Empty ring serves an empty array, not null.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("empty ring: HTTP %d", rec.Code)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil || spans == nil || len(spans) != 0 {
		t.Fatalf("empty ring body %q: err=%v parsed=%v", rec.Body.String(), err, spans)
	}

	slow := NewRootSpan(NewTraceID(), "slow")
	slow.endAt(20 * time.Millisecond)
	fast := NewRootSpan(NewTraceID(), "fast")
	fast.endAt(time.Millisecond)
	r.Add(slow)
	r.Add(fast)

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=10", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("parse filtered body: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "slow" {
		t.Fatalf("min_ms=10 served %+v, want just the slow trace", spans)
	}
	if spans[0].DurUS != 20_000 {
		t.Fatalf("dur_us = %d, want 20000", spans[0].DurUS)
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min_ms: HTTP %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=-1", nil))
	if rec.Code != 400 {
		t.Fatalf("negative min_ms: HTTP %d, want 400", rec.Code)
	}
}

// TestTraceRingConcurrent hammers the ring from writer goroutines while
// readers serve it over HTTP — the shape the admin endpoint sees in
// production. Run with -race; the assertions are secondary to the
// detector.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	const writers, readers, perWriter = 4, 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := NewRootSpan(NewTraceID(), fmt.Sprintf("w%d.%d", w, i))
				c := s.StartChild("leaf")
				s.End()
				r.Add(s)
				// A hedge loser may end its child AFTER the tree is in
				// the ring and being serialised.
				c.SetAttr("outcome", "lost")
				c.End()
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
				var spans []SpanSnapshot
				if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
					t.Errorf("concurrent read: bad JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("full ring holds %d, want its capacity 16", r.Len())
	}
}

func TestOpAttrsContext(t *testing.T) {
	ctx := ContextWithOpAttrs(context.Background(), Attr{Key: "kv_keys", Value: "3"})
	ctx = ContextWithOpAttrs(ctx, Attr{Key: "kv_probes", Value: "9"})
	got := OpAttrsFromContext(ctx)
	if len(got) != 2 || got[0].Key != "kv_keys" || got[1].Value != "9" {
		t.Fatalf("op attrs = %+v", got)
	}
	if OpAttrsFromContext(context.Background()) != nil {
		t.Fatalf("empty ctx returned op attrs")
	}
}
