package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). It is deliberately small:
// counters, gauges and latency histograms with labels, deterministic
// output order (families in registration order, series in creation
// order), and scrape hooks for mirroring counters whose source of truth
// lives elsewhere (the scheduler's atomics, a store's Stats snapshot).
// Registration is fallible only for programmer errors, which panic —
// metric declaration is init-time code, not a runtime path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]bool
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// OnScrape registers fn to run at the start of every exposition, before
// any family is rendered. Use it to copy externally owned cumulative
// counters (scheduler atomics, store stats) into mirror metrics, so the
// scrape and the in-process snapshot can never disagree about what the
// counters were.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// family is one named metric with a fixed label arity and a series per
// distinct label-value tuple.
type family struct {
	name, help, typ string
	labelNames      []string

	mu     sync.Mutex
	order  []string
	series map[string]any // *Counter | *Gauge | *Histogram
}

func (r *Registry) register(name, help, typ string, labelNames []string) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labelNames {
		if !validLabelName(l) {
			panic("obs: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = true
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames,
		series:     make(map[string]any),
	}
	r.families = append(r.families, f)
	return f
}

// with returns (creating on first use) the series for the given label
// values, preserving creation order for deterministic exposition.
func (f *family) with(labelValues []string, mk func() any) any {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing series. Set exists for mirror
// counters whose source of truth is an external monotone counter (the
// scheduler's atomics); never use it to move a counter backwards.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the counter with a snapshot of its external source.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// NewCounter registers a counter family with the given label names. A
// label-less counter has no label names and is addressed With().
func (r *Registry) NewCounter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labelNames)}
}

// With returns the series for the label values, creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.with(labelValues, func() any { return new(Counter) }).(*Counter)
}

// Gauge is a series that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// NewGauge registers a gauge family with the given label names.
func (r *Registry) NewGauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labelNames)}
}

// With returns the series for the label values, creating it on first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.with(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram is a latency distribution backed by the shared HDR Hist —
// the same implementation the load generator computes quantiles from —
// exported as a Prometheus histogram whose le edges are drawn from the
// HDR bucket boundaries (exact cumulative counts, no re-binning error).
type Histogram struct {
	h     Hist
	edges []int64 // exposition upper bounds, histUnits, ascending
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) { h.h.Record(d) }

// Snapshot exposes the backing HDR histogram's snapshot, so in-process
// consumers get the identical quantile math the exposition is built on.
func (h *Histogram) Snapshot() HistSnapshot { return h.h.Snapshot() }

// HistogramVec is a labelled histogram family.
type HistogramVec struct {
	f     *family
	edges []int64
}

// LatencyEdges returns the default exposition bucket bounds for latency
// histograms: every power of two from 1µs to the HDR range's 2^26µs
// (~67s) ceiling. The bounds sit exactly on HDR octave boundaries, so
// each cumulative bucket is an exact count, not an interpolation.
func LatencyEdges() []time.Duration {
	out := make([]time.Duration, 0, histMaxOctave+1)
	for k := 0; k <= histMaxOctave; k++ {
		out = append(out, time.Duration(int64(1)<<k)*histUnit)
	}
	return out
}

// NewHistogram registers a histogram family. edges are the exposition
// upper bounds in ascending order; nil means LatencyEdges.
func (r *Registry) NewHistogram(name, help string, edges []time.Duration, labelNames ...string) *HistogramVec {
	if edges == nil {
		edges = LatencyEdges()
	}
	units := make([]int64, len(edges))
	for i, e := range edges {
		u := int64(e / histUnit)
		if i > 0 && u <= units[i-1] {
			panic("obs: histogram edges for " + name + " must be strictly ascending")
		}
		units[i] = u
	}
	return &HistogramVec{f: r.register(name, help, "histogram", labelNames), edges: units}
}

// With returns the series for the label values, creating it on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.with(labelValues, func() any {
		return &Histogram{edges: v.edges}
	}).(*Histogram)
}

// WriteText renders every family in the Prometheus text exposition
// format, version 0.0.4. Output is deterministic: families in
// registration order, series in creation order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string{}, f.order...)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for i, key := range keys {
			labelValues := strings.Split(key, "\xff")
			if key == "" && len(f.labelNames) == 0 {
				labelValues = nil
			}
			writeSeries(bw, f, labelValues, series[i])
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, labelValues []string, s any) {
	switch m := s.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labelNames, labelValues, "", ""), m.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labelNames, labelValues, "", ""), m.Value())
	case *Histogram:
		snap := m.h.Snapshot()
		// One merged walk: HDR buckets ascend, edges ascend; every HDR
		// bucket whose upper-edge representative is ≤ the current le edge
		// belongs to it cumulatively.
		var cum uint64
		ei := 0
		emit := func() {
			le := strconv.FormatFloat(float64(m.edges[ei])/1e6, 'g', -1, 64)
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, labelValues, "le", le), cum)
			ei++
		}
		snap.cumulative(func(edge int64, count uint64) {
			for ei < len(m.edges) && m.edges[ei] < edge {
				emit()
			}
			cum += count
		})
		for ei < len(m.edges) {
			emit()
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, labelValues, "le", "+Inf"), snap.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelNames, labelValues, "", ""),
			strconv.FormatFloat(snap.Sum.Seconds(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelNames, labelValues, "", ""), snap.Count)
	}
}

// labelString renders {a="x",b="y"} with an optional extra label (le)
// appended; empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ParseText parses a text exposition (as produced by WriteText or any
// Prometheus client) into a flat map from sample name — including the
// rendered label set, exactly as exposed — to value. Comments and blank
// lines are skipped. It exists for cross-checking a scrape against
// in-process truth (loadgen, tests); it is not a general Prometheus
// parser.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		name := strings.TrimSpace(line[:sp])
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad sample value in %q: %w", line, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("obs: duplicate series %q", name)
		}
		out[name] = v
	}
	return out, sc.Err()
}

// SortedSampleNames returns the sample names of a parsed exposition in
// sorted order — convenience for deterministic test output.
func SortedSampleNames(samples map[string]float64) []string {
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
