package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Readiness tracks named boolean conditions; the process is ready only
// when every registered condition holds. Conditions default to false at
// registration — a server is unready until it proves otherwise
// (database loaded, listener accepting), and flips unready again around
// update quiesces and at drain start so an orchestrator stops routing
// before in-flight queries finish.
type Readiness struct {
	mu    sync.Mutex
	conds map[string]bool
}

// NewReadiness returns a tracker with no conditions (vacuously ready).
func NewReadiness() *Readiness {
	return &Readiness{conds: make(map[string]bool)}
}

// Register adds a condition in the not-ready state. Registering an
// existing name resets it to false.
func (r *Readiness) Register(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conds[name] = false
}

// Set flips a condition. Setting an unregistered name registers it.
func (r *Readiness) Set(name string, ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conds[name] = ok
}

// Ready reports whether every condition holds, and the names of the
// failing ones (sorted) when not.
func (r *Readiness) Ready() (bool, []string) {
	if r == nil {
		return true, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var failing []string
	for name, ok := range r.conds {
		if !ok {
			failing = append(failing, name)
		}
	}
	sort.Strings(failing)
	return len(failing) == 0, failing
}

// Admin is the operator-facing HTTP endpoint: /metrics (Prometheus
// text exposition), /healthz (process up — 200 as long as the listener
// answers), /readyz (200 only while every readiness condition holds;
// 503 with the failing condition names otherwise), plus /debug/traces
// (the trace ring buffer as JSON) when a ring is attached and the
// net/http/pprof handlers under /debug/pprof/ when enabled. It is
// served on its own listener, separate from the binary query protocol,
// so probes and scrapes survive query-plane overload and drain.
type Admin struct {
	reg    *Registry
	ready  *Readiness
	traces *TraceRing
	pprof  bool

	mu  sync.Mutex
	srv *http.Server
	lis net.Listener
}

// AdminOption customises an Admin endpoint.
type AdminOption func(*Admin)

// WithTraceRing serves the ring's recent traces as JSON at
// /debug/traces (filterable with ?min_ms=N).
func WithTraceRing(r *TraceRing) AdminOption {
	return func(a *Admin) { a.traces = r }
}

// WithPprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/ on the admin mux. Off unless requested: profiles can
// stall a loaded process and expose more internals than metrics do, so
// they are an explicit operator opt-in.
func WithPprof() AdminOption {
	return func(a *Admin) { a.pprof = true }
}

// NewAdmin builds an admin endpoint over the registry and readiness
// tracker. Either may be nil: a nil registry serves an empty exposition,
// a nil readiness is always ready.
func NewAdmin(reg *Registry, ready *Readiness, opts ...AdminOption) *Admin {
	a := &Admin{reg: reg, ready: ready}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Handler returns the admin mux; useful for tests and for mounting the
// endpoints on an existing server.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	if a.traces != nil {
		mux.Handle("/debug/traces", a.traces)
	}
	if a.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ok, failing := a.ready.Ready(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, name := range failing {
				fmt.Fprintf(w, "not ready: %s\n", name)
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if a.reg == nil {
		return
	}
	if err := a.reg.WriteText(w); err != nil {
		// Headers are gone; all we can do is note it mid-body.
		fmt.Fprintf(w, "# scrape error: %v\n", err)
	}
}

// Serve accepts admin connections on lis until Shutdown. It blocks,
// mirroring net/http: the returned error is http.ErrServerClosed after
// a clean Shutdown.
func (a *Admin) Serve(lis net.Listener) error {
	srv := &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	a.mu.Lock()
	a.srv = srv
	a.lis = lis
	a.mu.Unlock()
	return srv.Serve(lis)
}

// Addr returns the admin listener address, or "" before Serve.
func (a *Admin) Addr() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lis == nil {
		return ""
	}
	return a.lis.Addr().String()
}

// Shutdown gracefully stops the admin server. This should run last in a
// drain: /readyz must keep answering 503 while queries drain, so the
// orchestrator sees the flip rather than a connection refusal.
func (a *Admin) Shutdown(ctx context.Context) error {
	a.mu.Lock()
	srv := a.srv
	a.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
