package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/obs"
	"github.com/impir/impir/internal/pirproto"
)

// TestLegacyClientAgainstNewServer speaks raw protocol version 1 — no
// flags byte, no extensions — to a current server, end to end through a
// real two-server XOR reconstruction. A pre-tracing client must keep
// working against an upgraded deployment, byte for byte.
func TestLegacyClientAgainstNewServer(t *testing.T) {
	srv0, db := startServer(t, 512, 0)
	srv1, _ := startServer(t, 512, 1)

	legacyQuery := func(addr string, key interface{ MarshalBinary() ([]byte, error) }) []byte {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if err := pirproto.WriteFrame(nc, pirproto.MsgHello, []byte{pirproto.VersionLegacy}); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := pirproto.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if typ != pirproto.MsgServerInfo {
			t.Fatalf("legacy hello answered with %v: %s", typ, payload)
		}
		if _, err := pirproto.ParseServerInfo(payload); err != nil {
			t.Fatalf("legacy hello info: %v", err)
		}
		kb, err := key.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := pirproto.WriteFrame(nc, pirproto.MsgQuery, kb); err != nil {
			t.Fatal(err)
		}
		typ, payload, err = pirproto.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if typ != pirproto.MsgQueryResp {
			t.Fatalf("legacy query answered with %v: %s", typ, payload)
		}
		return payload
	}

	const idx = 99
	k0, k1 := genPair(t, db.Domain(), idx)
	r0 := legacyQuery(srv0.Addr().String(), k0)
	r1 := legacyQuery(srv1.Addr().String(), k1)
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, db.Record(idx)) {
		t.Fatal("legacy-protocol reconstruction failed against new server")
	}
}

// fakeServer is a scripted single-connection peer that records every
// frame the client sends, raw header included.
type fakeServer struct {
	lis    net.Listener
	frames chan rawFrame
}

type rawFrame struct {
	t       pirproto.MsgType
	flags   byte
	payload []byte
}

// startFakeServer accepts one connection and serves hellos according to
// accept: a hello whose version is not in accept gets MsgError (the
// legacy rejection), one that is gets MsgServerInfo. Query frames are
// recorded and answered with a fixed 32-byte response.
func startFakeServer(t *testing.T, accept func(version byte) bool) *fakeServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{lis: lis, frames: make(chan rawFrame, 16)}
	t.Cleanup(func() { lis.Close() })
	info := pirproto.ServerInfo{Party: 0, Domain: 8, RecordSize: 32, NumRecords: 256}
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		for {
			typ, flags, payload, err := pirproto.ReadFrameFlags(nc)
			if err != nil {
				return
			}
			fs.frames <- rawFrame{typ, flags, payload}
			switch typ {
			case pirproto.MsgHello:
				if len(payload) == 1 && accept(payload[0]) {
					pirproto.WriteFrame(nc, pirproto.MsgServerInfo, info.Marshal())
				} else {
					pirproto.WriteFrame(nc, pirproto.MsgError, []byte("unsupported protocol version"))
				}
			default:
				pirproto.WriteFrame(nc, pirproto.MsgQueryResp, make([]byte, 32))
			}
		}
	}()
	return fs
}

func (fs *fakeServer) next(t *testing.T) rawFrame {
	t.Helper()
	select {
	case f := <-fs.frames:
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("fake server saw no frame")
		return rawFrame{}
	}
}

// TestNewClientDowngradesToLegacyServer dials a server that only speaks
// version 1. The client's version-2 hello is rejected; it must retry
// with version 1 on the same stream, negotiate, and then never attach
// the trace extension — even when the context asks for one.
func TestNewClientDowngradesToLegacyServer(t *testing.T) {
	fs := startFakeServer(t, func(v byte) bool { return v == pirproto.VersionLegacy })

	conn, err := Dial(context.Background(), fs.lis.Addr().String())
	if err != nil {
		t.Fatalf("dial legacy server: %v", err)
	}
	defer conn.Close()
	if got := conn.Version(); got != pirproto.VersionLegacy {
		t.Fatalf("negotiated version %d, want %d", got, pirproto.VersionLegacy)
	}

	h1 := fs.next(t)
	if h1.t != pirproto.MsgHello || !bytes.Equal(h1.payload, []byte{pirproto.Version}) {
		t.Fatalf("first hello = %v %v, want version-2 hello", h1.t, h1.payload)
	}
	h2 := fs.next(t)
	if h2.t != pirproto.MsgHello || !bytes.Equal(h2.payload, []byte{pirproto.VersionLegacy}) {
		t.Fatalf("retry hello = %v %v, want version-1 hello on the same stream", h2.t, h2.payload)
	}

	// Even with a trace in the context, a legacy connection must write
	// the plain version-1 frame.
	ctx := ContextWithTrace(context.Background(), obs.NewSpanID(), true)
	db, err := newTestDB(t)
	if err != nil {
		t.Fatal(err)
	}
	k0, _ := genPair(t, db.Domain(), 3)
	if _, err := conn.Query(ctx, k0); err != nil {
		t.Fatalf("query after downgrade: %v", err)
	}
	q := fs.next(t)
	kb, _ := k0.MarshalBinary()
	if q.flags != 0 {
		t.Fatalf("legacy connection wrote flags %#x, want 0", q.flags)
	}
	if !bytes.Equal(q.payload, kb) {
		t.Fatal("legacy connection's query payload differs from the bare key bytes")
	}
}

// TestTraceExtensionIsOnlyWireDifference captures the exact bytes two
// version-2 clients write for the same query — one untraced, one traced
// — and asserts the only difference is the negotiated extension: the
// header flag byte plus the 9-byte trace-context prefix. Untraced
// version-2 traffic is byte-identical to version 1.
func TestTraceExtensionIsOnlyWireDifference(t *testing.T) {
	db, err := newTestDB(t)
	if err != nil {
		t.Fatal(err)
	}
	k0, _ := genPair(t, db.Domain(), 7)
	kb, _ := k0.MarshalBinary()

	spanID := obs.NewSpanID()
	capture := func(ctx context.Context) rawFrame {
		fs := startFakeServer(t, func(v byte) bool { return true })
		conn, err := Dial(context.Background(), fs.lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if conn.Version() != pirproto.Version {
			t.Fatalf("negotiated %d, want %d", conn.Version(), pirproto.Version)
		}
		fs.next(t) // hello
		if _, err := conn.Query(ctx, k0); err != nil {
			t.Fatal(err)
		}
		return fs.next(t)
	}

	plain := capture(context.Background())
	traced := capture(ContextWithTrace(context.Background(), spanID, true))

	if plain.flags != 0 || !bytes.Equal(plain.payload, kb) {
		t.Fatalf("untraced v2 frame differs from the v1 wire image: flags=%#x", plain.flags)
	}
	if traced.flags != pirproto.FlagTraceContext {
		t.Fatalf("traced frame flags = %#x, want FlagTraceContext", traced.flags)
	}
	tc, inner, err := pirproto.SplitTraceContext(traced.payload)
	if err != nil {
		t.Fatal(err)
	}
	if tc.SpanID != spanID.Uint64() || !tc.Sampled {
		t.Fatalf("trace context on the wire = %+v, want span %d sampled", tc, spanID.Uint64())
	}
	if !bytes.Equal(inner, plain.payload) {
		t.Fatal("traced frame's inner payload differs from the untraced frame")
	}
	if wireID := binary.LittleEndian.Uint64(traced.payload[:8]); wireID != spanID.Uint64() {
		t.Fatalf("wire span ID %d != context span ID %d", wireID, spanID.Uint64())
	}
}

// TestServerJoinsWireTraceContext sends a traced query to a real server
// and checks the propagated span ID comes back as the trace_id of the
// server's ring-buffer entry — the party-local half the client links to
// its attempt span.
func TestServerJoinsWireTraceContext(t *testing.T) {
	ring := obs.NewTraceRing(8)
	srv, db := startServer(t, 256, 0, WithTraceRing(ring))
	conn, err := Dial(context.Background(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Version() != pirproto.Version {
		t.Fatalf("negotiated %d, want %d", conn.Version(), pirproto.Version)
	}

	spanID := obs.NewSpanID()
	k0, _ := genPair(t, db.Domain(), 42)
	if _, err := conn.Query(ContextWithTrace(context.Background(), spanID, true), k0); err != nil {
		t.Fatal(err)
	}

	// The ring entry is added after the response is written; poll.
	deadline := time.Now().Add(5 * time.Second)
	for ring.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("traced query never reached the server's ring")
		}
		time.Sleep(time.Millisecond)
	}
	sn := ring.Snapshot(0)[0].Snapshot()
	if sn.SpanID != spanID.String() {
		t.Fatalf("server ring span_id = %s, want the propagated %s", sn.SpanID, spanID)
	}
	if sn.Name != "server.query" {
		t.Fatalf("server ring root = %q, want server.query", sn.Name)
	}
	names := map[string]bool{}
	for _, c := range sn.Children {
		names[c.Name] = true
	}
	if !names["queue"] || !names["engine"] {
		t.Fatalf("server trace children = %v, want queue and engine stages", sn.Children)
	}

	// An untraced query on the same connection must not add a ring
	// entry (server sampler is off by default).
	if _, err := conn.Query(context.Background(), k0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := ring.Len(); n != 1 {
		t.Fatalf("untraced query changed the ring: len=%d, want 1", n)
	}
}

// newTestDB builds a small database purely for key generation in tests
// that never touch a real engine.
func newTestDB(t *testing.T) (*database.DB, error) {
	t.Helper()
	return database.GenerateHashDB(256, 5)
}
