package transport

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"testing"
	"time"

	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/scheduler"
)

// selfSignedTLS builds a throwaway server certificate and the matching
// client trust pool.
func selfSignedTLS(t *testing.T) (serverCfg, clientCfg *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "impir-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)

	serverCfg = &tls.Config{
		Certificates: []tls.Certificate{{
			Certificate: [][]byte{der},
			PrivateKey:  key,
		}},
		MinVersion: tls.VersionTLS13,
	}
	clientCfg = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS13}
	return serverCfg, clientCfg
}

func TestTLSQueryEndToEnd(t *testing.T) {
	serverCfg, clientCfg := selfSignedTLS(t)

	sched, _ := newDispatcher(t, 256, scheduler.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerTLS(lis, sched, 0, serverCfg, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := DialTLS(context.Background(), srv.Addr().String(), clientCfg)
	if err != nil {
		t.Fatalf("DialTLS: %v", err)
	}
	defer conn.Close()
	if conn.Info().NumRecords != 256 {
		t.Fatalf("handshake info over TLS wrong: %+v", conn.Info())
	}

	k0, _, err := dpf.Gen(dpf.Params{Domain: 8}, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := conn.Query(context.Background(), k0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r0) != 32 || bytes.Equal(r0, make([]byte, 32)) {
		t.Fatal("TLS query returned an implausible subresult")
	}
}

func TestTLSRejectsPlaintextClient(t *testing.T) {
	serverCfg, _ := selfSignedTLS(t)
	sched, _ := newDispatcher(t, 64, scheduler.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerTLS(lis, sched, 0, serverCfg, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A plaintext client must fail the handshake, not hang.
	if _, err := Dial(dialCtx(t), srv.Addr().String()); err == nil {
		t.Fatal("plaintext Dial succeeded against a TLS server")
	}
}

func TestTLSUntrustedServerRejected(t *testing.T) {
	serverCfg, _ := selfSignedTLS(t)
	sched, _ := newDispatcher(t, 64, scheduler.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerTLS(lis, sched, 0, serverCfg, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A client with an empty trust pool must refuse the certificate.
	empty := &tls.Config{RootCAs: x509.NewCertPool(), MinVersion: tls.VersionTLS13}
	if _, err := DialTLS(context.Background(), srv.Addr().String(), empty); err == nil {
		t.Fatal("DialTLS accepted an untrusted certificate")
	}
}

func TestTLSConfigValidation(t *testing.T) {
	if _, err := NewServerTLS(nil, nil, 0, nil); err == nil {
		t.Error("nil TLS config accepted by NewServerTLS")
	}
	if _, err := DialTLS(context.Background(), "127.0.0.1:1", nil); err == nil {
		t.Error("nil TLS config accepted by DialTLS")
	}
}

// dialCtx bounds handshakes that are expected to fail, so a
// misbehaving peer cannot hang the test.
func dialCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}
