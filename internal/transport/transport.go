// Package transport runs PIR servers behind TCP listeners and provides
// the matching client side. In a real IM-PIR deployment the two
// non-colluding servers are operated by independent entities; this
// package is the network plane of such a deployment (the paper excludes
// it from benchmarks, and so do we — it exists for the examples and the
// cmd/ binaries). The transport does not talk to engines directly: it
// hands every request to a Dispatcher — the request scheduler — which
// owns admission control, cross-connection batch coalescing, and update
// quiescing.
package transport

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
	"github.com/impir/impir/internal/pirproto"
	"github.com/impir/impir/internal/scheduler"
)

// Dispatcher is the server-side request path behind the transport —
// normally a scheduler.Scheduler wrapping one of the IM-PIR, CPU or GPU
// engines. Every method takes the connection's context: when a client
// disconnects, requests it still has queued are abandoned, and a
// Dispatcher returning scheduler.ErrBusy has the rejection reported to
// the client as a MsgBusy frame.
type Dispatcher interface {
	Name() string
	Database() *database.DB
	Query(context.Context, *dpf.Key) ([]byte, metrics.Breakdown, error)
	QueryBatch(context.Context, []*dpf.Key) ([][]byte, metrics.BatchStats, error)
	// QueryShare answers the §2.3 naive encoding: an explicit selector
	// share over every record (n-server deployments use this).
	QueryShare(context.Context, *bitvec.Vector) ([]byte, metrics.Breakdown, error)
	// QueryShareBatch answers a batch of shares as one admitted unit, so
	// a busy rejection never leaves a batch half-served.
	QueryShareBatch(context.Context, []*bitvec.Vector) ([][]byte, error)
	// Update applies a §3.3 bulk record update atomically (the scheduler
	// quiesces in-flight passes around it). It deliberately takes no
	// context — an update abandoned part-way would leave this replica
	// diverged from its peers.
	Update(updates map[uint64][]byte) error
}

// ErrServerBusy is returned by client query methods when the server
// rejected the request with a MsgBusy frame: its admission queue was
// full. The connection stays usable — retry after a backoff. It is the
// scheduler's ErrBusy, so the same errors.Is check covers local and
// remote rejections.
var ErrServerBusy = scheduler.ErrBusy

// Server serves one PIR dispatcher over a listener.
type Server struct {
	dispatcher   Dispatcher
	party        uint8
	lis          net.Listener
	logf         func(format string, args ...any)
	allowUpdates bool
	obs          *obs.ServerMetrics
	slowQuery    time.Duration
	shard        string
	traces       *obs.TraceRing
	sampler      obs.Sampler
	jsonLogs     bool

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	inflight int // dispatches currently executing across all connections
	done     chan struct{}
}

// ServerOption customises a Server.
type ServerOption func(*Server)

// WithLogf directs server logs (default: log.Printf).
func WithLogf(f func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = f }
}

// WithWireUpdates accepts MsgUpdate frames from connected clients.
// Updates mutate the database, so this is OFF by default: the query
// port serves untrusted PIR clients, and an unauthorised update would
// corrupt records or silently desynchronise replicas. Enable it only on
// deployments where the update path is restricted to the database
// owner — a separate operator-only listener, network ACLs, or mutual
// TLS via NewServerTLS with client certificate verification.
func WithWireUpdates() ServerOption {
	return func(s *Server) { s.allowUpdates = true }
}

// WithObserver records per-frame request/busy/failure counters and
// total-stage latency into m (the queue and engine stages are recorded
// by the scheduler, which shares the same bundle).
func WithObserver(m *obs.ServerMetrics) ServerOption {
	return func(s *Server) { s.obs = m }
}

// WithSlowQuery logs a structured one-line trace (frame type, shard,
// queue wait, pass width, fused?, engine breakdown) for every query
// frame whose end-to-end dispatch takes at least threshold. 0 disables
// slow-query tracing.
func WithSlowQuery(threshold time.Duration) ServerOption {
	return func(s *Server) { s.slowQuery = threshold }
}

// WithShard stamps slow-query traces with the serving shard's label in
// a sharded deployment. Unset means unsharded (no shard in the trace).
func WithShard(shard string) ServerOption {
	return func(s *Server) { s.shard = shard }
}

// WithTraceRing records finished traces of sampled and slow queries
// into r (served as JSON by the admin endpoint). A trace enters the
// ring when the query's wire context asked for sampling, the server's
// own sampler picked it, or it crossed the slow-query threshold.
func WithTraceRing(r *obs.TraceRing) ServerOption {
	return func(s *Server) { s.traces = r }
}

// WithTraceSampler head-samples queries that arrive WITHOUT a wire
// trace context (legacy clients, or new clients below their own
// sampling rate) so a server still populates its ring under pure
// legacy traffic. Queries whose context says sampled are always kept.
func WithTraceSampler(sampler obs.Sampler) ServerOption {
	return func(s *Server) { s.sampler = sampler }
}

// WithJSONLogs renders slow-query trace lines as single-line JSON
// objects instead of logfmt, for structured log pipelines.
func WithJSONLogs() ServerOption {
	return func(s *Server) { s.jsonLogs = true }
}

// NewServer starts serving the dispatcher on the listener. party is this
// server's index in the multi-server deployment (0 or 1 for two-server).
// The returned server owns the listener.
func NewServer(lis net.Listener, d Dispatcher, party uint8, opts ...ServerOption) (*Server, error) {
	if d == nil {
		return nil, errors.New("transport: nil dispatcher")
	}
	if d.Database() == nil {
		return nil, errors.New("transport: dispatcher has no database loaded")
	}
	s := &Server{
		dispatcher: d,
		party:      party,
		lis:        lis,
		logf:       log.Printf,
		conns:      make(map[net.Conn]struct{}),
		done:       make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Close stops accepting, closes active connections, and waits for the
// accept loop to exit. In-flight requests are abandoned; use Shutdown
// for a graceful stop.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	<-s.done
	return err
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, waits for requests currently being dispatched (including
// those queued in the scheduler) to finish and have their responses
// written, then closes the remaining idle connections. ctx bounds the
// wait; on expiry the remaining work is abandoned as in Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.lis.Close()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		s.mu.Lock()
		idle := s.inflight == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("transport: shutdown: %w", ctx.Err())
			}
			break wait
		case <-tick.C:
		}
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-s.done
	return err
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("transport: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	// The connection's context is cancelled the moment the connection
	// drops, so a request this client still has queued in the scheduler
	// is dequeued instead of costing an engine pass on a dead client. A
	// dedicated reader goroutine keeps a ReadFrame pending even while a
	// request is being dispatched — that pending read is what detects the
	// disconnect.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type frame struct {
		t       pirproto.MsgType
		flags   byte
		payload []byte
	}
	frames := make(chan frame)
	go func() {
		defer cancel()
		defer close(frames)
		for {
			t, flags, payload, err := pirproto.ReadFrameFlags(conn)
			if err != nil {
				return // connection closed or broken framing; nothing to salvage
			}
			// Count the request in-flight the moment it is read — in the
			// same critical section that checks closed, so Shutdown's
			// "closed, and inflight is zero" observation is final: any
			// frame read after that is dropped here, never half-served.
			if !s.beginDispatch() {
				s.obs.IncLostArrival()
				return
			}
			select {
			case frames <- frame{t, flags, payload}:
			case <-ctx.Done():
				s.addInflight(-1)
				return
			}
		}
	}()

	for f := range frames {
		name := frameName(f.t)
		start := time.Now()
		s.obs.IncRequest(name)
		dctx := ctx
		var tr *obs.Trace
		payload := f.payload
		if isQueryFrame(f.t) {
			var err error
			tr, payload, err = s.beginTrace(name, start, f.flags, f.payload)
			if err != nil {
				s.obs.IncFailure(name)
				werr := pirproto.WriteFrame(conn, pirproto.MsgError, []byte(err.Error()))
				s.addInflight(-1)
				if werr != nil {
					return
				}
				continue
			}
			if tr != nil {
				dctx = obs.NewContext(ctx, tr)
			}
		}
		err := s.dispatch(dctx, conn, f.t, payload)
		total := time.Since(start)
		s.obs.ObserveStage(name, obs.StageTotal, total)
		if err != nil {
			if errors.Is(err, scheduler.ErrBusy) {
				s.obs.IncBusy(name)
			} else {
				s.obs.IncFailure(name)
			}
			respType, msg := pirproto.MsgError, []byte(err.Error())
			if errors.Is(err, scheduler.ErrBusy) {
				respType, msg = pirproto.MsgBusy, nil
			}
			werr := pirproto.WriteFrame(conn, respType, msg)
			s.addInflight(-1)
			if werr != nil {
				return
			}
			continue
		}
		// Only a successfully served request's trace may be read: the
		// scheduler finished writing it before completing the request
		// (the done-channel close orders the accesses). An errored or
		// abandoned request's trace could still be written mid-pass.
		if tr != nil {
			tr.Total = total
			slow := s.slowQuery > 0 && total >= s.slowQuery
			if tr.Sampled || slow {
				s.traces.Add(tr.Span())
			}
			if slow {
				if s.jsonLogs {
					s.logf("%s", tr.JSON())
				} else {
					s.logf("transport: slow query: %s", tr)
				}
			}
		}
		s.addInflight(-1)
	}
}

// beginTrace decides whether a query frame gets a Trace and joins the
// wire trace context onto it: a propagated context's span ID becomes
// the trace's party-local ID, a context-less query is head-sampled by
// the server's own sampler. Returns a nil trace (and the payload
// unchanged) when nothing — sampling, slow-query logging, or a wire
// context — wants one, which keeps the untraced hot path allocation
// free.
func (s *Server) beginTrace(name string, start time.Time, flags byte, payload []byte) (*obs.Trace, []byte, error) {
	var (
		spanID  obs.SpanID
		sampled bool
	)
	if flags&pirproto.FlagTraceContext != 0 {
		tc, inner, err := pirproto.SplitTraceContext(payload)
		if err != nil {
			return nil, nil, err
		}
		payload = inner
		spanID = obs.SpanIDFromUint64(tc.SpanID)
		sampled = tc.Sampled
	} else if s.sampler.Enabled() {
		spanID = obs.NewSpanID()
		sampled = s.sampler.SampleSpan(spanID)
	}
	if !sampled && s.slowQuery <= 0 {
		return nil, payload, nil
	}
	if spanID.IsZero() {
		// Pure slow-query tracing: mint an ID anyway so the log line and
		// the ring entry for the same query carry the same trace_id.
		spanID = obs.NewSpanID()
	}
	return &obs.Trace{Frame: name, Shard: s.shard, Start: start, SpanID: spanID, Sampled: sampled}, payload, nil
}

// frameName labels a wire frame type for metrics and traces, matching
// the scheduler's request-kind frame names.
func frameName(t pirproto.MsgType) string {
	switch t {
	case pirproto.MsgHello:
		return "hello"
	case pirproto.MsgQuery:
		return "query"
	case pirproto.MsgBatchQuery:
		return "batch"
	case pirproto.MsgShareQuery:
		return "share"
	case pirproto.MsgShareBatchQuery:
		return "share_batch"
	case pirproto.MsgUpdate:
		return "update"
	default:
		return "unknown"
	}
}

// isQueryFrame reports whether t is dispatched through the scheduler's
// query path — the frames a slow-query trace is meaningful for.
func isQueryFrame(t pirproto.MsgType) bool {
	switch t {
	case pirproto.MsgQuery, pirproto.MsgBatchQuery, pirproto.MsgShareQuery, pirproto.MsgShareBatchQuery:
		return true
	default:
		return false
	}
}

func (s *Server) addInflight(d int) {
	s.mu.Lock()
	s.inflight += d
	s.mu.Unlock()
}

// beginDispatch admits one just-read frame into the in-flight count
// unless the server has begun closing. The closed check and the
// increment share one critical section with Shutdown's closed+inflight
// observation, which makes the drain decision race-free.
func (s *Server) beginDispatch() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) dispatch(ctx context.Context, conn net.Conn, t pirproto.MsgType, payload []byte) error {
	switch t {
	case pirproto.MsgHello:
		// Accept both the legacy and the current version: v2 changes
		// nothing the server must act on (the trace extension is marked
		// per-frame by a header flag), so one server serves both.
		if len(payload) != 1 || (payload[0] != pirproto.VersionLegacy && payload[0] != pirproto.Version) {
			return fmt.Errorf("unsupported protocol version")
		}
		db := s.dispatcher.Database()
		info := pirproto.ServerInfo{
			Party:      s.party,
			Domain:     uint8(db.Domain()),
			RecordSize: uint32(db.RecordSize()),
			NumRecords: uint64(db.NumRecords()),
			Digest:     db.Digest(),
		}
		return pirproto.WriteFrame(conn, pirproto.MsgServerInfo, info.Marshal())

	case pirproto.MsgQuery:
		var key dpf.Key
		if err := key.UnmarshalBinary(payload); err != nil {
			return fmt.Errorf("bad key: %w", err)
		}
		result, _, err := s.dispatcher.Query(ctx, &key)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgQueryResp, result)

	case pirproto.MsgShareQuery:
		var share bitvec.Vector
		if err := share.UnmarshalBinary(payload); err != nil {
			return fmt.Errorf("bad share: %w", err)
		}
		result, _, err := s.dispatcher.QueryShare(ctx, &share)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgQueryResp, result)

	case pirproto.MsgShareBatchQuery:
		raw, err := pirproto.ParseBatch(payload)
		if err != nil {
			return err
		}
		if len(raw) == 0 {
			return errors.New("empty share batch")
		}
		shares := make([]*bitvec.Vector, len(raw))
		for i, sb := range raw {
			shares[i] = new(bitvec.Vector)
			if err := shares[i].UnmarshalBinary(sb); err != nil {
				return fmt.Errorf("bad share %d: %w", i, err)
			}
		}
		results, err := s.dispatcher.QueryShareBatch(ctx, shares)
		if err != nil {
			return err
		}
		resp, err := pirproto.MarshalBatch(results)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgBatchResp, resp)

	case pirproto.MsgUpdate:
		if !s.allowUpdates {
			return errors.New("updates are not enabled on this server (see WithWireUpdates)")
		}
		updates, err := pirproto.ParseUpdate(payload)
		if err != nil {
			return err
		}
		// Deliberately not bounded by the connection context: once the
		// update starts applying, abandoning it half-way would desync
		// this replica from its cohort peers.
		if err := s.dispatcher.Update(updates); err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgUpdateOK, nil)

	case pirproto.MsgBatchQuery:
		raw, err := pirproto.ParseBatch(payload)
		if err != nil {
			return err
		}
		if len(raw) == 0 {
			return errors.New("empty batch")
		}
		keys := make([]*dpf.Key, len(raw))
		for i, kb := range raw {
			keys[i] = new(dpf.Key)
			if err := keys[i].UnmarshalBinary(kb); err != nil {
				return fmt.Errorf("bad key %d: %w", i, err)
			}
		}
		results, _, err := s.dispatcher.QueryBatch(ctx, keys)
		if err != nil {
			return err
		}
		resp, err := pirproto.MarshalBatch(results)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgBatchResp, resp)

	default:
		return fmt.Errorf("unexpected frame %v", t)
	}
}

// NewServerTLS wraps the listener with TLS before serving — the channel
// protection a production deployment runs (PIR hides the query from the
// servers themselves; TLS hides traffic from everyone else).
func NewServerTLS(lis net.Listener, d Dispatcher, party uint8, tlsCfg *tls.Config, opts ...ServerOption) (*Server, error) {
	if tlsCfg == nil {
		return nil, errors.New("transport: nil TLS config")
	}
	return NewServer(tls.NewListener(lis, tlsCfg), d, party, opts...)
}

// Conn is a client connection to one PIR server. A Conn carries one
// request/response at a time; concurrent callers are serialised by an
// internal mutex, so a single Conn may be shared by the fan-out layer.
type Conn struct {
	mu      sync.Mutex // serialises request/response exchanges
	conn    net.Conn
	info    pirproto.ServerInfo
	version uint8 // negotiated protocol version (set during handshake)

	// broken has its own mutex so Broken() answers immediately even
	// while an exchange holds mu — the client layer probes it to decide
	// whether to redial, and must not block behind in-flight queries.
	brokenMu sync.Mutex
	broken   error // set when a cancelled exchange poisons the stream
}

// Dial connects to a PIR server and performs the hello handshake. The
// context bounds connection establishment and the handshake exchange.
func Dial(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return handshake(ctx, nc)
}

// DialTLS connects over TLS and performs the hello handshake.
func DialTLS(ctx context.Context, addr string, tlsCfg *tls.Config) (*Conn, error) {
	if tlsCfg == nil {
		return nil, errors.New("transport: nil TLS config")
	}
	td := tls.Dialer{Config: tlsCfg}
	nc, err := td.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tls %s: %w", addr, err)
	}
	return handshake(ctx, nc)
}

// handshake performs the hello exchange on a fresh connection, taking
// ownership of nc (closed on failure). It offers the current protocol
// version first; a server that rejects it (a legacy deployment) leaves
// the stream usable — its error reply consumed the hello — so the
// client retries with the legacy version on the same connection and
// simply never attaches wire extensions.
func handshake(ctx context.Context, nc net.Conn) (*Conn, error) {
	c := &Conn{conn: nc, version: pirproto.Version}
	t, payload, err := c.roundTrip(ctx, pirproto.MsgHello, []byte{pirproto.Version})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	if t == pirproto.MsgError {
		c.version = pirproto.VersionLegacy
		t, payload, err = c.roundTrip(ctx, pirproto.MsgHello, []byte{pirproto.VersionLegacy})
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("transport: handshake (legacy retry): %w", err)
		}
	}
	if t == pirproto.MsgError {
		nc.Close()
		return nil, fmt.Errorf("transport: server rejected handshake: %s", payload)
	}
	if t != pirproto.MsgServerInfo {
		nc.Close()
		return nil, fmt.Errorf("transport: unexpected handshake frame %v", t)
	}
	info, err := pirproto.ParseServerInfo(payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.info = info
	return c, nil
}

// Info returns the server's database description from the handshake.
func (c *Conn) Info() pirproto.ServerInfo { return c.info }

// Version returns the negotiated protocol version.
func (c *Conn) Version() uint8 { return c.version }

// roundTrip performs one request/response exchange under ctx. A context
// deadline becomes a socket deadline; cancellation interrupts pending
// I/O by expiring the deadline immediately. Because the protocol has no
// request framing beyond the stream position, an exchange abandoned
// mid-flight leaves the stream unusable — the Conn is marked broken and
// every later exchange fails fast.
func (c *Conn) roundTrip(ctx context.Context, t pirproto.MsgType, payload []byte) (pirproto.MsgType, []byte, error) {
	return c.roundTripFlags(ctx, t, 0, payload)
}

func (c *Conn) roundTripFlags(ctx context.Context, t pirproto.MsgType, flags byte, payload []byte) (pirproto.MsgType, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.brokenErr(); err != nil {
		return 0, nil, err
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}

	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	ioDone := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			c.conn.SetDeadline(time.Now()) // interrupt pending reads/writes
		case <-ioDone:
		}
	}()

	var (
		respType pirproto.MsgType
		resp     []byte
	)
	err := pirproto.WriteFrameFlags(c.conn, t, flags, payload)
	if err == nil {
		respType, resp, err = pirproto.ReadFrame(c.conn)
	}
	close(ioDone)
	<-watchDone

	if err != nil {
		// The exchange died part-way; the stream position is unknown and
		// the connection cannot carry further requests.
		cerr := ctx.Err()
		if cerr == nil {
			// The socket deadline is set from the context deadline, so it
			// can fire a beat before the context's own timer: an expired
			// deadline is the context's fault even if ctx.Err() has not
			// flipped yet.
			if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
				cerr = context.DeadlineExceeded
			}
		}
		if cerr != nil {
			err = cerr
		}
		// Deliberately %v: a later call with a healthy context must not
		// see the original call's context error through errors.Is and
		// misread a dead connection as its own timeout.
		c.setBroken(fmt.Errorf("transport: connection unusable after failed exchange: %v", err))
		return 0, nil, err
	}
	return respType, resp, nil
}

type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying a wire trace context for the
// next query exchange on a version-2 connection: the party-local span
// ID the client minted for this ONE server's view of one attempt, and
// whether the client sampled the operation. The caller must mint an
// independent random ID per party — never reuse one ID across
// connections to different parties, or colluding servers could link
// their halves of the operation. A zero span ID attaches nothing.
func ContextWithTrace(ctx context.Context, spanID obs.SpanID, sampled bool) context.Context {
	if spanID.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{},
		pirproto.TraceContext{SpanID: spanID.Uint64(), Sampled: sampled})
}

// attachTrace prepends the context's wire trace extension to a query
// payload when the connection negotiated version 2. On legacy
// connections, or when ctx carries no trace, the payload is returned
// untouched — byte-identical to the version-1 wire image.
func (c *Conn) attachTrace(ctx context.Context, payload []byte) (byte, []byte) {
	if c.version < pirproto.Version {
		return 0, payload
	}
	tc, ok := ctx.Value(traceCtxKey{}).(pirproto.TraceContext)
	if !ok {
		return 0, payload
	}
	return pirproto.FlagTraceContext, pirproto.PrependTraceContext(tc, payload)
}

// queryResp interprets a single-subresult response frame.
func queryResp(t pirproto.MsgType, payload []byte) ([]byte, error) {
	switch t {
	case pirproto.MsgQueryResp:
		return payload, nil
	case pirproto.MsgBusy:
		return nil, ErrServerBusy
	case pirproto.MsgError:
		return nil, fmt.Errorf("transport: server error: %s", payload)
	default:
		return nil, fmt.Errorf("transport: unexpected frame %v", t)
	}
}

// batchResp interprets a batched response frame, checking the count.
func batchResp(t pirproto.MsgType, payload []byte, want int) ([][]byte, error) {
	switch t {
	case pirproto.MsgBatchResp:
		results, err := pirproto.ParseBatch(payload)
		if err != nil {
			return nil, err
		}
		if len(results) != want {
			return nil, fmt.Errorf("transport: %d results for %d queries", len(results), want)
		}
		return results, nil
	case pirproto.MsgBusy:
		return nil, ErrServerBusy
	case pirproto.MsgError:
		return nil, fmt.Errorf("transport: server error: %s", payload)
	default:
		return nil, fmt.Errorf("transport: unexpected frame %v", t)
	}
}

// Query sends one DPF key and returns the server's subresult.
func (c *Conn) Query(ctx context.Context, key *dpf.Key) ([]byte, error) {
	kb, err := key.MarshalBinary()
	if err != nil {
		return nil, err
	}
	flags, kb := c.attachTrace(ctx, kb)
	t, payload, err := c.roundTripFlags(ctx, pirproto.MsgQuery, flags, kb)
	if err != nil {
		return nil, err
	}
	return queryResp(t, payload)
}

// QueryShare sends a raw selector share (the §2.3 naive n-server
// encoding) and returns the server's subresult.
func (c *Conn) QueryShare(ctx context.Context, share *bitvec.Vector) ([]byte, error) {
	payload, err := share.MarshalBinary()
	if err != nil {
		return nil, err
	}
	flags, payload := c.attachTrace(ctx, payload)
	t, resp, err := c.roundTripFlags(ctx, pirproto.MsgShareQuery, flags, payload)
	if err != nil {
		return nil, err
	}
	return queryResp(t, resp)
}

// QueryBatch sends a batch of keys and returns the subresults in order.
func (c *Conn) QueryBatch(ctx context.Context, keys []*dpf.Key) ([][]byte, error) {
	raw := make([][]byte, len(keys))
	for i, k := range keys {
		kb, err := k.MarshalBinary()
		if err != nil {
			return nil, err
		}
		raw[i] = kb
	}
	payload, err := pirproto.MarshalBatch(raw)
	if err != nil {
		return nil, err
	}
	flags, payload := c.attachTrace(ctx, payload)
	t, resp, err := c.roundTripFlags(ctx, pirproto.MsgBatchQuery, flags, payload)
	if err != nil {
		return nil, err
	}
	return batchResp(t, resp, len(keys))
}

// QueryShareBatch sends a batch of selector shares in one round trip and
// returns the subresults in order.
func (c *Conn) QueryShareBatch(ctx context.Context, shares []*bitvec.Vector) ([][]byte, error) {
	raw := make([][]byte, len(shares))
	for i, sh := range shares {
		sb, err := sh.MarshalBinary()
		if err != nil {
			return nil, err
		}
		raw[i] = sb
	}
	payload, err := pirproto.MarshalBatch(raw)
	if err != nil {
		return nil, err
	}
	flags, payload := c.attachTrace(ctx, payload)
	t, resp, err := c.roundTripFlags(ctx, pirproto.MsgShareBatchQuery, flags, payload)
	if err != nil {
		return nil, err
	}
	return batchResp(t, resp, len(shares))
}

// Update pushes a bulk record update to the server and waits for the
// acknowledgement. Updates are an operator action, not a private query:
// the server learns which records changed, by design. ctx bounds the
// exchange; as with every exchange, abandoning it mid-flight poisons the
// stream.
func (c *Conn) Update(ctx context.Context, updates map[uint64][]byte) error {
	payload, err := pirproto.MarshalUpdate(updates)
	if err != nil {
		return err
	}
	t, resp, err := c.roundTrip(ctx, pirproto.MsgUpdate, payload)
	if err != nil {
		return err
	}
	switch t {
	case pirproto.MsgUpdateOK:
		return nil
	case pirproto.MsgBusy:
		return ErrServerBusy
	case pirproto.MsgError:
		return fmt.Errorf("transport: server error: %s", resp)
	default:
		return fmt.Errorf("transport: unexpected frame %v", t)
	}
}

// Broken reports whether a previously abandoned exchange has poisoned
// the stream, making every further exchange fail fast. The client layer
// uses this to transparently redial instead of returning stale errors.
// Broken never blocks behind an in-flight exchange.
func (c *Conn) Broken() bool { return c.brokenErr() != nil }

func (c *Conn) brokenErr() error {
	c.brokenMu.Lock()
	defer c.brokenMu.Unlock()
	return c.broken
}

func (c *Conn) setBroken(err error) {
	c.brokenMu.Lock()
	c.broken = err
	c.brokenMu.Unlock()
}

// Close closes the connection.
func (c *Conn) Close() error { return c.conn.Close() }
