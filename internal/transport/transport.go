// Package transport runs PIR server engines behind TCP listeners and
// provides the matching client side. In a real IM-PIR deployment the two
// non-colluding servers are operated by independent entities; this
// package is the network plane of such a deployment (the paper excludes
// it from benchmarks, and so do we — it exists for the examples and the
// cmd/ binaries).
package transport

import (
	"crypto/tls"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/pirproto"
)

// Engine is the server-side compute plane: any of the IM-PIR, CPU or GPU
// engines.
type Engine interface {
	Name() string
	Database() *database.DB
	Query(*dpf.Key) ([]byte, metrics.Breakdown, error)
	QueryBatch([]*dpf.Key) ([][]byte, metrics.BatchStats, error)
	// QueryShare answers the §2.3 naive encoding: an explicit selector
	// share over every record (n-server deployments use this).
	QueryShare(*bitvec.Vector) ([]byte, metrics.Breakdown, error)
}

// Server serves one PIR engine over a listener.
type Server struct {
	engine Engine
	party  uint8
	lis    net.Listener
	logf   func(format string, args ...any)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
}

// ServerOption customises a Server.
type ServerOption func(*Server)

// WithLogf directs server logs (default: log.Printf).
func WithLogf(f func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = f }
}

// NewServer starts serving the engine on the listener. party is this
// server's index in the multi-server deployment (0 or 1 for two-server).
// The returned server owns the listener.
func NewServer(lis net.Listener, engine Engine, party uint8, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, errors.New("transport: nil engine")
	}
	if engine.Database() == nil {
		return nil, errors.New("transport: engine has no database loaded")
	}
	s := &Server{
		engine: engine,
		party:  party,
		lis:    lis,
		logf:   log.Printf,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Close stops accepting, closes active connections, and waits for the
// accept loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	<-s.done
	return err
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("transport: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	for {
		t, payload, err := pirproto.ReadFrame(conn)
		if err != nil {
			return // connection closed or broken framing; nothing to salvage
		}
		if err := s.dispatch(conn, t, payload); err != nil {
			if werr := pirproto.WriteFrame(conn, pirproto.MsgError, []byte(err.Error())); werr != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(conn net.Conn, t pirproto.MsgType, payload []byte) error {
	switch t {
	case pirproto.MsgHello:
		if len(payload) != 1 || payload[0] != pirproto.Version {
			return fmt.Errorf("unsupported protocol version")
		}
		db := s.engine.Database()
		info := pirproto.ServerInfo{
			Party:      s.party,
			Domain:     uint8(db.Domain()),
			RecordSize: uint32(db.RecordSize()),
			NumRecords: uint64(db.NumRecords()),
			Digest:     db.Digest(),
		}
		return pirproto.WriteFrame(conn, pirproto.MsgServerInfo, info.Marshal())

	case pirproto.MsgQuery:
		var key dpf.Key
		if err := key.UnmarshalBinary(payload); err != nil {
			return fmt.Errorf("bad key: %w", err)
		}
		result, _, err := s.engine.Query(&key)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgQueryResp, result)

	case pirproto.MsgShareQuery:
		var share bitvec.Vector
		if err := share.UnmarshalBinary(payload); err != nil {
			return fmt.Errorf("bad share: %w", err)
		}
		result, _, err := s.engine.QueryShare(&share)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgQueryResp, result)

	case pirproto.MsgBatchQuery:
		raw, err := pirproto.ParseBatch(payload)
		if err != nil {
			return err
		}
		if len(raw) == 0 {
			return errors.New("empty batch")
		}
		keys := make([]*dpf.Key, len(raw))
		for i, kb := range raw {
			keys[i] = new(dpf.Key)
			if err := keys[i].UnmarshalBinary(kb); err != nil {
				return fmt.Errorf("bad key %d: %w", i, err)
			}
		}
		results, _, err := s.engine.QueryBatch(keys)
		if err != nil {
			return err
		}
		resp, err := pirproto.MarshalBatch(results)
		if err != nil {
			return err
		}
		return pirproto.WriteFrame(conn, pirproto.MsgBatchResp, resp)

	default:
		return fmt.Errorf("unexpected frame %v", t)
	}
}

// NewServerTLS wraps the listener with TLS before serving — the channel
// protection a production deployment runs (PIR hides the query from the
// servers themselves; TLS hides traffic from everyone else).
func NewServerTLS(lis net.Listener, engine Engine, party uint8, tlsCfg *tls.Config, opts ...ServerOption) (*Server, error) {
	if tlsCfg == nil {
		return nil, errors.New("transport: nil TLS config")
	}
	return NewServer(tls.NewListener(lis, tlsCfg), engine, party, opts...)
}

// Conn is a client connection to one PIR server.
type Conn struct {
	conn net.Conn
	info pirproto.ServerInfo
}

// Dial connects to a PIR server and performs the hello handshake.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return handshake(nc)
}

// DialTLS connects over TLS and performs the hello handshake.
func DialTLS(addr string, tlsCfg *tls.Config) (*Conn, error) {
	if tlsCfg == nil {
		return nil, errors.New("transport: nil TLS config")
	}
	nc, err := tls.Dial("tcp", addr, tlsCfg)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tls %s: %w", addr, err)
	}
	return handshake(nc)
}

// handshake performs the hello exchange on a fresh connection, taking
// ownership of nc (closed on failure).
func handshake(nc net.Conn) (*Conn, error) {
	c := &Conn{conn: nc}
	if err := pirproto.WriteFrame(nc, pirproto.MsgHello, []byte{pirproto.Version}); err != nil {
		nc.Close()
		return nil, err
	}
	t, payload, err := pirproto.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	if t == pirproto.MsgError {
		nc.Close()
		return nil, fmt.Errorf("transport: server rejected handshake: %s", payload)
	}
	if t != pirproto.MsgServerInfo {
		nc.Close()
		return nil, fmt.Errorf("transport: unexpected handshake frame %v", t)
	}
	info, err := pirproto.ParseServerInfo(payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.info = info
	return c, nil
}

// Info returns the server's database description from the handshake.
func (c *Conn) Info() pirproto.ServerInfo { return c.info }

// Query sends one DPF key and returns the server's subresult.
func (c *Conn) Query(key *dpf.Key) ([]byte, error) {
	kb, err := key.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if err := pirproto.WriteFrame(c.conn, pirproto.MsgQuery, kb); err != nil {
		return nil, err
	}
	t, payload, err := pirproto.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case pirproto.MsgQueryResp:
		return payload, nil
	case pirproto.MsgError:
		return nil, fmt.Errorf("transport: server error: %s", payload)
	default:
		return nil, fmt.Errorf("transport: unexpected frame %v", t)
	}
}

// QueryShare sends a raw selector share (the §2.3 naive n-server
// encoding) and returns the server's subresult.
func (c *Conn) QueryShare(share *bitvec.Vector) ([]byte, error) {
	payload, err := share.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if err := pirproto.WriteFrame(c.conn, pirproto.MsgShareQuery, payload); err != nil {
		return nil, err
	}
	t, resp, err := pirproto.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case pirproto.MsgQueryResp:
		return resp, nil
	case pirproto.MsgError:
		return nil, fmt.Errorf("transport: server error: %s", resp)
	default:
		return nil, fmt.Errorf("transport: unexpected frame %v", t)
	}
}

// QueryBatch sends a batch of keys and returns the subresults in order.
func (c *Conn) QueryBatch(keys []*dpf.Key) ([][]byte, error) {
	raw := make([][]byte, len(keys))
	for i, k := range keys {
		kb, err := k.MarshalBinary()
		if err != nil {
			return nil, err
		}
		raw[i] = kb
	}
	payload, err := pirproto.MarshalBatch(raw)
	if err != nil {
		return nil, err
	}
	if err := pirproto.WriteFrame(c.conn, pirproto.MsgBatchQuery, payload); err != nil {
		return nil, err
	}
	t, resp, err := pirproto.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case pirproto.MsgBatchResp:
		results, err := pirproto.ParseBatch(resp)
		if err != nil {
			return nil, err
		}
		if len(results) != len(keys) {
			return nil, fmt.Errorf("transport: %d results for %d keys", len(results), len(keys))
		}
		return results, nil
	case pirproto.MsgError:
		return nil, fmt.Errorf("transport: server error: %s", resp)
	default:
		return nil, fmt.Errorf("transport: unexpected frame %v", t)
	}
}

// Close closes the connection.
func (c *Conn) Close() error { return c.conn.Close() }
