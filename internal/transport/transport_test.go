package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/naivepir"
	"github.com/impir/impir/internal/pirproto"
	"github.com/impir/impir/internal/scheduler"
)

// newDispatcher builds the standard server-side stack under test: a
// small CPU engine behind a scheduler.
func newDispatcher(t *testing.T, numRecords int, cfg scheduler.Config) (*scheduler.Scheduler, *database.DB) {
	t.Helper()
	eng, err := cpupir.New(cpupir.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	db, err := database.GenerateHashDB(numRecords, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	sched := scheduler.New(eng, cfg)
	t.Cleanup(func() { sched.Close() })
	return sched, db
}

func startServer(t *testing.T, numRecords int, party uint8, opts ...ServerOption) (*Server, *database.DB) {
	t.Helper()
	sched, db := newDispatcher(t, numRecords, scheduler.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, sched, party, append([]ServerOption{WithLogf(t.Logf)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, db
}

func genPair(t *testing.T, domain int, idx uint64) (*dpf.Key, *dpf.Key) {
	t.Helper()
	k0, k1, err := dpf.Gen(dpf.Params{Domain: domain}, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k0, k1
}

func TestHandshakeInfo(t *testing.T) {
	srv, db := startServer(t, 256, 1)
	conn, err := Dial(context.Background(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	info := conn.Info()
	if info.Party != 1 {
		t.Errorf("party = %d, want 1", info.Party)
	}
	if info.NumRecords != 256 || info.RecordSize != 32 || info.Domain != 8 {
		t.Errorf("info = %+v", info)
	}
	if info.Digest != db.PadToPowerOfTwo().Digest() {
		t.Error("digest mismatch")
	}
}

func TestTwoServerQueryOverTCP(t *testing.T) {
	srv0, db := startServer(t, 512, 0)
	srv1, _ := startServer(t, 512, 1)
	c0, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(context.Background(), srv1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	const idx = 77
	k0, k1 := genPair(t, db.Domain(), idx)
	r0, err := c0.Query(context.Background(), k0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.Query(context.Background(), k1)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, db.Record(idx)) {
		t.Fatal("TCP reconstruction failed")
	}
}

func TestBatchOverTCP(t *testing.T) {
	srv0, db := startServer(t, 256, 0)
	conn, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	keys := make([]*dpf.Key, 5)
	for i := range keys {
		keys[i], _ = genPair(t, db.Domain(), uint64(i*13))
	}
	results, err := conn.QueryBatch(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(keys) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r) != 32 {
			t.Fatalf("result size %d", len(r))
		}
	}
}

func TestSequentialQueriesOnOneConnection(t *testing.T) {
	srv0, db := startServer(t, 128, 0)
	conn, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		k0, _ := genPair(t, db.Domain(), uint64(i*11))
		if _, err := conn.Query(context.Background(), k0); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	srv0, db := startServer(t, 128, 0)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Dial(context.Background(), srv0.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			k0, _ := genPair(t, db.Domain(), uint64(i))
			_, errs[i] = conn.Query(context.Background(), k0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestServerRejectsBadKey(t *testing.T) {
	srv0, db := startServer(t, 128, 0)
	conn, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Wrong domain: valid key, wrong database.
	k0, _ := genPair(t, 3, 0)
	if _, err := conn.Query(context.Background(), k0); err == nil || !strings.Contains(err.Error(), "server error") {
		t.Fatalf("wrong-domain key: err = %v, want server error", err)
	}

	// The connection must survive the error and serve good queries.
	good, _ := genPair(t, db.Domain(), 1)
	if _, err := conn.Query(context.Background(), good); err != nil {
		t.Fatalf("connection unusable after server error: %v", err)
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	srv0, _ := startServer(t, 128, 0)
	// Raw TCP: send garbage that is not a valid frame.
	nc, err := net.Dial("tcp", srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Server must drop the connection: read should reach EOF.
	buf := make([]byte, 16)
	nc.Read(buf) // ignore result; just ensure no hang
}

func TestServerRejectsMalformedKeyBytes(t *testing.T) {
	srv0, _ := startServer(t, 128, 0)
	nc, err := net.Dial("tcp", srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := pirproto.WriteFrame(nc, pirproto.MsgQuery, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := pirproto.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != pirproto.MsgError {
		t.Fatalf("frame = %v (%q), want error", typ, payload)
	}
}

func TestShareQueryOverTCP(t *testing.T) {
	srv0, db := startServer(t, 256, 0)
	srv1, _ := startServer(t, 256, 1)
	c0, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(context.Background(), srv1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	const idx = 123
	q, err := naivepir.Gen(nil, 256, idx, 2)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := c0.QueryShare(context.Background(), q.Shares[0])
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.QueryShare(context.Background(), q.Shares[1])
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, db.Record(idx)) {
		t.Fatal("share-query reconstruction over TCP failed")
	}
}

func TestShareQueryRejectsBadShare(t *testing.T) {
	srv0, _ := startServer(t, 256, 0)
	conn, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Wrong length: share for a different database size.
	wrong := bitvec.New(64)
	if _, err := conn.QueryShare(context.Background(), wrong); err == nil || !strings.Contains(err.Error(), "server error") {
		t.Fatalf("mis-sized share: err = %v", err)
	}

	// Malformed payload straight onto the wire.
	nc, err := net.Dial("tcp", srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := pirproto.WriteFrame(nc, pirproto.MsgShareQuery, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := pirproto.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != pirproto.MsgError {
		t.Fatalf("frame = %v, want error", typ)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	srv0, _ := startServer(t, 128, 0)
	nc, err := net.Dial("tcp", srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := pirproto.WriteFrame(nc, pirproto.MsgHello, []byte{99}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := pirproto.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != pirproto.MsgError {
		t.Fatalf("frame = %v, want error", typ)
	}
}

func TestNewServerValidation(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if _, err := NewServer(lis, nil, 0); err == nil {
		t.Error("NewServer accepted nil dispatcher")
	}
	eng, _ := cpupir.New(cpupir.Config{})
	sched := scheduler.New(eng, scheduler.Config{})
	defer sched.Close()
	if _, err := NewServer(lis, sched, 0); err == nil {
		t.Error("NewServer accepted dispatcher without database")
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv0, _ := startServer(t, 128, 0)
	if err := srv0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv0.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := Dial(context.Background(), srv0.Addr().String()); err == nil {
		t.Fatal("Dial succeeded after Close")
	}
}

func TestShareBatchOverTCP(t *testing.T) {
	srv0, db := startServer(t, 256, 0)
	srv1, _ := startServer(t, 256, 1)
	c0, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(context.Background(), srv1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	indices := []uint64{3, 99, 200}
	shares0 := make([]*bitvec.Vector, len(indices))
	shares1 := make([]*bitvec.Vector, len(indices))
	for i, idx := range indices {
		q, err := naivepir.Gen(nil, 256, idx, 2)
		if err != nil {
			t.Fatal(err)
		}
		shares0[i], shares1[i] = q.Shares[0], q.Shares[1]
	}
	r0, err := c0.QueryShareBatch(context.Background(), shares0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.QueryShareBatch(context.Background(), shares1)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		rec := make([]byte, len(r0[i]))
		for j := range rec {
			rec[j] = r0[i][j] ^ r1[i][j]
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("share-batch item %d: wrong record", i)
		}
	}
}

func TestShareBatchRejectsEmpty(t *testing.T) {
	srv0, _ := startServer(t, 128, 0)
	nc, err := net.Dial("tcp", srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload, _ := pirproto.MarshalBatch(nil)
	if err := pirproto.WriteFrame(nc, pirproto.MsgShareBatchQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, _, err := pirproto.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != pirproto.MsgError {
		t.Fatalf("frame = %v, want error", typ)
	}
}

func TestQueryContextCancellationPoisonsConn(t *testing.T) {
	// An unresponsive peer: accepts the connection, answers the
	// handshake, then goes silent.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if _, _, err := pirproto.ReadFrame(nc); err != nil {
			return
		}
		info := pirproto.ServerInfo{Domain: 7, RecordSize: 32, NumRecords: 128}
		pirproto.WriteFrame(nc, pirproto.MsgServerInfo, info.Marshal())
		// Swallow the query and never answer.
		pirproto.ReadFrame(nc)
		time.Sleep(10 * time.Second)
	}()

	conn, err := Dial(context.Background(), lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	k0, _ := genPair(t, 7, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = conn.Query(ctx, k0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}

	// The stream position is unknown; the conn must refuse further use —
	// but without replaying the first call's context error, which a
	// caller with a healthy context would misread as its own timeout.
	_, err = conn.Query(context.Background(), k0)
	if err == nil {
		t.Fatal("poisoned connection accepted another query")
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		t.Fatalf("poisoned-conn error %v replays the original context error", err)
	}
}

func TestDialContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A routable-but-never-accepting target would hang without ctx.
	if _, err := Dial(ctx, "10.255.255.1:9"); err == nil {
		t.Fatal("Dial succeeded with a cancelled context")
	}
}

// TestBusyPropagatesOverWire: a full admission queue must reach the
// client as ErrServerBusy — promptly, and without poisoning the
// connection.
func TestBusyPropagatesOverWire(t *testing.T) {
	sched, db := newDispatcher(t, 128, scheduler.Config{QueueDepth: 1})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, sched, 0, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Saturate the scheduler: occupy the dispatcher and fill the queue
	// with direct submissions that never complete quickly.
	k0, _ := genPair(t, db.PadToPowerOfTwo().Domain(), 1)
	blockCtx, blockCancel := context.WithCancel(context.Background())
	defer blockCancel()
	slow := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			keys := make([]*dpf.Key, 64)
			for j := range keys {
				keys[j] = k0
			}
			for {
				_, _, err := sched.QueryBatch(blockCtx, keys)
				if blockCtx.Err() != nil {
					slow <- struct{}{}
					return
				}
				_ = err // the saturators may bounce off the queue themselves
			}
		}()
	}

	conn, err := Dial(context.Background(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// With the queue saturated by the two loops above, wire queries must
	// sooner or later bounce with ErrServerBusy.
	deadline := time.Now().Add(5 * time.Second)
	sawBusy := false
	for time.Now().Before(deadline) {
		start := time.Now()
		_, err := conn.Query(context.Background(), k0)
		if errors.Is(err, ErrServerBusy) {
			sawBusy = true
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("busy rejection took %v — not prompt", elapsed)
			}
			break
		}
		if err != nil {
			t.Fatalf("unexpected error while hunting for busy: %v", err)
		}
	}
	if !sawBusy {
		t.Fatal("never saw ErrServerBusy despite a saturated 1-deep queue")
	}

	// The connection survives the rejection: stop the saturators and
	// verify a normal query still works on the same conn.
	blockCancel()
	<-slow
	<-slow
	var ok bool
	for i := 0; i < 50; i++ {
		if _, err := conn.Query(context.Background(), k0); err == nil {
			ok = true
			break
		} else if !errors.Is(err, ErrServerBusy) {
			t.Fatalf("conn unusable after busy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatal("connection never recovered after busy rejections")
	}
}

// TestShutdownDrains: Shutdown must finish the request being dispatched
// and write its response before closing the connection.
func TestShutdownDrains(t *testing.T) {
	sched, db := newDispatcher(t, 256, scheduler.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis, sched, 0, WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}

	conn, err := Dial(context.Background(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	k0, _ := genPair(t, db.PadToPowerOfTwo().Domain(), 42)
	resCh := make(chan error, 1)
	go func() {
		_, err := conn.Query(context.Background(), k0)
		resCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the query reach the server

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("in-flight query failed during graceful shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query still pending after Shutdown returned")
	}
	if _, err := Dial(context.Background(), srv.Addr().String()); err == nil {
		t.Fatal("Dial succeeded after Shutdown")
	}
}

// TestUpdateOverWire: a MsgUpdate frame applies the bulk update through
// the dispatcher's quiescing path, the client gets MsgUpdateOK, and the
// new contents are visible to a subsequent query on the same connection.
func TestUpdateOverWire(t *testing.T) {
	srv0, db := startServer(t, 256, 0, WithWireUpdates())
	srv1, _ := startServer(t, 256, 1, WithWireUpdates())
	c0, err := Dial(context.Background(), srv0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(context.Background(), srv1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	const idx = 99
	newRec := bytes.Repeat([]byte{0xAB}, db.RecordSize())
	updates := map[uint64][]byte{idx: newRec}
	ctx := context.Background()
	if err := c0.Update(ctx, updates); err != nil {
		t.Fatalf("update server 0: %v", err)
	}
	if err := c1.Update(ctx, updates); err != nil {
		t.Fatalf("update server 1: %v", err)
	}

	k0, k1 := genPair(t, db.Domain(), idx)
	r0, err := c0.Query(ctx, k0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.Query(ctx, k1)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, newRec) {
		t.Fatal("query after wire update returned stale record")
	}
}

// TestUpdateOverWireRejectsBadRecord: a malformed update (wrong record
// length) is rejected with a server error and leaves the connection
// usable.
func TestUpdateOverWireRejectsBadRecord(t *testing.T) {
	srv, db := startServer(t, 128, 0, WithWireUpdates())
	conn, err := Dial(context.Background(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx := context.Background()
	err = conn.Update(ctx, map[uint64][]byte{3: []byte("short")})
	if err == nil || !strings.Contains(err.Error(), "want") {
		t.Fatalf("wrong-length update: err = %v, want record-size rejection", err)
	}

	// The connection survived the rejection.
	k0, k1 := genPair(t, db.Domain(), 3)
	r0, err := conn.Query(ctx, k0)
	if err != nil {
		t.Fatalf("query after rejected update: %v", err)
	}
	r1, _, err := newDispatcherFor(t, db).Query(ctx, k1)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, db.Record(3)) {
		t.Fatal("reconstruction broken after rejected update")
	}
}

// newDispatcherFor builds a second scheduler over a byte-identical
// replica of db, playing the second non-colluding server locally.
func newDispatcherFor(t *testing.T, db *database.DB) *scheduler.Scheduler {
	t.Helper()
	eng, err := cpupir.New(cpupir.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db.Clone()); err != nil {
		t.Fatal(err)
	}
	sched := scheduler.New(eng, scheduler.Config{})
	t.Cleanup(func() { sched.Close() })
	return sched
}

// TestUpdateOverWireDisabledByDefault: a server that did not opt into
// wire updates must reject MsgUpdate — any connected client could send
// one, and an unauthorised update would desynchronise replicas. The
// connection stays usable for queries.
func TestUpdateOverWireDisabledByDefault(t *testing.T) {
	srv, db := startServer(t, 128, 0)
	conn, err := Dial(context.Background(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx := context.Background()
	before := append([]byte(nil), db.Record(3)...)
	err = conn.Update(ctx, map[uint64][]byte{3: bytes.Repeat([]byte{1}, db.RecordSize())})
	if err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("update on a default server: err = %v, want not-enabled rejection", err)
	}
	if !bytes.Equal(db.Record(3), before) {
		t.Fatal("rejected update still modified the database")
	}
	if conn.Broken() {
		t.Fatal("rejection broke the connection")
	}
	k0, _ := genPair(t, db.Domain(), 3)
	if _, err := conn.Query(ctx, k0); err != nil {
		t.Fatalf("query after rejected update: %v", err)
	}
}
