package singleserver

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/database"
)

// Small keys and databases keep the O(N) modular exponentiations cheap in
// tests; Answer validates record-vs-plaintext-space fit per query.
const testKeyBits = 384

func setup(t *testing.T, numRecords int) (*Client, *Server, *database.DB) {
	t.Helper()
	client, err := NewClient(nil, testKeyBits)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	db, err := database.GenerateHashDB(numRecords, 99)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(db)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return client, server, db
}

func TestFigure1EndToEnd(t *testing.T) {
	client, server, db := setup(t, 16)
	for _, idx := range []int{0, 7, 15} {
		q, err := client.BuildQuery(idx, db.NumRecords())
		if err != nil {
			t.Fatalf("BuildQuery(%d): %v", idx, err)
		}
		resp, err := server.Answer(q)
		if err != nil {
			t.Fatalf("Answer: %v", err)
		}
		got, err := client.Decrypt(resp, db.RecordSize())
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(got, db.Record(idx)) {
			t.Fatalf("index %d: got %x, want %x", idx, got[:8], db.Record(idx)[:8])
		}
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// The paper's running example: D = [2, 6, 7, 5], query index 2 → 7.
	db, err := database.FromRecords([][]byte{{2}, {6}, {7}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(nil, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(db)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.BuildQuery(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := server.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Decrypt(resp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("D[2] = %d, want 7", got[0])
	}
	if resp.ServerTime <= 0 {
		t.Error("server time not recorded")
	}
}

func TestQueryValidation(t *testing.T) {
	client, server, db := setup(t, 8)
	if _, err := client.BuildQuery(-1, 8); err == nil {
		t.Error("BuildQuery accepted negative index")
	}
	if _, err := client.BuildQuery(8, 8); err == nil {
		t.Error("BuildQuery accepted out-of-range index")
	}
	if _, err := server.Answer(nil); err == nil {
		t.Error("Answer accepted nil query")
	}
	q, err := client.BuildQuery(0, 4) // wrong slot count
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Answer(q); err == nil {
		t.Error("Answer accepted mismatched slot count")
	}
	_ = db
}

func TestRecordTooLargeForPlaintextSpace(t *testing.T) {
	// 384-bit N cannot hold 64-byte (512-bit) records.
	client, err := NewClient(nil, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	db, err := database.New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(db)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.BuildQuery(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Answer(q); err == nil {
		t.Error("Answer accepted records larger than the plaintext space")
	}
}

func TestNilArguments(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("NewServer accepted nil database")
	}
	client, _, _ := setup(t, 4)
	if _, err := client.Decrypt(nil, 32); err == nil {
		t.Error("Decrypt accepted nil response")
	}
}
