// Package singleserver implements the FHE-style single-server PIR of the
// paper's §2.2 / Figure 1, on the Paillier additively homomorphic
// substrate.
//
// Protocol (Figure 1): the client builds a one-hot query vector for index
// α and encrypts every slot (➊–➋). The server multiplies each ciphertext
// homomorphically by the corresponding database record and sums the
// products (➍–➎); by the one-hot structure the result decrypts to D[α]
// (➏–➐). The server touches every record (all-for-one) and performs a
// modular exponentiation per record, which is why the paper's Take-away 1
// concludes single-server PIR is a poor match for lightweight PIM cores —
// this package exists to make that comparison concrete in the benchmarks.
package singleserver

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/paillier"
)

// Client generates queries and decrypts responses.
type Client struct {
	key *paillier.PrivateKey
	rng io.Reader
}

// Query is an encrypted one-hot vector.
type Query struct {
	// Pub is the client's public key, under which the server operates.
	Pub *paillier.PublicKey
	// Slots holds one ciphertext per database record.
	Slots []*paillier.Ciphertext
}

// Response is the server's single ciphertext reply.
type Response struct {
	Ct *paillier.Ciphertext
	// ServerTime is how long the homomorphic scan took (the quantity the
	// paper's Figure 1 discussion calls out as the FHE bottleneck).
	ServerTime time.Duration
}

// NewClient creates a client with a fresh key pair. randSource nil means
// crypto/rand.
func NewClient(randSource io.Reader, keyBits int) (*Client, error) {
	if randSource == nil {
		randSource = rand.Reader
	}
	key, err := paillier.GenerateKey(randSource, keyBits)
	if err != nil {
		return nil, err
	}
	return &Client{key: key, rng: randSource}, nil
}

// BuildQuery encrypts the one-hot indicator of index into numRecords
// slots (steps ➊–➋ of Figure 1).
func (c *Client) BuildQuery(index, numRecords int) (*Query, error) {
	if index < 0 || index >= numRecords {
		return nil, fmt.Errorf("singleserver: index %d outside [0,%d)", index, numRecords)
	}
	slots := make([]*paillier.Ciphertext, numRecords)
	zero := new(big.Int)
	oneInt := big.NewInt(1)
	for i := range slots {
		m := zero
		if i == index {
			m = oneInt
		}
		ct, err := c.key.Encrypt(c.rng, m)
		if err != nil {
			return nil, fmt.Errorf("singleserver: encrypt slot %d: %w", i, err)
		}
		slots[i] = ct
	}
	return &Query{Pub: &c.key.PublicKey, Slots: slots}, nil
}

// Decrypt recovers the queried record from the server's response
// (step ➐). recordSize restores the fixed-width encoding.
func (c *Client) Decrypt(resp *Response, recordSize int) ([]byte, error) {
	if resp == nil || resp.Ct == nil {
		return nil, errors.New("singleserver: nil response")
	}
	m, err := c.key.Decrypt(resp.Ct)
	if err != nil {
		return nil, err
	}
	out := m.Bytes()
	if len(out) > recordSize {
		return nil, fmt.Errorf("singleserver: plaintext %d bytes exceeds record size %d", len(out), recordSize)
	}
	// Left-pad to the fixed record width.
	padded := make([]byte, recordSize)
	copy(padded[recordSize-len(out):], out)
	return padded, nil
}

// Server holds the public database.
type Server struct {
	db *database.DB
}

// NewServer wraps a database. Records must fit in the plaintext space of
// the querying clients' keys; Answer validates this per query.
func NewServer(db *database.DB) (*Server, error) {
	if db == nil {
		return nil, errors.New("singleserver: nil database")
	}
	return &Server{db: db}, nil
}

// Answer executes steps ➍–➎ of Figure 1: the homomorphic dot product of
// the encrypted one-hot vector with the database. The server processes
// every record (all-for-one principle).
func (s *Server) Answer(q *Query) (*Response, error) {
	if q == nil || q.Pub == nil {
		return nil, errors.New("singleserver: nil query")
	}
	if len(q.Slots) != s.db.NumRecords() {
		return nil, fmt.Errorf("singleserver: query has %d slots for %d records",
			len(q.Slots), s.db.NumRecords())
	}
	recordBound := new(big.Int).Lsh(big.NewInt(1), uint(8*s.db.RecordSize()))
	if q.Pub.N.Cmp(recordBound) <= 0 {
		return nil, fmt.Errorf("singleserver: %d-byte records do not fit plaintext space (need N > 2^%d)",
			s.db.RecordSize(), 8*s.db.RecordSize())
	}

	start := time.Now()
	acc, err := q.Pub.EncryptZeroLike(nil)
	if err != nil {
		return nil, err
	}
	m := new(big.Int)
	for i := 0; i < s.db.NumRecords(); i++ {
		m.SetBytes(s.db.Record(i))
		if m.Sign() == 0 {
			// c^0 = Enc(0): adding it is a no-op, skip the exponentiation.
			continue
		}
		term := q.Pub.MulPlain(q.Slots[i], m)
		acc = q.Pub.Add(acc, term)
	}
	return &Response{Ct: acc, ServerTime: time.Since(start)}, nil
}
