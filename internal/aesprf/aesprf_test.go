package aesprf

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func randomBlock(t *testing.T) Block {
	t.Helper()
	var b Block
	if _, err := rand.Read(b[:]); err != nil {
		t.Fatalf("rand.Read: %v", err)
	}
	return b
}

func expanders() map[string]Expander {
	return map[string]Expander{
		"fixedkey": NewFixedKey(),
		"keyed":    NewKeyed(),
	}
}

func TestExpandDeterministic(t *testing.T) {
	for name, g := range expanders() {
		t.Run(name, func(t *testing.T) {
			seed := Block{1, 2, 3, 4}
			l1, r1 := g.Expand(seed)
			l2, r2 := g.Expand(seed)
			if l1 != l2 || r1 != r2 {
				t.Fatal("Expand is not deterministic")
			}
		})
	}
}

func TestExpandChildrenDiffer(t *testing.T) {
	for name, g := range expanders() {
		t.Run(name, func(t *testing.T) {
			seed := randomBlock(t)
			l, r := g.Expand(seed)
			if l == r {
				t.Fatal("left and right children are equal")
			}
			if l == seed || r == seed {
				t.Fatal("child equals seed")
			}
		})
	}
}

func TestDistinctSeedsDistinctChildren(t *testing.T) {
	for name, g := range expanders() {
		t.Run(name, func(t *testing.T) {
			s1, s2 := Block{1}, Block{2}
			l1, r1 := g.Expand(s1)
			l2, r2 := g.Expand(s2)
			if l1 == l2 || r1 == r2 {
				t.Fatal("distinct seeds produced colliding children")
			}
		})
	}
}

func TestExpandBatchMatchesSingle(t *testing.T) {
	for name, g := range expanders() {
		t.Run(name, func(t *testing.T) {
			const n = 33 // deliberately not a power of two
			seeds := make([]Block, n)
			for i := range seeds {
				seeds[i] = randomBlock(t)
			}
			left := make([]Block, n)
			right := make([]Block, n)
			g.ExpandBatch(seeds, left, right)
			for i := range seeds {
				wl, wr := g.Expand(seeds[i])
				if left[i] != wl || right[i] != wr {
					t.Fatalf("batch result %d differs from single expansion", i)
				}
			}
		})
	}
}

func TestExpandBatchEmpty(t *testing.T) {
	g := NewFixedKey()
	g.ExpandBatch(nil, nil, nil) // must not panic
}

func TestExpandBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched batch lengths did not panic")
		}
	}()
	NewFixedKey().ExpandBatch(make([]Block, 2), make([]Block, 1), make([]Block, 2))
}

func TestNewFixedKeyWithCustomKeys(t *testing.T) {
	var k0, k1 [BlockSize]byte
	k0[0], k1[0] = 0xAA, 0xBB
	g, err := NewFixedKeyWith(k0, k1)
	if err != nil {
		t.Fatalf("NewFixedKeyWith: %v", err)
	}
	std := NewFixedKey()
	seed := Block{9}
	l1, _ := g.Expand(seed)
	l2, _ := std.Expand(seed)
	if l1 == l2 {
		t.Fatal("custom-key PRG matches standard-key PRG")
	}
}

func TestConstructionsDiffer(t *testing.T) {
	seed := Block{7, 7, 7}
	fl, fr := NewFixedKey().Expand(seed)
	kl, kr := NewKeyed().Expand(seed)
	if fl == kl && fr == kr {
		t.Fatal("fixed-key and keyed constructions coincide (suspicious)")
	}
}

// Property: expansion output bytes look balanced — over many random seeds
// the children are never all-zero and never equal each other.
func TestQuickExpansionNonDegenerate(t *testing.T) {
	g := NewFixedKey()
	zero := Block{}
	f := func(seed Block) bool {
		l, r := g.Expand(seed)
		return l != r && l != zero && r != zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: batch expansion agrees with single expansion for random batches.
func TestQuickBatchAgrees(t *testing.T) {
	g := NewFixedKey()
	f := func(seeds []Block) bool {
		left := make([]Block, len(seeds))
		right := make([]Block, len(seeds))
		g.ExpandBatch(seeds, left, right)
		for i := range seeds {
			wl, wr := g.Expand(seeds[i])
			if left[i] != wl || right[i] != wr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Avalanche sanity check: flipping one seed bit flips roughly half the
// output bits (between 20% and 80% — generous bounds for a unit test).
func TestAvalanche(t *testing.T) {
	g := NewFixedKey()
	seed := randomBlock(t)
	flipped := seed
	flipped[0] ^= 1
	l1, _ := g.Expand(seed)
	l2, _ := g.Expand(flipped)
	diff := 0
	for i := range l1 {
		b := l1[i] ^ l2[i]
		for b != 0 {
			diff += int(b & 1)
			b >>= 1
		}
	}
	if diff < 128/5 || diff > 128*4/5 {
		t.Fatalf("avalanche: %d/128 bits differ, outside [25, 102]", diff)
	}
}

func TestBlockIsComparable(t *testing.T) {
	a := Block{1}
	b := Block{1}
	if a != b {
		t.Fatal("identical blocks compare unequal")
	}
	if bytes.Compare(a[:], b[:]) != 0 {
		t.Fatal("byte views differ")
	}
}

func BenchmarkExpandSingle(b *testing.B) {
	g := NewFixedKey()
	seed := Block{1, 2, 3}
	b.SetBytes(2 * BlockSize)
	for i := 0; i < b.N; i++ {
		seed, _ = g.Expand(seed)
	}
}

func BenchmarkExpandBatch1024(b *testing.B) {
	g := NewFixedKey()
	const n = 1024
	seeds := make([]Block, n)
	left := make([]Block, n)
	right := make([]Block, n)
	for i := range seeds {
		seeds[i][0] = byte(i)
		seeds[i][1] = byte(i >> 8)
	}
	b.SetBytes(2 * BlockSize * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ExpandBatch(seeds, left, right)
	}
}

func BenchmarkExpandKeyed(b *testing.B) {
	g := NewKeyed()
	seed := Block{1, 2, 3}
	b.SetBytes(2 * BlockSize)
	for i := 0; i < b.N; i++ {
		seed, _ = g.Expand(seed)
	}
}
