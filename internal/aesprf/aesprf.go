// Package aesprf provides the AES-128-based pseudorandom generators used to
// expand GGM tree nodes during DPF evaluation.
//
// Two constructions are offered:
//
//   - FixedKeyPRG: the standard fixed-key construction used by production
//     DPF implementations. Two AES permutations with fixed public keys are
//     applied in Matyas–Meyer–Oseas mode (G(s) = AES_K0(s)⊕s ‖ AES_K1(s)⊕s),
//     avoiding a per-node AES key schedule.
//   - KeyedPRG: the construction as written in the paper (§3.2), where each
//     node's seed becomes an AES key and the children are encryptions of
//     the constants 0 and 1. Slower (per-node key schedule) but literal.
//
// Both expose a batch API. On amd64, Go's crypto/aes lowers to the AES-NI
// instruction set, and issuing many independent blocks back-to-back lets
// the hardware pipeline overlap rounds — the same batching optimisation
// IM-PIR applies across GGM nodes at each subtree level.
package aesprf

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// BlockSize is the AES block and seed size in bytes (λ = 128 bits).
const BlockSize = 16

// Block is a 128-bit seed or ciphertext.
type Block [BlockSize]byte

// Expander doubles seeds: each 128-bit input yields a left and a right
// 128-bit child. Implementations must be deterministic and safe for
// concurrent use.
type Expander interface {
	// Expand computes the two children of a single seed.
	Expand(seed Block) (left, right Block)
	// ExpandBatch expands seeds[i] into left[i], right[i] for all i.
	// All three slices must have equal length.
	ExpandBatch(seeds, left, right []Block)
}

// Fixed public keys for the MMO construction. Any fixed values work; these
// are the digits of π and e, a customary nothing-up-my-sleeve choice.
var (
	fixedKeyLeft = [BlockSize]byte{
		0x31, 0x41, 0x59, 0x26, 0x53, 0x58, 0x97, 0x93,
		0x23, 0x84, 0x62, 0x64, 0x33, 0x83, 0x27, 0x95,
	}
	fixedKeyRight = [BlockSize]byte{
		0x27, 0x18, 0x28, 0x18, 0x28, 0x45, 0x90, 0x45,
		0x23, 0x53, 0x60, 0x28, 0x74, 0x71, 0x35, 0x26,
	}
)

// FixedKeyPRG is the fixed-key MMO length-doubling PRG.
type FixedKeyPRG struct {
	left  cipher.Block
	right cipher.Block
}

var _ Expander = (*FixedKeyPRG)(nil)

// NewFixedKey returns a PRG with the package's standard fixed keys.
func NewFixedKey() *FixedKeyPRG {
	g, err := NewFixedKeyWith(fixedKeyLeft, fixedKeyRight)
	if err != nil {
		// Unreachable: the standard keys are valid AES-128 keys.
		panic(fmt.Sprintf("aesprf: standard keys rejected: %v", err))
	}
	return g
}

// NewFixedKeyWith returns a PRG using the caller's two fixed AES-128 keys.
func NewFixedKeyWith(keyLeft, keyRight [BlockSize]byte) (*FixedKeyPRG, error) {
	l, err := aes.NewCipher(keyLeft[:])
	if err != nil {
		return nil, fmt.Errorf("aesprf: left key: %w", err)
	}
	r, err := aes.NewCipher(keyRight[:])
	if err != nil {
		return nil, fmt.Errorf("aesprf: right key: %w", err)
	}
	return &FixedKeyPRG{left: l, right: r}, nil
}

// Expand implements Expander.
func (g *FixedKeyPRG) Expand(seed Block) (left, right Block) {
	g.left.Encrypt(left[:], seed[:])
	g.right.Encrypt(right[:], seed[:])
	xorInto(&left, &seed)
	xorInto(&right, &seed)
	return left, right
}

// ExpandBatch implements Expander. The loop body issues two independent
// AES block operations per seed with no data dependencies between
// iterations, which keeps the AES-NI pipeline full.
func (g *FixedKeyPRG) ExpandBatch(seeds, left, right []Block) {
	checkBatch(len(seeds), len(left), len(right))
	for i := range seeds {
		g.left.Encrypt(left[i][:], seeds[i][:])
		g.right.Encrypt(right[i][:], seeds[i][:])
	}
	for i := range seeds {
		xorInto(&left[i], &seeds[i])
		xorInto(&right[i], &seeds[i])
	}
}

// KeyedPRG re-keys AES with each node seed and encrypts the constants 0
// and 1, matching the paper's PRF_s(x) notation literally.
type KeyedPRG struct{}

var _ Expander = KeyedPRG{}

// NewKeyed returns the re-keying PRG.
func NewKeyed() KeyedPRG { return KeyedPRG{} }

// Expand implements Expander.
func (KeyedPRG) Expand(seed Block) (left, right Block) {
	c, err := aes.NewCipher(seed[:])
	if err != nil {
		// Unreachable: all 16-byte slices are valid AES-128 keys.
		panic(fmt.Sprintf("aesprf: seed rejected: %v", err))
	}
	var zero, one Block
	one[0] = 1
	c.Encrypt(left[:], zero[:])
	c.Encrypt(right[:], one[:])
	return left, right
}

// ExpandBatch implements Expander.
func (g KeyedPRG) ExpandBatch(seeds, left, right []Block) {
	checkBatch(len(seeds), len(left), len(right))
	for i := range seeds {
		left[i], right[i] = g.Expand(seeds[i])
	}
}

func checkBatch(nSeeds, nLeft, nRight int) {
	if nSeeds != nLeft || nSeeds != nRight {
		panic(fmt.Sprintf("aesprf: batch length mismatch seeds=%d left=%d right=%d",
			nSeeds, nLeft, nRight))
	}
}

func xorInto(dst, src *Block) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
