// Package paillier implements the Paillier additively homomorphic
// cryptosystem over the Go standard library's math/big.
//
// IM-PIR uses it as the substrate for the single-server PIR construction
// of §2.2 / Figure 1 of the paper: the server homomorphically multiplies
// an encrypted one-hot query vector against the database and sums the
// result, never learning the queried index. Paillier supports exactly the
// two operations that construction needs — ciphertext·ciphertext addition
// and ciphertext·plaintext multiplication — which makes it the smallest
// honest stand-in for the paper's "FHE" single-server background without
// pulling a lattice library into a stdlib-only reproduction. The
// asymptotics the paper cares about (server does heavy modular arithmetic
// over the whole database per query) are preserved.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// MinKeyBits is the smallest accepted modulus size. Real deployments use
// ≥ 2048; tests use small keys for speed.
const MinKeyBits = 128

var one = big.NewInt(1)

// PublicKey encrypts and operates on ciphertexts.
type PublicKey struct {
	// N is the modulus (product of two safe-ish primes).
	N *big.Int
	// NSquared caches N².
	NSquared *big.Int
}

// PrivateKey decrypts.
type PrivateKey struct {
	PublicKey

	// lambda is lcm(p-1, q-1); mu is lambda⁻¹ mod N.
	lambda *big.Int
	mu     *big.Int
}

// Ciphertext is an element of Z*_{N²}. Treat as opaque.
type Ciphertext struct {
	c *big.Int
}

// GenerateKey creates a key pair with an N of the given bit length.
// randSource nil means crypto/rand.
func GenerateKey(randSource io.Reader, bits int) (*PrivateKey, error) {
	if bits < MinKeyBits {
		return nil, fmt.Errorf("paillier: key size %d below minimum %d", bits, MinKeyBits)
	}
	if randSource == nil {
		randSource = rand.Reader
	}
	for {
		p, err := rand.Prime(randSource, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate prime: %w", err)
		}
		q, err := rand.Prime(randSource, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pMinus := new(big.Int).Sub(p, one)
		qMinus := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pMinus, qMinus)
		lambda := new(big.Int).Mul(pMinus, qMinus)
		lambda.Div(lambda, gcd) // lcm
		// mu = lambda^{-1} mod n must exist; retry otherwise.
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{
				N:        n,
				NSquared: new(big.Int).Mul(n, n),
			},
			lambda: lambda,
			mu:     mu,
		}, nil
	}
}

// Encrypt encrypts m ∈ [0, N) with fresh randomness:
// c = (1+N)^m · r^N mod N², using the g = N+1 shortcut
// (1+N)^m ≡ 1 + mN (mod N²).
func (pk *PublicKey) Encrypt(randSource io.Reader, m *big.Int) (*Ciphertext, error) {
	if randSource == nil {
		randSource = rand.Reader
	}
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext outside [0, N)")
	}
	r, err := pk.randomUnit(randSource)
	if err != nil {
		return nil, err
	}
	// gm = 1 + m*N mod N².
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.NSquared)
	rn := new(big.Int).Exp(r, pk.N, pk.NSquared)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{c: c}, nil
}

func (pk *PublicKey) randomUnit(randSource io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(randSource, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: sample randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Decrypt recovers the plaintext: m = L(c^λ mod N²)·μ mod N with
// L(x) = (x−1)/N.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.c == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	x := new(big.Int).Exp(ct.c, sk.lambda, sk.NSquared)
	x.Sub(x, one)
	x.Div(x, sk.N)
	x.Mul(x, sk.mu)
	x.Mod(x, sk.N)
	return x, nil
}

// Add returns Enc(m1 + m2 mod N): the homomorphic sum c1·c2 mod N².
func (pk *PublicKey) Add(c1, c2 *Ciphertext) *Ciphertext {
	out := new(big.Int).Mul(c1.c, c2.c)
	out.Mod(out, pk.NSquared)
	return &Ciphertext{c: out}
}

// MulPlain returns Enc(m·k mod N): the homomorphic scalar product c^k
// mod N². This is the "homomorphic multiplication of a ciphertext by a
// database record" step ➍ of Figure 1.
func (pk *PublicKey) MulPlain(ct *Ciphertext, k *big.Int) *Ciphertext {
	out := new(big.Int).Exp(ct.c, k, pk.NSquared)
	return &Ciphertext{c: out}
}

// EncryptZeroLike returns a fresh encryption of 0, used as the neutral
// accumulator of homomorphic sums.
func (pk *PublicKey) EncryptZeroLike(randSource io.Reader) (*Ciphertext, error) {
	return pk.Encrypt(randSource, new(big.Int))
}

// Bytes serialises the ciphertext.
func (ct *Ciphertext) Bytes() []byte { return ct.c.Bytes() }

// CiphertextFromBytes deserialises a ciphertext and validates its range.
func (pk *PublicKey) CiphertextFromBytes(b []byte) (*Ciphertext, error) {
	c := new(big.Int).SetBytes(b)
	if c.Sign() <= 0 || c.Cmp(pk.NSquared) >= 0 {
		return nil, errors.New("paillier: ciphertext outside Z_{N²}")
	}
	return &Ciphertext{c: c}, nil
}
