package paillier

import (
	"math/big"
	"testing"
	"testing/quick"
)

// testKeyBits keeps unit tests fast; security is not under test.
const testKeyBits = 256

func testKey(t *testing.T) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(nil, testKeyBits)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return key
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := testKey(t)
	for _, m := range []int64{0, 1, 2, 255, 65537, 1 << 40} {
		ct, err := key.Encrypt(nil, big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := key.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got.Int64() != m {
			t.Fatalf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := testKey(t)
	m := big.NewInt(42)
	c1, err := key.Encrypt(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := key.Encrypt(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.c.Cmp(c2.c) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	key := testKey(t)
	a, _ := key.Encrypt(nil, big.NewInt(17))
	b, _ := key.Encrypt(nil, big.NewInt(25))
	sum, err := key.Decrypt(key.Add(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 42 {
		t.Fatalf("Dec(Enc(17)+Enc(25)) = %d, want 42", sum.Int64())
	}
}

func TestHomomorphicMulPlain(t *testing.T) {
	key := testKey(t)
	ct, _ := key.Encrypt(nil, big.NewInt(6))
	prod, err := key.Decrypt(key.MulPlain(ct, big.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	if prod.Int64() != 42 {
		t.Fatalf("Dec(Enc(6)^7) = %d, want 42", prod.Int64())
	}
}

func TestMulPlainByZeroAndOne(t *testing.T) {
	key := testKey(t)
	ct, _ := key.Encrypt(nil, big.NewInt(99))
	byOne, _ := key.Decrypt(key.MulPlain(ct, big.NewInt(1)))
	if byOne.Int64() != 99 {
		t.Fatalf("c^1 decrypts to %d, want 99", byOne.Int64())
	}
	byZero, _ := key.Decrypt(key.MulPlain(ct, new(big.Int)))
	if byZero.Sign() != 0 {
		t.Fatalf("c^0 decrypts to %v, want 0", byZero)
	}
}

func TestAdditionWrapsModN(t *testing.T) {
	key := testKey(t)
	nMinusOne := new(big.Int).Sub(key.N, big.NewInt(1))
	a, err := key.Encrypt(nil, nMinusOne)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := key.Encrypt(nil, big.NewInt(2))
	sum, _ := key.Decrypt(key.Add(a, b))
	if sum.Int64() != 1 {
		t.Fatalf("(N-1)+2 mod N = %v, want 1", sum)
	}
}

func TestValidation(t *testing.T) {
	if _, err := GenerateKey(nil, 64); err == nil {
		t.Error("GenerateKey accepted undersized key")
	}
	key := testKey(t)
	if _, err := key.Encrypt(nil, big.NewInt(-1)); err == nil {
		t.Error("Encrypt accepted negative plaintext")
	}
	if _, err := key.Encrypt(nil, key.N); err == nil {
		t.Error("Encrypt accepted plaintext ≥ N")
	}
	if _, err := key.Decrypt(nil); err == nil {
		t.Error("Decrypt accepted nil ciphertext")
	}
}

func TestCiphertextSerialization(t *testing.T) {
	key := testKey(t)
	ct, _ := key.Encrypt(nil, big.NewInt(1234))
	back, err := key.CiphertextFromBytes(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m, err := key.Decrypt(back)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 1234 {
		t.Fatalf("deserialised ciphertext decrypts to %d", m.Int64())
	}
	if _, err := key.CiphertextFromBytes(nil); err == nil {
		t.Error("CiphertextFromBytes accepted empty input")
	}
	huge := new(big.Int).Add(key.NSquared, big.NewInt(1))
	if _, err := key.CiphertextFromBytes(huge.Bytes()); err == nil {
		t.Error("CiphertextFromBytes accepted out-of-range value")
	}
}

// Property: Dec(Enc(a) + Enc(b)·k) = a + b·k mod N for small a, b, k.
func TestQuickAffineHomomorphism(t *testing.T) {
	key := testKey(t)
	f := func(aRaw, bRaw, kRaw uint32) bool {
		a := big.NewInt(int64(aRaw))
		b := big.NewInt(int64(bRaw))
		k := big.NewInt(int64(kRaw % 1000))
		ca, err := key.Encrypt(nil, a)
		if err != nil {
			return false
		}
		cb, err := key.Encrypt(nil, b)
		if err != nil {
			return false
		}
		got, err := key.Decrypt(key.Add(ca, key.MulPlain(cb, k)))
		if err != nil {
			return false
		}
		want := new(big.Int).Mul(b, k)
		want.Add(want, a)
		want.Mod(want, key.N)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
