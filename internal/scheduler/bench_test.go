package scheduler

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
)

// benchScheduler drives K concurrent clients through one scheduler and
// reports the queue metrics bench-report.sh tracks across PRs: average
// coalesced pass size, mean queue wait, and rejects.
func benchScheduler(b *testing.B, window time.Duration) {
	eng, err := cpupir.New(cpupir.Config{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	db, err := database.GenerateHashDB(1<<12, 3)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		b.Fatal(err)
	}
	s := New(eng, Config{QueueDepth: 1024, CoalesceWindow: window})
	defer s.Close()

	const clients = 16
	keys := make([]*dpf.Key, clients)
	for i := range keys {
		keys[i], _, err = dpf.Gen(dpf.Params{Domain: db.Domain()}, uint64(i*17), nil)
		if err != nil {
			b.Fatal(err)
		}
	}

	ctx := context.Background()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if _, _, err := s.Query(ctx, keys[c]); err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()

	stats := s.Stats()
	b.ReportMetric(stats.AvgCoalesce(), "queries/pass")
	b.ReportMetric(float64(stats.AvgWait().Nanoseconds()), "queue-wait-ns")
	b.ReportMetric(float64(stats.Rejected), "rejects")
}

func BenchmarkSchedulerSerial(b *testing.B) { benchScheduler(b, 0) }

func BenchmarkSchedulerCoalesced(b *testing.B) { benchScheduler(b, 2*time.Millisecond) }
