// Package scheduler is the asynchronous dispatch layer between the
// network transport and a PIR engine. Engines process one pass at a time
// (the PIM clusters serialise kernel launches the way real hardware
// does), so under concurrent load the question is not "how fast is one
// query" but "how is the next pass filled". The scheduler owns that
// decision:
//
//   - Admission: a bounded queue absorbs bursts; when it is full the
//     submitter gets ErrBusy immediately instead of stalling the TCP
//     accept loop (the transport turns ErrBusy into a MsgBusy frame).
//   - Coalescing: single queries arriving from different connections
//     within a configurable window are gathered into one §3.4 QueryBatch
//     pass — the batch pipeline's amortisation (Fig. 8 of the paper)
//     applied across clients, not just within one client's batch. The
//     subresults are demultiplexed back to each waiter.
//   - Cancellation: a request whose context dies while queued is
//     dequeued and completed with the context error; the engine never
//     spends a pass on a dead client.
//   - Update quiescing: Update drains in-flight passes, applies the §3.3
//     bulk update atomically, bumps the database epoch, and resumes —
//     queries and updates may now be issued concurrently.
//
// One Scheduler wraps one engine. The transport server talks to it
// through the context-aware Dispatcher interface it satisfies.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
)

// Engine is the compute plane under the scheduler: any of the IM-PIR,
// CPU or GPU engines.
type Engine interface {
	Name() string
	Database() *database.DB
	Query(*dpf.Key) ([]byte, metrics.Breakdown, error)
	QueryBatch([]*dpf.Key) ([][]byte, metrics.BatchStats, error)
	QueryShare(*bitvec.Vector) ([]byte, metrics.Breakdown, error)
	QueryShareBatch([]*bitvec.Vector) ([][]byte, metrics.BatchStats, error)
	ApplyUpdates(updates map[uint64][]byte) error
}

var (
	// ErrBusy reports a full admission queue — the request was rejected
	// without an engine pass. Retry after a backoff.
	ErrBusy = errors.New("pir server busy: admission queue full")
	// ErrClosed reports a scheduler that is draining or closed.
	ErrClosed = errors.New("scheduler: closed")
)

// Config tunes a Scheduler. The zero value is a production-reasonable
// default: a 256-deep queue with coalescing disabled.
type Config struct {
	// QueueDepth bounds the admission queue; submissions beyond it fail
	// with ErrBusy. 0 means 256.
	QueueDepth int
	// CoalesceWindow is how long the dispatcher holds the first single
	// query of a pass to gather concurrent ones into one batch pass.
	// 0 disables coalescing: every single query runs as its own pass.
	CoalesceWindow time.Duration
	// MaxCoalesce caps how many single queries one coalesced pass may
	// serve. 0 means 64.
	MaxCoalesce int
	// Obs, when non-nil, receives per-stage latency observations (queue
	// wait and engine pass per frame type, per-request engine phase
	// attribution) and has per-query obs.Trace contexts filled in. Nil
	// keeps the scheduler un-instrumented at zero cost.
	Obs *obs.ServerMetrics
	// Readiness, when non-nil, has its update-quiesce condition dropped
	// while an Update holds the quiesce gate, so /readyz steers an
	// orchestrator away during the brief query hold.
	Readiness *obs.Readiness
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.MaxCoalesce == 0 {
		c.MaxCoalesce = 64
	}
	return c
}

type reqKind int

const (
	reqQuery      reqKind = iota + 1 // one DPF key; coalescable
	reqBatch                         // a client's explicit key batch
	reqShare                         // one selector share
	reqShareBatch                    // a client's explicit share batch
)

// frame names the request kind the way the wire and the exported
// metrics do, so a scheduler-side histogram sample and a transport-side
// counter for the same request always share one frame label.
func (k reqKind) frame() string {
	switch k {
	case reqQuery:
		return "query"
	case reqBatch:
		return "batch"
	case reqShare:
		return "share"
	case reqShareBatch:
		return "share_batch"
	default:
		return "unknown"
	}
}

// request is one queued unit of work plus the channel its submitter
// waits on. The dispatcher writes the result fields before closing done;
// a submitter that stops waiting (context death) simply never reads
// them.
type request struct {
	kind     reqKind
	ctx      context.Context
	key      *dpf.Key
	keys     []*dpf.Key
	share    *bitvec.Vector
	shares   []*bitvec.Vector
	enqueued time.Time

	done    chan struct{}
	results [][]byte
	bd      metrics.Breakdown
	stats   metrics.BatchStats
	err     error
}

func (r *request) complete(err error) {
	r.err = err
	close(r.done)
}

// Scheduler is the admission/dispatch layer for one engine. All methods
// are safe for concurrent use.
type Scheduler struct {
	eng Engine
	cfg Config

	queue chan *request
	quit  chan struct{}

	mu      sync.Mutex
	closed  bool
	pending int // requests admitted but not yet completed

	gate quiesceGate

	// quiescers counts Updates currently holding or waiting on the
	// quiesce gate; the readiness condition drops while it is nonzero.
	quiescers atomic.Int64

	// counters (atomics; snapshot via Stats).
	submitted        atomic.Uint64
	rejected         atomic.Uint64
	cancelled        atomic.Uint64
	dispatched       atomic.Uint64
	passes           atomic.Uint64
	coalescedPasses  atomic.Uint64
	coalescedQueries atomic.Uint64
	fusedPasses      atomic.Uint64
	totalWaitNanos   atomic.Int64
	maxDepth         atomic.Int64
	passWidths       [metrics.NumWidthBuckets]atomic.Uint64
}

// New wraps an engine in a scheduler and starts its dispatch loop.
func New(eng Engine, cfg Config) *Scheduler {
	s := &Scheduler{
		eng:   eng,
		cfg:   cfg.withDefaults(),
		quit:  make(chan struct{}),
		queue: make(chan *request, cfg.withDefaults().QueueDepth),
	}
	s.gate.init()
	go s.loop()
	return s
}

// Name reports the underlying engine's name.
func (s *Scheduler) Name() string { return s.eng.Name() }

// Database returns the engine's loaded database, or nil.
func (s *Scheduler) Database() *database.DB { return s.eng.Database() }

// Config returns the scheduler's effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// submit enqueues a request, applying admission control. It never
// blocks: a full queue is ErrBusy, a closed scheduler ErrClosed.
func (s *Scheduler) submit(req *request) error {
	if err := req.ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.queue <- req:
		s.pending++
		s.submitted.Add(1)
		if d := int64(len(s.queue)); d > s.maxDepth.Load() {
			s.maxDepth.Store(d)
		}
		return nil
	default:
		s.rejected.Add(1)
		return ErrBusy
	}
}

// finish completes a request and retires it from the pending count —
// the only way a request admitted by submit leaves the scheduler, so
// Drain's pending==0 check has no window where a dequeued-but-unserved
// request is invisible.
func (s *Scheduler) finish(req *request, err error) {
	req.complete(err)
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
}

// wait blocks until the dispatcher completes the request or the context
// dies. A request abandoned while queued is dequeued by the dispatcher
// (its context error is observed there) — no engine pass is spent on it.
func (s *Scheduler) wait(req *request) error {
	select {
	case <-req.done:
		return req.err
	case <-req.ctx.Done():
		// The dispatcher will skip the request when it reaches it; the
		// submitter does not linger for that.
		return req.ctx.Err()
	}
}

// Query schedules one single-query pass (coalescable with concurrent
// single queries from other submitters).
func (s *Scheduler) Query(ctx context.Context, key *dpf.Key) ([]byte, metrics.Breakdown, error) {
	req := &request{kind: reqQuery, ctx: ctx, key: key, enqueued: time.Now(), done: make(chan struct{})}
	if err := s.submit(req); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	if err := s.wait(req); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	return req.results[0], req.bd, nil
}

// QueryBatch schedules a client's explicit batch as one pass.
func (s *Scheduler) QueryBatch(ctx context.Context, keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	req := &request{kind: reqBatch, ctx: ctx, keys: keys, enqueued: time.Now(), done: make(chan struct{})}
	if err := s.submit(req); err != nil {
		return nil, metrics.BatchStats{}, err
	}
	if err := s.wait(req); err != nil {
		return nil, metrics.BatchStats{}, err
	}
	return req.results, req.stats, nil
}

// QueryShare schedules one selector-share pass (the naive n-server
// encoding has no batch pipeline, so shares are never coalesced).
func (s *Scheduler) QueryShare(ctx context.Context, share *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	req := &request{kind: reqShare, ctx: ctx, share: share, enqueued: time.Now(), done: make(chan struct{})}
	if err := s.submit(req); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	if err := s.wait(req); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	return req.results[0], req.bd, nil
}

// QueryShareBatch schedules a client's explicit share batch as one
// request: admission is atomic — the whole batch is accepted or rejected
// busy, never half-served.
func (s *Scheduler) QueryShareBatch(ctx context.Context, shares []*bitvec.Vector) ([][]byte, error) {
	req := &request{kind: reqShareBatch, ctx: ctx, shares: shares, enqueued: time.Now(), done: make(chan struct{})}
	if err := s.submit(req); err != nil {
		return nil, err
	}
	if err := s.wait(req); err != nil {
		return nil, err
	}
	return req.results, nil
}

// Update applies a §3.3 bulk record update with epoch-based quiescing:
// it waits for the in-flight engine pass to drain, applies the update
// atomically while the dispatcher is held off, bumps the epoch, and
// resumes. Safe to call while queries are in flight; concurrent updates
// serialise.
//
// The whole update set is validated against the loaded database before
// the quiesce begins: every request path converges here (local Server
// API and the wire transport), so a malformed update must never be able
// to drain in-flight passes and stall dispatch just to be rejected by
// the engine afterwards.
func (s *Scheduler) Update(updates map[uint64][]byte) error {
	if err := validateUpdates(s.eng.Database(), updates); err != nil {
		return err
	}
	// Drop the readiness condition for the whole quiesce — including the
	// wait for in-flight passes to drain — so an orchestrator polling
	// /readyz stops routing before queries start being held. A counter
	// (not a plain flip) keeps the condition down while ANY concurrent
	// update is still quiescing.
	if s.quiescers.Add(1) == 1 {
		s.cfg.Readiness.Set(obs.CondUpdateQuiesce, false)
	}
	s.gate.beginUpdate()
	err := s.eng.ApplyUpdates(updates)
	s.gate.endUpdate(err == nil)
	if s.quiescers.Add(-1) == 0 {
		s.cfg.Readiness.Set(obs.CondUpdateQuiesce, true)
	}
	return err
}

// validateUpdates rejects malformed update sets before any quiescing.
func validateUpdates(db *database.DB, updates map[uint64][]byte) error {
	if db == nil {
		return errors.New("scheduler: update before a database is loaded")
	}
	if len(updates) == 0 {
		return errors.New("scheduler: empty update set")
	}
	for idx, rec := range updates {
		if idx >= uint64(db.NumRecords()) {
			return fmt.Errorf("scheduler: update index %d outside database of %d records", idx, db.NumRecords())
		}
		if len(rec) != db.RecordSize() {
			return fmt.Errorf("scheduler: update for record %d has %d bytes, want the database record size %d",
				idx, len(rec), db.RecordSize())
		}
	}
	return nil
}

// Stats snapshots the scheduler's queue counters.
func (s *Scheduler) Stats() metrics.SchedulerStats {
	updates, epoch := s.gate.epochs()
	st := metrics.SchedulerStats{
		Submitted:        s.submitted.Load(),
		Rejected:         s.rejected.Load(),
		Cancelled:        s.cancelled.Load(),
		Dispatched:       s.dispatched.Load(),
		Passes:           s.passes.Load(),
		CoalescedPasses:  s.coalescedPasses.Load(),
		CoalescedQueries: s.coalescedQueries.Load(),
		FusedPasses:      s.fusedPasses.Load(),
		MaxDepth:         int(s.maxDepth.Load()),
		Depth:            len(s.queue),
		TotalWait:        time.Duration(s.totalWaitNanos.Load()),
		Updates:          updates,
		Epoch:            epoch,
	}
	for i := range st.PassWidths {
		st.PassWidths[i] = s.passWidths[i].Load()
	}
	return st
}

// Drain stops admitting work and waits until the queue is empty and the
// in-flight pass (if any) has finished, or until ctx expires. Use for
// graceful shutdown; Close afterwards releases the dispatch loop.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := s.pending == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("scheduler: drain: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// Close stops the scheduler: new submissions fail with ErrClosed and
// requests still queued are completed with ErrClosed. Close does not
// wait for an engine pass already executing; pair with Drain for a
// graceful stop. Close is idempotent.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	}
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.mu.Unlock()
	return nil
}

// loop is the dispatch goroutine: it pulls requests off the admission
// queue one pass at a time and executes them against the engine.
func (s *Scheduler) loop() {
	for {
		select {
		case <-s.quit:
			s.failPending()
			return
		case req := <-s.queue:
			s.dispatch(req)
		}
	}
}

// failPending completes everything still queued with ErrClosed. By the
// time quit is observed, closed is set under s.mu, so no new request can
// be enqueued after this drain.
func (s *Scheduler) failPending() {
	for {
		select {
		case req := <-s.queue:
			s.finish(req, ErrClosed)
		default:
			return
		}
	}
}

// dispatch executes one engine pass for req, coalescing concurrent
// single queries into it when a window is configured.
func (s *Scheduler) dispatch(req *request) {
	if err := req.ctx.Err(); err != nil {
		s.cancelled.Add(1)
		s.finish(req, err)
		return
	}
	if req.kind == reqQuery && s.cfg.CoalesceWindow > 0 {
		batch, next := s.gather(req)
		s.runCoalesced(batch)
		if next != nil {
			s.dispatch(next)
		}
		return
	}
	s.runSolo(req)
}

// gather holds the first single query for the coalescing window,
// collecting further single queries (from any connection) into the same
// pass. A non-coalescable request ends the window early and is returned
// for immediate dispatch after the batch.
func (s *Scheduler) gather(first *request) (batch []*request, next *request) {
	batch = []*request{first}
	timer := time.NewTimer(s.cfg.CoalesceWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxCoalesce {
		select {
		case <-timer.C:
			return batch, nil
		case <-s.quit:
			return batch, nil
		case req := <-s.queue:
			if err := req.ctx.Err(); err != nil {
				s.cancelled.Add(1)
				s.finish(req, err)
				continue
			}
			if req.kind != reqQuery {
				return batch, req
			}
			batch = append(batch, req)
		}
	}
	return batch, nil
}

// beginPass records queue-wait metrics and takes the quiesce gate for
// one engine pass covering reqs.
func (s *Scheduler) beginPass(reqs ...*request) {
	now := time.Now()
	for _, r := range reqs {
		wait := now.Sub(r.enqueued)
		s.totalWaitNanos.Add(wait.Nanoseconds())
		s.cfg.Obs.ObserveStage(r.kind.frame(), obs.StageQueue, wait)
		if tr := obs.FromContext(r.ctx); tr != nil {
			tr.QueueWait = wait
		}
	}
	s.dispatched.Add(uint64(len(reqs)))
	s.passes.Add(1)
	s.gate.beginQuery()
}

// observeServe records the engine-stage metrics and fills the trace of
// one request served by a pass: the pass duration (shared by every
// request the pass carried), how many queries the pass served, whether
// it ran fused, and this request's engine phase attribution. It runs
// before finish, so a submitter woken by the done close observes a
// fully written trace.
func (s *Scheduler) observeServe(r *request, engDur time.Duration, width int, fused bool, bd metrics.Breakdown) {
	s.cfg.Obs.ObserveStage(r.kind.frame(), obs.StageEngine, engDur)
	s.cfg.Obs.ObserveBreakdown(bd)
	if tr := obs.FromContext(r.ctx); tr != nil {
		tr.Engine = engDur
		tr.PassWidth = width
		tr.Fused = fused
		tr.Breakdown = bd
	}
}

func (s *Scheduler) endPass() {
	s.gate.endQuery()
}

// runCoalesced executes one pass for a gathered batch of single queries
// and demultiplexes the subresults back to each waiter. A batch of one
// degenerates to a solo single-query pass.
func (s *Scheduler) runCoalesced(batch []*request) {
	if len(batch) == 1 {
		s.runSolo(batch[0])
		return
	}
	s.beginPass(batch...)
	defer s.endPass()

	keys := make([]*dpf.Key, len(batch))
	for i, r := range batch {
		keys[i] = r.key
	}
	engStart := time.Now()
	results, stats, err := s.eng.QueryBatch(keys)
	engDur := time.Since(engStart)
	if err != nil {
		// One bad key fails the engine's whole batch pass. Rerun each
		// query solo (still under this pass's gate hold) so the error
		// reaches only the requests that caused it — a client feeding
		// invalid keys must not fail other clients' coalesced queries.
		for _, r := range batch {
			if cerr := r.ctx.Err(); cerr != nil {
				s.cancelled.Add(1)
				s.finish(r, cerr)
				continue
			}
			soloStart := time.Now()
			result, bd, qerr := s.eng.Query(r.key)
			if qerr != nil {
				s.finish(r, qerr)
				continue
			}
			r.results = [][]byte{result}
			r.bd = bd
			s.observeServe(r, time.Since(soloStart), 1, false, bd)
			s.finish(r, nil)
		}
		return
	}
	s.coalescedPasses.Add(1)
	s.coalescedQueries.Add(uint64(len(batch)))
	if stats.Fused {
		s.fusedPasses.Add(1)
	}
	s.passWidths[metrics.WidthBucket(len(batch))].Add(1)
	perQuery := stats.PerQuery
	for i, r := range batch {
		r.results = [][]byte{results[i]}
		r.bd = perQuery
		s.observeServe(r, engDur, len(batch), stats.Fused, perQuery)
		s.finish(r, nil)
	}
}

// runSolo executes one pass for a single request of any kind.
func (s *Scheduler) runSolo(req *request) {
	s.beginPass(req)
	defer s.endPass()
	engStart := time.Now()
	switch req.kind {
	case reqQuery:
		s.passWidths[metrics.WidthBucket(1)].Add(1)
		result, bd, err := s.eng.Query(req.key)
		if err != nil {
			s.finish(req, err)
			return
		}
		req.results = [][]byte{result}
		req.bd = bd
		s.observeServe(req, time.Since(engStart), 1, false, bd)
		s.finish(req, nil)
	case reqBatch:
		results, stats, err := s.eng.QueryBatch(req.keys)
		if err != nil {
			s.finish(req, err)
			return
		}
		if stats.Fused {
			s.fusedPasses.Add(1)
		}
		req.results = results
		req.stats = stats
		s.observeServe(req, time.Since(engStart), stats.Queries, stats.Fused, stats.PerQuery)
		s.finish(req, nil)
	case reqShare:
		result, bd, err := s.eng.QueryShare(req.share)
		if err != nil {
			s.finish(req, err)
			return
		}
		req.results = [][]byte{result}
		req.bd = bd
		s.observeServe(req, time.Since(engStart), 1, false, bd)
		s.finish(req, nil)
	case reqShareBatch:
		// One fused engine pass for the whole share batch: the engine
		// streams the database once for all shares instead of once per
		// share.
		results, stats, err := s.eng.QueryShareBatch(req.shares)
		if err != nil {
			s.finish(req, err)
			return
		}
		if stats.Fused {
			s.fusedPasses.Add(1)
		}
		req.results = results
		req.stats = stats
		s.observeServe(req, time.Since(engStart), stats.Queries, stats.Fused, stats.PerQuery)
		s.finish(req, nil)
	default:
		s.finish(req, fmt.Errorf("scheduler: unknown request kind %d", req.kind))
	}
}

// quiesceGate is the epoch mechanism behind Update: query passes hold
// the gate shared, an update holds it exclusively after draining the
// in-flight pass, and each update bumps the database epoch. It is a
// purpose-named reader/writer gate rather than a sync.RWMutex so the
// epoch and update counters live with the state they describe.
type quiesceGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int  // query passes holding the gate
	updating bool // an update holds the gate exclusively
	updates  uint64
	epoch    uint64
}

func (g *quiesceGate) init() { g.cond = sync.NewCond(&g.mu) }

func (g *quiesceGate) beginQuery() {
	g.mu.Lock()
	for g.updating {
		g.cond.Wait()
	}
	g.inflight++
	g.mu.Unlock()
}

func (g *quiesceGate) endQuery() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// beginUpdate waits for its exclusive turn, then for in-flight query
// passes to drain.
func (g *quiesceGate) beginUpdate() {
	g.mu.Lock()
	for g.updating {
		g.cond.Wait()
	}
	g.updating = true
	for g.inflight > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// endUpdate resumes query passes; applied reports whether the update
// actually changed the database (a rejected update bumps no epoch).
func (g *quiesceGate) endUpdate(applied bool) {
	g.mu.Lock()
	g.updating = false
	if applied {
		g.updates++
		g.epoch++
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *quiesceGate) epochs() (updates, epoch uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.updates, g.epoch
}
