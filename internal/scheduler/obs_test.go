package scheduler

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/impir/impir/internal/obs"
)

// gatedEngine blocks ApplyUpdates on a channel so a test can hold the
// scheduler's update quiesce open for as long as it likes.
type gatedEngine struct {
	fakeEngine
	gate chan struct{}
}

func (g *gatedEngine) ApplyUpdates(updates map[uint64][]byte) error {
	<-g.gate
	return g.fakeEngine.ApplyUpdates(updates)
}

// TestReadyzFlipsDuringUpdateQuiesce drives a real admin HTTP endpoint
// against a scheduler whose update is deterministically stuck inside
// the engine: /readyz must report 503 naming update-quiesce for the
// whole quiesce, queries submitted meanwhile must be held (not failed),
// and /readyz must return to 200 once the update completes.
func TestReadyzFlipsDuringUpdateQuiesce(t *testing.T) {
	ge := &gatedEngine{gate: make(chan struct{})}
	reg := obs.NewRegistry()
	sm := obs.NewServerMetrics(reg)
	ready := obs.NewReadiness()
	ready.Set(obs.CondUpdateQuiesce, true)

	s := New(ge, Config{QueueDepth: 64, Obs: sm, Readiness: ready})
	defer s.Close()
	reg.OnScrape(func() {
		sm.MirrorScheduler(s.Stats())
		sm.MirrorReadiness(ready)
	})

	admin := obs.NewAdmin(reg, ready)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go admin.Serve(lis)
	defer admin.Shutdown(context.Background())
	base := "http://" + lis.Addr().String()

	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 512)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("/readyz before any update = %d, want 200", code)
	}

	// Start an update; the engine blocks on the gate, so the quiesce
	// stays open until the test releases it.
	updateDone := make(chan error, 1)
	go func() { updateDone <- s.Update(map[uint64][]byte{0: {1}}) }()

	// The readiness flip happens before the quiesce gate is even
	// acquired, so polling converges; once 503 it STAYS 503 while the
	// engine is stuck, which is what makes this deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := readyz()
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "not ready: "+obs.CondUpdateQuiesce) {
				t.Fatalf("/readyz body %q must name %s", body, obs.CondUpdateQuiesce)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 during the quiesce")
		}
		time.Sleep(time.Millisecond)
	}

	// A query submitted during the quiesce is held behind the gate —
	// never failed.
	queryDone := make(chan error, 1)
	go func() {
		_, _, err := s.Query(context.Background(), nil)
		queryDone <- err
	}()
	select {
	case err := <-queryDone:
		t.Fatalf("query completed during the quiesce (err=%v), want it held", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The scrape keeps answering mid-quiesce, and the ready gauge
	// mirrors the flip.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, perr := obs.ParseText(resp.Body)
	resp.Body.Close()
	if perr != nil {
		t.Fatal(perr)
	}
	if v := samples["impir_ready"]; v != 0 {
		t.Errorf("impir_ready = %v mid-quiesce, want 0", v)
	}

	close(ge.gate)
	if err := <-updateDone; err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := <-queryDone; err != nil {
		t.Fatalf("query held across the quiesce failed: %v", err)
	}

	for {
		code, _ := readyz()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after the update")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestObsStageObservations: the scheduler records queue and engine
// stage samples plus pass-width mirrors that agree with its own Stats.
func TestObsStageObservations(t *testing.T) {
	reg := obs.NewRegistry()
	sm := obs.NewServerMetrics(reg)
	s := New(&fakeEngine{}, Config{QueueDepth: 64, Obs: sm})
	defer s.Close()
	reg.OnScrape(func() { sm.MirrorScheduler(s.Stats()) })

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, _, err := s.Query(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got := samples[obs.SchedulerMirrorSample("submitted")]; got != float64(st.Submitted) {
		t.Errorf("submitted mirror = %v, stats say %d", got, st.Submitted)
	}
	for _, stage := range []string{obs.StageQueue, obs.StageEngine} {
		if got := samples[obs.StageCountSample("query", stage)]; got != 5 {
			t.Errorf("stage %s count = %v, want 5", stage, got)
		}
	}
}
