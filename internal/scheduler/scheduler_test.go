package scheduler

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/naivepir"
)

// fakeEngine gives tests deterministic pass costs and records overlap
// between updates and query passes.
type fakeEngine struct {
	queryDelay time.Duration
	batchDelay time.Duration // per coalesced pass, regardless of size

	passQueries atomic.Int64 // query passes in flight
	updates     atomic.Int64 // updates in flight
	overlap     atomic.Bool  // an update overlapped a query pass
	queryPasses atomic.Int64
	batchPasses atomic.Int64
}

func (f *fakeEngine) Name() string { return "fake" }

// fakeDB backs Database(): Scheduler.Update validates update sets
// against the loaded geometry before quiescing, so the fake engine must
// present one (16 records of 1 byte, matching the {0: {1}} updates the
// tests send).
var fakeDB = func() *database.DB {
	db, err := database.New(16, 1)
	if err != nil {
		panic(err)
	}
	return db
}()

func (f *fakeEngine) Database() *database.DB { return fakeDB }
func (f *fakeEngine) enter()                 { f.passQueries.Add(1) }
func (f *fakeEngine) leave()                 { f.passQueries.Add(-1) }
func (f *fakeEngine) checkOverlap() {
	if f.updates.Load() > 0 {
		f.overlap.Store(true)
	}
}

func (f *fakeEngine) Query(k *dpf.Key) ([]byte, metrics.Breakdown, error) {
	f.enter()
	defer f.leave()
	f.checkOverlap()
	f.queryPasses.Add(1)
	time.Sleep(f.queryDelay)
	return []byte{1}, metrics.Breakdown{}, nil
}

func (f *fakeEngine) QueryBatch(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	f.enter()
	defer f.leave()
	f.checkOverlap()
	f.batchPasses.Add(1)
	time.Sleep(f.batchDelay)
	out := make([][]byte, len(keys))
	for i := range out {
		out[i] = []byte{byte(i)}
	}
	return out, metrics.BatchStats{Queries: len(keys)}, nil
}

func (f *fakeEngine) QueryShare(sh *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	f.enter()
	defer f.leave()
	f.checkOverlap()
	time.Sleep(f.queryDelay)
	return []byte{2}, metrics.Breakdown{}, nil
}

func (f *fakeEngine) QueryShareBatch(shares []*bitvec.Vector) ([][]byte, metrics.BatchStats, error) {
	f.enter()
	defer f.leave()
	f.checkOverlap()
	f.batchPasses.Add(1)
	time.Sleep(f.batchDelay)
	out := make([][]byte, len(shares))
	for i := range out {
		out[i] = []byte{2, byte(i)}
	}
	return out, metrics.BatchStats{Queries: len(shares), Fused: len(shares) > 1}, nil
}

func (f *fakeEngine) ApplyUpdates(updates map[uint64][]byte) error {
	f.updates.Add(1)
	defer f.updates.Add(-1)
	if f.passQueries.Load() > 0 {
		f.overlap.Store(true)
	}
	time.Sleep(f.queryDelay)
	return nil
}

// realScheduler builds a scheduler over a small CPU engine.
func realScheduler(t *testing.T, cfg Config) (*Scheduler, *database.DB) {
	t.Helper()
	eng, err := cpupir.New(cpupir.Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	db, err := database.GenerateHashDB(256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	sched := New(eng, cfg)
	t.Cleanup(func() { sched.Close() })
	return sched, eng.Database()
}

func keyPair(t *testing.T, domain int, idx uint64) (*dpf.Key, *dpf.Key) {
	t.Helper()
	k0, k1, err := dpf.Gen(dpf.Params{Domain: domain}, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k0, k1
}

// TestCoalescedResultsDemultiplexCorrectly: many goroutines submit
// single queries with a coalescing window; every waiter must get the
// subresult for its own key (XOR of both parties' subresults must equal
// its record), and the stats must show cross-submitter batching.
func TestCoalescedResultsDemultiplexCorrectly(t *testing.T) {
	cfg := Config{CoalesceWindow: 20 * time.Millisecond}
	s0, db := realScheduler(t, cfg)
	s1, _ := realScheduler(t, cfg)

	const clients = 16
	ctx := context.Background()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx := uint64(i * 13)
			k0, k1 := keyPair(t, db.Domain(), idx)
			r0, _, err := s0.Query(ctx, k0)
			if err != nil {
				errs[i] = err
				return
			}
			r1, _, err := s1.Query(ctx, k1)
			if err != nil {
				errs[i] = err
				return
			}
			rec := make([]byte, len(r0))
			for j := range rec {
				rec[j] = r0[j] ^ r1[j]
			}
			if !bytes.Equal(rec, db.Record(int(idx))) {
				errs[i] = fmt.Errorf("client %d: wrong record", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := s0.Stats()
	if stats.Dispatched != clients {
		t.Errorf("dispatched %d, want %d", stats.Dispatched, clients)
	}
	if stats.CoalescedQueries == 0 {
		t.Error("no queries were coalesced despite a window and concurrent submitters")
	}
	if stats.AvgCoalesce() <= 1 {
		t.Errorf("AvgCoalesce = %.2f, want > 1", stats.AvgCoalesce())
	}
}

// TestNoCoalescingWithZeroWindow: window 0 must run every single query
// as its own engine pass.
func TestNoCoalescingWithZeroWindow(t *testing.T) {
	fe := &fakeEngine{}
	s := New(fe, Config{})
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Query(ctx, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	stats := s.Stats()
	if stats.CoalescedQueries != 0 || stats.CoalescedPasses != 0 {
		t.Errorf("window=0 coalesced: %+v", stats)
	}
	if got := fe.queryPasses.Load(); got != 8 {
		t.Errorf("engine ran %d solo passes, want 8", got)
	}
}

// TestQueueFullRejectsBusy: with depth 1 and a slow engine, overflow
// submissions fail fast with ErrBusy instead of blocking.
func TestQueueFullRejectsBusy(t *testing.T) {
	fe := &fakeEngine{queryDelay: 300 * time.Millisecond}
	s := New(fe, Config{QueueDepth: 1})
	defer s.Close()

	ctx := context.Background()
	release := make(chan struct{})
	go func() {
		s.Query(ctx, nil) // occupies the dispatcher
		close(release)
	}()
	// Wait for the dispatcher to pick it up, then fill the queue.
	time.Sleep(50 * time.Millisecond)
	go s.Query(ctx, nil) // fills the single queue slot

	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	_, _, err := s.Query(ctx, nil)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submission: err = %v, want ErrBusy", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("busy rejection took %v — it blocked", elapsed)
	}
	<-release
	if s.Stats().Rejected == 0 {
		t.Error("Rejected counter not incremented")
	}
}

// TestCancelledWhileQueuedIsDequeued: a context cancelled while the
// request waits in the queue must (1) unblock the submitter promptly and
// (2) never reach the engine.
func TestCancelledWhileQueuedIsDequeued(t *testing.T) {
	fe := &fakeEngine{queryDelay: 200 * time.Millisecond}
	s := New(fe, Config{QueueDepth: 8})
	defer s.Close()

	bg := context.Background()
	go s.Query(bg, nil) // occupies the dispatcher
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithCancel(bg)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.Query(ctx, nil) // sits in the queue
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued-then-cancelled query: err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled submitter still blocked after 1s")
	}

	// Let the dispatcher work through the queue, then confirm the
	// cancelled request was dropped without an engine pass.
	time.Sleep(400 * time.Millisecond)
	if got := fe.queryPasses.Load(); got != 1 {
		t.Errorf("engine ran %d passes, want 1 (cancelled request dequeued)", got)
	}
	if s.Stats().Cancelled == 0 {
		t.Error("Cancelled counter not incremented")
	}
}

// TestUpdateQuiescesInFlightQueries: updates issued while query passes
// run must never overlap one inside the engine, and each update must
// bump the epoch.
func TestUpdateQuiescesInFlightQueries(t *testing.T) {
	fe := &fakeEngine{queryDelay: 5 * time.Millisecond, batchDelay: 5 * time.Millisecond}
	s := New(fe, Config{QueueDepth: 128, CoalesceWindow: time.Millisecond})
	defer s.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := s.Query(ctx, nil); err != nil && !errors.Is(err, ErrBusy) {
					t.Error(err)
					return
				}
			}
		}()
	}
	const updates = 10
	for i := 0; i < updates; i++ {
		if err := s.Update(map[uint64][]byte{0: {1}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if fe.overlap.Load() {
		t.Fatal("an update overlapped a query pass inside the engine")
	}
	stats := s.Stats()
	if stats.Updates != updates || stats.Epoch != updates {
		t.Errorf("updates=%d epoch=%d, want %d", stats.Updates, stats.Epoch, updates)
	}
}

// TestShareAndBatchThroughScheduler: explicit batches and share queries
// flow through the queue and return correct data.
func TestShareAndBatchThroughScheduler(t *testing.T) {
	s0, db := realScheduler(t, Config{CoalesceWindow: time.Millisecond})
	ctx := context.Background()

	// Explicit batch: subresults must come back in key order.
	indices := []uint64{3, 77, 200}
	keys := make([]*dpf.Key, len(indices))
	for i, idx := range indices {
		keys[i], _ = keyPair(t, db.Domain(), idx)
	}
	results, stats, err := s0.QueryBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(indices) || stats.Queries != len(indices) {
		t.Fatalf("batch returned %d results, stats %+v", len(results), stats)
	}

	// Share query: a one-hot selector returns the record directly.
	q, err := naivepir.Gen(nil, db.NumRecords(), 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	r0, _, err := s0.QueryShare(ctx, q.Shares[0])
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := s0.QueryShare(ctx, q.Shares[1])
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, db.Record(42)) {
		t.Fatal("share queries through the scheduler reconstructed the wrong record")
	}
}

// TestDrainAndClose: Drain finishes queued work and fences new
// submissions; Close completes leftovers with ErrClosed.
func TestDrainAndClose(t *testing.T) {
	fe := &fakeEngine{queryDelay: 20 * time.Millisecond}
	s := New(fe, Config{QueueDepth: 16})

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Query(ctx, nil)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)

	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("pre-drain query %d failed: %v", i, err)
		}
	}
	if _, _, err := s.Query(ctx, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain submission: err = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSoloQueryFasterPathStats: a lone query with a window still works
// (the gather times out and degenerates to a solo pass).
func TestSoloQueryWithWindow(t *testing.T) {
	s0, db := realScheduler(t, Config{CoalesceWindow: 5 * time.Millisecond})
	k0, _ := keyPair(t, db.Domain(), 9)
	if _, _, err := s0.Query(context.Background(), k0); err != nil {
		t.Fatal(err)
	}
	stats := s0.Stats()
	if stats.Passes != 1 || stats.CoalescedPasses != 0 {
		t.Errorf("solo query stats: %+v", stats)
	}
}

// TestPreCancelledSubmission: an already-dead context never enters the
// queue.
func TestPreCancelledSubmission(t *testing.T) {
	s := New(&fakeEngine{}, Config{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Query(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if s.Stats().Submitted != 0 {
		t.Error("pre-cancelled request was admitted")
	}
}

// TestBadKeyInCoalescedPassOnlyFailsItsSender: a client feeding an
// invalid key into a coalesced pass must not fail the other clients'
// queries gathered into the same pass.
func TestBadKeyInCoalescedPassOnlyFailsItsSender(t *testing.T) {
	s0, db := realScheduler(t, Config{CoalesceWindow: 20 * time.Millisecond})
	ctx := context.Background()

	const good = 6
	var wg sync.WaitGroup
	goodErrs := make([]error, good)
	var badErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		bad, _ := keyPair(t, db.Domain()+3, 0) // wrong domain for this DB
		_, _, badErr = s0.Query(ctx, bad)
	}()
	for i := 0; i < good; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k0, _ := keyPair(t, db.Domain(), uint64(i*7))
			_, _, goodErrs[i] = s0.Query(ctx, k0)
		}(i)
	}
	wg.Wait()

	if badErr == nil {
		t.Error("wrong-domain key was accepted")
	}
	for i, err := range goodErrs {
		if err != nil {
			t.Errorf("good query %d failed alongside a bad key: %v", i, err)
		}
	}
}

// TestShareBatchIsOneAdmissionUnit: QueryShareBatch returns per-share
// subresults in order and occupies exactly one queue slot.
func TestShareBatchIsOneAdmissionUnit(t *testing.T) {
	s0, db := realScheduler(t, Config{})
	ctx := context.Background()

	indices := []uint64{4, 90, 250}
	shares0 := make([]*bitvec.Vector, len(indices))
	shares1 := make([]*bitvec.Vector, len(indices))
	for i, idx := range indices {
		q, err := naivepir.Gen(nil, db.NumRecords(), idx, 2)
		if err != nil {
			t.Fatal(err)
		}
		shares0[i], shares1[i] = q.Shares[0], q.Shares[1]
	}
	r0, err := s0.QueryShareBatch(ctx, shares0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s0.QueryShareBatch(ctx, shares1)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		rec := make([]byte, len(r0[i]))
		for j := range rec {
			rec[j] = r0[i][j] ^ r1[i][j]
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("share-batch item %d: wrong record", i)
		}
	}
	if stats := s0.Stats(); stats.Submitted != 2 || stats.Passes != 2 {
		t.Errorf("two share batches should be two admissions/passes: %+v", stats)
	}
	// The CPU engine fuses multi-share batches into one database scan;
	// both passes must be counted as fused.
	if stats := s0.Stats(); stats.FusedPasses != 2 {
		t.Errorf("FusedPasses = %d, want 2: %+v", stats.FusedPasses, stats)
	}
}

// TestPassWidthHistogram: the scheduler's pass-width histogram must put
// solo passes in bucket 0 and coalesced passes in the bucket of their
// width, and the buckets must sum to the pass count.
func TestPassWidthHistogram(t *testing.T) {
	fe := &fakeEngine{batchDelay: time.Millisecond}
	s := New(fe, Config{CoalesceWindow: 30 * time.Millisecond, MaxCoalesce: 64})
	defer s.Close()
	ctx := context.Background()

	// A burst of concurrent single queries inside one window coalesces
	// into wide passes.
	const burst = 24
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k0, _ := keyPair(t, 4, 1)
			if _, _, err := s.Query(ctx, k0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	var widthSum uint64
	for _, n := range st.PassWidths {
		widthSum += n
	}
	if widthSum != st.Passes {
		t.Errorf("PassWidths sum %d != Passes %d (%v)", widthSum, st.Passes, st.PassWidths)
	}
	var beyondSolo uint64
	for b := 1; b < metrics.NumWidthBuckets; b++ {
		beyondSolo += st.PassWidths[b]
	}
	if st.CoalescedPasses > 0 && beyondSolo == 0 {
		t.Errorf("coalesced passes ran but no width bucket beyond solo filled: %v", st.PassWidths)
	}

	// A solo query with no window lands in bucket 0.
	fe2 := &fakeEngine{}
	s2 := New(fe2, Config{})
	defer s2.Close()
	k0, _ := keyPair(t, 4, 2)
	if _, _, err := s2.Query(ctx, k0); err != nil {
		t.Fatal(err)
	}
	if st2 := s2.Stats(); st2.PassWidths[0] != 1 {
		t.Errorf("solo query width histogram = %v, want bucket 0 = 1", st2.PassWidths)
	}
}
