package pimkernel

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/impir/impir/internal/pim"
)

func TestStreamChecksum(t *testing.T) {
	cfg := pim.DefaultConfig()
	cfg.Ranks = 1
	cfg.DPUsPerRank = 1
	cfg.MRAMPerDPU = 1 << 20
	cfg.TaskletsPerDPU = 16
	s, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const length = 96 * 1024
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, length)
	rng.Read(data)
	if err := s.Preload(0, 0, data); err != nil {
		t.Fatal(err)
	}

	var want uint64
	for i := 0; i < length; i += 8 {
		want ^= binary.LittleEndian.Uint64(data[i:])
	}

	args := StreamArgs{Offset: 0, Length: length, OutOffset: length}
	cost, err := s.Launch([]int{0}, Stream{}, [][]byte{args.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.InspectMRAM(0, length, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(out); got != want {
		t.Fatalf("checksum %#x, want %#x", got, want)
	}
	if cost.Bytes < length {
		t.Fatalf("DMA accounting %d bytes, want ≥ %d", cost.Bytes, length)
	}
}

// TestStreamIsDMABound: the modeled duration must be dominated by the DMA
// term (bytes / 700 MB/s), not compute — that is the §2.4 bandwidth story.
func TestStreamIsDMABound(t *testing.T) {
	cfg := pim.DefaultConfig()
	cfg.Ranks = 1
	cfg.DPUsPerRank = 1
	cfg.MRAMPerDPU = 8 << 20
	cfg.TaskletsPerDPU = 16
	cfg.LaunchOverhead = 0
	s, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const length = 4 << 20
	if err := s.Preload(0, 0, make([]byte, length)); err != nil {
		t.Fatal(err)
	}
	args := StreamArgs{Offset: 0, Length: length, OutOffset: length}
	cost, err := s.Launch([]int{0}, Stream{}, [][]byte{args.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	dmaSeconds := float64(length) / cfg.MRAMBandwidth
	ratio := cost.Modeled.Seconds() / dmaSeconds
	if ratio < 1.0 || ratio > 1.3 {
		t.Fatalf("modeled/DMA-only = %.2f, want 1.0–1.3 (DMA-bound)", ratio)
	}
	// Effective per-DPU bandwidth lands near the 700 MB/s spec.
	bw := float64(length) / cost.Modeled.Seconds()
	if bw < 500e6 || bw > 700e6 {
		t.Fatalf("per-DPU stream bandwidth %.0f MB/s, want 500–700", bw/1e6)
	}
}

func TestStreamArgsValidation(t *testing.T) {
	s, err := pim.NewSystem(func() pim.Config {
		c := pim.DefaultConfig()
		c.Ranks, c.DPUsPerRank, c.MRAMPerDPU, c.TaskletsPerDPU = 1, 1, 1<<16, 2
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		{1, 2, 3}, // short
		StreamArgs{Offset: 4, Length: 64}.Marshal(),    // misaligned offset
		StreamArgs{Offset: 0, Length: 0}.Marshal(),     // empty
		StreamArgs{Offset: 0, Length: 12}.Marshal(),    // misaligned length
		StreamArgs{Length: 64, OutOffset: 3}.Marshal(), // misaligned out
	}
	for i, args := range bad {
		if _, err := s.Launch([]int{0}, Stream{}, [][]byte{args}); err == nil {
			t.Errorf("bad args %d accepted", i)
		}
	}
}
