package pimkernel

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/impir/impir/internal/pim"
)

// Stream is a bandwidth-probe kernel in the style of the PrIM COPY
// microbenchmark: every tasklet DMA-streams its slice of an MRAM region
// into WRAM and XOR-folds it into a checksum (one ALU op per word, so the
// kernel stays DMA-bound). IM-PIR's §2.4 motivation rests on the claim
// that per-DPU MRAM bandwidth (≈700 MB/s) aggregates linearly across
// thousands of DPUs into TB/s; this kernel makes that claim measurable on
// the simulator and is the basis of ablation A7.
type Stream struct{}

var _ pim.Kernel = Stream{}

// StreamArgs is the per-DPU argument block of the Stream kernel.
type StreamArgs struct {
	// Offset is the MRAM start of the region to stream (8-aligned).
	Offset uint64
	// Length is the region size in bytes (8-aligned).
	Length uint64
	// OutOffset is where tasklet 0 writes the 8-byte XOR checksum.
	OutOffset uint64
	// Passes is how many times the region is streamed back to back.
	// 0 means 1. The per-query dpXOR regime streams the chunk B times
	// for a batch of B; the fused regime streams it once — setting
	// Passes to each makes the traffic difference directly measurable
	// with this probe kernel.
	Passes uint64
}

const streamArgsSize = 4 * 8

// Marshal encodes the argument block for pim.System.Launch.
func (a StreamArgs) Marshal() []byte {
	out := make([]byte, streamArgsSize)
	binary.LittleEndian.PutUint64(out[0:], a.Offset)
	binary.LittleEndian.PutUint64(out[8:], a.Length)
	binary.LittleEndian.PutUint64(out[16:], a.OutOffset)
	passes := a.Passes
	if passes == 0 {
		passes = 1
	}
	binary.LittleEndian.PutUint64(out[24:], passes)
	return out
}

func parseStreamArgs(raw []byte) (StreamArgs, error) {
	if len(raw) != streamArgsSize {
		return StreamArgs{}, fmt.Errorf("pimkernel: stream args block is %d bytes, want %d", len(raw), streamArgsSize)
	}
	a := StreamArgs{
		Offset:    binary.LittleEndian.Uint64(raw[0:]),
		Length:    binary.LittleEndian.Uint64(raw[8:]),
		OutOffset: binary.LittleEndian.Uint64(raw[16:]),
		Passes:    binary.LittleEndian.Uint64(raw[24:]),
	}
	switch {
	case a.Offset%pim.DMAAlign != 0 || a.OutOffset%pim.DMAAlign != 0:
		return StreamArgs{}, errors.New("pimkernel: stream offsets must be 8-byte aligned")
	case a.Length == 0 || a.Length%pim.DMAAlign != 0:
		return StreamArgs{}, fmt.Errorf("pimkernel: stream length %d must be a positive multiple of %d", a.Length, pim.DMAAlign)
	case a.Passes == 0:
		return StreamArgs{}, errors.New("pimkernel: stream pass count must be ≥ 1")
	}
	return a, nil
}

// cyclesPerStreamWord is the per-8-byte ALU cost of the checksum fold —
// deliberately minimal so the kernel measures the DMA engine, not the
// core (the fold exists only so the simulator cannot elide the reads).
const cyclesPerStreamWord = 1

// Name implements pim.Kernel.
func (Stream) Name() string { return "stream" }

// Run implements pim.Kernel.
func (Stream) Run(ctx *pim.TaskletCtx) error {
	args, err := parseStreamArgs(ctx.Args())
	if err != nil {
		return err
	}
	t := ctx.NumTasklets()
	tid := ctx.TaskletID()

	// Partition the region across tasklets in DMA-sized strides.
	words := int(args.Length) / 8
	wordsPerTasklet := (words + t - 1) / t
	first := tid * wordsPerTasklet
	last := first + wordsPerTasklet
	if last > words {
		last = words
	}

	sums, err := ctx.SharedWRAM("stream.sums", t*8)
	if err != nil {
		return err
	}

	if first < last {
		buf, err := ctx.AllocWRAM(pim.DMAMaxTransfer)
		if err != nil {
			return err
		}
		var acc uint64
		for pass := uint64(0); pass < args.Passes; pass++ {
			for off := first * 8; off < last*8; off += pim.DMAMaxTransfer {
				n := last*8 - off
				if n > pim.DMAMaxTransfer {
					n = pim.DMAMaxTransfer
				}
				if err := ctx.ReadMRAM(int(args.Offset)+off, buf[:n]); err != nil {
					return err
				}
				for i := 0; i < n; i += 8 {
					acc ^= binary.LittleEndian.Uint64(buf[i:])
				}
				ctx.ChargeCycles(int64(n) / 8 * cyclesPerStreamWord)
			}
		}
		binary.LittleEndian.PutUint64(sums[tid*8:], acc)
	}

	if !ctx.Barrier() {
		return errors.New("pimkernel: launch aborted")
	}
	if tid != 0 {
		return nil
	}
	var total uint64
	for i := 0; i < t; i++ {
		total ^= binary.LittleEndian.Uint64(sums[i*8:])
	}
	out, err := ctx.AllocWRAM(8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(out, total)
	return ctx.WriteMRAM(int(args.OutOffset), out)
}
