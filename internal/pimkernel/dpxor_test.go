package pimkernel

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/pim"
)

func testSystem(t *testing.T, tasklets int) *pim.System {
	t.Helper()
	cfg := pim.DefaultConfig()
	cfg.Ranks = 1
	cfg.DPUsPerRank = 2
	cfg.MRAMPerDPU = 4 << 20
	cfg.TaskletsPerDPU = tasklets
	s, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

// runDPXOR loads a chunk + selector onto DPU 0, launches the kernel, and
// returns the subresult.
func runDPXOR(t *testing.T, s *pim.System, db []byte, recordSize int, sel *bitvec.Vector) []byte {
	t.Helper()
	numRecords := len(db) / recordSize
	selBytes := make([]byte, len(sel.Words())*8)
	for i, w := range sel.Words() {
		for b := 0; b < 8; b++ {
			selBytes[i*8+b] = byte(w >> (8 * b))
		}
	}
	dbOff := 0
	selOff := (len(db) + 7) / 8 * 8
	outOff := (selOff + len(selBytes) + 7) / 8 * 8

	if err := s.Preload(0, dbOff, db); err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(0, selOff, selBytes); err != nil {
		t.Fatal(err)
	}
	args := DPXORArgs{
		DBOffset:   uint64(dbOff),
		NumRecords: uint64(numRecords),
		RecordSize: uint64(recordSize),
		SelOffset:  uint64(selOff),
		OutOffset:  uint64(outOff),
	}
	cost, err := s.Launch([]int{0}, DPXOR{}, [][]byte{args.Marshal()})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if cost.Modeled <= 0 {
		t.Fatal("launch cost not positive")
	}
	out, err := s.InspectMRAM(0, outOff, recordSize)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func naive(db []byte, recordSize int, sel *bitvec.Vector) []byte {
	acc := make([]byte, recordSize)
	for i := 0; i < len(db)/recordSize; i++ {
		if sel.Bit(i) {
			for j := 0; j < recordSize; j++ {
				acc[j] ^= db[i*recordSize+j]
			}
		}
	}
	return acc
}

func makeWorkload(numRecords, recordSize int, seed int64) ([]byte, *bitvec.Vector) {
	rng := rand.New(rand.NewSource(seed))
	db := make([]byte, numRecords*recordSize)
	rng.Read(db)
	sel := bitvec.New(numRecords)
	for i := 0; i < numRecords; i++ {
		sel.SetTo(i, rng.Intn(2) == 1)
	}
	return db, sel
}

func TestDPXORMatchesNaive(t *testing.T) {
	tests := []struct {
		name       string
		numRecords int
		recordSize int
		tasklets   int
	}{
		{"paper workload 32B x16 tasklets", 4096, 32, 16},
		{"single tasklet", 256, 32, 1},
		{"two tasklets", 512, 32, 2},
		{"24 tasklets", 2048, 32, 24},
		{"64B records", 1024, 64, 8},
		{"8B records", 4096, 8, 16},
		{"records larger than one DMA sub-chunk", 256, 1024, 4},
		{"max record size", 128, 2048, 4},
		{"more tasklets than groups", 64, 32, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := testSystem(t, tt.tasklets)
			db, sel := makeWorkload(tt.numRecords, tt.recordSize, 7)
			got := runDPXOR(t, s, db, tt.recordSize, sel)
			want := naive(db, tt.recordSize, sel)
			if !bytes.Equal(got, want) {
				t.Fatalf("kernel result mismatch:\n got %x\nwant %x", got[:16], want[:16])
			}
		})
	}
}

func TestDPXOREmptySelector(t *testing.T) {
	s := testSystem(t, 8)
	db, _ := makeWorkload(512, 32, 3)
	sel := bitvec.New(512)
	got := runDPXOR(t, s, db, 32, sel)
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("empty selector produced nonzero subresult")
	}
}

func TestDPXORFullSelector(t *testing.T) {
	s := testSystem(t, 8)
	db, _ := makeWorkload(512, 32, 4)
	sel := bitvec.New(512)
	for i := 0; i < 512; i++ {
		sel.Set(i)
	}
	got := runDPXOR(t, s, db, 32, sel)
	if !bytes.Equal(got, naive(db, 32, sel)) {
		t.Fatal("full selector mismatch")
	}
}

func TestDPXORSingleSelectedRecord(t *testing.T) {
	// With exactly one bit set the subresult must equal that record —
	// this is the PIR hot path after reconstruction.
	s := testSystem(t, 16)
	db, _ := makeWorkload(1024, 32, 5)
	for _, idx := range []int{0, 63, 64, 1023} {
		sel := bitvec.New(1024)
		sel.Set(idx)
		got := runDPXOR(t, s, db, 32, sel)
		if !bytes.Equal(got, db[idx*32:(idx+1)*32]) {
			t.Fatalf("selected record %d not returned", idx)
		}
	}
}

func TestArgsValidation(t *testing.T) {
	base := DPXORArgs{NumRecords: 256, RecordSize: 32}
	tests := []struct {
		name   string
		mutate func(*DPXORArgs)
	}{
		{"zero record size", func(a *DPXORArgs) { a.RecordSize = 0 }},
		{"unaligned record size", func(a *DPXORArgs) { a.RecordSize = 20 }},
		{"oversized record", func(a *DPXORArgs) { a.RecordSize = 4096 }},
		{"unaligned db offset", func(a *DPXORArgs) { a.DBOffset = 4 }},
		{"unaligned sel offset", func(a *DPXORArgs) { a.SelOffset = 12 }},
		{"unaligned out offset", func(a *DPXORArgs) { a.OutOffset = 9 }},
		{"ragged record count", func(a *DPXORArgs) { a.NumRecords = 100 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := base
			tt.mutate(&a)
			if err := a.Validate(); err == nil {
				t.Error("invalid args accepted")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
}

func TestKernelRejectsBadArgsBlock(t *testing.T) {
	s := testSystem(t, 4)
	if _, err := s.Launch([]int{0}, DPXOR{}, [][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("kernel accepted malformed args block")
	}
	bad := DPXORArgs{NumRecords: 100, RecordSize: 32} // ragged count
	if _, err := s.Launch([]int{0}, DPXOR{}, [][]byte{bad.Marshal()}); err == nil {
		t.Fatal("kernel accepted invalid args")
	}
}

func TestArgsMarshalRoundTrip(t *testing.T) {
	a := DPXORArgs{DBOffset: 8, NumRecords: 640, RecordSize: 32, SelOffset: 4096, OutOffset: 8192, NumSelectors: 2}
	back, err := parseArgs(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Fatalf("round trip: got %+v, want %+v", back, a)
	}

	// A pre-fusion args block (NumSelectors unset) normalises to one
	// selector stream on the wire.
	legacy := DPXORArgs{DBOffset: 8, NumRecords: 640, RecordSize: 32, SelOffset: 4096, OutOffset: 8192}
	back, err = parseArgs(legacy.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSelectors != 1 {
		t.Fatalf("legacy args marshalled NumSelectors=%d, want 1", back.NumSelectors)
	}
}

// TestDPXORTimingScalesWithChunk: doubling the chunk should roughly
// double the modeled kernel time (DMA and compute are both linear).
func TestDPXORTimingScalesWithChunk(t *testing.T) {
	cfg := pim.DefaultConfig()
	cfg.Ranks = 1
	cfg.DPUsPerRank = 1
	cfg.MRAMPerDPU = 8 << 20
	cfg.TaskletsPerDPU = 16
	cfg.LaunchOverhead = 0
	s, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(numRecords int) float64 {
		db, sel := makeWorkload(numRecords, 32, 11)
		selBytes := make([]byte, len(sel.Words())*8)
		for i, w := range sel.Words() {
			for b := 0; b < 8; b++ {
				selBytes[i*8+b] = byte(w >> (8 * b))
			}
		}
		selOff := (len(db) + 7) / 8 * 8
		outOff := selOff + len(selBytes)
		if err := s.Preload(0, 0, db); err != nil {
			t.Fatal(err)
		}
		if err := s.Preload(0, selOff, selBytes); err != nil {
			t.Fatal(err)
		}
		args := DPXORArgs{NumRecords: uint64(numRecords), RecordSize: 32,
			SelOffset: uint64(selOff), OutOffset: uint64(outOff)}
		cost, err := s.Launch([]int{0}, DPXOR{}, [][]byte{args.Marshal()})
		if err != nil {
			t.Fatal(err)
		}
		return cost.Modeled.Seconds()
	}

	small := run(8192)
	large := run(16384)
	ratio := large / small
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("2x records changed modeled time by %.2fx, want ≈ 2x", ratio)
	}
}

// TestModelCostMatchesFunctionalCharges: the analytic ModelCost used by
// the paper-scale benchmark harness must agree with what the functional
// kernel actually charges. With a selector of exactly 50% density
// (alternating 32-bit blocks) the expectation is exact for instructions
// and DMA volume.
func TestModelCostMatchesFunctionalCharges(t *testing.T) {
	const (
		numRecords = 4096
		tasklets   = 16
	)
	cfg := pim.DefaultConfig()
	cfg.Ranks = 1
	cfg.DPUsPerRank = 1
	cfg.MRAMPerDPU = 4 << 20
	cfg.TaskletsPerDPU = tasklets
	s, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	db := make([]byte, numRecords*32)
	for i := range db {
		db[i] = byte(i * 31)
	}
	// Exactly half the bits set, spread so every DMA sub-chunk is hit.
	sel := bitvec.New(numRecords)
	for i := 0; i < numRecords; i++ {
		if (i/32)%2 == 0 {
			sel.Set(i)
		}
	}
	if sel.OnesCount() != numRecords/2 {
		t.Fatalf("selector density %d, want %d", sel.OnesCount(), numRecords/2)
	}

	selBytes := make([]byte, len(sel.Words())*8)
	for i, w := range sel.Words() {
		for b := 0; b < 8; b++ {
			selBytes[i*8+b] = byte(w >> (8 * b))
		}
	}
	selOff := len(db)
	outOff := selOff + len(selBytes)
	if err := s.Preload(0, 0, db); err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(0, selOff, selBytes); err != nil {
		t.Fatal(err)
	}
	args := DPXORArgs{NumRecords: numRecords, RecordSize: 32,
		SelOffset: uint64(selOff), OutOffset: uint64(outOff)}
	cost, err := s.Launch([]int{0}, DPXOR{}, [][]byte{args.Marshal()})
	if err != nil {
		t.Fatal(err)
	}

	instr, dma := ModelCost(numRecords, 32, tasklets)
	want := cfg.KernelDuration(instr, dma)
	ratio := float64(cost.Modeled) / float64(want)
	if ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("functional launch %v vs analytic model %v (ratio %.3f) — harness and simulator diverged",
			cost.Modeled, want, ratio)
	}
	if cost.Bytes != dma {
		t.Fatalf("functional DMA %d bytes vs analytic %d", cost.Bytes, dma)
	}
}

// Property: kernel output equals naive selective XOR for random shapes.
func TestQuickDPXOR(t *testing.T) {
	s := testSystem(t, 8)
	f := func(seed int64, groupsRaw uint8) bool {
		groups := int(groupsRaw)%8 + 1
		numRecords := groups * 64
		db, sel := makeWorkload(numRecords, 32, seed)
		selBytes := make([]byte, len(sel.Words())*8)
		for i, w := range sel.Words() {
			for b := 0; b < 8; b++ {
				selBytes[i*8+b] = byte(w >> (8 * b))
			}
		}
		selOff := (len(db) + 7) / 8 * 8
		outOff := selOff + len(selBytes)
		if err := s.Preload(0, 0, db); err != nil {
			return false
		}
		if err := s.Preload(0, selOff, selBytes); err != nil {
			return false
		}
		args := DPXORArgs{NumRecords: uint64(numRecords), RecordSize: 32,
			SelOffset: uint64(selOff), OutOffset: uint64(outOff)}
		if _, err := s.Launch([]int{0}, DPXOR{}, [][]byte{args.Marshal()}); err != nil {
			return false
		}
		got, err := s.InspectMRAM(0, outOff, 32)
		if err != nil {
			return false
		}
		return bytes.Equal(got, naive(db, 32, sel))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
