// Package pimkernel contains the DPU programs IM-PIR launches on the
// simulated UPMEM system. The central kernel is DPXOR: the selective-XOR
// scan of a DPU's database chunk with two-stage parallel reduction across
// tasklets (Algorithm 1, lines 28–45, and §3.3 of the paper).
package pimkernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/xorop"
)

// Per-record instruction estimates for the DPU timing model, in DPU
// instructions (≈ cycles at saturated pipeline occupancy). The DPU is a
// 32-bit in-order core, so one 64-bit load+XOR+store round trip costs
// several instructions; these constants are calibrated so the modeled
// dpXOR share of query time matches Table 1 of the paper (≈ 16% for
// IM-PIR) and are consistent with per-DPU effective throughputs measured
// on real UPMEM hardware (tens of MB/s for compute+copy kernels).
const (
	// cyclesRecordCheck covers selector-bit extraction, the branch and
	// loop bookkeeping charged for every record, selected or not.
	cyclesRecordCheck = 12
	// cyclesPerWordXOR covers XOR-accumulating one 8-byte word of a
	// selected record from WRAM into the accumulator (two 32-bit loads,
	// two XORs, two stores plus addressing on the 32-bit core).
	cyclesPerWordXOR = 24
)

// DPXORArgs is the per-DPU argument block of the DPXOR kernel. Offsets
// are MRAM byte offsets within the executing DPU.
type DPXORArgs struct {
	// DBOffset is where this DPU's database chunk begins.
	DBOffset uint64
	// NumRecords is the number of records in this DPU's chunk.
	NumRecords uint64
	// RecordSize is the record size in bytes (multiple of 8, ≤ 2048).
	RecordSize uint64
	// SelOffset is where the packed selector bits for the chunk begin.
	SelOffset uint64
	// OutOffset is where the master tasklet writes the chunk subresults
	// (NumSelectors × RecordSize bytes, one per selector stream).
	OutOffset uint64
	// NumSelectors is the number of fused selector streams this launch
	// carries (the batch width B). Stream q's packed bits live at
	// SelOffset + q×(NumRecords/8) and its subresult is written to
	// OutOffset + q×RecordSize. 0 means 1 (a pre-fusion argument block).
	NumSelectors uint64
}

// MaxSelectorsPerLaunch bounds the fused batch width one DPXOR launch
// accepts; real WRAM capacity binds far earlier for most record sizes
// (see MaxFusedSelectors).
const MaxSelectorsPerLaunch = 64

const argsSize = 6 * 8

// batch returns the effective selector-stream count (≥ 1).
func (a DPXORArgs) batch() int {
	if a.NumSelectors == 0 {
		return 1
	}
	return int(a.NumSelectors)
}

// Marshal encodes the argument block for pim.System.Launch.
func (a DPXORArgs) Marshal() []byte {
	out := make([]byte, argsSize)
	binary.LittleEndian.PutUint64(out[0:], a.DBOffset)
	binary.LittleEndian.PutUint64(out[8:], a.NumRecords)
	binary.LittleEndian.PutUint64(out[16:], a.RecordSize)
	binary.LittleEndian.PutUint64(out[24:], a.SelOffset)
	binary.LittleEndian.PutUint64(out[32:], a.OutOffset)
	binary.LittleEndian.PutUint64(out[40:], uint64(a.batch()))
	return out
}

func parseArgs(raw []byte) (DPXORArgs, error) {
	if len(raw) != argsSize {
		return DPXORArgs{}, fmt.Errorf("pimkernel: args block is %d bytes, want %d", len(raw), argsSize)
	}
	return DPXORArgs{
		DBOffset:     binary.LittleEndian.Uint64(raw[0:]),
		NumRecords:   binary.LittleEndian.Uint64(raw[8:]),
		RecordSize:   binary.LittleEndian.Uint64(raw[16:]),
		SelOffset:    binary.LittleEndian.Uint64(raw[24:]),
		OutOffset:    binary.LittleEndian.Uint64(raw[32:]),
		NumSelectors: binary.LittleEndian.Uint64(raw[40:]),
	}, nil
}

// Validate checks the argument block against kernel limits.
func (a DPXORArgs) Validate() error {
	switch {
	case a.RecordSize == 0 || a.RecordSize%pim.DMAAlign != 0:
		return fmt.Errorf("pimkernel: record size %d must be a positive multiple of %d", a.RecordSize, pim.DMAAlign)
	case a.RecordSize > pim.DMAMaxTransfer:
		return fmt.Errorf("pimkernel: record size %d exceeds one DMA transfer (%d)", a.RecordSize, pim.DMAMaxTransfer)
	case a.DBOffset%pim.DMAAlign != 0 || a.SelOffset%pim.DMAAlign != 0 || a.OutOffset%pim.DMAAlign != 0:
		return errors.New("pimkernel: MRAM offsets must be 8-byte aligned")
	case a.NumRecords%64 != 0:
		// Selector words must not straddle tasklet boundaries; the engine
		// pads chunks to 64-record multiples.
		return fmt.Errorf("pimkernel: record count %d must be a multiple of 64", a.NumRecords)
	case a.NumSelectors > MaxSelectorsPerLaunch:
		return fmt.Errorf("pimkernel: %d selector streams exceed the per-launch limit %d",
			a.NumSelectors, MaxSelectorsPerLaunch)
	}
	return nil
}

// ModelCost estimates the per-DPU instruction and DMA-byte counts of a
// DPXOR execution over a chunk of numRecords records, assuming the
// expected DPF-share selectivity of 1/2. These are the quantities the
// functional kernel charges through TaskletCtx; the benchmark harness
// combines them with pim.Config.KernelDuration to evaluate paper-scale
// configurations without materialising the database.
func ModelCost(numRecords, recordSize, tasklets int) (instrCycles, dmaBytes int64) {
	return ModelCostBatch(numRecords, recordSize, tasklets, 1)
}

// ModelCostBatch is ModelCost for a FUSED launch carrying `batch`
// selector streams: the database chunk is DMA'd from MRAM once per pass
// (the term fusion amortises), while selector checks, XOR accumulation,
// the stage-2 folds, selector-stream DMA and subresult DMA all scale
// with the batch.
func ModelCostBatch(numRecords, recordSize, tasklets, batch int) (instrCycles, dmaBytes int64) {
	if batch < 1 {
		batch = 1
	}
	words := int64(recordSize / 8)
	n := int64(numRecords)
	b := int64(batch)
	instrCycles = b*n*cyclesRecordCheck + b*(n/2)*words*cyclesPerWordXOR
	// Stage 2: master tasklet folds one partial per tasklet per stream.
	instrCycles += b * int64(tasklets) * words * cyclesPerWordXOR
	// DMA: the database chunk ONCE, B selector streams, B subresults.
	dmaBytes = n*int64(recordSize) + b*(n/8) + b*int64(recordSize)
	return instrCycles, dmaBytes
}

// selBlockGroupsFor returns how many 64-record groups of selector words
// one WRAM selector-buffer transfer covers per stream: 64 groups (512
// bytes/stream) when the batch is narrow, halved until the combined
// B-stream buffer fits the historical 512-byte footprint (floor 1).
func selBlockGroupsFor(batch int) int {
	sbg := 64
	for sbg > 1 && batch*sbg*8 > 512 {
		sbg /= 2
	}
	return sbg
}

// MaxFusedSelectors returns the widest batch B one DPXOR launch supports
// for the given record size under cfg's WRAM budget: shared per-tasklet
// partials (T×B×recordSize), each tasklet's record and selector buffers,
// and the master tasklet's fold buffer must all fit WRAMPerDPU. Returns
// at least 1 (a solo launch must always work) and at most
// MaxSelectorsPerLaunch.
func MaxFusedSelectors(cfg pim.Config, recordSize int) int {
	recsPerDMA := pim.DMAMaxTransfer / recordSize
	if recsPerDMA > 64 {
		recsPerDMA = 64
	}
	for recsPerDMA&(recsPerDMA-1) != 0 {
		recsPerDMA &= recsPerDMA - 1
	}
	t := cfg.TaskletsPerDPU
	for b := MaxSelectorsPerLaunch; b > 1; b-- {
		selBuf := b * selBlockGroupsFor(b) * 8
		wram := t*b*recordSize + t*(recsPerDMA*recordSize+selBuf) + recordSize
		if wram <= cfg.WRAMPerDPU {
			return b
		}
	}
	return 1
}

// DPXOR is the dpXOR kernel. One instance is stateless and reusable
// across launches and DPUs.
type DPXOR struct{}

var _ pim.Kernel = DPXOR{}

// Name implements pim.Kernel.
func (DPXOR) Name() string { return "dpxor" }

// Run implements pim.Kernel. Every tasklet scans an interleaved share of
// the DPU's records (stage 1 of the parallel reduction), accumulating
// one partial per fused selector stream, and tasklet 0 folds the
// partials and writes the per-stream DPU subresults to MRAM (stage 2).
// A fused launch (NumSelectors > 1) DMAs each MRAM record sub-chunk
// ONCE and XORs it into every selecting stream's partial — the B-query
// pass costs one chunk's worth of MRAM traffic instead of B.
func (k DPXOR) Run(ctx *pim.TaskletCtx) error {
	args, err := parseArgs(ctx.Args())
	if err != nil {
		return err
	}
	if err := args.Validate(); err != nil {
		return err
	}
	recordSize := int(args.RecordSize)
	numRecords := int(args.NumRecords)
	b := args.batch()
	t := ctx.NumTasklets()
	tid := ctx.TaskletID()

	// Partition records across tasklets in 64-record groups so each
	// selector word belongs to exactly one tasklet: B_t = ⌈B_d/T⌉
	// rounded to 64 (Alg. 1 line 5).
	groups := numRecords / 64
	groupsPerTasklet := (groups + t - 1) / t
	firstGroup := tid * groupsPerTasklet
	lastGroup := firstGroup + groupsPerTasklet
	if lastGroup > groups {
		lastGroup = groups
	}

	partials, err := ctx.SharedWRAM("dpxor.partials", t*b*recordSize)
	if err != nil {
		return err
	}
	accs := make([][]byte, b)
	for q := 0; q < b; q++ {
		off := (tid*b + q) * recordSize
		accs[q] = partials[off : off+recordSize]
	}

	if firstGroup < lastGroup {
		if err := k.scanRange(ctx, args, accs, firstGroup, lastGroup); err != nil {
			return err
		}
	}

	// Stage 2: wait for every tasklet's partials, then the master tasklet
	// folds them per stream (Alg. 1 MASTERXOR).
	if !ctx.Barrier() {
		return errors.New("pimkernel: launch aborted")
	}
	if tid != 0 {
		return nil
	}
	out, err := ctx.AllocWRAM(recordSize)
	if err != nil {
		return err
	}
	for q := 0; q < b; q++ {
		for i := range out {
			out[i] = 0
		}
		for i := 0; i < t; i++ {
			off := (i*b + q) * recordSize
			if err := xorop.XORBytes(out, partials[off:off+recordSize]); err != nil {
				return err
			}
		}
		ctx.ChargeCycles(int64(t) * int64(recordSize/8) * cyclesPerWordXOR)
		if err := writeMRAMChunked(ctx, int(args.OutOffset)+q*recordSize, out); err != nil {
			return err
		}
	}
	return nil
}

// scanRange processes the tasklet's 64-record groups: for each group, DMA
// the B selector words and — unless every stream's word is zero — the
// records into WRAM once, then XOR-accumulate the selected records into
// each stream's partial.
func (DPXOR) scanRange(ctx *pim.TaskletCtx, args DPXORArgs, accs [][]byte, firstGroup, lastGroup int) error {
	recordSize := int(args.RecordSize)
	b := args.batch()
	// Stream q's selector bits start at SelOffset + q × stride.
	selStride := int(args.NumRecords) / 8

	// Records are fetched in sub-chunks of ≤ one DMA transfer.
	recsPerDMA := pim.DMAMaxTransfer / recordSize
	if recsPerDMA > 64 {
		recsPerDMA = 64
	}
	// Power-of-two sub-chunks keep selector bit offsets word-regular.
	for recsPerDMA&(recsPerDMA-1) != 0 {
		recsPerDMA &= recsPerDMA - 1
	}

	recBuf, err := ctx.AllocWRAM(recsPerDMA * recordSize)
	if err != nil {
		return err
	}
	// Selector words are fetched in blocks to amortise DMA setup. The
	// block shrinks as the batch widens so the combined B-stream buffer
	// keeps the historical 512-byte WRAM footprint.
	selBlockGroups := selBlockGroupsFor(b)
	selBuf, err := ctx.AllocWRAM(b * selBlockGroups * 8)
	if err != nil {
		return err
	}

	for blockStart := firstGroup; blockStart < lastGroup; blockStart += selBlockGroups {
		blockEnd := blockStart + selBlockGroups
		if blockEnd > lastGroup {
			blockEnd = lastGroup
		}
		nWords := blockEnd - blockStart
		for q := 0; q < b; q++ {
			dst := selBuf[q*selBlockGroups*8:]
			if err := ctx.ReadMRAM(int(args.SelOffset)+q*selStride+blockStart*8, dst[:nWords*8]); err != nil {
				return err
			}
		}

		for g := 0; g < nWords; g++ {
			group := blockStart + g
			var union uint64
			for q := 0; q < b; q++ {
				union |= binary.LittleEndian.Uint64(selBuf[(q*selBlockGroups+g)*8:])
			}
			ctx.ChargeCycles(int64(b) * 64 * cyclesRecordCheck)
			if union == 0 {
				// No stream selects any record of this group: the DMA
				// fetch of the records can be skipped entirely. (This
				// leaks only the server's own pseudorandom shares, never
				// the query.)
				continue
			}
			baseRecord := group * 64
			for sub := 0; sub < 64; sub += recsPerDMA {
				subUnion := union >> uint(sub)
				if recsPerDMA < 64 {
					subUnion &= (1 << uint(recsPerDMA)) - 1
				}
				if subUnion == 0 {
					continue
				}
				// ONE record DMA serves every stream of the batch.
				recOff := int(args.DBOffset) + (baseRecord+sub)*recordSize
				if err := ctx.ReadMRAM(recOff, recBuf[:recsPerDMA*recordSize]); err != nil {
					return err
				}
				for q := 0; q < b; q++ {
					word := binary.LittleEndian.Uint64(selBuf[(q*selBlockGroups+g)*8:])
					subSel := word >> uint(sub)
					if recsPerDMA < 64 {
						subSel &= (1 << uint(recsPerDMA)) - 1
					}
					if subSel == 0 {
						continue
					}
					sel := [1]uint64{subSel}
					if err := xorop.Accumulate(accs[q], recBuf[:recsPerDMA*recordSize], recordSize, sel[:]); err != nil {
						return err
					}
					setBits := bits.OnesCount64(subSel)
					ctx.ChargeCycles(int64(setBits) * int64(recordSize/8) * cyclesPerWordXOR)
				}
			}
		}
	}
	return nil
}

// writeMRAMChunked writes a WRAM buffer to MRAM honouring the DMA
// transfer-size limit.
func writeMRAMChunked(ctx *pim.TaskletCtx, offset int, buf []byte) error {
	for off := 0; off < len(buf); off += pim.DMAMaxTransfer {
		end := off + pim.DMAMaxTransfer
		if end > len(buf) {
			end = len(buf)
		}
		if err := ctx.WriteMRAM(offset+off, buf[off:end]); err != nil {
			return err
		}
	}
	return nil
}
