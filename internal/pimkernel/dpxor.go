// Package pimkernel contains the DPU programs IM-PIR launches on the
// simulated UPMEM system. The central kernel is DPXOR: the selective-XOR
// scan of a DPU's database chunk with two-stage parallel reduction across
// tasklets (Algorithm 1, lines 28–45, and §3.3 of the paper).
package pimkernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/xorop"
)

// Per-record instruction estimates for the DPU timing model, in DPU
// instructions (≈ cycles at saturated pipeline occupancy). The DPU is a
// 32-bit in-order core, so one 64-bit load+XOR+store round trip costs
// several instructions; these constants are calibrated so the modeled
// dpXOR share of query time matches Table 1 of the paper (≈ 16% for
// IM-PIR) and are consistent with per-DPU effective throughputs measured
// on real UPMEM hardware (tens of MB/s for compute+copy kernels).
const (
	// cyclesRecordCheck covers selector-bit extraction, the branch and
	// loop bookkeeping charged for every record, selected or not.
	cyclesRecordCheck = 12
	// cyclesPerWordXOR covers XOR-accumulating one 8-byte word of a
	// selected record from WRAM into the accumulator (two 32-bit loads,
	// two XORs, two stores plus addressing on the 32-bit core).
	cyclesPerWordXOR = 24
)

// DPXORArgs is the per-DPU argument block of the DPXOR kernel. Offsets
// are MRAM byte offsets within the executing DPU.
type DPXORArgs struct {
	// DBOffset is where this DPU's database chunk begins.
	DBOffset uint64
	// NumRecords is the number of records in this DPU's chunk.
	NumRecords uint64
	// RecordSize is the record size in bytes (multiple of 8, ≤ 2048).
	RecordSize uint64
	// SelOffset is where the packed selector bits for the chunk begin.
	SelOffset uint64
	// OutOffset is where the master tasklet writes the chunk subresult
	// (RecordSize bytes).
	OutOffset uint64
}

const argsSize = 5 * 8

// Marshal encodes the argument block for pim.System.Launch.
func (a DPXORArgs) Marshal() []byte {
	out := make([]byte, argsSize)
	binary.LittleEndian.PutUint64(out[0:], a.DBOffset)
	binary.LittleEndian.PutUint64(out[8:], a.NumRecords)
	binary.LittleEndian.PutUint64(out[16:], a.RecordSize)
	binary.LittleEndian.PutUint64(out[24:], a.SelOffset)
	binary.LittleEndian.PutUint64(out[32:], a.OutOffset)
	return out
}

func parseArgs(raw []byte) (DPXORArgs, error) {
	if len(raw) != argsSize {
		return DPXORArgs{}, fmt.Errorf("pimkernel: args block is %d bytes, want %d", len(raw), argsSize)
	}
	return DPXORArgs{
		DBOffset:   binary.LittleEndian.Uint64(raw[0:]),
		NumRecords: binary.LittleEndian.Uint64(raw[8:]),
		RecordSize: binary.LittleEndian.Uint64(raw[16:]),
		SelOffset:  binary.LittleEndian.Uint64(raw[24:]),
		OutOffset:  binary.LittleEndian.Uint64(raw[32:]),
	}, nil
}

// Validate checks the argument block against kernel limits.
func (a DPXORArgs) Validate() error {
	switch {
	case a.RecordSize == 0 || a.RecordSize%pim.DMAAlign != 0:
		return fmt.Errorf("pimkernel: record size %d must be a positive multiple of %d", a.RecordSize, pim.DMAAlign)
	case a.RecordSize > pim.DMAMaxTransfer:
		return fmt.Errorf("pimkernel: record size %d exceeds one DMA transfer (%d)", a.RecordSize, pim.DMAMaxTransfer)
	case a.DBOffset%pim.DMAAlign != 0 || a.SelOffset%pim.DMAAlign != 0 || a.OutOffset%pim.DMAAlign != 0:
		return errors.New("pimkernel: MRAM offsets must be 8-byte aligned")
	case a.NumRecords%64 != 0:
		// Selector words must not straddle tasklet boundaries; the engine
		// pads chunks to 64-record multiples.
		return fmt.Errorf("pimkernel: record count %d must be a multiple of 64", a.NumRecords)
	}
	return nil
}

// ModelCost estimates the per-DPU instruction and DMA-byte counts of a
// DPXOR execution over a chunk of numRecords records, assuming the
// expected DPF-share selectivity of 1/2. These are the quantities the
// functional kernel charges through TaskletCtx; the benchmark harness
// combines them with pim.Config.KernelDuration to evaluate paper-scale
// configurations without materialising the database.
func ModelCost(numRecords, recordSize, tasklets int) (instrCycles, dmaBytes int64) {
	words := int64(recordSize / 8)
	n := int64(numRecords)
	instrCycles = n*cyclesRecordCheck + n/2*words*cyclesPerWordXOR
	// Stage 2: master tasklet folds one partial per tasklet.
	instrCycles += int64(tasklets) * words * cyclesPerWordXOR
	// DMA: the database chunk, the selector bits, and the subresult.
	dmaBytes = n*int64(recordSize) + n/8 + int64(recordSize)
	return instrCycles, dmaBytes
}

// DPXOR is the dpXOR kernel. One instance is stateless and reusable
// across launches and DPUs.
type DPXOR struct{}

var _ pim.Kernel = DPXOR{}

// Name implements pim.Kernel.
func (DPXOR) Name() string { return "dpxor" }

// Run implements pim.Kernel. Every tasklet scans an interleaved share of
// the DPU's records (stage 1 of the parallel reduction), deposits its
// partial into shared WRAM, and tasklet 0 folds the partials and writes
// the DPU subresult to MRAM (stage 2).
func (k DPXOR) Run(ctx *pim.TaskletCtx) error {
	args, err := parseArgs(ctx.Args())
	if err != nil {
		return err
	}
	if err := args.Validate(); err != nil {
		return err
	}
	recordSize := int(args.RecordSize)
	numRecords := int(args.NumRecords)
	t := ctx.NumTasklets()
	tid := ctx.TaskletID()

	// Partition records across tasklets in 64-record groups so each
	// selector word belongs to exactly one tasklet: B_t = ⌈B_d/T⌉
	// rounded to 64 (Alg. 1 line 5).
	groups := numRecords / 64
	groupsPerTasklet := (groups + t - 1) / t
	firstGroup := tid * groupsPerTasklet
	lastGroup := firstGroup + groupsPerTasklet
	if lastGroup > groups {
		lastGroup = groups
	}

	partials, err := ctx.SharedWRAM("dpxor.partials", t*recordSize)
	if err != nil {
		return err
	}
	acc := partials[tid*recordSize : (tid+1)*recordSize]

	if firstGroup < lastGroup {
		if err := k.scanRange(ctx, args, acc, firstGroup, lastGroup); err != nil {
			return err
		}
	}

	// Stage 2: wait for every tasklet's partial, then the master tasklet
	// folds them (Alg. 1 MASTERXOR).
	if !ctx.Barrier() {
		return errors.New("pimkernel: launch aborted")
	}
	if tid != 0 {
		return nil
	}
	out, err := ctx.AllocWRAM(recordSize)
	if err != nil {
		return err
	}
	for i := 0; i < t; i++ {
		if err := xorop.XORBytes(out, partials[i*recordSize:(i+1)*recordSize]); err != nil {
			return err
		}
	}
	ctx.ChargeCycles(int64(t) * int64(recordSize/8) * cyclesPerWordXOR)
	return writeMRAMChunked(ctx, int(args.OutOffset), out)
}

// scanRange processes the tasklet's 64-record groups: for each group, DMA
// the selector word and the records into WRAM, then XOR-accumulate the
// selected ones.
func (DPXOR) scanRange(ctx *pim.TaskletCtx, args DPXORArgs, acc []byte, firstGroup, lastGroup int) error {
	recordSize := int(args.RecordSize)

	// Records are fetched in sub-chunks of ≤ one DMA transfer.
	recsPerDMA := pim.DMAMaxTransfer / recordSize
	if recsPerDMA > 64 {
		recsPerDMA = 64
	}
	// Power-of-two sub-chunks keep selector bit offsets word-regular.
	for recsPerDMA&(recsPerDMA-1) != 0 {
		recsPerDMA &= recsPerDMA - 1
	}

	recBuf, err := ctx.AllocWRAM(recsPerDMA * recordSize)
	if err != nil {
		return err
	}
	// Selector words are fetched in blocks to amortise DMA setup: 64
	// groups (512 bytes) per transfer.
	const selBlockGroups = 64
	selBuf, err := ctx.AllocWRAM(selBlockGroups * 8)
	if err != nil {
		return err
	}

	for blockStart := firstGroup; blockStart < lastGroup; blockStart += selBlockGroups {
		blockEnd := blockStart + selBlockGroups
		if blockEnd > lastGroup {
			blockEnd = lastGroup
		}
		nWords := blockEnd - blockStart
		if err := ctx.ReadMRAM(int(args.SelOffset)+blockStart*8, selBuf[:nWords*8]); err != nil {
			return err
		}

		for g := 0; g < nWords; g++ {
			word := binary.LittleEndian.Uint64(selBuf[g*8:])
			group := blockStart + g
			ctx.ChargeCycles(64 * cyclesRecordCheck)
			if word == 0 {
				// No record of this group is selected: the DMA fetch of
				// the records can be skipped entirely. (This leaks only
				// the server's own pseudorandom share, never the query.)
				continue
			}
			baseRecord := group * 64
			for sub := 0; sub < 64; sub += recsPerDMA {
				subSel := word >> uint(sub)
				if recsPerDMA < 64 {
					subSel &= (1 << uint(recsPerDMA)) - 1
				}
				if subSel == 0 {
					continue
				}
				recOff := int(args.DBOffset) + (baseRecord+sub)*recordSize
				if err := ctx.ReadMRAM(recOff, recBuf[:recsPerDMA*recordSize]); err != nil {
					return err
				}
				sel := [1]uint64{subSel}
				if err := xorop.Accumulate(acc, recBuf[:recsPerDMA*recordSize], recordSize, sel[:]); err != nil {
					return err
				}
				setBits := bits.OnesCount64(subSel)
				ctx.ChargeCycles(int64(setBits) * int64(recordSize/8) * cyclesPerWordXOR)
			}
		}
	}
	return nil
}

// writeMRAMChunked writes a WRAM buffer to MRAM honouring the DMA
// transfer-size limit.
func writeMRAMChunked(ctx *pim.TaskletCtx, offset int, buf []byte) error {
	for off := 0; off < len(buf); off += pim.DMAMaxTransfer {
		end := off + pim.DMAMaxTransfer
		if end > len(buf) {
			end = len(buf)
		}
		if err := ctx.WriteMRAM(offset+off, buf[off:end]); err != nil {
			return err
		}
	}
	return nil
}
