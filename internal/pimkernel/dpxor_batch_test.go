package pimkernel

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/pim"
)

// runDPXORBatch loads a chunk plus B back-to-back selector streams onto
// DPU 0, launches one fused kernel, and returns the B subresults.
func runDPXORBatch(t *testing.T, s *pim.System, db []byte, recordSize int, sels []*bitvec.Vector) ([][]byte, pim.Cost) {
	t.Helper()
	numRecords := len(db) / recordSize
	selStride := numRecords / 8
	selBytes := make([]byte, len(sels)*selStride)
	for q, sel := range sels {
		for i, w := range sel.Words() {
			for b := 0; b < 8; b++ {
				selBytes[q*selStride+i*8+b] = byte(w >> (8 * b))
			}
		}
	}
	dbOff := 0
	selOff := (len(db) + 7) / 8 * 8
	outOff := (selOff + len(selBytes) + 7) / 8 * 8

	if err := s.Preload(0, dbOff, db); err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(0, selOff, selBytes); err != nil {
		t.Fatal(err)
	}
	args := DPXORArgs{
		DBOffset:     uint64(dbOff),
		NumRecords:   uint64(numRecords),
		RecordSize:   uint64(recordSize),
		SelOffset:    uint64(selOff),
		OutOffset:    uint64(outOff),
		NumSelectors: uint64(len(sels)),
	}
	cost, err := s.Launch([]int{0}, DPXOR{}, [][]byte{args.Marshal()})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	results := make([][]byte, len(sels))
	for q := range sels {
		out, err := s.InspectMRAM(0, outOff+q*recordSize, recordSize)
		if err != nil {
			t.Fatal(err)
		}
		results[q] = out
	}
	return results, cost
}

// TestDPXORBatchMatchesSolo: a fused B-stream launch must be bit-exact
// with B independent single-selector launches.
func TestDPXORBatchMatchesSolo(t *testing.T) {
	tests := []struct {
		name       string
		numRecords int
		recordSize int
		tasklets   int
		batch      int
	}{
		{"paper workload B=4", 4096, 32, 16, 4},
		{"B=8 x16 tasklets", 2048, 32, 16, 8},
		{"single tasklet B=3", 256, 32, 1, 3},
		{"64B records B=5", 1024, 64, 8, 5},
		{"large records B=2", 256, 1024, 4, 2},
		{"B=1 degenerate", 512, 32, 8, 1},
		{"wide batch B=16", 512, 32, 8, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			db, _ := makeWorkload(tt.numRecords, tt.recordSize, 7)
			sels := make([]*bitvec.Vector, tt.batch)
			for q := range sels {
				_, sels[q] = makeWorkload(tt.numRecords, tt.recordSize, int64(100+q))
			}

			s := testSystem(t, tt.tasklets)
			got, _ := runDPXORBatch(t, s, db, tt.recordSize, sels)
			for q, sel := range sels {
				want := naive(db, tt.recordSize, sel)
				if !bytes.Equal(got[q], want) {
					t.Fatalf("stream %d mismatch:\n got %x\nwant %x", q, got[q][:16], want[:16])
				}
			}
		})
	}
}

// TestDPXORBatchAmortisesDMA: the fused pass must move far fewer DMA
// bytes than B independent launches — the chunk crosses MRAM↔WRAM once
// per pass, not once per stream.
func TestDPXORBatchAmortisesDMA(t *testing.T) {
	const numRecords, recordSize, batch = 4096, 32, 8
	db, _ := makeWorkload(numRecords, recordSize, 11)
	sels := make([]*bitvec.Vector, batch)
	for q := range sels {
		_, sels[q] = makeWorkload(numRecords, recordSize, int64(200+q))
	}

	s := testSystem(t, 16)
	_, fusedCost := runDPXORBatch(t, s, db, recordSize, sels)

	var soloBytes int64
	for _, sel := range sels {
		s2 := testSystem(t, 16)
		selBytes := make([]byte, len(sel.Words())*8)
		for i, w := range sel.Words() {
			for b := 0; b < 8; b++ {
				selBytes[i*8+b] = byte(w >> (8 * b))
			}
		}
		selOff := (len(db) + 7) / 8 * 8
		outOff := (selOff + len(selBytes) + 7) / 8 * 8
		if err := s2.Preload(0, 0, db); err != nil {
			t.Fatal(err)
		}
		if err := s2.Preload(0, selOff, selBytes); err != nil {
			t.Fatal(err)
		}
		args := DPXORArgs{
			NumRecords: uint64(numRecords),
			RecordSize: uint64(recordSize),
			SelOffset:  uint64(selOff),
			OutOffset:  uint64(outOff),
		}
		cost, err := s2.Launch([]int{0}, DPXOR{}, [][]byte{args.Marshal()})
		if err != nil {
			t.Fatal(err)
		}
		soloBytes += cost.Bytes
	}

	// With ~half the records selected per share, each solo launch DMAs
	// ~half the chunk; the fused union covers nearly all of it once. The
	// fused pass must stay well under the B-launch total — anything
	// above half means the chunk is crossing the bus per stream again.
	if fusedCost.Bytes*2 >= soloBytes {
		t.Fatalf("fused pass moved %d DMA bytes, %d unfused: fusion is not amortising the chunk",
			fusedCost.Bytes, soloBytes)
	}
}

// TestModelCostBatch pins the analytic batch cost model: batch=1 equals
// the historical ModelCost, DMA grows only by selector+output streams,
// and instruction work scales with the batch.
func TestModelCostBatch(t *testing.T) {
	instr1, dma1 := ModelCost(4096, 32, 16)
	instrB1, dmaB1 := ModelCostBatch(4096, 32, 16, 1)
	if instr1 != instrB1 || dma1 != dmaB1 {
		t.Fatalf("ModelCost != ModelCostBatch(1): (%d,%d) vs (%d,%d)", instr1, dma1, instrB1, dmaB1)
	}

	const b = 8
	instrB, dmaB := ModelCostBatch(4096, 32, 16, b)
	if instrB != b*instr1 {
		t.Errorf("fused instr = %d, want %d (B× the solo launch)", instrB, b*instr1)
	}
	// DMA: db once + B selector streams + B outputs.
	wantDMA := int64(4096*32) + b*(4096/8) + b*32
	if dmaB != wantDMA {
		t.Errorf("fused dma = %d, want %d", dmaB, wantDMA)
	}
	if dmaB >= b*dma1 {
		t.Errorf("fused dma %d not below %d (B solo launches)", dmaB, b*dma1)
	}
}

// TestMaxFusedSelectors sanity-checks the WRAM feasibility envelope.
func TestMaxFusedSelectors(t *testing.T) {
	cfg := pim.DefaultConfig()
	if got := MaxFusedSelectors(cfg, 32); got < 8 {
		t.Errorf("MaxFusedSelectors(32B records) = %d, want ≥ 8 under a 64KB WRAM budget", got)
	}
	if got := MaxFusedSelectors(cfg, 2048); got < 1 {
		t.Errorf("MaxFusedSelectors(2048B records) = %d, want ≥ 1", got)
	}
	small := cfg
	small.TaskletsPerDPU = 1
	if a, b := MaxFusedSelectors(cfg, 32), MaxFusedSelectors(small, 32); b < a {
		t.Errorf("fewer tasklets must not shrink the feasible batch: %d tasklets→%d, 1 tasklet→%d",
			cfg.TaskletsPerDPU, a, b)
	}
}

// TestStreamPasses: a P-pass stream launch must move P× the DMA bytes of
// a single pass (the probe behind the fused-vs-per-query traffic claim).
func TestStreamPasses(t *testing.T) {
	cfg := pim.DefaultConfig()
	cfg.Ranks = 1
	cfg.DPUsPerRank = 1
	cfg.MRAMPerDPU = 1 << 20
	s, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	region := make([]byte, 64<<10)
	for i := range region {
		region[i] = byte(i * 31)
	}
	if err := s.Preload(0, 0, region); err != nil {
		t.Fatal(err)
	}
	outOff := len(region)

	one := StreamArgs{Length: uint64(len(region)), OutOffset: uint64(outOff)}
	costOne, err := s.Launch([]int{0}, Stream{}, [][]byte{one.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	four := StreamArgs{Length: uint64(len(region)), OutOffset: uint64(outOff), Passes: 4}
	costFour, err := s.Launch([]int{0}, Stream{}, [][]byte{four.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	// 4 passes read 4× the region; the checksum write-back is fixed.
	wantExtra := 3 * int64(len(region))
	if costFour.Bytes-costOne.Bytes != wantExtra {
		t.Fatalf("4-pass stream moved %d bytes vs %d single-pass, want +%d",
			costFour.Bytes, costOne.Bytes, wantExtra)
	}
}
