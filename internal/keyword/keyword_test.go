package keyword

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestBucketCodecRoundTrip(t *testing.T) {
	m := validManifest()
	slots := []Slot{
		{Occupied: true, Key: []byte("alpha"), Value: []byte("first value")},
		{}, // empty cell
	}
	rec, err := m.EncodeBucket(slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != m.RecordSize() {
		t.Fatalf("record has %d bytes, want %d", len(rec), m.RecordSize())
	}
	back, err := m.DecodeBucket(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != m.BucketCapacity {
		t.Fatalf("decoded %d slots, want %d", len(back), m.BucketCapacity)
	}
	if !back[0].Occupied || !bytes.Equal(back[0].Key, []byte("alpha")) ||
		!bytes.Equal(back[0].Value, []byte("first value")) {
		t.Fatalf("slot 0 round trip: %+v", back[0])
	}
	if back[1].Occupied {
		t.Fatal("empty slot decoded as occupied")
	}

	// A zero record — fresh PIR database storage — is an empty bucket.
	zero, err := m.DecodeBucket(make([]byte, m.RecordSize()))
	if err != nil {
		t.Fatalf("all-zero record rejected: %v", err)
	}
	for _, s := range zero {
		if s.Occupied {
			t.Fatal("zero record decoded with occupied slots")
		}
	}

	// FindInBucket hits and misses.
	if v, ok, err := m.FindInBucket(rec, []byte("alpha")); err != nil || !ok || !bytes.Equal(v, []byte("first value")) {
		t.Fatalf("FindInBucket hit: %q %v %v", v, ok, err)
	}
	if _, ok, err := m.FindInBucket(rec, []byte("beta")); err != nil || ok {
		t.Fatalf("FindInBucket miss: %v %v", ok, err)
	}
}

func TestBucketCodecRejectsMalformed(t *testing.T) {
	m := validManifest()
	good, err := m.EncodeBucket([]Slot{{Occupied: true, Key: []byte("k"), Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		rec := append([]byte(nil), good...)
		mutate(rec)
		return rec
	}
	cases := map[string][]byte{
		"short record":       good[:len(good)-1],
		"long record":        append(append([]byte(nil), good...), 0),
		"bad flag":           corrupt(func(r []byte) { r[0] = 7 }),
		"zero key length":    corrupt(func(r []byte) { r[1], r[2] = 0, 0 }),
		"huge key length":    corrupt(func(r []byte) { r[1], r[2] = 0xFF, 0xFF }),
		"dirty key padding":  corrupt(func(r []byte) { r[3+5] = 1 }), // beyond 1-byte key, inside key field
		"huge value length":  corrupt(func(r []byte) { r[3+m.KeySize] = 0xFF; r[4+m.KeySize] = 0xFF }),
		"dirty empty slot":   corrupt(func(r []byte) { r[m.SlotSize()+2] = 9 }), // slot 1 flagged empty
		"dirty val padding":  corrupt(func(r []byte) { r[3+m.KeySize+2+10] = 3 }),
		"flagged-empty data": corrupt(func(r []byte) { r[0] = 0 }), // key bytes remain under a 0 flag
	}
	for name, rec := range cases {
		if _, err := m.DecodeBucket(rec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Encoder input validation.
	if _, err := m.EncodeBucket(make([]Slot, m.BucketCapacity+1)); err == nil {
		t.Error("over-capacity slot list accepted")
	}
	if _, err := m.EncodeBucket([]Slot{{Occupied: true, Key: bytes.Repeat([]byte{1}, m.KeySize+1)}}); err == nil {
		t.Error("over-long key accepted")
	}
	if _, err := m.EncodeBucket([]Slot{{Key: []byte("ghost")}}); err == nil {
		t.Error("unoccupied slot with key bytes accepted")
	}
}

func TestBuildTableAndLookup(t *testing.T) {
	pairs := GeneratePairs(500, 42)
	table, err := BuildTable(pairs, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if table.Pairs() != len(pairs) {
		t.Fatalf("stored %d pairs, want %d", table.Pairs(), len(pairs))
	}
	for _, p := range pairs {
		v, err := table.Lookup(p.Key)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", p.Key, err)
		}
		if !bytes.Equal(v, p.Value) {
			t.Fatalf("Lookup(%q) returned the wrong value", p.Key)
		}
	}
	if _, err := table.Lookup([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}

	// Achieved load factor should be near the 0.85 default target (the
	// stash absorbs any shortfall; with defaults almost nothing spills).
	if lf := table.LoadFactor(); lf < 0.75 {
		t.Fatalf("load factor %.2f below 0.75", lf)
	}

	// The serialised DB round-trips through the bucket codec.
	db, err := table.DB()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != int(table.Manifest.TotalBuckets()) || db.RecordSize() != table.Manifest.RecordSize() {
		t.Fatalf("DB geometry %dx%d != manifest %dx%d",
			db.NumRecords(), db.RecordSize(), table.Manifest.TotalBuckets(), table.Manifest.RecordSize())
	}
	for _, p := range pairs[:20] {
		found := false
		for _, b := range table.Manifest.ProbeIndices(p.Key) {
			v, ok, err := table.Manifest.FindInBucket(db.Record(int(b)), p.Key)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if !bytes.Equal(v, p.Value) {
					t.Fatalf("DB probe for %q returned the wrong value", p.Key)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %q not reachable through its probe plan", p.Key)
		}
	}
}

func TestBuildTableDeterministic(t *testing.T) {
	pairs := GeneratePairs(300, 7)
	a, err := BuildTable(pairs, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTable(GeneratePairs(300, 7), Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	dbA, err := a.DB()
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := b.DB()
	if err != nil {
		t.Fatal(err)
	}
	if dbA.Digest() != dbB.Digest() {
		t.Fatal("two builds with identical inputs produced different tables")
	}
	c, err := BuildTable(pairs, Options{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	dbC, err := c.DB()
	if err != nil {
		t.Fatal(err)
	}
	if dbC.Digest() == dbA.Digest() {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestBuildTableRejectsDuplicates(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("same"), Value: []byte("one")},
		{Key: []byte("other"), Value: []byte("two")},
		{Key: []byte("same"), Value: []byte("three")},
	}
	if _, err := BuildTable(pairs, Options{}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate keys: %v, want ErrDuplicateKey", err)
	}
}

func TestBuildTableRejectsOversizedFields(t *testing.T) {
	pairs := []Pair{
		{Key: []byte("short"), Value: []byte("v")},
		{Key: bytes.Repeat([]byte{'k'}, 20), Value: []byte("v")},
	}
	if _, err := BuildTable(pairs, Options{KeySize: 8}); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("over-long key: %v, want ErrKeyTooLong", err)
	}
	if _, err := BuildTable(pairs, Options{ValueSize: 0}); err != nil {
		t.Fatalf("derived sizes rejected: %v", err)
	}
	long := []Pair{{Key: []byte("k"), Value: bytes.Repeat([]byte{'v'}, 9)}}
	if _, err := BuildTable(long, Options{ValueSize: 4}); !errors.Is(err, ErrValueTooLong) {
		t.Fatalf("over-long value: %v, want ErrValueTooLong", err)
	}
	if _, err := BuildTable(nil, Options{}); err == nil {
		t.Fatal("empty pair set accepted")
	}
}

// TestStashSpill forces eviction failure by squeezing many pairs into
// a deliberately undersized bucket array: the overflow must land in
// the stash and remain findable.
func TestStashSpill(t *testing.T) {
	pairs := GeneratePairs(16, 3)
	table, err := BuildTable(pairs, Options{
		NumBuckets:     6,
		BucketCapacity: 2,
		Hashes:         2,
		StashBuckets:   4,
		MaxKicks:       8,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 pairs into 12 hash slots: at least 4 must have spilled.
	if table.Stashed() < 4 {
		t.Fatalf("stashed %d pairs, expected ≥ 4", table.Stashed())
	}
	for _, p := range pairs {
		v, err := table.Lookup(p.Key)
		if err != nil {
			t.Fatalf("Lookup(%q) after stash spill: %v", p.Key, err)
		}
		if !bytes.Equal(v, p.Value) {
			t.Fatalf("Lookup(%q) wrong value after stash spill", p.Key)
		}
	}
}

// TestTableFull: pairs exceeding hash slots + stash slots must fail
// with ErrTableFull, not loop or silently drop entries.
func TestTableFull(t *testing.T) {
	pairs := GeneratePairs(20, 5)
	_, err := BuildTable(pairs, Options{
		NumBuckets:     4,
		BucketCapacity: 2,
		Hashes:         2,
		StashBuckets:   2,
		MaxKicks:       8,
		Seed:           5,
	})
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("overfull table: %v, want ErrTableFull", err)
	}
}

func TestGeneratePairsDeterministic(t *testing.T) {
	a, b := GeneratePairs(50, 9), GeneratePairs(50, 9)
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("pair %d differs between identical generations", i)
		}
	}
	c := GeneratePairs(50, 10)
	same := 0
	for i := range a {
		if bytes.Equal(a[i].Value, c[i].Value) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical values")
	}
	if want := fmt.Sprintf("key-%08d", 7); string(a[7].Key) != want {
		t.Fatalf("key 7 is %q, want %q", a[7].Key, want)
	}
}
