package keyword

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"github.com/impir/impir/internal/database"
)

// Pair is one key→value entry of a keyword store.
type Pair struct {
	Key   []byte
	Value []byte
}

// Options tunes BuildTable. The zero value derives everything from the
// input pairs: 3 hashes, 2 slots per bucket, an 0.85 target load
// factor, key/value sizes sized to the longest input, a stash of
// ~TotalSlots/128 (min 1) buckets, and seed 1.
type Options struct {
	// Hashes is k, the candidate buckets per key (0 = 3).
	Hashes int
	// BucketCapacity is the slots per bucket (0 = 2).
	BucketCapacity int
	// KeySize fixes the per-slot key field (0 = longest input key).
	KeySize int
	// ValueSize fixes the per-slot value field (0 = longest input
	// value, min 1).
	ValueSize int
	// LoadFactor is the target fill fraction sizing the table:
	// NumBuckets = ⌈pairs / (BucketCapacity · LoadFactor)⌉ (0 = 0.85).
	// Ignored when NumBuckets is set.
	LoadFactor float64
	// NumBuckets fixes the hash-bucket count directly (0 = derive from
	// LoadFactor).
	NumBuckets uint64
	// StashBuckets fixes the reserved tail bucket count (0 = 4). The
	// stash is deliberately CONSTANT-size, not proportional to the
	// table: clients probe every stash bucket on every lookup, so the
	// stash directly prices the probe batch. Cuckoo theory puts the
	// expected overflow at O(1)–O(log n) items; if a build overflows
	// the stash (ErrTableFull), lower LoadFactor or raise MaxKicks
	// rather than growing the stash. Use -1 for no stash.
	StashBuckets int
	// Seed makes the build deterministic: it derives the k hash seeds
	// and drives the eviction walk. Two builds with identical pairs and
	// options produce byte-identical tables (0 = 1).
	Seed int64
	// MaxKicks bounds one insertion's cuckoo eviction walk before the
	// pair spills to the stash (0 = 512).
	MaxKicks int
}

func (o Options) withDefaults(pairs []Pair) (Options, error) {
	if o.Hashes == 0 {
		o.Hashes = 3
	}
	if o.BucketCapacity == 0 {
		o.BucketCapacity = 2
	}
	if o.LoadFactor == 0 {
		o.LoadFactor = 0.85
	}
	if o.LoadFactor < 0.05 || o.LoadFactor > 1 {
		return o, fmt.Errorf("keyword: load factor %g outside (0.05,1]", o.LoadFactor)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxKicks == 0 {
		o.MaxKicks = 512
	}
	maxKey, maxVal := 0, 0
	for _, p := range pairs {
		if len(p.Key) > maxKey {
			maxKey = len(p.Key)
		}
		if len(p.Value) > maxVal {
			maxVal = len(p.Value)
		}
	}
	if o.KeySize == 0 {
		o.KeySize = maxKey
	}
	if o.ValueSize == 0 {
		o.ValueSize = maxVal
	}
	if o.ValueSize == 0 {
		o.ValueSize = 1 // value-less sets (membership tests) still need a field
	}
	if o.NumBuckets == 0 {
		need := float64(len(pairs)) / (float64(o.BucketCapacity) * o.LoadFactor)
		o.NumBuckets = uint64(math.Ceil(need))
		if o.NumBuckets < 1 {
			o.NumBuckets = 1
		}
	}
	if o.StashBuckets == 0 {
		o.StashBuckets = 4
	}
	if o.StashBuckets < 0 {
		o.StashBuckets = 0
	}
	return o, nil
}

// deriveSeeds expands the build seed into k distinct hash seeds via
// SHA-256, retrying on the (astronomically unlikely) collision so the
// manifest always validates.
func deriveSeeds(seed int64, k int) []uint64 {
	out := make([]uint64, 0, k)
	seen := make(map[uint64]struct{}, k)
	for i := 0; len(out) < k; i++ {
		var buf [20]byte
		copy(buf[:4], "impr")
		binary.LittleEndian.PutUint64(buf[4:], uint64(seed))
		binary.LittleEndian.PutUint64(buf[12:], uint64(i))
		sum := sha256.Sum256(buf[:])
		s := binary.LittleEndian.Uint64(sum[:8])
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// Table is a built cuckoo table: the manifest plus the slot contents
// of every bucket (hash buckets first, then the stash tail).
type Table struct {
	Manifest Manifest

	buckets [][]Slot // TotalBuckets() entries of BucketCapacity slots
	pairs   int      // stored pairs
	stashed int      // pairs that spilled to the stash
}

// BuildTable places pairs into a k-ary cuckoo table. The build is
// deterministic in (pairs order, Options): candidate buckets come from
// seeded hashes, eviction walks from a seeded PRNG, so independently
// built replicas are byte-identical — the property replicated PIR
// servers need. Duplicate keys are rejected with ErrDuplicateKey, keys
// and values longer than the (configured or derived) field sizes with
// ErrKeyTooLong / ErrValueTooLong, and a table whose eviction walks and
// stash are both exhausted with ErrTableFull.
func BuildTable(pairs []Pair, opts Options) (*Table, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("keyword: no pairs")
	}
	opts, err := opts.withDefaults(pairs)
	if err != nil {
		return nil, err
	}
	m := Manifest{
		NumBuckets:     opts.NumBuckets,
		StashBuckets:   uint64(opts.StashBuckets),
		BucketCapacity: opts.BucketCapacity,
		KeySize:        opts.KeySize,
		ValueSize:      opts.ValueSize,
		HashSeeds:      deriveSeeds(opts.Seed, opts.Hashes),
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	t := &Table{Manifest: m, buckets: make([][]Slot, m.TotalBuckets())}
	for i := range t.buckets {
		t.buckets[i] = make([]Slot, m.BucketCapacity)
	}
	seen := make(map[string]struct{}, len(pairs))
	rng := rand.New(rand.NewSource(opts.Seed))
	for i, p := range pairs {
		if err := m.CheckKey(p.Key); err != nil {
			return nil, fmt.Errorf("keyword: pair %d: %w", i, err)
		}
		if err := m.CheckValue(p.Value); err != nil {
			return nil, fmt.Errorf("keyword: pair %d: %w", i, err)
		}
		if _, dup := seen[string(p.Key)]; dup {
			return nil, fmt.Errorf("keyword: pair %d: %w: %q", i, ErrDuplicateKey, p.Key)
		}
		seen[string(p.Key)] = struct{}{}
		if err := t.insert(p, rng, opts.MaxKicks); err != nil {
			return nil, fmt.Errorf("keyword: pair %d: %w", i, err)
		}
	}
	return t, nil
}

// insert places one pair: direct placement into a free candidate slot
// when possible, otherwise a bounded random-walk cuckoo eviction, and
// finally the stash.
func (t *Table) insert(p Pair, rng *rand.Rand, maxKicks int) error {
	cur := Slot{Occupied: true, Key: p.Key, Value: p.Value}
	for kick := 0; kick <= maxKicks; kick++ {
		cands := t.Manifest.Candidates(cur.Key)
		for _, b := range cands {
			if i := freeSlot(t.buckets[b]); i >= 0 {
				t.buckets[b][i] = cur
				t.pairs++
				return nil
			}
		}
		// All candidates full: evict a random slot of a random candidate
		// and walk the victim.
		b := cands[rng.Intn(len(cands))]
		s := rng.Intn(t.Manifest.BucketCapacity)
		t.buckets[b][s], cur = cur, t.buckets[b][s]
	}
	// Walk exhausted: the displaced pair spills into the stash tail.
	for _, b := range t.Manifest.StashIndices() {
		if i := freeSlot(t.buckets[b]); i >= 0 {
			t.buckets[b][i] = cur
			t.pairs++
			t.stashed++
			return nil
		}
	}
	return ErrTableFull
}

func freeSlot(slots []Slot) int {
	for i, s := range slots {
		if !s.Occupied {
			return i
		}
	}
	return -1
}

// Pairs returns the number of stored pairs.
func (t *Table) Pairs() int { return t.pairs }

// Stashed returns how many pairs spilled into the stash tail.
func (t *Table) Stashed() int { return t.stashed }

// LoadFactor returns the achieved fill fraction over the hash buckets
// (stored non-stash pairs / hash slots) — the "effective load factor"
// the bench harness tracks.
func (t *Table) LoadFactor() float64 {
	slots := float64(t.Manifest.NumBuckets) * float64(t.Manifest.BucketCapacity)
	return float64(t.pairs-t.stashed) / slots
}

// Lookup finds a key in the built table in memory (no PIR) — the
// builder-side reference the network client's probe path is tested
// against. Returns ErrNotFound for absent keys.
func (t *Table) Lookup(key []byte) ([]byte, error) {
	if err := t.Manifest.CheckKey(key); err != nil {
		return nil, err
	}
	for _, b := range t.Manifest.Candidates(key) {
		if v, ok := findSlot(t.buckets[b], key); ok {
			return v, nil
		}
	}
	for _, b := range t.Manifest.StashIndices() {
		if v, ok := findSlot(t.buckets[b], key); ok {
			return v, nil
		}
	}
	return nil, ErrNotFound
}

func findSlot(slots []Slot, key []byte) ([]byte, bool) {
	for _, s := range slots {
		if s.Occupied && string(s.Key) == string(key) {
			return s.Value, true
		}
	}
	return nil, false
}

// DB serialises the table into an ordinary PIR database: record i is
// bucket i's canonical encoding (hash buckets, then the stash tail).
// Everything above the database — engines, scheduling, sharding —
// works on it unchanged.
func (t *Table) DB() (*database.DB, error) {
	db, err := database.New(int(t.Manifest.TotalBuckets()), t.Manifest.RecordSize())
	if err != nil {
		return nil, err
	}
	for i, slots := range t.buckets {
		rec, err := t.Manifest.EncodeBucket(slots)
		if err != nil {
			return nil, fmt.Errorf("keyword: bucket %d: %w", i, err)
		}
		if err := db.SetRecord(i, rec); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// GeneratePairs synthesises a deterministic keyword corpus for tests,
// benchmarks, and the impir-server -kv-manifest workload: n pairs with
// sequential printable keys ("key-00000042") and pseudorandom 32-byte
// values, deterministic in seed. Two servers started with the same
// (n, seed) build byte-identical tables.
func GeneratePairs(n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		val := make([]byte, 32)
		rng.Read(val)
		out[i] = Pair{Key: []byte(fmt.Sprintf("key-%08d", i)), Value: val}
	}
	return out
}
