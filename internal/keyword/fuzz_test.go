package keyword

import (
	"bytes"
	"testing"
)

// FuzzParseManifest hardens the manifest decoder against adversarial
// JSON: malformed manifests must error — never panic, never validate a
// geometry outside the package caps (which downstream code sizes
// allocations from) — and accepted manifests must round-trip through
// JSON() semantically.
func FuzzParseManifest(f *testing.F) {
	good, err := validManifest().JSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"num_buckets":-1}`))
	f.Add([]byte(`{"num_buckets":1,"bucket_capacity":1,"key_size":1,"value_size":1,"hash_seeds":[1,2]}`))
	f.Add([]byte(`{"num_buckets":1099511627776,"stash_buckets":1099511627776}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted manifests sit inside every allocation cap.
		if m.RecordSize() > MaxRecordSize || m.RecordSize() < 1 {
			t.Fatalf("accepted manifest has record size %d", m.RecordSize())
		}
		if m.TotalBuckets() > MaxBuckets || m.TotalBuckets() < 1 {
			t.Fatalf("accepted manifest has %d buckets", m.TotalBuckets())
		}
		if m.StashBuckets > MaxStashBuckets {
			t.Fatalf("accepted manifest has %d stash buckets (probed per lookup)", m.StashBuckets)
		}
		if m.ProbesPerKey() < MinHashes {
			t.Fatalf("accepted manifest probes %d buckets per key", m.ProbesPerKey())
		}
		// And round-trip: JSON() must re-validate and Parse back equal.
		out, err := m.JSON()
		if err != nil {
			t.Fatalf("accepted manifest fails re-encode: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("re-encoded manifest fails to parse: %v", err)
		}
		if back.NumBuckets != m.NumBuckets || back.StashBuckets != m.StashBuckets ||
			back.BucketCapacity != m.BucketCapacity || back.KeySize != m.KeySize ||
			back.ValueSize != m.ValueSize || len(back.HashSeeds) != len(m.HashSeeds) {
			t.Fatal("manifest JSON round trip changed fields")
		}
	})
}

// FuzzDecodeBucket hardens the bucket record decoder: arbitrary bytes
// must never panic, and accepted records must be fixed points of the
// canonical codec (decode ∘ encode is the identity on accepted input).
func FuzzDecodeBucket(f *testing.F) {
	m := Manifest{
		NumBuckets:     8,
		StashBuckets:   1,
		BucketCapacity: 2,
		KeySize:        8,
		ValueSize:      4,
		HashSeeds:      []uint64{1, 2},
	}
	good, err := m.EncodeBucket([]Slot{{Occupied: true, Key: []byte("k"), Value: []byte("v")}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(make([]byte, m.RecordSize()))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, m.RecordSize()))

	f.Fuzz(func(t *testing.T, data []byte) {
		slots, err := m.DecodeBucket(data)
		if err != nil {
			return
		}
		back, err := m.EncodeBucket(slots)
		if err != nil {
			t.Fatalf("accepted record fails re-encode: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("accepted record is not a fixed point of the codec")
		}
		// FindInBucket must agree with the decoded slots and never error
		// on an accepted record.
		for _, s := range slots {
			if !s.Occupied {
				continue
			}
			v, ok, err := m.FindInBucket(data, s.Key)
			if err != nil || !ok || !bytes.Equal(v, s.Value) {
				t.Fatalf("FindInBucket disagrees with DecodeBucket for %q", s.Key)
			}
		}
	})
}
