package keyword

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Slot is one key/value cell of a bucket record. A zero Slot (Occupied
// false, nil key and value) is an empty cell.
type Slot struct {
	Occupied bool
	Key      []byte
	Value    []byte
}

// Bucket record wire layout — BucketCapacity slots back to back, each:
//
//	[1]  occupancy flag: 0 empty, 1 occupied
//	[2]  key length, little-endian (≤ KeySize)
//	[K]  key bytes, zero-padded to KeySize
//	[2]  value length, little-endian (≤ ValueSize)
//	[V]  value bytes, zero-padded to ValueSize
//
// The record tail is zero-padded up to Manifest.RecordSize()'s 8-byte
// alignment. The encoding is canonical: empty slots are all-zero and
// padding beyond the stored lengths is zero, so Decode∘Encode is the
// identity and Encode∘Decode accepts exactly the fixed points (the
// property the fuzz harness checks). An all-zero record — the natural
// state of a freshly allocated PIR database — decodes as an empty
// bucket.

// EncodeBucket serialises capacity slots into one bucket record of
// m.RecordSize() bytes. Slots beyond len(slots) encode empty.
func (m Manifest) EncodeBucket(slots []Slot) ([]byte, error) {
	if len(slots) > m.BucketCapacity {
		return nil, fmt.Errorf("keyword: %d slots exceed bucket capacity %d", len(slots), m.BucketCapacity)
	}
	rec := make([]byte, m.RecordSize())
	for i, s := range slots {
		if !s.Occupied {
			if len(s.Key) != 0 || len(s.Value) != 0 {
				return nil, fmt.Errorf("keyword: slot %d is empty but carries key/value bytes", i)
			}
			continue
		}
		if err := m.CheckKey(s.Key); err != nil {
			return nil, fmt.Errorf("keyword: slot %d: %w", i, err)
		}
		if err := m.CheckValue(s.Value); err != nil {
			return nil, fmt.Errorf("keyword: slot %d: %w", i, err)
		}
		off := i * m.SlotSize()
		rec[off] = 1
		binary.LittleEndian.PutUint16(rec[off+1:], uint16(len(s.Key)))
		copy(rec[off+3:], s.Key)
		voff := off + 3 + m.KeySize
		binary.LittleEndian.PutUint16(rec[voff:], uint16(len(s.Value)))
		copy(rec[voff+2:], s.Value)
	}
	return rec, nil
}

// DecodeBucket parses one bucket record into its BucketCapacity slots.
// It rejects malformed records — wrong length, unknown occupancy flag,
// over-long stored lengths, nonzero padding, or a nonzero empty slot —
// rather than guessing, so a corrupted or adversarial record never
// yields a phantom key.
func (m Manifest) DecodeBucket(rec []byte) ([]Slot, error) {
	if len(rec) != m.RecordSize() {
		return nil, fmt.Errorf("keyword: bucket record has %d bytes, want %d", len(rec), m.RecordSize())
	}
	if !allZero(rec[m.BucketCapacity*m.SlotSize():]) {
		return nil, fmt.Errorf("keyword: bucket record alignment padding not zeroed")
	}
	slots := make([]Slot, m.BucketCapacity)
	for i := range slots {
		off := i * m.SlotSize()
		cell := rec[off : off+m.SlotSize()]
		switch cell[0] {
		case 0:
			if !allZero(cell[1:]) {
				return nil, fmt.Errorf("keyword: slot %d marked empty but not zeroed", i)
			}
		case 1:
			keyLen := int(binary.LittleEndian.Uint16(cell[1:]))
			if keyLen < 1 || keyLen > m.KeySize {
				return nil, fmt.Errorf("keyword: slot %d key length %d outside [1,%d]", i, keyLen, m.KeySize)
			}
			key := cell[3 : 3+m.KeySize]
			if !allZero(key[keyLen:]) {
				return nil, fmt.Errorf("keyword: slot %d key padding not zeroed", i)
			}
			voff := 3 + m.KeySize
			valLen := int(binary.LittleEndian.Uint16(cell[voff:]))
			if valLen > m.ValueSize {
				return nil, fmt.Errorf("keyword: slot %d value length %d exceeds %d", i, valLen, m.ValueSize)
			}
			val := cell[voff+2 : voff+2+m.ValueSize]
			if !allZero(val[valLen:]) {
				return nil, fmt.Errorf("keyword: slot %d value padding not zeroed", i)
			}
			// Value is non-nil even at length zero: callers use nil as
			// their not-found sentinel, and an empty stored value is a
			// legitimate hit (membership-set tables).
			slots[i] = Slot{
				Occupied: true,
				Key:      append([]byte(nil), key[:keyLen]...),
				Value:    append([]byte{}, val[:valLen]...),
			}
		default:
			return nil, fmt.Errorf("keyword: slot %d has occupancy flag %d", i, cell[0])
		}
	}
	return slots, nil
}

// FindInBucket decodes one bucket record and returns the value stored
// for key, or (nil, false) when the bucket does not hold it.
func (m Manifest) FindInBucket(rec, key []byte) (value []byte, found bool, err error) {
	slots, err := m.DecodeBucket(rec)
	if err != nil {
		return nil, false, err
	}
	for _, s := range slots {
		if s.Occupied && bytes.Equal(s.Key, key) {
			return s.Value, true, nil
		}
	}
	return nil, false, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
