// Package keyword lifts index-PIR to keyword PIR: private key→value
// retrieval over a k-ary cuckoo hash table serialised into an ordinary
// PIR database.
//
// Index-PIR answers "record i" — but realistic workloads (credential
// checking, blocklists, CT auditing) ask "the value for key K". The
// usual bridge ships every client a plaintext key→index directory,
// which scales linearly with the corpus and itself leaks the corpus
// contents. Keyword PIR removes the directory: the builder places each
// key/value pair into one of k seeded hash candidate buckets (cuckoo
// eviction resolves collisions; pairs that cannot be placed spill into
// a small stash of reserved tail buckets), every bucket becomes one
// fixed-size PIR record, and the client privately retrieves ALL k
// candidate buckets of a key — plus the stash — in one constant-shape
// batch. The servers see k+S ordinary PIR sub-queries whether the key
// exists or not, so the access pattern leaks neither the key nor
// hit/miss.
//
// The package comprises the table Manifest (hashing geometry + JSON
// round-trip for flags and config files, mirroring internal/cluster),
// a canonical bucket record codec, and the deterministic seeded table
// builder. Because the table serialises into a database.DB, every
// engine (pim/cpu/gpu), the scheduler's coalescing, and cluster
// sharding work unchanged underneath; the network client driving the
// probes — impir.KVClient — lives in the root package on top of
// impir.Client and impir.ClusterClient.
package keyword

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Sentinel errors shared by the builder and the root KVClient.
var (
	// ErrNotFound reports a key absent from the table. Lookups for
	// absent keys issue exactly the same wire traffic as hits.
	ErrNotFound = errors.New("keyword: key not found")
	// ErrDuplicateKey reports the same key appearing twice in a build
	// or an insert of an already-present key where overwrite is not
	// intended.
	ErrDuplicateKey = errors.New("keyword: duplicate key")
	// ErrTableFull reports a table whose candidate buckets and stash
	// are all occupied — the load factor limit.
	ErrTableFull = errors.New("keyword: table full (candidate buckets and stash exhausted)")
	// ErrKeyTooLong reports a key exceeding the manifest's KeySize.
	ErrKeyTooLong = errors.New("keyword: key longer than configured key size")
	// ErrValueTooLong reports a value exceeding the manifest's
	// ValueSize.
	ErrValueTooLong = errors.New("keyword: value longer than configured value size")
)

// Hard caps keeping adversarial manifests from demanding absurd
// allocations (the decoder and builder size buffers from these fields).
const (
	// MaxKeySize bounds the per-slot key field.
	MaxKeySize = 4096
	// MaxValueSize bounds the per-slot value field.
	MaxValueSize = 65535
	// MaxBucketCapacity bounds slots per bucket.
	MaxBucketCapacity = 64
	// MaxHashes bounds the candidate-bucket count k.
	MaxHashes = 8
	// MinHashes is the smallest workable k (one hash has no eviction
	// alternative and collapses to a plain hash table).
	MinHashes = 2
	// MaxStashBuckets bounds the stash tail. The stash is probed in
	// full on EVERY lookup, so its size directly prices the probe
	// batch; a manifest demanding a huge stash is either misbuilt or
	// adversarial (clients size per-lookup allocations from it).
	MaxStashBuckets = 256
	// MaxBuckets bounds NumBuckets + StashBuckets.
	MaxBuckets = 1 << 40
	// MaxRecordSize bounds one bucket's serialised size (one PIR
	// record).
	MaxRecordSize = 1 << 20
)

// slotOverhead is the per-slot metadata: 1 occupancy flag byte, 2-byte
// key length, 2-byte value length.
const slotOverhead = 5

// Manifest describes a keyword table's geometry and hashing so a
// client can compute any key's candidate buckets without seeing the
// table: bucket layout, key/value field sizes, and the k hash seeds.
// Manifests round-trip through JSON (Parse / Load / Manifest.JSON) for
// command-line flags and config files, like cluster.Manifest.
type Manifest struct {
	// NumBuckets is the number of hash-addressable buckets (records
	// 0..NumBuckets-1 of the serialised database).
	NumBuckets uint64 `json:"num_buckets"`
	// StashBuckets is the number of reserved tail buckets (records
	// NumBuckets..NumBuckets+StashBuckets-1) holding pairs that lost
	// their cuckoo eviction walks. Clients probe the whole stash on
	// every lookup, so the stash must stay small.
	StashBuckets uint64 `json:"stash_buckets"`
	// BucketCapacity is the number of key/value slots per bucket.
	BucketCapacity int `json:"bucket_capacity"`
	// KeySize is the fixed per-slot key field size; keys up to this
	// length are stored with their exact length.
	KeySize int `json:"key_size"`
	// ValueSize is the fixed per-slot value field size.
	ValueSize int `json:"value_size"`
	// HashSeeds are the k candidate-hash seeds, in probe order.
	HashSeeds []uint64 `json:"hash_seeds"`
}

// Validate checks the geometry: positive bucket count and capacity
// within caps, key/value sizes within caps, 2..8 distinct hash seeds,
// and a per-bucket record size within MaxRecordSize.
func (m Manifest) Validate() error {
	if m.NumBuckets < 1 {
		return fmt.Errorf("keyword: bucket count %d must be ≥ 1", m.NumBuckets)
	}
	if m.NumBuckets > MaxBuckets || m.NumBuckets+m.StashBuckets > MaxBuckets {
		return fmt.Errorf("keyword: %d+%d buckets exceeds the cap of %d",
			m.NumBuckets, m.StashBuckets, uint64(MaxBuckets))
	}
	if m.StashBuckets > MaxStashBuckets {
		return fmt.Errorf("keyword: %d stash buckets exceeds the cap of %d (the whole stash is probed on every lookup)",
			m.StashBuckets, MaxStashBuckets)
	}
	if m.BucketCapacity < 1 || m.BucketCapacity > MaxBucketCapacity {
		return fmt.Errorf("keyword: bucket capacity %d outside [1,%d]", m.BucketCapacity, MaxBucketCapacity)
	}
	if m.KeySize < 1 || m.KeySize > MaxKeySize {
		return fmt.Errorf("keyword: key size %d outside [1,%d]", m.KeySize, MaxKeySize)
	}
	if m.ValueSize < 1 || m.ValueSize > MaxValueSize {
		return fmt.Errorf("keyword: value size %d outside [1,%d]", m.ValueSize, MaxValueSize)
	}
	if len(m.HashSeeds) < MinHashes || len(m.HashSeeds) > MaxHashes {
		return fmt.Errorf("keyword: %d hash seeds outside [%d,%d]", len(m.HashSeeds), MinHashes, MaxHashes)
	}
	seen := make(map[uint64]struct{}, len(m.HashSeeds))
	for i, s := range m.HashSeeds {
		if _, dup := seen[s]; dup {
			return fmt.Errorf("keyword: hash seed %d repeats (seeds must be distinct)", i)
		}
		seen[s] = struct{}{}
	}
	if rs := m.RecordSize(); rs > MaxRecordSize {
		return fmt.Errorf("keyword: bucket record size %d exceeds the cap of %d", rs, MaxRecordSize)
	}
	return nil
}

// Hashes returns k, the candidate buckets probed per key.
func (m Manifest) Hashes() int { return len(m.HashSeeds) }

// TotalBuckets returns the serialised record count: hash buckets plus
// the stash tail.
func (m Manifest) TotalBuckets() uint64 { return m.NumBuckets + m.StashBuckets }

// SlotSize returns one key/value slot's serialised size.
func (m Manifest) SlotSize() int { return slotOverhead + m.KeySize + m.ValueSize }

// RecordSize returns one bucket's serialised size — the record size of
// the PIR database the table serialises into: the slots plus zero
// padding up to 8-byte alignment (the engines' dpXOR scans operate on
// 64-bit words).
func (m Manifest) RecordSize() int {
	raw := m.BucketCapacity * m.SlotSize()
	return (raw + 7) &^ 7
}

// ProbesPerKey returns the constant number of buckets a client
// retrieves per key lookup: the k candidates plus the whole stash.
// This count depends only on the manifest — never on the key or on
// whether it is present — which is the keyword layer's privacy
// argument.
func (m Manifest) ProbesPerKey() int { return m.Hashes() + int(m.StashBuckets) }

// bucketHash maps (seed, key) to a bucket index in [0, NumBuckets):
// the first 8 bytes of SHA-256(le64(seed) ‖ key). Deterministic across
// builds and platforms, and keyed only by public manifest data — the
// client computes the same candidates without the table.
func (m Manifest) bucketHash(seed uint64, key []byte) uint64 {
	h := sha256.New()
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	h.Write(s[:])
	h.Write(key)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.LittleEndian.Uint64(sum[:8]) % m.NumBuckets
}

// Candidates returns the key's k candidate bucket indices in probe
// order. Distinct seeds can still collide onto one bucket for a given
// key; callers treat the list positionally, not as a set, so the probe
// count stays constant.
func (m Manifest) Candidates(key []byte) []uint64 {
	out := make([]uint64, len(m.HashSeeds))
	for i, seed := range m.HashSeeds {
		out[i] = m.bucketHash(seed, key)
	}
	return out
}

// StashIndices returns the reserved tail bucket indices, in order.
func (m Manifest) StashIndices() []uint64 {
	out := make([]uint64, m.StashBuckets)
	for i := range out {
		out[i] = m.NumBuckets + uint64(i)
	}
	return out
}

// ProbeIndices returns the full constant-shape probe list for one key:
// the k candidates followed by the stash tail. len == ProbesPerKey()
// for every key.
func (m Manifest) ProbeIndices(key []byte) []uint64 {
	return append(m.Candidates(key), m.StashIndices()...)
}

// CheckKey validates a key against the manifest's field size.
func (m Manifest) CheckKey(key []byte) error {
	if len(key) == 0 {
		return errors.New("keyword: empty key")
	}
	if len(key) > m.KeySize {
		return fmt.Errorf("%w: %d bytes, key size is %d", ErrKeyTooLong, len(key), m.KeySize)
	}
	return nil
}

// CheckValue validates a value against the manifest's field size.
func (m Manifest) CheckValue(value []byte) error {
	if len(value) > m.ValueSize {
		return fmt.Errorf("%w: %d bytes, value size is %d", ErrValueTooLong, len(value), m.ValueSize)
	}
	return nil
}

// Parse decodes and validates a JSON manifest.
func Parse(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("keyword: parse manifest: %w", err)
	}
	return m, m.Validate()
}

// Load reads and validates a JSON manifest file (the -kv flags).
func Load(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("keyword: load manifest: %w", err)
	}
	return Parse(data)
}

// JSON encodes the manifest for config files; Parse round-trips it.
func (m Manifest) JSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}
