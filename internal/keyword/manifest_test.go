package keyword

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validManifest() Manifest {
	return Manifest{
		NumBuckets:     64,
		StashBuckets:   2,
		BucketCapacity: 2,
		KeySize:        16,
		ValueSize:      32,
		HashSeeds:      []uint64{11, 22, 33},
	}
}

func TestManifestValidate(t *testing.T) {
	if err := validManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"zero buckets", func(m *Manifest) { m.NumBuckets = 0 }, "bucket count"},
		{"zero capacity", func(m *Manifest) { m.BucketCapacity = 0 }, "capacity"},
		{"huge capacity", func(m *Manifest) { m.BucketCapacity = MaxBucketCapacity + 1 }, "capacity"},
		{"zero key size", func(m *Manifest) { m.KeySize = 0 }, "key size"},
		{"huge key size", func(m *Manifest) { m.KeySize = MaxKeySize + 1 }, "key size"},
		{"zero value size", func(m *Manifest) { m.ValueSize = 0 }, "value size"},
		{"huge value size", func(m *Manifest) { m.ValueSize = MaxValueSize + 1 }, "value size"},
		{"one seed", func(m *Manifest) { m.HashSeeds = m.HashSeeds[:1] }, "hash seeds"},
		{"nine seeds", func(m *Manifest) { m.HashSeeds = make([]uint64, 9) }, "hash seeds"},
		{"duplicate seeds", func(m *Manifest) { m.HashSeeds = []uint64{5, 5} }, "repeats"},
		{"record too big", func(m *Manifest) {
			m.BucketCapacity = MaxBucketCapacity
			m.KeySize = MaxKeySize
			m.ValueSize = MaxValueSize
		}, "record size"},
		{"bucket overflow", func(m *Manifest) {
			m.NumBuckets = MaxBuckets
			m.StashBuckets = 1
		}, "cap"},
		{"huge stash", func(m *Manifest) { m.StashBuckets = MaxStashBuckets + 1 }, "stash"},
	}
	for _, tc := range cases {
		m := validManifest()
		tc.mutate(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := validManifest()
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumBuckets != m.NumBuckets || back.StashBuckets != m.StashBuckets ||
		back.BucketCapacity != m.BucketCapacity || back.KeySize != m.KeySize ||
		back.ValueSize != m.ValueSize || len(back.HashSeeds) != len(m.HashSeeds) {
		t.Fatalf("round trip changed the manifest: %+v != %+v", back, m)
	}
	for i := range m.HashSeeds {
		if back.HashSeeds[i] != m.HashSeeds[i] {
			t.Fatalf("seed %d changed in round trip", i)
		}
	}

	path := filepath.Join(t.TempDir(), "kv.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumBuckets != m.NumBuckets {
		t.Fatal("Load disagrees with Parse")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing manifest file accepted")
	}
}

func TestManifestParseRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		"",                      // empty
		"{",                     // truncated
		"[]",                    // wrong shape
		`{"num_buckets": 0}`,    // fails validation
		`{"num_buckets": "ha"}`, // wrong type
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if _, err := validManifest().JSON(); err != nil {
		t.Fatal(err)
	}
	bad := validManifest()
	bad.NumBuckets = 0
	if _, err := bad.JSON(); err == nil {
		t.Fatal("JSON() encoded an invalid manifest")
	}
}

func TestProbeShapeIsConstant(t *testing.T) {
	m := validManifest()
	keys := [][]byte{[]byte("a"), []byte("another key!"), bytes.Repeat([]byte{0xFF}, 16)}
	want := m.ProbesPerKey()
	if want != m.Hashes()+int(m.StashBuckets) {
		t.Fatalf("ProbesPerKey %d != k+stash %d", want, m.Hashes()+int(m.StashBuckets))
	}
	for _, key := range keys {
		probes := m.ProbeIndices(key)
		if len(probes) != want {
			t.Fatalf("key %q probes %d buckets, want %d", key, len(probes), want)
		}
		for _, b := range probes {
			if b >= m.TotalBuckets() {
				t.Fatalf("key %q probe %d outside table of %d buckets", key, b, m.TotalBuckets())
			}
		}
		// Deterministic: same key, same probes.
		again := m.ProbeIndices(key)
		for i := range probes {
			if probes[i] != again[i] {
				t.Fatalf("key %q probe plan not deterministic", key)
			}
		}
		// Stash tail is identical across keys.
		for i, s := range m.StashIndices() {
			if probes[m.Hashes()+i] != s {
				t.Fatalf("key %q stash probe %d is %d, want %d", key, i, probes[m.Hashes()+i], s)
			}
		}
	}
}

func TestCheckKeyAndValue(t *testing.T) {
	m := validManifest()
	if err := m.CheckKey(nil); err == nil {
		t.Error("empty key accepted")
	}
	if err := m.CheckKey(bytes.Repeat([]byte{1}, m.KeySize+1)); err == nil {
		t.Error("over-long key accepted")
	}
	if err := m.CheckKey(bytes.Repeat([]byte{1}, m.KeySize)); err != nil {
		t.Errorf("exact-size key rejected: %v", err)
	}
	if err := m.CheckValue(bytes.Repeat([]byte{1}, m.ValueSize+1)); err == nil {
		t.Error("over-long value accepted")
	}
	if err := m.CheckValue(nil); err != nil {
		t.Errorf("empty value rejected: %v", err)
	}
}
