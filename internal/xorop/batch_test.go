package xorop

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/impir/impir/internal/bitvec"
)

// batchSelectors builds B random selectors over n records.
func batchSelectors(n, batch int, seed int64) []*bitvec.Vector {
	sels := make([]*bitvec.Vector, batch)
	for q := range sels {
		sels[q] = randomSelector(n, seed+int64(q))
	}
	return sels
}

func selectorWords(sels []*bitvec.Vector) [][]uint64 {
	words := make([][]uint64, len(sels))
	for q, s := range sels {
		words[q] = s.Words()
	}
	return words
}

// TestAccumulateBatchMatchesIndependent is the core fused-kernel
// contract: one fused pass must be bit-identical to B independent
// Accumulate calls, for every record-size dispatch path and for both the
// serial and parallel partitionings.
func TestAccumulateBatchMatchesIndependent(t *testing.T) {
	tests := []struct {
		numRecords int
		recordSize int
		batch      int
	}{
		{256, 32, 1},
		{256, 32, 4},
		{97, 32, 8},
		{130, 64, 5},
		{1000, 8, 3},
		{77, 24, 7},
		{50, 13, 4},
		{1, 32, 6},
		{500, 1, 2},
		{64, 32, 16},
		{4096, 32, 32},
	}
	for _, tt := range tests {
		name := fmt.Sprintf("n=%d/rs=%d/B=%d", tt.numRecords, tt.recordSize, tt.batch)
		t.Run(name, func(t *testing.T) {
			db := buildDB(tt.numRecords, tt.recordSize, 42)
			sels := batchSelectors(tt.numRecords, tt.batch, 100)
			words := selectorWords(sels)

			want := make([][]byte, tt.batch)
			for q := range want {
				want[q] = make([]byte, tt.recordSize)
				if err := Accumulate(want[q], db, tt.recordSize, words[q]); err != nil {
					t.Fatalf("Accumulate[%d]: %v", q, err)
				}
			}

			for _, workers := range []int{1, 3, 8} {
				accs := make([][]byte, tt.batch)
				for q := range accs {
					accs[q] = make([]byte, tt.recordSize)
				}
				if err := AccumulateBatchWorkers(accs, db, tt.recordSize, words, workers); err != nil {
					t.Fatalf("AccumulateBatchWorkers(workers=%d): %v", workers, err)
				}
				for q := range accs {
					if !bytes.Equal(accs[q], want[q]) {
						t.Fatalf("workers=%d selector %d mismatch:\n got %x\nwant %x",
							workers, q, accs[q], want[q])
					}
				}
			}
		})
	}
}

func TestAccumulateBatchXorsIntoExisting(t *testing.T) {
	// Like Accumulate, the fused pass must XOR into the accumulators.
	db := buildDB(64, 32, 7)
	sels := batchSelectors(64, 3, 8)
	words := selectorWords(sels)

	want := make([][]byte, 3)
	accs := make([][]byte, 3)
	for q := range accs {
		want[q] = make([]byte, 32)
		if err := Accumulate(want[q], db, 32, words[q]); err != nil {
			t.Fatal(err)
		}
		accs[q] = make([]byte, 32)
		for i := range accs[q] {
			accs[q][i] = byte(0x11 * (q + 1))
			want[q][i] ^= byte(0x11 * (q + 1))
		}
	}
	if err := AccumulateBatch(accs, db, 32, words); err != nil {
		t.Fatal(err)
	}
	for q := range accs {
		if !bytes.Equal(accs[q], want[q]) {
			t.Fatalf("selector %d: fused pass overwrote instead of XORing", q)
		}
	}
}

func TestAccumulateBatchEmpty(t *testing.T) {
	db := buildDB(64, 32, 1)
	if err := AccumulateBatch(nil, db, 32, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestAccumulateBatchValidation(t *testing.T) {
	db := buildDB(64, 32, 3)
	good := bitvec.New(64).Words()
	tests := []struct {
		name string
		call func() error
	}{
		{"acc/sel count mismatch", func() error {
			return AccumulateBatch([][]byte{make([]byte, 32)}, db, 32, nil)
		}},
		{"bad accumulator size", func() error {
			return AccumulateBatch([][]byte{make([]byte, 16)}, db, 32, [][]uint64{good})
		}},
		{"tail bits set in one selector", func() error {
			bad := bitvec.New(128)
			bad.Set(100)
			return AccumulateBatch(
				[][]byte{make([]byte, 32), make([]byte, 32)},
				db, 32, [][]uint64{good, bad.Words()})
		}},
		{"selector too short", func() error {
			return AccumulateBatch([][]byte{make([]byte, 32)}, db, 32, [][]uint64{nil})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.call(); err == nil {
				t.Error("invalid batch accepted")
			}
		})
	}
}

// TestAccumulateWideZeroAllocs pins the satellite fix: the wide kernel's
// scratch accumulator must live on the stack for record sizes up to
// wideStackWords*8 bytes, so the per-query hot loop performs zero heap
// allocations.
func TestAccumulateWideZeroAllocs(t *testing.T) {
	for _, recordSize := range []int{8, 24, 64, 512} {
		db := buildDB(256, recordSize, 5)
		sel := randomSelector(256, 6).Words()
		acc := make([]byte, recordSize)
		allocs := testing.AllocsPerRun(20, func() {
			if err := Accumulate(acc, db, recordSize, sel); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("recordSize=%d: Accumulate allocated %.1f times per run, want 0",
				recordSize, allocs)
		}
	}
}

// FuzzAccumulateBatch differentially fuzzes the fused kernel against B
// independent Accumulate calls over random record sizes, record counts,
// batch widths, and selector contents — including the tail-bit
// rejection path.
func FuzzAccumulateBatch(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(0), uint8(4))
	f.Add(int64(7), uint16(1), uint8(3), uint8(1))
	f.Add(int64(99), uint16(400), uint8(5), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, sizeSel, batchRaw uint8) {
		n := int(nRaw)%500 + 1
		sizes := []int{1, 8, 13, 24, 32, 40, 64, 96}
		recordSize := sizes[int(sizeSel)%len(sizes)]
		batch := int(batchRaw)%9 + 1

		db := buildDB(n, recordSize, seed)
		words := selectorWords(batchSelectors(n, batch, seed+17))

		want := make([][]byte, batch)
		for q := range want {
			want[q] = make([]byte, recordSize)
			if err := Accumulate(want[q], db, recordSize, words[q]); err != nil {
				t.Fatalf("Accumulate[%d]: %v", q, err)
			}
		}
		for _, workers := range []int{1, 3} {
			accs := make([][]byte, batch)
			for q := range accs {
				accs[q] = make([]byte, recordSize)
			}
			if err := AccumulateBatchWorkers(accs, db, recordSize, words, workers); err != nil {
				t.Fatalf("AccumulateBatchWorkers(workers=%d): %v", workers, err)
			}
			for q := range accs {
				if !bytes.Equal(accs[q], want[q]) {
					t.Fatalf("workers=%d selector %d: fused != independent", workers, q)
				}
			}
		}

		// A selector with a bit set beyond the record count must be
		// rejected, never silently read out of bounds.
		if n%64 != 0 {
			bad := bitvec.New((n/64 + 1) * 64)
			bad.Set(n)
			accs := [][]byte{make([]byte, recordSize)}
			if err := AccumulateBatch(accs, db, recordSize, [][]uint64{bad.Words()}); err == nil {
				t.Fatal("selector with tail bit beyond record count accepted")
			}
		}
	})
}

// benchmarkAccumulateBatch measures the fused pass at a given batch
// width; with perQuery=true it runs B independent scans instead, so the
// two benchmarks bracket the fusion win.
func benchmarkAccumulateBatch(b *testing.B, numRecords, recordSize, batch, workers int, perQuery bool) {
	db := buildDB(numRecords, recordSize, 1)
	words := selectorWords(batchSelectors(numRecords, batch, 2))
	accs := make([][]byte, batch)
	for q := range accs {
		accs[q] = make([]byte, recordSize)
	}
	b.SetBytes(int64(numRecords * recordSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if perQuery {
			for q := 0; q < batch && err == nil; q++ {
				err = Accumulate(accs[q], db, recordSize, words[q])
			}
		} else {
			err = AccumulateBatchWorkers(accs, db, recordSize, words, workers)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulateBatch32B8(b *testing.B)  { benchmarkAccumulateBatch(b, 1<<16, 32, 8, 1, false) }
func BenchmarkAccumulateBatch32B8PerQuery(b *testing.B) {
	benchmarkAccumulateBatch(b, 1<<16, 32, 8, 1, true)
}
func BenchmarkAccumulateBatch32B32(b *testing.B) { benchmarkAccumulateBatch(b, 1<<16, 32, 32, 1, false) }
func BenchmarkAccumulateBatch32B8Par(b *testing.B) {
	benchmarkAccumulateBatch(b, 1<<16, 32, 8, 4, false)
}

// BenchmarkAccumulateWideAllocs exists to surface allocs/op (must be 0
// after the stack-scratch fix) in the standard bench report.
func BenchmarkAccumulateWideAllocs(b *testing.B) {
	db := buildDB(1<<14, 64, 1)
	sel := randomSelector(1<<14, 2).Words()
	acc := make([]byte, 64)
	b.SetBytes(int64(1 << 14 * 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Accumulate(acc, db, 64, sel); err != nil {
			b.Fatal(err)
		}
	}
}
