package xorop

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
)

// AccumulateBatch is the fused multi-selector dpXOR kernel: it streams the
// database ONCE and accumulates all B selector results along the way,
// turning B independent scans (B× memory traffic) into one scan with B×
// XOR work. Since the scan is memory-bound on every platform the paper
// measures, the fused pass costs barely more than a single query until
// the batch is wide enough to become ALU-bound.
//
// accs[q] receives the XOR of every record whose bit is set in sels[q];
// the same validation rules as Accumulate apply to each selector. The
// pass is parallelised across cores by row-range partitioning in
// 64-record groups: each worker accumulates into private buffers over a
// contiguous range and the partials are folded with XORBytes, so results
// are bit-identical to B independent Accumulate calls regardless of the
// worker count.
func AccumulateBatch(accs [][]byte, db []byte, recordSize int, sels [][]uint64) error {
	return AccumulateBatchWorkers(accs, db, recordSize, sels, runtime.GOMAXPROCS(0))
}

// AccumulateBatchWorkers is AccumulateBatch with an explicit scan-worker
// count; workers ≤ 1 runs the fused pass serially (the form the engines'
// per-block executors use inside their own parallel grids).
func AccumulateBatchWorkers(accs [][]byte, db []byte, recordSize int, sels [][]uint64, workers int) error {
	if len(accs) != len(sels) {
		return fmt.Errorf("xorop: batch has %d accumulators for %d selectors", len(accs), len(sels))
	}
	if len(accs) == 0 {
		return nil
	}
	for q := range accs {
		if err := validate(accs[q], db, recordSize, sels[q]); err != nil {
			return fmt.Errorf("xorop: batch selector %d: %w", q, err)
		}
	}
	numRecords := len(db) / recordSize
	groups := (numRecords + 63) / 64
	if workers < 1 {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		accumulateBatchRange(accs, db, recordSize, sels, 0, groups)
		return nil
	}

	// Row-range partitioning: contiguous 64-record group ranges, one per
	// worker, each accumulating into private buffers folded at the end.
	per := (groups + workers - 1) / workers
	partials := make([][][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > groups {
			hi = groups
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			priv := make([][]byte, len(accs))
			buf := make([]byte, len(accs)*recordSize)
			for q := range priv {
				priv[q] = buf[q*recordSize : (q+1)*recordSize]
			}
			accumulateBatchRange(priv, db, recordSize, sels, lo, hi)
			partials[w] = priv
		}(w, lo, hi)
	}
	wg.Wait()
	for _, priv := range partials {
		if priv == nil {
			continue
		}
		for q := range accs {
			if err := XORBytes(accs[q], priv[q]); err != nil {
				return err
			}
		}
	}
	return nil
}

// accumulateBatchRange runs the fused serial kernel over the 64-record
// groups [gLo, gHi), dispatching to a record-size-specialised path.
func accumulateBatchRange(accs [][]byte, db []byte, recordSize int, sels [][]uint64, gLo, gHi int) {
	switch {
	case recordSize == 32:
		batchRange32(accs, db, sels, gLo, gHi)
	case recordSize%8 == 0:
		batchRangeWide(accs, db, recordSize, sels, gLo, gHi)
	default:
		batchRangeScalar(accs, db, recordSize, sels, gLo, gHi)
	}
}

// batchRange32 is the fused analogue of accumulate32 for the paper's
// 32-byte records. Per 64-record group the B selector words are OR-ed so
// an all-zero group costs one compare; then each stream scans its own
// word with register-resident lanes — the same inner loop as the solo
// kernel. The group's records span 2 KB, so streams after the first hit
// L1: the database crosses DRAM once per pass while per-stream XOR work
// runs at cache speed.
func batchRange32(accs [][]byte, db []byte, sels [][]uint64, gLo, gHi int) {
	le := binary.LittleEndian
	b := len(sels)
	lanes := make([]uint64, 4*b)
	for w := gLo; w < gHi; w++ {
		var union uint64
		for q := 0; q < b; q++ {
			union |= sels[q][w]
		}
		if union == 0 {
			continue
		}
		base := w << 6
		for q := 0; q < b; q++ {
			word := sels[q][w]
			if word == 0 {
				continue
			}
			l := lanes[q*4 : q*4+4 : q*4+4]
			l0, l1, l2, l3 := l[0], l[1], l[2], l[3]
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &= word - 1
				i := base + tz
				rec := db[i<<5 : i<<5+32 : i<<5+32]
				l0 ^= le.Uint64(rec[0:8])
				l1 ^= le.Uint64(rec[8:16])
				l2 ^= le.Uint64(rec[16:24])
				l3 ^= le.Uint64(rec[24:32])
			}
			l[0], l[1], l[2], l[3] = l0, l1, l2, l3
		}
	}
	for q := 0; q < b; q++ {
		acc := accs[q]
		l := lanes[q*4:]
		le.PutUint64(acc[0:8], le.Uint64(acc[0:8])^l[0])
		le.PutUint64(acc[8:16], le.Uint64(acc[8:16])^l[1])
		le.PutUint64(acc[16:24], le.Uint64(acc[16:24])^l[2])
		le.PutUint64(acc[24:32], le.Uint64(acc[24:32])^l[3])
	}
}

// batchRangeWide handles any 8-multiple record size with per-selector
// word lanes, the fused analogue of accumulateWide.
func batchRangeWide(accs [][]byte, db []byte, recordSize int, sels [][]uint64, gLo, gHi int) {
	le := binary.LittleEndian
	b := len(sels)
	words := recordSize / 8
	lanes := make([]uint64, b*words)
	for w := gLo; w < gHi; w++ {
		var union uint64
		for q := 0; q < b; q++ {
			union |= sels[q][w]
		}
		if union == 0 {
			continue
		}
		base := w << 6
		for q := 0; q < b; q++ {
			word := sels[q][w]
			if word == 0 {
				continue
			}
			lane := lanes[q*words : (q+1)*words : (q+1)*words]
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &= word - 1
				i := base + tz
				rec := db[i*recordSize:]
				j := 0
				for ; j+4 <= words; j += 4 {
					lane[j] ^= le.Uint64(rec[j*8:])
					lane[j+1] ^= le.Uint64(rec[j*8+8:])
					lane[j+2] ^= le.Uint64(rec[j*8+16:])
					lane[j+3] ^= le.Uint64(rec[j*8+24:])
				}
				for ; j < words; j++ {
					lane[j] ^= le.Uint64(rec[j*8:])
				}
			}
		}
	}
	for q := 0; q < b; q++ {
		acc := accs[q]
		lane := lanes[q*words:]
		for j := 0; j < words; j++ {
			le.PutUint64(acc[j*8:], le.Uint64(acc[j*8:])^lane[j])
		}
	}
}

// batchRangeScalar is the fused fallback for odd record sizes.
func batchRangeScalar(accs [][]byte, db []byte, recordSize int, sels [][]uint64, gLo, gHi int) {
	b := len(sels)
	numRecords := len(db) / recordSize
	for w := gLo; w < gHi; w++ {
		var union uint64
		for q := 0; q < b; q++ {
			union |= sels[q][w]
		}
		if union == 0 {
			continue
		}
		base := w << 6
		for q := 0; q < b; q++ {
			word := sels[q][w]
			if word == 0 {
				continue
			}
			acc := accs[q]
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &= word - 1
				i := base + tz
				if i >= numRecords {
					continue
				}
				rec := db[i*recordSize : (i+1)*recordSize]
				for j := range acc {
					acc[j] ^= rec[j]
				}
			}
		}
	}
}

// CountOpsBatch reports the XOR byte-operations and bytes touched by a
// fused AccumulateBatch pass: the database and selector streams are read
// once, while XOR work scales with the total set bits across selectors.
// Compare with B× CountOps to see the traffic the fusion saves.
func CountOpsBatch(recordSize, totalSetBits, numRecords, batch int) (ops, bytesTouched int64) {
	ops = int64(totalSetBits) * int64(recordSize)
	// One streaming read of every selected record's bytes (the union is at
	// most every record) plus B selector streams.
	bytesTouched = int64(numRecords)*int64(recordSize) + int64(batch)*int64(numRecords)/8
	return ops, bytesTouched
}
