// Package xorop implements the wide XOR and selective-XOR kernels at the
// heart of multi-server PIR's dpXOR stage.
//
// The server-side linear operation is an inner product over F₂: given a
// database of N fixed-size records and an N-bit selector vector (one
// party's DPF share), accumulate the XOR of every record whose selector
// bit is set. The paper's CPU baseline accelerates this with AVX-256; in
// pure Go the equivalent is processing records four 64-bit words (256
// bits) per loop iteration and consuming selectors a machine word at a
// time, skipping 64 records per zero word and bit-scanning set words.
package xorop

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Accumulate XORs into acc every record of db whose selector bit is set.
//
// db holds len(db)/recordSize records of recordSize bytes each; acc must
// be exactly recordSize bytes; sel is a packed little-endian bit vector
// (bit i = word i/64, position i%64) with at least one bit per record and
// zeroed tail bits beyond the record count.
//
// Dispatches to a record-size-specialised kernel when one exists.
func Accumulate(acc, db []byte, recordSize int, sel []uint64) error {
	if err := validate(acc, db, recordSize, sel); err != nil {
		return err
	}
	switch {
	case recordSize == 32:
		accumulate32(acc, db, sel)
	case recordSize%8 == 0:
		accumulateWide(acc, db, recordSize, sel)
	default:
		accumulateScalar(acc, db, recordSize, sel)
	}
	return nil
}

// AccumulateScalar is the straightforward reference implementation:
// byte-at-a-time XOR guarded by a per-record branch (Algorithm 1, lines
// 32–36). Exported so benchmarks can compare it against the wide kernels.
func AccumulateScalar(acc, db []byte, recordSize int, sel []uint64) error {
	if err := validate(acc, db, recordSize, sel); err != nil {
		return err
	}
	accumulateScalar(acc, db, recordSize, sel)
	return nil
}

func validate(acc, db []byte, recordSize int, sel []uint64) error {
	if recordSize <= 0 {
		return fmt.Errorf("xorop: record size %d must be positive", recordSize)
	}
	if len(acc) != recordSize {
		return fmt.Errorf("xorop: accumulator length %d != record size %d", len(acc), recordSize)
	}
	if len(db)%recordSize != 0 {
		return fmt.Errorf("xorop: database length %d not a multiple of record size %d", len(db), recordSize)
	}
	numRecords := len(db) / recordSize
	if len(sel)*64 < numRecords {
		return fmt.Errorf("xorop: selector holds %d bits for %d records", len(sel)*64, numRecords)
	}
	// Tail bits beyond numRecords must be zero or we would read past db.
	if tail := numRecords % 64; tail != 0 {
		if sel[numRecords/64]>>uint(tail) != 0 {
			return fmt.Errorf("xorop: selector has set bits beyond record %d", numRecords)
		}
	}
	for w := (numRecords + 63) / 64; w < len(sel); w++ {
		if sel[w] != 0 {
			return fmt.Errorf("xorop: selector word %d set beyond record count", w)
		}
	}
	return nil
}

func accumulateScalar(acc, db []byte, recordSize int, sel []uint64) {
	numRecords := len(db) / recordSize
	for i := 0; i < numRecords; i++ {
		if sel[i>>6]>>(uint(i)&63)&1 == 0 {
			continue
		}
		rec := db[i*recordSize : (i+1)*recordSize]
		for j := range acc {
			acc[j] ^= rec[j]
		}
	}
}

// accumulate32 is the hot kernel for the paper's 32-byte (SHA-256 hash)
// records: four 64-bit accumulators cover a full record, and set selector
// bits are located with a trailing-zeros scan so zero words skip 64
// records with a single compare.
func accumulate32(acc, db []byte, sel []uint64) {
	le := binary.LittleEndian
	var a0, a1, a2, a3 uint64
	for w, word := range sel {
		if word == 0 {
			continue
		}
		base := w << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			rec := db[i<<5 : i<<5+32 : i<<5+32]
			a0 ^= le.Uint64(rec[0:8])
			a1 ^= le.Uint64(rec[8:16])
			a2 ^= le.Uint64(rec[16:24])
			a3 ^= le.Uint64(rec[24:32])
		}
	}
	le.PutUint64(acc[0:8], le.Uint64(acc[0:8])^a0)
	le.PutUint64(acc[8:16], le.Uint64(acc[8:16])^a1)
	le.PutUint64(acc[16:24], le.Uint64(acc[16:24])^a2)
	le.PutUint64(acc[24:32], le.Uint64(acc[24:32])^a3)
}

// wideStackWords caps the record width (in 64-bit words) that
// accumulateWide can scratch on the stack: 64 words = 512-byte records,
// covering every record size the paper and bench configs use.
const wideStackWords = 64

// accumulateWide handles any record size that is a multiple of 8 bytes,
// unrolling the per-record XOR four words (256 bits) per iteration. For
// records up to wideStackWords×8 bytes the scratch accumulator lives on
// the stack, so the hot loop performs zero heap allocations.
func accumulateWide(acc, db []byte, recordSize int, sel []uint64) {
	le := binary.LittleEndian
	words := recordSize / 8
	var stack [wideStackWords]uint64
	var tmp []uint64
	if words <= wideStackWords {
		tmp = stack[:words]
	} else {
		tmp = make([]uint64, words)
	}
	for w, word := range sel {
		if word == 0 {
			continue
		}
		base := w << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			rec := db[i*recordSize:]
			j := 0
			for ; j+4 <= words; j += 4 {
				tmp[j] ^= le.Uint64(rec[j*8:])
				tmp[j+1] ^= le.Uint64(rec[j*8+8:])
				tmp[j+2] ^= le.Uint64(rec[j*8+16:])
				tmp[j+3] ^= le.Uint64(rec[j*8+24:])
			}
			for ; j < words; j++ {
				tmp[j] ^= le.Uint64(rec[j*8:])
			}
		}
	}
	for j := 0; j < words; j++ {
		le.PutUint64(acc[j*8:], le.Uint64(acc[j*8:])^tmp[j])
	}
}

// XORBytes sets dst = dst ⊕ src. The slices must be the same length.
// Used to fold partial results (tasklet partials, DPU subresults, the
// final two-server reconstruction).
func XORBytes(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("xorop: xor length mismatch %d != %d", len(dst), len(src))
	}
	n := len(dst)
	le := binary.LittleEndian
	i := 0
	for ; i+32 <= n; i += 32 {
		le.PutUint64(dst[i:], le.Uint64(dst[i:])^le.Uint64(src[i:]))
		le.PutUint64(dst[i+8:], le.Uint64(dst[i+8:])^le.Uint64(src[i+8:]))
		le.PutUint64(dst[i+16:], le.Uint64(dst[i+16:])^le.Uint64(src[i+16:]))
		le.PutUint64(dst[i+24:], le.Uint64(dst[i+24:])^le.Uint64(src[i+24:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
	return nil
}

// CountOps reports the number of XOR byte-operations and bytes touched by
// an Accumulate call with the given parameters — the inputs to the
// roofline model's operational-intensity estimate (Figure 3b).
func CountOps(recordSize, setBits, numRecords int) (ops, bytesTouched int64) {
	// Every record's selector bit is read (numRecords/8 bytes of selector
	// stream) and every selected record is loaded and XORed.
	ops = int64(setBits) * int64(recordSize)
	bytesTouched = int64(setBits)*int64(recordSize) + int64(numRecords)/8
	return ops, bytesTouched
}
