package xorop

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/impir/impir/internal/bitvec"
)

// buildDB creates n records of the given size with deterministic contents.
func buildDB(n, recordSize int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	db := make([]byte, n*recordSize)
	rng.Read(db)
	return db
}

// naiveAccumulate is an independent oracle implementation.
func naiveAccumulate(db []byte, recordSize int, sel *bitvec.Vector) []byte {
	acc := make([]byte, recordSize)
	n := len(db) / recordSize
	for i := 0; i < n; i++ {
		if sel.Bit(i) {
			for j := 0; j < recordSize; j++ {
				acc[j] ^= db[i*recordSize+j]
			}
		}
	}
	return acc
}

func randomSelector(n int, seed int64) *bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.SetTo(i, rng.Intn(2) == 1)
	}
	return v
}

func TestAccumulateMatchesNaive(t *testing.T) {
	tests := []struct {
		name       string
		numRecords int
		recordSize int
	}{
		{"32B records word-aligned count", 256, 32},
		{"32B records ragged count", 97, 32},
		{"64B records", 130, 64},
		{"8B records", 1000, 8},
		{"24B records (wide, not 32)", 77, 24},
		{"odd record size (scalar)", 50, 13},
		{"single record", 1, 32},
		{"single byte records", 500, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			db := buildDB(tt.numRecords, tt.recordSize, 42)
			sel := randomSelector(tt.numRecords, 43)
			want := naiveAccumulate(db, tt.recordSize, sel)

			acc := make([]byte, tt.recordSize)
			if err := Accumulate(acc, db, tt.recordSize, sel.Words()); err != nil {
				t.Fatalf("Accumulate: %v", err)
			}
			if !bytes.Equal(acc, want) {
				t.Fatalf("Accumulate mismatch:\n got %x\nwant %x", acc, want)
			}

			acc2 := make([]byte, tt.recordSize)
			if err := AccumulateScalar(acc2, db, tt.recordSize, sel.Words()); err != nil {
				t.Fatalf("AccumulateScalar: %v", err)
			}
			if !bytes.Equal(acc2, want) {
				t.Fatalf("AccumulateScalar mismatch")
			}
		})
	}
}

func TestAccumulateXorsIntoExisting(t *testing.T) {
	// Accumulate must XOR into acc, not overwrite it — the PIM kernel
	// relies on this to chain partial results.
	db := buildDB(64, 32, 7)
	sel := randomSelector(64, 8)
	want := naiveAccumulate(db, 32, sel)

	acc := make([]byte, 32)
	for i := range acc {
		acc[i] = 0xAA
		want[i] ^= 0xAA
	}
	if err := Accumulate(acc, db, 32, sel.Words()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(acc, want) {
		t.Fatal("Accumulate overwrote instead of XORing into the accumulator")
	}
}

func TestAccumulateEmptySelector(t *testing.T) {
	db := buildDB(128, 32, 1)
	sel := bitvec.New(128)
	acc := make([]byte, 32)
	if err := Accumulate(acc, db, 32, sel.Words()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(acc, make([]byte, 32)) {
		t.Fatal("empty selector produced nonzero accumulator")
	}
}

func TestAccumulateAllSelected(t *testing.T) {
	const n, size = 200, 32
	db := buildDB(n, size, 2)
	sel := bitvec.New(n)
	for i := 0; i < n; i++ {
		sel.Set(i)
	}
	want := naiveAccumulate(db, size, sel)
	acc := make([]byte, size)
	if err := Accumulate(acc, db, size, sel.Words()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(acc, want) {
		t.Fatal("all-selected accumulate mismatch")
	}
}

func TestAccumulateValidation(t *testing.T) {
	db := buildDB(64, 32, 3)
	sel := bitvec.New(64)
	tests := []struct {
		name string
		call func() error
	}{
		{"zero record size", func() error {
			return Accumulate(make([]byte, 0), db, 0, sel.Words())
		}},
		{"negative record size", func() error {
			return Accumulate(make([]byte, 4), db, -4, sel.Words())
		}},
		{"acc size mismatch", func() error {
			return Accumulate(make([]byte, 16), db, 32, sel.Words())
		}},
		{"db not multiple of record", func() error {
			return Accumulate(make([]byte, 32), db[:100], 32, sel.Words())
		}},
		{"selector too short", func() error {
			return Accumulate(make([]byte, 32), db, 32, nil)
		}},
		{"selector tail bits set", func() error {
			s := bitvec.New(128)
			s.Set(100) // beyond the 64 records in db
			return Accumulate(make([]byte, 32), db, 32, s.Words())
		}},
		{"selector extra word set", func() error {
			words := make([]uint64, 3)
			words[2] = 1
			return Accumulate(make([]byte, 32), db, 32, words)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.call(); err == nil {
				t.Error("invalid input accepted")
			}
		})
	}
}

func TestXORBytes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 31, 32, 33, 100} {
		a := buildDB(1, maxInt(n, 1), 10)[:n]
		b := buildDB(1, maxInt(n, 1), 11)[:n]
		want := make([]byte, n)
		for i := range want {
			want[i] = a[i] ^ b[i]
		}
		dst := append([]byte(nil), a...)
		if err := XORBytes(dst, b); err != nil {
			t.Fatalf("XORBytes(n=%d): %v", n, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("XORBytes(n=%d) mismatch", n)
		}
	}
}

func TestXORBytesLengthMismatch(t *testing.T) {
	if err := XORBytes(make([]byte, 3), make([]byte, 4)); err == nil {
		t.Fatal("XORBytes accepted mismatched lengths")
	}
}

func TestCountOps(t *testing.T) {
	ops, touched := CountOps(32, 500, 1000)
	if ops != 500*32 {
		t.Errorf("ops = %d, want %d", ops, 500*32)
	}
	if touched != 500*32+1000/8 {
		t.Errorf("bytesTouched = %d, want %d", touched, 500*32+1000/8)
	}
}

// Property: the wide kernels agree with the scalar reference on random
// inputs across record sizes.
func TestQuickKernelsAgree(t *testing.T) {
	f := func(seed int64, nRaw uint16, sizeSel uint8) bool {
		n := int(nRaw)%300 + 1
		sizes := []int{1, 8, 13, 24, 32, 40, 64}
		recordSize := sizes[int(sizeSel)%len(sizes)]
		db := buildDB(n, recordSize, seed)
		sel := randomSelector(n, seed+1)

		wide := make([]byte, recordSize)
		if err := Accumulate(wide, db, recordSize, sel.Words()); err != nil {
			return false
		}
		scalar := make([]byte, recordSize)
		if err := AccumulateScalar(scalar, db, recordSize, sel.Words()); err != nil {
			return false
		}
		return bytes.Equal(wide, scalar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Accumulate is linear — acc(sel1 ⊕ sel2) == acc(sel1) ⊕ acc(sel2).
// This is precisely why two-server PIR reconstruction works.
func TestQuickLinearity(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%200 + 1
		const recordSize = 32
		db := buildDB(n, recordSize, seed)
		s1 := randomSelector(n, seed+1)
		s2 := randomSelector(n, seed+2)

		a1 := make([]byte, recordSize)
		a2 := make([]byte, recordSize)
		if Accumulate(a1, db, recordSize, s1.Words()) != nil {
			return false
		}
		if Accumulate(a2, db, recordSize, s2.Words()) != nil {
			return false
		}
		if XORBytes(a1, a2) != nil {
			return false
		}

		s1.Xor(s2)
		combined := make([]byte, recordSize)
		if Accumulate(combined, db, recordSize, s1.Words()) != nil {
			return false
		}
		return bytes.Equal(a1, combined)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func benchmarkAccumulate(b *testing.B, numRecords, recordSize int, scalar bool) {
	db := buildDB(numRecords, recordSize, 1)
	sel := randomSelector(numRecords, 2)
	acc := make([]byte, recordSize)
	b.SetBytes(int64(numRecords * recordSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if scalar {
			err = AccumulateScalar(acc, db, recordSize, sel.Words())
		} else {
			err = Accumulate(acc, db, recordSize, sel.Words())
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulate32Wide(b *testing.B)   { benchmarkAccumulate(b, 1<<16, 32, false) }
func BenchmarkAccumulate32Scalar(b *testing.B) { benchmarkAccumulate(b, 1<<16, 32, true) }
func BenchmarkAccumulate64Wide(b *testing.B)   { benchmarkAccumulate(b, 1<<15, 64, false) }
