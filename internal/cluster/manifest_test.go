package cluster

import (
	"strings"
	"testing"
)

func twoShardManifest() Manifest {
	return Manifest{
		RecordSize: 32,
		Shards: []Shard{
			{FirstRecord: 0, NumRecords: 64, Replicas: []string{"a:1", "a:2"}},
			{FirstRecord: 64, NumRecords: 64, Replicas: []string{"b:1", "b:2"}},
		},
	}
}

func TestManifestValidate(t *testing.T) {
	if err := twoShardManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	for name, mutate := range map[string]func(*Manifest){
		"zero record size": func(m *Manifest) { m.RecordSize = 0 },
		"no shards":        func(m *Manifest) { m.Shards = nil },
		"empty shard":      func(m *Manifest) { m.Shards[1].NumRecords = 0 },
		"gap":              func(m *Manifest) { m.Shards[1].FirstRecord = 65 },
		"overlap":          func(m *Manifest) { m.Shards[1].FirstRecord = 63 },
		"not from zero":    func(m *Manifest) { m.Shards[0].FirstRecord = 1 },
		"lone replica":     func(m *Manifest) { m.Shards[0].Replicas = []string{"a:1"} },
		"unordered shards": func(m *Manifest) { m.Shards[0], m.Shards[1] = m.Shards[1], m.Shards[0] },
	} {
		m := twoShardManifest()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := twoShardManifest()
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.RecordSize != m.RecordSize || len(back.Shards) != len(m.Shards) {
		t.Fatalf("round trip changed the manifest: %+v", back)
	}
	for i := range m.Shards {
		if back.Shards[i].FirstRecord != m.Shards[i].FirstRecord ||
			back.Shards[i].NumRecords != m.Shards[i].NumRecords ||
			strings.Join(back.Shards[i].Replicas, ",") != strings.Join(m.Shards[i].Replicas, ",") {
			t.Fatalf("shard %d changed in round trip: %+v", i, back.Shards[i])
		}
	}

	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"record_size":0,"shards":[]}`)); err == nil {
		t.Error("invalid topology accepted through Parse")
	}
}

func TestManifestLocate(t *testing.T) {
	m := twoShardManifest()
	for _, tc := range []struct {
		global uint64
		shard  int
		local  uint64
	}{
		{0, 0, 0}, {63, 0, 63}, {64, 1, 0}, {127, 1, 63},
	} {
		shard, local, err := m.Locate(tc.global)
		if err != nil {
			t.Fatalf("Locate(%d): %v", tc.global, err)
		}
		if shard != tc.shard || local != tc.local {
			t.Errorf("Locate(%d) = (%d,%d), want (%d,%d)", tc.global, shard, local, tc.shard, tc.local)
		}
	}
	if _, _, err := m.Locate(128); err == nil {
		t.Error("out-of-range index located")
	}
}

func TestRangesRagged(t *testing.T) {
	for _, tc := range []struct {
		n      uint64
		shards int
		want   []uint64
	}{
		{128, 4, []uint64{32, 32, 32, 32}},
		{10, 4, []uint64{3, 3, 2, 2}}, // N % S != 0: sizes differ by ≤ 1
		{700, 3, []uint64{234, 233, 233}},
		{5, 5, []uint64{1, 1, 1, 1, 1}},
	} {
		got, err := Ranges(tc.n, tc.shards)
		if err != nil {
			t.Fatalf("Ranges(%d,%d): %v", tc.n, tc.shards, err)
		}
		var sum uint64
		for i, g := range got {
			if g != tc.want[i] {
				t.Errorf("Ranges(%d,%d) = %v, want %v", tc.n, tc.shards, got, tc.want)
				break
			}
			sum += g
		}
		if sum != tc.n {
			t.Errorf("Ranges(%d,%d) sums to %d", tc.n, tc.shards, sum)
		}
		if last := got[len(got)-1]; last > got[0] {
			t.Errorf("Ranges(%d,%d): last shard %d larger than first %d", tc.n, tc.shards, last, got[0])
		}
	}
	if _, err := Ranges(3, 4); err == nil {
		t.Error("more shards than records accepted")
	}
	if _, err := Ranges(16, 0); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestUniformManifest(t *testing.T) {
	cohorts := [][]string{{"a:1", "a:2"}, {"b:1", "b:2"}, {"c:1", "c:2"}}
	m, err := Uniform(700, 32, cohorts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRecords() != 700 || m.NumShards() != 3 {
		t.Fatalf("uniform manifest covers %d records over %d shards", m.NumRecords(), m.NumShards())
	}
	// Every global index must locate into exactly the shard whose range
	// claims it, with contiguous coverage.
	for g := uint64(0); g < 700; g++ {
		shard, local, err := m.Locate(g)
		if err != nil {
			t.Fatalf("Locate(%d): %v", g, err)
		}
		if m.Shards[shard].FirstRecord+local != g {
			t.Fatalf("Locate(%d) landed at shard %d local %d", g, shard, local)
		}
	}
}

func TestManifestValidateCaps(t *testing.T) {
	base := Manifest{RecordSize: 32, Shards: []Shard{
		{FirstRecord: 0, NumRecords: 8, Replicas: []string{"a:1", "b:1"}},
	}}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	overReplicated := base
	reps := make([]string, maxCohortReplicas+1)
	for i := range reps {
		reps[i] = "r:1"
	}
	overReplicated.Shards = []Shard{{FirstRecord: 0, NumRecords: 8, Replicas: reps}}
	if err := overReplicated.Validate(); err == nil {
		t.Error("replica cap not enforced")
	}
	emptyAddr := base
	emptyAddr.Shards = []Shard{{FirstRecord: 0, NumRecords: 8, Replicas: []string{"a:1", ""}}}
	if err := emptyAddr.Validate(); err == nil {
		t.Error("empty replica address accepted")
	}
	huge := Manifest{RecordSize: 32, Shards: make([]Shard, maxShards+1)}
	var next uint64
	for i := range huge.Shards {
		huge.Shards[i] = Shard{FirstRecord: next, NumRecords: 1, Replicas: []string{"a:1", "b:1"}}
		next++
	}
	if err := huge.Validate(); err == nil {
		t.Error("shard cap not enforced")
	}
}
