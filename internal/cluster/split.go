package cluster

import (
	"fmt"

	"github.com/impir/impir/internal/database"
)

// SplitDB carves a database into shards contiguous row-range replicas
// using the Ranges policy (sizes differ by at most one; ragged last
// shard when N % S != 0). Each returned database owns a copy of its
// rows, so loading one into a server engine never aliases the source.
func SplitDB(db *database.DB, shards int) ([]*database.DB, error) {
	if db == nil {
		return nil, fmt.Errorf("cluster: nil database")
	}
	sizes, err := Ranges(uint64(db.NumRecords()), shards)
	if err != nil {
		return nil, err
	}
	out := make([]*database.DB, shards)
	var first uint64
	for i, n := range sizes {
		part, err := sliceDB(db, first, n)
		if err != nil {
			return nil, err
		}
		out[i] = part
		first += n
	}
	return out, nil
}

// SplitByManifest carves a database along a manifest's shard ranges.
// The manifest must cover the database exactly.
func SplitByManifest(db *database.DB, m Manifest) ([]*database.DB, error) {
	if db == nil {
		return nil, fmt.Errorf("cluster: nil database")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.RecordSize != db.RecordSize() {
		return nil, fmt.Errorf("cluster: manifest record size %d, database has %d", m.RecordSize, db.RecordSize())
	}
	if m.NumRecords() != uint64(db.NumRecords()) {
		return nil, fmt.Errorf("cluster: manifest covers %d records, database has %d", m.NumRecords(), db.NumRecords())
	}
	out := make([]*database.DB, len(m.Shards))
	for i, s := range m.Shards {
		part, err := sliceDB(db, s.FirstRecord, s.NumRecords)
		if err != nil {
			return nil, err
		}
		out[i] = part
	}
	return out, nil
}

// ExtractShard carves only shard's row range out of db — what one
// shard server needs at startup — without materialising the other
// shards the way SplitByManifest does. The manifest must cover the
// database exactly.
func ExtractShard(db *database.DB, m Manifest, shard int) (*database.DB, error) {
	if db == nil {
		return nil, fmt.Errorf("cluster: nil database")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(m.Shards) {
		return nil, fmt.Errorf("cluster: shard %d outside manifest of %d shards", shard, len(m.Shards))
	}
	if m.RecordSize != db.RecordSize() {
		return nil, fmt.Errorf("cluster: manifest record size %d, database has %d", m.RecordSize, db.RecordSize())
	}
	if m.NumRecords() != uint64(db.NumRecords()) {
		return nil, fmt.Errorf("cluster: manifest covers %d records, database has %d", m.NumRecords(), db.NumRecords())
	}
	return sliceDB(db, m.Shards[shard].FirstRecord, m.Shards[shard].NumRecords)
}

// sliceDB copies records [first, first+n) into a standalone database.
func sliceDB(db *database.DB, first, n uint64) (*database.DB, error) {
	rs := uint64(db.RecordSize())
	data := db.Data()
	lo, hi := first*rs, (first+n)*rs
	if hi > uint64(len(data)) {
		return nil, fmt.Errorf("cluster: shard range [%d,%d) outside database of %d records", first, first+n, db.NumRecords())
	}
	part := make([]byte, hi-lo)
	copy(part, data[lo:hi])
	return database.FromFlat(part, db.RecordSize())
}
