package cluster

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/database"
)

// raggedManifest splits 10 records over 4 shards (sizes 3,3,2,2).
func raggedManifest(t *testing.T) Manifest {
	t.Helper()
	m, err := Uniform(10, 32, [][]string{
		{"a:1", "a:2"}, {"b:1", "b:2"}, {"c:1", "c:2"}, {"d:1", "d:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlanQueryCoversEveryShard(t *testing.T) {
	m := raggedManifest(t)
	for g := uint64(0); g < m.NumRecords(); g++ {
		p, err := m.PlanQuery(g)
		if err != nil {
			t.Fatalf("PlanQuery(%d): %v", g, err)
		}
		if len(p.Locals) != m.NumShards() {
			t.Fatalf("PlanQuery(%d): %d locals for %d shards", g, len(p.Locals), m.NumShards())
		}
		wantOwner, wantLocal, _ := m.Locate(g)
		if p.Owner != wantOwner || p.Locals[p.Owner] != wantLocal {
			t.Fatalf("PlanQuery(%d): owner %d local %d, want %d/%d",
				g, p.Owner, p.Locals[p.Owner], wantOwner, wantLocal)
		}
		// Every dummy must be a valid local index for its shard: each
		// cohort receives a well-formed sub-query it cannot distinguish
		// from a real one.
		for s, local := range p.Locals {
			if local >= m.Shards[s].NumRecords {
				t.Fatalf("PlanQuery(%d): shard %d local %d outside its %d records",
					g, s, local, m.Shards[s].NumRecords)
			}
		}
	}
}

func TestPlanBatchEqualShapeAcrossShards(t *testing.T) {
	m := raggedManifest(t)
	globals := []uint64{0, 4, 9, 2, 7} // straddles all four shards
	bp, err := m.PlanBatch(globals)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Owners) != len(globals) {
		t.Fatalf("%d owners for %d globals", len(bp.Owners), len(globals))
	}
	for s, locals := range bp.Locals {
		if len(locals) != len(globals) {
			t.Fatalf("shard %d got a batch of %d, want %d — batch shape must not leak ownership",
				s, len(locals), len(globals))
		}
		for i, local := range locals {
			if local >= m.Shards[s].NumRecords {
				t.Fatalf("shard %d batch item %d: local %d out of range", s, i, local)
			}
		}
	}
	for i, g := range globals {
		owner, local, _ := m.Locate(g)
		if bp.Owners[i] != owner || bp.Locals[owner][i] != local {
			t.Fatalf("batch item %d (global %d) misplanned", i, g)
		}
	}
	if _, err := m.PlanBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestRouteUpdate(t *testing.T) {
	m := raggedManifest(t)
	rec := func(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }
	routed, err := m.RouteUpdate(map[uint64][]byte{
		0: rec(1), 2: rec(2), // shard 0 (records 0..2)
		9: rec(3), // shard 3 (records 8..9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != 2 {
		t.Fatalf("update touched %d cohorts, want 2", len(routed))
	}
	if !bytes.Equal(routed[0][0], rec(1)) || !bytes.Equal(routed[0][2], rec(2)) {
		t.Error("shard 0 rows misrouted")
	}
	if !bytes.Equal(routed[3][1], rec(3)) { // global 9 → shard 3 local 1
		t.Error("global 9 should land at shard 3 local 1")
	}
	if _, ok := routed[1]; ok {
		t.Error("shard 1 contacted with no dirty rows")
	}

	if _, err := m.RouteUpdate(map[uint64][]byte{0: rec(1)[:5]}); err == nil {
		t.Error("wrong-length record accepted")
	}
	if _, err := m.RouteUpdate(map[uint64][]byte{10: rec(1)}); err == nil {
		t.Error("out-of-range record accepted")
	}
	if _, err := m.RouteUpdate(nil); err == nil {
		t.Error("empty update accepted")
	}
}

func TestSplitDBRagged(t *testing.T) {
	db, err := database.GenerateHashDB(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := SplitDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := []int{3, 3, 2, 2}
	var global int
	for s, part := range parts {
		if part.NumRecords() != wantSizes[s] {
			t.Fatalf("shard %d holds %d records, want %d", s, part.NumRecords(), wantSizes[s])
		}
		if part.RecordSize() != db.RecordSize() {
			t.Fatalf("shard %d record size %d", s, part.RecordSize())
		}
		for i := 0; i < part.NumRecords(); i++ {
			if !bytes.Equal(part.Record(i), db.Record(global)) {
				t.Fatalf("shard %d record %d differs from global record %d", s, i, global)
			}
			global++
		}
	}
	if global != db.NumRecords() {
		t.Fatalf("shards cover %d of %d records", global, db.NumRecords())
	}

	// Shard replicas must not alias the source: mutating a shard leaves
	// the original intact.
	parts[0].SetRecord(0, bytes.Repeat([]byte{0xFF}, 32))
	if bytes.Equal(db.Record(0), parts[0].Record(0)) {
		t.Fatal("SplitDB aliases the source database")
	}

	if _, err := SplitDB(db, 11); err == nil {
		t.Error("more shards than records accepted")
	}
	if _, err := SplitDB(nil, 2); err == nil {
		t.Error("nil database accepted")
	}
}

func TestSplitByManifest(t *testing.T) {
	db, err := database.GenerateHashDB(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := raggedManifest(t)
	parts, err := SplitByManifest(db, m)
	if err != nil {
		t.Fatal(err)
	}
	for s, part := range parts {
		if uint64(part.NumRecords()) != m.Shards[s].NumRecords {
			t.Fatalf("shard %d: %d records, manifest says %d", s, part.NumRecords(), m.Shards[s].NumRecords)
		}
		if !bytes.Equal(part.Record(0), db.Record(int(m.Shards[s].FirstRecord))) {
			t.Fatalf("shard %d first record mismatch", s)
		}
	}

	small, _ := database.GenerateHashDB(9, 8)
	if _, err := SplitByManifest(small, m); err == nil {
		t.Error("manifest/database size mismatch accepted")
	}
	wide, _ := database.New(10, 64)
	if _, err := SplitByManifest(wide, m); err == nil {
		t.Error("manifest/database record-size mismatch accepted")
	}
}
