package cluster

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// Plan is the per-shard sub-query plan for one logical retrieval: one
// local index per shard. Locals[Owner] is the real local index of the
// target record; every other entry is a uniformly random dummy local
// index within that shard. Every shard receives a complete, well-formed
// PIR sub-query either way, and a PIR query reveals nothing about its
// index — so no cohort can tell whether it owns the record the client
// wanted, which is the privacy argument for querying all shards.
type Plan struct {
	// Owner is the shard whose sub-result is the requested record.
	Owner int
	// Locals holds one shard-local index per shard, in shard order.
	Locals []uint64
}

// BatchPlan is the per-shard plan for one logical batch retrieval.
// Every shard receives a batch of exactly len(Owners) local indices —
// equal-length batches on every cohort, so the batch shape leaks
// nothing about how the requested records distribute across shards.
type BatchPlan struct {
	// Owners[i] is the shard owning the i-th requested record.
	Owners []int
	// Locals[s][i] is shard s's local index for batch position i — real
	// when Owners[i] == s, a random dummy otherwise.
	Locals [][]uint64
}

// PlanQuery maps a global record index to its sub-query plan.
func (m Manifest) PlanQuery(global uint64) (Plan, error) {
	owner, local, err := m.Locate(global)
	if err != nil {
		return Plan{}, err
	}
	p := Plan{Owner: owner, Locals: make([]uint64, len(m.Shards))}
	for s, shard := range m.Shards {
		if s == owner {
			p.Locals[s] = local
			continue
		}
		dummy, err := randIndex(shard.NumRecords)
		if err != nil {
			return Plan{}, err
		}
		p.Locals[s] = dummy
	}
	return p, nil
}

// PlanBatch maps a batch of global indices to equal-length per-shard
// sub-query batches.
func (m Manifest) PlanBatch(globals []uint64) (BatchPlan, error) {
	if len(globals) == 0 {
		return BatchPlan{}, fmt.Errorf("cluster: empty batch")
	}
	bp := BatchPlan{
		Owners: make([]int, len(globals)),
		Locals: make([][]uint64, len(m.Shards)),
	}
	for s := range m.Shards {
		bp.Locals[s] = make([]uint64, len(globals))
	}
	for i, g := range globals {
		p, err := m.PlanQuery(g)
		if err != nil {
			return BatchPlan{}, err
		}
		bp.Owners[i] = p.Owner
		for s := range m.Shards {
			bp.Locals[s][i] = p.Locals[s]
		}
	}
	return bp, nil
}

// RouteUpdate partitions a global update set by owning shard, rewriting
// keys to shard-local indices: out[s] is nil when shard s has no dirty
// rows. Updates are public operator actions, so routing each row only
// to its owning cohort leaks nothing a cohort would not learn anyway by
// applying the update.
func (m Manifest) RouteUpdate(updates map[uint64][]byte) (map[int]map[uint64][]byte, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("cluster: empty update set")
	}
	out := make(map[int]map[uint64][]byte)
	for global, rec := range updates {
		if len(rec) != m.RecordSize {
			return nil, fmt.Errorf("cluster: update for record %d has %d bytes, want the record size %d",
				global, len(rec), m.RecordSize)
		}
		owner, local, err := m.Locate(global)
		if err != nil {
			return nil, err
		}
		if out[owner] == nil {
			out[owner] = make(map[uint64][]byte)
		}
		out[owner][local] = rec
	}
	return out, nil
}

// randIndex draws a uniform index in [0, n) from crypto/rand. Dummy
// indices do not strictly need to be unpredictable — a PIR sub-query
// hides its index whatever it is — but uniform randomness costs nothing
// and removes any temptation to reason about dummy placement.
func randIndex(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("cluster: empty shard")
	}
	// Rejection-sample to avoid modulo bias; irrelevant for privacy but
	// keeps the dummy distribution exactly uniform.
	max := ^uint64(0) - ^uint64(0)%n
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("cluster: rand: %w", err)
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v < max {
			return v % n, nil
		}
	}
}
