// Package cluster turns S independent server cohorts — each a group of
// 2..n non-colluding replicas holding one contiguous row-range shard of
// the database — into one logical PIR deployment.
//
// IM-PIR's "all-for-one" principle makes every query a linear scan of
// the whole replica, so a single server pair caps out at one machine's
// memory bandwidth. Horizontal partitioning cuts per-server scan work
// and memory by the shard factor while leaking nothing: the client
// queries EVERY shard cohort on every retrieval — the real sub-query on
// the shard that owns the record, a well-formed sub-query for a dummy
// local index on all others — so each cohort sees a valid PIR query
// regardless of the target, and learns nothing about which shard
// mattered (the standard partitioned-PIR construction).
//
// The package comprises a shard Manifest (topology + JSON round-trip
// for flags and config files), a query planner mapping global indices
// to per-shard sub-query plans, and SplitDB to carve a database into
// shard replicas. The network client driving every cohort concurrently
// — impir.ClusterClient — lives in the root package on top of
// impir.Client; this package deliberately stays below it (and below
// internal/bench) in the dependency order, so planners and benchmarks
// can reason about topologies without a network stack.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// Shard is one contiguous row-range of the global database, served by a
// cohort of non-colluding replicas (a complete multi-server PIR
// deployment of its own).
type Shard struct {
	// FirstRecord is the global index of the shard's first record.
	FirstRecord uint64 `json:"first_record"`
	// NumRecords is the number of records the shard holds (≥ 1).
	NumRecords uint64 `json:"num_records"`
	// Replicas are the cohort's server addresses (≥ 2; replicas of one
	// cohort must be mutually non-colluding, like any PIR deployment).
	Replicas []string `json:"replicas"`
}

// End returns the exclusive global upper bound of the shard's range.
func (s Shard) End() uint64 { return s.FirstRecord + s.NumRecords }

// Manifest describes a sharded deployment's topology: how the global
// record space is carved into contiguous row-range shards and which
// cohort serves each. Manifests round-trip through JSON for -manifest
// command-line flags and config files.
type Manifest struct {
	// RecordSize is the record size in bytes, identical across shards.
	RecordSize int `json:"record_size"`
	// Shards lists the row-range shards in ascending global order; they
	// must tile [0, NumRecords()) exactly — no gaps, no overlaps.
	Shards []Shard `json:"shards"`
}

// NumRecords returns the total record count across all shards.
func (m Manifest) NumRecords() uint64 {
	if len(m.Shards) == 0 {
		return 0
	}
	return m.Shards[len(m.Shards)-1].End()
}

// NumShards returns the shard count.
func (m Manifest) NumShards() int { return len(m.Shards) }

// Manifest size caps, enforced by Validate so an adversarial manifest
// cannot make a client allocate or dial without bound. They mirror the
// unified deployment manifest's caps (a cohort member here is a party
// there).
const (
	maxShards         = 4096
	maxCohortReplicas = 64
	maxReplicaAddrLen = 256
)

// Validate checks the topology: a positive record size, at least one
// shard, shards tiling the global record space contiguously from 0 with
// no gaps or overlaps, at least one record per shard, at least two
// replica addresses per cohort, and the size caps.
func (m Manifest) Validate() error {
	if m.RecordSize < 1 {
		return fmt.Errorf("cluster: record size %d must be ≥ 1", m.RecordSize)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: manifest has no shards")
	}
	if len(m.Shards) > maxShards {
		return fmt.Errorf("cluster: manifest has %d shards, the cap is %d", len(m.Shards), maxShards)
	}
	var next uint64
	for i, s := range m.Shards {
		if s.NumRecords < 1 {
			return fmt.Errorf("cluster: shard %d holds no records", i)
		}
		if s.FirstRecord != next {
			return fmt.Errorf("cluster: shard %d starts at record %d, want %d (shards must tile the record space contiguously)",
				i, s.FirstRecord, next)
		}
		if len(s.Replicas) < 2 {
			return fmt.Errorf("cluster: shard %d has %d replica(s); a PIR cohort needs ≥ 2 non-colluding servers",
				i, len(s.Replicas))
		}
		if len(s.Replicas) > maxCohortReplicas {
			return fmt.Errorf("cluster: shard %d has %d replicas, the cap is %d", i, len(s.Replicas), maxCohortReplicas)
		}
		for r, addr := range s.Replicas {
			if addr == "" {
				return fmt.Errorf("cluster: shard %d replica %d has an empty address", i, r)
			}
			if len(addr) > maxReplicaAddrLen {
				return fmt.Errorf("cluster: shard %d replica %d address exceeds %d bytes", i, r, maxReplicaAddrLen)
			}
		}
		next = s.End()
	}
	return nil
}

// Locate maps a global record index to its owning (shard, local index)
// pair. Shards are contiguous and ordered, so this is a linear walk —
// shard counts are small (machines, not records).
func (m Manifest) Locate(global uint64) (shard int, local uint64, err error) {
	for i, s := range m.Shards {
		if global >= s.FirstRecord && global < s.End() {
			return i, global - s.FirstRecord, nil
		}
	}
	return 0, 0, fmt.Errorf("cluster: index %d outside sharded database of %d records", global, m.NumRecords())
}

// Ranges carves numRecords into shards contiguous row ranges: every
// shard gets ⌊N/S⌋ records and the first N%S shards one extra, so sizes
// differ by at most one and the last shard is the ragged (smallest) one
// when N is not divisible by S. Returns the per-shard record counts.
func Ranges(numRecords uint64, shards int) ([]uint64, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d must be ≥ 1", shards)
	}
	if numRecords < uint64(shards) {
		return nil, fmt.Errorf("cluster: cannot split %d records into %d shards (every shard needs ≥ 1 record)",
			numRecords, shards)
	}
	base, rem := numRecords/uint64(shards), numRecords%uint64(shards)
	out := make([]uint64, shards)
	for i := range out {
		out[i] = base
		if uint64(i) < rem {
			out[i]++
		}
	}
	return out, nil
}

// Uniform builds a manifest splitting numRecords × recordSize records
// across len(cohorts) shards using Ranges, assigning cohorts[i]'s
// replica addresses to shard i.
func Uniform(numRecords uint64, recordSize int, cohorts [][]string) (Manifest, error) {
	sizes, err := Ranges(numRecords, len(cohorts))
	if err != nil {
		return Manifest{}, err
	}
	m := Manifest{RecordSize: recordSize, Shards: make([]Shard, len(cohorts))}
	var first uint64
	for i, n := range sizes {
		m.Shards[i] = Shard{FirstRecord: first, NumRecords: n, Replicas: cohorts[i]}
		first += n
	}
	return m, m.Validate()
}

// Parse decodes and validates a JSON manifest.
func Parse(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("cluster: parse manifest: %w", err)
	}
	return m, m.Validate()
}

// Load reads and validates a JSON manifest file (the -manifest flag).
func Load(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("cluster: load manifest: %w", err)
	}
	return Parse(data)
}

// JSON encodes the manifest for config files; Parse round-trips it.
func (m Manifest) JSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}
