package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseGen:        "Gen",
		PhaseEval:       "Eval",
		PhaseCopyToPIM:  "copy(cpu→pim)",
		PhaseDpXOR:      "dpXOR",
		PhaseCopyToHost: "copy(pim→cpu)",
		PhaseAggregate:  "aggregation",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase produced empty string")
	}
	if len(Phases()) != NumPhases {
		t.Errorf("Phases() has %d entries, want %d", len(Phases()), NumPhases)
	}
}

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.AddPhase(PhaseEval, 10*time.Millisecond, 20*time.Millisecond)
	b.AddPhase(PhaseDpXOR, 5*time.Millisecond, 60*time.Millisecond)
	b.AddPhase(PhaseEval, 10*time.Millisecond, 20*time.Millisecond)

	if b.TotalWall() != 25*time.Millisecond {
		t.Errorf("TotalWall = %v", b.TotalWall())
	}
	if b.TotalModeled() != 100*time.Millisecond {
		t.Errorf("TotalModeled = %v", b.TotalModeled())
	}
	if share := b.ModeledShare(PhaseEval); share != 0.4 {
		t.Errorf("ModeledShare(Eval) = %v, want 0.4", share)
	}
	if share := b.ModeledShare(PhaseGen); share != 0 {
		t.Errorf("ModeledShare(Gen) = %v, want 0", share)
	}
}

func TestBreakdownAdd(t *testing.T) {
	var a, b Breakdown
	a.AddPhase(PhaseEval, time.Second, 2*time.Second)
	b.AddPhase(PhaseEval, time.Second, time.Second)
	b.AddPhase(PhaseAggregate, time.Millisecond, time.Millisecond)
	a.Add(b)
	if a.Wall[PhaseEval] != 2*time.Second || a.Modeled[PhaseEval] != 3*time.Second {
		t.Errorf("Add mis-accumulated eval: %+v", a)
	}
	if a.Modeled[PhaseAggregate] != time.Millisecond {
		t.Error("Add dropped aggregate phase")
	}
}

func TestBreakdownScale(t *testing.T) {
	var b Breakdown
	b.AddPhase(PhaseEval, 10*time.Millisecond, 30*time.Millisecond)
	s := b.Scale(3)
	if s.Modeled[PhaseEval] != 10*time.Millisecond {
		t.Errorf("Scale(3) modeled = %v", s.Modeled[PhaseEval])
	}
	// Scale by non-positive returns unchanged values.
	s0 := b.Scale(0)
	if s0.Modeled[PhaseEval] != 30*time.Millisecond {
		t.Error("Scale(0) mutated breakdown")
	}
}

func TestEmptyBreakdownShares(t *testing.T) {
	var b Breakdown
	if b.ModeledShare(PhaseEval) != 0 {
		t.Error("empty breakdown has nonzero share")
	}
	if b.String() != "" {
		t.Errorf("empty breakdown String() = %q", b.String())
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.AddPhase(PhaseDpXOR, time.Millisecond, 2*time.Millisecond)
	if !strings.Contains(b.String(), "dpXOR") {
		t.Errorf("String() = %q missing phase name", b.String())
	}
}

func TestBatchStats(t *testing.T) {
	s := BatchStats{
		Queries:        10,
		WallLatency:    2 * time.Second,
		ModeledLatency: 500 * time.Millisecond,
	}
	if got := s.ModeledQPS(); got != 20 {
		t.Errorf("ModeledQPS = %v, want 20", got)
	}
	if got := s.WallQPS(); got != 5 {
		t.Errorf("WallQPS = %v, want 5", got)
	}
	var zero BatchStats
	if zero.ModeledQPS() != 0 || zero.WallQPS() != 0 {
		t.Error("zero stats produced nonzero QPS")
	}
}

func TestSchedulerStats(t *testing.T) {
	s := SchedulerStats{
		Submitted:        100,
		Rejected:         5,
		Dispatched:       90,
		Passes:           30,
		CoalescedPasses:  20,
		CoalescedQueries: 80,
		TotalWait:        900 * time.Millisecond,
		MaxDepth:         12,
		Epoch:            3,
	}
	if got := s.AvgWait(); got != 10*time.Millisecond {
		t.Errorf("AvgWait = %v, want 10ms", got)
	}
	if got := s.AvgCoalesce(); got != 3 {
		t.Errorf("AvgCoalesce = %v, want 3", got)
	}
	for _, want := range []string{"rejected=5", "coalesce=3.00", "epoch=3"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("String() = %q missing %q", s.String(), want)
		}
	}
	var zero SchedulerStats
	if zero.AvgWait() != 0 || zero.AvgCoalesce() != 0 {
		t.Error("zero stats produced nonzero averages")
	}
}

func TestClusterStats(t *testing.T) {
	c := ClusterStats{
		Retrievals:      4,
		BatchRetrievals: 1,
		Updates:         2,
		Shards: []ShardStats{
			{Queries: 4, Batches: 1, BatchQueries: 6, TotalTime: 100 * time.Millisecond},
			{Queries: 4, Batches: 1, BatchQueries: 6, UpdateRows: 3, Errors: 1, TotalTime: 50 * time.Millisecond},
		},
	}
	if got := c.TotalSubQueries(); got != 20 {
		t.Errorf("TotalSubQueries = %d, want 20", got)
	}
	// 4 single round trips + 1 batch round trip (however many
	// sub-queries it carried) over 100ms → 20ms per round trip.
	if got := c.Shards[0].AvgTime(); got != 20*time.Millisecond {
		t.Errorf("AvgTime = %v, want 20ms", got)
	}
	for _, want := range []string{"retrievals=4", "updates=2", "shard1[", "rows=3", "err=1"} {
		if !strings.Contains(c.String(), want) {
			t.Errorf("String() = %q missing %q", c.String(), want)
		}
	}
	var zero ShardStats
	if zero.AvgTime() != 0 {
		t.Error("zero shard stats produced nonzero average")
	}
}

func TestWidthBucket(t *testing.T) {
	cases := []struct {
		width, bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {16, 4}, {17, 5}, {32, 5}, {33, 6}, {64, 6},
		{65, 7}, {1000, 7},
	}
	for _, c := range cases {
		if got := WidthBucket(c.width); got != c.bucket {
			t.Errorf("WidthBucket(%d) = %d, want %d", c.width, got, c.bucket)
		}
	}
	// Every bucket has a label, and the top one is open-ended.
	for i := 0; i < NumWidthBuckets; i++ {
		if WidthBucketLabel(i) == "" {
			t.Errorf("bucket %d has no label", i)
		}
	}
	if got := WidthBucketLabel(NumWidthBuckets - 1); !strings.HasSuffix(got, "+") {
		t.Errorf("top bucket label %q is not open-ended", got)
	}
}

func TestRoundDuration(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{83*time.Minute + 123*time.Millisecond, 83*time.Minute + 120*time.Millisecond},
		{1234567 * time.Nanosecond, 1230 * time.Microsecond},
		{1234 * time.Nanosecond, 1230 * time.Nanosecond},
		{740 * time.Nanosecond, 740 * time.Nanosecond}, // sub-µs keeps full precision
		{0, 0},
		{-1234 * time.Nanosecond, -1230 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := RoundDuration(c.in); got != c.want {
			t.Errorf("RoundDuration(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Sub-microsecond average waits must not render as "0s" — the bench
// report regression this rounding exists for.
func TestSchedulerStatsStringSubMicroWait(t *testing.T) {
	s := SchedulerStats{Dispatched: 1000, TotalWait: 740 * time.Microsecond}
	if s.AvgWait() != 740*time.Nanosecond {
		t.Fatalf("AvgWait = %v", s.AvgWait())
	}
	if strings.Contains(s.String(), "avg-wait=0s") {
		t.Errorf("String() truncated sub-µs wait to zero: %q", s.String())
	}
	if !strings.Contains(s.String(), "avg-wait=740ns") {
		t.Errorf("String() = %q, want avg-wait=740ns", s.String())
	}
}

func TestSchedulerStatsDelta(t *testing.T) {
	prev := SchedulerStats{
		Submitted: 100, Rejected: 5, Cancelled: 1, Dispatched: 90,
		Passes: 30, CoalescedPasses: 20, CoalescedQueries: 80,
		TotalWait: 900 * time.Millisecond, MaxDepth: 12, Depth: 3, Epoch: 3,
	}
	prev.PassWidths[0] = 10
	cur := SchedulerStats{
		Submitted: 150, Rejected: 9, Cancelled: 2, Dispatched: 130,
		Passes: 45, CoalescedPasses: 28, CoalescedQueries: 110,
		TotalWait: 1200 * time.Millisecond, MaxDepth: 15, Depth: 1, Epoch: 4,
	}
	cur.PassWidths[0] = 25
	cur.PassWidths[3] = 7

	d := Delta(cur, prev)
	if d.Submitted != 50 || d.Rejected != 4 || d.Cancelled != 1 || d.Dispatched != 40 {
		t.Errorf("counter deltas wrong: %+v", d)
	}
	if d.Passes != 15 || d.CoalescedPasses != 8 || d.CoalescedQueries != 30 {
		t.Errorf("pass deltas wrong: %+v", d)
	}
	if d.TotalWait != 300*time.Millisecond {
		t.Errorf("TotalWait delta = %v, want 300ms", d.TotalWait)
	}
	if d.PassWidths[0] != 15 || d.PassWidths[3] != 7 {
		t.Errorf("PassWidths delta wrong: %v", d.PassWidths)
	}
	// Gauges keep the current value rather than subtracting.
	if d.MaxDepth != 15 || d.Depth != 1 || d.Epoch != 4 {
		t.Errorf("gauges not preserved: MaxDepth=%d Depth=%d Epoch=%d", d.MaxDepth, d.Depth, d.Epoch)
	}
}

func TestDeltaStore(t *testing.T) {
	prev := StoreStats{
		Retrievals: 10, BatchRetrievals: 2, Updates: 1,
		Errors: 3, Busy: 2, Retries: 4, Hedges: 5, HedgeWins: 1,
		Shards: []ShardStats{{Queries: 10, TotalTime: time.Second}},
	}
	cur := StoreStats{
		Retrievals: 30, BatchRetrievals: 6, Updates: 2,
		Errors: 5, Busy: 4, Retries: 6, Hedges: 9, HedgeWins: 2,
		Shards: []ShardStats{
			{Queries: 40, Batches: 3, TotalTime: 3 * time.Second},
			{Queries: 7, Errors: 1},
		},
	}
	d := DeltaStore(cur, prev)
	if d.Retrievals != 20 || d.BatchRetrievals != 4 || d.Updates != 1 {
		t.Errorf("op deltas wrong: %+v", d)
	}
	if d.Errors != 2 || d.Busy != 2 || d.Retries != 2 || d.Hedges != 4 || d.HedgeWins != 1 {
		t.Errorf("failure deltas wrong: %+v", d)
	}
	if len(d.Shards) != 2 {
		t.Fatalf("shard count = %d, want 2", len(d.Shards))
	}
	if d.Shards[0].Queries != 30 || d.Shards[0].Batches != 3 || d.Shards[0].TotalTime != 2*time.Second {
		t.Errorf("shard 0 delta wrong: %+v", d.Shards[0])
	}
	// A shard unseen in prev (grown topology) deltas against zero.
	if d.Shards[1].Queries != 7 || d.Shards[1].Errors != 1 {
		t.Errorf("shard 1 delta wrong: %+v", d.Shards[1])
	}
}

func TestStoreStatsBusyInString(t *testing.T) {
	s := StoreStats{Errors: 3, Busy: 2}
	if !strings.Contains(s.String(), "busy=2") {
		t.Errorf("String() = %q missing busy count", s.String())
	}
}
