package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseGen:        "Gen",
		PhaseEval:       "Eval",
		PhaseCopyToPIM:  "copy(cpu→pim)",
		PhaseDpXOR:      "dpXOR",
		PhaseCopyToHost: "copy(pim→cpu)",
		PhaseAggregate:  "aggregation",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase produced empty string")
	}
	if len(Phases()) != NumPhases {
		t.Errorf("Phases() has %d entries, want %d", len(Phases()), NumPhases)
	}
}

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.AddPhase(PhaseEval, 10*time.Millisecond, 20*time.Millisecond)
	b.AddPhase(PhaseDpXOR, 5*time.Millisecond, 60*time.Millisecond)
	b.AddPhase(PhaseEval, 10*time.Millisecond, 20*time.Millisecond)

	if b.TotalWall() != 25*time.Millisecond {
		t.Errorf("TotalWall = %v", b.TotalWall())
	}
	if b.TotalModeled() != 100*time.Millisecond {
		t.Errorf("TotalModeled = %v", b.TotalModeled())
	}
	if share := b.ModeledShare(PhaseEval); share != 0.4 {
		t.Errorf("ModeledShare(Eval) = %v, want 0.4", share)
	}
	if share := b.ModeledShare(PhaseGen); share != 0 {
		t.Errorf("ModeledShare(Gen) = %v, want 0", share)
	}
}

func TestBreakdownAdd(t *testing.T) {
	var a, b Breakdown
	a.AddPhase(PhaseEval, time.Second, 2*time.Second)
	b.AddPhase(PhaseEval, time.Second, time.Second)
	b.AddPhase(PhaseAggregate, time.Millisecond, time.Millisecond)
	a.Add(b)
	if a.Wall[PhaseEval] != 2*time.Second || a.Modeled[PhaseEval] != 3*time.Second {
		t.Errorf("Add mis-accumulated eval: %+v", a)
	}
	if a.Modeled[PhaseAggregate] != time.Millisecond {
		t.Error("Add dropped aggregate phase")
	}
}

func TestBreakdownScale(t *testing.T) {
	var b Breakdown
	b.AddPhase(PhaseEval, 10*time.Millisecond, 30*time.Millisecond)
	s := b.Scale(3)
	if s.Modeled[PhaseEval] != 10*time.Millisecond {
		t.Errorf("Scale(3) modeled = %v", s.Modeled[PhaseEval])
	}
	// Scale by non-positive returns unchanged values.
	s0 := b.Scale(0)
	if s0.Modeled[PhaseEval] != 30*time.Millisecond {
		t.Error("Scale(0) mutated breakdown")
	}
}

func TestEmptyBreakdownShares(t *testing.T) {
	var b Breakdown
	if b.ModeledShare(PhaseEval) != 0 {
		t.Error("empty breakdown has nonzero share")
	}
	if b.String() != "" {
		t.Errorf("empty breakdown String() = %q", b.String())
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.AddPhase(PhaseDpXOR, time.Millisecond, 2*time.Millisecond)
	if !strings.Contains(b.String(), "dpXOR") {
		t.Errorf("String() = %q missing phase name", b.String())
	}
}

func TestBatchStats(t *testing.T) {
	s := BatchStats{
		Queries:        10,
		WallLatency:    2 * time.Second,
		ModeledLatency: 500 * time.Millisecond,
	}
	if got := s.ModeledQPS(); got != 20 {
		t.Errorf("ModeledQPS = %v, want 20", got)
	}
	if got := s.WallQPS(); got != 5 {
		t.Errorf("WallQPS = %v, want 5", got)
	}
	var zero BatchStats
	if zero.ModeledQPS() != 0 || zero.WallQPS() != 0 {
		t.Error("zero stats produced nonzero QPS")
	}
}

func TestSchedulerStats(t *testing.T) {
	s := SchedulerStats{
		Submitted:        100,
		Rejected:         5,
		Dispatched:       90,
		Passes:           30,
		CoalescedPasses:  20,
		CoalescedQueries: 80,
		TotalWait:        900 * time.Millisecond,
		MaxDepth:         12,
		Epoch:            3,
	}
	if got := s.AvgWait(); got != 10*time.Millisecond {
		t.Errorf("AvgWait = %v, want 10ms", got)
	}
	if got := s.AvgCoalesce(); got != 3 {
		t.Errorf("AvgCoalesce = %v, want 3", got)
	}
	for _, want := range []string{"rejected=5", "coalesce=3.00", "epoch=3"} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("String() = %q missing %q", s.String(), want)
		}
	}
	var zero SchedulerStats
	if zero.AvgWait() != 0 || zero.AvgCoalesce() != 0 {
		t.Error("zero stats produced nonzero averages")
	}
}

func TestClusterStats(t *testing.T) {
	c := ClusterStats{
		Retrievals:      4,
		BatchRetrievals: 1,
		Updates:         2,
		Shards: []ShardStats{
			{Queries: 4, Batches: 1, BatchQueries: 6, TotalTime: 100 * time.Millisecond},
			{Queries: 4, Batches: 1, BatchQueries: 6, UpdateRows: 3, Errors: 1, TotalTime: 50 * time.Millisecond},
		},
	}
	if got := c.TotalSubQueries(); got != 20 {
		t.Errorf("TotalSubQueries = %d, want 20", got)
	}
	// 4 single round trips + 1 batch round trip (however many
	// sub-queries it carried) over 100ms → 20ms per round trip.
	if got := c.Shards[0].AvgTime(); got != 20*time.Millisecond {
		t.Errorf("AvgTime = %v, want 20ms", got)
	}
	for _, want := range []string{"retrievals=4", "updates=2", "shard1[", "rows=3", "err=1"} {
		if !strings.Contains(c.String(), want) {
			t.Errorf("String() = %q missing %q", c.String(), want)
		}
	}
	var zero ShardStats
	if zero.AvgTime() != 0 {
		t.Error("zero shard stats produced nonzero average")
	}
}
