// Package metrics defines the per-phase timing breakdowns reported by the
// PIR engines, mirroring the instrumentation behind Figure 10 and Table 1
// of the paper: every query's server-side cost is attributed to DPF
// evaluation, CPU→PIM copy, dpXOR, PIM→CPU copy, and aggregation.
//
// Each phase carries two durations: Wall (measured on the machine running
// this reproduction) and Modeled (what the operation costs on the paper's
// hardware per the calibrated models in packages pim and hostmodel). The
// benchmark harness reports both; figure reproduction uses Modeled.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// Phase identifies one server-side query-processing phase (Alg. 1 ➋–➏).
type Phase int

const (
	// PhaseGen is client-side key generation (only Fig. 3a reports it).
	PhaseGen Phase = iota
	// PhaseEval is host-side full-domain DPF evaluation (Alg. 1 ➋).
	PhaseEval
	// PhaseCopyToPIM is the share-vector scatter to DPU MRAM (➌).
	PhaseCopyToPIM
	// PhaseDpXOR is the selective-XOR scan (➍) — on DPUs for IM-PIR, on
	// the CPU for the baseline, on the GPU for GPU-PIR.
	PhaseDpXOR
	// PhaseCopyToHost is the subresult gather from DPUs (➎).
	PhaseCopyToHost
	// PhaseAggregate is the host-side XOR fold of subresults (➏).
	PhaseAggregate

	numPhases
)

// NumPhases is the number of distinct phases.
const NumPhases = int(numPhases)

// String returns the phase name as used in the paper's figures.
func (p Phase) String() string {
	switch p {
	case PhaseGen:
		return "Gen"
	case PhaseEval:
		return "Eval"
	case PhaseCopyToPIM:
		return "copy(cpu→pim)"
	case PhaseDpXOR:
		return "dpXOR"
	case PhaseCopyToHost:
		return "copy(pim→cpu)"
	case PhaseAggregate:
		return "aggregation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases lists all phases in pipeline order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Breakdown is a per-phase accounting of one query (or an accumulation
// over many queries) in both wall-clock and modeled time.
type Breakdown struct {
	Wall    [NumPhases]time.Duration
	Modeled [NumPhases]time.Duration
}

// AddPhase accumulates one phase observation.
func (b *Breakdown) AddPhase(p Phase, wall, modeled time.Duration) {
	b.Wall[p] += wall
	b.Modeled[p] += modeled
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	for i := 0; i < NumPhases; i++ {
		b.Wall[i] += o.Wall[i]
		b.Modeled[i] += o.Modeled[i]
	}
}

// TotalWall returns the summed measured duration across phases.
func (b *Breakdown) TotalWall() time.Duration {
	var t time.Duration
	for _, d := range b.Wall {
		t += d
	}
	return t
}

// TotalModeled returns the summed modeled duration across phases.
func (b *Breakdown) TotalModeled() time.Duration {
	var t time.Duration
	for _, d := range b.Modeled {
		t += d
	}
	return t
}

// ModeledShare returns phase p's fraction of the modeled total, the
// quantity Table 1 reports. Returns 0 for an empty breakdown.
func (b *Breakdown) ModeledShare(p Phase) float64 {
	total := b.TotalModeled()
	if total == 0 {
		return 0
	}
	return float64(b.Modeled[p]) / float64(total)
}

// Scale returns a copy of b with all durations divided by n — used to
// convert batch accumulations into per-query averages.
func (b *Breakdown) Scale(n int) Breakdown {
	if n <= 0 {
		return *b
	}
	var out Breakdown
	for i := 0; i < NumPhases; i++ {
		out.Wall[i] = b.Wall[i] / time.Duration(n)
		out.Modeled[i] = b.Modeled[i] / time.Duration(n)
	}
	return out
}

// String renders the modeled breakdown compactly for logs.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i := 0; i < NumPhases; i++ {
		if b.Modeled[i] == 0 && b.Wall[i] == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%v", Phase(i), b.Modeled[i].Round(time.Microsecond))
	}
	return sb.String()
}

// BatchStats summarises a batch of queries processed by an engine.
type BatchStats struct {
	// Queries is the batch size.
	Queries int
	// PerQuery is the average per-query breakdown.
	PerQuery Breakdown
	// WallLatency is the measured end-to-end time for the whole batch.
	WallLatency time.Duration
	// ModeledLatency is the modeled end-to-end batch time on the paper's
	// hardware, including pipeline overlap between eval workers and DPU
	// clusters.
	ModeledLatency time.Duration
	// Fused reports that the batch was served by fused one-pass scans
	// (one database stream accumulating all queries) rather than one
	// scan per query.
	Fused bool
}

// ModeledQPS returns the modeled query throughput of the batch.
func (s BatchStats) ModeledQPS() float64 {
	if s.ModeledLatency <= 0 {
		return 0
	}
	return float64(s.Queries) / s.ModeledLatency.Seconds()
}

// WallQPS returns the measured query throughput of the batch on the local
// machine.
func (s BatchStats) WallQPS() float64 {
	if s.WallLatency <= 0 {
		return 0
	}
	return float64(s.Queries) / s.WallLatency.Seconds()
}

// NumWidthBuckets is the number of coalesce-width histogram buckets in
// SchedulerStats.PassWidths: powers of two up to 64 plus an overflow
// bucket (1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+).
const NumWidthBuckets = 8

// WidthBucket maps a single-query pass width (requests served by one
// engine pass) to its PassWidths bucket index.
func WidthBucket(width int) int {
	if width <= 1 {
		return 0
	}
	b := bits.Len(uint(width - 1))
	if b >= NumWidthBuckets {
		b = NumWidthBuckets - 1
	}
	return b
}

// WidthBucketLabel names a PassWidths bucket for reports.
func WidthBucketLabel(i int) string {
	switch {
	case i <= 0:
		return "1"
	case i == 1:
		return "2"
	case i < NumWidthBuckets-1:
		return fmt.Sprintf("%d-%d", 1<<(i-1)+1, 1<<i)
	default:
		return fmt.Sprintf("%d+", 1<<(NumWidthBuckets-2)+1)
	}
}

// SchedulerStats is a snapshot of a server-side request scheduler: the
// admission queue, the cross-client coalescing behaviour, and the update
// epochs. All counters are cumulative since the scheduler started.
type SchedulerStats struct {
	// Submitted counts requests admitted to the queue.
	Submitted uint64
	// Rejected counts requests refused because the queue was full — the
	// backpressure signal that becomes a MsgBusy frame on the wire.
	Rejected uint64
	// Cancelled counts requests dequeued without an engine pass because
	// their context died while they waited.
	Cancelled uint64
	// Dispatched counts requests that reached an engine pass.
	Dispatched uint64
	// Passes counts engine passes executed (a coalesced pass serves many
	// requests in one).
	Passes uint64
	// CoalescedPasses counts passes that merged ≥ 2 single queries from
	// different submitters into one batch pipeline pass.
	CoalescedPasses uint64
	// CoalescedQueries counts single queries served through a coalesced
	// pass rather than a solo engine pass.
	CoalescedQueries uint64
	// FusedPasses counts engine passes executed as fused one-pass scans:
	// the whole batch shared one streaming pass over the database instead
	// of paying one scan per query.
	FusedPasses uint64
	// PassWidths is a histogram of single-query pass widths: how many
	// requests each engine pass served, bucketed by WidthBucket. Solo
	// passes land in bucket 0; a healthy coalescing server under
	// concurrent load shifts mass rightward.
	PassWidths [NumWidthBuckets]uint64
	// MaxDepth is the deepest the admission queue has been.
	MaxDepth int
	// Depth is the queue depth at snapshot time.
	Depth int
	// TotalWait accumulates time requests spent queued before dispatch.
	TotalWait time.Duration
	// Updates counts applied database updates; Epoch is the database
	// version the scheduler is serving (bumped once per update).
	Updates uint64
	Epoch   uint64
}

// ShardStats is one shard cohort's cumulative client-side counters, as
// maintained by the cluster client. Real and dummy sub-queries are
// counted together — they are indistinguishable by construction, which
// is the whole privacy argument, so a per-kind split cannot exist here
// without breaking it on the wire anyway.
type ShardStats struct {
	// Queries counts single sub-queries fanned out to the cohort.
	Queries uint64
	// Batches counts batched round trips to the cohort; BatchQueries
	// counts the sub-queries they carried.
	Batches      uint64
	BatchQueries uint64
	// UpdateRows counts dirty records routed to this cohort by update
	// routing (updates go only to the owning shard; they are public).
	UpdateRows uint64
	// Errors counts failed sub-requests against the cohort.
	Errors uint64
	// TotalTime accumulates the wall time of the cohort's sub-requests.
	TotalTime time.Duration
}

// AvgTime returns the mean wall time per round trip to the cohort (a
// batch is one round trip however many sub-queries it carries).
func (s ShardStats) AvgTime() time.Duration {
	n := s.Queries + s.Batches
	if n == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(n)
}

// StoreStats aggregates a store's client-side behaviour — flat replica
// pairs and sharded clusters alike: per-cohort counters plus logical
// operation, retry and hedging totals. Hedging counters are client-side
// only: every hedged attempt carries the SAME share its party would have
// received anyway, so nothing here corresponds to extra information on
// any server's wire.
type StoreStats struct {
	// Retrievals and BatchRetrievals count logical operations against
	// the store (each fans out one sub-query per cohort).
	Retrievals      uint64
	BatchRetrievals uint64
	// Updates counts update operations routed through the store.
	Updates uint64
	// Errors counts logical operations that failed after exhausting
	// their retry budget.
	Errors uint64
	// Busy counts logical operations that failed because a server
	// rejected the request with a MsgBusy frame (admission queue full) —
	// the client-side view of server-side backpressure. Every Busy is
	// also an Error.
	Busy uint64
	// Retries counts extra whole-operation attempts spent from per-call
	// retry budgets (transparent redial of poisoned connections included).
	Retries uint64
	// Hedges counts hedge attempts launched beyond a party's primary
	// replica; HedgeWins counts party sub-requests won by a non-primary
	// replica — the tail-latency rescues.
	Hedges    uint64
	HedgeWins uint64
	// Shards holds the per-cohort counters, indexed by shard (a flat
	// deployment is one cohort, so one entry).
	Shards []ShardStats
	// Coded-batch counters, maintained by the batch-code layer on coded
	// deployments (zero elsewhere). Like the hedging counters these are
	// client-side only: which of a coded batch's constant-shape slots
	// were real, dummy, or spent from the cache is exactly what the wire
	// hides.
	//
	// CodedBatches counts RetrieveBatch calls served through the batch
	// code planner; CodedQueries the constant-shape sub-queries they
	// issued (buckets + overflow slots per batch) and CodedDummies how
	// many of those were dummies. CodeFallbacks counts batches that fell
	// back to the uncoded path (over the declared cap, or a matching
	// overflow). SideInfoHits counts records served from the client-side
	// cache and spent as side information (their slots left dummy).
	CodedBatches  uint64
	CodedQueries  uint64
	CodedDummies  uint64
	CodeFallbacks uint64
	SideInfoHits  uint64
}

// ClusterStats is the sharded-deployment name StoreStats grew out of.
// It remains as an alias: every cluster is a store.
type ClusterStats = StoreStats

// TotalSubQueries sums the sub-queries issued across every shard.
func (c StoreStats) TotalSubQueries() uint64 {
	var n uint64
	for _, s := range c.Shards {
		n += s.Queries + s.BatchQueries
	}
	return n
}

// String renders the store counters compactly for logs and reports.
func (c StoreStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "retrievals=%d batches=%d updates=%d", c.Retrievals, c.BatchRetrievals, c.Updates)
	if c.Errors > 0 || c.Retries > 0 {
		fmt.Fprintf(&sb, " errors=%d retries=%d", c.Errors, c.Retries)
	}
	if c.Busy > 0 {
		fmt.Fprintf(&sb, " busy=%d", c.Busy)
	}
	if c.Hedges > 0 || c.HedgeWins > 0 {
		fmt.Fprintf(&sb, " hedges=%d hedge-wins=%d", c.Hedges, c.HedgeWins)
	}
	if c.CodedBatches > 0 || c.CodeFallbacks > 0 {
		fmt.Fprintf(&sb, " coded=%d coded-queries=%d dummies=%d fallbacks=%d side-info=%d",
			c.CodedBatches, c.CodedQueries, c.CodedDummies, c.CodeFallbacks, c.SideInfoHits)
	}
	for i, s := range c.Shards {
		fmt.Fprintf(&sb, " shard%d[q=%d bq=%d rows=%d err=%d avg=%v]",
			i, s.Queries, s.BatchQueries, s.UpdateRows, s.Errors, s.AvgTime().Round(time.Microsecond))
	}
	return sb.String()
}

// KVStats is a snapshot of a keyword client's cumulative counters.
// Hits and Misses are client-side outcomes only — on the wire a hit
// and a miss are indistinguishable by construction (identical probe
// batches), so these counters exist nowhere a server could read.
type KVStats struct {
	// Gets counts single-key lookups; BatchGets counts batched lookup
	// round trips and BatchKeys the keys they carried.
	Gets      uint64
	BatchGets uint64
	BatchKeys uint64
	// Hits and Misses split lookups by outcome (client-side only).
	Hits   uint64
	Misses uint64
	// Puts and Deletes count mutations pushed through the update path.
	Puts    uint64
	Deletes uint64
	// ProbedBuckets counts bucket records privately retrieved across
	// all operations (k candidates + stash per lookup shape).
	ProbedBuckets uint64
	// Errors counts failed operations.
	Errors uint64
}

// String renders the counters compactly for logs and reports.
func (s KVStats) String() string {
	return fmt.Sprintf("gets=%d batch-gets=%d(%d keys) hits=%d misses=%d puts=%d deletes=%d probes=%d errors=%d",
		s.Gets, s.BatchGets, s.BatchKeys, s.Hits, s.Misses, s.Puts, s.Deletes, s.ProbedBuckets, s.Errors)
}

// AvgWait returns the mean time a dispatched request spent queued.
func (s SchedulerStats) AvgWait() time.Duration {
	if s.Dispatched == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.Dispatched)
}

// AvgCoalesce returns the mean number of requests served per engine pass
// — 1.0 means no cross-client amortisation happened.
func (s SchedulerStats) AvgCoalesce() float64 {
	if s.Passes == 0 {
		return 0
	}
	return float64(s.Dispatched) / float64(s.Passes)
}

// Delta returns the scheduler activity between two snapshots of the
// SAME scheduler: cumulative counters subtract (cur - prev), while the
// gauges — Depth, MaxDepth, Epoch — keep their current value, since a
// high-water mark or version has no meaningful difference. Interval
// reporters (loadgen, bench-report) share this one definition so their
// per-interval numbers agree.
func Delta(cur, prev SchedulerStats) SchedulerStats {
	d := SchedulerStats{
		Submitted:        cur.Submitted - prev.Submitted,
		Rejected:         cur.Rejected - prev.Rejected,
		Cancelled:        cur.Cancelled - prev.Cancelled,
		Dispatched:       cur.Dispatched - prev.Dispatched,
		Passes:           cur.Passes - prev.Passes,
		CoalescedPasses:  cur.CoalescedPasses - prev.CoalescedPasses,
		CoalescedQueries: cur.CoalescedQueries - prev.CoalescedQueries,
		FusedPasses:      cur.FusedPasses - prev.FusedPasses,
		MaxDepth:         cur.MaxDepth,
		Depth:            cur.Depth,
		TotalWait:        cur.TotalWait - prev.TotalWait,
		Updates:          cur.Updates - prev.Updates,
		Epoch:            cur.Epoch,
	}
	for i := range d.PassWidths {
		d.PassWidths[i] = cur.PassWidths[i] - prev.PassWidths[i]
	}
	return d
}

// DeltaStore returns the client activity between two snapshots of the
// SAME store: every counter subtracts (cur - prev), including the
// per-shard counters (missing prev shards subtract zero).
func DeltaStore(cur, prev StoreStats) StoreStats {
	d := StoreStats{
		Retrievals:      cur.Retrievals - prev.Retrievals,
		BatchRetrievals: cur.BatchRetrievals - prev.BatchRetrievals,
		Updates:         cur.Updates - prev.Updates,
		Errors:          cur.Errors - prev.Errors,
		Busy:            cur.Busy - prev.Busy,
		Retries:         cur.Retries - prev.Retries,
		Hedges:          cur.Hedges - prev.Hedges,
		HedgeWins:       cur.HedgeWins - prev.HedgeWins,
		CodedBatches:    cur.CodedBatches - prev.CodedBatches,
		CodedQueries:    cur.CodedQueries - prev.CodedQueries,
		CodedDummies:    cur.CodedDummies - prev.CodedDummies,
		CodeFallbacks:   cur.CodeFallbacks - prev.CodeFallbacks,
		SideInfoHits:    cur.SideInfoHits - prev.SideInfoHits,
		Shards:          make([]ShardStats, len(cur.Shards)),
	}
	for i, s := range cur.Shards {
		var p ShardStats
		if i < len(prev.Shards) {
			p = prev.Shards[i]
		}
		d.Shards[i] = ShardStats{
			Queries:      s.Queries - p.Queries,
			Batches:      s.Batches - p.Batches,
			BatchQueries: s.BatchQueries - p.BatchQueries,
			UpdateRows:   s.UpdateRows - p.UpdateRows,
			Errors:       s.Errors - p.Errors,
			TotalTime:    s.TotalTime - p.TotalTime,
		}
	}
	return d
}

// RoundDuration rounds d for human-facing reports at a scale adapted to
// its magnitude — about three significant digits — so a 1h23m drain and
// a 740ns modeled queue wait both render usefully. Fixed-scale rounding
// (the old Round(time.Microsecond)) truncated sub-microsecond engine
// model waits to "0s" in bench reports.
func RoundDuration(d time.Duration) time.Duration {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= time.Second:
		return d.Round(10 * time.Millisecond)
	case abs >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	case abs >= time.Microsecond:
		return d.Round(10 * time.Nanosecond)
	default:
		return d
	}
}

// String renders the queue counters compactly for logs and reports.
func (s SchedulerStats) String() string {
	return fmt.Sprintf(
		"submitted=%d rejected=%d cancelled=%d passes=%d coalesce=%.2f fused=%d avg-wait=%v max-depth=%d epoch=%d",
		s.Submitted, s.Rejected, s.Cancelled, s.Passes, s.AvgCoalesce(),
		s.FusedPasses, RoundDuration(s.AvgWait()), s.MaxDepth, s.Epoch)
}
