package cpupir

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/naivepir"
)

func TestQueryShareEndToEnd(t *testing.T) {
	e0, db := newLoaded(t, 256)
	e1, _ := newLoaded(t, 256)

	const idx = 200
	q, err := naivepir.Gen(nil, 256, idx, 2)
	if err != nil {
		t.Fatal(err)
	}
	r0, bd, err := e0.QueryShare(q.Shares[0])
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalModeled() <= 0 {
		t.Error("share query has no modeled cost")
	}
	r1, _, err := e1.QueryShare(q.Shares[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := range r0 {
		r0[i] ^= r1[i]
	}
	if !bytes.Equal(r0, db.Record(idx)) {
		t.Fatal("share-query reconstruction failed")
	}
}

func TestQueryShareValidation(t *testing.T) {
	e0, _ := newLoaded(t, 128)
	if _, _, err := e0.QueryShare(nil); err == nil {
		t.Error("nil share accepted")
	}
	if _, _, err := e0.QueryShare(bitvec.New(64)); err == nil {
		t.Error("mis-sized share accepted")
	}
	empty, err := New(Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.QueryShare(bitvec.New(64)); err == nil {
		t.Error("share query before load accepted")
	}
}

func TestUpdateRecordsDirect(t *testing.T) {
	e0, _ := newLoaded(t, 128)
	rec := bytes.Repeat([]byte{0x11}, 32)
	if err := e0.UpdateRecords(map[uint64][]byte{5: rec}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e0.Database().Record(5), rec) {
		t.Fatal("update not applied")
	}
	if err := e0.UpdateRecords(nil); err == nil {
		t.Error("empty update accepted")
	}
	if err := e0.UpdateRecords(map[uint64][]byte{^uint64(0): rec}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := e0.UpdateRecords(map[uint64][]byte{0: rec[:4]}); err == nil {
		t.Error("short record accepted")
	}
	unloaded, _ := New(Config{Threads: 1})
	if err := unloaded.UpdateRecords(map[uint64][]byte{0: rec}); err == nil {
		t.Error("update before load accepted")
	}
}
