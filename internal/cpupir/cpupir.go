// Package cpupir implements the paper's baseline: a processor-centric
// multi-server PIR server in the style of Google's DPF implementation
// (§5.1). Each query is handled end-to-end by a single CPU thread — DPF
// full-domain evaluation with batched AES-NI followed by the dpXOR scan
// of the entire database with AVX-width (256-bit) XOR kernels. Batches
// run one thread per query, up to the configured thread count.
//
// This engine is what Figures 9, 10(b), 12 and Table 1 compare IM-PIR
// against. It is a real implementation (results are bit-exact and
// cross-checked against the PIM engine), with modeled durations layered
// on top via hostmodel so the reported numbers reflect the paper's
// 32-thread dual-Xeon baseline server rather than the local machine.
package cpupir

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/hostmodel"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/xorop"
)

// Config configures the CPU baseline engine.
type Config struct {
	// Threads is the number of concurrent query workers (the paper uses
	// 32, the baseline server's hardware thread count). 0 means 32.
	Threads int
	// EvalStrategy selects the DPF traversal; zero value means
	// dpf.StrategyMemoryBounded, matching Google's chunked evaluator.
	EvalStrategy dpf.Strategy
	// Host models the baseline machine. Zero value means
	// hostmodel.CPUPIRBaseline.
	Host hostmodel.Model
	// DisableBatchFusion reverts QueryBatch to the historical
	// one-thread-per-query execution (B independent scans). Used by the
	// batchfuse experiment to measure the fusion win; production leaves
	// it off.
	DisableBatchFusion bool
}

// DefaultConfig returns the paper's baseline configuration.
func DefaultConfig() Config {
	return Config{
		Threads:      32,
		EvalStrategy: dpf.StrategyMemoryBounded,
		Host:         hostmodel.CPUPIRBaseline(),
	}
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 32
	}
	if c.EvalStrategy == 0 {
		c.EvalStrategy = dpf.StrategyMemoryBounded
	}
	if c.Host.Threads == 0 {
		c.Host = hostmodel.CPUPIRBaseline()
	}
	return c
}

// Engine is the CPU-PIR baseline server engine.
type Engine struct {
	cfg    Config
	db     *database.DB
	domain int
}

// New builds a CPU baseline engine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("cpupir: Threads %d must be ≥ 1", cfg.Threads)
	}
	if err := cfg.Host.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Name identifies the engine in benchmark reports.
func (e *Engine) Name() string { return "CPU-PIR" }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Database returns the loaded (padded) database, or nil.
func (e *Engine) Database() *database.DB { return e.db }

// LoadDatabase registers the database. The CPU baseline scans main
// memory directly, so "loading" is only padding and validation.
func (e *Engine) LoadDatabase(db *database.DB) error {
	if db == nil {
		return errors.New("cpupir: nil database")
	}
	if db.RecordSize()%8 != 0 {
		return fmt.Errorf("cpupir: record size %d must be a multiple of 8", db.RecordSize())
	}
	padded := db.PadToPowerOfTwo()
	if padded == db {
		// PadToPowerOfTwo returned the caller's storage; clone so this
		// replica is independent of the caller's and of other engines
		// loaded from the same DB (true replica semantics for §3.3
		// updates).
		padded = db.Clone()
	}
	e.db = padded
	e.domain = padded.Domain()
	return nil
}

func (e *Engine) validateKey(key *dpf.Key) error {
	if e.db == nil {
		return errors.New("cpupir: no database loaded")
	}
	if key == nil {
		return errors.New("cpupir: nil key")
	}
	if int(key.Domain) != e.domain {
		return fmt.Errorf("cpupir: key domain %d does not match database domain %d", key.Domain, e.domain)
	}
	if key.BetaLen() != 0 {
		return fmt.Errorf("cpupir: PIR keys must be single-bit DPFs, got %d-byte payload", key.BetaLen())
	}
	return nil
}

// queryOneThread processes one query on one worker thread, as the
// baseline does under batch load. `concurrent` is how many queries are in
// flight machine-wide, which determines the modeled memory contention.
func (e *Engine) queryOneThread(key *dpf.Key, concurrent int) ([]byte, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	n := uint64(e.db.NumRecords())

	// DPF evaluation (single thread per query).
	start := time.Now()
	vec, err := key.EvalFull(dpf.FullEvalOptions{Strategy: e.cfg.EvalStrategy, Workers: 1})
	if err != nil {
		return nil, bd, fmt.Errorf("cpupir: DPF evaluation: %w", err)
	}
	bd.AddPhase(metrics.PhaseEval, time.Since(start), e.cfg.Host.EvalDuration(n, 1))

	// dpXOR: selective XOR over the whole database (all-for-one).
	start = time.Now()
	result := make([]byte, e.db.RecordSize())
	if err := xorop.Accumulate(result, e.db.Data(), e.db.RecordSize(), vec.Words()); err != nil {
		return nil, bd, fmt.Errorf("cpupir: dpXOR: %w", err)
	}
	bd.AddPhase(metrics.PhaseDpXOR, time.Since(start),
		e.cfg.Host.ScanDuration(e.db.SizeBytes(), concurrent))

	return result, bd, nil
}

// Query processes a single PIR query (no batch contention).
func (e *Engine) Query(key *dpf.Key) ([]byte, metrics.Breakdown, error) {
	if err := e.validateKey(key); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	return e.queryOneThread(key, 1)
}

// QueryBatch processes a batch of coalesced queries. The default path is
// the fused pipeline: every DPF key is expanded in parallel (one thread
// per key, up to Threads), then ONE streaming pass over the database
// accumulates all B results at once (xorop.AccumulateBatch). The scan is
// memory-bound, so the fused pass pays a single scan's memory traffic —
// B× XOR work — instead of B full scans.
//
// With DisableBatchFusion the engine reverts to §5.1's
// one-thread-per-query execution: B independent scans, W at a time.
func (e *Engine) QueryBatch(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	if len(keys) == 0 {
		return nil, metrics.BatchStats{}, errors.New("cpupir: empty batch")
	}
	for i, k := range keys {
		if err := e.validateKey(k); err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: batch key %d: %w", i, err)
		}
	}
	if e.cfg.DisableBatchFusion || len(keys) == 1 {
		return e.queryBatchUnfused(keys)
	}
	return e.queryBatchFused(keys)
}

// queryBatchFused is the fused hot path: parallel EvalFull of all B
// keys, then one AccumulateBatch scan across all Threads.
func (e *Engine) queryBatchFused(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	n := uint64(e.db.NumRecords())
	b := len(keys)
	workers := e.cfg.Threads
	if workers > b {
		workers = b
	}

	vecs := make([]*bitvec.Vector, b)
	errs := make([]error, b)
	keyCh := make(chan int, b)
	for i := range keys {
		keyCh <- i
	}
	close(keyCh)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range keyCh {
				vecs[i], errs[i] = keys[i].EvalFull(dpf.FullEvalOptions{
					Strategy: e.cfg.EvalStrategy, Workers: 1,
				})
			}
		}()
	}
	wg.Wait()
	evalWall := time.Since(start)
	for i := range errs {
		if errs[i] != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: DPF evaluation %d: %w", i, errs[i])
		}
	}
	// Eval makespan: W keys expand concurrently, each on one thread; the
	// last round may be partially occupied but eval has no memory
	// contention, so rounds stack directly.
	evalRounds := (b + workers - 1) / workers
	evalModeled := time.Duration(evalRounds) * e.cfg.Host.EvalDuration(n, 1)

	sels := make([][]uint64, b)
	for i, v := range vecs {
		sels[i] = v.Words()
	}
	results := make([][]byte, b)
	for i := range results {
		results[i] = make([]byte, e.db.RecordSize())
	}
	start = time.Now()
	if err := xorop.AccumulateBatchWorkers(results, e.db.Data(), e.db.RecordSize(), sels, e.cfg.Threads); err != nil {
		return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: fused dpXOR: %w", err)
	}
	scanWall := time.Since(start)
	scanModeled := e.cfg.Host.FusedScanDuration(e.db.SizeBytes(), b, e.cfg.Threads)

	var total metrics.Breakdown
	total.AddPhase(metrics.PhaseEval, evalWall, evalModeled)
	total.AddPhase(metrics.PhaseDpXOR, scanWall, scanModeled)
	stats := metrics.BatchStats{
		Queries:        b,
		PerQuery:       total.Scale(b),
		WallLatency:    evalWall + scanWall,
		ModeledLatency: evalModeled + scanModeled,
		Fused:          true,
	}
	return results, stats, nil
}

// queryBatchUnfused is the historical baseline: one worker thread per
// query, W concurrent scans (§5.1: "The CPU PIR baseline uses a single
// CPU thread for each query").
func (e *Engine) queryBatchUnfused(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	workers := e.cfg.Threads
	if workers > len(keys) {
		workers = len(keys)
	}
	concurrent := workers // modeled contention level

	results := make([][]byte, len(keys))
	breakdowns := make([]metrics.Breakdown, len(keys))
	errs := make([]error, len(keys))
	keyCh := make(chan int, len(keys))
	for i := range keys {
		keyCh <- i
	}
	close(keyCh)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range keyCh {
				results[i], breakdowns[i], errs[i] = e.queryOneThread(keys[i], concurrent)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var total metrics.Breakdown
	for i := range keys {
		if errs[i] != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: query %d: %w", i, errs[i])
		}
		total.Add(breakdowns[i])
	}

	// Modeled makespan: rounds of up to W concurrent queries, each round
	// costing one query at that round's ACTUAL occupancy — a final round
	// of 3 queries on a 32-thread machine contends 3 ways, not 32.
	n := uint64(e.db.NumRecords())
	var modeled time.Duration
	for done := 0; done < len(keys); done += workers {
		occ := len(keys) - done
		if occ > workers {
			occ = workers
		}
		modeled += e.cfg.Host.EvalDuration(n, 1) + e.cfg.Host.ScanDuration(e.db.SizeBytes(), occ)
	}
	stats := metrics.BatchStats{
		Queries:        len(keys),
		PerQuery:       total.Scale(len(keys)),
		WallLatency:    wall,
		ModeledLatency: modeled,
	}
	return results, stats, nil
}

// QueryShare processes a raw selector-share query (the n-server
// generalisation of §2.3): the dpXOR scan driven directly by the given
// N-bit share, with no DPF evaluation phase.
func (e *Engine) QueryShare(share *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	if e.db == nil {
		return nil, bd, errors.New("cpupir: no database loaded")
	}
	if share == nil {
		return nil, bd, errors.New("cpupir: nil share")
	}
	if share.Len() != e.db.NumRecords() {
		return nil, bd, fmt.Errorf("cpupir: share covers %d records, database has %d",
			share.Len(), e.db.NumRecords())
	}
	start := time.Now()
	result := make([]byte, e.db.RecordSize())
	if err := xorop.Accumulate(result, e.db.Data(), e.db.RecordSize(), share.Words()); err != nil {
		return nil, bd, fmt.Errorf("cpupir: dpXOR: %w", err)
	}
	bd.AddPhase(metrics.PhaseDpXOR, time.Since(start), e.cfg.Host.ScanDuration(e.db.SizeBytes(), 1))
	return result, bd, nil
}

// QueryShareBatch processes B raw selector-share queries in ONE fused
// streaming pass over the database — the n-server analogue of the fused
// QueryBatch. There is no eval stage: the shares ARE the selectors.
func (e *Engine) QueryShareBatch(shares []*bitvec.Vector) ([][]byte, metrics.BatchStats, error) {
	if e.db == nil {
		return nil, metrics.BatchStats{}, errors.New("cpupir: no database loaded")
	}
	if len(shares) == 0 {
		return nil, metrics.BatchStats{}, errors.New("cpupir: empty share batch")
	}
	sels := make([][]uint64, len(shares))
	for i, sh := range shares {
		if sh == nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: share %d is nil", i)
		}
		if sh.Len() != e.db.NumRecords() {
			return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: share %d covers %d records, database has %d",
				i, sh.Len(), e.db.NumRecords())
		}
		sels[i] = sh.Words()
	}

	b := len(shares)
	results := make([][]byte, b)
	for i := range results {
		results[i] = make([]byte, e.db.RecordSize())
	}
	start := time.Now()
	var err error
	if e.cfg.DisableBatchFusion {
		for i := range sels {
			if err = xorop.Accumulate(results[i], e.db.Data(), e.db.RecordSize(), sels[i]); err != nil {
				break
			}
		}
	} else {
		err = xorop.AccumulateBatchWorkers(results, e.db.Data(), e.db.RecordSize(), sels, e.cfg.Threads)
	}
	if err != nil {
		return nil, metrics.BatchStats{}, fmt.Errorf("cpupir: fused dpXOR: %w", err)
	}
	wall := time.Since(start)

	var modeled time.Duration
	if e.cfg.DisableBatchFusion {
		modeled = time.Duration(b) * e.cfg.Host.ScanDuration(e.db.SizeBytes(), 1)
	} else {
		modeled = e.cfg.Host.FusedScanDuration(e.db.SizeBytes(), b, e.cfg.Threads)
	}
	var total metrics.Breakdown
	total.AddPhase(metrics.PhaseDpXOR, wall, modeled)
	stats := metrics.BatchStats{
		Queries:        b,
		PerQuery:       total.Scale(b),
		WallLatency:    wall,
		ModeledLatency: modeled,
		Fused:          !e.cfg.DisableBatchFusion,
	}
	return results, stats, nil
}

// ApplyUpdates is the uniform update entry point shared by every engine.
func (e *Engine) ApplyUpdates(updates map[uint64][]byte) error {
	return e.UpdateRecords(updates)
}

// UpdateRecords applies a bulk database update between query batches, the
// §3.3 update discipline. For the CPU baseline the database lives in host
// DRAM, so the update is an in-place rewrite. Must not run concurrently
// with queries.
func (e *Engine) UpdateRecords(updates map[uint64][]byte) error {
	if e.db == nil {
		return errors.New("cpupir: no database loaded")
	}
	if len(updates) == 0 {
		return errors.New("cpupir: empty update set")
	}
	for idx, rec := range updates {
		if idx >= uint64(e.db.NumRecords()) {
			return fmt.Errorf("cpupir: update index %d outside [0,%d)", idx, e.db.NumRecords())
		}
		if len(rec) != e.db.RecordSize() {
			return fmt.Errorf("cpupir: update for record %d has %d bytes, want %d",
				idx, len(rec), e.db.RecordSize())
		}
	}
	for idx, rec := range updates {
		if err := e.db.SetRecord(int(idx), rec); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the engine (no external resources; API symmetry).
func (e *Engine) Close() error { return nil }
