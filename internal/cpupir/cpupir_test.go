package cpupir

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
)

func newLoaded(t *testing.T, numRecords int) (*Engine, *database.DB) {
	t.Helper()
	eng, err := New(Config{Threads: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db, err := database.GenerateHashDB(numRecords, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	return eng, db
}

func genPair(t *testing.T, domain int, idx uint64) (*dpf.Key, *dpf.Key) {
	t.Helper()
	k0, k1, err := dpf.Gen(dpf.Params{Domain: domain}, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k0, k1
}

func TestEndToEndReconstruction(t *testing.T) {
	e0, db := newLoaded(t, 1024)
	e1, _ := newLoaded(t, 1024)
	for _, idx := range []uint64{0, 17, 1023} {
		k0, k1 := genPair(t, db.Domain(), idx)
		r0, _, err := e0.Query(k0)
		if err != nil {
			t.Fatal(err)
		}
		r1, _, err := e1.Query(k1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r0 {
			r0[i] ^= r1[i]
		}
		if !bytes.Equal(r0, db.Record(int(idx))) {
			t.Fatalf("index %d: wrong reconstruction", idx)
		}
	}
}

func TestBatch(t *testing.T) {
	e0, db := newLoaded(t, 512)
	e1, _ := newLoaded(t, 512)
	const batch = 10
	keys0 := make([]*dpf.Key, batch)
	keys1 := make([]*dpf.Key, batch)
	idx := make([]uint64, batch)
	for i := range idx {
		idx[i] = uint64(i * 50 % 512)
		keys0[i], keys1[i] = genPair(t, db.Domain(), idx[i])
	}
	r0, stats, err := e0.QueryBatch(keys0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := e1.QueryBatch(keys1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		rec := make([]byte, 32)
		copy(rec, r0[i])
		for j := range rec {
			rec[j] ^= r1[i][j]
		}
		if !bytes.Equal(rec, db.Record(int(idx[i]))) {
			t.Fatalf("batch query %d wrong", i)
		}
	}
	if stats.Queries != batch || stats.ModeledLatency <= 0 || stats.WallLatency <= 0 {
		t.Errorf("bad stats: %+v", stats)
	}
}

func TestBreakdownDominatedByDpXOR(t *testing.T) {
	// Table 1: the CPU baseline's modeled time must be dominated by the
	// dpXOR scan, not DPF evaluation.
	e0, db := newLoaded(t, 4096)
	k0, _ := genPair(t, db.Domain(), 3)
	_, bd, err := e0.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Modeled[metrics.PhaseDpXOR] <= bd.Modeled[metrics.PhaseEval] {
		t.Fatalf("dpXOR modeled %v not dominant over Eval %v",
			bd.Modeled[metrics.PhaseDpXOR], bd.Modeled[metrics.PhaseEval])
	}
	if bd.Modeled[metrics.PhaseCopyToPIM] != 0 {
		t.Error("CPU baseline has a copy-to-PIM phase")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Threads: -1}); err == nil {
		t.Error("New accepted negative threads")
	}
	eng, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Config().Threads != 32 {
		t.Errorf("default threads = %d, want 32", eng.Config().Threads)
	}
	k0, _ := genPair(t, 9, 0)
	if _, _, err := eng.Query(k0); err == nil {
		t.Error("Query before LoadDatabase succeeded")
	}
	if err := eng.LoadDatabase(nil); err == nil {
		t.Error("LoadDatabase(nil) succeeded")
	}
	db, _ := database.New(16, 12)
	if err := eng.LoadDatabase(db); err == nil {
		t.Error("LoadDatabase accepted 12-byte records")
	}

	e0, _ := newLoaded(t, 512)
	bad, _ := genPair(t, 4, 0)
	if _, _, err := e0.Query(bad); err == nil {
		t.Error("Query accepted wrong-domain key")
	}
	if _, _, err := e0.Query(nil); err == nil {
		t.Error("Query(nil) succeeded")
	}
	if _, _, err := e0.QueryBatch(nil); err == nil {
		t.Error("QueryBatch(nil) succeeded")
	}
	withPayload, _, err := dpf.Gen(dpf.Params{Domain: 9, BetaLen: 2}, 0, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e0.Query(withPayload); err == nil {
		t.Error("Query accepted payload key")
	}
}

func TestName(t *testing.T) {
	eng, _ := New(Config{})
	if eng.Name() != "CPU-PIR" {
		t.Errorf("Name() = %q", eng.Name())
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
