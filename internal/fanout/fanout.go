// Package fanout runs a set of tasks concurrently and cancels the rest
// as soon as one fails — the errgroup pattern, implemented locally so the
// module stays dependency-free. The client uses it to query every PIR
// server in parallel: retrieval latency is the slowest server, not the
// sum, and one failed server aborts the whole retrieval immediately (a
// lone subresult is useless and must never be mistaken for a record).
package fanout

import (
	"context"
	"sync"
)

// Group is a set of goroutines working on one retrieval. The zero value
// is not usable; construct with WithContext.
type Group struct {
	ctx    context.Context
	cancel context.CancelCauseFunc

	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// WithContext returns a Group and a context derived from ctx that is
// cancelled when any task fails, when Wait returns, or when ctx itself is
// cancelled. Tasks must observe the derived context for the fail-fast
// behaviour to have teeth.
func WithContext(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancelCause(ctx)
	return &Group{ctx: ctx, cancel: cancel}, ctx
}

// Go runs f in its own goroutine. The first non-nil error cancels the
// group context and is the one Wait returns.
func (g *Group) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel(err)
			})
		}
	}()
}

// Wait blocks until every task launched with Go has returned, then
// releases the group context and reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel(nil)
	return g.err
}
