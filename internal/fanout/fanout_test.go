package fanout

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestAllSucceed(t *testing.T) {
	g, _ := WithContext(context.Background())
	var n atomic.Int32
	for i := 0; i < 8; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if n.Load() != 8 {
		t.Fatalf("ran %d of 8 tasks", n.Load())
	}
}

func TestFirstErrorWinsAndCancels(t *testing.T) {
	g, ctx := WithContext(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	// The second task blocks until the first one's failure cancels the
	// group context — fail-fast, not wait-for-everyone.
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("group context never cancelled")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if context.Cause(ctx) != boom {
		t.Fatalf("cause = %v, want %v", context.Cause(ctx), boom)
	}
}

func TestParentCancellationPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	g, ctx := WithContext(parent)
	g.Go(func() error {
		<-ctx.Done()
		return ctx.Err()
	})
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

func TestTasksRunConcurrently(t *testing.T) {
	g, _ := WithContext(context.Background())
	const n = 4
	const delay = 100 * time.Millisecond
	start := time.Now()
	for i := 0; i < n; i++ {
		g.Go(func() error {
			time.Sleep(delay)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	// Sequential execution would take n×delay; allow generous slack for
	// slow CI machines while still ruling out serialisation.
	if elapsed := time.Since(start); elapsed >= time.Duration(n-1)*delay {
		t.Fatalf("%d tasks of %v took %v — not concurrent", n, delay, elapsed)
	}
}
