package fanout

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgePrimaryWinsWithoutHedging(t *testing.T) {
	var launches atomic.Int32
	v, i, err := Hedge(context.Background(), 3, 50*time.Millisecond,
		func(ctx context.Context, i int) (string, error) {
			launches.Add(1)
			return "primary", nil
		})
	if err != nil || v != "primary" || i != 0 {
		t.Fatalf("got (%q, %d, %v)", v, i, err)
	}
	if n := launches.Load(); n != 1 {
		t.Fatalf("fast primary still launched %d attempts", n)
	}
}

func TestHedgeSecondaryWinsOverSlowPrimary(t *testing.T) {
	primaryCancelled := make(chan struct{})
	v, i, err := Hedge(context.Background(), 2, 5*time.Millisecond,
		func(ctx context.Context, i int) (string, error) {
			if i == 0 {
				<-ctx.Done() // stuck replica; must be cancelled by the winner
				close(primaryCancelled)
				return "", ctx.Err()
			}
			return "hedge", nil
		})
	if err != nil || v != "hedge" || i != 1 {
		t.Fatalf("got (%q, %d, %v)", v, i, err)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt was not cancelled")
	}
}

func TestHedgeFailureLaunchesNextImmediately(t *testing.T) {
	// Delay is huge; only the failure path can reach attempt 1 in time.
	start := time.Now()
	v, i, err := Hedge(context.Background(), 2, time.Hour,
		func(ctx context.Context, i int) (int, error) {
			if i == 0 {
				return 0, errors.New("replica down")
			}
			return 42, nil
		})
	if err != nil || v != 42 || i != 1 {
		t.Fatalf("got (%d, %d, %v)", v, i, err)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("failure did not shortcut the hedge delay (%v)", e)
	}
}

func TestHedgeAllFailReturnsFirstError(t *testing.T) {
	// A huge delay means attempts only cascade through the
	// failure-shortcut path, so they fail strictly in order.
	first := errors.New("first")
	_, _, err := Hedge(context.Background(), 3, time.Hour,
		func(ctx context.Context, i int) (int, error) {
			if i == 0 {
				return 0, first
			}
			return 0, errors.New("later")
		})
	if !errors.Is(err, first) {
		t.Fatalf("want first error, got %v", err)
	}
}

func TestHedgeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := Hedge(ctx, 2, time.Hour,
			func(ctx context.Context, i int) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Hedge did not observe cancellation")
	}
}

func TestHedgeLoserSeesLostCause(t *testing.T) {
	// The loser must be able to tell losing the race apart from the
	// caller's own cancellation: its context's Cause is ErrHedgeLost.
	cause := make(chan error, 1)
	v, i, err := Hedge(context.Background(), 2, 5*time.Millisecond,
		func(ctx context.Context, i int) (string, error) {
			if i == 0 {
				<-ctx.Done()
				cause <- context.Cause(ctx)
				return "", ctx.Err()
			}
			return "hedge", nil
		})
	if err != nil || v != "hedge" || i != 1 {
		t.Fatalf("got (%q, %d, %v)", v, i, err)
	}
	select {
	case got := <-cause:
		if !errors.Is(got, ErrHedgeLost) {
			t.Fatalf("loser's cause = %v, want ErrHedgeLost", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt was never cancelled")
	}
}

func TestHedgeCallerCancelIsNotLost(t *testing.T) {
	// Caller cancellation must NOT masquerade as a lost race.
	ctx, cancel := context.WithCancel(context.Background())
	cause := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Hedge(ctx, 1, 0, func(ctx context.Context, i int) (int, error) {
			<-ctx.Done()
			cause <- context.Cause(ctx)
			return 0, ctx.Err()
		})
	}()
	cancel()
	<-done
	select {
	case got := <-cause:
		if errors.Is(got, ErrHedgeLost) {
			t.Fatalf("caller cancellation reported as ErrHedgeLost")
		}
		if !errors.Is(got, context.Canceled) {
			t.Fatalf("cause = %v, want context.Canceled", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("attempt never observed cancellation")
	}
}

func TestHedgeZeroDelayRacesAll(t *testing.T) {
	var launches atomic.Int32
	release := make(chan struct{})
	go func() {
		// Wait until all three attempts are in flight, then let one win.
		for launches.Load() < 3 {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	_, _, err := Hedge(context.Background(), 3, 0,
		func(ctx context.Context, i int) (int, error) {
			launches.Add(1)
			select {
			case <-release:
				return i, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if launches.Load() != 3 {
		t.Fatalf("zero delay launched %d of 3 attempts", launches.Load())
	}
}

func TestHedgeNoAttempts(t *testing.T) {
	if _, _, err := Hedge(context.Background(), 0, 0, func(ctx context.Context, i int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("n=0 accepted")
	}
}
