package fanout

import (
	"context"
	"errors"
	"time"
)

// ErrHedgeLost is the cancellation cause handed to attempts that lose
// the hedge race: the winner's result was returned and the losers'
// contexts were cancelled with this cause.
var ErrHedgeLost = errors.New("fanout: attempt lost the hedge race")

// Hedge runs up to n attempts of one idempotent operation against
// interchangeable replicas, fastest-first: attempt 0 starts immediately,
// and each further attempt starts when delay elapses without a winner —
// or immediately when an outstanding attempt fails, so a dead replica
// costs no waiting at all. The first success wins: its value and attempt
// index are returned and the context handed to every other attempt is
// cancelled. When all n attempts fail, Hedge reports the first failure
// (later failures are usually cascading noise).
//
// A delay ≤ 0 launches every attempt at once (pure racing). Attempts
// must observe their context for loser cancellation to have teeth; with
// the PIR wire protocol a cancelled exchange poisons its connection,
// which the client layer heals by redialing — the price of hedging is a
// redial per lost race, never a wrong answer.
//
// A loser's context is cancelled with ErrHedgeLost as the cause, so an
// attempt (or its tracing) can distinguish losing the race from the
// caller's own cancellation via context.Cause.
func Hedge[T any](ctx context.Context, n int, delay time.Duration, attempt func(ctx context.Context, i int) (T, error)) (T, int, error) {
	var zero T
	if n < 1 {
		return zero, 0, errors.New("fanout: hedge needs at least one attempt")
	}
	actx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	type result struct {
		i   int
		val T
		err error
	}
	results := make(chan result, n)
	launch := func(i int) {
		go func() {
			v, err := attempt(actx, i)
			results <- result{i, v, err}
		}()
	}

	launched, outstanding := 1, 1
	launch(0)
	if delay <= 0 {
		for launched < n {
			launch(launched)
			launched++
			outstanding++
		}
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	if launched < n {
		timer = time.NewTimer(delay)
		defer timer.Stop()
		timerC = timer.C
	}
	// disarm stops the timer and drains a tick that already fired into
	// its channel — without the drain, the Reset in armNext would leave
	// that stale tick queued and the next select would launch a hedge
	// immediately instead of after the delay (Go < 1.23 semantics; this
	// module targets 1.22).
	disarm := func() {
		if timer != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerC = nil
	}
	armNext := func() {
		if launched >= n {
			timerC = nil
			return
		}
		timer.Reset(delay)
		timerC = timer.C
	}

	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return zero, 0, context.Cause(ctx)
		case <-timerC:
			timerC = nil // tick consumed; the channel is drained
			launch(launched)
			launched++
			outstanding++
			armNext()
		case r := <-results:
			if r.err == nil {
				cancel(ErrHedgeLost)
				return r.val, r.i, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
			if launched < n {
				// A failed attempt frees its hedge slot immediately —
				// waiting out the delay would only add the failure's
				// latency to the next replica's.
				disarm()
				launch(launched)
				launched++
				outstanding++
				armNext()
			} else if outstanding == 0 {
				return zero, 0, firstErr
			}
		}
	}
}
