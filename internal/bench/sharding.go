package bench

import (
	"fmt"
	"time"

	"github.com/impir/impir/internal/cluster"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
)

// ShardScaling models the internal/cluster scale-out layer: the same
// total database carved into 1/2/4/8 contiguous row-range shards, each
// shard cohort scanning only its slice. IM-PIR's all-for-one principle
// makes every query a full-replica scan, so the per-shard per-query
// cost must fall with the shard factor — the cross-box analogue of the
// paper's within-box DPU parallelism. The client pays one sub-query per
// shard (all concurrent, latency = slowest shard), so falling per-shard
// scan time is the cluster's end-to-end latency trajectory.
func ShardScaling(opts Options) *Report {
	r := &Report{
		ID:      "Shard scaling",
		Title:   "Horizontally partitioned PIR: per-shard query cost vs shard count (same total DB)",
		Columns: []string{"Shards", "Shard records", "PIM dpXOR (ms)", "PIM total (ms)", "CPU scan (ms)"},
	}
	const totalGiB = 8.0
	total := recordsFor(totalGiB)
	pimM := paperPIM()
	cpuM := paperCPU()

	shardCounts := []int{1, 2, 4, 8}
	var dpxor, pimTotal, cpuScan []time.Duration
	for _, s := range shardCounts {
		n := total / s // total is a power of two, so shards stay padded
		bd := pimM.phases(n)
		cbd := cpuM.phases(n, 1)
		dpxor = append(dpxor, bd.Modeled[metrics.PhaseDpXOR])
		pimTotal = append(pimTotal, bd.TotalModeled())
		cpuScan = append(cpuScan, cbd.TotalModeled())
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", s), fmt.Sprintf("%d", n),
			fmtMS(bd.Modeled[metrics.PhaseDpXOR]), fmtMS(bd.TotalModeled()), fmtMS(cbd.TotalModeled()),
		})
	}

	decreasing := func(xs []time.Duration) bool {
		for i := 1; i < len(xs); i++ {
			if xs[i] >= xs[i-1] {
				return false
			}
		}
		return true
	}
	r.AddCheck("per-shard dpXOR time decreases with shard count", decreasing(dpxor),
		"1→8 shards: %v → %v", dpxor[0].Round(time.Microsecond), dpxor[len(dpxor)-1].Round(time.Microsecond))
	r.AddCheck("per-shard total query time decreases with shard count", decreasing(pimTotal),
		"1→8 shards: %v → %v", pimTotal[0].Round(time.Microsecond), pimTotal[len(pimTotal)-1].Round(time.Microsecond))
	last := len(shardCounts) - 1
	speedup := float64(cpuScan[0]) / float64(cpuScan[last])
	r.AddCheck("CPU scan speedup tracks the shard factor (scan is linear in shard size)",
		speedup > 0.7*float64(shardCounts[last]),
		"%d shards: %.1fx", shardCounts[last], speedup)
	r.AddNote("model: %g GiB total DB; per-shard cost at N/S records on the paper's PIM and CPU configurations", totalGiB)
	attachShardVerification(r, opts)
	return r
}

// attachShardVerification executes the sharded protocol for real at a
// scaled-down size: the database split by cluster.SplitDB, one CPU
// engine pair per cohort, every cohort answering a well-formed
// sub-query (the owner's real, the rest dummies), reconstruction from
// the owning cohort only — proving the model sits on a working
// partitioned deployment.
func attachShardVerification(r *Report, opts Options) {
	if opts.VerifyRecords <= 0 {
		return
	}
	db, err := database.GenerateHashDB(opts.VerifyRecords, 2026)
	if err != nil {
		r.AddCheck("functional sharded verification", false, "%v", err)
		return
	}
	const target = 7
	want := append([]byte(nil), db.Record(target)...)

	for _, shards := range []int{1, 2, 4} {
		rec, wall, err := shardedRetrieve(db, shards, target)
		if err != nil {
			r.AddCheck(fmt.Sprintf("functional sharded verification (%d shards)", shards), false, "%v", err)
			return
		}
		ok := string(rec) == string(want)
		r.AddCheck(fmt.Sprintf("functional sharded verification (%d shards)", shards), ok,
			"%d records/shard, slowest shard pass %v", db.NumRecords()/shards, wall.Round(time.Microsecond))
	}
}

// shardedRetrieve runs one full sharded retrieval in-process: split,
// plan, per-cohort DPF sub-queries against a two-engine cohort, owner
// reconstruction. Returns the record and the slowest cohort's wall
// time.
func shardedRetrieve(db *database.DB, shards int, target uint64) ([]byte, time.Duration, error) {
	parts, err := cluster.SplitDB(db, shards)
	if err != nil {
		return nil, 0, err
	}
	cohorts := make([][]string, shards)
	for s := range cohorts {
		cohorts[s] = []string{"verify:0", "verify:1"} // placeholder; never dialed
	}
	m, err := cluster.Uniform(uint64(db.NumRecords()), db.RecordSize(), cohorts)
	if err != nil {
		return nil, 0, err
	}
	plan, err := m.PlanQuery(target)
	if err != nil {
		return nil, 0, err
	}

	var rec []byte
	var slowest time.Duration
	for s, part := range parts {
		e0, err := cpupir.New(cpupir.Config{Threads: 2})
		if err != nil {
			return nil, 0, err
		}
		e1, err := cpupir.New(cpupir.Config{Threads: 2})
		if err != nil {
			return nil, 0, err
		}
		if err := e0.LoadDatabase(part); err != nil {
			return nil, 0, err
		}
		if err := e1.LoadDatabase(part.Clone()); err != nil {
			return nil, 0, err
		}
		k0, k1, err := dpf.Gen(dpf.Params{Domain: part.Domain()}, plan.Locals[s], nil)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		r0, _, err := e0.Query(k0)
		if err != nil {
			return nil, 0, err
		}
		r1, _, err := e1.Query(k1)
		if err != nil {
			return nil, 0, err
		}
		if wall := time.Since(start); wall > slowest {
			slowest = wall
		}
		if s == plan.Owner {
			rec = make([]byte, len(r0))
			for i := range rec {
				rec[i] = r0[i] ^ r1[i]
			}
		}
	}
	return rec, slowest, nil
}
