package bench

import "testing"

func TestAblationsPass(t *testing.T) {
	reports := Ablations(Options{})
	if len(reports) != 10 {
		t.Fatalf("got %d ablation reports, want 10 (7 paper ablations + shard scaling + keyword lookup + hedging tail)", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", r.ID)
		}
		for _, c := range r.Checks {
			if !c.OK {
				t.Errorf("%s: %s — %s", r.ID, c.Name, c.Detail)
			}
		}
	}
}
