package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/naivepir"
	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/pimkernel"
	"github.com/impir/impir/internal/singleserver"
)

// The ablations below probe the design choices §3 argues for, beyond the
// paper's numbered figures: the DPF traversal strategy (§3.2), DPU
// pipeline occupancy (§5.2's "16 tasklets"), DPF vs naive query encoding
// (§2.3), single- vs multi-server server cost (Take-away 1), and the two
// batch evaluation schedules (§3.4).

// AblationEvalStrategies measures the four full-domain DPF evaluation
// strategies of §3.2 functionally on the local machine.
func AblationEvalStrategies(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A1",
		Title:   "DPF full-domain evaluation strategies (§3.2), measured locally",
		Columns: []string{"strategy", "domain", "wall (ms)", "vs subtree"},
	}
	const domain = 16
	workers := runtime.GOMAXPROCS(0)
	k0, _, err := dpf.Gen(dpf.Params{Domain: domain}, 12345, nil)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}

	strategies := []dpf.Strategy{
		dpf.StrategySubtree,
		dpf.StrategyMemoryBounded,
		dpf.StrategyLevelByLevel,
		dpf.StrategyBranchParallel,
	}
	times := make(map[dpf.Strategy]time.Duration)
	for _, s := range strategies {
		// Warm-up, then best-of-3 to de-noise the shared machine.
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 4; rep++ {
			start := time.Now()
			if _, err := k0.EvalFull(dpf.FullEvalOptions{Strategy: s, Workers: workers}); err != nil {
				r.AddCheck("evaluation", false, "%v", err)
				return r
			}
			if d := time.Since(start); rep > 0 && d < best {
				best = d
			}
		}
		times[s] = best
	}
	base := times[dpf.StrategySubtree]
	for _, s := range strategies {
		r.Rows = append(r.Rows, []string{
			s.String(), fmt.Sprintf("%d", domain), fmtMS(times[s]),
			fmt.Sprintf("%.2fx", float64(times[s])/float64(base)),
		})
	}
	r.AddCheck("branch-parallel pays the redundant-path penalty (§3.2)",
		times[dpf.StrategyBranchParallel] > 2*times[dpf.StrategySubtree],
		"%.1fx slower than subtree",
		float64(times[dpf.StrategyBranchParallel])/float64(times[dpf.StrategySubtree]))
	r.AddNote("IM-PIR uses the subtree partition; memory-bounded is Lam et al.'s GPU traversal")
	return r
}

// AblationTasklets sweeps the per-DPU tasklet count through the modeled
// dpXOR kernel, reproducing the pipeline-occupancy rationale for running
// 16 tasklets ("above 11 is recommended", §5.2).
func AblationTasklets(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A2",
		Title:   "dpXOR kernel time vs DPU tasklet count (pipeline occupancy)",
		Columns: []string{"tasklets", "modeled kernel (ms)", "vs 16 tasklets"},
	}
	const recordsPerDPU = 16384 // 512 KB chunk: the 1 GiB / 2048 DPU point
	cfg := pim.DefaultConfig()
	ref := time.Duration(0)
	durations := make([]time.Duration, 0, 7)
	taskletCounts := []int{1, 2, 4, 8, 11, 16, 24}
	for _, t := range taskletCounts {
		cfg.TaskletsPerDPU = t
		instr, dma := pimkernel.ModelCost(recordsPerDPU, recordSize, t)
		d := cfg.KernelDuration(instr, dma)
		durations = append(durations, d)
		if t == 16 {
			ref = d
		}
	}
	for i, t := range taskletCounts {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", t), fmtMS(durations[i]),
			fmt.Sprintf("%.2fx", float64(durations[i])/float64(ref)),
		})
	}
	r.AddCheck("kernel time saturates at ≥ 11 tasklets (§5.2)",
		durations[4] < durations[3] && // 11 beats 8
			float64(durations[6])/float64(durations[5]) > 0.95, // 24 ≈ 16
		"11 tasklets %.2f ms, 16 tasklets %.2f ms, 24 tasklets %.2f ms",
		durations[4].Seconds()*1e3, durations[5].Seconds()*1e3, durations[6].Seconds()*1e3)
	r.AddCheck("single tasklet pays the full pipeline bubble (~11x compute)",
		float64(durations[0]) > 3*float64(durations[5]),
		"1 tasklet is %.1fx the 16-tasklet time",
		float64(durations[0])/float64(durations[5]))
	return r
}

// AblationCommunication compares per-server query sizes of the DPF
// encoding (O(λ log N)) against the naive Figure 2 encoding (O(N)).
func AblationCommunication(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A3",
		Title:   "Query communication per server: DPF vs naive secret-sharing (§2.3)",
		Columns: []string{"DB records", "DPF key (bytes)", "naive share (bytes)", "naive/DPF"},
	}
	var lastRatio float64
	for _, domain := range []int{16, 20, 25, 30} {
		n := 1 << domain
		dpfBytes := keyWireSize(domain)
		naiveBytes := n / 8
		lastRatio = float64(naiveBytes) / float64(dpfBytes)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("2^%d", domain),
			fmt.Sprintf("%d", dpfBytes),
			fmt.Sprintf("%d", naiveBytes),
			fmt.Sprintf("%.0fx", lastRatio),
		})
	}
	r.AddCheck("DPF keys are ≥ 10000x smaller at 2^30 records", lastRatio > 1e4,
		"%.0fx", lastRatio)
	r.AddNote("both encodings drive the identical dpXOR scan; internal/naivepir cross-checks the results")
	return r
}

// AblationSingleServer quantifies Take-away 1: the per-record server cost
// of FHE-style single-server PIR (Paillier, §2.2) versus the XOR scan of
// multi-server PIR, measured functionally.
func AblationSingleServer(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A4",
		Title:   "Server cost per record: single-server (homomorphic) vs multi-server (XOR)",
		Columns: []string{"scheme", "records", "server time", "per record"},
	}
	const numRecords = 64
	db, err := database.GenerateHashDB(numRecords, 3)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}

	// Single-server: Paillier homomorphic dot product.
	client, err := singleserver.NewClient(nil, 512)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}
	srv, err := singleserver.NewServer(db)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}
	q, err := client.BuildQuery(7, numRecords)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}
	resp, err := srv.Answer(q)
	if err != nil {
		r.AddCheck("single-server answer", false, "%v", err)
		return r
	}
	singlePerRecord := resp.ServerTime / numRecords

	// Multi-server: one server's XOR scan over a much larger database,
	// normalised per record.
	const xorRecords = 1 << 18
	bigDB, err := database.GenerateHashDB(xorRecords, 4)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}
	nq, err := naivepir.Gen(nil, xorRecords, 12345, 2)
	if err != nil {
		r.AddCheck("setup", false, "%v", err)
		return r
	}
	start := time.Now()
	if _, err := naivepir.Answer(bigDB, nq.Shares[0]); err != nil {
		r.AddCheck("multi-server answer", false, "%v", err)
		return r
	}
	xorTime := time.Since(start)
	xorPerRecord := xorTime / xorRecords

	r.Rows = append(r.Rows, []string{
		"single-server (Paillier-512)", fmt.Sprintf("%d", numRecords),
		resp.ServerTime.Round(time.Microsecond).String(),
		singlePerRecord.Round(time.Nanosecond).String(),
	})
	r.Rows = append(r.Rows, []string{
		"multi-server (XOR scan)", fmt.Sprintf("%d", xorRecords),
		xorTime.Round(time.Microsecond).String(),
		xorPerRecord.Round(time.Nanosecond).String(),
	})
	ratio := float64(singlePerRecord) / float64(max64(int64(xorPerRecord), 1))
	r.AddCheck("homomorphic per-record cost ≥ 100x the XOR per-record cost (Take-away 1)",
		ratio >= 100, "%.0fx", ratio)
	r.AddNote("lightweight XOR work is what maps onto PIM DPUs; modular exponentiation does not")
	return r
}

// AblationEvalModes compares the two §3.4 batch-evaluation schedules
// through the modeled pipeline at 1 GiB.
func AblationEvalModes(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A5",
		Title:   "Batch evaluation scheduling (§3.4): per-key workers vs per-query-parallel",
		Columns: []string{"batch", "per-key workers (QPS)", "per-query-parallel (QPS)"},
	}
	n := recordsFor(1)
	perKey := paperPIM()
	perKey.EvalMode = impir.EvalPerKeyWorkers
	perQuery := paperPIM()
	perQuery.EvalMode = impir.EvalPerQueryParallel

	var convergeHigh, convergeLow float64
	for _, b := range []int{4, 16, 64, 256} {
		mk, _ := perKey.batch(n, b)
		mq, _ := perQuery.batch(n, b)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", b), fmtQPS(qps(b, mk)), fmtQPS(qps(b, mq)),
		})
		if b == 256 {
			convergeHigh = qps(b, mq)
			convergeLow = qps(b, mk)
		}
	}
	r.AddCheck("both schedules converge at large batches (same aggregate resources)",
		convergeHigh/convergeLow < 1.4 && convergeLow/convergeHigh < 1.4,
		"batch 256: %.0f vs %.0f QPS", convergeLow, convergeHigh)
	r.AddNote("per-query-parallel fills the pipeline faster at small batches; " +
		"per-key workers avoid intra-eval synchronisation")
	return r
}

// AblationResidentVsBatched quantifies the value of §3.3's database
// preloading by comparing the modeled per-query cost of the resident
// ("one-shot") mode against the streaming fallback that restages the
// database through MRAM on every query.
func AblationResidentVsBatched(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A6",
		Title:   "Database preloading (§3.3): resident one-shot vs per-query streaming",
		Columns: []string{"DB (GB)", "resident query (ms)", "streamed query (ms)", "penalty"},
	}
	pm := paperPIM()
	cfg := pm.PIM
	var worst float64
	for _, sizeGB := range []float64{1, 4, 16} {
		n := recordsFor(sizeGB)
		bd := pm.phases(n)
		resident := bd.TotalModeled()

		// Streaming adds one full-database CPU→DPU transfer per query.
		staging := cfg.HostToDPUDuration(dbBytes(n), cfg.Ranks)
		streamed := resident + staging

		penalty := float64(streamed) / float64(resident)
		if penalty > worst {
			worst = penalty
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", sizeGB), fmtMS(resident), fmtMS(streamed),
			fmt.Sprintf("%.1fx", penalty),
		})
	}
	r.AddCheck("restaging the DB per query is ruinous (why IM-PIR preloads)",
		worst > 5, "up to %.1fx slower", worst)
	r.AddNote("the engine falls back to streaming automatically when the DB exceeds " +
		"aggregate MRAM, trading this penalty for unbounded database size")
	return r
}

// AblationBandwidthScaling reproduces the §2.4 bandwidth story with the
// Stream probe kernel: per-DPU MRAM bandwidth is fixed (≈700 MB/s), so
// aggregate bandwidth scales linearly to TB/s across the machine — the
// property the CPU's shared memory bus cannot match. The small points run
// functionally on the simulator; the full-machine points use the same
// analytic model the simulator charges.
func AblationBandwidthScaling(opts Options) *Report {
	r := &Report{
		ID:      "Ablation A7",
		Title:   "Aggregate MRAM bandwidth vs DPU count (§2.4, STREAM-style probe)",
		Columns: []string{"DPUs", "aggregate bandwidth", "source"},
	}
	const perDPUBytes = 1 << 20

	// Functional points: launch the probe on real simulated DPUs.
	var funcBW []float64
	for _, dpus := range []int{1, 4, 16} {
		cfg := pim.DefaultConfig()
		cfg.Ranks = 1
		cfg.DPUsPerRank = dpus
		cfg.MRAMPerDPU = 2 * perDPUBytes
		cfg.LaunchOverhead = 0
		sys, err := pim.NewSystem(cfg)
		if err != nil {
			r.AddCheck("setup", false, "%v", err)
			return r
		}
		ids := make([]int, dpus)
		args := make([][]byte, dpus)
		for i := range ids {
			ids[i] = i
			if err := sys.Preload(i, 0, make([]byte, perDPUBytes)); err != nil {
				r.AddCheck("setup", false, "%v", err)
				return r
			}
			args[i] = pimkernel.StreamArgs{Offset: 0, Length: perDPUBytes, OutOffset: perDPUBytes}.Marshal()
		}
		cost, err := sys.Launch(ids, pimkernel.Stream{}, args)
		if err != nil {
			r.AddCheck("stream launch", false, "%v", err)
			return r
		}
		bw := float64(dpus) * perDPUBytes / cost.Modeled.Seconds()
		funcBW = append(funcBW, bw)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", dpus), fmtBW(bw), "functional simulation",
		})
	}

	// Full-machine points from the same analytic charge formulas.
	cfg := pim.DefaultConfig()
	instr := int64(perDPUBytes / 8 * 1) // cyclesPerStreamWord = 1
	perDPU := cfg.KernelDuration(instr, perDPUBytes) - cfg.LaunchOverhead
	var fullBW float64
	for _, dpus := range []int{256, 2048, 2560} {
		bw := float64(dpus) * perDPUBytes / perDPU.Seconds()
		fullBW = bw
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", dpus), fmtBW(bw), "analytic (same model)",
		})
	}

	scaling := funcBW[2] / funcBW[0]
	r.AddCheck("bandwidth scales linearly with DPU count",
		scaling > 14 && scaling < 18,
		"1→16 DPUs: %.0f→%.0f MB/s (%.1fx)", funcBW[0]/1e6, funcBW[2]/1e6, scaling)
	r.AddCheck("full machine reaches TB/s aggregate (§2.4: ≈1.8–2 TB/s)",
		fullBW > 1.2e12 && fullBW < 2.2e12, "%.2f TB/s at 2560 DPUs", fullBW/1e12)
	r.AddNote("a dual-socket CPU tops out near 0.06 TB/s of DRAM bandwidth — the ~30x " +
		"gap is the memory-wall argument of §1/§2.4")
	return r
}

func fmtBW(bytesPerSec float64) string {
	switch {
	case bytesPerSec >= 1e12:
		return fmt.Sprintf("%.2f TB/s", bytesPerSec/1e12)
	case bytesPerSec >= 1e9:
		return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
	default:
		return fmt.Sprintf("%.0f MB/s", bytesPerSec/1e6)
	}
}

// Ablations runs all ablation experiments.
func Ablations(opts Options) []*Report {
	return []*Report{
		AblationEvalStrategies(opts),
		AblationTasklets(opts),
		AblationCommunication(opts),
		AblationSingleServer(opts),
		AblationEvalModes(opts),
		AblationResidentVsBatched(opts),
		AblationBandwidthScaling(opts),
		ShardScaling(opts),
		KeywordLookup(opts),
		HedgingTail(opts),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
