package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllFiguresReproduceShapes is the reproduction gate: every check in
// every regenerated figure/table must pass.
func TestAllFiguresReproduceShapes(t *testing.T) {
	reports := All(Options{VerifyRecords: 512})
	if len(reports) != 13 {
		t.Fatalf("got %d reports, want 13 (12 figures + Table 1)", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) == 0 {
			t.Errorf("%s: no data rows", r.ID)
		}
		for _, c := range r.Checks {
			if !c.OK {
				t.Errorf("%s: check failed: %s — %s", r.ID, c.Name, c.Detail)
			}
		}
		if !r.AllChecksPass() {
			t.Errorf("%s: AllChecksPass() = false", r.ID)
		}
	}
}

// TestShardScalingShapes: the cluster scale-out experiment's checks —
// monotonically falling per-shard cost and a real sharded retrieval at
// 1/2/4 shards — must all pass.
func TestShardScalingShapes(t *testing.T) {
	r := ShardScaling(Options{VerifyRecords: 512})
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 shard counts", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.Errorf("check failed: %s — %s", c.Name, c.Detail)
		}
	}
}

// TestKeywordLookupShapes: the keyword-retrieval experiment's checks —
// a held load-factor target, a negligible constant stash, a constant
// per-key probe count, and a real hit/miss verification through an
// engine pair — must all pass.
func TestKeywordLookupShapes(t *testing.T) {
	r := KeywordLookup(Options{VerifyRecords: 512})
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 table sizes", len(r.Rows))
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.Errorf("check failed: %s — %s", c.Name, c.Detail)
		}
	}
	hitChecked := false
	for _, c := range r.Checks {
		if strings.Contains(c.Name, "hit") {
			hitChecked = true
		}
	}
	if !hitChecked {
		t.Error("functional hit verification missing from the report")
	}
}

// TestBatchFuseShapes: the fused one-pass batch dpXOR experiment — the
// measured fused-vs-unfused kernel comparison, the modeled engine
// cross-checks, and the per-engine bit-exactness verification — must
// all pass.
func TestBatchFuseShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("measured 64 MiB scan comparison; skipped in -short")
	}
	r := BatchFuse(Options{VerifyRecords: 512})
	if len(r.Rows) != len(batchFuseSizes) {
		t.Fatalf("got %d rows, want %d batch sizes", len(r.Rows), len(batchFuseSizes))
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.Errorf("check failed: %s — %s", c.Name, c.Detail)
		}
	}
}

func TestReportPrint(t *testing.T) {
	r := Fig3a(Options{})
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 3a", "DB (GB)", "Eval", "dpXOR", "[PASS]"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed report missing %q:\n%s", want, out)
		}
	}
}

func TestReportCheckFailureRendered(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Columns: []string{"a"}}
	r.AddCheck("never true", false, "detail %d", 42)
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "[FAIL] never true — detail 42") {
		t.Errorf("failure not rendered: %s", buf.String())
	}
	if r.AllChecksPass() {
		t.Error("AllChecksPass with failing check")
	}
}

func TestVerifyFunctional(t *testing.T) {
	note, err := verifyFunctional(256)
	if err != nil {
		t.Fatalf("verifyFunctional: %v", err)
	}
	if !strings.Contains(note, "engines agree") {
		t.Errorf("note = %q", note)
	}
}

func TestRecordsFor(t *testing.T) {
	// 1 GiB / 32 B = 2^25 records exactly.
	if n := recordsFor(1); n != 1<<25 {
		t.Errorf("recordsFor(1) = %d, want %d", n, 1<<25)
	}
	// Non-power-of-two sizes round up.
	if n := recordsFor(0.75); n != 1<<25 {
		t.Errorf("recordsFor(0.75) = %d, want %d (padded)", n, 1<<25)
	}
	if domainOf(1<<25) != 25 {
		t.Errorf("domainOf(2^25) = %d", domainOf(1<<25))
	}
}

func TestModelsInternallyConsistent(t *testing.T) {
	// The modeled batch makespan can never beat the heavier stage's
	// serial time, and must be at most the fully serial time.
	pm := paperPIM()
	n := recordsFor(1)
	bd := pm.phases(n)
	perQuery := bd.TotalModeled()
	const batch = 64
	makespan, _ := pm.batch(n, batch)
	if makespan > perQuery*batch {
		t.Errorf("pipelined makespan %v exceeds serial %v", makespan, perQuery*batch)
	}
	if makespan <= 0 {
		t.Error("empty makespan")
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{3, 1, 2}
	if minF(xs) != 1 || maxF(xs) != 3 || avgF(xs) != 2 {
		t.Errorf("helpers wrong: min=%v max=%v avg=%v", minF(xs), maxF(xs), avgF(xs))
	}
}
