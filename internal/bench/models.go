package bench

import (
	"time"

	"github.com/impir/impir/internal/gpupir"
	"github.com/impir/impir/internal/hostmodel"
	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/pimkernel"
)

// recordSize is the paper's record size: one SHA-256 digest.
const recordSize = 32

const gib = float64(1 << 30)

// recordsFor converts a database size in GiB to a power-of-two-padded
// record count (the engines pad, so the models must too).
func recordsFor(sizeGiB float64) int {
	n := int(sizeGiB * gib / recordSize)
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// dbBytes is the padded database size in bytes.
func dbBytes(n int) int64 { return int64(n) * recordSize }

// keyWireSize mirrors the dpf key encoding: 25-byte header plus 17 bytes
// per tree level.
func keyWireSize(domain int) int { return 25 + 17*domain }

func domainOf(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}

// pimModel evaluates IM-PIR's per-query phase durations on the paper's
// hardware for a given configuration, mirroring exactly what the engine
// charges per phase during functional execution.
type pimModel struct {
	PIM         pim.Config
	Host        hostmodel.Model
	DPUs        int
	Clusters    int
	EvalWorkers int
	EvalMode    impir.EvalMode
}

// paperPIM returns the §5.2 IM-PIR configuration: 2048 DPUs at 350 MHz,
// 16 tasklets, and the §3.2 subtree-parallel host evaluation across all
// host threads — query i+1's evaluation overlaps query i's dpXOR, the
// pipelining that keeps IM-PIR's throughput flat across batch sizes
// (Fig. 9b).
func paperPIM() pimModel {
	host := hostmodel.PIMHost()
	return pimModel{
		PIM:         pim.DefaultConfig(),
		Host:        host,
		DPUs:        2048,
		Clusters:    1,
		EvalWorkers: host.Threads,
		EvalMode:    impir.EvalPerQueryParallel,
	}
}

// phases returns one query's modeled per-phase durations.
func (m pimModel) phases(numRecords int) metrics.Breakdown {
	var bd metrics.Breakdown
	dpusPerCluster := m.DPUs / m.Clusters
	ranksPerCluster := m.PIM.Ranks * dpusPerCluster / m.PIM.NumDPUs()
	if ranksPerCluster < 1 {
		ranksPerCluster = 1
	}
	recordsPerDPU := (numRecords + dpusPerCluster - 1) / dpusPerCluster
	recordsPerDPU = (recordsPerDPU + 63) / 64 * 64

	evalThreads := 1
	if m.EvalMode == impir.EvalPerQueryParallel {
		evalThreads = m.EvalWorkers
	}
	bd.AddPhase(metrics.PhaseEval, 0, m.Host.EvalDuration(uint64(numRecords), evalThreads))
	bd.AddPhase(metrics.PhaseCopyToPIM, 0,
		m.PIM.HostToDPUDuration(int64(numRecords)/8, ranksPerCluster))
	instr, dma := pimkernel.ModelCost(recordsPerDPU, recordSize, m.PIM.TaskletsPerDPU)
	bd.AddPhase(metrics.PhaseDpXOR, 0, m.PIM.KernelDuration(instr, dma))
	bd.AddPhase(metrics.PhaseCopyToHost, 0,
		m.PIM.DPUToHostDuration(int64(dpusPerCluster)*recordSize, ranksPerCluster))
	bd.AddPhase(metrics.PhaseAggregate, 0, m.Host.XORFoldDuration(dpusPerCluster, recordSize))
	return bd
}

// batch returns the modeled makespan of a batch through the Fig. 8
// pipeline and the per-query breakdown.
func (m pimModel) batch(numRecords, batchSize int) (time.Duration, metrics.Breakdown) {
	bd := m.phases(numRecords)
	evalDur := make([]time.Duration, batchSize)
	pimDur := make([]time.Duration, batchSize)
	perPIM := bd.TotalModeled() - bd.Modeled[metrics.PhaseEval]
	for i := range evalDur {
		evalDur[i] = bd.Modeled[metrics.PhaseEval]
		pimDur[i] = perPIM
	}
	makespan := impir.ModeledMakespan(m.EvalMode, m.EvalWorkers, m.Clusters, evalDur, pimDur)
	return makespan, bd
}

// cpuModel evaluates the CPU baseline on the paper's baseline server.
type cpuModel struct {
	Host hostmodel.Model
}

func paperCPU() cpuModel { return cpuModel{Host: hostmodel.CPUPIRBaseline()} }

// phases returns one query's modeled durations with `concurrent` queries
// in flight (the batch contention level).
func (m cpuModel) phases(numRecords, concurrent int) metrics.Breakdown {
	var bd metrics.Breakdown
	bd.AddPhase(metrics.PhaseEval, 0, m.Host.EvalDuration(uint64(numRecords), 1))
	bd.AddPhase(metrics.PhaseDpXOR, 0, m.Host.ScanDuration(dbBytes(numRecords), concurrent))
	return bd
}

// batch returns the modeled batch makespan: ⌈B/threads⌉ rounds of
// `threads` concurrent single-thread queries.
func (m cpuModel) batch(numRecords, batchSize int) (time.Duration, metrics.Breakdown) {
	concurrent := m.Host.Threads
	if concurrent > batchSize {
		concurrent = batchSize
	}
	bd := m.phases(numRecords, concurrent)
	rounds := (batchSize + m.Host.Threads - 1) / m.Host.Threads
	return time.Duration(rounds) * bd.TotalModeled(), bd
}

// gpuModel evaluates the GPU baseline on the modeled RTX 4090.
type gpuModel struct {
	GPU gpupir.Config
}

func paperGPU() gpuModel {
	cfg := gpupir.DefaultConfig()
	return gpuModel{GPU: cfg}
}

func (m gpuModel) phases(numRecords int) metrics.Breakdown {
	var bd metrics.Breakdown
	domain := domainOf(numRecords)
	bd.AddPhase(metrics.PhaseCopyToPIM, 0, m.GPU.UploadDuration(keyWireSize(domain)))
	bd.AddPhase(metrics.PhaseEval, 0, m.GPU.EvalDuration(uint64(numRecords)))
	bd.AddPhase(metrics.PhaseDpXOR, 0, m.GPU.ScanDuration(dbBytes(numRecords)))
	bd.AddPhase(metrics.PhaseCopyToHost, 0, m.GPU.DownloadDuration(recordSize))
	return bd
}

// batch models CUDA-stream overlap: eval of query i+1 overlaps the scan
// of query i, so the makespan is the heavier stage.
func (m gpuModel) batch(numRecords, batchSize int) (time.Duration, metrics.Breakdown) {
	bd := m.phases(numRecords)
	evalStage := (bd.Modeled[metrics.PhaseEval] + bd.Modeled[metrics.PhaseCopyToPIM]) * time.Duration(batchSize)
	scanStage := (bd.Modeled[metrics.PhaseDpXOR] + bd.Modeled[metrics.PhaseCopyToHost]) * time.Duration(batchSize)
	if evalStage > scanStage {
		return evalStage, bd
	}
	return scanStage, bd
}

func qps(batch int, makespan time.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(batch) / makespan.Seconds()
}
