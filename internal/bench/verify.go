package bench

import (
	"bytes"
	"fmt"
	"time"

	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/gpupir"
	"github.com/impir/impir/internal/hostmodel"
	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/pim"
)

// verifyEngine is the minimal engine surface the verifier needs.
type verifyEngine interface {
	Name() string
	LoadDatabase(*database.DB) error
	Query(*dpf.Key) ([]byte, metrics.Breakdown, error)
}

// verifyFunctional executes the full protocol on a scaled database with
// all three engines and cross-checks: (a) two-server reconstruction
// returns the right record, (b) all engines produce byte-identical
// subresults for the same key. It returns a summary of measured wall
// times, proving the models in this package sit on a real implementation.
func verifyFunctional(numRecords int) (string, error) {
	db, err := database.GenerateHashDB(numRecords, 2025)
	if err != nil {
		return "", err
	}

	pimCfg := impir.DefaultConfig()
	pimCfg.PIM = pim.DefaultConfig()
	pimCfg.PIM.Ranks = 2
	pimCfg.PIM.DPUsPerRank = 8
	pimCfg.PIM.TaskletsPerDPU = 8
	pimCfg.DPUs = 16
	pimCfg.EvalWorkers = 2
	pimCfg.Host = hostmodel.PIMHost()
	pimEng, err := impir.New(pimCfg)
	if err != nil {
		return "", err
	}
	cpuEng, err := cpupir.New(cpupir.Config{Threads: 2})
	if err != nil {
		return "", err
	}
	gpuEng, err := gpupir.New(gpupir.Config{})
	if err != nil {
		return "", err
	}

	engines := []verifyEngine{pimEng, cpuEng, gpuEng}
	for _, e := range engines {
		if err := e.LoadDatabase(db); err != nil {
			return "", fmt.Errorf("%s: load: %w", e.Name(), err)
		}
	}

	idx := uint64(numRecords / 3)
	domain := db.PadToPowerOfTwo().Domain()
	k0, k1, err := dpf.Gen(dpf.Params{Domain: domain}, idx, nil)
	if err != nil {
		return "", err
	}

	// (b) cross-engine agreement on the same key.
	var subresults [][]byte
	var walls []time.Duration
	for _, e := range engines {
		start := time.Now()
		r, _, err := e.Query(k0)
		if err != nil {
			return "", fmt.Errorf("%s: query: %w", e.Name(), err)
		}
		walls = append(walls, time.Since(start))
		subresults = append(subresults, r)
	}
	for i := 1; i < len(subresults); i++ {
		if !bytes.Equal(subresults[0], subresults[i]) {
			return "", fmt.Errorf("engines %s and %s disagree on subresult",
				engines[0].Name(), engines[i].Name())
		}
	}

	// (a) two-server reconstruction through the PIM engine.
	r0, _, err := pimEng.Query(k0)
	if err != nil {
		return "", err
	}
	r1, _, err := pimEng.Query(k1)
	if err != nil {
		return "", err
	}
	rec := make([]byte, len(r0))
	for i := range rec {
		rec[i] = r0[i] ^ r1[i]
	}
	if !bytes.Equal(rec, db.Record(int(idx))) {
		return "", fmt.Errorf("two-server reconstruction failed at index %d", idx)
	}

	return fmt.Sprintf("N=%d records: engines agree bit-exactly; reconstruction correct; "+
		"local wall per query: pim-sim %v, cpu %v, gpu-sim %v",
		numRecords, walls[0].Round(time.Microsecond), walls[1].Round(time.Microsecond),
		walls[2].Round(time.Microsecond)), nil
}
