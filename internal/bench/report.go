// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each runner produces a Report holding the same rows or
// series the paper plots, computed from the calibrated hardware models at
// the paper's database sizes, plus a functional verification run at a
// scaled-down size proving the code actually executes the protocol it is
// modelling.
//
// Two layers per experiment:
//
//  1. Model layer: the per-phase cost models (hostmodel, pim.Config,
//     pimkernel.ModelCost, gpupir.Config) are evaluated at the paper's
//     configuration — 0.5–32 GB databases, 2048 DPUs, 32-thread baseline
//     — which no laptop could execute functionally. These produce the
//     reported series.
//  2. Verification layer: the same engines run for real on a small
//     database; the harness checks end-to-end reconstruction and records
//     wall-clock numbers, demonstrating the models sit on top of a
//     working implementation rather than a spreadsheet.
package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the paper artefact ("Figure 9a", "Table 1", …).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the table header.
	Columns []string
	// Rows are the data series, one row per x-axis point.
	Rows [][]string
	// Checks are the paper-shape assertions evaluated on the data.
	Checks []Check
	// Notes carry configuration details and verification results.
	Notes []string
}

// Check is one paper-shape criterion evaluated against the modeled data.
type Check struct {
	// Name states the expectation, quoting the paper where possible.
	Name string
	// OK reports whether the regenerated data satisfies it.
	OK bool
	// Detail quantifies the observation.
	Detail string
}

// AddCheck records a shape assertion.
func (r *Report) AddCheck(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// AddNote appends a free-form note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AllChecksPass reports whether every shape criterion held.
func (r *Report) AllChecksPass() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// WriteCSV emits the report's data series as CSV (header + rows) for
// external plotting tools to regenerate the paper's figures graphically.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return fmt.Errorf("bench: write csv header: %w", err)
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("bench: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReportSchema versions the machine-readable report form emitted by
// WriteJSON / impir-bench -json.
const ReportSchema = "impir-bench/1"

// reportJSON is the wire shape of one report: the same fields Print
// renders, with stable lower-case keys and an explicit schema tag so
// downstream tooling can detect format drift.
type reportJSON struct {
	Schema  string      `json:"schema"`
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Columns []string    `json:"columns"`
	Rows    [][]string  `json:"rows"`
	Checks  []checkJSON `json:"checks,omitempty"`
	Notes   []string    `json:"notes,omitempty"`
	AllPass bool        `json:"all_checks_pass"`
}

type checkJSON struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// MarshalJSON emits the report in its versioned machine-readable form.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Schema:  ReportSchema,
		ID:      r.ID,
		Title:   r.Title,
		Columns: r.Columns,
		Rows:    r.Rows,
		Notes:   r.Notes,
		AllPass: r.AllChecksPass(),
	}
	for _, c := range r.Checks {
		out.Checks = append(out.Checks, checkJSON(c))
	}
	return json.Marshal(out)
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FileStem returns a filesystem-friendly name for the report
// ("figure-9a", "table-1", "ablation-a3").
func (r *Report) FileStem() string {
	stem := strings.ToLower(r.ID)
	stem = strings.ReplaceAll(stem, " ", "-")
	return stem
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)

	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s — %s\n", status, c.Name, c.Detail)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
