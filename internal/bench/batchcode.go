package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/impir/impir/internal/batchcode"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/keyword"
)

// batchCodeSizes is the measured batch-size axis.
var batchCodeSizes = []int{1, 2, 4, 8, 16, 32}

// BatchCode measures the multi-message batch code's per-server win: a
// B-record RetrieveBatch against an uncoded sharded deployment lands B
// full-domain sub-queries on EVERY shard server (real on the owner,
// dummies elsewhere — the fan-out privacy invariant), while the coded
// deployment lands a constant buckets/shards + overflow sub-queries per
// server whatever B is.
//
// The comparison holds per-server storage fixed — the honest framing of
// a probabilistic batch code, which buys its constant shape with an
// r-way storage blow-up spread over r× the servers: both measured
// servers hold an identical 64 MiB shard and run the same engine with
// the same fusion and parallelism, so the gap is purely the sub-query
// count, which is the code's whole contribution. Cost model per server:
// B (uncoded) vs C/S+cap (coded) full-domain DPF evaluations plus one
// fused scan of the resident shard.
func BatchCode(opts Options) *Report {
	r := &Report{
		ID:    "Batch code",
		Title: "Multi-message batches: coded vs uncoded per-server cost (measured, 64 MiB shard)",
		Columns: []string{"Batch B", "Uncoded/server (ms)", "Coded/server (ms)",
			"Speedup", "Sub-queries/server"},
	}

	// The deployment story: 2^23 logical records × 32 B sharded 4 ways
	// uncoded (2^21 rows = 64 MiB per server) vs the r=2 coded layout in
	// C=8 buckets over 8 servers (one bucket per server, again 2^21 rows
	// = 64 MiB). Each measured server is one representative of its fleet.
	const (
		shardRows     = 1 << 21
		recSize       = recordSize
		codedPerBatch = 2 // buckets/shards (=1) + overflow slots (=1)
	)
	workers := runtime.GOMAXPROCS(0)

	newServer := func(seed int64) (*cpupir.Engine, *database.DB, error) {
		db, err := database.New(shardRows, recSize)
		if err != nil {
			return nil, nil, err
		}
		rand.New(rand.NewSource(seed)).Read(db.Data())
		eng, err := cpupir.New(cpupir.Config{Threads: workers})
		if err != nil {
			return nil, nil, err
		}
		if err := eng.LoadDatabase(db); err != nil {
			return nil, nil, err
		}
		return eng, db, nil
	}
	uncoded, udb, err := newServer(2028)
	if err != nil {
		r.AddCheck("measured servers start", false, "%v", err)
		return r
	}
	coded, cdb, err := newServer(2029)
	if err != nil {
		r.AddCheck("measured servers start", false, "%v", err)
		return r
	}

	genKeys := func(db *database.DB, n int) ([]*dpf.Key, error) {
		keys := make([]*dpf.Key, n)
		for i := range keys {
			k0, _, err := dpf.Gen(dpf.Params{Domain: db.Domain()}, uint64(i*131)%uint64(db.NumRecords()), nil)
			if err != nil {
				return nil, err
			}
			keys[i] = k0
		}
		return keys, nil
	}
	maxB := batchCodeSizes[len(batchCodeSizes)-1]
	uncodedKeys, err := genKeys(udb, maxB)
	if err == nil {
		var ck []*dpf.Key
		ck, err = genKeys(cdb, codedPerBatch)
		if err == nil {
			// Warm both engines (page-in, allocator steady state) so the
			// first measured pass is not charged the process cold start.
			coded.QueryBatch(ck)
			uncoded.QueryBatch(uncodedKeys[:1])
			// The coded server's work is constant in B by construction.
			codedBest := measureBest(3, func() error {
				_, _, qerr := coded.QueryBatch(ck)
				return qerr
			})
			if codedBest < 0 {
				err = fmt.Errorf("coded QueryBatch failed")
			} else {
				var perB []time.Duration
				for _, b := range batchCodeSizes {
					uncodedBest := measureBest(2, func() error {
						_, _, qerr := uncoded.QueryBatch(uncodedKeys[:b])
						return qerr
					})
					if uncodedBest < 0 {
						err = fmt.Errorf("uncoded QueryBatch failed at B=%d", b)
						break
					}
					perB = append(perB, uncodedBest)
					r.Rows = append(r.Rows, []string{
						fmt.Sprintf("%d", b), fmtMS(uncodedBest), fmtMS(codedBest),
						fmt.Sprintf("%.2fx", float64(uncodedBest)/float64(codedBest)),
						fmt.Sprintf("%d vs %d", b, codedPerBatch),
					})
				}
				if err == nil {
					idx8 := indexOf(batchCodeSizes, 8)
					r.AddCheck("coded per-server time at B=8 is ≤ 0.5× uncoded (the ≥2× win)",
						codedBest*2 <= perB[idx8],
						"coded %v vs uncoded %v per batch",
						codedBest.Round(10*time.Microsecond), perB[idx8].Round(10*time.Microsecond))
					rising := true
					for i := 1; i < len(perB); i++ {
						if perB[i] <= perB[i-1] {
							rising = false
						}
					}
					r.AddCheck("uncoded per-server cost grows with B while the coded cost is constant",
						rising, "uncoded B=1 %v → B=%d %v; coded constant %v",
						perB[0].Round(10*time.Microsecond), maxB,
						perB[len(perB)-1].Round(10*time.Microsecond), codedBest.Round(10*time.Microsecond))

					// Keyword lookups ride the same path: one Get issues
					// ProbesPerKey() sub-queries per server uncoded, the
					// constant coded shape after.
					if kt, kerr := keyword.BuildTable(keyword.GeneratePairs(512, 2028), keyword.Options{Seed: 2028}); kerr == nil {
						probes := kt.Manifest.ProbesPerKey()
						kKeys, gerr := genKeys(udb, probes)
						if gerr == nil {
							kwBefore := measureBest(2, func() error {
								_, _, qerr := uncoded.QueryBatch(kKeys)
								return qerr
							})
							if kwBefore > 0 {
								r.Rows = append(r.Rows, []string{
									fmt.Sprintf("Get (%d probes)", probes), fmtMS(kwBefore), fmtMS(codedBest),
									fmt.Sprintf("%.2fx", float64(kwBefore)/float64(codedBest)),
									fmt.Sprintf("%d vs %d", probes, codedPerBatch),
								})
								r.AddCheck("keyword Get rides the coded path cheaper than its uncoded probe batch",
									codedBest < kwBefore, "coded %v vs uncoded %v",
									codedBest.Round(10*time.Microsecond), kwBefore.Round(10*time.Microsecond))
							}
						}
					}
				}
			}
		}
	}
	if err != nil {
		r.AddCheck("measured coded-vs-uncoded sweep runs", false, "%v", err)
		return r
	}
	r.AddNote("measured: two identical servers (%d × %d B = %.0f MiB resident shard, %d threads, warmed, best-of runs); "+
		"uncoded = B full-domain sub-queries per server (cluster fan-out), coded = %d (one bucket + one overflow slot); "+
		"the code pays r=2× storage across 2× the servers for the constant shape",
		shardRows, recSize, float64(shardRows*recSize)/(1<<20), workers, codedPerBatch)

	attachBatchCodeVerification(r, opts)
	return r
}

// attachBatchCodeVerification proves the measured shape sits on a
// working code: a real Derive→Encode→PlanBatch round decodes every batch
// byte-identically from the coded database at a constant query count.
func attachBatchCodeVerification(r *Report, opts Options) {
	if opts.VerifyRecords <= 0 {
		return
	}
	n := opts.VerifyRecords
	db, err := database.GenerateHashDB(n, 2028)
	if err != nil {
		r.AddCheck("functional batch-code verification", false, "%v", err)
		return
	}
	m, err := batchcode.Derive(uint64(n), db.RecordSize(), 8, 2, 2, 64, 42)
	if err != nil {
		r.AddCheck("functional batch-code verification", false, "Derive: %v", err)
		return
	}
	coded, err := batchcode.Encode(db, m)
	if err != nil {
		r.AddCheck("functional batch-code verification", false, "Encode: %v", err)
		return
	}
	layout, err := batchcode.NewLayout(m)
	if err != nil {
		r.AddCheck("functional batch-code verification", false, "NewLayout: %v", err)
		return
	}

	want := m.QueriesPerBatch()
	rng := rand.New(rand.NewSource(2028))
	for trial := 0; trial < 20; trial++ {
		b := 1 + rng.Intn(8)
		indices := make([]uint64, b)
		for i := range indices {
			indices[i] = uint64(rng.Intn(n))
		}
		plan, ok, err := layout.PlanBatch(indices, nil)
		if err != nil || !ok {
			r.AddCheck("functional batch-code verification", false,
				"trial %d: PlanBatch(B=%d) ok=%v err=%v", trial, b, ok, err)
			return
		}
		if len(plan.Indices) != want {
			r.AddCheck("functional batch-code verification", false,
				"trial %d: %d sub-queries, want constant %d", trial, len(plan.Indices), want)
			return
		}
		// Decode straight from the coded database, as a server answer would.
		out := make([][]byte, b)
		for i, src := range plan.Sources {
			switch src.Kind {
			case batchcode.FromSlot:
				out[i] = coded.Record(int(plan.Indices[src.Slot]))
			case batchcode.FromDup:
				out[i] = out[src.Dup]
			}
		}
		for i, idx := range indices {
			if !bytes.Equal(out[i], db.Record(int(idx))) {
				r.AddCheck("functional batch-code verification", false,
					"trial %d: batch position %d (index %d) decodes wrong bytes", trial, i, idx)
				return
			}
		}
	}
	r.AddCheck("functional batch-code verification", true,
		"20 random batches decode byte-identically at a constant %d sub-queries (C=%d, r=%d, cap=%d)",
		want, m.Buckets, m.Choices, m.OverflowSlots)
}
