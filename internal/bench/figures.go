package bench

import (
	"fmt"
	"time"

	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/roofline"
)

// Options configures the experiment runners.
type Options struct {
	// VerifyRecords sets the scaled database size (in records) for the
	// functional verification layer; 0 skips verification.
	VerifyRecords int
}

// DefaultOptions verifies on a 4096-record database.
func DefaultOptions() Options { return Options{VerifyRecords: 1 << 12} }

func fmtMS(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
func fmtS(d time.Duration) string  { return fmt.Sprintf("%.3f", d.Seconds()) }
func fmtQPS(v float64) string      { return fmt.Sprintf("%.1f", v) }

func attachVerification(r *Report, opts Options) {
	if opts.VerifyRecords <= 0 {
		return
	}
	note, err := verifyFunctional(opts.VerifyRecords)
	if err != nil {
		r.AddCheck("functional verification (scaled DB)", false, "%v", err)
		return
	}
	r.AddCheck("functional verification (scaled DB)", true, "%s", note)
}

// Fig3a regenerates Figure 3(a): single-query Gen/Eval/dpXOR times on the
// CPU baseline for 1–4 GB databases (single thread, no batch contention).
func Fig3a(opts Options) *Report {
	r := &Report{
		ID:      "Figure 3a",
		Title:   "DPF-PIR execution-time breakdown on CPU (single query, single thread)",
		Columns: []string{"DB (GB)", "Gen (ms)", "Eval (ms)", "dpXOR (ms)"},
	}
	m := paperCPU()
	var evals, scans []time.Duration
	for _, sizeGB := range []float64{1, 2, 4} {
		n := recordsFor(sizeGB)
		gen := m.Host.KeyGenDuration(domainOf(n))
		eval := m.Host.EvalDuration(uint64(n), 1)
		scan := m.Host.ScanDuration(dbBytes(n), 1)
		evals = append(evals, eval)
		scans = append(scans, scan)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", sizeGB), fmtMS(gen), fmtMS(eval), fmtMS(scan),
		})
	}
	last := len(scans) - 1
	r.AddCheck("dpXOR dominates Eval at every size", scans[0] > evals[0] && scans[last] > evals[last],
		"dpXOR/Eval = %.1fx at 4 GB (paper reports ≈ 10x with an unoptimised single-thread eval)",
		scans[last].Seconds()/evals[last].Seconds())
	gen := paperCPU().Host.KeyGenDuration(domainOf(recordsFor(4)))
	r.AddCheck("Eval ≫ Gen (≈1000x)", evals[last] > 1000*gen,
		"Eval/Gen = %.0fx", evals[last].Seconds()/gen.Seconds())
	r.AddCheck("server time at 4 GB is seconds-scale (paper: ≈3 s)",
		evals[last]+scans[last] > time.Second && evals[last]+scans[last] < 10*time.Second,
		"total = %.2f s", (evals[last] + scans[last]).Seconds())
	attachVerification(r, opts)
	return r
}

// Fig3b regenerates Figure 3(b): the roofline placement of Eval and dpXOR
// on the CPU baseline — both memory-bound, dpXOR deepest.
func Fig3b(opts Options) *Report {
	r := &Report{
		ID:      "Figure 3b",
		Title:   "Roofline model: operational intensity of PIR server kernels",
		Columns: []string{"kernel", "OI (op/B)", "achieved (Gop/s)", "attainable (Gop/s)", "region"},
	}
	machine := roofline.CPUBaselineMachine()
	m := paperCPU()
	n := recordsFor(4)
	kernels := []roofline.Kernel{
		roofline.GenKernel(domainOf(n), m.Host.KeyGenDuration(domainOf(n))),
		roofline.EvalKernel(uint64(n), m.Host.EvalDuration(uint64(n), 1)),
		roofline.DpXORKernel(dbBytes(n), 0.5, m.Host.ScanDuration(dbBytes(n), 1)),
	}
	for _, k := range kernels {
		region := "compute-bound"
		if machine.MemoryBound(k.Intensity()) {
			region = "memory-bound"
		}
		r.Rows = append(r.Rows, []string{
			k.Name,
			fmt.Sprintf("%.4f", k.Intensity()),
			fmt.Sprintf("%.2f", k.AchievedOpsPerSec()/1e9),
			fmt.Sprintf("%.2f", machine.AttainableOpsPerSec(k.Intensity())/1e9),
			region,
		})
	}
	eval, dpxor := kernels[1], kernels[2]
	r.AddCheck("dpXOR is memory-bound", machine.MemoryBound(dpxor.Intensity()),
		"OI %.4f < ridge %.4f", dpxor.Intensity(), machine.RidgeIntensity())
	r.AddCheck("Eval is memory-bound", machine.MemoryBound(eval.Intensity()),
		"OI %.4f < ridge %.4f", eval.Intensity(), machine.RidgeIntensity())
	r.AddCheck("dpXOR has the lowest operational intensity", dpxor.Intensity() < eval.Intensity(),
		"dpXOR %.4f vs Eval %.4f", dpxor.Intensity(), eval.Intensity())
	r.AddNote("ridge point of %s: %.3f op/B", machine.Name, machine.RidgeIntensity())
	attachVerification(r, opts)
	return r
}

var fig9Sizes = []float64{0.5, 1, 2, 4, 8}

// fig9Data computes the Figure 9 sweep once for all four panels.
func fig9Data(batch int) (cpuQPS, pimQPS []float64, cpuLat, pimLat []time.Duration) {
	cpu, pm := paperCPU(), paperPIM()
	for _, sizeGB := range fig9Sizes {
		n := recordsFor(sizeGB)
		cms, _ := cpu.batch(n, batch)
		pms, _ := pm.batch(n, batch)
		cpuQPS = append(cpuQPS, qps(batch, cms))
		pimQPS = append(pimQPS, qps(batch, pms))
		cpuLat = append(cpuLat, cms)
		pimLat = append(pimLat, pms)
	}
	return cpuQPS, pimQPS, cpuLat, pimLat
}

// Fig9a regenerates Figure 9(a): throughput vs DB size at batch 32.
func Fig9a(opts Options) *Report {
	const batch = 32
	r := &Report{
		ID:      "Figure 9a",
		Title:   "Throughput vs DB size (batch = 32)",
		Columns: []string{"DB (GB)", "CPU-PIR (QPS)", "IM-PIR (QPS)", "speedup"},
	}
	cpuQPS, pimQPS, _, _ := fig9Data(batch)
	var speedups []float64
	for i, sizeGB := range fig9Sizes {
		s := pimQPS[i] / cpuQPS[i]
		speedups = append(speedups, s)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f", sizeGB), fmtQPS(cpuQPS[i]), fmtQPS(pimQPS[i]),
			fmt.Sprintf("%.2fx", s),
		})
	}
	last := len(speedups) - 1
	r.AddCheck("IM-PIR wins at every size", minF(speedups) > 1,
		"min speedup %.2fx", minF(speedups))
	r.AddCheck("speedup ≈ 1.7x at 0.5 GB (paper: 1.7x)", speedups[0] > 1.3 && speedups[0] < 2.6,
		"%.2fx", speedups[0])
	r.AddCheck("speedup > 3.5x at 8 GB (paper: >3.7x)", speedups[last] >= 3.5,
		"%.2fx", speedups[last])
	r.AddCheck("speedup grows with DB size", speedups[last] > speedups[0],
		"%.2fx → %.2fx", speedups[0], speedups[last])
	attachVerification(r, opts)
	return r
}

// Fig9c regenerates Figure 9(c): latency vs DB size at batch 32.
func Fig9c(opts Options) *Report {
	const batch = 32
	r := &Report{
		ID:      "Figure 9c",
		Title:   "Latency vs DB size (batch = 32)",
		Columns: []string{"DB (GB)", "CPU-PIR (s)", "IM-PIR (s)"},
	}
	_, _, cpuLat, pimLat := fig9Data(batch)
	for i, sizeGB := range fig9Sizes {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f", sizeGB), fmtS(cpuLat[i]), fmtS(pimLat[i]),
		})
	}
	last := len(fig9Sizes) - 1
	cpuSlope := cpuLat[last].Seconds() / cpuLat[0].Seconds()
	pimSlope := pimLat[last].Seconds() / pimLat[0].Seconds()
	r.AddCheck("both latencies grow with DB size", cpuSlope > 1 && pimSlope > 1,
		"CPU x%.1f, IM-PIR x%.1f over a 16x size range", cpuSlope, pimSlope)
	r.AddCheck("IM-PIR scales better (smaller slope)", pimSlope < cpuSlope,
		"IM-PIR x%.1f vs CPU x%.1f", pimSlope, cpuSlope)
	r.AddCheck("IM-PIR latency lower at every size", pimLat[0] < cpuLat[0] && pimLat[last] < cpuLat[last],
		"at 8 GB: %.2f s vs %.2f s", pimLat[last].Seconds(), cpuLat[last].Seconds())
	attachVerification(r, opts)
	return r
}

var fig9Batches = []int{4, 8, 16, 32, 64, 128, 256, 512}

// Fig9b regenerates Figure 9(b): throughput vs batch size at DB = 1 GB.
func Fig9b(opts Options) *Report {
	r := &Report{
		ID:      "Figure 9b",
		Title:   "Throughput vs batch size (DB = 1 GiB)",
		Columns: []string{"batch", "CPU-PIR (QPS)", "IM-PIR (QPS)", "ratio"},
	}
	cpu, pm := paperCPU(), paperPIM()
	n := recordsFor(1)
	var cpuQPS, pimQPS []float64
	for _, b := range fig9Batches {
		cms, _ := cpu.batch(n, b)
		pms, _ := pm.batch(n, b)
		cq, pq := qps(b, cms), qps(b, pms)
		cpuQPS = append(cpuQPS, cq)
		pimQPS = append(pimQPS, pq)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", b), fmtQPS(cq), fmtQPS(pq), fmt.Sprintf("%.2fx", pq/cq),
		})
	}
	r.AddCheck("IM-PIR throughput roughly flat across batch sizes (single cluster)",
		maxF(pimQPS[1:])/minF(pimQPS[1:]) < 1.6,
		"max/min = %.2f over batches ≥ 8", maxF(pimQPS[1:])/minF(pimQPS[1:]))
	meanAdvantage := avgF(pimQPS) / avgF(cpuQPS)
	r.AddCheck("mean advantage ≈ 2.6x (paper: 2.6x on average)",
		meanAdvantage > 1.8 && meanAdvantage < 4.5,
		"mean IM-PIR QPS / mean CPU QPS = %.2fx", meanAdvantage)
	attachVerification(r, opts)
	return r
}

// Fig9d regenerates Figure 9(d): latency vs batch size at DB = 1 GB.
func Fig9d(opts Options) *Report {
	r := &Report{
		ID:      "Figure 9d",
		Title:   "Latency vs batch size (DB = 1 GiB)",
		Columns: []string{"batch", "CPU-PIR (s)", "IM-PIR (s)"},
	}
	cpu, pm := paperCPU(), paperPIM()
	n := recordsFor(1)
	var cpuLat, pimLat []time.Duration
	for _, b := range fig9Batches {
		cms, _ := cpu.batch(n, b)
		pms, _ := pm.batch(n, b)
		cpuLat = append(cpuLat, cms)
		pimLat = append(pimLat, pms)
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", b), fmtS(cms), fmtS(pms)})
	}
	last := len(fig9Batches) - 1
	r.AddCheck("latency grows with batch size for both systems",
		cpuLat[last] > cpuLat[0] && pimLat[last] > pimLat[0],
		"CPU %.2f→%.2f s, IM-PIR %.2f→%.2f s",
		cpuLat[0].Seconds(), cpuLat[last].Seconds(), pimLat[0].Seconds(), pimLat[last].Seconds())
	r.AddCheck("IM-PIR latency lower throughout", pimLat[last] < cpuLat[last],
		"at batch 512: %.2f s vs %.2f s", pimLat[last].Seconds(), cpuLat[last].Seconds())
	attachVerification(r, opts)
	return r
}

var fig10Sizes = []float64{1, 2, 4, 8, 16, 32}

// fig10PIM returns the Fig. 10(a) configuration: per-query-parallel
// evaluation with 8 workers, the setup under which the paper's phase
// shares (Table 1) were measured.
func fig10PIM() pimModel {
	m := paperPIM()
	m.EvalMode = impir.EvalPerQueryParallel
	m.EvalWorkers = 8
	return m
}

// Fig10a regenerates Figure 10(a): IM-PIR per-phase latency, 1–32 GB.
func Fig10a(opts Options) *Report {
	r := &Report{
		ID:    "Figure 10a",
		Title: "Latency breakdown of IM-PIR server phases",
		Columns: []string{"DB (GB)", "Eval (ms)", "copy cpu→pim (ms)", "dpXOR (ms)",
			"copy pim→cpu (ms)", "aggregation (ms)", "total (ms)"},
	}
	m := fig10PIM()
	evalDominant := true
	for _, sizeGB := range fig10Sizes {
		bd := m.phases(recordsFor(sizeGB))
		if bd.Modeled[metrics.PhaseEval] < bd.Modeled[metrics.PhaseDpXOR] {
			evalDominant = false
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", sizeGB),
			fmtMS(bd.Modeled[metrics.PhaseEval]),
			fmtMS(bd.Modeled[metrics.PhaseCopyToPIM]),
			fmtMS(bd.Modeled[metrics.PhaseDpXOR]),
			fmtMS(bd.Modeled[metrics.PhaseCopyToHost]),
			fmtMS(bd.Modeled[metrics.PhaseAggregate]),
			fmtMS(bd.TotalModeled()),
		})
	}
	bd32 := m.phases(recordsFor(32))
	r.AddCheck("Eval is the dominant IM-PIR phase at every size (Take-away 4)", evalDominant,
		"at 32 GB: Eval %.0f ms vs dpXOR %.0f ms",
		float64(bd32.Modeled[metrics.PhaseEval].Milliseconds()),
		float64(bd32.Modeled[metrics.PhaseDpXOR].Milliseconds()))
	r.AddCheck("total at 32 GB is sub-second (paper: ≈0.7 s)",
		bd32.TotalModeled() > 300*time.Millisecond && bd32.TotalModeled() < 1500*time.Millisecond,
		"%.0f ms", float64(bd32.TotalModeled().Milliseconds()))
	attachVerification(r, opts)
	return r
}

// Fig10b regenerates Figure 10(b): CPU-PIR per-phase latency, 1–32 GB.
func Fig10b(opts Options) *Report {
	r := &Report{
		ID:      "Figure 10b",
		Title:   "Latency breakdown of CPU-PIR server phases",
		Columns: []string{"DB (GB)", "Eval (ms)", "dpXOR (ms)", "total (ms)"},
	}
	m := paperCPU()
	dpxorDominant := true
	for _, sizeGB := range fig10Sizes {
		bd := m.phases(recordsFor(sizeGB), m.Host.Threads)
		if bd.Modeled[metrics.PhaseDpXOR] < bd.Modeled[metrics.PhaseEval] {
			dpxorDominant = false
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", sizeGB),
			fmtMS(bd.Modeled[metrics.PhaseEval]),
			fmtMS(bd.Modeled[metrics.PhaseDpXOR]),
			fmtMS(bd.TotalModeled()),
		})
	}
	r.AddCheck("dpXOR is the dominant CPU-PIR phase at every size (Take-away 4)", dpxorDominant, "")
	attachVerification(r, opts)
	return r
}

// Table1 regenerates Table 1: mean per-phase share of query latency.
func Table1(opts Options) *Report {
	r := &Report{
		ID:    "Table 1",
		Title: "Average per-phase contribution to server-side query latency",
		Columns: []string{"approach", "DPF Eval", "CPU→DPU copy", "dpXOR",
			"DPU→CPU copy", "aggregation"},
	}
	pimM := fig10PIM()
	cpuM := paperCPU()

	var pimShares, cpuShares [metrics.NumPhases]float64
	for _, sizeGB := range fig10Sizes {
		n := recordsFor(sizeGB)
		pb := pimM.phases(n)
		cb := cpuM.phases(n, cpuM.Host.Threads)
		for _, p := range metrics.Phases() {
			pimShares[p] += pb.ModeledShare(p) / float64(len(fig10Sizes))
			cpuShares[p] += cb.ModeledShare(p) / float64(len(fig10Sizes))
		}
	}
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
	r.Rows = append(r.Rows, []string{
		"IM-PIR",
		pct(pimShares[metrics.PhaseEval]),
		pct(pimShares[metrics.PhaseCopyToPIM]),
		pct(pimShares[metrics.PhaseDpXOR]),
		pct(pimShares[metrics.PhaseCopyToHost]),
		pct(pimShares[metrics.PhaseAggregate]),
	})
	r.Rows = append(r.Rows, []string{
		"CPU-PIR",
		pct(cpuShares[metrics.PhaseEval]),
		"N/A",
		pct(cpuShares[metrics.PhaseDpXOR]),
		"N/A",
		"N/A",
	})
	r.AddCheck("IM-PIR: Eval ≈ 76% (paper: 76.45%)",
		pimShares[metrics.PhaseEval] > 0.60 && pimShares[metrics.PhaseEval] < 0.90,
		"%.1f%%", pimShares[metrics.PhaseEval]*100)
	r.AddCheck("IM-PIR: dpXOR ≈ 16% (paper: 16.20%)",
		pimShares[metrics.PhaseDpXOR] > 0.07 && pimShares[metrics.PhaseDpXOR] < 0.30,
		"%.1f%%", pimShares[metrics.PhaseDpXOR]*100)
	r.AddCheck("IM-PIR: copies ≈ 7% (paper: 7.35% combined)",
		pimShares[metrics.PhaseCopyToPIM]+pimShares[metrics.PhaseCopyToHost] < 0.15,
		"%.1f%%", (pimShares[metrics.PhaseCopyToPIM]+pimShares[metrics.PhaseCopyToHost])*100)
	r.AddCheck("CPU-PIR: dpXOR ≈ 83% (paper: 83.36%)",
		cpuShares[metrics.PhaseDpXOR] > 0.70 && cpuShares[metrics.PhaseDpXOR] < 0.92,
		"%.1f%%", cpuShares[metrics.PhaseDpXOR]*100)
	attachVerification(r, opts)
	return r
}

var (
	fig11Clusters = []int{1, 2, 4, 8}
	fig11Batches  = []int{4, 8, 16, 32, 64, 128, 256}
)

// fig11Sweep computes the DPU-clustering sweep at DB = 1 GB.
func fig11Sweep() map[int]map[int]time.Duration {
	out := make(map[int]map[int]time.Duration)
	n := recordsFor(1)
	for _, c := range fig11Clusters {
		m := paperPIM()
		m.Clusters = c
		out[c] = make(map[int]time.Duration)
		for _, b := range fig11Batches {
			ms, _ := m.batch(n, b)
			out[c][b] = ms
		}
	}
	return out
}

// Fig11a regenerates Figure 11(a): clustering effect on throughput.
func Fig11a(opts Options) *Report {
	r := &Report{
		ID:      "Figure 11a",
		Title:   "DPU clustering: throughput vs batch size (DB = 1 GiB)",
		Columns: []string{"batch", "1 cluster", "2 clusters", "4 clusters", "8 clusters"},
	}
	sweep := fig11Sweep()
	for _, b := range fig11Batches {
		row := []string{fmt.Sprintf("%d", b)}
		for _, c := range fig11Clusters {
			row = append(row, fmtQPS(qps(b, sweep[c][b])))
		}
		r.Rows = append(r.Rows, row)
	}
	bigBatch := fig11Batches[len(fig11Batches)-1]
	gain := qps(bigBatch, sweep[8][bigBatch]) / qps(bigBatch, sweep[1][bigBatch])
	r.AddCheck("8 clusters ≈ 1.35x throughput of 1 cluster (paper: up to 1.35x)",
		gain > 1.15 && gain < 1.7, "%.2fx at batch %d", gain, bigBatch)
	monotonic := true
	for i := 1; i < len(fig11Clusters); i++ {
		if qps(bigBatch, sweep[fig11Clusters[i]][bigBatch]) < qps(bigBatch, sweep[fig11Clusters[i-1]][bigBatch])*0.98 {
			monotonic = false
		}
	}
	r.AddCheck("throughput non-decreasing in cluster count at large batch", monotonic, "")
	attachVerification(r, opts)
	return r
}

// Fig11b regenerates Figure 11(b): clustering effect on latency.
func Fig11b(opts Options) *Report {
	r := &Report{
		ID:      "Figure 11b",
		Title:   "DPU clustering: batch latency vs batch size (DB = 1 GiB)",
		Columns: []string{"batch", "1 cluster (s)", "2 clusters (s)", "4 clusters (s)", "8 clusters (s)"},
	}
	sweep := fig11Sweep()
	for _, b := range fig11Batches {
		row := []string{fmt.Sprintf("%d", b)}
		for _, c := range fig11Clusters {
			row = append(row, fmtS(sweep[c][b]))
		}
		r.Rows = append(r.Rows, row)
	}
	bigBatch := fig11Batches[len(fig11Batches)-1]
	r.AddCheck("more clusters lower batch latency at large batch",
		sweep[8][bigBatch] < sweep[1][bigBatch],
		"1 cluster %.3f s vs 8 clusters %.3f s",
		sweep[1][bigBatch].Seconds(), sweep[8][bigBatch].Seconds())
	attachVerification(r, opts)
	return r
}

var fig12Sizes = []float64{0.125, 0.25, 0.5, 0.75, 1}

// fig12Sweep computes the engine comparison at batch 32.
func fig12Sweep() (cpuMS, gpuMS, pimMS []time.Duration) {
	const batch = 32
	cpu, gpu, pm := paperCPU(), paperGPU(), paperPIM()
	for _, sizeGB := range fig12Sizes {
		n := recordsFor(sizeGB)
		c, _ := cpu.batch(n, batch)
		g, _ := gpu.batch(n, batch)
		p, _ := pm.batch(n, batch)
		cpuMS = append(cpuMS, c)
		gpuMS = append(gpuMS, g)
		pimMS = append(pimMS, p)
	}
	return cpuMS, gpuMS, pimMS
}

// Fig12a regenerates Figure 12(a): CPU vs PIM vs GPU throughput.
func Fig12a(opts Options) *Report {
	const batch = 32
	r := &Report{
		ID:      "Figure 12a",
		Title:   "CPU vs PIM vs GPU: throughput vs DB size (batch = 32)",
		Columns: []string{"DB (GB)", "CPU-PIR (QPS)", "GPU-PIR (QPS)", "IM-PIR (QPS)"},
	}
	cpuMS, gpuMS, pimMS := fig12Sweep()
	for i, sizeGB := range fig12Sizes {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.3f", sizeGB),
			fmtQPS(qps(batch, cpuMS[i])), fmtQPS(qps(batch, gpuMS[i])), fmtQPS(qps(batch, pimMS[i])),
		})
	}
	last := len(fig12Sizes) - 1
	cq, gq, pq := qps(batch, cpuMS[last]), qps(batch, gpuMS[last]), qps(batch, pimMS[last])
	r.AddCheck("ordering at 1 GB: IM-PIR > GPU-PIR > CPU-PIR", pq > gq && gq > cq,
		"PIM %.0f / GPU %.0f / CPU %.0f QPS", pq, gq, cq)
	r.AddCheck("IM-PIR/GPU ≈ 1.34x at 1 GB (paper: up to 1.34x)", pq/gq > 1.1 && pq/gq < 2.2,
		"%.2fx", pq/gq)
	r.AddCheck("GPU/CPU ≈ 1.36x at 1 GB (paper: up to 1.36x)", gq/cq > 1.1 && gq/cq < 2.2,
		"%.2fx", gq/cq)
	r.AddNote("at very small DBs the GPU approaches or passes PIM — consistent with " +
		"the paper's observation that GPUs excel when memory bandwidth is not the bottleneck")
	r.AddNote("0.75 GB pads to the same 2^25-record power-of-two layout as 1 GB, " +
		"so those rows coincide (all engines pad identically)")
	attachVerification(r, opts)
	return r
}

// Fig12b regenerates Figure 12(b): CPU vs PIM vs GPU latency.
func Fig12b(opts Options) *Report {
	const batch = 32
	r := &Report{
		ID:      "Figure 12b",
		Title:   "CPU vs PIM vs GPU: batch latency vs DB size (batch = 32)",
		Columns: []string{"DB (GB)", "CPU-PIR (s)", "GPU-PIR (s)", "IM-PIR (s)"},
	}
	cpuMS, gpuMS, pimMS := fig12Sweep()
	for i, sizeGB := range fig12Sizes {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.3f", sizeGB), fmtS(cpuMS[i]), fmtS(gpuMS[i]), fmtS(pimMS[i]),
		})
	}
	last := len(fig12Sizes) - 1
	r.AddCheck("latency ordering at 1 GB: IM-PIR < GPU-PIR < CPU-PIR",
		pimMS[last] < gpuMS[last] && gpuMS[last] < cpuMS[last],
		"PIM %.3f / GPU %.3f / CPU %.3f s",
		pimMS[last].Seconds(), gpuMS[last].Seconds(), cpuMS[last].Seconds())
	attachVerification(r, opts)
	return r
}

// All runs every experiment. Functional verification is executed once and
// shared, since it is engine-level rather than per-figure.
func All(opts Options) []*Report {
	first := opts
	rest := opts
	rest.VerifyRecords = 0
	reports := []*Report{Fig3a(first)}
	for _, f := range []func(Options) *Report{
		Fig3b, Fig9a, Fig9b, Fig9c, Fig9d, Fig10a, Fig10b, Table1,
		Fig11a, Fig11b, Fig12a, Fig12b,
	} {
		reports = append(reports, f(rest))
	}
	return reports
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func avgF(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
