package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/impir/impir/internal/fanout"
)

// HedgingTail models the tail-latency win of hedged replica fan-out:
// each party of a deployment runs ≥ 2 interchangeable replicas, every
// replica serves in a base time but occasionally stalls (GC pause, CPU
// contention, a queued update quiesce), and the client hedges a lagging
// primary's share to the party's next replica after a delay near the
// p50. An unhedged client inherits the replica's stall distribution
// verbatim; a hedged client replaces the stall tail with (delay +
// second replica's sample), collapsing p99 toward p50 — the classic
// "tail at scale" construction, priced here for IM-PIR's query shape.
//
// The model is a seeded Monte Carlo (deterministic across runs):
// replica latency = base ± jitter, plus a stall of stallDur with the
// row's probability, both replicas sampled independently. The hedged
// sample is min(primary, delay + secondary) — exactly what the
// client's fanout.Hedge implements, losers cancelled.
func HedgingTail(opts Options) *Report {
	r := &Report{
		ID:      "Hedging tail latency",
		Title:   "Hedged replica fan-out: p50/p99 vs per-replica stall probability (2 replicas/party)",
		Columns: []string{"Stall prob", "Unhedged p50 (ms)", "Unhedged p99 (ms)", "Hedged p50 (ms)", "Hedged p99 (ms)", "p99 win"},
	}
	const (
		samples  = 200_000
		base     = 2 * time.Millisecond   // healthy replica round trip
		jitter   = 500 * time.Microsecond // uniform ± around base
		stallDur = 200 * time.Millisecond // a stalled replica's extra latency
		delay    = 4 * time.Millisecond   // hedge floor ≈ 2× p50, the client default policy
	)
	rng := rand.New(rand.NewSource(2026))
	sample := func(p float64) time.Duration {
		d := base + time.Duration((rng.Float64()*2-1)*float64(jitter))
		if rng.Float64() < p {
			d += stallDur
		}
		return d
	}
	percentile := func(xs []time.Duration, q float64) time.Duration {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		i := int(q * float64(len(xs)))
		if i >= len(xs) {
			i = len(xs) - 1
		}
		return xs[i]
	}

	var wins []float64
	for _, p := range []float64{0.001, 0.01, 0.05, 0.10} {
		unhedged := make([]time.Duration, samples)
		hedged := make([]time.Duration, samples)
		for i := 0; i < samples; i++ {
			primary, secondary := sample(p), sample(p)
			unhedged[i] = primary
			h := primary
			if alt := delay + secondary; alt < h {
				h = alt
			}
			hedged[i] = h
		}
		u50, u99 := percentile(unhedged, 0.50), percentile(unhedged, 0.99)
		h50, h99 := percentile(hedged, 0.50), percentile(hedged, 0.99)
		win := float64(u99) / float64(h99)
		wins = append(wins, win)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f%%", p*100),
			fmtMS(u50), fmtMS(u99), fmtMS(h50), fmtMS(h99),
			fmt.Sprintf("%.1fx", win),
		})
	}

	// With a 1% stall probability the unhedged p99 IS the stall; the
	// hedged p99 must collapse to ≈ delay + base, an order of magnitude.
	r.AddCheck("hedging collapses the 1% stall out of p99", wins[1] > 10,
		"p99 win at 1%% stalls: %.1fx", wins[1])
	r.AddCheck("hedging keeps winning as stalls get common", wins[2] > 2 && wins[3] > 2,
		"p99 win at 5%%/10%% stalls: %.1fx/%.1fx", wins[2], wins[3])
	r.AddNote("model: %v base ± %v jitter per replica, %v stalls, hedge after %v; %d samples, seeded",
		base, jitter, stallDur, delay, samples)
	attachHedgeVerification(r, opts)
	return r
}

// attachHedgeVerification races fanout.Hedge for real — a primary
// stalled well past the hedge delay against a fast secondary — proving
// the model sits on a working hedged executor: the secondary's answer
// wins, the stalled primary is cancelled, and the measured latency
// sits near the hedge delay, far under the stall.
func attachHedgeVerification(r *Report, opts Options) {
	if opts.VerifyRecords <= 0 {
		return
	}
	const (
		stall = 300 * time.Millisecond
		delay = 10 * time.Millisecond
	)
	start := time.Now()
	v, winner, err := fanout.Hedge(context.Background(), 2, delay,
		func(ctx context.Context, i int) (string, error) {
			if i == 0 {
				select {
				case <-time.After(stall):
					return "primary", nil
				case <-ctx.Done():
					return "", ctx.Err()
				}
			}
			return "secondary", nil
		})
	elapsed := time.Since(start)
	if err != nil {
		r.AddCheck("functional hedge verification", false, "%v", err)
		return
	}
	ok := v == "secondary" && winner == 1 && elapsed < stall/2
	r.AddCheck("functional hedge verification (fast replica wins, stall evicted from the path)", ok,
		"winner=%q after %v (stall %v, hedge delay %v)", v, elapsed.Round(time.Millisecond), stall, delay)
}
