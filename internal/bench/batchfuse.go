package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/gpupir"
	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/pimkernel"
	"github.com/impir/impir/internal/xorop"
)

// batchFuseSizes are the fused batch widths measured, matching the B
// axis of the paper's Fig. 9b batch experiments.
var batchFuseSizes = []int{1, 2, 4, 8, 16, 32}

// BatchFuse measures the fused one-pass batch dpXOR kernel against B
// independent scans, on a database deliberately larger than any LLC so
// the scan is memory-bound — the regime where fusion pays: one pass
// streams the database once and amortises its memory traffic across all
// B selector streams, so per-query cost falls toward the pure XOR ALU
// cost while aggregate useful bandwidth rises with B.
//
// Both sides get identical parallelism (one fused multi-selector pass
// vs B single-selector passes, same worker count), so the measured gap
// is the fusion, not threading.
func BatchFuse(opts Options) *Report {
	r := &Report{
		ID:    "Batch fusion",
		Title: "Fused one-pass batch dpXOR vs per-query scans (measured, memory-bound DB)",
		Columns: []string{"Batch B", "Fused/query (ms)", "Unfused/query (ms)",
			"Speedup", "Effective scan GB/s"},
	}

	// 2^21 records × 32 B = 64 MiB: several times any L3 slice, so each
	// pass streams from DRAM.
	const (
		numRecords = 1 << 21
		recSize    = recordSize
	)
	db := make([]byte, numRecords*recSize)
	rng := rand.New(rand.NewSource(2027))
	rng.Read(db)

	maxB := batchFuseSizes[len(batchFuseSizes)-1]
	sels := make([][]uint64, maxB)
	for q := range sels {
		sels[q] = make([]uint64, numRecords/64)
		for i := range sels[q] {
			sels[q][i] = rng.Uint64()
		}
	}
	workers := runtime.GOMAXPROCS(0)
	dbGiB := float64(len(db)) / gib

	var perQueryFused, perQueryUnfused []time.Duration
	var effGBps []float64
	for _, b := range batchFuseSizes {
		accs := make([][]byte, b)
		for q := range accs {
			accs[q] = make([]byte, recSize)
		}

		fused := measureBest(3, func() error {
			return xorop.AccumulateBatchWorkers(accs, db, recSize, sels[:b], workers)
		})
		unfused := measureBest(3, func() error {
			for q := 0; q < b; q++ {
				if err := xorop.AccumulateBatchWorkers(accs[q:q+1], db, recSize, sels[q:q+1], workers); err != nil {
					return err
				}
			}
			return nil
		})
		if fused < 0 || unfused < 0 {
			r.AddCheck("measured fused kernel runs", false, "kernel error at B=%d", b)
			return r
		}

		fq := fused / time.Duration(b)
		uq := unfused / time.Duration(b)
		gbps := float64(b) * dbGiB / fused.Seconds()
		perQueryFused = append(perQueryFused, fq)
		perQueryUnfused = append(perQueryUnfused, uq)
		effGBps = append(effGBps, gbps)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", b), fmtMS(fq), fmtMS(uq),
			fmt.Sprintf("%.2fx", float64(uq)/float64(fq)),
			fmt.Sprintf("%.1f", gbps),
		})
	}

	// Paper-shape checks. At B=8 the fused pass pays one memory stream
	// instead of eight, so per-query time must at least halve.
	idx8 := indexOf(batchFuseSizes, 8)
	r.AddCheck("fused per-query scan at B=8 is ≤ 0.5× the unfused scan",
		perQueryFused[idx8]*2 <= perQueryUnfused[idx8],
		"fused %v vs unfused %v per query",
		perQueryFused[idx8].Round(10*time.Microsecond), perQueryUnfused[idx8].Round(10*time.Microsecond))
	flatToRising := true
	for i := 1; i < len(effGBps); i++ {
		if effGBps[i] < effGBps[i-1]*0.85 {
			flatToRising = false
		}
	}
	r.AddCheck("effective scan bandwidth is flat-to-rising in B", flatToRising,
		"B=1 %.1f GB/s → B=%d %.1f GB/s", effGBps[0], maxB, effGBps[len(effGBps)-1])
	r.AddNote("measured: %d × %d B database (%.0f MiB), %d workers, best of 3; unfused = B single-selector passes at the same parallelism",
		numRecords, recSize, float64(len(db))/(1<<20), workers)

	// Modeled engine cross-checks at B=8 on the paper's configurations.
	const modelGiB = 8.0
	n := recordsFor(modelGiB)
	cpuHost := paperCPU().Host
	cpuFused := cpuHost.FusedScanDuration(dbBytes(n), 8, cpuHost.Threads)
	cpuUnfused := 8 * cpuHost.ScanDuration(dbBytes(n), 1)
	r.AddCheck("modeled CPU fused scan at B=8 beats 8 per-query scans",
		cpuFused < cpuUnfused, "%v vs %v", cpuFused.Round(time.Millisecond), cpuUnfused.Round(time.Millisecond))
	gpu := paperGPU().GPU
	gpuFused := gpu.ScanBatchDuration(dbBytes(n), 8)
	gpuUnfused := 8 * gpu.ScanDuration(dbBytes(n))
	r.AddCheck("modeled GPU fused grid scan at B=8 beats 8 per-query scans",
		gpuFused < gpuUnfused, "%v vs %v", gpuFused.Round(time.Millisecond), gpuUnfused.Round(time.Millisecond))
	pimCfg := paperPIM()
	recordsPerDPU := (n/pimCfg.DPUs + 63) / 64 * 64
	_, dma1 := pimkernel.ModelCost(recordsPerDPU, recSize, pimCfg.PIM.TaskletsPerDPU)
	_, dmaB := pimkernel.ModelCostBatch(recordsPerDPU, recSize, pimCfg.PIM.TaskletsPerDPU, 8)
	r.AddCheck("modeled PIM fused launch at B=8 amortises per-DPU DMA",
		dmaB < 8*dma1, "fused %d bytes vs %d unfused", dmaB, 8*dma1)

	attachBatchFuseVerification(r, opts)
	return r
}

// measureBest runs fn reps times and returns the fastest wall time, or
// a negative duration if fn errors.
func measureBest(reps int, fn func() error) time.Duration {
	best := time.Duration(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return best
}

func indexOf(xs []int, want int) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return 0
}

// attachBatchFuseVerification proves the fused path is bit-exact with
// per-query execution on every engine family: the same key batch through
// a fused engine and a fusion-disabled twin must agree byte for byte.
func attachBatchFuseVerification(r *Report, opts Options) {
	if opts.VerifyRecords <= 0 {
		return
	}
	db, err := database.GenerateHashDB(opts.VerifyRecords, 2027)
	if err != nil {
		r.AddCheck("functional fused-vs-per-query verification", false, "%v", err)
		return
	}
	const batch = 8
	keys := make([]*dpf.Key, batch)
	for i := range keys {
		k0, _, err := dpf.Gen(dpf.Params{Domain: db.Domain()}, uint64(i*37)%uint64(db.NumRecords()), nil)
		if err != nil {
			r.AddCheck("functional fused-vs-per-query verification", false, "%v", err)
			return
		}
		keys[i] = k0
	}

	check := func(family string, fused, solo [][]byte, errF, errS error) {
		if errF != nil || errS != nil {
			r.AddCheck(fmt.Sprintf("functional fused verification (%s)", family), false, "fused=%v solo=%v", errF, errS)
			return
		}
		for i := range fused {
			if !bytes.Equal(fused[i], solo[i]) {
				r.AddCheck(fmt.Sprintf("functional fused verification (%s)", family), false,
					"query %d differs", i)
				return
			}
		}
		r.AddCheck(fmt.Sprintf("functional fused verification (%s)", family), true,
			"B=%d bit-exact with per-query passes", batch)
	}

	{
		ef, _ := cpupir.New(cpupir.Config{Threads: 4})
		es, _ := cpupir.New(cpupir.Config{Threads: 4, DisableBatchFusion: true})
		_ = ef.LoadDatabase(db)
		_ = es.LoadDatabase(db.Clone())
		rf, _, errF := ef.QueryBatch(keys)
		rs, _, errS := es.QueryBatch(keys)
		check("CPU", rf, rs, errF, errS)
	}
	{
		ef, _ := gpupir.New(gpupir.Config{})
		es, _ := gpupir.New(gpupir.Config{DisableBatchFusion: true})
		_ = ef.LoadDatabase(db)
		_ = es.LoadDatabase(db.Clone())
		rf, _, errF := ef.QueryBatch(keys)
		rs, _, errS := es.QueryBatch(keys)
		check("GPU", rf, rs, errF, errS)
	}
	{
		cfg := impir.DefaultConfig()
		cfg.DPUs = 8
		cfg.PIM.Ranks = 2
		cfg.PIM.DPUsPerRank = 4
		cfg.PIM.MRAMPerDPU = 4 << 20
		cfg.PIM.TaskletsPerDPU = 4
		cfg.EvalWorkers = 2
		soloCfg := cfg
		soloCfg.DisableBatchFusion = true
		ef, errF := impir.New(cfg)
		es, errS := impir.New(soloCfg)
		if errF != nil || errS != nil {
			check("PIM", nil, nil, errF, errS)
			return
		}
		_ = ef.LoadDatabase(db)
		_ = es.LoadDatabase(db.Clone())
		rf, _, errF := ef.QueryBatch(keys)
		rs, _, errS := es.QueryBatch(keys)
		check("PIM", rf, rs, errF, errS)
	}
}
