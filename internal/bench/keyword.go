package bench

import (
	"bytes"
	"fmt"
	"time"

	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/keyword"
)

// KeywordLookup characterises the keyword (key→value) retrieval layer:
// real cuckoo tables built at increasing pair counts, reporting the
// achieved load factor and stash spill (the space overhead side) and
// the modeled private-lookup latency versus plain index-PIR over the
// same corpus (the time overhead side — a lookup privately retrieves
// k candidate buckets plus the stash instead of one record, and every
// probe is a full-table scan under all-for-one).
func KeywordLookup(opts Options) *Report {
	r := &Report{
		ID:    "Keyword lookup",
		Title: "Keyword PIR: effective load factor and modeled lookup latency vs table size",
		Columns: []string{"Pairs", "Buckets (+stash)", "Load factor", "Stashed",
			"Probes/key", "KV lookup (ms)", "Index-PIR (ms)"},
	}
	pimM := paperPIM()

	sizes := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	var loads []float64
	var lookups []time.Duration
	var probes []int
	maxStashFrac := 0.0
	for _, n := range sizes {
		table, err := keyword.BuildTable(keyword.GeneratePairs(n, 2026), keyword.Options{Seed: 2026})
		if err != nil {
			r.AddCheck(fmt.Sprintf("table build (%d pairs)", n), false, "%v", err)
			return r
		}
		m := table.Manifest

		// The models are calibrated for 32-byte records; a keyword probe
		// scans TotalBuckets records of RecordSize bytes, so convert to
		// the equivalent 32-byte-record count (dpXOR cost is linear in
		// scanned bytes) and charge one scan per probe.
		equivalent := int(m.TotalBuckets()) * m.RecordSize() / recordSize
		probeBD := pimM.phases(pow2At(equivalent))
		lookup := time.Duration(m.ProbesPerKey()) * probeBD.TotalModeled()
		indexBD := pimM.phases(pow2At(n))

		loads = append(loads, table.LoadFactor())
		lookups = append(lookups, lookup)
		probes = append(probes, m.ProbesPerKey())
		if frac := float64(table.Stashed()) / float64(n); frac > maxStashFrac {
			maxStashFrac = frac
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d (+%d)", m.NumBuckets, m.StashBuckets),
			fmt.Sprintf("%.2f", table.LoadFactor()),
			fmt.Sprintf("%d", table.Stashed()),
			fmt.Sprintf("%d", m.ProbesPerKey()),
			fmtMS(lookup),
			fmtMS(indexBD.TotalModeled()),
		})
	}

	minLoad := loads[0]
	for _, lf := range loads {
		if lf < minLoad {
			minLoad = lf
		}
	}
	r.AddCheck("effective load factor stays ≥ 0.70 at every size", minLoad >= 0.70,
		"min %.2f across %d sizes (target 0.85)", minLoad, len(sizes))
	r.AddCheck("stash absorbs < 1% of pairs", maxStashFrac < 0.01,
		"worst stash fraction %.4f", maxStashFrac)
	constProbes := true
	for _, p := range probes {
		if p != probes[0] {
			constProbes = false
		}
	}
	r.AddCheck("probe count per key is constant across table sizes (k + fixed stash)", constProbes,
		"%d probes/key at every size", probes[0])
	monotone := true
	for i := 1; i < len(lookups); i++ {
		if lookups[i] <= lookups[i-1] {
			monotone = false
		}
	}
	r.AddCheck("modeled lookup time grows with table size (every probe is a full scan)", monotone,
		"%v → %v", lookups[0].Round(time.Microsecond), lookups[len(lookups)-1].Round(time.Microsecond))
	r.AddNote("lookup = k candidates + stash probes per key, each a full-table dpXOR on the paper's PIM configuration; index-PIR = one probe over a 32B-record corpus of equal cardinality")
	attachKeywordVerification(r, opts)
	return r
}

// pow2At pads n up to the next power of two, matching what the engines
// do before serving.
func pow2At(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// attachKeywordVerification executes the keyword protocol for real at
// a scaled-down size: a cuckoo table served by a two-engine cohort,
// one DPF sub-query per probe bucket, reconstruction, and the client-
// side bucket search — a hit must return its value and a miss must
// come back empty, both through identical probe counts.
func attachKeywordVerification(r *Report, opts Options) {
	if opts.VerifyRecords <= 0 {
		return
	}
	pairs := keyword.GeneratePairs(opts.VerifyRecords, 2027)
	table, err := keyword.BuildTable(pairs, keyword.Options{Seed: 2027})
	if err != nil {
		r.AddCheck("functional keyword verification", false, "%v", err)
		return
	}
	db, err := table.DB()
	if err != nil {
		r.AddCheck("functional keyword verification", false, "%v", err)
		return
	}
	padded := db.PadToPowerOfTwo()

	e0, err := cpupir.New(cpupir.Config{Threads: 2})
	if err == nil {
		err = e0.LoadDatabase(padded)
	}
	e1, err2 := cpupir.New(cpupir.Config{Threads: 2})
	if err == nil {
		err = err2
	}
	if err == nil {
		err = e1.LoadDatabase(padded.Clone())
	}
	if err != nil {
		r.AddCheck("functional keyword verification", false, "%v", err)
		return
	}

	m := table.Manifest
	probe := func(key []byte) ([]byte, bool, time.Duration, error) {
		start := time.Now()
		var found []byte
		hit := false
		for _, b := range m.ProbeIndices(key) {
			k0, k1, err := dpf.Gen(dpf.Params{Domain: padded.Domain()}, b, nil)
			if err != nil {
				return nil, false, 0, err
			}
			r0, _, err := e0.Query(k0)
			if err != nil {
				return nil, false, 0, err
			}
			r1, _, err := e1.Query(k1)
			if err != nil {
				return nil, false, 0, err
			}
			rec := make([]byte, len(r0))
			for i := range rec {
				rec[i] = r0[i] ^ r1[i]
			}
			if v, ok, err := m.FindInBucket(rec, key); err != nil {
				return nil, false, 0, err
			} else if ok && !hit {
				found, hit = v, true
			}
		}
		return found, hit, time.Since(start), nil
	}

	target := pairs[opts.VerifyRecords/2]
	v, hit, wall, err := probe(target.Key)
	ok := err == nil && hit && bytes.Equal(v, target.Value)
	r.AddCheck("functional keyword verification (hit)", ok,
		"%d probes over %d buckets in %v (err=%v)", m.ProbesPerKey(), m.TotalBuckets(), wall.Round(time.Microsecond), err)

	_, hit, wall2, err := probe([]byte("absent-key"))
	r.AddCheck("functional keyword verification (miss, identical probe count)", err == nil && !hit,
		"%d probes in %v (err=%v)", m.ProbesPerKey(), wall2.Round(time.Microsecond), err)
}
