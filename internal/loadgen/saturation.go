package loadgen

import (
	"context"
	"fmt"
	"io"
	"time"
)

// SLO is the pass condition a ramp step is judged against.
type SLO struct {
	// MaxP99 fails a step whose p99 latency exceeds it; 0 leaves latency
	// unchecked.
	MaxP99 time.Duration
	// MaxFailureRate fails a step whose busy+timeout+error+lost fraction
	// of offered load exceeds it.
	MaxFailureRate float64
}

func (s SLO) String() string {
	if s.MaxP99 > 0 {
		return fmt.Sprintf("p99 ≤ %v, failures ≤ %.2f%%", s.MaxP99, 100*s.MaxFailureRate)
	}
	return fmt.Sprintf("failures ≤ %.2f%%", 100*s.MaxFailureRate)
}

// RampConfig shapes a saturation search: offered QPS steps up
// geometrically until the SLO breaks or MaxQPS is cleared.
type RampConfig struct {
	// StartQPS is the first step's offered rate. Required.
	StartQPS float64
	// MaxQPS stops the search once cleared. 0 means 64 × StartQPS.
	MaxQPS float64
	// StepFactor multiplies the offered rate between steps. 0 means 1.5.
	StepFactor float64
	// StepDuration is each step's measured window. 0 means 3s.
	StepDuration time.Duration
	// StepWarmup precedes each step's measurement. 0 means 500ms.
	StepWarmup time.Duration
	// SLO judges each step. A zero MaxFailureRate means 1%.
	SLO SLO
}

func (rc RampConfig) withDefaults() (RampConfig, error) {
	if rc.StartQPS <= 0 {
		return rc, fmt.Errorf("loadgen: ramp start QPS must be positive, got %g", rc.StartQPS)
	}
	if rc.MaxQPS == 0 {
		rc.MaxQPS = 64 * rc.StartQPS
	}
	if rc.StepFactor == 0 {
		rc.StepFactor = 1.5
	}
	if rc.StepFactor <= 1 {
		return rc, fmt.Errorf("loadgen: ramp step factor must exceed 1, got %g", rc.StepFactor)
	}
	if rc.StepDuration == 0 {
		rc.StepDuration = 3 * time.Second
	}
	if rc.StepWarmup == 0 {
		rc.StepWarmup = 500 * time.Millisecond
	}
	if rc.SLO.MaxFailureRate == 0 {
		rc.SLO.MaxFailureRate = 0.01
	}
	return rc, nil
}

// RampStep is one rung of the search.
type RampStep struct {
	QPS         float64   `json:"qps"`
	AchievedQPS float64   `json:"achieved_qps"`
	Counts      Counts    `json:"counts"`
	Latency     Quantiles `json:"latency"`
	Pass        bool      `json:"pass"`
	// Violation names the SLO term that failed, empty on pass.
	Violation string `json:"violation,omitempty"`
}

// RampResult is the saturation search's outcome.
type RampResult struct {
	SLO string `json:"slo"`
	// Steps records every rung in order.
	Steps []RampStep `json:"steps"`
	// MaxGoodQPS is the highest offered rate that met the SLO; 0 when
	// even the first step failed.
	MaxGoodQPS float64 `json:"max_good_qps"`
	// SaturatedAt is the first offered rate that broke the SLO; 0 when
	// the search cleared MaxQPS without breaking it.
	SaturatedAt float64 `json:"saturated_at,omitempty"`
}

// judge evaluates one step's result against the SLO.
func (s SLO) judge(r *Result) (bool, string) {
	if fr := r.Counts.FailureRate(); fr > s.MaxFailureRate {
		return false, fmt.Sprintf("failure rate %.2f%% > %.2f%%", 100*fr, 100*s.MaxFailureRate)
	}
	if s.MaxP99 > 0 {
		p99 := time.Duration(r.Latency.P99 * float64(time.Microsecond))
		if p99 > s.MaxP99 {
			return false, fmt.Sprintf("p99 %v > %v", p99.Round(time.Microsecond), s.MaxP99)
		}
	}
	return true, ""
}

// Saturate ramps the offered QPS geometrically over the target until
// the SLO breaks, and reports the knee. base supplies everything but
// QPS, Duration, and Warmup, which the ramp owns per step.
func Saturate(ctx context.Context, t Target, base Config, rc RampConfig) (*RampResult, error) {
	rc, err := rc.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &RampResult{SLO: rc.SLO.String()}
	for qps := rc.StartQPS; ; qps *= rc.StepFactor {
		if qps > rc.MaxQPS {
			qps = rc.MaxQPS
		}
		cfg := base
		cfg.QPS = qps
		cfg.Duration = rc.StepDuration
		cfg.Warmup = rc.StepWarmup
		r, err := Run(ctx, t, cfg)
		if err != nil {
			return res, err
		}
		pass, why := rc.SLO.judge(r)
		res.Steps = append(res.Steps, RampStep{
			QPS:         qps,
			AchievedQPS: r.AchievedQPS,
			Counts:      r.Counts,
			Latency:     r.Latency,
			Pass:        pass,
			Violation:   why,
		})
		if !pass {
			res.SaturatedAt = qps
			return res, nil
		}
		res.MaxGoodQPS = qps
		if qps >= rc.MaxQPS {
			return res, nil
		}
	}
}

// PrintHuman renders the search as text.
func (r *RampResult) PrintHuman(w io.Writer) {
	fmt.Fprintf(w, "== saturation search (SLO: %s) ==\n", r.SLO)
	for _, s := range r.Steps {
		status := "PASS"
		if !s.Pass {
			status = "FAIL (" + s.Violation + ")"
		}
		fmt.Fprintf(w, "  offered %8.1f QPS: achieved %8.1f, p99 %v — %s\n",
			s.QPS, s.AchievedQPS,
			time.Duration(s.Latency.P99*float64(time.Microsecond)).Round(10*time.Microsecond),
			status)
	}
	switch {
	case r.SaturatedAt > 0 && r.MaxGoodQPS > 0:
		fmt.Fprintf(w, "  knee between %.1f and %.1f QPS\n", r.MaxGoodQPS, r.SaturatedAt)
	case r.SaturatedAt > 0:
		fmt.Fprintf(w, "  saturated already at the first step (%.1f QPS)\n", r.SaturatedAt)
	default:
		fmt.Fprintf(w, "  SLO held up to the search ceiling (%.1f QPS)\n", r.MaxGoodQPS)
	}
}
