package loadgen

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/impir/impir"
)

// startTinyQueuePair serves one flat 2-server deployment over loopback
// TCP with a deliberately tiny admission queue, so offered load past the
// engine's capacity turns into MsgBusy rejections instead of unbounded
// queueing.
func startTinyQueuePair(t *testing.T, db *impir.DB, queueDepth int) []string {
	t.Helper()
	addrs := make([]string, 2)
	for party := range addrs {
		srv, err := impir.NewServer(impir.ServerConfig{
			Engine:     impir.EngineCPU,
			Threads:    2, // low capacity on purpose
			QueueDepth: queueDepth,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(db); err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(lis, uint8(party)); err != nil {
			t.Fatal(err)
		}
		addrs[party] = srv.Addr().String()
	}
	return addrs
}

// TestOverloadBackpressureE2E drives offered load well past a tiny
// admission queue's capacity over real TCP and checks the whole
// backpressure story: the server's MsgBusy rejections surface
// client-side in both the run's Busy count and StoreStats.Busy, the
// operations that WERE admitted keep a bounded p99, the open-loop
// accounting conserves every offered arrival, and the harness leaks no
// goroutines once the store closes.
func TestOverloadBackpressureE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("overload e2e needs a few seconds of sustained load")
	}
	baselineGoroutines := runtime.NumGoroutine()

	db, err := impir.GenerateHashDB(2048, 7)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startTinyQueuePair(t, db, 2)
	ctx := context.Background()
	// A 16-connection pool: wire connections serialize, so parallel
	// connections are what let offered load actually pile onto the
	// admission queue.
	target := Target{}
	for i := 0; i < 16; i++ {
		store, err := impir.Open(ctx, impir.FlatDeployment(addrs...))
		if err != nil {
			t.Fatal(err)
		}
		target.PerClient = append(target.PerClient, store)
	}
	closePool := func() {
		for _, s := range target.PerClient {
			s.Close()
		}
	}
	defer closePool()

	res, err := Run(ctx, target, Config{
		QPS:      3000, // far past what 2 CPU threads admit through a depth-2 queue
		Duration: 2 * time.Second,
		Warmup:   200 * time.Millisecond,
		Clients:  32,
		Workers:  64,
		Timeout:  time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Backpressure must be visible, not silent: the server said MsgBusy
	// and the client counted it — in the run's accounting and in the
	// store's own counters.
	if res.Counts.Busy == 0 {
		t.Errorf("no busy rejections despite %0.f QPS into a depth-2 queue: %+v", res.OfferedQPS, res.Counts)
	}
	st := target.storeStats()
	if st.Busy == 0 {
		t.Errorf("StoreStats.Busy = 0; busy rejections invisible client-side: %+v", st)
	}
	if st.Busy > st.Errors {
		t.Errorf("Busy %d exceeds Errors %d — every busy is an error", st.Busy, st.Errors)
	}

	// Every offered arrival is accounted for.
	total := res.Counts.OK + res.Counts.Busy + res.Counts.Timeouts + res.Counts.Errors + res.Counts.Lost
	if total != res.Counts.Offered {
		t.Errorf("accounting leak: %d accounted of %d offered", total, res.Counts.Offered)
	}

	// Admitted operations stay bounded: a depth-2 queue holds back-to-
	// back work, so an admitted op waits at most a few service times —
	// nowhere near the 1s timeout. (The bound is deliberately loose; the
	// point is that admission control kept the tail from growing with
	// offered load.)
	if res.Counts.OK == 0 {
		t.Fatal("nothing was admitted at all")
	}
	if p99 := time.Duration(res.Latency.P99 * float64(time.Microsecond)); p99 > 900*time.Millisecond {
		t.Errorf("p99 of admitted ops %v approaches the timeout — queue not bounding latency", p99)
	}

	// No goroutine leaks: after the pool closes, the count settles back
	// to (near) the baseline. Server goroutines close via t.Cleanup later.
	closePool()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baselineGoroutines+4 || time.Now().After(deadline) {
			if n > baselineGoroutines+4 {
				t.Errorf("goroutines leaked: %d at start, %d after close", baselineGoroutines, n)
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}
