package loadgen

import (
	"fmt"
	"strings"
	"time"

	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
)

// ScrapeReport folds the servers' admin /metrics expositions into the
// run artifact, cross-checked against the in-process scheduler
// snapshots the exposition mirrors. It is captured once, after the
// run's workers drain: the harness waits for the servers' counters to
// settle (two consecutive identical snapshots), scrapes between them,
// and then demands EXACT agreement — the scheduler counters are
// mirrored from the same atomics QueueStats() reads, so at an idle
// moment any difference means the exporter pipeline (mirror hooks,
// text rendering, HTTP serving, parsing) dropped or skewed a value.
type ScrapeReport struct {
	// Servers holds each server's scraped samples (histogram bucket
	// series elided to keep the artifact readable), in ServerStats
	// order.
	Servers []map[string]float64 `json:"servers"`
	// Consistent reports the scrape agreed exactly with the paired
	// QueueStats snapshot on every mirrored counter.
	Consistent bool `json:"consistent"`
	// Mismatches lists every disagreement, one line each.
	Mismatches []string `json:"mismatches,omitempty"`
	// Error is set when scraping itself failed (no cross-check ran).
	Error string `json:"error,omitempty"`
}

// scrapeSettleAttempts bounds the idle-settle loop; under a healthy
// drain the first attempt already finds the servers quiescent.
const (
	scrapeSettleAttempts = 40
	scrapeSettlePause    = 25 * time.Millisecond
)

// captureScrape pairs one scrape with a settled QueueStats snapshot.
// Late frames (operations abandoned on their deadline but still in
// flight server-side) can tick counters briefly after the workers
// drain, so the capture retries until a snapshot taken before the
// scrape matches one taken after it.
func captureScrape(scrape func() ([]map[string]float64, error), stats func() []metrics.SchedulerStats) *ScrapeReport {
	var (
		samples []map[string]float64
		after   []metrics.SchedulerStats
	)
	for attempt := 0; ; attempt++ {
		before := stats()
		s, err := scrape()
		if err != nil {
			return &ScrapeReport{Error: err.Error()}
		}
		samples, after = s, stats()
		if schedCountersEqual(before, after) || attempt >= scrapeSettleAttempts {
			break
		}
		time.Sleep(scrapeSettlePause)
	}
	return newScrapeReport(samples, after)
}

// schedCountersEqual compares the mirrored counter fields of two
// snapshot slices (transient gauges like Depth are excluded — they do
// not participate in the cross-check).
func schedCountersEqual(a, b []metrics.SchedulerStats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Submitted != y.Submitted || x.Rejected != y.Rejected ||
			x.Cancelled != y.Cancelled || x.Dispatched != y.Dispatched ||
			x.Passes != y.Passes || x.CoalescedPasses != y.CoalescedPasses ||
			x.CoalescedQueries != y.CoalescedQueries || x.FusedPasses != y.FusedPasses ||
			x.Updates != y.Updates || x.Epoch != y.Epoch ||
			x.PassWidths != y.PassWidths {
			return false
		}
	}
	return true
}

// newScrapeReport cross-checks each server's scraped samples against
// its scheduler snapshot taken at the same idle moment.
func newScrapeReport(samples []map[string]float64, stats []metrics.SchedulerStats) *ScrapeReport {
	rep := &ScrapeReport{Consistent: true}
	if len(samples) != len(stats) {
		rep.Consistent = false
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("scraped %d servers but have queue stats for %d", len(samples), len(stats)))
	}
	for i, m := range samples {
		rep.Servers = append(rep.Servers, foldSamples(m))
		if i >= len(stats) {
			continue
		}
		st := stats[i]
		check := func(sample string, want uint64) {
			got, ok := m[sample]
			if !ok && want == 0 {
				return // a zero-valued series may legitimately not exist yet
			}
			if !ok || got != float64(want) {
				rep.Consistent = false
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("server %d: %s scraped %v, queue stats say %d", i, sample, got, want))
			}
		}
		check(obs.SchedulerMirrorSample("submitted"), st.Submitted)
		check(obs.SchedulerMirrorSample("rejected"), st.Rejected)
		check(obs.SchedulerMirrorSample("cancelled"), st.Cancelled)
		check(obs.SchedulerMirrorSample("dispatched"), st.Dispatched)
		check(obs.SchedulerMirrorSample("passes"), st.Passes)
		check(obs.SchedulerMirrorSample("coalesced_passes"), st.CoalescedPasses)
		check(obs.SchedulerMirrorSample("coalesced_queries"), st.CoalescedQueries)
		check(obs.SchedulerMirrorSample("fused_passes"), st.FusedPasses)
		check(obs.SchedulerMirrorSample("updates"), st.Updates)
		for b, w := range st.PassWidths {
			check(obs.PassWidthSample(b), w)
		}
	}
	return rep
}

// foldSamples elides histogram bucket series — dozens per family, and
// the quantile story already lives in the artifact's latency sections —
// keeping the folded scrape at counter/gauge granularity.
func foldSamples(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if strings.Contains(k, "_bucket{") {
			continue
		}
		out[k] = v
	}
	return out
}
