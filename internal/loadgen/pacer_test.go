package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestPacerSchedule: due times must follow start + i/qps exactly, with
// no cumulative drift, and the schedule must stop at the deadline.
func TestPacerSchedule(t *testing.T) {
	start := time.Unix(1000, 0)
	p := NewPacer(start, 250, 2*time.Second)
	var n int64
	for {
		due, ok := p.Next()
		if !ok {
			break
		}
		want := start.Add(time.Duration(n) * time.Second / 250)
		if due != want {
			t.Fatalf("arrival %d due %v, want %v", n, due, want)
		}
		n++
	}
	if n != 500 {
		t.Fatalf("schedule emitted %d arrivals, want 500 (250 QPS × 2s)", n)
	}
	if p.Offered() != 500 {
		t.Fatalf("Offered = %d", p.Offered())
	}
}

// TestPacerNoDriftAtHighRate: at rates where the per-arrival gap is not
// a whole nanosecond count, arrival N's due time must still be computed
// from N directly — the millionth arrival at 300k QPS lands within a
// microsecond of the ideal point, not a millionth of accumulated error.
func TestPacerNoDriftAtHighRate(t *testing.T) {
	start := time.Unix(0, 0)
	const qps = 300_000
	p := NewPacer(start, qps, time.Hour)
	var due time.Time
	for i := 0; i < 1_000_000; i++ {
		due, _ = p.Next()
	}
	ideal := start.Add(time.Duration(float64(999_999) * float64(time.Second) / qps))
	if diff := due.Sub(ideal); diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("arrival 999999 drifted %v from the ideal schedule", diff)
	}
}

// TestOpenLoopScheduleUnderStall: a stalled consumer must not slow the
// schedule down. The run uses a worker pool of 1 whose operations each
// take far longer than the arrival gap; the pacer must still offer the
// full schedule, and the arrivals the pool cannot absorb must surface
// as Lost — not silently vanish, not stretch the run.
func TestOpenLoopScheduleUnderStall(t *testing.T) {
	stall := 50 * time.Millisecond
	st := newFakeStore(1024, 32)
	st.delay = stall
	target := Target{Store: st}

	startAt := time.Now()
	res, err := Run(context.Background(), target, Config{
		QPS:      200,
		Duration: time.Second,
		Clients:  4,
		Workers:  1,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(startAt)

	if res.Counts.Offered != 200 {
		t.Errorf("offered %d arrivals, want the full 200-arrival schedule", res.Counts.Offered)
	}
	if res.Counts.Lost == 0 {
		t.Error("stalled pool lost no arrivals — offered load was silenced")
	}
	// One worker at 50ms/op absorbs ~20 ops/s; the rest must be Lost.
	// Everything offered is accounted for.
	total := res.Counts.OK + res.Counts.Busy + res.Counts.Timeouts + res.Counts.Errors + res.Counts.Lost
	if total != res.Counts.Offered {
		t.Errorf("accounting leak: ok+busy+timeout+err+lost = %d, offered = %d", total, res.Counts.Offered)
	}
	// The schedule must not stretch: the run ends within the duration
	// plus the drain of in-flight ops and scheduling slop.
	if elapsed > time.Second+stall+500*time.Millisecond {
		t.Errorf("run stretched to %v — the schedule slowed down for the stall", elapsed)
	}
}

// TestRunLatencyFromDueTime: latency is measured from the scheduled due
// time. With a backlog (workers=1, op time ≫ gap), later operations'
// recorded latency must include their queueing delay — the p99 must be
// well above the raw op time.
func TestRunLatencyFromDueTime(t *testing.T) {
	st := newFakeStore(1024, 32)
	st.delay = 10 * time.Millisecond
	res, err := Run(context.Background(), Target{Store: st}, Config{
		QPS:      100, // 10ms gap == op time: the single worker runs hot
		Duration: time.Second,
		Clients:  4,
		Workers:  1,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.OK == 0 {
		t.Fatal("no ops completed")
	}
	// An op's service time is 10ms; with the pool saturated the due-time
	// wait dominates. Coordinated omission would report ≈10ms here.
	if p99 := time.Duration(res.Latency.P99 * float64(time.Microsecond)); p99 < 15*time.Millisecond {
		t.Errorf("p99 %v barely above service time — latency not measured from due time", p99)
	}
}
