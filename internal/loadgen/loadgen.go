// Package loadgen is the production load harness: an open-loop
// constant-QPS generator that drives a simulated client population into
// a live IM-PIR deployment over TCP and reports what both sides of the
// wire saw — offered load, admitted load, and engine work — in one
// machine-readable artifact.
//
// The generator is open-loop: arrivals follow a fixed schedule
// (request i is due at start + i/QPS) no matter how the system under
// test is doing, and each latency is measured from the request's DUE
// time, not from when a worker got around to sending it. A stalled
// server therefore shows up as growing latency and Lost arrivals — it
// cannot silence the offered load the way a closed-loop benchmark's
// coordinated omission does. The worker pool is bounded; arrivals that
// find the pool and its backlog saturated are counted Lost, never
// dropped silently.
//
// On top of a run, Compare gates performance regressions: a committed
// baseline (BENCH_loadgen.json) pins the metric set of a fingerprinted
// configuration, and a later run of the SAME fingerprint fails the gate
// when a metric regresses past a threshold. Saturate ramps the offered
// QPS until an SLO breaks, locating the knee.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/metrics"
)

// Config shapes one load run.
type Config struct {
	// QPS is the offered open-loop arrival rate. Required.
	QPS float64
	// Duration is the measured window. Required.
	Duration time.Duration
	// Warmup runs the schedule for this long before measurement begins;
	// warmup operations are issued but discarded (connection setup, JIT
	// paths, cold caches).
	Warmup time.Duration
	// Clients is the simulated client population; arrivals round-robin
	// over it and each client draws its own deterministic operation
	// stream. 0 means 64.
	Clients int
	// Workers bounds the in-flight operation pool. 0 means
	// max(2×GOMAXPROCS, 32).
	Workers int
	// Batch is the per-operation batch size (RetrieveBatch/GetBatch
	// above 1). 0 means 1.
	Batch int
	// Workload selects what each arrival does. Empty means index.
	Workload Workload
	// Interval emits progress reports at this cadence; 0 disables them.
	Interval time.Duration
	// Timeout bounds each operation; 0 means none.
	Timeout time.Duration
	// Seed makes the operation streams reproducible.
	Seed int64
	// Topology labels the deployment in the fingerprint, e.g.
	// "2 shards × 2 parties × {2,1} replicas (cpu engine)".
	Topology string
	// OnInterval, when set, receives each progress report as it closes.
	OnInterval func(Interval)
	// ServerStats, when set, is polled at interval boundaries for the
	// servers' scheduler snapshots — available when the caller runs the
	// servers in-process (selfserve mode, tests, the CI perf gate).
	ServerStats func() []metrics.SchedulerStats
	// Scrape, when set alongside ServerStats, fetches each server's
	// admin /metrics exposition as parsed samples (same server order as
	// ServerStats). It is polled once after the run's workers drain,
	// paired with a QueueStats snapshot captured at the same idle
	// moment, and cross-checked for exact agreement in the artifact's
	// AdminScrape section — every run re-verifies the exporter pipeline
	// against in-process truth.
	Scrape func() ([]map[string]float64, error)
}

func (c Config) withDefaults() (Config, error) {
	if c.QPS <= 0 {
		return c, fmt.Errorf("loadgen: QPS must be positive, got %g", c.QPS)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	if c.Clients == 0 {
		c.Clients = 64
	}
	if c.Workers == 0 {
		c.Workers = max(2*runtime.GOMAXPROCS(0), 32)
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.Workload == "" {
		c.Workload = WorkloadIndex
	}
	if c.Workload == WorkloadBatch && c.Batch < 2 {
		// The batch workload exists to exercise RetrieveBatch; the
		// normalised size lands in the fingerprint, keeping runs honest.
		c.Batch = defaultBatchSize
	}
	if c.Clients < 1 || c.Workers < 1 || c.Batch < 1 {
		return c, fmt.Errorf("loadgen: clients/workers/batch must be positive")
	}
	return c, nil
}

// fingerprint derives the comparability key of a run.
func (c Config) fingerprint(t Target) Fingerprint {
	return Fingerprint{
		Workload:  string(c.Workload),
		QPS:       c.QPS,
		Clients:   c.Clients,
		Workers:   c.Workers,
		Conns:     max(len(t.PerClient), 1),
		Batch:     c.Batch,
		DurationS: c.Duration.Seconds(),
		WarmupS:   c.Warmup.Seconds(),
		Records:   t.geometry().NumRecords(),
		RecordLen: t.geometry().RecordSize(),
		Topology:  c.Topology,
		Seed:      c.Seed,
	}
}

// arrival is one scheduled request.
type arrival struct {
	due time.Time
	seq uint64
}

// counters is the run accounting; all fields are atomics so workers
// never contend on a lock.
type counters struct {
	offered   atomic.Uint64
	ok        atomic.Uint64
	busy      atomic.Uint64
	timeouts  atomic.Uint64
	errs      atomic.Uint64
	lost      atomic.Uint64
	warmupOps atomic.Uint64
}

func (c *counters) snapshot() Counts {
	return Counts{
		Offered:  c.offered.Load(),
		OK:       c.ok.Load(),
		Busy:     c.busy.Load(),
		Timeouts: c.timeouts.Load(),
		Errors:   c.errs.Load(),
		Lost:     c.lost.Load(),
	}
}

// Run drives one open-loop load run against the target and returns its
// artifact. Cancelling ctx stops the schedule; workers drain their
// in-flight operations and the partial result is returned with the
// context's error.
func Run(ctx context.Context, t Target, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	issue, err := newIssuer(t, cfg.Workload, cfg.Batch, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var (
		cnt  counters
		hist Hist
		wg   sync.WaitGroup
	)
	start := time.Now()
	measuredStart := start.Add(cfg.Warmup)
	work := make(chan arrival, cfg.Workers)

	// Baselines for the measured window's deltas, captured at the warmup
	// boundary (operations straddling it smear by at most the in-flight
	// set — measurement fuzz, not drift).
	var (
		baseMu      sync.Mutex
		storeBase   metrics.StoreStats
		serverBase  []metrics.SchedulerStats
		captureBase = func() {
			baseMu.Lock()
			defer baseMu.Unlock()
			storeBase = t.storeStats()
			if cfg.ServerStats != nil {
				serverBase = cfg.ServerStats()
			}
		}
	)
	if cfg.Warmup > 0 {
		warmupTimer := time.AfterFunc(cfg.Warmup, captureBase)
		defer warmupTimer.Stop()
	} else {
		captureBase()
	}

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for arr := range work {
				opCtx := ctx
				var cancel context.CancelFunc
				if cfg.Timeout > 0 {
					opCtx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				}
				err := issue(opCtx, int(arr.seq)%cfg.Clients, arr.seq)
				lat := time.Since(arr.due)
				if cancel != nil {
					cancel()
				}
				if arr.due.Before(measuredStart) {
					cnt.warmupOps.Add(1)
					continue
				}
				switch {
				case err == nil:
					cnt.ok.Add(1)
					hist.Record(lat)
				case errors.Is(err, impir.ErrServerBusy):
					cnt.busy.Add(1)
				case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
					cnt.timeouts.Add(1)
				case ctx.Err() != nil:
					// The run itself was cancelled mid-operation; the op
					// is neither the server's failure nor a timeout.
				default:
					cnt.errs.Add(1)
				}
			}
		}()
	}

	// Progress reporter.
	reporterQuit := make(chan struct{})
	reporterDone := make(chan struct{})
	var intervalsMu sync.Mutex
	var intervals []Interval
	if cfg.Interval > 0 {
		go func() {
			defer close(reporterDone)
			tick := time.NewTicker(cfg.Interval)
			defer tick.Stop()
			prevCounts := Counts{}
			prevHist := HistSnapshot{}
			var prevServers []metrics.SchedulerStats
			if cfg.ServerStats != nil {
				prevServers = cfg.ServerStats()
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-reporterQuit:
					return
				case now := <-tick.C:
					curCounts := cnt.snapshot()
					curHist := hist.Snapshot()
					iv := Interval{
						T:      now.Sub(start).Seconds(),
						Warmup: now.Before(measuredStart),
						Counts: curCounts.sub(prevCounts),
						Latency: quantilesOf(curHist.Sub(prevHist)),
					}
					iv.AchievedQPS = float64(iv.Counts.OK) / cfg.Interval.Seconds()
					if cfg.ServerStats != nil {
						curServers := cfg.ServerStats()
						if rep := newServerReport(curServers, prevServers); rep != nil {
							iv.Servers = rep.PerServer
						}
						prevServers = curServers
					}
					prevCounts, prevHist = curCounts, curHist
					intervalsMu.Lock()
					intervals = append(intervals, iv)
					intervalsMu.Unlock()
					if cfg.OnInterval != nil {
						cfg.OnInterval(iv)
					}
				}
			}
		}()
	} else {
		close(reporterDone)
	}

	// The open-loop schedule: warmup plus the measured window.
	pacer := NewPacer(start, cfg.QPS, cfg.Warmup+cfg.Duration)
	for {
		due, ok := pacer.Next()
		if !ok {
			break
		}
		if !sleepUntil(ctx, due) {
			break
		}
		arr := arrival{due: due, seq: uint64(pacer.Offered() - 1)}
		measured := !due.Before(measuredStart)
		if measured {
			cnt.offered.Add(1)
		}
		select {
		case work <- arr:
		default:
			// Pool and backlog saturated: the offer is lost, and saying
			// so is the point of open-loop accounting.
			if measured {
				cnt.lost.Add(1)
			} else {
				cnt.warmupOps.Add(1)
			}
		}
	}
	close(work)
	wg.Wait()
	close(reporterQuit)
	<-reporterDone

	elapsed := time.Since(measuredStart)
	if elapsed <= 0 {
		elapsed = time.Since(start) // cancelled inside warmup
	}

	res := &Result{
		Schema:      ResultSchema,
		Fingerprint: cfg.fingerprint(t),
		ElapsedS:    elapsed.Seconds(),
		Counts:      cnt.snapshot(),
		Latency:     quantilesOf(hist.Snapshot()),
		WarmupOps:   cnt.warmupOps.Load(),
		Intervals:   intervals,
	}
	res.OfferedQPS = float64(res.Counts.Offered) / elapsed.Seconds()
	res.AchievedQPS = float64(res.Counts.OK) / elapsed.Seconds()
	baseMu.Lock()
	res.Store = metrics.DeltaStore(t.storeStats(), storeBase)
	res.BatchCode = newBatchCodeReport(res.Store)
	if cfg.ServerStats != nil {
		res.Servers = newServerReport(cfg.ServerStats(), serverBase)
	}
	baseMu.Unlock()
	if kv, ok := t.kvStats(); ok {
		res.KV = &kv
	}
	if cfg.Scrape != nil && cfg.ServerStats != nil && ctx.Err() == nil {
		res.AdminScrape = captureScrape(cfg.Scrape, cfg.ServerStats)
	}
	return res, ctx.Err()
}
