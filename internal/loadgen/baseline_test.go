package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
)

func gateFixtures() (*Baseline, *Result) {
	fp := Fingerprint{
		Workload: "index", QPS: 200, Clients: 32, Workers: 32, Batch: 1,
		DurationS: 10, WarmupS: 2, Records: 4096, RecordLen: 32,
		Topology: "selfserve/cpu", Seed: 1,
	}
	res := &Result{
		Schema:      ResultSchema,
		Fingerprint: fp,
		AchievedQPS: 200,
		Counts:      Counts{Offered: 2000, OK: 2000},
		Latency:     Quantiles{P50: 1000, P99: 2000, P999: 3000},
	}
	base := NewBaseline(res, "test fixture")
	return base, res
}

// TestCompareRegressionFails: a metric past the threshold must fail the
// gate, and the regressed line must lead the report.
func TestCompareRegressionFails(t *testing.T) {
	base, res := gateFixtures()
	res.Latency.P50 = 1000 * 1.40 // 40% worse than baseline

	cmp, err := Compare(base, res, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed {
		t.Fatal("40% p50 regression passed a 25% gate")
	}
	if first := cmp.Lines[0]; first.Metric != "p50_us" || !first.Regressed {
		t.Errorf("regressed metric not ranked first: %+v", cmp.Lines)
	}
	if !strings.Contains(cmp.String(), "REGRESSION") {
		t.Errorf("report missing verdict: %s", cmp.String())
	}
}

// TestCompareImprovementPasses: metrics moving in the good direction —
// lower latency, higher throughput — must pass however far they move.
func TestCompareImprovementPasses(t *testing.T) {
	base, res := gateFixtures()
	res.Latency.P50 = 10    // 100× better
	res.Latency.P99 = 20
	res.Latency.P999 = 30
	res.AchievedQPS = 2000 // 10× better

	cmp, err := Compare(base, res, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed {
		t.Fatalf("improvement failed the gate: %s", cmp.String())
	}
}

// TestCompareThroughputDirection: achieved_qps regresses downward, not
// upward.
func TestCompareThroughputDirection(t *testing.T) {
	base, res := gateFixtures()
	res.AchievedQPS = 200 * 0.60 // 40% below baseline

	cmp, err := Compare(base, res, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed {
		t.Fatal("40% throughput drop passed a 25% gate")
	}
}

// TestCompareRatesAreAbsolute: a failure rate is compared in percentage
// points, so a 0 → 0.5% move stays within a 25% gate while 0 → 30%
// breaks it — relative change against a zero baseline is meaningless.
func TestCompareRatesAreAbsolute(t *testing.T) {
	base, res := gateFixtures()
	res.Counts.Busy = 10 // 0.5% of 2000 offered

	cmp, err := Compare(base, res, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed {
		t.Fatalf("0.5%% busy rate broke a 25-point gate: %s", cmp.String())
	}

	res.Counts.Busy = 600 // 30% of offered
	cmp, err = Compare(base, res, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Regressed {
		t.Fatal("30% busy rate passed a 25-point gate")
	}
}

// TestCompareFingerprintMismatchRefuses: different configurations must
// refuse with an error, never produce a verdict.
func TestCompareFingerprintMismatchRefuses(t *testing.T) {
	base, res := gateFixtures()
	res.Fingerprint.QPS = 500

	if _, err := Compare(base, res, 25); err == nil {
		t.Fatal("fingerprint mismatch produced a verdict instead of refusing")
	}

	base, res = gateFixtures()
	res.Schema = "impir-loadgen/999"
	if _, err := Compare(base, res, 25); err == nil {
		t.Fatal("schema mismatch produced a verdict instead of refusing")
	}

	base, res = gateFixtures()
	base.Metrics["p42_us"] = 1
	if _, err := Compare(base, res, 25); err == nil {
		t.Fatal("unknown baseline metric produced a verdict instead of refusing")
	}
}

// TestBaselineRoundTrip: Save → LoadBaseline → Compare against the very
// run it came from must pass cleanly.
func TestBaselineRoundTrip(t *testing.T) {
	base, res := gateFixtures()
	path := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Note != "test fixture" {
		t.Errorf("note lost in round trip: %q", loaded.Note)
	}
	cmp, err := Compare(loaded, res, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressed {
		t.Fatalf("self-comparison regressed: %s", cmp.String())
	}
}
