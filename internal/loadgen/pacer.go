package loadgen

import (
	"context"
	"time"
)

// Pacer emits the open-loop arrival schedule: the i-th request is due
// at start + i/qps, computed from i directly so float accumulation
// never drifts the schedule. The schedule is independent of how the
// system under test is doing — a stalled server does not slow the
// offered load down, it piles it up. That is the property that makes
// the recorded latencies coordinated-omission-free: each request's
// latency is measured from the time it was DUE, not from whenever a
// worker got around to sending it.
type Pacer struct {
	start    time.Time
	perSec   float64
	n        int64 // arrivals handed out
	deadline time.Time
}

// NewPacer schedules qps arrivals per second for the given duration
// starting at start. qps must be positive.
func NewPacer(start time.Time, qps float64, duration time.Duration) *Pacer {
	return &Pacer{start: start, perSec: qps, deadline: start.Add(duration)}
}

// Next returns the due time of the next arrival and whether the
// schedule still runs (false once the duration is exhausted).
func (p *Pacer) Next() (time.Time, bool) {
	due := p.start.Add(time.Duration(float64(p.n) * float64(time.Second) / p.perSec))
	if !due.Before(p.deadline) {
		return time.Time{}, false
	}
	p.n++
	return due, true
}

// Offered returns how many arrivals the pacer has emitted.
func (p *Pacer) Offered() int64 { return p.n }

// sleepUntil blocks until t or until the context dies, whichever is
// first; it returns false on context death. Past-due times return
// immediately — arrivals behind schedule fire in a burst, which is
// exactly what an open-loop generator owes its schedule.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		// Still observe cancellation between burst arrivals.
		select {
		case <-ctx.Done():
			return false
		default:
			return true
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
