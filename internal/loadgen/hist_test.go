package loadgen

import (
	"testing"
	"time"
)

// The histogram implementation and its invariant tests live in
// internal/obs; this checks the aliases preserve loadgen's observable
// quantile behaviour (upper-edge representatives, interval deltas).
func TestHistAliasBehaviour(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if q := s.Quantile(0.5); q < 500*time.Millisecond || q > 540*time.Millisecond {
		t.Errorf("median %v outside upper-edge band [500ms, 540ms]", q)
	}
	if s.Max != 1000*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}

	for i := 0; i < 100; i++ {
		h.Record(5 * time.Second)
	}
	d := h.Snapshot().Sub(s)
	if d.Count != 100 {
		t.Errorf("delta count = %d, want 100", d.Count)
	}
	if q := d.Quantile(0.5); q < 5*time.Second {
		t.Errorf("delta median %v under-reports the 5s burst", q)
	}
}
