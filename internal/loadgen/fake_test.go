package loadgen

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/metrics"
)

// fakeStore is an in-memory impir.Store for runner tests: configurable
// per-op delay and error, counting concurrently like the real clients.
type fakeStore struct {
	records    uint64
	recordSize int
	delay      time.Duration
	fail       error // returned by every op when set

	retrievals atomic.Uint64
	batches    atomic.Uint64
	errs       atomic.Uint64
	busy       atomic.Uint64
}

func newFakeStore(records uint64, recordSize int) *fakeStore {
	return &fakeStore{records: records, recordSize: recordSize}
}

func (f *fakeStore) op(ctx context.Context) error {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			f.errs.Add(1)
			return ctx.Err()
		}
	}
	if f.fail != nil {
		f.errs.Add(1)
		if ctx.Err() == nil && f.fail == impir.ErrServerBusy {
			f.busy.Add(1)
		}
		return f.fail
	}
	return nil
}

func (f *fakeStore) Retrieve(ctx context.Context, index uint64, opts ...impir.CallOption) ([]byte, error) {
	f.retrievals.Add(1)
	if err := f.op(ctx); err != nil {
		return nil, err
	}
	return make([]byte, f.recordSize), nil
}

func (f *fakeStore) RetrieveBatch(ctx context.Context, indices []uint64, opts ...impir.CallOption) ([][]byte, error) {
	f.batches.Add(1)
	if err := f.op(ctx); err != nil {
		return nil, err
	}
	out := make([][]byte, len(indices))
	for i := range out {
		out[i] = make([]byte, f.recordSize)
	}
	return out, nil
}

func (f *fakeStore) Update(ctx context.Context, updates map[uint64][]byte, opts ...impir.CallOption) error {
	return f.op(ctx)
}

func (f *fakeStore) NumRecords() uint64 { return f.records }
func (f *fakeStore) RecordSize() int    { return f.recordSize }
func (f *fakeStore) Close() error       { return nil }

func (f *fakeStore) Stats() metrics.StoreStats {
	return metrics.StoreStats{
		Retrievals:      f.retrievals.Load(),
		BatchRetrievals: f.batches.Load(),
		Errors:          f.errs.Load(),
		Busy:            f.busy.Load(),
	}
}

var _ impir.Store = (*fakeStore)(nil)
