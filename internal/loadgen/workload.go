package loadgen

import (
	"context"
	"errors"
	"fmt"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/metrics"
)

// Workload names what each simulated client does per arrival.
type Workload string

const (
	// WorkloadIndex issues index retrievals (Retrieve, or RetrieveBatch
	// when the batch size exceeds 1) over uniformly random records.
	WorkloadIndex Workload = "index"
	// WorkloadKeyword issues keyword lookups through the KV view: a mix
	// of hits (drawn from the known corpus) and misses, which are
	// byte-identical on the wire by construction.
	WorkloadKeyword Workload = "keyword"
	// WorkloadMixed alternates index and keyword operations per arrival.
	WorkloadMixed Workload = "mixed"
	// WorkloadBatch issues multi-record RetrieveBatch operations every
	// arrival — the workload the batch-code layer exists for. The batch
	// size defaults to defaultBatchSize when -batch leaves it below 2,
	// so the workload always exercises the batched path.
	WorkloadBatch Workload = "batch"
)

// defaultBatchSize is the batch the batch workload issues when the
// configured batch size would degenerate to single retrievals.
const defaultBatchSize = 8

// ParseWorkload converts a -workload flag value.
func ParseWorkload(s string) (Workload, error) {
	switch Workload(s) {
	case WorkloadIndex, WorkloadKeyword, WorkloadMixed, WorkloadBatch:
		return Workload(s), nil
	default:
		return "", fmt.Errorf("loadgen: unknown workload %q (want index, keyword, mixed, or batch)", s)
	}
}

// keywordHitRatio is the fraction of keyword lookups that target a
// stored key; the rest are deliberate misses (identical wire shape).
const keywordHitRatio = 0.75

// Target is the system under test.
type Target struct {
	// Store is the index store the load is driven into.
	Store impir.Store
	// KV is the keyword view over the same store; required for the
	// keyword and mixed workloads.
	KV *impir.KVClient
	// Keys is the stored-key corpus keyword hits are drawn from.
	Keys [][]byte
	// PerClient optionally gives the simulated population its own
	// connection pool: simulated client i issues through
	// PerClient[i%len(PerClient)]. One wire connection carries one
	// request at a time, so a single shared Store caps the server-side
	// concurrency at one per server — real populations (and real
	// overload) need parallel connections. When empty, every client
	// shares Store.
	PerClient []impir.Store
	// PerClientKV mirrors PerClient for the keyword view.
	PerClientKV []*impir.KVClient
}

func (t Target) validate(w Workload) error {
	if t.Store == nil && len(t.PerClient) == 0 {
		return errors.New("loadgen: target has no store")
	}
	if w == WorkloadKeyword || w == WorkloadMixed {
		if t.KV == nil && len(t.PerClientKV) == 0 {
			return fmt.Errorf("loadgen: the %s workload needs a keyword view (Target.KV)", w)
		}
		if len(t.Keys) == 0 {
			return fmt.Errorf("loadgen: the %s workload needs a stored-key corpus (Target.Keys)", w)
		}
	}
	return nil
}

// storeFor routes a simulated client to its connection pool slot.
func (t Target) storeFor(client int) impir.Store {
	if len(t.PerClient) > 0 {
		return t.PerClient[client%len(t.PerClient)]
	}
	return t.Store
}

// kvFor mirrors storeFor for the keyword view.
func (t Target) kvFor(client int) *impir.KVClient {
	if len(t.PerClientKV) > 0 {
		return t.PerClientKV[client%len(t.PerClientKV)]
	}
	return t.KV
}

// geometry returns a store to read record geometry from.
func (t Target) geometry() impir.Store {
	if t.Store != nil {
		return t.Store
	}
	return t.PerClient[0]
}

// storeStats sums the client-side counters over the whole pool.
func (t Target) storeStats() metrics.StoreStats {
	if len(t.PerClient) == 0 {
		return t.Store.Stats()
	}
	var sum metrics.StoreStats
	for _, s := range t.PerClient {
		addStoreStats(&sum, s.Stats())
	}
	return sum
}

// kvStats sums the keyword-view counters over the whole pool; false
// when the target has no keyword view.
func (t Target) kvStats() (metrics.KVStats, bool) {
	if len(t.PerClientKV) == 0 {
		if t.KV == nil {
			return metrics.KVStats{}, false
		}
		return t.KV.Stats(), true
	}
	var sum metrics.KVStats
	for _, kv := range t.PerClientKV {
		st := kv.Stats()
		sum.Gets += st.Gets
		sum.BatchGets += st.BatchGets
		sum.BatchKeys += st.BatchKeys
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Puts += st.Puts
		sum.Deletes += st.Deletes
		sum.ProbedBuckets += st.ProbedBuckets
		sum.Errors += st.Errors
	}
	return sum, true
}

// addStoreStats accumulates src into dst, shards elementwise.
func addStoreStats(dst *metrics.StoreStats, src metrics.StoreStats) {
	dst.Retrievals += src.Retrievals
	dst.BatchRetrievals += src.BatchRetrievals
	dst.Updates += src.Updates
	dst.Errors += src.Errors
	dst.Busy += src.Busy
	dst.Retries += src.Retries
	dst.Hedges += src.Hedges
	dst.HedgeWins += src.HedgeWins
	dst.CodedBatches += src.CodedBatches
	dst.CodedQueries += src.CodedQueries
	dst.CodedDummies += src.CodedDummies
	dst.CodeFallbacks += src.CodeFallbacks
	dst.SideInfoHits += src.SideInfoHits
	for i, sh := range src.Shards {
		if i >= len(dst.Shards) {
			dst.Shards = append(dst.Shards, sh)
			continue
		}
		d := &dst.Shards[i]
		d.Queries += sh.Queries
		d.Batches += sh.Batches
		d.BatchQueries += sh.BatchQueries
		d.UpdateRows += sh.UpdateRows
		d.Errors += sh.Errors
		d.TotalTime += sh.TotalTime
	}
}

// splitmix64 is the per-arrival deterministic RNG: cheap, allocation
// free, and stateless — arrival (client, seq) always draws the same
// operation for a given seed, so a run is reproducible however the
// worker pool interleaves.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// issuer issues one logical operation for an arrival; it reports the
// operation's error (nil on success — an intended keyword miss that
// comes back ErrNotFound is a success).
type issuer func(ctx context.Context, client int, seq uint64) error

// newIssuer builds the per-arrival operation for the configured
// workload over the target.
func newIssuer(t Target, w Workload, batch int, seed int64) (issuer, error) {
	if err := t.validate(w); err != nil {
		return nil, err
	}
	if batch < 1 {
		batch = 1
	}
	if w == WorkloadBatch && batch < 2 {
		batch = defaultBatchSize
	}
	numRecords := t.geometry().NumRecords()
	if numRecords == 0 {
		return nil, errors.New("loadgen: target store reports zero records")
	}

	index := func(ctx context.Context, client int, seq uint64) error {
		store := t.storeFor(client)
		base := splitmix64(uint64(seed)<<32 ^ uint64(client)<<40 ^ seq)
		if batch == 1 {
			_, err := store.Retrieve(ctx, base%numRecords)
			return err
		}
		indices := make([]uint64, batch)
		for i := range indices {
			indices[i] = splitmix64(base+uint64(i)) % numRecords
		}
		_, err := store.RetrieveBatch(ctx, indices)
		return err
	}

	keyword := func(ctx context.Context, client int, seq uint64) error {
		kv := t.kvFor(client)
		base := splitmix64(uint64(seed)<<32 ^ uint64(client)<<40 ^ seq ^ 0x6b77) // keyword ops draw from their own stream
		key := drawKey(t.Keys, base)
		if batch == 1 {
			_, err := kv.Get(ctx, key)
			if errors.Is(err, impir.ErrNotFound) {
				err = nil
			}
			return err
		}
		keys := make([][]byte, batch)
		for i := range keys {
			keys[i] = drawKey(t.Keys, splitmix64(base+uint64(i)))
		}
		// Misses come back as nil entries from GetBatch, not as errors.
		_, err := kv.GetBatch(ctx, keys)
		return err
	}

	batched := func(ctx context.Context, client int, seq uint64) error {
		store := t.storeFor(client)
		base := splitmix64(uint64(seed)<<32 ^ uint64(client)<<40 ^ seq ^ 0xba7c) // its own draw stream
		indices := make([]uint64, batch)
		for i := range indices {
			indices[i] = splitmix64(base+uint64(i)) % numRecords
		}
		_, err := store.RetrieveBatch(ctx, indices)
		return err
	}

	switch w {
	case WorkloadIndex:
		return index, nil
	case WorkloadBatch:
		return batched, nil
	case WorkloadKeyword:
		return keyword, nil
	case WorkloadMixed:
		return func(ctx context.Context, client int, seq uint64) error {
			if seq%2 == 0 {
				return index(ctx, client, seq)
			}
			return keyword(ctx, client, seq)
		}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown workload %q", w)
	}
}

// drawKey picks a stored key with probability keywordHitRatio, a
// deliberately absent one otherwise. Miss keys are random bytes of a
// stored key's length — they must fit the table's configured key size,
// and at that length a random draw is absent with overwhelming
// probability (a freak collision just counts as a hit).
func drawKey(keys [][]byte, r uint64) []byte {
	if float64(r%1000)/1000 < keywordHitRatio {
		return keys[splitmix64(r)%uint64(len(keys))]
	}
	n := len(keys[splitmix64(r+1)%uint64(len(keys))])
	key := make([]byte, n)
	var x uint64
	for i := range key {
		if i%8 == 0 {
			x = splitmix64(r + uint64(i))
		}
		key[i] = byte(x >> (8 * (i % 8)))
	}
	return key
}
