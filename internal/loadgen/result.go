package loadgen

import (
	"fmt"
	"io"
	"time"

	"github.com/impir/impir/internal/metrics"
)

// ResultSchema versions the machine-readable run artifact. Bump it when
// a field changes meaning; the perf gate refuses to compare across
// schema versions.
const ResultSchema = "impir-loadgen/1"

// Fingerprint pins the configuration a run's numbers are only
// comparable under. Two results (or a result and a baseline) with
// different fingerprints must never be compared — a p99 at 100 QPS
// against 4096 records says nothing about one at 500 QPS against a
// million. Host identity is deliberately absent: baselines are
// refreshed per hardware class, not per machine.
type Fingerprint struct {
	Workload  string  `json:"workload"`
	QPS       float64 `json:"qps"`
	Clients   int     `json:"clients"`
	Workers   int     `json:"workers"`
	// Conns is the population's parallel connection-pool count (1 =
	// shared store); wire connections serialize, so this shapes the
	// concurrency the servers actually see.
	Conns     int     `json:"conns"`
	Batch     int     `json:"batch"`
	DurationS float64 `json:"duration_s"`
	WarmupS   float64 `json:"warmup_s"`
	Records   uint64  `json:"records"`
	RecordLen int     `json:"record_size"`
	Topology  string  `json:"topology"`
	Seed      int64   `json:"seed"`
}

// Quantiles summarises a latency distribution in microseconds (the
// histogram's native unit; float for JSON friendliness).
type Quantiles struct {
	P50  float64 `json:"p50_us"`
	P90  float64 `json:"p90_us"`
	P99  float64 `json:"p99_us"`
	P999 float64 `json:"p999_us"`
	Max  float64 `json:"max_us"`
	Mean float64 `json:"mean_us"`
}

func quantilesOf(s HistSnapshot) Quantiles {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return Quantiles{
		P50:  us(s.Quantile(0.50)),
		P90:  us(s.Quantile(0.90)),
		P99:  us(s.Quantile(0.99)),
		P999: us(s.Quantile(0.999)),
		Max:  us(s.Max),
		Mean: us(s.Mean()),
	}
}

// Counts is the request accounting of a run or interval. Offered =
// OK + Busy + Timeouts + Errors + Lost + still-in-flight at snapshot
// time.
type Counts struct {
	// Offered is how many arrivals the open-loop schedule emitted.
	Offered uint64 `json:"offered"`
	// OK counts operations that completed successfully.
	OK uint64 `json:"ok"`
	// Busy counts operations rejected by server backpressure (MsgBusy).
	Busy uint64 `json:"busy"`
	// Timeouts counts operations that died on the per-op deadline.
	Timeouts uint64 `json:"timeouts"`
	// Errors counts every other failure.
	Errors uint64 `json:"errors"`
	// Lost counts arrivals the bounded worker pool could not even
	// launch — the pool and its backlog were saturated. They are the
	// offered load a stalled server silenced; counting them is what
	// keeps the offered rate honest.
	Lost uint64 `json:"lost"`
}

func (c Counts) sub(prev Counts) Counts {
	return Counts{
		Offered:  c.Offered - prev.Offered,
		OK:       c.OK - prev.OK,
		Busy:     c.Busy - prev.Busy,
		Timeouts: c.Timeouts - prev.Timeouts,
		Errors:   c.Errors - prev.Errors,
		Lost:     c.Lost - prev.Lost,
	}
}

// failures is everything offered that did not succeed.
func (c Counts) failures() uint64 { return c.Busy + c.Timeouts + c.Errors + c.Lost }

// FailureRate is failures over offered load, in [0,1].
func (c Counts) FailureRate() float64 {
	if c.Offered == 0 {
		return 0
	}
	return float64(c.failures()) / float64(c.Offered)
}

// Interval is one progress report: the counts and latency distribution
// of the slice of the run since the previous report, plus — when the
// runner can see the servers — the scheduler activity of the slice.
type Interval struct {
	// T is seconds since the run began; the measured window starts at
	// the fingerprint's warmup_s.
	T float64 `json:"t_s"`
	// Warmup marks intervals inside the discarded warmup window.
	Warmup bool   `json:"warmup,omitempty"`
	Counts Counts `json:"counts"`
	// AchievedQPS is OK completions per second in the interval.
	AchievedQPS float64   `json:"achieved_qps"`
	Latency     Quantiles `json:"latency"`
	// Servers holds each server's scheduler delta over the interval
	// (in-process runs only; absent when driving a remote deployment).
	Servers []metrics.SchedulerStats `json:"servers,omitempty"`
}

// Format renders the interval as one human progress line.
func (iv Interval) Format() string {
	c := iv.Counts
	line := fmt.Sprintf("t=%6.1fs qps=%8.1f ok=%-7d p50=%s p99=%s",
		iv.T, iv.AchievedQPS, c.OK,
		time.Duration(iv.Latency.P50*float64(time.Microsecond)).Round(10*time.Microsecond),
		time.Duration(iv.Latency.P99*float64(time.Microsecond)).Round(10*time.Microsecond))
	if n := c.failures(); n > 0 {
		line += fmt.Sprintf(" busy=%d timeout=%d err=%d lost=%d", c.Busy, c.Timeouts, c.Errors, c.Lost)
	}
	if iv.Warmup {
		line += " (warmup)"
	}
	return line
}

// ServerReport snapshots what the servers did across the measured
// window: per-server scheduler deltas plus their sum, so offered load
// (client side), admitted load, and engine work sit in one artifact.
type ServerReport struct {
	PerServer []metrics.SchedulerStats `json:"per_server"`
	// Aggregate sums the per-server counter deltas (gauges: max of
	// MaxDepth, last Epoch).
	Aggregate metrics.SchedulerStats `json:"aggregate"`
	// WidthLabels names the Aggregate.PassWidths buckets.
	WidthLabels []string `json:"width_labels"`
}

func newServerReport(cur, prev []metrics.SchedulerStats) *ServerReport {
	if len(cur) == 0 {
		return nil
	}
	r := &ServerReport{PerServer: make([]metrics.SchedulerStats, len(cur))}
	for i := range cur {
		var p metrics.SchedulerStats
		if i < len(prev) {
			p = prev[i]
		}
		d := metrics.Delta(cur[i], p)
		r.PerServer[i] = d
		r.Aggregate.Submitted += d.Submitted
		r.Aggregate.Rejected += d.Rejected
		r.Aggregate.Cancelled += d.Cancelled
		r.Aggregate.Dispatched += d.Dispatched
		r.Aggregate.Passes += d.Passes
		r.Aggregate.CoalescedPasses += d.CoalescedPasses
		r.Aggregate.CoalescedQueries += d.CoalescedQueries
		r.Aggregate.FusedPasses += d.FusedPasses
		r.Aggregate.TotalWait += d.TotalWait
		r.Aggregate.Updates += d.Updates
		for b := range d.PassWidths {
			r.Aggregate.PassWidths[b] += d.PassWidths[b]
		}
		if d.MaxDepth > r.Aggregate.MaxDepth {
			r.Aggregate.MaxDepth = d.MaxDepth
		}
		r.Aggregate.Epoch = d.Epoch
	}
	for b := 0; b < metrics.NumWidthBuckets; b++ {
		r.WidthLabels = append(r.WidthLabels, metrics.WidthBucketLabel(b))
	}
	return r
}

// Result is the whole run's machine-readable artifact.
type Result struct {
	Schema      string      `json:"schema"`
	Fingerprint Fingerprint `json:"fingerprint"`
	// ElapsedS is the measured window's length (warmup excluded).
	ElapsedS    float64   `json:"elapsed_s"`
	OfferedQPS  float64   `json:"offered_qps"`
	AchievedQPS float64   `json:"achieved_qps"`
	Counts      Counts    `json:"counts"`
	Latency     Quantiles `json:"latency"`
	// WarmupOps counts operations issued and discarded during warmup.
	WarmupOps uint64     `json:"warmup_ops,omitempty"`
	Intervals []Interval `json:"intervals,omitempty"`
	// Servers is the server-side scheduler delta over the measured
	// window (in-process runs only).
	Servers *ServerReport `json:"servers,omitempty"`
	// AdminScrape folds the servers' admin /metrics scrape into the
	// artifact, cross-checked against a QueueStats snapshot captured at
	// the same idle moment (selfserve runs with admin endpoints only).
	AdminScrape *ScrapeReport `json:"admin_scrape,omitempty"`
	// Store is the client-side store counter delta over the measured
	// window; KV additionally for keyword workloads (cumulative — the
	// KV layer has no delta helper, and the runner owns the client, so
	// cumulative equals the run).
	Store metrics.StoreStats `json:"store"`
	KV    *metrics.KVStats   `json:"kv,omitempty"`
	// BatchCode summarises the batch-code layer's activity over the
	// measured window — present only when the driven store actually
	// served coded batches (coded deployments), so existing baselines
	// keep their fingerprints and byte-identical artifacts.
	BatchCode *BatchCodeReport `json:"batch_code,omitempty"`
	// Ramp carries the saturation-search steps when -ramp ran.
	Ramp *RampResult `json:"ramp,omitempty"`
	// Traces condenses the client-side sampled span trees of the run
	// (runs with -trace-sample only; omitted otherwise so existing
	// baselines keep their fingerprint).
	Traces []TraceSummary `json:"traces,omitempty"`
}

// BatchCodeReport is the run's multi-message accounting: how many
// batches rode the batch-code planner, the constant-shape sub-queries
// they issued (and how many of those were dummies), cache hits spent as
// side information, and uncoded fallbacks. All client-side counters —
// nothing here is visible on the wire.
type BatchCodeReport struct {
	CodedBatches  uint64 `json:"coded_batches"`
	BucketQueries uint64 `json:"bucket_queries"`
	DummyQueries  uint64 `json:"dummy_queries"`
	SideInfoHits  uint64 `json:"side_info_hits"`
	Fallbacks     uint64 `json:"fallbacks"`
}

// newBatchCodeReport folds the store delta's coded counters into the
// artifact section; nil when the run never touched the coded path.
func newBatchCodeReport(s metrics.StoreStats) *BatchCodeReport {
	if s.CodedBatches == 0 && s.CodeFallbacks == 0 && s.SideInfoHits == 0 {
		return nil
	}
	return &BatchCodeReport{
		CodedBatches:  s.CodedBatches,
		BucketQueries: s.CodedQueries,
		DummyQueries:  s.CodedDummies,
		SideInfoHits:  s.SideInfoHits,
		Fallbacks:     s.CodeFallbacks,
	}
}

// TraceSummary is one sampled client trace boiled down to the numbers a
// run artifact needs: which operation, how long, how wide the tree got.
// The full span trees stay in the tracer's ring — the artifact records
// enough to spot outliers, not to replay them.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	Op      string `json:"op"`
	DurUS   int64  `json:"dur_us"`
	// Spans counts every span in the tree (root, per-shard, per-party,
	// per-attempt).
	Spans int `json:"spans"`
	// Error carries the root span's error attribute, if the operation
	// failed.
	Error string `json:"error,omitempty"`
}

// BaselineMetrics projects the result onto the named scalar metrics the
// perf gate compares. Rates are in [0,1]; latencies in microseconds.
// The tail quantiles (p99, p999) are deliberately reported but NOT
// gated: on a short CI profile they are the worst handful of samples,
// and on shared runners they move several-fold between healthy runs —
// gating them makes the gate cry wolf until it gets ignored. The gated
// set is what stays stable run-to-run: sustained throughput, the median,
// and the failure rates (which is where a saturated or rejecting server
// actually shows up).
func (r *Result) BaselineMetrics() map[string]float64 {
	div := func(n uint64) float64 {
		if r.Counts.Offered == 0 {
			return 0
		}
		return float64(n) / float64(r.Counts.Offered)
	}
	return map[string]float64{
		"achieved_qps": r.AchievedQPS,
		"p50_us":       r.Latency.P50,
		"busy_rate":    div(r.Counts.Busy),
		"error_rate":   div(r.Counts.Timeouts + r.Counts.Errors + r.Counts.Lost),
	}
}

// PrintHuman renders the run summary as text.
func (r *Result) PrintHuman(w io.Writer) {
	fmt.Fprintf(w, "== loadgen: %s workload, %.0f QPS offered, %d clients, batch %d ==\n",
		r.Fingerprint.Workload, r.Fingerprint.QPS, r.Fingerprint.Clients, r.Fingerprint.Batch)
	fmt.Fprintf(w, "  topology   : %s (%d records × %dB)\n",
		r.Fingerprint.Topology, r.Fingerprint.Records, r.Fingerprint.RecordLen)
	fmt.Fprintf(w, "  window     : %.1fs measured (+%.1fs warmup, %d ops discarded)\n",
		r.ElapsedS, r.Fingerprint.WarmupS, r.WarmupOps)
	c := r.Counts
	fmt.Fprintf(w, "  offered    : %d (%.1f QPS)\n", c.Offered, r.OfferedQPS)
	fmt.Fprintf(w, "  completed  : %d ok (%.1f QPS), %d busy, %d timeout, %d error, %d lost\n",
		c.OK, r.AchievedQPS, c.Busy, c.Timeouts, c.Errors, c.Lost)
	us := func(v float64) time.Duration {
		return time.Duration(v * float64(time.Microsecond)).Round(time.Microsecond)
	}
	fmt.Fprintf(w, "  latency    : p50=%v p90=%v p99=%v p999=%v max=%v mean=%v\n",
		us(r.Latency.P50), us(r.Latency.P90), us(r.Latency.P99),
		us(r.Latency.P999), us(r.Latency.Max), us(r.Latency.Mean))
	fmt.Fprintf(w, "  store      : %v\n", r.Store.String())
	if bc := r.BatchCode; bc != nil {
		fmt.Fprintf(w, "  batch code : %d coded batches, %d bucket queries (%d dummies), %d side-info hits, %d fallbacks\n",
			bc.CodedBatches, bc.BucketQueries, bc.DummyQueries, bc.SideInfoHits, bc.Fallbacks)
	}
	if r.KV != nil {
		fmt.Fprintf(w, "  kv         : %v\n", r.KV.String())
	}
	if r.Servers != nil {
		agg := r.Servers.Aggregate
		fmt.Fprintf(w, "  servers    : %d × scheduler — %v\n", len(r.Servers.PerServer), agg.String())
		fmt.Fprintf(w, "  pass widths:")
		for b, n := range agg.PassWidths {
			if n > 0 {
				fmt.Fprintf(w, " %s:%d", metrics.WidthBucketLabel(b), n)
			}
		}
		fmt.Fprintln(w)
	}
	if r.AdminScrape != nil {
		switch {
		case r.AdminScrape.Error != "":
			fmt.Fprintf(w, "  scrape     : FAILED — %s\n", r.AdminScrape.Error)
		case r.AdminScrape.Consistent:
			fmt.Fprintf(w, "  scrape     : /metrics consistent with queue stats across %d servers\n",
				len(r.AdminScrape.Servers))
		default:
			fmt.Fprintf(w, "  scrape     : INCONSISTENT — %d mismatches\n", len(r.AdminScrape.Mismatches))
			for _, ms := range r.AdminScrape.Mismatches {
				fmt.Fprintf(w, "    %s\n", ms)
			}
		}
	}
	if len(r.Traces) > 0 {
		fmt.Fprintf(w, "  traces     : %d sampled span tree(s) in artifact\n", len(r.Traces))
	}
	if r.Ramp != nil {
		r.Ramp.PrintHuman(w)
	}
}
