package loadgen

import (
	"github.com/impir/impir/internal/obs"
)

// The HDR-style latency histogram the load generator computes its
// quantiles from now lives in internal/obs, where the server's exported
// Prometheus histograms are built on the identical implementation — one
// bucketing, one upper-edge-representative rule, so a loadgen p99 and a
// scraped p99 can only disagree about sampling windows, never about
// math. The aliases keep loadgen's own surface unchanged.
type (
	// Hist records latencies concurrently and lock-free.
	Hist = obs.Hist
	// HistSnapshot is an immutable copy of a Hist.
	HistSnapshot = obs.HistSnapshot
)
