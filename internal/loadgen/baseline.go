package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is the committed perf-gate reference: the metric set of one
// fingerprinted configuration (BENCH_loadgen.json in the repo root).
// Refresh it deliberately with -save after a change that legitimately
// moves the numbers; the gate refuses to compare anything else.
type Baseline struct {
	Schema      string             `json:"schema"`
	Fingerprint Fingerprint        `json:"fingerprint"`
	Metrics     map[string]float64 `json:"metrics"`
	// Note is free-form provenance (when/why the baseline was cut).
	Note string `json:"note,omitempty"`
}

// NewBaseline projects a run into a committable baseline.
func NewBaseline(r *Result, note string) *Baseline {
	return &Baseline{
		Schema:      r.Schema,
		Fingerprint: r.Fingerprint,
		Metrics:     r.BaselineMetrics(),
		Note:        note,
	}
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("loadgen: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as stable, diff-friendly JSON.
func (b *Baseline) Save(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Comparison is the perf gate's verdict for one run against a baseline.
type Comparison struct {
	// ThresholdPct is the allowed regression in percent.
	ThresholdPct float64 `json:"threshold_pct"`
	// Lines spells out every metric's verdict, regressions first.
	Lines []ComparisonLine `json:"lines"`
	// Regressed is true when any metric broke the threshold.
	Regressed bool `json:"regressed"`
}

// ComparisonLine is one metric's verdict.
type ComparisonLine struct {
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	// DeltaPct is the relative change in percent, signed so that
	// positive always means WORSE for the metric's direction.
	DeltaPct  float64 `json:"delta_pct"`
	Regressed bool    `json:"regressed"`
}

func (l ComparisonLine) String() string {
	verdict := "ok"
	if l.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%-14s base=%-12.4g cur=%-12.4g worse=%+.1f%% %s",
		l.Metric, l.Baseline, l.Current, l.DeltaPct, verdict)
}

// Compare gates the run against the baseline with a per-metric
// regression threshold (percent). It refuses — with an error, not a
// verdict — when the schema or fingerprint differ: numbers from
// different configurations are incomparable, and silently comparing
// them is how perf gates rot.
//
// Direction is per metric: achieved_qps regresses downward, latency
// metrics regress upward, and *_rate metrics are compared absolutely
// (a rate moving from 0 to threshold/100 regresses — relative change
// against a zero baseline is meaningless).
func Compare(b *Baseline, r *Result, thresholdPct float64) (*Comparison, error) {
	if thresholdPct <= 0 {
		return nil, fmt.Errorf("loadgen: threshold must be positive percent, got %g", thresholdPct)
	}
	if b.Schema != r.Schema {
		return nil, fmt.Errorf("loadgen: baseline schema %q does not match run schema %q — regenerate the baseline",
			b.Schema, r.Schema)
	}
	if b.Fingerprint != r.Fingerprint {
		return nil, fmt.Errorf("loadgen: baseline fingerprint does not match the run's configuration — refusing to compare\n  baseline: %+v\n  run:      %+v",
			b.Fingerprint, r.Fingerprint)
	}
	cur := r.BaselineMetrics()
	cmp := &Comparison{ThresholdPct: thresholdPct}
	names := make([]string, 0, len(b.Metrics))
	for name := range b.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := b.Metrics[name]
		c, ok := cur[name]
		if !ok {
			return nil, fmt.Errorf("loadgen: baseline metric %q is unknown to this build — regenerate the baseline", name)
		}
		line := ComparisonLine{Metric: name, Baseline: base, Current: c}
		switch {
		case strings.HasSuffix(name, "_rate"):
			// Absolute comparison: threshold percent reads as percentage
			// points of the rate.
			line.DeltaPct = 100 * (c - base)
			line.Regressed = c > base+thresholdPct/100
		case name == "achieved_qps":
			// Higher is better.
			if base > 0 {
				line.DeltaPct = 100 * (base - c) / base
			}
			line.Regressed = base > 0 && c < base*(1-thresholdPct/100)
		default:
			// Latency: lower is better.
			if base > 0 {
				line.DeltaPct = 100 * (c - base) / base
			}
			line.Regressed = base > 0 && c > base*(1+thresholdPct/100)
		}
		cmp.Lines = append(cmp.Lines, line)
		cmp.Regressed = cmp.Regressed || line.Regressed
	}
	sort.SliceStable(cmp.Lines, func(i, j int) bool {
		return cmp.Lines[i].Regressed && !cmp.Lines[j].Regressed
	})
	return cmp, nil
}

// String renders the verdict as text.
func (c *Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== perf gate (threshold %.0f%%) ==\n", c.ThresholdPct)
	for _, l := range c.Lines {
		fmt.Fprintf(&sb, "  %s\n", l)
	}
	if c.Regressed {
		sb.WriteString("  verdict: REGRESSION\n")
	} else {
		sb.WriteString("  verdict: ok\n")
	}
	return sb.String()
}
