package gpupir

import (
	"bytes"
	"testing"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
)

func newLoaded(t *testing.T, numRecords int, cfg Config) (*Engine, *database.DB) {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db, err := database.GenerateHashDB(numRecords, 23)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	return eng, db
}

func genPair(t *testing.T, domain int, idx uint64) (*dpf.Key, *dpf.Key) {
	t.Helper()
	k0, k1, err := dpf.Gen(dpf.Params{Domain: domain}, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k0, k1
}

func TestEndToEndReconstruction(t *testing.T) {
	for _, blocks := range []int{1, 3, 16, 128, 100000} {
		cfg := Config{ThreadBlocks: blocks}
		e0, db := newLoaded(t, 1024, cfg)
		e1, _ := newLoaded(t, 1024, cfg)
		for _, idx := range []uint64{0, 511, 1023} {
			k0, k1 := genPair(t, db.Domain(), idx)
			r0, _, err := e0.Query(k0)
			if err != nil {
				t.Fatal(err)
			}
			r1, _, err := e1.Query(k1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range r0 {
				r0[i] ^= r1[i]
			}
			if !bytes.Equal(r0, db.Record(int(idx))) {
				t.Fatalf("blocks=%d index=%d: wrong reconstruction", blocks, idx)
			}
		}
	}
}

func TestTinyDatabase(t *testing.T) {
	// Fewer records than one selector word.
	e0, db := newLoaded(t, 32, Config{})
	e1, _ := newLoaded(t, 32, Config{})
	k0, k1 := genPair(t, db.Domain(), 5)
	r0, _, err := e0.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := e1.Query(k1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r0 {
		r0[i] ^= r1[i]
	}
	if !bytes.Equal(r0, db.Record(5)) {
		t.Fatal("tiny database reconstruction failed")
	}
}

func TestBatchPipelineModel(t *testing.T) {
	e0, db := newLoaded(t, 2048, Config{})
	const batch = 8
	keys := make([]*dpf.Key, batch)
	for i := range keys {
		keys[i], _ = genPair(t, db.Domain(), uint64(i))
	}
	_, stats, err := e0.QueryBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined makespan must be at most the serial sum but at least the
	// heaviest stage sum / 1.
	serial := stats.PerQuery.TotalModeled() * batch
	if stats.ModeledLatency > serial {
		t.Fatalf("pipelined %v exceeds serial %v", stats.ModeledLatency, serial)
	}
	if stats.ModeledLatency <= 0 {
		t.Fatal("no modeled latency")
	}
}

func TestVRAMOverflowFallsBackToPCIe(t *testing.T) {
	small := Config{VRAMBytes: 1 << 10} // 1 KB VRAM: everything overflows
	e0, db := newLoaded(t, 4096, small)
	k0, _ := genPair(t, db.Domain(), 1)
	_, bdOver, err := e0.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := newLoaded(t, 4096, Config{})
	_, bdFit, err := e1.Query(k0)
	if err != nil {
		t.Fatal(err)
	}
	if bdOver.Modeled[metrics.PhaseDpXOR] <= bdFit.Modeled[metrics.PhaseDpXOR] {
		t.Fatal("PCIe-streamed scan not modeled slower than VRAM-resident scan")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{ThreadBlocks: -1}); err == nil {
		t.Error("New accepted negative blocks")
	}
	if _, err := New(Config{VRAMEfficiency: 1.5}); err == nil {
		t.Error("New accepted efficiency > 1")
	}
	eng, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k0, _ := genPair(t, 5, 0)
	if _, _, err := eng.Query(k0); err == nil {
		t.Error("Query before LoadDatabase succeeded")
	}
	if err := eng.LoadDatabase(nil); err == nil {
		t.Error("LoadDatabase(nil) succeeded")
	}
	e0, _ := newLoaded(t, 64, Config{})
	bad, _ := genPair(t, 3, 0)
	if _, _, err := e0.Query(bad); err == nil {
		t.Error("Query accepted wrong-domain key")
	}
	if _, _, err := e0.QueryBatch(nil); err == nil {
		t.Error("QueryBatch(nil) succeeded")
	}
}

func TestName(t *testing.T) {
	eng, _ := New(Config{})
	if eng.Name() != "GPU-PIR" {
		t.Errorf("Name() = %q", eng.Name())
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
