// Package gpupir implements the GPU-accelerated multi-server PIR baseline
// of Lam et al. (ASPLOS'24), the comparison system of §5.5 / Figure 12.
//
// The engine executes the same DPF-PIR algorithm as the other engines —
// full-domain evaluation followed by the dpXOR scan — organised the way a
// CUDA implementation would be: a grid of thread blocks each reducing a
// contiguous slice of the database, followed by a device-wide reduction.
// Execution is functional (bit-exact, cross-checked against the CPU and
// PIM engines); durations are modeled on the paper's GPU platform, an
// NVIDIA GeForce RTX 4090 (§5.2: 24 GB VRAM, 1.01 TB/s memory bandwidth),
// since no GPU is available to this reproduction.
package gpupir

import (
	"errors"
	"fmt"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/xorop"
)

// Config describes the modeled GPU and the execution grid.
type Config struct {
	// ThreadBlocks is the number of CUDA-style blocks the dpXOR grid
	// uses; the functional executor partitions the DB accordingly.
	// 0 means 128 (one per SM on the RTX 4090).
	ThreadBlocks int
	// VRAMBytes is device memory; databases beyond it stream over PCIe.
	// 0 means 24 GB.
	VRAMBytes int64
	// VRAMBandwidth is device memory bandwidth in bytes/s. 0 = 1.01 TB/s.
	VRAMBandwidth float64
	// VRAMEfficiency derates peak bandwidth to achievable scan rate.
	// 0 means 0.70.
	VRAMEfficiency float64
	// PCIeBandwidth is the host↔device link in bytes/s. 0 means 25 GB/s
	// (PCIe 4.0 x16 effective).
	PCIeBandwidth float64
	// AESBlocksPerSec is the device-wide AES-128 throughput for DPF tree
	// expansion (GPUs lack AES-NI; this is a table/bitsliced kernel).
	// 0 means 6.4e9.
	AESBlocksPerSec float64
	// KernelOverhead is the fixed per-kernel-launch cost. 0 means 80 µs
	// (two launches per query: eval grid + reduction grid).
	KernelOverhead time.Duration
	// DisableBatchFusion reverts QueryBatch to one grid scan per query
	// (stream-overlapped). The batchfuse experiment uses it to measure
	// the fusion win; production leaves it off.
	DisableBatchFusion bool
}

// DefaultConfig returns the §5.2 GPU platform model.
func DefaultConfig() Config {
	return Config{
		ThreadBlocks:    128,
		VRAMBytes:       24 << 30,
		VRAMBandwidth:   1.01e12,
		VRAMEfficiency:  0.70,
		PCIeBandwidth:   25e9,
		AESBlocksPerSec: 6.4e9,
		KernelOverhead:  80 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ThreadBlocks == 0 {
		c.ThreadBlocks = d.ThreadBlocks
	}
	if c.VRAMBytes == 0 {
		c.VRAMBytes = d.VRAMBytes
	}
	if c.VRAMBandwidth == 0 {
		c.VRAMBandwidth = d.VRAMBandwidth
	}
	if c.VRAMEfficiency == 0 {
		c.VRAMEfficiency = d.VRAMEfficiency
	}
	if c.PCIeBandwidth == 0 {
		c.PCIeBandwidth = d.PCIeBandwidth
	}
	if c.AESBlocksPerSec == 0 {
		c.AESBlocksPerSec = d.AESBlocksPerSec
	}
	if c.KernelOverhead == 0 {
		c.KernelOverhead = d.KernelOverhead
	}
	return c
}

func (c Config) validate() error {
	if c.ThreadBlocks < 1 {
		return fmt.Errorf("gpupir: ThreadBlocks %d must be ≥ 1", c.ThreadBlocks)
	}
	if c.VRAMBytes < 1 || c.VRAMBandwidth <= 0 || c.PCIeBandwidth <= 0 || c.AESBlocksPerSec <= 0 {
		return errors.New("gpupir: hardware constants must be positive")
	}
	if c.VRAMEfficiency <= 0 || c.VRAMEfficiency > 1 {
		return fmt.Errorf("gpupir: VRAMEfficiency %v outside (0,1]", c.VRAMEfficiency)
	}
	return nil
}

// UploadDuration models pushing one query key over PCIe plus half the
// per-query launch overhead.
func (c Config) UploadDuration(keyBytes int) time.Duration {
	return time.Duration(float64(keyBytes)/c.PCIeBandwidth*float64(time.Second)) + c.KernelOverhead/2
}

// EvalDuration models the on-device DPF full-domain expansion: ≈ 2 AES
// blocks per internal node, N internal nodes.
func (c Config) EvalDuration(leaves uint64) time.Duration {
	return time.Duration(2 * float64(leaves) / c.AESBlocksPerSec * float64(time.Second))
}

// ScanDuration models the grid dpXOR over dbBytes: derated VRAM bandwidth
// when resident, PCIe streaming otherwise, plus one kernel launch.
func (c Config) ScanDuration(dbBytes int64) time.Duration {
	var sec float64
	if dbBytes <= c.VRAMBytes {
		sec = float64(dbBytes) / (c.VRAMBandwidth * c.VRAMEfficiency)
	} else {
		sec = float64(dbBytes) / c.PCIeBandwidth
	}
	return time.Duration(sec*float64(time.Second)) + c.KernelOverhead
}

// ScanBatchDuration models a FUSED grid dpXOR: one streaming pass over
// dbBytes accumulating `batch` results per thread block. Memory traffic
// is a single stream (the bound at small B); the XOR ALU work scales
// with the batch and runs at full (underated) VRAM bandwidth out of
// registers/shared memory, taking over as the bound once B is large.
func (c Config) ScanBatchDuration(dbBytes int64, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	var memSec float64
	if dbBytes <= c.VRAMBytes {
		memSec = float64(dbBytes) / (c.VRAMBandwidth * c.VRAMEfficiency)
	} else {
		memSec = float64(dbBytes) / c.PCIeBandwidth
	}
	// Each selector share sets ~half the bits → batch × dbBytes/2 XORed,
	// out of on-chip storage at peak bandwidth.
	xorSec := float64(batch) * float64(dbBytes) / 2 / c.VRAMBandwidth
	sec := memSec
	if xorSec > sec {
		sec = xorSec
	}
	return time.Duration(sec*float64(time.Second)) + c.KernelOverhead
}

// DownloadDuration models pulling the subresult back plus half the
// per-query launch overhead.
func (c Config) DownloadDuration(recordSize int) time.Duration {
	return time.Duration(float64(recordSize)/c.PCIeBandwidth*float64(time.Second)) + c.KernelOverhead/2
}

// Engine is the GPU-PIR baseline server engine.
type Engine struct {
	cfg    Config
	db     *database.DB
	domain int
}

// New builds a GPU baseline engine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Name identifies the engine in benchmark reports.
func (e *Engine) Name() string { return "GPU-PIR" }

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Database returns the loaded (padded) database, or nil.
func (e *Engine) Database() *database.DB { return e.db }

// LoadDatabase stages the database in (modeled) VRAM. Loading is a
// one-time cost excluded from query latency, like the paper's setups.
func (e *Engine) LoadDatabase(db *database.DB) error {
	if db == nil {
		return errors.New("gpupir: nil database")
	}
	if db.RecordSize()%8 != 0 {
		return fmt.Errorf("gpupir: record size %d must be a multiple of 8", db.RecordSize())
	}
	padded := db.PadToPowerOfTwo()
	if padded == db {
		// PadToPowerOfTwo returned the caller's storage; clone so this
		// replica is independent of the caller's and of other engines
		// loaded from the same DB (true replica semantics for §3.3
		// updates).
		padded = db.Clone()
	}
	e.db = padded
	e.domain = padded.Domain()
	return nil
}

func (e *Engine) validateKey(key *dpf.Key) error {
	if e.db == nil {
		return errors.New("gpupir: no database loaded")
	}
	if key == nil {
		return errors.New("gpupir: nil key")
	}
	if int(key.Domain) != e.domain {
		return fmt.Errorf("gpupir: key domain %d does not match database domain %d", key.Domain, e.domain)
	}
	if key.BetaLen() != 0 {
		return fmt.Errorf("gpupir: PIR keys must be single-bit DPFs, got %d-byte payload", key.BetaLen())
	}
	return nil
}

// Query processes one query: upload key (PCIe), evaluate the DPF tree on
// device, grid-scan the database, reduce, download the subresult.
func (e *Engine) Query(key *dpf.Key) ([]byte, metrics.Breakdown, error) {
	if err := e.validateKey(key); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	var bd metrics.Breakdown
	n := uint64(e.db.NumRecords())
	recordSize := e.db.RecordSize()

	// Key upload: O(λ log N) bytes over PCIe — microseconds.
	start := time.Now()
	bd.AddPhase(metrics.PhaseCopyToPIM, time.Since(start), e.cfg.UploadDuration(key.WireSize()))

	// On-device DPF full-domain evaluation (memory-bounded traversal,
	// the strategy Lam et al. adopt — §3.2).
	start = time.Now()
	vec, err := key.EvalFull(dpf.FullEvalOptions{Strategy: dpf.StrategyMemoryBounded})
	if err != nil {
		return nil, bd, fmt.Errorf("gpupir: DPF evaluation: %w", err)
	}
	bd.AddPhase(metrics.PhaseEval, time.Since(start), e.cfg.EvalDuration(n))

	// Grid dpXOR: each thread block reduces a contiguous DB slice, then
	// a second kernel folds the per-block partials.
	start = time.Now()
	result, err := e.gridScan(vec)
	if err != nil {
		return nil, bd, err
	}
	bd.AddPhase(metrics.PhaseDpXOR, time.Since(start), e.cfg.ScanDuration(e.db.SizeBytes()))

	// Subresult download.
	start = time.Now()
	bd.AddPhase(metrics.PhaseCopyToHost, time.Since(start), e.cfg.DownloadDuration(recordSize))

	return result, bd, nil
}

// gridScan runs the CUDA-style block-partitioned selective XOR over the
// database with the given selector vector.
func (e *Engine) gridScan(vec *bitvec.Vector) ([]byte, error) {
	recordSize := e.db.RecordSize()
	result := make([]byte, recordSize)
	blocks := e.cfg.ThreadBlocks
	numRecords := e.db.NumRecords()
	groups := numRecords / 64 // 64-record selector words
	if groups == 0 {
		groups = 1
	}
	if blocks > groups {
		blocks = groups
	}
	groupsPerBlock := (groups + blocks - 1) / blocks
	words := vec.Words()
	data := e.db.Data()
	partial := make([]byte, recordSize)
	for b := 0; b < blocks; b++ {
		loGroup := b * groupsPerBlock
		hiGroup := loGroup + groupsPerBlock
		if hiGroup > groups {
			hiGroup = groups
		}
		if loGroup >= hiGroup {
			break
		}
		loRec := loGroup * 64
		hiRec := hiGroup * 64
		if hiRec > numRecords {
			hiRec = numRecords
		}
		for i := range partial {
			partial[i] = 0
		}
		if err := xorop.Accumulate(partial, data[loRec*recordSize:hiRec*recordSize],
			recordSize, words[loGroup:hiGroup]); err != nil {
			return nil, fmt.Errorf("gpupir: block %d: %w", b, err)
		}
		if err := xorop.XORBytes(result, partial); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// gridScanBatch runs the FUSED block-partitioned selective XOR: each
// thread block streams its contiguous DB slice once and accumulates all
// B selector results from it, so the batch pays one pass of memory
// traffic. Results are bit-identical to per-query gridScan calls.
func (e *Engine) gridScanBatch(vecs []*bitvec.Vector) ([][]byte, error) {
	recordSize := e.db.RecordSize()
	nq := len(vecs)
	results := make([][]byte, nq)
	for q := range results {
		results[q] = make([]byte, recordSize)
	}
	blocks := e.cfg.ThreadBlocks
	numRecords := e.db.NumRecords()
	groups := numRecords / 64
	if groups == 0 {
		groups = 1
	}
	if blocks > groups {
		blocks = groups
	}
	groupsPerBlock := (groups + blocks - 1) / blocks
	words := make([][]uint64, nq)
	for q, v := range vecs {
		words[q] = v.Words()
	}
	data := e.db.Data()
	partials := make([][]byte, nq)
	buf := make([]byte, nq*recordSize)
	for q := range partials {
		partials[q] = buf[q*recordSize : (q+1)*recordSize]
	}
	blockSels := make([][]uint64, nq)
	for b := 0; b < blocks; b++ {
		loGroup := b * groupsPerBlock
		hiGroup := loGroup + groupsPerBlock
		if hiGroup > groups {
			hiGroup = groups
		}
		if loGroup >= hiGroup {
			break
		}
		loRec := loGroup * 64
		hiRec := hiGroup * 64
		if hiRec > numRecords {
			hiRec = numRecords
		}
		for i := range buf {
			buf[i] = 0
		}
		for q := range words {
			blockSels[q] = words[q][loGroup:hiGroup]
		}
		// One fused serial pass per block — the block IS the parallel
		// grain, so the kernel below runs with a single worker.
		if err := xorop.AccumulateBatchWorkers(partials, data[loRec*recordSize:hiRec*recordSize],
			recordSize, blockSels, 1); err != nil {
			return nil, fmt.Errorf("gpupir: fused block %d: %w", b, err)
		}
		for q := range results {
			if err := xorop.XORBytes(results[q], partials[q]); err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// QueryShare processes a raw selector-share query (the n-server
// generalisation of §2.3): the grid scan driven directly by an explicit
// N-bit share, with no on-device DPF expansion.
func (e *Engine) QueryShare(share *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	if e.db == nil {
		return nil, bd, errors.New("gpupir: no database loaded")
	}
	if share == nil {
		return nil, bd, errors.New("gpupir: nil share")
	}
	if share.Len() != e.db.NumRecords() {
		return nil, bd, fmt.Errorf("gpupir: share covers %d records, database has %d",
			share.Len(), e.db.NumRecords())
	}
	// The share itself must cross PCIe (N/8 bytes — the §2.3 scheme's
	// communication cost becomes a transfer cost here).
	start := time.Now()
	bd.AddPhase(metrics.PhaseCopyToPIM, time.Since(start),
		e.cfg.UploadDuration(share.Len()/8))
	start = time.Now()
	result, err := e.gridScan(share)
	if err != nil {
		return nil, bd, err
	}
	bd.AddPhase(metrics.PhaseDpXOR, time.Since(start), e.cfg.ScanDuration(e.db.SizeBytes()))
	start = time.Now()
	bd.AddPhase(metrics.PhaseCopyToHost, time.Since(start), e.cfg.DownloadDuration(e.db.RecordSize()))
	return result, bd, nil
}

// QueryBatch processes a batch of coalesced queries. The default path
// fuses the scans: all B keys upload and expand first (stream-
// overlapped), then ONE fused grid pass streams the database once and
// accumulates all B results (gridScanBatch / ScanBatchDuration). With
// DisableBatchFusion the engine reverts to one scan per query with
// CUDA-stream-style eval/scan overlap.
func (e *Engine) QueryBatch(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	if len(keys) == 0 {
		return nil, metrics.BatchStats{}, errors.New("gpupir: empty batch")
	}
	if !e.cfg.DisableBatchFusion && len(keys) > 1 {
		return e.queryBatchFused(keys)
	}
	results := make([][]byte, len(keys))
	var total metrics.Breakdown
	var evalStage, scanStage time.Duration

	start := time.Now()
	for i, key := range keys {
		r, bd, err := e.Query(key)
		if err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("gpupir: query %d: %w", i, err)
		}
		results[i] = r
		total.Add(bd)
		evalStage += bd.Modeled[metrics.PhaseEval] + bd.Modeled[metrics.PhaseCopyToPIM]
		scanStage += bd.Modeled[metrics.PhaseDpXOR] + bd.Modeled[metrics.PhaseCopyToHost]
	}
	wall := time.Since(start)

	modeled := evalStage
	if scanStage > modeled {
		modeled = scanStage
	}
	stats := metrics.BatchStats{
		Queries:        len(keys),
		PerQuery:       total.Scale(len(keys)),
		WallLatency:    wall,
		ModeledLatency: modeled,
	}
	return results, stats, nil
}

// queryBatchFused is the fused hot path: upload + expand every key
// (uploads and evals overlap scan-free), then one fused grid scan and B
// downloads. The fused scan needs ALL selectors resident before it
// launches, so eval no longer overlaps scanning — the single pass is
// cheap enough that the trade wins for every B > 1.
func (e *Engine) queryBatchFused(keys []*dpf.Key) ([][]byte, metrics.BatchStats, error) {
	b := len(keys)
	for i, k := range keys {
		if err := e.validateKey(k); err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("gpupir: batch key %d: %w", i, err)
		}
	}
	n := uint64(e.db.NumRecords())
	recordSize := e.db.RecordSize()
	var total metrics.Breakdown

	start := time.Now()
	var uploadModeled, evalModeled time.Duration
	vecs := make([]*bitvec.Vector, b)
	for i, key := range keys {
		uploadModeled += e.cfg.UploadDuration(key.WireSize())
		vec, err := key.EvalFull(dpf.FullEvalOptions{Strategy: dpf.StrategyMemoryBounded})
		if err != nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("gpupir: DPF evaluation %d: %w", i, err)
		}
		vecs[i] = vec
		evalModeled += e.cfg.EvalDuration(n)
	}
	evalWall := time.Since(start)
	total.AddPhase(metrics.PhaseCopyToPIM, 0, uploadModeled)
	total.AddPhase(metrics.PhaseEval, evalWall, evalModeled)

	start = time.Now()
	results, err := e.gridScanBatch(vecs)
	if err != nil {
		return nil, metrics.BatchStats{}, err
	}
	scanWall := time.Since(start)
	scanModeled := e.cfg.ScanBatchDuration(e.db.SizeBytes(), b)
	total.AddPhase(metrics.PhaseDpXOR, scanWall, scanModeled)

	downloadModeled := time.Duration(b) * e.cfg.DownloadDuration(recordSize)
	total.AddPhase(metrics.PhaseCopyToHost, 0, downloadModeled)

	// Key uploads overlap on-device eval (CUDA streams), so the makespan
	// pays the slower of the two, then the single fused scan, then the
	// result downloads.
	frontEnd := evalModeled
	if uploadModeled > frontEnd {
		frontEnd = uploadModeled
	}
	stats := metrics.BatchStats{
		Queries:        b,
		PerQuery:       total.Scale(b),
		WallLatency:    evalWall + scanWall,
		ModeledLatency: frontEnd + scanModeled + downloadModeled,
		Fused:          true,
	}
	return results, stats, nil
}

// QueryShareBatch processes B raw selector-share queries with ONE fused
// grid pass over the database — the n-server analogue of the fused
// QueryBatch. The shares themselves cross PCIe (B × N/8 bytes).
func (e *Engine) QueryShareBatch(shares []*bitvec.Vector) ([][]byte, metrics.BatchStats, error) {
	if e.db == nil {
		return nil, metrics.BatchStats{}, errors.New("gpupir: no database loaded")
	}
	if len(shares) == 0 {
		return nil, metrics.BatchStats{}, errors.New("gpupir: empty share batch")
	}
	for i, sh := range shares {
		if sh == nil {
			return nil, metrics.BatchStats{}, fmt.Errorf("gpupir: share %d is nil", i)
		}
		if sh.Len() != e.db.NumRecords() {
			return nil, metrics.BatchStats{}, fmt.Errorf("gpupir: share %d covers %d records, database has %d",
				i, sh.Len(), e.db.NumRecords())
		}
	}
	b := len(shares)
	recordSize := e.db.RecordSize()
	var total metrics.Breakdown

	uploadModeled := time.Duration(b) * e.cfg.UploadDuration(shares[0].Len()/8)
	total.AddPhase(metrics.PhaseCopyToPIM, 0, uploadModeled)

	start := time.Now()
	var results [][]byte
	var err error
	var scanModeled time.Duration
	if e.cfg.DisableBatchFusion {
		results = make([][]byte, b)
		for i, sh := range shares {
			if results[i], err = e.gridScan(sh); err != nil {
				return nil, metrics.BatchStats{}, err
			}
		}
		scanModeled = time.Duration(b) * e.cfg.ScanDuration(e.db.SizeBytes())
	} else {
		if results, err = e.gridScanBatch(shares); err != nil {
			return nil, metrics.BatchStats{}, err
		}
		scanModeled = e.cfg.ScanBatchDuration(e.db.SizeBytes(), b)
	}
	scanWall := time.Since(start)
	total.AddPhase(metrics.PhaseDpXOR, scanWall, scanModeled)

	downloadModeled := time.Duration(b) * e.cfg.DownloadDuration(recordSize)
	total.AddPhase(metrics.PhaseCopyToHost, 0, downloadModeled)

	stats := metrics.BatchStats{
		Queries:        b,
		PerQuery:       total.Scale(b),
		WallLatency:    scanWall,
		ModeledLatency: uploadModeled + scanModeled + downloadModeled,
		Fused:          !e.cfg.DisableBatchFusion,
	}
	return results, stats, nil
}

// ApplyUpdates is the uniform update entry point shared by every engine.
func (e *Engine) ApplyUpdates(updates map[uint64][]byte) error {
	return e.UpdateRecords(updates)
}

// UpdateRecords applies a bulk database update between query batches: the
// host rewrites its copy and (in a real deployment) re-uploads the dirty
// records over PCIe. Must not run concurrently with queries.
func (e *Engine) UpdateRecords(updates map[uint64][]byte) error {
	if e.db == nil {
		return errors.New("gpupir: no database loaded")
	}
	if len(updates) == 0 {
		return errors.New("gpupir: empty update set")
	}
	for idx, rec := range updates {
		if idx >= uint64(e.db.NumRecords()) {
			return fmt.Errorf("gpupir: update index %d outside [0,%d)", idx, e.db.NumRecords())
		}
		if len(rec) != e.db.RecordSize() {
			return fmt.Errorf("gpupir: update for record %d has %d bytes, want %d",
				idx, len(rec), e.db.RecordSize())
		}
	}
	for idx, rec := range updates {
		if err := e.db.SetRecord(int(idx), rec); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the engine (no external resources; API symmetry).
func (e *Engine) Close() error { return nil }
