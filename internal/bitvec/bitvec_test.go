package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len() = %d, want 130", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v.Bit(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount() = %d, want 0", v.OnesCount())
	}
}

func TestSetClearBit(t *testing.T) {
	tests := []struct {
		name string
		n    int
		idx  []int
	}{
		{name: "first word", n: 64, idx: []int{0, 1, 63}},
		{name: "crossing words", n: 130, idx: []int{63, 64, 65, 129}},
		{name: "single bit", n: 1, idx: []int{0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := New(tt.n)
			for _, i := range tt.idx {
				v.Set(i)
				if !v.Bit(i) {
					t.Errorf("Bit(%d) = false after Set", i)
				}
			}
			if got := v.OnesCount(); got != len(tt.idx) {
				t.Errorf("OnesCount() = %d, want %d", got, len(tt.idx))
			}
			for _, i := range tt.idx {
				v.Clear(i)
				if v.Bit(i) {
					t.Errorf("Bit(%d) = true after Clear", i)
				}
			}
			if got := v.OnesCount(); got != 0 {
				t.Errorf("OnesCount() = %d after clearing, want 0", got)
			}
		})
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	if !v.Bit(3) {
		t.Error("SetTo(3, true) did not set the bit")
	}
	v.SetTo(3, false)
	if v.Bit(3) {
		t.Error("SetTo(3, false) did not clear the bit")
	}
}

func TestFromBools(t *testing.T) {
	bs := []bool{true, false, true, true, false}
	v := FromBools(bs)
	if v.Len() != len(bs) {
		t.Fatalf("Len() = %d, want %d", v.Len(), len(bs))
	}
	for i, b := range bs {
		if v.Bit(i) != b {
			t.Errorf("Bit(%d) = %v, want %v", i, v.Bit(i), b)
		}
	}
}

func TestXor(t *testing.T) {
	a := FromBools([]bool{true, true, false, false})
	b := FromBools([]bool{true, false, true, false})
	a.Xor(b)
	want := []bool{false, true, true, false}
	for i, w := range want {
		if a.Bit(i) != w {
			t.Errorf("bit %d = %v, want %v", i, a.Bit(i), w)
		}
	}
}

func TestXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Xor with mismatched lengths did not panic")
		}
	}()
	New(4).Xor(New(5))
}

func TestOutOfRangePanics(t *testing.T) {
	for _, idx := range []int{-1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) on length-64 vector did not panic", idx)
				}
			}()
			New(64).Bit(idx)
		}()
	}
}

func TestEqualAndClone(t *testing.T) {
	v := New(100)
	v.Set(3)
	v.Set(99)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(50)
	if v.Equal(c) {
		t.Fatal("mutating clone affected original equality")
	}
	if v.Bit(50) {
		t.Fatal("mutating clone mutated original storage")
	}
	if v.Equal(New(101)) {
		t.Fatal("vectors of different lengths reported equal")
	}
}

func TestSlice(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	tests := []struct{ lo, hi int }{
		{0, 200},   // whole vector, aligned
		{64, 128},  // word aligned
		{65, 131},  // unaligned
		{10, 10},   // empty
		{199, 200}, // tail
	}
	for _, tt := range tests {
		s := v.Slice(tt.lo, tt.hi)
		if s.Len() != tt.hi-tt.lo {
			t.Fatalf("Slice(%d,%d).Len() = %d", tt.lo, tt.hi, s.Len())
		}
		for i := 0; i < s.Len(); i++ {
			if s.Bit(i) != v.Bit(tt.lo+i) {
				t.Errorf("Slice(%d,%d) bit %d mismatch", tt.lo, tt.hi, i)
			}
		}
	}
}

func TestSliceAlignedMasksTail(t *testing.T) {
	v := New(128)
	for i := 0; i < 128; i++ {
		v.Set(i)
	}
	s := v.Slice(0, 70)
	if got := s.OnesCount(); got != 70 {
		t.Fatalf("OnesCount() = %d, want 70 (tail bits leaked)", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		v := New(n)
		for i := 0; i < n; i += 7 {
			v.Set(i)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary(n=%d): %v", n, err)
		}
		var got Vector
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary(n=%d): %v", n, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip mismatch for n=%d", n)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	var v Vector
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Error("UnmarshalBinary(nil) succeeded")
	}
	if err := v.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("UnmarshalBinary(short) succeeded")
	}
	// Length claims 128 bits but payload holds one word.
	bad := make([]byte, 16)
	bad[0] = 128
	if err := v.UnmarshalBinary(bad); err == nil {
		t.Error("UnmarshalBinary(truncated payload) succeeded")
	}
	// Implausibly huge length.
	huge := make([]byte, 16)
	for i := 0; i < 8; i++ {
		huge[i] = 0xff
	}
	if err := v.UnmarshalBinary(huge); err == nil {
		t.Error("UnmarshalBinary(huge length) succeeded")
	}
}

func TestString(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	if got := v.String(); got != "101" {
		t.Fatalf("String() = %q, want %q", got, "101")
	}
}

func TestTrailingWordMask(t *testing.T) {
	v := New(70)
	v.Words()[1] = ^uint64(0) // scribble beyond bit 70
	v.TrailingWordMask()
	if got := v.OnesCount(); got != 6 {
		t.Fatalf("OnesCount() = %d after mask, want 6", got)
	}
}

// Property: XOR is an involution — (v ⊕ w) ⊕ w == v.
func TestQuickXorInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%512 + 1
		rng := rand.New(rand.NewSource(seed))
		v, w := New(n), New(n)
		for i := 0; i < n; i++ {
			v.SetTo(i, rng.Intn(2) == 1)
			w.SetTo(i, rng.Intn(2) == 1)
		}
		orig := v.Clone()
		v.Xor(w)
		v.Xor(w)
		return v.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: marshal/unmarshal is the identity.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw) % 2048
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := 0; i < n; i++ {
			v.SetTo(i, rng.Intn(2) == 1)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var got Vector
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: OnesCount equals the number of explicitly set positions.
func TestQuickOnesCount(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%1024 + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		want := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
				want++
			}
		}
		return v.OnesCount() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
