// Package bitvec implements densely packed bit vectors.
//
// Bit vectors are the central exchange format in IM-PIR: the full-domain
// evaluation of a DPF key over an N-record database produces an N-bit share
// vector, which the server-side dpXOR stage consumes as a per-record
// selector. The representation is little-endian within each 64-bit word
// (bit i lives in word i/64 at position i%64), which lets the XOR kernels
// consume 64 selectors with a single word load.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Vector is a packed vector of bits with a fixed length.
//
// The zero value is an empty vector of length 0. Vectors are not safe for
// concurrent mutation; concurrent reads are safe.
type Vector struct {
	words []uint64
	n     int
}

// New returns a zeroed vector with n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// FromBools builds a vector from a slice of booleans.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words. The final word's unused high bits are
// always zero. Callers must not resize the returned slice; mutating bits
// through it is allowed and is how the evaluation kernels fill vectors.
func (v *Vector) Words() []uint64 { return v.words }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.boundsCheck(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.boundsCheck(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to the given value.
func (v *Vector) SetTo(i int, bit bool) {
	if bit {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Bit reports whether bit i is set.
func (v *Vector) Bit(i int) bool {
	v.boundsCheck(i)
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Xor sets v = v ⊕ other. Both vectors must have the same length.
func (v *Vector) Xor(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: xor length mismatch %d != %d", v.n, other.n))
	}
	for i, w := range other.words {
		v.words[i] ^= w
	}
}

// Equal reports whether v and other contain the same bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i, w := range v.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	out := &Vector{
		words: make([]uint64, len(v.words)),
		n:     v.n,
	}
	copy(out.words, v.words)
	return out
}

// Slice returns a new vector containing bits [lo, hi).
func (v *Vector) Slice(lo, hi int) *Vector {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: slice [%d,%d) out of range for length %d", lo, hi, v.n))
	}
	out := New(hi - lo)
	// Fast path: word-aligned lower bound.
	if lo&63 == 0 {
		src := v.words[lo>>6:]
		copy(out.words, src)
		out.maskTail()
		return out
	}
	for i := lo; i < hi; i++ {
		if v.Bit(i) {
			out.Set(i - lo)
		}
	}
	return out
}

// TrailingWordMask zeroes the unused high bits of the last word. Kernels
// writing whole words into the backing slice must call this to restore the
// invariant that unused bits are zero.
func (v *Vector) TrailingWordMask() {
	v.maskTail()
}

func (v *Vector) maskTail() {
	if rem := uint(v.n) & 63; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

// MarshalBinary encodes the vector as an 8-byte little-endian length
// followed by the packed words.
func (v *Vector) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(v.words))
	binary.LittleEndian.PutUint64(out, uint64(v.n))
	for i, w := range v.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a vector produced by MarshalBinary.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitvec: short buffer (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if n > uint64(1)<<48 {
		return fmt.Errorf("bitvec: implausible length %d", n)
	}
	nWords := (int(n) + 63) / 64
	if len(data) != 8+8*nWords {
		return fmt.Errorf("bitvec: want %d payload bytes, have %d", 8*nWords, len(data)-8)
	}
	v.n = int(n)
	v.words = make([]uint64, nWords)
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	v.maskTail()
	return nil
}

// String renders the vector as a 0/1 string, lowest index first. Intended
// for tests and debugging of small vectors.
func (v *Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

func (v *Vector) boundsCheck(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range for length %d", i, v.n))
	}
}
