package impir

import (
	"bytes"
	"context"
	"net"
	"testing"
	"testing/quick"
)

// testServerConfig keeps the simulated machine small for unit tests.
func testServerConfig(kind EngineKind) ServerConfig {
	return ServerConfig{
		Engine:      kind,
		DPUs:        8,
		Tasklets:    4,
		EvalWorkers: 2,
		Threads:     2,
	}
}

func newPair(t *testing.T, kind EngineKind, db *DB) (*Server, *Server) {
	t.Helper()
	s0, err := NewServer(testServerConfig(kind))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	s1, err := NewServer(testServerConfig(kind))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s0.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := s1.Load(db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(func() {
		s0.Close()
		s1.Close()
	})
	return s0, s1
}

func TestQuickstartFlow(t *testing.T) {
	db, err := GenerateHashDB(1<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := newPair(t, EnginePIM, db)

	k0, k1, err := GenerateKeys(db.NumRecords(), 42)
	if err != nil {
		t.Fatal(err)
	}
	r0, bd0, err := s0.Answer(context.Background(), k0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := s1.Answer(context.Background(), k1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(r0, r1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, db.Record(42)) {
		t.Fatal("quickstart reconstruction failed")
	}
	if bd0.TotalModeled() <= 0 {
		t.Error("no modeled breakdown")
	}
}

// TestEnginesProduceIdenticalSubresults: the PIM, CPU and GPU engines are
// different executions of the same mathematics; for the same key over the
// same database their subresults must be byte-identical.
func TestEnginesProduceIdenticalSubresults(t *testing.T) {
	db, err := GenerateHashDB(700, 9) // non-power-of-two on purpose
	if err != nil {
		t.Fatal(err)
	}
	k0, _, err := GenerateKeys(db.NumRecords(), 123)
	if err != nil {
		t.Fatal(err)
	}

	var results [][]byte
	for _, kind := range []EngineKind{EnginePIM, EngineCPU, EngineGPU} {
		s, err := NewServer(testServerConfig(kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := s.Load(db); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		r, _, err := s.Answer(context.Background(), k0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		results = append(results, r)
		s.Close()
	}
	if !bytes.Equal(results[0], results[1]) || !bytes.Equal(results[1], results[2]) {
		t.Fatalf("engines disagree:\n pim=%x\n cpu=%x\n gpu=%x",
			results[0][:8], results[1][:8], results[2][:8])
	}
}

func TestAllEnginesEndToEnd(t *testing.T) {
	db, err := GenerateHashDB(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{EnginePIM, EngineCPU, EngineGPU} {
		t.Run(kind.String(), func(t *testing.T) {
			s0, s1 := newPair(t, kind, db)
			for _, idx := range []uint64{0, 255, 511} {
				k0, k1, err := GenerateKeys(db.NumRecords(), idx)
				if err != nil {
					t.Fatal(err)
				}
				r0, _, err := s0.Answer(context.Background(), k0)
				if err != nil {
					t.Fatal(err)
				}
				r1, _, err := s1.Answer(context.Background(), k1)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := Reconstruct(r0, r1)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rec, db.Record(int(idx))) {
					t.Fatalf("engine %v index %d: wrong record", kind, idx)
				}
			}
		})
	}
}

func TestBatchAPI(t *testing.T) {
	db, err := GenerateHashDB(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := newPair(t, EnginePIM, db)

	indices := []uint64{1, 100, 255, 1, 7}
	keys0 := make([]*Key, len(indices))
	keys1 := make([]*Key, len(indices))
	for i, idx := range indices {
		keys0[i], keys1[i], err = GenerateKeys(db.NumRecords(), idx)
		if err != nil {
			t.Fatal(err)
		}
	}
	r0, stats, err := s0.AnswerBatch(context.Background(), keys0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := s1.AnswerBatch(context.Background(), keys1)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		rec, err := Reconstruct(r0[i], r1[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("batch item %d wrong", i)
		}
	}
	if stats.Queries != len(indices) || stats.ModeledQPS() <= 0 {
		t.Errorf("bad stats: %+v", stats)
	}
}

func TestNetworkDeployment(t *testing.T) {
	db, creds, err := GenerateCredentialDB(256, 5)
	if err != nil {
		t.Fatal(err)
	}

	s0, s1 := newPair(t, EngineCPU, db)
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Serve(lis0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s1.Serve(lis1, 1); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	cli, err := Dial(ctx, []string{s0.Addr().String(), s1.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if cli.RecordSize() != 32 {
		t.Errorf("RecordSize = %d", cli.RecordSize())
	}
	rec, err := cli.Retrieve(ctx, 77)
	if err != nil {
		t.Fatal(err)
	}
	want := CredentialHash(creds[77])
	if !bytes.Equal(rec, want[:]) {
		t.Fatal("network retrieval returned wrong record")
	}

	batch, err := cli.RetrieveBatch(ctx, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch returned %d records", len(batch))
	}
	if _, err := cli.Retrieve(ctx, 1<<40); err == nil {
		t.Error("Retrieve accepted out-of-range index")
	}
	empty, err := cli.RetrieveBatch(ctx, nil)
	if err != nil {
		t.Errorf("empty batch errored: %v", err)
	}
	if empty == nil || len(empty) != 0 {
		t.Errorf("empty batch returned %v, want empty non-nil slice", empty)
	}
}

func TestDialRejectsMismatchedReplicas(t *testing.T) {
	dbA, _ := GenerateHashDB(128, 1)
	dbB, _ := GenerateHashDB(128, 2) // different content

	s0, err := NewServer(testServerConfig(EngineCPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	s1, err := NewServer(testServerConfig(EngineCPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if err := s0.Load(dbA); err != nil {
		t.Fatal(err)
	}
	if err := s1.Load(dbB); err != nil {
		t.Fatal(err)
	}
	lis0, _ := net.Listen("tcp", "127.0.0.1:0")
	lis1, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := s0.Serve(lis0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s1.Serve(lis1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(context.Background(), []string{s0.Addr().String(), s1.Addr().String()}); err == nil {
		t.Fatal("Dial accepted mismatched replicas")
	}
}

func TestGenerateKeysValidation(t *testing.T) {
	if _, _, err := GenerateKeys(0, 0); err == nil {
		t.Error("GenerateKeys accepted empty database")
	}
	if _, _, err := GenerateKeys(100, 100); err == nil {
		t.Error("GenerateKeys accepted out-of-range index")
	}
	if _, err := DomainFor(-1); err == nil {
		t.Error("DomainFor accepted negative count")
	}
	d, err := DomainFor(1000)
	if err != nil || d != 10 {
		t.Errorf("DomainFor(1000) = %d, %v", d, err)
	}
}

func TestReconstructValidation(t *testing.T) {
	if _, err := Reconstruct([]byte{1}); err == nil {
		t.Error("Reconstruct accepted one subresult")
	}
	if _, err := Reconstruct([]byte{1}, []byte{1, 2}); err == nil {
		t.Error("Reconstruct accepted mismatched lengths")
	}
	out, err := Reconstruct([]byte{0xF0}, []byte{0x0F}, []byte{0xFF})
	if err != nil || out[0] != 0x00 {
		t.Errorf("3-server reconstruct = %x, %v", out, err)
	}
}

func TestParseEngineKind(t *testing.T) {
	for s, want := range map[string]EngineKind{
		"pim": EnginePIM, "impir": EnginePIM, "im-pir": EnginePIM,
		"cpu": EngineCPU, "cpu-pir": EngineCPU,
		"gpu": EngineGPU, "gpu-pir": EngineGPU,
	} {
		got, err := ParseEngineKind(s)
		if err != nil || got != want {
			t.Errorf("ParseEngineKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEngineKind("tpu"); err == nil {
		t.Error("ParseEngineKind accepted unknown engine")
	}
	if EnginePIM.String() != "pim" || EngineKind(42).String() == "" {
		t.Error("EngineKind.String misbehaves")
	}
}

func TestServeTwiceRejected(t *testing.T) {
	db, _ := GenerateHashDB(64, 1)
	s0, _ := newPair(t, EngineCPU, db)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := s0.Serve(lis, 0); err != nil {
		t.Fatal(err)
	}
	lis2, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis2.Close()
	if err := s0.Serve(lis2, 0); err == nil {
		t.Fatal("second Serve accepted")
	}
}

// Property: for random indices, the end-to-end protocol returns the right
// record through the public API (CPU engine for speed).
func TestQuickEndToEnd(t *testing.T) {
	db, err := GenerateHashDB(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := newPair(t, EngineCPU, db)
	f := func(idxRaw uint16) bool {
		idx := uint64(idxRaw) % 512
		k0, k1, err := GenerateKeys(512, idx)
		if err != nil {
			return false
		}
		r0, _, err := s0.Answer(context.Background(), k0)
		if err != nil {
			return false
		}
		r1, _, err := s1.Answer(context.Background(), k1)
		if err != nil {
			return false
		}
		rec, err := Reconstruct(r0, r1)
		if err != nil {
			return false
		}
		return bytes.Equal(rec, db.Record(int(idx)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
