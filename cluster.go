package impir

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"github.com/impir/impir/internal/cluster"
	"github.com/impir/impir/internal/fanout"
	"github.com/impir/impir/internal/metrics"
)

// Sharded deployments: the topology, planning, and database-carving
// layer lives in internal/cluster; the root package re-exports it here
// together with ClusterClient, the network client that drives a sharded
// deployment.

// ShardManifest describes a sharded deployment's topology: contiguous
// row-range shards, each served by a cohort of ≥ 2 non-colluding
// replicas. Manifests round-trip through JSON (ParseManifest /
// LoadManifest / ShardManifest.JSON) for command-line flags and config
// files.
type ShardManifest = cluster.Manifest

// ClusterShard is one row-range shard of a ShardManifest.
type ClusterShard = cluster.Shard

// ClusterStats is a snapshot of a ClusterClient's per-shard counters.
type ClusterStats = metrics.ClusterStats

// ParseManifest decodes and validates a JSON shard manifest.
func ParseManifest(data []byte) (ShardManifest, error) { return cluster.Parse(data) }

// LoadManifest reads and validates a JSON shard manifest file.
func LoadManifest(path string) (ShardManifest, error) { return cluster.Load(path) }

// UniformManifest builds a manifest splitting numRecords records of
// recordSize bytes across len(cohorts) shards with sizes differing by
// at most one (ragged last shard when the division is uneven).
func UniformManifest(numRecords uint64, recordSize int, cohorts [][]string) (ShardManifest, error) {
	return cluster.Uniform(numRecords, recordSize, cohorts)
}

// SplitDB carves a database into shards contiguous row-range replicas
// (sizes differ by at most one; ragged last shard when N % shards != 0).
// Load each returned database into every replica of the matching
// cohort.
func SplitDB(db *DB, shards int) ([]*DB, error) { return cluster.SplitDB(db, shards) }

// SplitDBByManifest carves a database along a manifest's shard ranges.
func SplitDBByManifest(db *DB, m ShardManifest) ([]*DB, error) {
	return cluster.SplitByManifest(db, m)
}

// ClusterClient is a connection to a sharded PIR deployment: one Client
// per shard cohort. Every logical retrieval fans one sub-query out to
// EVERY cohort concurrently — the real one to the owning shard,
// well-formed dummies elsewhere — so retrieval latency is the slowest
// shard's round trip and no cohort learns which shard owned the record
// (each sees an ordinary PIR query against its own shard either way).
//
// Like Client, a retrieval aborts as a whole when any shard fails or
// the context is cancelled: sub-results from the remaining shards are
// discarded, never returned. Connections poisoned by an abandoned
// exchange are transparently redialed by the underlying per-cohort
// clients.
//
// A ClusterClient may be shared by concurrent goroutines.
type ClusterClient struct {
	manifest ShardManifest
	shards   []*Client

	mu    sync.Mutex
	stats metrics.ClusterStats
}

// DialCluster connects to every cohort of a sharded deployment
// concurrently — each cohort through Dial, with its replica
// cross-checks — and validates each cohort's database geometry against
// the manifest. Options (encoding, TLS) apply to every cohort.
func DialCluster(ctx context.Context, m ShardManifest, opts ...ClientOption) (*ClusterClient, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	shards := make([]*Client, len(m.Shards))
	g, gctx := fanout.WithContext(ctx)
	for i, shard := range m.Shards {
		g.Go(func() error {
			cli, err := Dial(gctx, shard.Replicas, opts...)
			if err != nil {
				return fmt.Errorf("impir: shard %d: %w", i, err)
			}
			shards[i] = cli
			return nil
		})
	}
	err := g.Wait()
	c := &ClusterClient{manifest: m, shards: shards}
	c.stats.Shards = make([]metrics.ShardStats, len(m.Shards))
	if err == nil {
		err = c.validateShards()
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// validateShards checks every cohort's handshake geometry against the
// manifest: the agreed record size, and a record count equal to the
// shard's range padded to the next power of two (the padding servers
// apply before serving).
func (c *ClusterClient) validateShards() error {
	for i, cli := range c.shards {
		shard := c.manifest.Shards[i]
		if cli.RecordSize() != c.manifest.RecordSize {
			return fmt.Errorf("impir: shard %d serves %d-byte records, manifest says %d",
				i, cli.RecordSize(), c.manifest.RecordSize)
		}
		if want := nextPow2(shard.NumRecords); cli.NumRecords() != want {
			return fmt.Errorf("impir: shard %d serves %d records, manifest range of %d pads to %d",
				i, cli.NumRecords(), shard.NumRecords, want)
		}
	}
	return nil
}

func nextPow2(n uint64) uint64 {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len64(n-1)
}

// NumRecords returns the total (unpadded) record count of the cluster.
func (c *ClusterClient) NumRecords() uint64 { return c.manifest.NumRecords() }

// RecordSize returns the record size in bytes.
func (c *ClusterClient) RecordSize() int { return c.manifest.RecordSize }

// Shards returns the shard count.
func (c *ClusterClient) Shards() int { return len(c.shards) }

// Manifest returns the deployment topology the client was dialed with.
func (c *ClusterClient) Manifest() ShardManifest { return c.manifest }

// Retrieve privately fetches the record at a global index: one
// well-formed sub-query per shard cohort, all concurrent, the owning
// shard's reconstruction returned. No cohort learns the index — each
// sees an ordinary PIR query against its own shard — and no cohort
// learns whether it was the one that mattered.
func (c *ClusterClient) Retrieve(ctx context.Context, global uint64) ([]byte, error) {
	plan, err := c.manifest.PlanQuery(global)
	if err != nil {
		return nil, err
	}
	recs := make([][]byte, len(c.shards))
	g, gctx := fanout.WithContext(ctx)
	for s := range c.shards {
		g.Go(func() error {
			start := time.Now()
			rec, err := c.shards[s].Retrieve(gctx, plan.Locals[s])
			c.record(s, 1, 0, time.Since(start), err)
			if err != nil {
				return fmt.Errorf("impir: shard %d: %w", s, err)
			}
			recs[s] = rec
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	c.bump(func(st *metrics.ClusterStats) { st.Retrievals++ })
	return recs[plan.Owner], nil
}

// RetrieveBatch privately fetches several records by global index in
// one round trip per cohort. Every cohort receives a batch of exactly
// len(globals) sub-queries — real where it owns the record, dummies
// elsewhere — so even the batch shape is identical across shards and
// leaks nothing about how the targets distribute. An empty batch is a
// no-op returning an empty (non-nil) slice without touching any
// cohort, matching Client.RetrieveBatch.
func (c *ClusterClient) RetrieveBatch(ctx context.Context, globals []uint64) ([][]byte, error) {
	if len(globals) == 0 {
		return [][]byte{}, nil
	}
	plan, err := c.manifest.PlanBatch(globals)
	if err != nil {
		return nil, err
	}
	perShard := make([][][]byte, len(c.shards))
	g, gctx := fanout.WithContext(ctx)
	for s := range c.shards {
		g.Go(func() error {
			start := time.Now()
			recs, err := c.shards[s].RetrieveBatch(gctx, plan.Locals[s])
			c.record(s, 0, uint64(len(globals)), time.Since(start), err)
			if err != nil {
				return fmt.Errorf("impir: shard %d: %w", s, err)
			}
			perShard[s] = recs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(globals))
	for i, owner := range plan.Owners {
		out[i] = perShard[owner][i]
	}
	c.bump(func(st *metrics.ClusterStats) { st.BatchRetrievals++ })
	return out, nil
}

// Update routes a bulk record update, keyed by global index, to the
// owning cohorts only: each dirty row travels to exactly the shard that
// holds it, and each cohort applies its subset atomically under the
// server-side epoch quiescing, so live retrievals never observe a torn
// update. Updates are public operator actions — routing them leaks
// nothing the cohort would not learn by applying them — and servers
// reject them unless started with ServerConfig.AllowWireUpdates.
//
// Cohorts with no dirty rows are not contacted. The affected cohorts
// update concurrently; the first failure cancels the rest, which can
// leave cohorts (or replicas within one) diverged — retry the same
// update until it succeeds everywhere, as with Client.Update.
func (c *ClusterClient) Update(ctx context.Context, updates map[uint64][]byte) error {
	routed, err := c.manifest.RouteUpdate(updates)
	if err != nil {
		return err
	}
	g, gctx := fanout.WithContext(ctx)
	for s, sub := range routed {
		g.Go(func() error {
			err := c.shards[s].Update(gctx, sub)
			c.bump(func(st *metrics.ClusterStats) {
				st.Shards[s].UpdateRows += uint64(len(sub))
				if err != nil {
					st.Shards[s].Errors++
				}
			})
			if err != nil {
				return fmt.Errorf("impir: shard %d: %w", s, err)
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return err
	}
	c.bump(func(st *metrics.ClusterStats) { st.Updates++ })
	return nil
}

// Stats snapshots the client-side per-shard counters.
func (c *ClusterClient) Stats() ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Shards = append([]metrics.ShardStats(nil), c.stats.Shards...)
	return out
}

// record accumulates one round trip's counters for shard s.
func (c *ClusterClient) record(s int, queries, batchQueries uint64, d time.Duration, err error) {
	c.bump(func(st *metrics.ClusterStats) {
		sh := &st.Shards[s]
		sh.Queries += queries
		if batchQueries > 0 {
			sh.Batches++
			sh.BatchQueries += batchQueries
		}
		sh.TotalTime += d
		if err != nil {
			sh.Errors++
		}
	})
}

func (c *ClusterClient) bump(f func(*metrics.ClusterStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

// Close closes every cohort's client.
func (c *ClusterClient) Close() error {
	var err error
	for _, cli := range c.shards {
		if cli != nil {
			if cerr := cli.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
